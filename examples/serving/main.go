// Serving example: the deployment shape the compile-once /
// instantiate-many pipeline exists for, in two phases.
//
// Phase 1 (cache): a pool of worker goroutines serves "requests", each
// of which names one of several modules; every worker compiles through
// a shared, sharded code cache, so each distinct module is decoded,
// validated and compiled exactly once (concurrent first requests
// collapse into a single compilation), and every request after that
// pays only the instantiation (link) cost.
//
// Phase 2 (pool): the same requests served from per-module instance
// pools. Finished instances are recycled instead of dropped, and
// Pool.Get resets them copy-on-write — dirty memory granules replayed
// from the post-instantiation snapshot, globals and tables re-seeded —
// so the per-request setup cost drops from a full link to a reset
// proportional to what the previous request wrote.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/workloads"
)

const (
	workers  = 8
	requests = 96
)

type result struct {
	item     string
	checksum int64
	latency  time.Duration
}

// serve fans requests over the worker pool; handle serves one request
// for one module and returns its checksum.
func serve(modules []workloads.Item, handle func(workloads.Item) (int64, error)) ([]result, time.Duration) {
	results := make([]result, requests)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := w; r < requests; r += workers {
				item := modules[r%len(modules)]
				t1 := time.Now()
				sum, err := handle(item)
				if err != nil {
					log.Fatal(err)
				}
				results[r] = result{item: item.Name, checksum: sum, latency: time.Since(t1)}
			}
		}(w)
	}
	wg.Wait()
	return results, time.Since(t0)
}

// verify checks that every request for the same module agreed — in
// phase 2 this is what proves resets do not leak state between
// requests — and returns the mean latency.
func verify(results []result) time.Duration {
	want := map[string]int64{}
	var total time.Duration
	for _, r := range results {
		if prev, ok := want[r.item]; ok && prev != r.checksum {
			log.Fatalf("checksum divergence on %s: %#x != %#x", r.item, r.checksum, prev)
		}
		want[r.item] = r.checksum
		total += r.latency
	}
	return total / time.Duration(len(results))
}

func main() {
	cache := codecache.New(codecache.Options{Shards: 16, Capacity: 128})
	cfg := engines.WizardSPC()
	cfg.Cache = cache
	e := engine.New(cfg, nil)

	// The "deployed" modules: a few fast line items from each suite.
	modules := []workloads.Item{
		workloads.Ostrich()[3],   // crc
		workloads.Ostrich()[2],   // bfs
		workloads.Libsodium()[0], // stream_chacha20
	}

	// Phase 1: shared code cache, fresh instance per request.
	cached, cachedWall := serve(modules, func(item workloads.Item) (int64, error) {
		cm, err := e.Compile(item.Bytes) // cache hit after the first request per module
		if err != nil {
			return 0, err
		}
		inst, err := cm.Instantiate()
		if err != nil {
			return 0, err
		}
		if _, err := inst.Call("_start"); err != nil {
			return 0, err
		}
		sum, err := inst.Call("checksum")
		if err != nil {
			return 0, err
		}
		inst.Release()
		return sum[0].I64(), nil
	})
	cachedMean := verify(cached)
	st := cache.Stats()
	fmt.Printf("phase 1 (code cache, fresh instances): %d requests, %d workers, wall %v\n",
		requests, workers, cachedWall)
	fmt.Printf("  mean request latency: %v\n", cachedMean)
	fmt.Printf("  code cache: %d artifacts, %d hits, %d misses, %d evictions\n",
		cache.Len(), st.Hits, st.Misses, st.Evictions)

	// Phase 2: same artifacts, requests served from instance pools.
	// Workers contend on one pool per module; resets replay only what
	// the previous request dirtied.
	pools := make(map[string]*engine.InstancePool, len(modules))
	for _, item := range modules {
		cm, err := e.Compile(item.Bytes) // all cache hits now
		if err != nil {
			log.Fatal(err)
		}
		pools[item.Name] = cm.NewPool(workers)
	}
	pooled, pooledWall := serve(modules, func(item workloads.Item) (int64, error) {
		pool := pools[item.Name]
		inst, err := pool.Get()
		if err != nil {
			return 0, err
		}
		if _, err := inst.Call("_start"); err != nil {
			return 0, err
		}
		sum, err := inst.Call("checksum")
		if err != nil {
			return 0, err
		}
		pool.Put(inst)
		return sum[0].I64(), nil
	})
	pooledMean := verify(pooled)

	// The two phases must agree module by module.
	for i := range cached {
		if cached[i].checksum != pooled[i].checksum {
			log.Fatalf("pooled checksum diverged from cached on %s", cached[i].item)
		}
	}

	fmt.Printf("phase 2 (instance pools, copy-on-write reset): wall %v\n", pooledWall)
	fmt.Printf("  mean request latency: %v (%.2fx phase 1)\n",
		pooledMean, float64(cachedMean)/float64(pooledMean))
	for _, item := range modules {
		pst := pools[item.Name].Stats()
		fmt.Printf("  pool %-16s %2d hits / %2d misses, reset mean %v max %v, miss mean %v\n",
			item.Name, pst.Hits, pst.Misses, pst.MeanReset(), pst.ResetMax, pst.MeanMiss())
		pools[item.Name].Close()
	}
}
