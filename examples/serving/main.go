// Serving example: the deployment shape the compile-once /
// instantiate-many pipeline exists for. A pool of worker goroutines
// serves "requests", each of which names one of several modules; every
// worker compiles through a shared, sharded code cache, so each distinct
// module is decoded, validated and compiled exactly once (concurrent
// first requests collapse into a single compilation), and every request
// after that pays only the instantiation (link) cost.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/workloads"
)

func main() {
	cache := codecache.New(codecache.Options{Shards: 16, Capacity: 128})
	cfg := engines.WizardSPC()
	cfg.Cache = cache
	e := engine.New(cfg, nil)

	// The "deployed" modules: a few fast line items from each suite.
	modules := []workloads.Item{
		workloads.Ostrich()[3],   // crc
		workloads.Ostrich()[2],   // bfs
		workloads.Libsodium()[0], // stream_chacha20
	}

	const workers = 8
	const requests = 96

	type result struct {
		item     string
		checksum int64
		latency  time.Duration
	}
	results := make([]result, requests)

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := w; r < requests; r += workers {
				item := modules[r%len(modules)]
				t1 := time.Now()
				cm, err := e.Compile(item.Bytes) // cache hit after the first request per module
				if err != nil {
					log.Fatal(err)
				}
				inst, err := cm.Instantiate()
				if err != nil {
					log.Fatal(err)
				}
				if _, err := inst.Call("_start"); err != nil {
					log.Fatal(err)
				}
				sum, err := inst.Call("checksum")
				if err != nil {
					log.Fatal(err)
				}
				inst.Release()
				results[r] = result{
					item:     item.Name,
					checksum: sum[0].I64(),
					latency:  time.Since(t1),
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0)

	// Every request for the same module must agree.
	want := map[string]int64{}
	for _, r := range results {
		if prev, ok := want[r.item]; ok && prev != r.checksum {
			log.Fatalf("checksum divergence on %s: %#x != %#x", r.item, r.checksum, prev)
		}
		want[r.item] = r.checksum
	}

	var total time.Duration
	for _, r := range results {
		total += r.latency
	}
	st := cache.Stats()
	fmt.Printf("served %d requests over %d modules with %d workers in %v\n",
		requests, len(modules), workers, wall)
	fmt.Printf("mean request latency: %v\n", total/time.Duration(requests))
	fmt.Printf("code cache: %d artifacts, %d hits, %d misses, %d evictions\n",
		cache.Len(), st.Hits, st.Misses, st.Evictions)
	fmt.Printf("compiles actually run: %d (one per distinct module+config)\n", st.Misses)
}
