// Serving example: the deployment shape the compile-once /
// instantiate-many pipeline exists for, in three phases, with the full
// observability surface mounted over HTTP.
//
// Phase 1 (cache): a pool of worker goroutines serves "requests", each
// of which names one of several modules; every worker compiles through
// a shared, sharded code cache, so each distinct module is decoded,
// validated and compiled exactly once (concurrent first requests
// collapse into a single compilation), and every request after that
// pays only the instantiation (link) cost.
//
// Phase 2 (pool): the same requests served from per-module instance
// pools. Finished instances are recycled instead of dropped, and
// Pool.Get resets them copy-on-write — dirty memory granules replayed
// from the post-instantiation snapshot, globals and tables re-seeded —
// so the per-request setup cost drops from a full link to a reset
// proportional to what the previous request wrote.
//
// Phase 3 (faults): deliberately failing requests — a division by
// zero, an unreachable, and a runaway loop cancelled by a context
// deadline — so the trap and interrupt counters carry real traffic.
//
// Phase 4 (governance): the fault-containment and resource-governance
// surface. Admission is bounded: a burst of clients contends for a
// fixed number of slots, and a client that finds them all busy is shed
// — counted, told to back off, and retried after a delay — instead of
// queueing without bound. Every admitted request runs under per-request
// defaults: a fuel budget (engine.CallOpts) and a context deadline. A
// runaway request is stopped by fuel, deterministically at the same
// iteration in every tier; a host function that panics is contained as
// a host_panic trap, the instance is poisoned, and the pool drops it
// on Put instead of recycling it.
//
// Everything above feeds the process-wide telemetry registry, exposed
// on three endpoints: /metrics (Prometheus text format), /debug/vars
// (expvar JSON, the snapshot under the "wizgo" key), and /debug/trace
// (the request-lifecycle span ring as JSON). -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
//
//	go run ./examples/serving                 # traffic + summary, then exit
//	go run ./examples/serving -listen :8080   # keep serving the endpoints
//	go run ./examples/serving -check          # self-scrape; non-zero exit if
//	                                          # a required metric family is
//	                                          # missing or unpopulated
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rt"
	"wizgo/internal/telemetry"
	"wizgo/internal/wasm"
	"wizgo/internal/workloads"
)

const (
	workers  = 8
	requests = 96

	// Phase 4 resource-governance defaults, applied to every request.
	maxInflight     = 2                      // admission slots
	shedRetryAfter  = 500 * time.Microsecond // backoff a shed client waits before retrying
	requestFuel     = 100_000                // per-call fuel budget (function entries + loop iterations)
	requestDeadline = time.Second            // per-call wall-clock deadline (safety net behind fuel)
)

// mShed counts requests refused at admission. It feeds the same
// registry as the engine-side counters, so load shedding shows up on
// /metrics next to the traps it prevents.
var mShed = telemetry.Default().Counter("wizgo_serving_shed_total",
	"Requests refused at admission (all slots busy) and retried after backoff.")

type result struct {
	item     string
	checksum int64
	latency  time.Duration
}

// serve fans requests over the worker pool; handle serves one request
// for one module and returns its checksum.
func serve(modules []workloads.Item, handle func(workloads.Item) (int64, error)) ([]result, time.Duration) {
	results := make([]result, requests)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := w; r < requests; r += workers {
				item := modules[r%len(modules)]
				t1 := time.Now()
				sum, err := handle(item)
				if err != nil {
					log.Fatal(err)
				}
				results[r] = result{item: item.Name, checksum: sum, latency: time.Since(t1)}
			}
		}(w)
	}
	wg.Wait()
	return results, time.Since(t0)
}

// verify checks that every request for the same module agreed — in
// phase 2 this is what proves resets do not leak state between
// requests — and returns the mean latency.
func verify(results []result) time.Duration {
	want := map[string]int64{}
	var total time.Duration
	for _, r := range results {
		if prev, ok := want[r.item]; ok && prev != r.checksum {
			log.Fatalf("checksum divergence on %s: %#x != %#x", r.item, r.checksum, prev)
		}
		want[r.item] = r.checksum
		total += r.latency
	}
	return total / time.Duration(len(results))
}

func main() {
	listen := flag.String("listen", "", "keep serving /metrics, /debug/vars and /debug/trace on this address after the traffic (e.g. :8080)")
	check := flag.Bool("check", false, "self-scrape mode: bind an ephemeral port, run the traffic, verify the required metric families are present and populated, exit non-zero on failure")
	withPprof := flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/")
	traceCap := flag.Int("trace", 256, "request-lifecycle tracer ring capacity")
	flag.Parse()

	telemetry.DefaultTracer().Enable(*traceCap)

	cache := codecache.New(codecache.Options{Shards: 16, Capacity: 128})
	cfg := engines.WizardSPC()
	cfg.Cache = cache
	e := engine.New(cfg, nil)

	// The "deployed" modules: a few fast line items from each suite.
	modules := []workloads.Item{
		workloads.Ostrich()[3],   // crc
		workloads.Ostrich()[2],   // bfs
		workloads.Libsodium()[0], // stream_chacha20
	}

	// Phase 1: shared code cache, fresh instance per request.
	cached, cachedWall := serve(modules, func(item workloads.Item) (int64, error) {
		cm, err := e.Compile(item.Bytes) // cache hit after the first request per module
		if err != nil {
			return 0, err
		}
		inst, err := cm.Instantiate()
		if err != nil {
			return 0, err
		}
		if _, err := inst.Call("_start"); err != nil {
			return 0, err
		}
		sum, err := inst.Call("checksum")
		if err != nil {
			return 0, err
		}
		inst.Release()
		return sum[0].I64(), nil
	})
	cachedMean := verify(cached)
	st := cache.Stats()
	fmt.Printf("phase 1 (code cache, fresh instances): %d requests, %d workers, wall %v\n",
		requests, workers, cachedWall)
	fmt.Printf("  mean request latency: %v\n", cachedMean)
	fmt.Printf("  code cache: %d artifacts, %d hits, %d misses, %d evictions\n",
		cache.Len(), st.Hits, st.Misses, st.Evictions)

	// Phase 2: same artifacts, requests served from instance pools.
	// Workers contend on one pool per module; resets replay only what
	// the previous request dirtied.
	pools := make(map[string]*engine.InstancePool, len(modules))
	for _, item := range modules {
		cm, err := e.Compile(item.Bytes) // all cache hits now
		if err != nil {
			log.Fatal(err)
		}
		pools[item.Name] = cm.NewPool(workers)
	}
	pooled, pooledWall := serve(modules, func(item workloads.Item) (int64, error) {
		pool := pools[item.Name]
		inst, err := pool.Get()
		if err != nil {
			return 0, err
		}
		if _, err := inst.Call("_start"); err != nil {
			return 0, err
		}
		sum, err := inst.Call("checksum")
		if err != nil {
			return 0, err
		}
		pool.Put(inst)
		return sum[0].I64(), nil
	})
	pooledMean := verify(pooled)

	// The two phases must agree module by module.
	for i := range cached {
		if cached[i].checksum != pooled[i].checksum {
			log.Fatalf("pooled checksum diverged from cached on %s", cached[i].item)
		}
	}

	fmt.Printf("phase 2 (instance pools, copy-on-write reset): wall %v\n", pooledWall)
	fmt.Printf("  mean request latency: %v (%.2fx phase 1)\n",
		pooledMean, float64(cachedMean)/float64(pooledMean))
	for _, item := range modules {
		pst := pools[item.Name].Stats()
		fmt.Printf("  pool %-16s %2d hits / %2d misses, reset mean %v max %v, miss mean %v\n",
			item.Name, pst.Hits, pst.Misses, pst.MeanReset(), pst.ResetMax, pst.MeanMiss())
		pools[item.Name].Close()
	}

	// Phase 3: failing requests, so the trap and interrupt telemetry
	// carries real counts rather than zeros.
	phase3Faults(e)

	// Phase 4: bounded admission, per-request fuel/deadline defaults,
	// and fault containment (host panic → poisoned instance → pool drop).
	phase4Governance()

	mux := observabilityMux(*withPprof)
	if *check {
		if err := selfCheck(mux); err != nil {
			fmt.Fprintln(os.Stderr, "serving: check failed:", err)
			os.Exit(1)
		}
		fmt.Println("check: all required metric families present and populated")
		return
	}
	if *listen != "" {
		fmt.Printf("serving /metrics, /debug/vars, /debug/trace on %s\n", *listen)
		log.Fatal(http.ListenAndServe(*listen, mux))
	}
}

// buildFaulty builds a module whose exports fail in three distinct
// ways: integer division by zero, an unreachable, and a loop that never
// terminates on its own (cancelled by a context deadline instead).
func buildFaulty() []byte {
	b := wasm.NewBuilder()
	div := b.NewFunc("div", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32, wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	})
	div.LocalGet(0).LocalGet(1).Op(wasm.OpI32DivS).End()
	b.Export("div", div.Idx)

	boom := b.NewFunc("boom", wasm.FuncType{})
	boom.Op(wasm.OpUnreachable).End()
	b.Export("boom", boom.Idx)

	spin := b.NewFunc("spin", wasm.FuncType{})
	spin.Loop(wasm.BlockEmpty).Br(0).End().End()
	b.Export("spin", spin.Idx)
	return b.Encode()
}

// phase3Faults drives one request into each failure path and reports
// the trap kinds it collected.
func phase3Faults(e *engine.Engine) {
	cm, err := e.Compile(buildFaulty())
	if err != nil {
		log.Fatal(err)
	}
	fault := func(call func(inst *engine.Instance) error) string {
		inst, err := cm.Instantiate()
		if err != nil {
			log.Fatal(err)
		}
		defer inst.Release()
		if err := call(inst); err != nil {
			return err.Error()
		}
		log.Fatal("serving: fault request unexpectedly succeeded")
		return ""
	}
	kinds := []string{
		fault(func(inst *engine.Instance) error {
			_, err := inst.Call("div", wasm.ValI32(1), wasm.ValI32(0))
			return err
		}),
		fault(func(inst *engine.Instance) error {
			_, err := inst.Call("boom")
			return err
		}),
		fault(func(inst *engine.Instance) error {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer cancel()
			_, err := inst.CallContext(ctx, "spin")
			return err
		}),
	}
	fmt.Printf("phase 3 (faults): %d failing requests\n", len(kinds))
	for _, k := range kinds {
		fmt.Printf("  %s\n", k)
	}
}

// admission is a bounded admission gate: tryAcquire either claims one
// of the fixed slots immediately or reports the request should be shed.
// There is deliberately no blocking acquire — a full server says
// "retry after" instead of growing an unbounded queue.
type admission struct{ slots chan struct{} }

func newAdmission(n int) *admission { return &admission{slots: make(chan struct{}, n)} }

func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (a *admission) release() { <-a.slots }

// buildGoverned builds the phase 4 module: a finite counted loop
// ("work", the well-behaved request), an infinite loop ("spin", stopped
// by the fuel budget rather than the deadline), and a call into a host
// import that panics ("hostcall", contained as a trap).
func buildGoverned() []byte {
	b := wasm.NewBuilder()
	kaboom := b.ImportFunc("env", "kaboom", wasm.FuncType{})

	// work(n) = sum(1..n), one loop iteration (= one fuel unit) per step.
	work := b.NewFunc("work", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	})
	acc := work.AddLocal(wasm.I32)
	work.Block(wasm.BlockEmpty).Loop(wasm.BlockEmpty).
		LocalGet(0).Op(wasm.OpI32Eqz).BrIf(1).
		LocalGet(acc).LocalGet(0).Op(wasm.OpI32Add).LocalSet(acc).
		LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).LocalSet(0).
		Br(0).End().End().
		LocalGet(acc).End()
	b.Export("work", work.Idx)

	spin := b.NewFunc("spin", wasm.FuncType{})
	spin.Loop(wasm.BlockEmpty).Br(0).End().End()
	b.Export("spin", spin.Idx)

	hostcall := b.NewFunc("hostcall", wasm.FuncType{})
	hostcall.Call(kaboom).End()
	b.Export("hostcall", hostcall.Idx)
	return b.Encode()
}

// phase4Governance drives the resource-governance traffic: a burst of
// clients through bounded admission (every client is shed at least once
// — the slots are held until the whole burst has arrived), then a
// fuel-exhausted request and a host-panic request whose poisoned
// instance the pool must drop.
func phase4Governance() {
	// A separate engine: the governed module imports a host function,
	// which needs a linker; phases 1–3 run without one.
	linker := engine.NewLinker().Func("env", "kaboom", wasm.FuncType{},
		func(_ *rt.Context, _, _ []uint64) error {
			panic("kaboom: simulated host-function bug")
		})
	le := engine.New(engines.WizardSPC(), linker)
	cm, err := le.Compile(buildGoverned())
	if err != nil {
		log.Fatal(err)
	}
	pool := cm.NewPool(maxInflight)
	defer pool.Close()

	// Per-request defaults: every call below runs under the same fuel
	// budget and deadline, whatever its handler does.
	call := func(inst *engine.Instance, name string, args ...wasm.Value) ([]wasm.Value, error) {
		ctx, cancel := context.WithTimeout(context.Background(), requestDeadline)
		defer cancel()
		return inst.CallWith(ctx, engine.CallOpts{Fuel: requestFuel}, name, args...)
	}

	// Bounded admission under a synthetic overload: main holds every
	// slot until all clients have arrived and been shed once, which
	// makes the shed counter deterministic rather than scheduling-
	// dependent. Shed clients back off and retry; none is dropped.
	admit := newAdmission(maxInflight)
	for i := 0; i < maxInflight; i++ {
		admit.tryAcquire()
	}
	const burst = 8
	var shedOnce, done sync.WaitGroup
	shedOnce.Add(burst)
	done.Add(burst)
	for c := 0; c < burst; c++ {
		go func(c int) {
			defer done.Done()
			first := true
			for !admit.tryAcquire() {
				mShed.Inc()
				if first {
					shedOnce.Done()
					first = false
				}
				time.Sleep(shedRetryAfter)
			}
			if first {
				shedOnce.Done() // keep the WaitGroup sound even if never shed
			}
			defer admit.release()
			inst, err := pool.Get()
			if err != nil {
				log.Fatal(err)
			}
			n := int32(1000 + c)
			res, err := call(inst, "work", wasm.ValI32(n))
			if err != nil {
				log.Fatal(err)
			}
			if got, want := res[0].I32(), n*(n+1)/2; got != want {
				log.Fatalf("work(%d) = %d, want %d", n, got, want)
			}
			pool.Put(inst)
		}(c)
	}
	shedOnce.Wait()
	for i := 0; i < maxInflight; i++ {
		admit.release()
	}
	done.Wait()

	expectTrap := func(kind rt.TrapKind, name string, args ...wasm.Value) (*engine.Instance, string) {
		inst, err := pool.Get()
		if err != nil {
			log.Fatal(err)
		}
		_, err = call(inst, name, args...)
		var trap *rt.Trap
		if !errors.As(err, &trap) || trap.Kind != kind {
			log.Fatalf("serving: %s: got %v, want %v trap", name, err, kind)
		}
		return inst, trap.Kind.String()
	}

	// A runaway request: fuel, not the deadline, stops it — at the same
	// iteration count in every tier. The instance is NOT poisoned (the
	// trap unwound cleanly), so recycling it is fine.
	inst, fuelKind := expectTrap(rt.TrapFuelExhausted, "spin")
	pool.Put(inst)

	// A host panic: contained as a trap, the instance poisoned. The
	// pool's background reset refuses it and drops it; wait for that
	// drop so the counter is populated before the self-check scrapes.
	inst, panicKind := expectTrap(rt.TrapHostPanic, "hostcall")
	pool.Put(inst)
	for i := 0; pool.Stats().PoisonDrops == 0; i++ {
		if i > 5000 {
			log.Fatal("serving: poisoned instance was never dropped by the pool")
		}
		time.Sleep(time.Millisecond)
	}

	st := pool.Stats()
	fmt.Printf("phase 4 (governance): %d clients over %d admission slots\n", burst, maxInflight)
	fmt.Printf("  shed %d time(s) with %v retry backoff, all clients eventually served\n",
		mShed.Value(), shedRetryAfter)
	fmt.Printf("  per-request defaults: fuel %d, deadline %v\n", requestFuel, requestDeadline)
	fmt.Printf("  runaway request: %s; host panic: %s, %d poisoned instance(s) dropped\n",
		fuelKind, panicKind, st.PoisonDrops)
}

var publishOnce sync.Once

// observabilityMux mounts the full observability surface: Prometheus
// text on /metrics, the expvar JSON (snapshot under the "wizgo" key)
// on /debug/vars, the lifecycle span ring on /debug/trace, and
// optionally net/http/pprof.
func observabilityMux(withPprof bool) *http.ServeMux {
	publishOnce.Do(func() { telemetry.PublishExpvar(telemetry.Default()) })
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(telemetry.Default()))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		telemetry.DefaultTracer().WriteJSON(w)
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// requiredSeries are the series a scrape must report with a non-zero
// value after the three phases — the contract the CI smoke asserts.
var requiredSeries = []string{
	"wizgo_cache_hits_total",
	"wizgo_cache_misses_total",
	"wizgo_pool_gets_total",
	"wizgo_pool_hits_total",
	"wizgo_pool_reset_seconds_count",
	"wizgo_compile_seconds_count",
	"wizgo_link_seconds_count",
	"wizgo_execute_seconds_count",
	`wizgo_traps_total{kind="div_by_zero"}`,
	`wizgo_traps_total{kind="unreachable"}`,
	`wizgo_traps_total{kind="interrupted"}`,
	`wizgo_traps_total{kind="fuel_exhausted"}`,
	`wizgo_traps_total{kind="host_panic"}`,
	"wizgo_serving_shed_total",
	"wizgo_pool_poison_drops_total",
}

// selfCheck binds an ephemeral port, scrapes the three endpoints over
// real HTTP, and verifies the required series are present and populated.
func selfCheck(mux *http.ServeMux) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) ([]byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}

	// /metrics: parse the exposition text into series → value and
	// demand every required series is non-zero.
	body, err := get("/metrics")
	if err != nil {
		return err
	}
	series := map[string]string{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i > 0 {
			series[line[:i]] = line[i+1:]
		}
	}
	for _, name := range requiredSeries {
		v, ok := series[name]
		if !ok {
			return fmt.Errorf("/metrics: required series %s missing", name)
		}
		if v == "0" || v == "0.0" {
			return fmt.Errorf("/metrics: required series %s is zero after traffic", name)
		}
	}

	// /debug/vars: the snapshot must be published under "wizgo" with
	// the three sections.
	body, err = get("/debug/vars")
	if err != nil {
		return err
	}
	var vars struct {
		Wizgo map[string]json.RawMessage `json:"wizgo"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		return fmt.Errorf("/debug/vars: %w", err)
	}
	for _, section := range []string{"counters", "gauges", "histograms"} {
		if _, ok := vars.Wizgo[section]; !ok {
			return fmt.Errorf("/debug/vars: wizgo.%s missing", section)
		}
	}

	// /debug/trace: the ring must hold spans from the traffic above.
	body, err = get("/debug/trace")
	if err != nil {
		return err
	}
	var spans []telemetry.Span
	if err := json.Unmarshal(body, &spans); err != nil {
		return fmt.Errorf("/debug/trace: %w", err)
	}
	if len(spans) == 0 {
		return fmt.Errorf("/debug/trace: no spans recorded")
	}
	stages := map[string]bool{}
	for _, s := range spans {
		stages[s.Stage] = true
	}
	for _, stage := range []string{telemetry.StageExecute, telemetry.StageTrap} {
		if !stages[stage] {
			return fmt.Errorf("/debug/trace: no %q span recorded", stage)
		}
	}
	return nil
}
