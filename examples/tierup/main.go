// Tier-up example (the paper's Section IV-B / Figure 2): run a hot loop
// under the tiered configuration. Execution starts in the in-place
// interpreter; after the OSR threshold the loop back-edge requests
// tier-up, the function is compiled, and the same frame continues in
// machine code — the counters show both tiers did real work.
//
//	go run ./examples/tierup
package main

import (
	"fmt"
	"log"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/wasm"
)

func main() {
	b := wasm.NewBuilder()
	f := b.NewFunc("spin", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I64},
		Results: []wasm.ValueType{wasm.I64},
	})
	i := f.AddLocal(wasm.I64)
	acc := f.AddLocal(wasm.I64)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(acc).LocalGet(i).I64Const(7).Op(wasm.OpI64Mul).Op(wasm.OpI64Add).LocalSet(acc)
	f.LocalGet(i).I64Const(1).Op(wasm.OpI64Add).LocalTee(i)
	f.LocalGet(0).Op(wasm.OpI64LtS)
	f.BrIf(0)
	f.End()
	f.LocalGet(acc)
	f.End()
	b.Export("spin", f.Idx)

	cfg := engines.WizardTiered(1000) // tier up after 1000 back-edges
	// Under the tiered (lazy) preset the compiled artifact carries no
	// code: each instance starts in the interpreter and compiles its own
	// functions when they get hot.
	cm, err := engine.New(cfg, nil).Compile(b.Encode())
	if err != nil {
		log.Fatal(err)
	}
	inst, err := cm.Instantiate()
	if err != nil {
		log.Fatal(err)
	}
	inst.Ctx.CountStats = true

	res, err := inst.Call("spin", wasm.ValI64(5_000_000))
	if err != nil {
		log.Fatal(err)
	}
	st := inst.Ctx.Stats
	fmt.Printf("result:        %d\n", res[0].I64())
	fmt.Printf("interp ops:    %d   (before tier-up)\n", st.InterpOps)
	fmt.Printf("machine ops:   %d   (after tier-up)\n", st.MachOps)
	fmt.Printf("OSR tier-ups:  %d\n", st.OSRUps)
	if st.OSRUps == 0 || st.MachOps == 0 {
		log.Fatal("expected on-stack replacement to happen")
	}
	fmt.Println("\nthe loop entered in the interpreter and finished in compiled code,")
	fmt.Println("without the frame ever moving — both tiers share the value stack.")
}
