// Linking: a two-module pipeline over the namespaced Linker.
//
// Module "store" owns a linear memory and exports it together with an
// accumulating function. Module "pipeline" imports both: it writes
// samples directly into the shared memory and then calls store's
// function — which runs in store's instance, on store's globals — to
// fold them. The host reads the shared memory afterwards to show that
// all three parties (store, pipeline, host) observe the same bytes.
//
// The second half demonstrates context-aware calls: a deliberately
// runaway loop is cancelled by a deadline, unwinding with a clean
// interrupt trap instead of hanging the goroutine.
//
//	go run ./examples/linking
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/wasm"
)

// buildStore builds the exporting module: one page of memory, a mutable
// i64 total, and sum(base, n) -> i64 adding n little-endian u32 samples
// at byte offset base into total.
func buildStore() []byte {
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	total := b.AddGlobal(wasm.I64, true, wasm.ValI64(0))

	f := b.NewFunc("sum", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32, wasm.I32},
		Results: []wasm.ValueType{wasm.I64},
	})
	i := f.AddLocal(wasm.I32)
	f.Block(wasm.BlockEmpty)
	f.LocalGet(1).I32Const(0).Op(wasm.OpI32LeS).BrIf(0)
	f.Loop(wasm.BlockEmpty)
	// total += mem[base + 4*i]
	f.GlobalGet(total)
	f.LocalGet(0).LocalGet(i).I32Const(4).Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
	f.Load(wasm.OpI32Load, 0).Op(wasm.OpI64ExtendI32U)
	f.Op(wasm.OpI64Add).GlobalSet(total)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
	f.LocalGet(1).Op(wasm.OpI32LtS).BrIf(0)
	f.End()
	f.End()
	f.GlobalGet(total)
	f.End()

	b.Export("sum", f.Idx)
	b.ExportMemory("mem")
	b.ExportGlobal("total", total)
	return b.Encode()
}

// buildPipeline builds the importing module: it borrows store.mem and
// store.sum, writes n ramp samples into the shared memory itself, and
// asks store to fold them.
func buildPipeline() []byte {
	b := wasm.NewBuilder()
	sum := b.ImportFunc("store", "sum", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32, wasm.I32},
		Results: []wasm.ValueType{wasm.I64},
	})
	b.ImportMemory("store", "mem", 1, 1)

	f := b.NewFunc("produce", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32},
		Results: []wasm.ValueType{wasm.I64},
	})
	i := f.AddLocal(wasm.I32)
	f.Block(wasm.BlockEmpty)
	f.LocalGet(0).I32Const(0).Op(wasm.OpI32LeS).BrIf(0)
	f.Loop(wasm.BlockEmpty)
	// mem[4*i] = i + 1  (written by THIS module into store's memory)
	f.LocalGet(i).I32Const(4).Op(wasm.OpI32Mul)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add)
	f.Store(wasm.OpI32Store, 0)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
	f.LocalGet(0).Op(wasm.OpI32LtS).BrIf(0)
	f.End()
	f.End()
	f.I32Const(0).LocalGet(0).Call(sum)
	f.End()
	b.Export("produce", f.Idx)

	// An infinite loop for the cancellation demo.
	spin := b.NewFunc("spin", wasm.FuncType{})
	spin.Loop(wasm.BlockEmpty).Br(0).End().End()
	b.Export("spin", spin.Idx)
	return b.Encode()
}

func main() {
	storeBytes, pipeBytes := buildStore(), buildPipeline()

	for _, cfg := range []engine.Config{engines.WizardINT(), engines.WizardSPC()} {
		// Instantiate the exporter, then hand its exports to a linker
		// under the "store" namespace; every module instantiated through
		// an engine built from that linker can import them.
		store, err := engine.New(cfg, nil).Instantiate(storeBytes)
		if err != nil {
			log.Fatal(err)
		}
		linker := engine.NewLinker()
		if err := linker.DefineInstance("store", store); err != nil {
			log.Fatal(err)
		}
		pipe, err := engine.New(cfg, linker).Instantiate(pipeBytes)
		if err != nil {
			log.Fatal(err)
		}

		res, err := pipe.Call("produce", wasm.ValI32(10))
		if err != nil {
			log.Fatal(err)
		}
		// All three views agree: pipe wrote, store summed, host reads.
		fmt.Printf("%-12s produce(10) = %d (store saw mem[4..8) = %d %d)\n",
			cfg.Name, res[0].I64(), store.RT.Memory.Data[4], store.RT.Memory.Data[8])

		// Cancellation: spin() never returns on its own; the deadline
		// arms the interrupt flag and the executor unwinds at the next
		// loop back-edge.
		callCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		t0 := time.Now()
		_, err = pipe.CallContext(callCtx, "spin")
		cancel()
		fmt.Printf("%-12s spin() interrupted after %v: %v (deadline: %v)\n",
			cfg.Name, time.Since(t0).Round(time.Millisecond), err,
			errors.Is(err, context.DeadlineExceeded))
	}
}
