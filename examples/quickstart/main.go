// Quickstart: build a Wasm module in memory, run it under the in-place
// interpreter and the single-pass compiler, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/wasm"
)

func main() {
	// A module computing the n-th Fibonacci number iteratively.
	b := wasm.NewBuilder()
	f := b.NewFunc("fib", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32},
		Results: []wasm.ValueType{wasm.I64},
	})
	a := f.AddLocal(wasm.I64)
	c := f.AddLocal(wasm.I64)
	tmp := f.AddLocal(wasm.I64)
	f.I64Const(0).LocalSet(a)
	f.I64Const(1).LocalSet(c)
	f.Block(wasm.BlockEmpty)
	f.LocalGet(0).I32Const(0).Op(wasm.OpI32LeS).BrIf(0)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(a).LocalGet(c).Op(wasm.OpI64Add).LocalSet(tmp)
	f.LocalGet(c).LocalSet(a)
	f.LocalGet(tmp).LocalSet(c)
	f.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).LocalTee(0)
	f.I32Const(0).Op(wasm.OpI32GtS).BrIf(0)
	f.End()
	f.End()
	f.LocalGet(a)
	f.End()
	b.Export("fib", f.Idx)
	module := b.Encode()
	fmt.Printf("module: %d bytes\n", len(module))

	for _, cfg := range []engine.Config{engines.WizardINT(), engines.WizardSPC()} {
		// Compile once: decode + validate + per-function compilation
		// yield a reusable artifact; instantiation is only linking.
		cm, err := engine.New(cfg, nil).Compile(module)
		if err != nil {
			log.Fatal(err)
		}
		t1 := time.Now()
		inst, err := cm.Instantiate()
		if err != nil {
			log.Fatal(err)
		}
		instantiate := time.Since(t1)
		t0 := time.Now()
		res, err := inst.Call("fib", wasm.ValI32(1_000_000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s fib(1e6) mod 2^64 = %d  in %v (compile %v, instantiate %v)\n",
			cfg.Name, res[0].I64(), time.Since(t0), cm.Timings.Setup(), instantiate)
	}
}
