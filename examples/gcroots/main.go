// GC roots example (the paper's Section IV-C): externref values held in
// Wasm locals and operand stack slots survive a host-triggered
// collection because the stack walker finds them through value tags —
// with no compiler-emitted metadata at all. The same program run under a
// stackmap engine (Liftoff-like) finds the identical root set through
// per-callsite stackmaps.
//
//	go run ./examples/gcroots
package main

import (
	"fmt"
	"log"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/heap"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

func buildModule() []byte {
	b := wasm.NewBuilder()
	gcIdx := b.ImportFunc("env", "collect", wasm.FuncType{})
	f := b.NewFunc("keepalive", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.ExternRef, wasm.ExternRef},
		Results: []wasm.ValueType{wasm.I32},
	})
	l := f.AddLocal(wasm.ExternRef)
	f.LocalGet(0).LocalSet(l) // ref in a local
	f.LocalGet(1)             // ref on the operand stack
	f.Call(gcIdx)             // GC happens here, mid-function
	f.Op(wasm.OpRefIsNull)
	f.End()
	b.Export("keepalive", f.Idx)
	return b.Encode()
}

func run(cfg engine.Config, mode heap.ScanMode, label string) {
	h := heap.New(mode)
	linker := engine.NewLinker().Func("env", "collect", wasm.FuncType{},
		func(ctx *rt.Context, args, results []uint64) error {
			swept, err := h.Collect(ctx)
			fmt.Printf("  [%s] collected mid-call: %d live, %d swept\n", label, h.LastLive, swept)
			return err
		})
	cfg.Tags = true
	cm, err := engine.New(cfg, linker).Compile(buildModule())
	if err != nil {
		log.Fatal(err)
	}
	inst, err := cm.Instantiate()
	if err != nil {
		log.Fatal(err)
	}
	a := h.Alloc(0xA)
	bb := h.Alloc(0xB)
	h.Alloc(0xDEAD) // unreferenced: must be swept
	if _, err := inst.Call("keepalive", wasm.ValRef(a), wasm.ValRef(bb)); err != nil {
		log.Fatal(err)
	}
	if h.Get(a) == nil || h.Get(bb) == nil {
		log.Fatalf("[%s] live object was collected!", label)
	}
	fmt.Printf("  [%s] refs in local and operand stack survived\n\n", label)
}

func main() {
	fmt.Println("value tags (Wizard's strategy — no metadata):")
	run(engines.WizardSPC(), heap.ScanTags, "tags/jit")
	run(engines.WizardINT(), heap.ScanTags, "tags/interp")

	fmt.Println("stackmaps (Web-engine strategy — per-callsite metadata):")
	run(engines.LiftoffLike(), heap.ScanStackmaps, "stackmaps/jit")
}
