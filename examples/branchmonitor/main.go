// Branch monitor example (the paper's Section IV-D / Figure 6 workload):
// attach a probe to every conditional branch of a benchmark module and
// profile taken/not-taken counts, under both the interpreter and the
// probe-intrinsifying JIT — the profiles must agree exactly.
//
//	go run ./examples/branchmonitor
package main

import (
	"fmt"
	"log"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/monitors"
	"wizgo/internal/workloads"
)

func main() {
	item := workloads.Ostrich()[2] // bfs: branch-heavy
	fmt.Printf("instrumenting %s/%s (%d bytes)\n\n", item.Suite, item.Name, len(item.Bytes))

	for _, cfg := range []engine.Config{engines.WizardINT(), engines.WizardSPC()} {
		// Compile once; probes are per-instance state attached after
		// instantiation, so the shared artifact stays pristine.
		cm, err := engine.New(cfg, nil).Compile(item.Bytes)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := cm.Instantiate()
		if err != nil {
			log.Fatal(err)
		}
		mon, err := monitors.AttachBranchMonitor(inst)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if _, err := inst.Call("_start"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (ran in %v) ---\n%s\n", cfg.Name, time.Since(t0), mon.Report(5))

		// A sibling instance of the same artifact runs uninstrumented at
		// full speed — instrumentation never leaks across instances.
		plain, err := cm.Instantiate()
		if err != nil {
			log.Fatal(err)
		}
		t1 := time.Now()
		if _, err := plain.Call("_start"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    uninstrumented sibling instance ran in %v\n\n", time.Since(t1))
	}
}
