// Command wizgo runs a WebAssembly module under a selectable execution
// tier, the equivalent of the paper's research engine CLI.
//
// Usage:
//
//	wizgo [-tier wizeng-spc] [-invoke name] [-instances N] [-compile-workers N] [-pool [-pool-size N]] [-cache-dir dir] [-stats [-json]] [-profile N] [-timeout 2s] module.wasm [args...]
//
// The module is compiled once (per-function compilation fans out over
// -compile-workers cores) and then instantiated -instances times from
// the shared artifact, reporting the compile and instantiate phases
// separately. With -pool, the runs are served from an instance pool
// instead: finished instances are recycled and reset copy-on-write, so
// each run after the first pays reset cost proportional to what the
// previous run wrote, not a full instantiation.
//
// Tiers: any name from `wizgo -list`, e.g. wizeng-int, wizeng-spc,
// wizeng-tiered, v8-liftoff, sm-base, wasmer-base, wazero, wasm-now,
// wasm3, v8-turbofan, wasmtime, wavm, ...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/mach"
	"wizgo/internal/monitors"
	"wizgo/internal/telemetry"
	"wizgo/internal/wasm"
)

func main() {
	tier := flag.String("tier", "wizeng-spc", "execution tier")
	invoke := flag.String("invoke", "_start", "exported function to call")
	list := flag.Bool("list", false, "list available tiers")
	disasm := flag.Bool("disasm", false, "print compiled code of the invoked function")
	branches := flag.Bool("monitor-branches", false, "attach the branch monitor and report after the run")
	workers := flag.Int("compile-workers", 0, "per-function compile workers (0 = all cores, 1 = serial)")
	instances := flag.Int("instances", 1, "instantiate the compiled module N times and run each")
	usePool := flag.Bool("pool", false, "serve the -instances runs from an instance pool (recycle + copy-on-write reset) instead of fresh links")
	poolSize := flag.Int("pool-size", 0, "idle instances the pool retains (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-call deadline; a run exceeding it is interrupted cleanly (0 = no deadline)")
	fuel := flag.Int64("fuel", 0, "per-call fuel budget: one unit per function entry and loop iteration; exhaustion traps deterministically (0 = unlimited)")
	cacheDir := flag.String("cache-dir", "", "persistent code cache directory; a warm cache serves Compile from disk with zero compiler invocations")
	stats := flag.Bool("stats", false, "report the unified telemetry snapshot (cache, pool, compile/link/execute histograms, traps) after the run")
	statsJSON := flag.Bool("json", false, "with -stats, write the snapshot as JSON to stdout instead of text to stderr")
	profileTop := flag.Int("profile", 0, "attach the execution profiler and report the top-N hot functions after each run")
	noAnalysis := flag.Bool("noanalysis", false, "disable the static-analysis pass (keep every dynamic bounds check and interrupt poll)")
	flag.Parse()

	if *list {
		for _, c := range engines.SQSpaceTiers() {
			fmt.Printf("%-14s (%s)\n", c.Name, engines.TierClass(c.Name))
		}
		fmt.Printf("%-14s (%s)\n", "wizeng-tiered", "tiered: interpreter + OSR to SPC")
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: wizgo [flags] module.wasm [args...]")
		os.Exit(2)
	}

	cfg, ok := engines.ByName(*tier)
	if !ok {
		fmt.Fprintf(os.Stderr, "wizgo: unknown tier %q (try -list)\n", *tier)
		os.Exit(2)
	}
	cfg.CompileWorkers = *workers
	cfg.NoAnalysis = *noAnalysis
	var cache *codecache.Cache
	if *cacheDir != "" || *stats {
		// A cache handle of our own lets -stats report the memory and
		// disk counters after the run (engine.New would otherwise
		// create one privately).
		cache = codecache.New(codecache.Options{})
		cfg.Cache = cache
	}
	if *cacheDir != "" {
		disk, err := engine.OpenDiskCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cfg.DiskCache = disk
	}
	bytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	// Compile once; every instance below links against this artifact.
	eng := engine.New(cfg, nil)
	t0 := time.Now()
	cm, err := eng.Compile(bytes)
	if err != nil {
		fatal(err)
	}
	compileWall := time.Since(t0)

	if *instances < 1 {
		*instances = 1
	}

	// Resolve the export and parse arguments once, before any instance
	// exists: the function type is a property of the compiled module.
	fidx, ok := cm.Module.ExportedFunc(*invoke)
	if !ok {
		fatal(fmt.Errorf("no exported function %q", *invoke))
	}
	ftype, err := cm.Module.FuncTypeAt(fidx)
	if err != nil {
		fatal(err)
	}
	args := make([]wasm.Value, flag.NArg()-1)
	for i, a := range flag.Args()[1:] {
		if i >= len(ftype.Params) {
			fatal(fmt.Errorf("too many arguments for %s %v", *invoke, ftype))
		}
		v, err := parseArg(ftype.Params[i], a)
		if err != nil {
			fatal(err)
		}
		args[i] = v
	}

	var pool *engine.InstancePool
	if *usePool {
		if *branches || *profileTop > 0 {
			// Probes persist across pooled recycling, so re-attaching a
			// monitor every request would stack duplicate probes.
			fatal(fmt.Errorf("-pool and -monitor-branches/-profile are mutually exclusive"))
		}
		pool = cm.NewPool(*poolSize)
		defer pool.Close()
	}

	var instantiateWall time.Duration
	for n := 0; n < *instances; n++ {
		t1 := time.Now()
		var inst *engine.Instance
		var err error
		if pool != nil {
			inst, err = pool.Get()
		} else {
			inst, err = cm.Instantiate()
		}
		if err != nil {
			fatal(err)
		}
		instantiateWall += time.Since(t1)

		var mon *monitors.BranchMonitor
		if *branches {
			if mon, err = monitors.AttachBranchMonitor(inst); err != nil {
				fatal(err)
			}
		}
		var prof *monitors.Profiler
		if *profileTop > 0 {
			if prof, err = monitors.AttachProfiler(inst); err != nil {
				fatal(err)
			}
		}
		f := inst.RT.Funcs[fidx]

		if *disasm && n == 0 {
			if code, ok := f.Compiled.(*mach.Code); ok {
				fmt.Printf("; %s (%s), %d instructions\n%s\n",
					f.Name, cfg.Name, len(code.Instrs), code.Disassemble())
			} else {
				fmt.Fprintf(os.Stderr, "wizgo: %s has no MachCode under tier %s\n", f.Name, cfg.Name)
			}
		}

		callCtx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			callCtx, cancel = context.WithTimeout(callCtx, *timeout)
		}
		results, err := inst.CallFuncWith(callCtx, engine.CallOpts{Fuel: *fuel}, f, args...)
		cancel() // release the deadline timer before the next instance
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			fmt.Println(r)
		}
		if mon != nil {
			fmt.Print(mon.Report(10))
		}
		if prof != nil {
			fmt.Print(prof.Report(*profileTop))
		}
		if pool != nil {
			pool.Put(inst) // recycle the whole instance for the next run
		} else {
			inst.Release() // recycle the value stack for the next instance
		}
	}
	if cm.Timings.Rehydrate > 0 {
		fmt.Fprintf(os.Stderr, "compile: %v (decode %v, rehydrate %v — loaded from disk cache), code %d bytes\n",
			compileWall, cm.Timings.Decode, cm.Timings.Rehydrate, cm.Timings.CodeBytes)
	} else {
		fmt.Fprintf(os.Stderr, "compile: %v (decode %v, validate %v, analyze %v, compile %v), code %d bytes\n",
			compileWall, cm.Timings.Decode, cm.Timings.Validate, cm.Timings.Analyze,
			cm.Timings.Compile, cm.Timings.CodeBytes)
	}
	if st := cm.AnalysisStats(); st.Funcs > 0 {
		fmt.Fprintf(os.Stderr, "analysis: %d bounds checks and %d loop polls elided, %d/%d functions read-only\n",
			st.BoundsProven, st.PollsElided, st.ReadOnly, st.Funcs)
	}
	if pool != nil {
		st := pool.Stats()
		fmt.Fprintf(os.Stderr, "pool: %v total across %d get(s): %d hits, %d misses (mean %v); resets %d on-put (mean %v) / %d on-get (mean %v), max %v\n",
			instantiateWall, *instances, st.Hits, st.Misses, st.MeanMiss(),
			st.ResetsOnPut, st.MeanResetOnPut(),
			st.ResetsOnGet, st.MeanResetOnGet(), st.ResetMax)
	} else {
		fmt.Fprintf(os.Stderr, "instantiate: %v total across %d instance(s)\n",
			instantiateWall, *instances)
	}
	if *stats {
		// One unified snapshot covers what used to be separate cache,
		// pool, and compiler-invocation reports: every producer in the
		// process (memory + disk cache, pool, compile/link/execute
		// histograms, trap counters) feeds the same registry.
		snap := telemetry.Default().Snapshot()
		if *statsJSON {
			if err := snap.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			fmt.Fprintln(os.Stderr, "telemetry:")
			snap.WriteText(os.Stderr)
		}
	}
}

func parseArg(t wasm.ValueType, s string) (wasm.Value, error) {
	switch t {
	case wasm.I32:
		v, err := strconv.ParseInt(s, 0, 32)
		if err != nil {
			return wasm.Value{}, err
		}
		return wasm.ValI32(int32(v)), nil
	case wasm.I64:
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return wasm.Value{}, err
		}
		return wasm.ValI64(v), nil
	case wasm.F32:
		v, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return wasm.Value{}, err
		}
		return wasm.ValF32(float32(v)), nil
	case wasm.F64:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return wasm.Value{}, err
		}
		return wasm.ValF64(v), nil
	}
	return wasm.Value{}, fmt.Errorf("cannot parse %q as %v", s, t)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wizgo:", err)
	os.Exit(1)
}
