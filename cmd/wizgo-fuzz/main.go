// Command wizgo-fuzz drives the differential testing engine from the
// command line: it generates structure-aware modules (internal/difftest)
// and cross-executes each one through every engine configuration ×
// analysis on/off, reporting any divergence. With -minimize, diverging
// modules are shrunk and written into a corpus directory as
// self-contained reproducers.
//
// The command also retains the module-writing mode of its predecessor
// (wasmgen): -write-modules dumps the deterministic workload modules of
// internal/workloads to disk as .wasm files, so they can be inspected
// with external tools or fed to other engines.
//
// Usage:
//
//	wizgo-fuzz [-n 500] [-seed 1] [-invalid 0.2] [-deadline 2s]
//	           [-minimize] [-corpus DIR] [-json]
//	wizgo-fuzz -write-modules [-out ./modules] [-m0]
//
// The seed is an explicit flag (default 1) so runs are reproducible:
// the same seed always generates the same modules. CI runs a fixed
// seed; local exploration varies it by hand.
//
// Exit status is nonzero when any divergence was found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"wizgo/internal/difftest"
	"wizgo/internal/workloads"
)

type summary struct {
	Ran         int      `json:"ran"`
	Invalid     int      `json:"invalid"`
	Divergences int      `json:"divergences"`
	Configs     []string `json:"configs"`
	Reproducers []string `json:"reproducers,omitempty"`
}

func main() {
	n := flag.Int("n", 500, "number of generated modules to cross-execute")
	seed := flag.Int64("seed", 1, "base generator seed (runs are deterministic per seed)")
	invalid := flag.Float64("invalid", 0.2, "fraction of iterations that additionally test a mutated (usually invalid) module")
	deadline := flag.Duration("deadline", 2*time.Second, "per-call execution deadline (safety net)")
	fuel := flag.Int64("fuel", 0, "per-call fuel budget (0 = unlimited); exhaustion must agree across all configs")
	minimize := flag.Bool("minimize", false, "minimize diverging modules and write reproducers into -corpus")
	corpus := flag.String("corpus", "internal/difftest/corpus", "reproducer directory for -minimize")
	jsonOut := flag.Bool("json", false, "print the run summary as JSON")

	writeModules := flag.Bool("write-modules", false, "write the workload modules to -out instead of fuzzing")
	out := flag.String("out", "modules", "output directory for -write-modules")
	emitM0 := flag.Bool("m0", false, "with -write-modules, also write the early-return (m0) variants")
	flag.Parse()

	if *writeModules {
		writeWorkloadModules(*out, *emitM0)
		return
	}

	o := difftest.NewOracle()
	o.Deadline = *deadline
	o.Fuel = *fuel
	sum := summary{Configs: o.Configs()}
	mutRand := rand.New(rand.NewSource(*seed))

	fail := func(g difftest.Generated, outs []difftest.EngineOutcome, d *difftest.Divergence) {
		sum.Divergences++
		fmt.Fprintf(os.Stderr, "%v\n%s", d, difftest.OutcomeTable(outs))
		if !*minimize {
			return
		}
		min := difftest.Minimize(g, o.Diverges)
		mouts, md := o.Run(min)
		note := d.Error()
		if md != nil {
			note = md.Error()
		}
		path, err := difftest.WriteReproducer(*corpus, min, note, difftest.OutcomeTable(mouts))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wizgo-fuzz: write reproducer:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "wizgo-fuzz: wrote", path)
		sum.Reproducers = append(sum.Reproducers, path)
	}

	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		g := difftest.Generate(s, difftest.GenConfig{})
		sum.Ran++
		if outs, d := o.Run(g); d != nil {
			fail(g, outs, d)
		}
		if mutRand.Float64() < *invalid {
			mut := difftest.MutateInvalid(mutRand, g.Bytes)
			mg := difftest.Generated{Seed: s, Bytes: mut, Calls: difftest.DeriveCalls(mut)}
			sum.Invalid++
			if outs, d := o.Run(mg); d != nil {
				fail(mg, outs, d)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("wizgo-fuzz: %d generated + %d mutated modules across %d configs: %d divergences\n",
			sum.Ran, sum.Invalid, len(sum.Configs), sum.Divergences)
	}
	if sum.Divergences > 0 {
		os.Exit(1)
	}
}

// writeWorkloadModules is the retained wasmgen mode: dump the workload
// suite (not a "benchmark suite" in name only — these are the
// evaluation's workload modules) for external inspection.
func writeWorkloadModules(out string, emitM0 bool) {
	items := workloads.All()
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	total := 0
	for _, it := range items {
		dir := filepath.Join(out, it.Suite)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, it.Name+".wasm"), it.Bytes, 0o644); err != nil {
			fatal(err)
		}
		total++
		if emitM0 {
			if err := os.WriteFile(filepath.Join(dir, it.Name+".m0.wasm"), it.BytesM0, 0o644); err != nil {
				fatal(err)
			}
			total++
		}
	}
	if err := os.WriteFile(filepath.Join(out, "mnop.wasm"), workloads.Mnop(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d workload modules to %s\n", total+1, out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wizgo-fuzz:", err)
	os.Exit(1)
}
