package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, pkgPath, src string) []diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, file, pkgPath)
}

func TestTrapLiteralFlagged(t *testing.T) {
	src := `package p
import "wizgo/internal/rt"
func f() error { return &rt.Trap{} }
`
	diags := check(t, "wizgo/internal/engine", src)
	if len(diags) != 1 || diags[0].analyzer != "traps" {
		t.Fatalf("want one traps diagnostic, got %v", diags)
	}
}

func TestTrapLiteralAliasedImportFlagged(t *testing.T) {
	src := `package p
import runtime2 "wizgo/internal/rt"
func f() error { return &runtime2.Trap{Kind: 1} }
`
	if diags := check(t, "wizgo/internal/engine", src); len(diags) != 1 {
		t.Fatalf("aliased import dodged the rule: %v", diags)
	}
}

func TestTrapConstructorAllowed(t *testing.T) {
	src := `package p
import "wizgo/internal/rt"
func f() error { return rt.NewTrap(rt.TrapUnreachable, 0, 0) }
`
	if diags := check(t, "wizgo/internal/engine", src); len(diags) != 0 {
		t.Fatalf("constructor flagged: %v", diags)
	}
}

func TestTrapLiteralInsideRTAllowed(t *testing.T) {
	src := `package rt
import rt "wizgo/internal/rt"
func f() error { return &rt.Trap{} }
`
	if diags := check(t, "wizgo/internal/rt", src); len(diags) != 0 {
		t.Fatalf("internal/rt's own literal flagged: %v", diags)
	}
}

func TestTimeNowInHotPackageFlagged(t *testing.T) {
	src := `package interp
import "time"
func f() time.Time { return time.Now() }
`
	diags := check(t, "wizgo/internal/interp", src)
	if len(diags) != 1 || diags[0].analyzer != "timenow" {
		t.Fatalf("want one timenow diagnostic, got %v", diags)
	}
}

func TestTimeNowAllowComment(t *testing.T) {
	src := `package interp
import "time"
func f() time.Time {
	return time.Now() //vet:allow timenow
}
`
	if diags := check(t, "wizgo/internal/interp", src); len(diags) != 0 {
		t.Fatalf("allow comment ignored: %v", diags)
	}
}

func TestTimeNowInColdPackageAllowed(t *testing.T) {
	src := `package engine
import "time"
func f() time.Time { return time.Now() }
`
	if diags := check(t, "wizgo/internal/engine", src); len(diags) != 0 {
		t.Fatalf("cold package flagged: %v", diags)
	}
}

// TestRepoClean runs both analyzers over the whole repository: the
// invariants the tool enforces must actually hold.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var bad []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		for _, d := range checkFile(fset, file, filepath.ToSlash(filepath.Dir(path))) {
			bad = append(bad, d.pos.String()+": "+d.message)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) > 0 {
		t.Fatalf("repo violates its own invariants:\n%s", strings.Join(bad, "\n"))
	}
}
