// Command wizgo-vet enforces wizgo's runtime invariants over the source
// tree itself — the static-analysis discipline applied to the engine's
// own code rather than to guest Wasm:
//
//   - traps: every rt.Trap must be constructed through rt.NewTrap or
//     rt.NewTrapWrapped. A raw &rt.Trap{} outside internal/rt bypasses
//     the single place where trap invariants (pc/func attribution,
//     wrapping rules) are maintained.
//
//   - timenow: no ungated time.Now() in the hot execution packages
//     (internal/interp, internal/rewriter, internal/mach,
//     internal/copypatch, internal/rt). A clock read per instruction or
//     per call is exactly the overhead the telemetry layer's
//     Enabled() gates exist to avoid; hot-path code must route timing
//     through those gates. A deliberate exception is granted by a
//     "//vet:allow timenow" comment on the offending line.
//
// The tool runs in two modes. Standalone — `wizgo-vet ./...` — walks
// the tree, parses every non-test Go file and reports findings, exiting
// 2 when any are found; this is what CI runs. It also speaks enough of
// the cmd/go vettool protocol (-V=full, -flags, single *.cfg argument,
// VetxOutput) to be usable as `go vet -vettool=$(which wizgo-vet)`.
//
// It is built on the standard library only (go/parser + go/ast): the
// invariants are syntactic, so full type checking — and the x/tools
// dependency it would pull in — is unnecessary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// hotPackages are import-path suffixes where an ungated time.Now() is a
// per-instruction or per-call cost.
var hotPackages = []string{
	"internal/interp",
	"internal/rewriter",
	"internal/mach",
	"internal/copypatch",
	"internal/rt",
}

// rtImportSuffix identifies the runtime package, both to resolve the
// local name of its import and to exempt its own files from the trap
// rule.
const rtImportSuffix = "internal/rt"

type diagnostic struct {
	pos      token.Position
	analyzer string
	message  string
}

func main() {
	var (
		versionFlag = flag.String("V", "", "print version (vettool protocol)")
		flagsFlag   = flag.Bool("flags", false, "print analyzer flags as JSON (vettool protocol)")
		jsonFlag    = flag.Bool("json", false, "emit diagnostics as JSON")
	)
	flag.Int("c", -1, "display offending line with this many lines of context (accepted, ignored)")
	flag.Parse()

	if *versionFlag != "" {
		// The exact shape cmd/go expects from a vettool's -V=full
		// handshake: "name version ...". The trailing token keys the
		// build cache.
		fmt.Printf("wizgo-vet version devel buildID=wizgo-vet-1\n")
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], *jsonFlag))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, *jsonFlag))
}

// vetConfig is the subset of cmd/go's vet.cfg we consume.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOutput string
}

// runUnit analyzes one package under the go vet driver protocol.
func runUnit(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wizgo-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "wizgo-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	fset := token.NewFileSet()
	var diags []diagnostic
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wizgo-vet: %v\n", err)
			return 1
		}
		diags = append(diags, checkFile(fset, file, cfg.ImportPath)...)
	}
	// The driver requires the facts file to exist even though these
	// analyzers export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "wizgo-vet: %v\n", err)
			return 1
		}
	}
	return report(diags, asJSON)
}

// runStandalone walks the given roots ("./..." style or plain dirs) and
// analyzes every non-test Go file, inferring each file's import-path
// role from its directory.
func runStandalone(roots []string, asJSON bool) int {
	fset := token.NewFileSet()
	var diags []diagnostic
	for _, root := range roots {
		recursive := false
		if strings.HasSuffix(root, "/...") {
			recursive = true
			root = strings.TrimSuffix(root, "/...")
			if root == "." || root == "" {
				root = "."
			}
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				if !recursive && path != root {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if perr != nil {
				return perr
			}
			diags = append(diags, checkFile(fset, file, filepath.ToSlash(filepath.Dir(path)))...)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "wizgo-vet: %v\n", err)
			return 1
		}
	}
	return report(diags, asJSON)
}

func report(diags []diagnostic, asJSON bool) int {
	if len(diags) == 0 {
		return 0
	}
	if asJSON {
		out := map[string][]map[string]string{}
		for _, d := range diags {
			out[d.analyzer] = append(out[d.analyzer], map[string]string{
				"posn": d.pos.String(), "message": d.message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.pos, d.analyzer, d.message)
		}
	}
	return 2
}

// checkFile runs both analyzers over one parsed file. pkgPath is the
// file's import path (unit mode) or directory path (standalone mode);
// only its suffix is consulted.
func checkFile(fset *token.FileSet, file *ast.File, pkgPath string) []diagnostic {
	var diags []diagnostic
	hot := false
	for _, p := range hotPackages {
		if strings.HasSuffix(pkgPath, p) {
			hot = true
			break
		}
	}
	inRT := strings.HasSuffix(pkgPath, rtImportSuffix)

	// Resolve the local names under which this file imports the runtime
	// and time packages; aliased imports must not dodge the rules.
	rtName, timeName := "", ""
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch {
		case strings.HasSuffix(path, rtImportSuffix):
			if name == "" {
				name = "rt"
			}
			rtName = name
		case path == "time":
			if name == "" {
				name = "time"
			}
			timeName = name
		}
	}

	// allowed maps line numbers carrying a "//vet:allow timenow"
	// comment to the granted exception.
	allowed := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "vet:allow timenow") {
				allowed[fset.Position(c.Pos()).Line] = true
			}
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if inRT || rtName == "" {
				return true
			}
			if sel, ok := n.Type.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == rtName && sel.Sel.Name == "Trap" {
					diags = append(diags, diagnostic{
						pos:      fset.Position(n.Pos()),
						analyzer: "traps",
						message:  "raw " + rtName + ".Trap literal: construct traps via rt.NewTrap or rt.NewTrapWrapped",
					})
				}
			}
		case *ast.CallExpr:
			if !hot || timeName == "" {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && sel.Sel.Name == "Now" {
					line := fset.Position(n.Pos()).Line
					if !allowed[line] && !allowed[line-1] {
						diags = append(diags, diagnostic{
							pos:      fset.Position(n.Pos()),
							analyzer: "timenow",
							message:  "ungated time.Now() in hot-path package " + pkgPath + "; gate it behind the telemetry Enabled() check or annotate //vet:allow timenow",
						})
					}
				}
			}
		}
		return true
	})
	return diags
}
