// Command wasmgen writes the generated benchmark suite modules to disk
// as .wasm files, so they can be inspected with external tools or fed to
// other engines.
//
// Usage:
//
//	wasmgen -out ./modules [-m0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wizgo/internal/workloads"
)

func main() {
	out := flag.String("out", "modules", "output directory")
	emitM0 := flag.Bool("m0", false, "also write the early-return (m0) variants")
	flag.Parse()

	items := workloads.All()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	total := 0
	for _, it := range items {
		dir := filepath.Join(*out, it.Suite)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(dir, it.Name+".wasm")
		if err := os.WriteFile(path, it.Bytes, 0o644); err != nil {
			fatal(err)
		}
		total++
		if *emitM0 {
			if err := os.WriteFile(filepath.Join(dir, it.Name+".m0.wasm"), it.BytesM0, 0o644); err != nil {
				fatal(err)
			}
			total++
		}
	}
	if err := os.WriteFile(filepath.Join(*out, "mnop.wasm"), workloads.Mnop(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d modules to %s\n", total+1, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wasmgen:", err)
	os.Exit(1)
}
