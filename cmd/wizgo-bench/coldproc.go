package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/harness"
	"wizgo/internal/workloads"
)

// Cold starts are measured process-per-sample: wizgo-bench re-executes
// itself (-coldchild) so every measurement runs in a genuinely cold
// process — cold Go runtime, cold compiler code paths, cold caches.
// In-process repetition converges to warm-compiler steady state, which
// flatters neither side honestly: a real cold start pays the
// compiler's own warm-up on the full path and the loader's warm-up on
// the disk path. The parent only seeds the cache directory and
// aggregates child samples.

// coldChildResult is one child process's measurement, printed as JSON
// on stdout.
type coldChildResult struct {
	Wall         time.Duration `json:"wall_ns"`
	Decode       time.Duration `json:"decode_ns"`
	Validate     time.Duration `json:"validate_ns"`
	Compile      time.Duration `json:"compile_ns"`
	Rehydrate    time.Duration `json:"rehydrate_ns"`
	MemHit       time.Duration `json:"mem_hit_ns"`
	Instantiate  time.Duration `json:"instantiate_ns"`
	Main         time.Duration `json:"main_ns"`
	CompileCalls uint64        `json:"compile_calls"`
	DiskHits     uint64        `json:"disk_hits"`
	DiskMisses   uint64        `json:"disk_misses"`
	DiskWrites   uint64        `json:"disk_writes"`
	Checksum     int64         `json:"checksum"`
	HasChecksum  bool          `json:"has_checksum"`
}

// pipeline returns the per-module pipeline work the child performed:
// decode+validate+compile on the full path, rehydration on the disk
// path (where decode/validate/compile are zero).
func (c coldChildResult) pipeline() time.Duration {
	return c.Decode + c.Validate + c.Compile + c.Rehydrate
}

// runColdChild is the child entry point: compile (or disk-load) one
// workload item under one tier, run its _start, and report every
// timing as JSON. mode is "full" (no disk tier: pure
// decode+validate+compile) or "disk" (persistent cache attached; on a
// seeded directory this is the zero-compile load path).
func runColdChild(mode, tier, item, cacheDir string) {
	it, ok := findItem(item)
	if !ok {
		fmt.Fprintf(os.Stderr, "wizgo-bench: unknown item %q\n", item)
		os.Exit(1)
	}
	cfg, ok := engines.ByName(tier)
	if !ok {
		fmt.Fprintf(os.Stderr, "wizgo-bench: unknown tier %q\n", tier)
		os.Exit(1)
	}
	var disk *codecache.DiskStore
	switch mode {
	case "full":
	case "disk":
		cfg.Cache = codecache.New(codecache.Options{})
		var err error
		if disk, err = engine.OpenDiskCache(cacheDir); err != nil {
			check(err)
		}
		cfg.DiskCache = disk
	default:
		fmt.Fprintf(os.Stderr, "wizgo-bench: unknown -coldchild mode %q\n", mode)
		os.Exit(1)
	}

	eng := engine.New(cfg, nil)
	var res coldChildResult
	t0 := time.Now()
	cm, err := eng.Compile(it.Bytes)
	check(err)
	res.Wall = time.Since(t0)
	res.Decode = cm.Timings.Decode
	res.Validate = cm.Timings.Validate
	res.Compile = cm.Timings.Compile
	res.Rehydrate = cm.Timings.Rehydrate
	res.CompileCalls = eng.CompileCalls()

	t1 := time.Now()
	inst, err := cm.Instantiate()
	check(err)
	res.Instantiate = time.Since(t1)
	startFn, ok := inst.RT.FuncByName("_start")
	if !ok {
		check(fmt.Errorf("module %s has no _start", item))
	}
	t2 := time.Now()
	_, err = inst.CallFunc(startFn)
	check(err)
	res.Main = time.Since(t2)
	if sumFn, ok := inst.RT.FuncByName("checksum"); ok {
		sum, err := inst.CallFunc(sumFn)
		check(err)
		if len(sum) == 1 {
			res.Checksum, res.HasChecksum = sum[0].I64(), true
		}
	}
	inst.Release()

	if disk != nil {
		// A repeat Compile in the now-warm process: the in-memory hit,
		// the floor of the cold-start ladder.
		t3 := time.Now()
		_, err = eng.Compile(it.Bytes)
		check(err)
		res.MemHit = time.Since(t3)
		st := disk.Stats()
		res.DiskHits, res.DiskMisses, res.DiskWrites = st.Hits, st.Misses, st.Writes
	}

	out, err := json.Marshal(res)
	check(err)
	fmt.Println(string(out))
}

// spawnColdChild runs one child measurement and parses its JSON.
func spawnColdChild(self, mode, tier, item, cacheDir string) (coldChildResult, error) {
	var res coldChildResult
	cmd := exec.Command(self, "-coldchild", mode, "-coldtier", tier, "-colditem", item, "-cache-dir", cacheDir)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return res, fmt.Errorf("cold child (%s, %s, %s): %w", mode, tier, item, err)
	}
	if err := json.Unmarshal(out, &res); err != nil {
		return res, fmt.Errorf("cold child (%s, %s, %s): bad output %q: %w", mode, tier, item, out, err)
	}
	return res, nil
}

// measureColdStartProc measures one engine/item pair across fresh
// processes: one seed child writes the artifact, then `runs`
// interleaved pairs of (full child, disk child) measure
// decode+validate+compile against the zero-compile load. Every process
// is genuinely cold, so no in-process warm-up bias; the speedup is the
// median of per-pair ratios, so load drift across the run cancels.
func measureColdStartProc(self, tier, item, cacheDir string, runs int) (harness.ColdStartSample, error) {
	var s harness.ColdStartSample
	if runs < 1 {
		runs = 1
	}

	seed, err := spawnColdChild(self, "disk", tier, item, cacheDir)
	if err != nil {
		return s, err
	}
	if seed.DiskWrites == 0 && seed.DiskHits == 0 {
		return s, fmt.Errorf("cold seed (%s, %s): artifact neither written nor loaded", tier, item)
	}

	// Full and disk children run as back-to-back pairs, not as two
	// separate phases: machine load drifts over the seconds a
	// measurement takes, and two medians sampled in different load
	// epochs turn that drift into pure ratio noise. Within a pair both
	// children see (nearly) the same epoch, so a box-wide slowdown
	// inflates both sides and cancels in the per-pair ratio; the median
	// of those ratios is then robust against the occasional descheduled
	// child on either side.
	fullWall := make([]time.Duration, runs)
	fullPipe := make([]time.Duration, runs)
	coldWall := make([]time.Duration, runs)
	coldPipe := make([]time.Duration, runs)
	memHit := make([]time.Duration, runs)
	instantiate := make([]time.Duration, runs)
	mainT := make([]time.Duration, runs)
	ratios := make([]float64, runs)
	for i := 0; i < runs; i++ {
		f, err := spawnColdChild(self, "full", tier, item, cacheDir)
		if err != nil {
			return s, err
		}
		if f.HasChecksum && seed.HasChecksum && f.Checksum != seed.Checksum {
			return s, fmt.Errorf("full child (%s, %s): checksum %#x != seed %#x",
				tier, item, f.Checksum, seed.Checksum)
		}
		c, err := spawnColdChild(self, "disk", tier, item, cacheDir)
		if err != nil {
			return s, err
		}
		if c.DiskHits != 1 || c.DiskMisses != 0 {
			return s, fmt.Errorf("cold child (%s, %s): disk hits=%d misses=%d, want 1/0",
				tier, item, c.DiskHits, c.DiskMisses)
		}
		if c.HasChecksum && seed.HasChecksum && c.Checksum != seed.Checksum {
			return s, fmt.Errorf("cold child (%s, %s): checksum %#x != seed %#x (artifact loaded wrong code)",
				tier, item, c.Checksum, seed.Checksum)
		}
		fullWall[i], fullPipe[i] = f.Wall, f.pipeline()
		coldWall[i], coldPipe[i] = c.Wall, c.pipeline()
		memHit[i], instantiate[i], mainT[i] = c.MemHit, c.Instantiate, c.Main
		if c.pipeline() > 0 {
			ratios[i] = float64(f.pipeline()) / float64(c.pipeline())
		}
		s.ColdCompileCalls += c.CompileCalls
		s.DiskHits += c.DiskHits
		s.DiskMisses += c.DiskMisses
		s.DiskWrites += c.DiskWrites
		s.Checksum = c.Checksum
	}

	s.FullCompile = medianOf(fullWall)
	s.FullPipeline = medianOf(fullPipe)
	s.DiskLoad = medianOf(coldWall)
	s.ColdPipeline = medianOf(coldPipe)
	s.PairedSpeedup = medianFloat(ratios)
	s.MemHit = medianOf(memHit)
	s.Instantiate = medianOf(instantiate)
	s.Main = medianOf(mainT)
	s.FirstRequest = s.DiskLoad + s.Instantiate + s.Main
	return s, nil
}

func findItem(key string) (workloads.Item, bool) {
	for _, it := range workloads.All() {
		if it.Suite+"/"+it.Name == key {
			return it, true
		}
	}
	return workloads.Item{}, false
}

func medianOf(ds []time.Duration) time.Duration {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

func medianFloat(fs []float64) float64 {
	sorted := make([]float64, len(fs))
	copy(sorted, fs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
