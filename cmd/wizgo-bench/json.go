package main

import (
	"encoding/json"
	"os"
	"time"

	"wizgo/internal/harness"
)

// Report is the machine-readable form of a wizgo-bench run, written by
// the -json flag. It feeds the BENCH_*.json perf trajectory: every
// figure the run produced, plus run metadata so results are comparable
// across commits.
type Report struct {
	Runs    int             `json:"runs"`
	Suite   string          `json:"suite,omitempty"`
	Items   int             `json:"items,omitempty"`
	Figures []FigureResult  `json:"figures"`
	Service []ServiceResult `json:"service,omitempty"`
	Pooled  []PooledResult  `json:"pooled,omitempty"`
}

// FigureResult is one figure's output: tables carry rows, scatter
// figures carry points.
type FigureResult struct {
	Figure  int               `json:"figure"`
	Title   string            `json:"title,omitempty"`
	Columns []string          `json:"columns,omitempty"`
	Rows    []RowResult       `json:"rows,omitempty"`
	Points  []harness.SQPoint `json:"points,omitempty"`
}

// RowResult is one table line.
type RowResult struct {
	Label string   `json:"label"`
	Cells []string `json:"cells"`
}

// ServiceResult is one compile-once/instantiate-many measurement.
type ServiceResult struct {
	Engine               string        `json:"engine"`
	Item                 string        `json:"item"`
	Compile              time.Duration `json:"compile_ns"`
	Instantiate          time.Duration `json:"instantiate_ns"`
	Main                 time.Duration `json:"main_ns"`
	CompileThroughputMBs float64       `json:"compile_mb_s"`
	Amortization         float64       `json:"amortization"`
}

// PooledResult is one pooled-serving measurement: requests served from
// an instance pool, setup cost split by the hit (reset) and miss
// (instantiate) paths.
type PooledResult struct {
	Engine       string        `json:"engine"`
	Item         string        `json:"item"`
	Compile      time.Duration `json:"compile_ns"`
	Get          time.Duration `json:"get_p50_ns"`
	MeanReset    time.Duration `json:"reset_mean_ns"`
	MeanMiss     time.Duration `json:"miss_mean_ns"`
	ResetMax     time.Duration `json:"reset_max_ns"`
	Hits         uint64        `json:"hits"`
	Misses       uint64        `json:"misses"`
	Workers      int           `json:"workers"`
	Requests     int           `json:"requests"`
	Amortization float64       `json:"amortization"`
}

func (r *Report) addTable(fig int, t *harness.Table) {
	fr := FigureResult{Figure: fig, Title: t.Title, Columns: t.Columns}
	for _, row := range t.Rows {
		fr.Rows = append(fr.Rows, RowResult{Label: row.Label, Cells: row.Cells})
	}
	r.Figures = append(r.Figures, fr)
}

func (r *Report) addPoints(fig int, title string, points []harness.SQPoint) {
	r.Figures = append(r.Figures, FigureResult{Figure: fig, Title: title, Points: points})
}

func (r *Report) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
