package main

import (
	"encoding/json"
	"os"
	"time"

	"wizgo/internal/harness"
)

// Report is the machine-readable form of a wizgo-bench run, written by
// the -json flag. It feeds the BENCH_*.json perf trajectory: every
// figure the run produced, plus run metadata so results are comparable
// across commits.
type Report struct {
	Runs    int             `json:"runs"`
	Suite   string          `json:"suite,omitempty"`
	Items   int             `json:"items,omitempty"`
	Figures []FigureResult  `json:"figures"`
	Service []ServiceResult `json:"service,omitempty"`
	Pooled  []PooledResult  `json:"pooled,omitempty"`
	// ColdStart holds the persistent-cache cold-start ladder: full
	// compile vs zero-compile disk load vs in-memory hit.
	ColdStart []ColdStartResult `json:"coldstart,omitempty"`
	// Serving holds the multi-instance serving sweep: throughput and
	// histogram-derived latency percentiles per (workers, pool size)
	// cell. This is the BENCH_serving.json payload.
	Serving []ServingResult `json:"serving,omitempty"`
	// Analysis holds per-engine static-analysis totals over the selected
	// items: how many dynamic checks each configuration's compiled code
	// elides. Engines with analysis disabled report zeros, pinning the
	// check-elimination contribution in the perf trajectory.
	Analysis []AnalysisResult `json:"analysis,omitempty"`
	// Metering holds the fuel-metering overhead measurement: the same
	// workload with metering disabled vs an unexhaustable budget, per
	// cataloged engine. With fuel disabled the checkpoint gate is one
	// predictable branch, so fuel_off must track the unmetered baselines
	// in the figures within noise.
	Metering []MeteringResult `json:"metering,omitempty"`
	// Telemetry is the process-wide telemetry snapshot taken after all
	// measurements — the same shape `wizgo -stats -json` and the expvar
	// endpoint report.
	Telemetry map[string]any `json:"telemetry,omitempty"`
}

// MeteringResult is one engine's fuel-metering overhead sample: median
// execution time with fuel off (0, metering disabled) and on (a budget
// the run cannot exhaust, so every checkpoint pays the decrement).
type MeteringResult struct {
	Engine      string        `json:"engine"`
	Item        string        `json:"item"`
	Runs        int           `json:"runs"`
	FuelOff     time.Duration `json:"fuel_off_p50_ns"`
	FuelOn      time.Duration `json:"fuel_on_p50_ns"`
	OverheadPct float64       `json:"overhead_pct"`
}

// AnalysisResult is one engine's static-analysis totals across the
// run's line items.
type AnalysisResult struct {
	Engine        string `json:"engine"`
	Funcs         int    `json:"funcs"`
	BoundsElided  int    `json:"bounds_checks_elided"`
	PollsElided   int    `json:"loop_polls_elided"`
	ReadOnlyFuncs int    `json:"read_only_funcs"`
}

// FigureResult is one figure's output: tables carry rows, scatter
// figures carry points.
type FigureResult struct {
	Figure  int               `json:"figure"`
	Title   string            `json:"title,omitempty"`
	Columns []string          `json:"columns,omitempty"`
	Rows    []RowResult       `json:"rows,omitempty"`
	Points  []harness.SQPoint `json:"points,omitempty"`
}

// RowResult is one table line.
type RowResult struct {
	Label string   `json:"label"`
	Cells []string `json:"cells"`
}

// ServiceResult is one compile-once/instantiate-many measurement.
type ServiceResult struct {
	Engine               string        `json:"engine"`
	Item                 string        `json:"item"`
	Compile              time.Duration `json:"compile_ns"`
	Instantiate          time.Duration `json:"instantiate_ns"`
	Main                 time.Duration `json:"main_ns"`
	CompileThroughputMBs float64       `json:"compile_mb_s"`
	Amortization         float64       `json:"amortization"`
}

// PooledResult is one pooled-serving measurement: requests served from
// an instance pool, setup cost split by the hit (reset) and miss
// (instantiate) paths.
type PooledResult struct {
	Engine    string        `json:"engine"`
	Item      string        `json:"item"`
	Compile   time.Duration `json:"compile_ns"`
	Get       time.Duration `json:"get_p50_ns"`
	MeanReset time.Duration `json:"reset_mean_ns"`
	MeanMiss  time.Duration `json:"miss_mean_ns"`
	ResetMax  time.Duration `json:"reset_max_ns"`
	// The on-put share of resets ran on the pool's background drainer
	// (off the request path); the on-get share landed back on Get.
	ResetsOnPut    uint64        `json:"resets_on_put"`
	ResetsOnGet    uint64        `json:"resets_on_get"`
	MeanResetOnPut time.Duration `json:"reset_on_put_mean_ns"`
	MeanResetOnGet time.Duration `json:"reset_on_get_mean_ns"`
	Hits           uint64        `json:"hits"`
	Misses         uint64        `json:"misses"`
	Workers        int           `json:"workers"`
	Requests       int           `json:"requests"`
	Amortization   float64       `json:"amortization"`
}

// ColdStartResult is one cold-start measurement: a seed process wrote
// the artifact, a fresh process served its first request from disk.
// ColdCompileCalls is the cold process's compiler-invocation count and
// must be 0 — wizgo-bench exits non-zero otherwise.
type ColdStartResult struct {
	Engine       string        `json:"engine"`
	Item         string        `json:"item"`
	FullCompile  time.Duration `json:"full_compile_ns"`
	DiskLoad     time.Duration `json:"disk_load_ns"`
	MemHit       time.Duration `json:"mem_hit_ns"`
	Instantiate  time.Duration `json:"instantiate_ns"`
	Main         time.Duration `json:"main_ns"`
	FirstRequest time.Duration `json:"first_request_ns"`
	// FullPipeline / ColdPipeline are the engine-reported per-module
	// pipeline work (decode+validate+compile vs decode+rehydrate);
	// Speedup is their ratio — see ColdStartSample.Speedup.
	FullPipeline     time.Duration `json:"full_pipeline_ns"`
	ColdPipeline     time.Duration `json:"cold_pipeline_ns"`
	Speedup          float64       `json:"speedup"`
	ColdCompileCalls uint64        `json:"cold_compile_calls"`
	DiskHits         uint64        `json:"disk_hits"`
	DiskMisses       uint64        `json:"disk_misses"`
	DiskWrites       uint64        `json:"disk_writes"`
}

// ServingResult is one cell of the serving sweep: `requests` complete
// requests (pool get + _start + put) pushed through `workers` goroutines
// against a pool of `pool_size` instances.
type ServingResult struct {
	Engine        string        `json:"engine"`
	Item          string        `json:"item"`
	Workers       int           `json:"workers"`
	PoolSize      int           `json:"pool_size"`
	Requests      int           `json:"requests"`
	Compile       time.Duration `json:"compile_ns"`
	Wall          time.Duration `json:"wall_ns"`
	ThroughputRPS float64       `json:"throughput_rps"`
	Mean          time.Duration `json:"latency_mean_ns"`
	P50           time.Duration `json:"latency_p50_ns"`
	P90           time.Duration `json:"latency_p90_ns"`
	P99           time.Duration `json:"latency_p99_ns"`
	Hits          uint64        `json:"hits"`
	Misses        uint64        `json:"misses"`
}

func (r *Report) addTable(fig int, t *harness.Table) {
	fr := FigureResult{Figure: fig, Title: t.Title, Columns: t.Columns}
	for _, row := range t.Rows {
		fr.Rows = append(fr.Rows, RowResult{Label: row.Label, Cells: row.Cells})
	}
	r.Figures = append(r.Figures, fr)
}

func (r *Report) addPoints(fig int, title string, points []harness.SQPoint) {
	r.Figures = append(r.Figures, FigureResult{Figure: fig, Title: title, Points: points})
}

func (r *Report) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
