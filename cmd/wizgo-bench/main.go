// Command wizgo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	wizgo-bench -fig 4 [-runs 5] [-suite polybench] [-items 10] [-json out.json]
//
// Figures: 3 (feature matrix), 4 (SPC optimization ablations),
// 5 (value-tag configurations), 6 (probe overhead), 7 (baseline
// execution shootout), 8 (baseline compile-speed shootout), 9 (baseline
// SQ-space scatter), 10 (full 18-tier SQ-space).
//
// -service additionally measures the compile-once / instantiate-many
// pipeline (compile throughput and instantiation amortization) for the
// baseline compilers. -pool measures the pooled serving mode on top of
// it: requests drawn from an instance pool with copy-on-write reset,
// reporting get/reset/miss latencies under -pool-workers contention.
// -serving sweeps the full serving shape: complete requests (pool get →
// _start → put) pushed through worker-count × instance-count cells, each
// cell reporting throughput and latency percentiles derived from the
// telemetry histograms. -coldstart measures the persistent-cache rung below both: a seed
// process writes the compiled artifact to -cache-dir and a simulated
// cold process serves its first request from disk; the run exits
// non-zero if any cold start invoked the compiler. -metering measures
// what per-call fuel metering costs: gemm under every cataloged engine
// with the budget off (metering disabled — must be within noise of the
// unmetered baselines) and on but never exhausted. -nofigs skips the
// figure tables for such serving-mode-only runs. -json writes
// everything the run produced as machine-readable JSON for the perf
// trajectory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/harness"
	"wizgo/internal/telemetry"
	"wizgo/internal/workloads"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (3-10); 0 = all tables")
	runs := flag.Int("runs", 5, "runs per line item (paper: 25)")
	suite := flag.String("suite", "", "restrict to one suite (polybench, libsodium, ostrich)")
	items := flag.Int("items", 0, "restrict to first N items per suite (0 = all)")
	jsonPath := flag.String("json", "", "write figure results as JSON to this path")
	service := flag.Bool("service", false, "measure compile-once/instantiate-many for the baseline compilers")
	instances := flag.Int("instances", 8, "instances per module for -service")
	pooled := flag.Bool("pool", false, "measure pooled serving (instance recycling + copy-on-write reset) for the baseline compilers")
	requests := flag.Int("requests", 32, "requests per module for -pool")
	poolWorkers := flag.Int("pool-workers", 4, "concurrent workers driving the pool for -pool")
	poolSize := flag.Int("pool-size", 4, "idle instances the pool retains for -pool")
	serving := flag.Bool("serving", false, "measure multi-instance serving: throughput and latency percentiles swept over worker and pool-instance counts")
	coldstart := flag.Bool("coldstart", false, "measure zero-compile cold starts from a persistent code cache; exits non-zero if any cold start invoked the compiler")
	metering := flag.Bool("metering", false, "measure fuel-metering overhead on gemm: execution time with the per-call fuel budget off vs on (never exhausted), per cataloged engine")
	cacheDir := flag.String("cache-dir", "", "persistent cache directory for -coldstart (default: a fresh temp dir, removed afterwards)")
	nofigs := flag.Bool("nofigs", false, "skip the figure tables (use with -service/-pool/-coldstart; -fig 0 means all figures, so it cannot express this)")
	coldChild := flag.String("coldchild", "", "internal: run one cold-start child measurement (full|disk) and print JSON")
	coldTier := flag.String("coldtier", "", "internal: tier for -coldchild")
	coldItem := flag.String("colditem", "", "internal: suite/name workload for -coldchild")
	flag.Parse()

	if *coldChild != "" {
		runColdChild(*coldChild, *coldTier, *coldItem, *cacheDir)
		return
	}

	all := workloads.All()
	if *suite != "" {
		var filtered []workloads.Item
		for _, it := range all {
			if it.Suite == *suite {
				filtered = append(filtered, it)
			}
		}
		all = filtered
	}
	if *items > 0 {
		perSuite := map[string]int{}
		var filtered []workloads.Item
		for _, it := range all {
			if perSuite[it.Suite] < *items {
				filtered = append(filtered, it)
				perSuite[it.Suite]++
			}
		}
		all = filtered
	}
	if len(all) == 0 {
		fmt.Fprintln(os.Stderr, "no line items selected")
		os.Exit(1)
	}

	report := &Report{Runs: *runs, Suite: *suite, Items: *items}

	run := func(n int) {
		switch n {
		case 3:
			t := harness.Figure3()
			fmt.Print(t.Render())
			report.addTable(3, t)
		case 4:
			t, err := harness.Figure4(all, *runs)
			emit(report, 4, t, err)
		case 5:
			t, err := harness.Figure5(all, *runs)
			emit(report, 5, t, err)
		case 6:
			t, err := harness.Figure6(all, *runs)
			emit(report, 6, t, err)
		case 7:
			t, err := harness.Figure7(all, *runs)
			emit(report, 7, t, err)
		case 8:
			t, err := harness.Figure8(all, *runs)
			emit(report, 8, t, err)
		case 9:
			points, err := harness.Figure9(all, *runs)
			check(err)
			fmt.Print(harness.RenderSQ("Figure 9: SQ-space of baseline compilers", points))
			report.addPoints(9, "SQ-space of baseline compilers", points)
		case 10:
			points, err := harness.Figure10(all, *runs)
			check(err)
			fmt.Print(harness.RenderSQ("Figure 10: SQ-space of 18 execution tiers", points))
			report.addPoints(10, "SQ-space of 18 execution tiers", points)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %d\n", n)
			os.Exit(1)
		}
		fmt.Println()
	}

	switch {
	case *nofigs:
	case *fig != 0:
		run(*fig)
	default:
		for _, n := range []int{3, 4, 5, 6, 7, 8, 9, 10} {
			run(n)
		}
	}

	if *service {
		runService(report, all, *instances)
	}
	if *pooled {
		runPooled(report, all, *requests, *poolWorkers, *poolSize)
	}
	if *serving {
		runServing(report, all, *requests)
	}
	coldViolations := 0
	if *coldstart {
		coldViolations = runColdStart(report, all, *cacheDir, *runs)
	}
	if *metering {
		runMetering(report, *runs)
	}

	if *jsonPath != "" {
		report.Analysis = analysisTotals(all)
		// The process-wide snapshot rides along: the same counters and
		// histograms a scraped /metrics endpoint would report, populated
		// by everything the run executed.
		report.Telemetry = telemetry.Default().Snapshot().JSONValue()
		if err := report.write(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "wizgo-bench: writing json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	if coldViolations > 0 {
		fmt.Fprintf(os.Stderr, "wizgo-bench: %d cold start(s) invoked the compiler (want zero-compile disk loads)\n",
			coldViolations)
		os.Exit(1)
	}
}

// runService measures the compile-once / instantiate-many shape for the
// six baseline compilers over the selected items.
func runService(report *Report, items []workloads.Item, instances int) {
	fmt.Println("== Service: compile once, instantiate many ==")
	fmt.Printf("%-14s %-22s %12s %14s %12s %10s\n",
		"engine", "item", "compile", "instantiate", "MB/s", "amort")
	for _, cfg := range engines.BaselineShootout() {
		for _, it := range items {
			s, err := harness.MeasureService(cfg, it.Bytes, instances)
			check(err)
			key := it.Suite + "/" + it.Name
			fmt.Printf("%-14s %-22s %12v %14v %12.2f %9.0fx\n",
				cfg.Name, key, s.Compile, s.Instantiate,
				s.CompileThroughput(), s.Amortization())
			report.Service = append(report.Service, ServiceResult{
				Engine: cfg.Name, Item: key,
				Compile: s.Compile, Instantiate: s.Instantiate, Main: s.Main,
				CompileThroughputMBs: s.CompileThroughput(),
				Amortization:         s.Amortization(),
			})
		}
	}
	fmt.Println()
}

// runPooled measures the pooled serving mode: requests served from an
// instance pool under worker contention, reporting the per-request get
// latency split into the reset (hit) and instantiate (miss) paths.
func runPooled(report *Report, items []workloads.Item, requests, workers, poolSize int) {
	fmt.Println("== Pooled: recycle instances, copy-on-write reset ==")
	fmt.Printf("%-14s %-22s %12s %12s %12s %8s %10s\n",
		"engine", "item", "get(p50)", "reset", "miss", "hits", "amort")
	for _, cfg := range engines.BaselineShootout() {
		for _, it := range items {
			s, err := harness.MeasurePooled(cfg, it.Bytes, requests, workers, poolSize)
			check(err)
			key := it.Suite + "/" + it.Name
			fmt.Printf("%-14s %-22s %12v %12v %12v %3d/%-4d %9.0fx\n",
				cfg.Name, key, s.Get, s.MeanReset, s.MeanMiss,
				s.Hits, s.Hits+s.Misses, s.Amortization())
			report.Pooled = append(report.Pooled, PooledResult{
				Engine: cfg.Name, Item: key,
				Compile: s.Compile, Get: s.Get,
				MeanReset: s.MeanReset, MeanMiss: s.MeanMiss, ResetMax: s.ResetMax,
				ResetsOnPut: s.ResetsOnPut, ResetsOnGet: s.ResetsOnGet,
				MeanResetOnPut: s.MeanResetOnPut, MeanResetOnGet: s.MeanResetOnGet,
				Hits: s.Hits, Misses: s.Misses,
				Workers: s.Workers, Requests: s.Requests,
				Amortization: s.Amortization(),
			})
		}
	}
	fmt.Println()
}

// runServing sweeps the multi-instance serving shape: for each baseline
// compiler and item, requests are pushed through (workers × pool size)
// cells and each cell reports throughput plus latency percentiles read
// from a telemetry histogram — the data behind BENCH_serving.json.
func runServing(report *Report, items []workloads.Item, requests int) {
	workerSweep := []int{1, 2, 4}
	poolSweep := []int{1, 4}
	fmt.Println("== Serving: throughput and latency vs workers × instances ==")
	fmt.Printf("%-14s %-22s %3s %5s %10s %12s %12s %12s %8s\n",
		"engine", "item", "wrk", "insts", "req/s", "p50", "p90", "p99", "hits")
	for _, cfg := range engines.BaselineShootout() {
		for _, it := range items {
			key := it.Suite + "/" + it.Name
			for _, workers := range workerSweep {
				for _, poolSize := range poolSweep {
					s, err := harness.MeasureServing(cfg, it.Bytes, requests, workers, poolSize)
					check(err)
					fmt.Printf("%-14s %-22s %3d %5d %10.1f %12v %12v %12v %3d/%-4d\n",
						cfg.Name, key, workers, poolSize, s.Throughput,
						s.P50, s.P90, s.P99, s.Hits, s.Hits+s.Misses)
					report.Serving = append(report.Serving, ServingResult{
						Engine: cfg.Name, Item: key,
						Workers: s.Workers, PoolSize: s.PoolSize, Requests: s.Requests,
						Compile: s.Compile, Wall: s.Wall,
						ThroughputRPS: s.Throughput,
						Mean:          s.Mean, P50: s.P50, P90: s.P90, P99: s.P99,
						Hits: s.Hits, Misses: s.Misses,
					})
				}
			}
		}
	}
	fmt.Println()
}

// runColdStart seeds a persistent cache directory per engine/item pair
// and measures the cold process's time-to-first-response: disk load +
// link + first run, against the full compile it avoided. Every sample
// runs in a fresh child process (see coldproc.go), so the compiler and
// loader code paths are as cold as a real process restart leaves them.
// Returns the number of cold starts that invoked the compiler (the
// contract is exactly zero — the caller turns any violation into a
// non-zero exit, which makes the CI smoke an assertion rather than a
// printout).
func runColdStart(report *Report, items []workloads.Item, cacheDir string, runs int) (violations int) {
	dir := cacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "wizgo-coldstart-*")
		if err != nil {
			check(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	self, err := os.Executable()
	check(err)
	fmt.Println("== Cold start: persistent code cache, zero-compile loads ==")
	fmt.Printf("%-14s %-22s %12s %12s %12s %12s %12s %8s %9s\n",
		"engine", "item", "full", "diskload", "pipe-full", "pipe-cold", "first-req", "speedup", "compiles")
	for _, cfg := range engines.BaselineShootout() {
		for _, it := range items {
			s, err := measureColdStartProc(self, cfg.Name, it.Suite+"/"+it.Name, dir, runs)
			check(err)
			key := it.Suite + "/" + it.Name
			fmt.Printf("%-14s %-22s %12v %12v %12v %12v %12v %7.1fx %9d\n",
				cfg.Name, key, s.FullCompile, s.DiskLoad,
				s.FullPipeline, s.ColdPipeline,
				s.FirstRequest, s.Speedup(), s.ColdCompileCalls)
			if s.ColdCompileCalls != 0 {
				violations++
			}
			report.ColdStart = append(report.ColdStart, ColdStartResult{
				Engine: cfg.Name, Item: key,
				FullCompile: s.FullCompile, DiskLoad: s.DiskLoad,
				MemHit: s.MemHit, Instantiate: s.Instantiate,
				Main: s.Main, FirstRequest: s.FirstRequest,
				FullPipeline:     s.FullPipeline,
				ColdPipeline:     s.ColdPipeline,
				Speedup:          s.Speedup(),
				ColdCompileCalls: s.ColdCompileCalls,
				DiskHits:         s.DiskHits,
				DiskMisses:       s.DiskMisses,
				DiskWrites:       s.DiskWrites,
			})
		}
	}
	fmt.Println()
	return violations
}

// runMetering measures what fuel metering costs: gemm run under every
// cataloged engine with metering disabled (fuel 0 — the checkpoint gate
// is a single predictable branch) and with a budget the run cannot
// exhaust (every checkpoint pays the decrement), medians compared. The
// off column is the regression guard: it must track the unmetered
// baselines in the figures within noise.
func runMetering(report *Report, runs int) {
	var gemm workloads.Item
	for _, it := range workloads.All() {
		if it.Name == "gemm" {
			gemm = it
			break
		}
	}
	if gemm.Bytes == nil {
		check(fmt.Errorf("gemm workload not found"))
	}
	if runs < 3 {
		runs = 3
	}
	fmt.Println("== Metering: gemm execution, fuel off vs on ==")
	fmt.Printf("%-14s %-22s %12s %12s %10s\n",
		"engine", "item", "off(p50)", "on(p50)", "overhead")
	for _, cfg := range engines.Catalog() {
		eng := engine.New(cfg, nil)
		cm, err := eng.Compile(gemm.Bytes)
		check(err)
		measure := func(fuel int64) time.Duration {
			times := make([]time.Duration, runs)
			for r := range times {
				inst, err := cm.Instantiate()
				check(err)
				t0 := time.Now()
				_, err = inst.CallWith(context.Background(), engine.CallOpts{Fuel: fuel}, "_start")
				check(err)
				times[r] = time.Since(t0)
				inst.Release()
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			return times[len(times)/2]
		}
		measure(0) // warm the tier (lazy compiles, caches) outside the samples
		off := measure(0)
		on := measure(1 << 40)
		overhead := 100 * (float64(on) - float64(off)) / float64(off)
		fmt.Printf("%-14s %-22s %12v %12v %9.1f%%\n",
			cfg.Name, "polybench/gemm", off, on, overhead)
		report.Metering = append(report.Metering, MeteringResult{
			Engine: cfg.Name, Item: "polybench/gemm", Runs: runs,
			FuelOff: off, FuelOn: on, OverheadPct: overhead,
		})
	}
	fmt.Println()
}

// analysisTotals compiles the selected items once per catalog engine
// and totals the static-analysis stats: the elided-check counts the
// perf trajectory pairs with the execution-time figures.
func analysisTotals(items []workloads.Item) []AnalysisResult {
	var results []AnalysisResult
	for _, cfg := range engines.Catalog() {
		r := AnalysisResult{Engine: cfg.Name}
		eng := engine.New(cfg, nil)
		for _, it := range items {
			cm, err := eng.Compile(it.Bytes)
			check(err)
			st := cm.AnalysisStats()
			r.Funcs += st.Funcs
			r.BoundsElided += st.BoundsProven
			r.PollsElided += st.PollsElided
			r.ReadOnlyFuncs += st.ReadOnly
		}
		results = append(results, r)
	}
	return results
}

func emit(report *Report, fig int, t *harness.Table, err error) {
	check(err)
	fmt.Print(t.Render())
	report.addTable(fig, t)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wizgo-bench:", err)
		os.Exit(1)
	}
}
