// Command wizgo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	wizgo-bench -fig 4 [-runs 5] [-suite polybench] [-items 10]
//
// Figures: 3 (feature matrix), 4 (SPC optimization ablations),
// 5 (value-tag configurations), 6 (probe overhead), 7 (baseline
// execution shootout), 8 (baseline compile-speed shootout), 9 (baseline
// SQ-space scatter), 10 (full 18-tier SQ-space).
package main

import (
	"flag"
	"fmt"
	"os"

	"wizgo/internal/harness"
	"wizgo/internal/workloads"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (3-10); 0 = all tables")
	runs := flag.Int("runs", 5, "runs per line item (paper: 25)")
	suite := flag.String("suite", "", "restrict to one suite (polybench, libsodium, ostrich)")
	items := flag.Int("items", 0, "restrict to first N items per suite (0 = all)")
	flag.Parse()

	all := workloads.All()
	if *suite != "" {
		var filtered []workloads.Item
		for _, it := range all {
			if it.Suite == *suite {
				filtered = append(filtered, it)
			}
		}
		all = filtered
	}
	if *items > 0 {
		perSuite := map[string]int{}
		var filtered []workloads.Item
		for _, it := range all {
			if perSuite[it.Suite] < *items {
				filtered = append(filtered, it)
				perSuite[it.Suite]++
			}
		}
		all = filtered
	}
	if len(all) == 0 {
		fmt.Fprintln(os.Stderr, "no line items selected")
		os.Exit(1)
	}

	run := func(n int) {
		switch n {
		case 3:
			fmt.Print(harness.Figure3().Render())
		case 4:
			emit(harness.Figure4(all, *runs))
		case 5:
			emit(harness.Figure5(all, *runs))
		case 6:
			emit(harness.Figure6(all, *runs))
		case 7:
			emit(harness.Figure7(all, *runs))
		case 8:
			emit(harness.Figure8(all, *runs))
		case 9:
			points, err := harness.Figure9(all, *runs)
			check(err)
			fmt.Print(harness.RenderSQ("Figure 9: SQ-space of baseline compilers", points))
		case 10:
			points, err := harness.Figure10(all, *runs)
			check(err)
			fmt.Print(harness.RenderSQ("Figure 10: SQ-space of 18 execution tiers", points))
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %d\n", n)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *fig != 0 {
		run(*fig)
		return
	}
	for _, n := range []int{3, 4, 5, 6, 7, 8, 9, 10} {
		run(n)
	}
}

func emit(t *harness.Table, err error) {
	check(err)
	fmt.Print(t.Render())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wizgo-bench:", err)
		os.Exit(1)
	}
}
