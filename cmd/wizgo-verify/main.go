// Command wizgo-verify is the repository's differential checker: it runs
// every generated benchmark line item under every engine configuration
// (optimization ablations, tagging modes, and all 18 SQ-space tiers) and
// demands bit-identical checksums. Any divergence between tiers is a
// compiler or interpreter bug.
//
// Usage:
//
//	wizgo-verify [-suite polybench]
package main

import (
	"flag"
	"fmt"
	"os"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/workloads"
)

func main() {
	suite := flag.String("suite", "", "restrict to one suite")
	flag.Parse()

	items := workloads.All()
	if *suite != "" {
		var filtered []workloads.Item
		for _, it := range items {
			if it.Suite == *suite {
				filtered = append(filtered, it)
			}
		}
		items = filtered
	}

	var cfgs []engine.Config
	cfgs = append(cfgs, engines.Figure4Variants()...)
	cfgs = append(cfgs, engines.Figure5Variants()...)
	cfgs = append(cfgs, engines.SQSpaceTiers()...)
	cfgs = append(cfgs, engines.WizardTiered(8))

	bad := 0
	for _, it := range items {
		var want int64
		for ci, cfg := range cfgs {
			sum, err := runOne(cfg, it.Bytes)
			if err != nil {
				fmt.Printf("FAIL %s on %s/%s: %v\n", cfg.Name, it.Suite, it.Name, err)
				bad++
				continue
			}
			if ci == 0 {
				want = sum
			} else if sum != want {
				fmt.Printf("MISMATCH %s on %s/%s: %#x != %#x\n", cfg.Name, it.Suite, it.Name, sum, want)
				bad++
			}
			// The early-return variant must compile everywhere too and
			// compute nothing.
			if m0, err := runOne(cfg, it.BytesM0); err != nil || m0 != 0 {
				fmt.Printf("M0 FAIL %s on %s/%s: sum %#x err %v\n", cfg.Name, it.Suite, it.Name, m0, err)
				bad++
			}
		}
	}
	fmt.Printf("verified %d items x %d configs (plus m0 variants): %d failures\n", len(items), len(cfgs), bad)
	if bad > 0 {
		os.Exit(1)
	}
}

func runOne(cfg engine.Config, bytes []byte) (s int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	inst, err := engine.New(cfg, nil).Instantiate(bytes)
	if err != nil {
		return 0, err
	}
	if _, err := inst.Call("_start"); err != nil {
		return 0, err
	}
	res, err := inst.Call("checksum")
	if err != nil {
		return 0, err
	}
	return res[0].I64(), nil
}
