// Command wizgo-verify is the repository's differential checker: it runs
// every generated benchmark line item under every engine configuration
// (optimization ablations, tagging modes, and all 18 SQ-space tiers) and
// demands bit-identical checksums. Any divergence between tiers is a
// compiler or interpreter bug.
//
// Usage:
//
//	wizgo-verify [-suite polybench]
package main

import (
	"flag"
	"fmt"
	"os"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/workloads"
)

func main() {
	suite := flag.String("suite", "", "restrict to one suite")
	flag.Parse()

	items := workloads.All()
	if *suite != "" {
		var filtered []workloads.Item
		for _, it := range items {
			if it.Suite == *suite {
				filtered = append(filtered, it)
			}
		}
		items = filtered
	}

	var cfgs []engine.Config
	cfgs = append(cfgs, engines.Figure4Variants()...)
	cfgs = append(cfgs, engines.Figure5Variants()...)
	cfgs = append(cfgs, engines.SQSpaceTiers()...)
	cfgs = append(cfgs, engines.WizardTiered(8))

	bad := 0
	for _, it := range items {
		var want int64
		for ci, cfg := range cfgs {
			// Compile once per (config, item); both verification runs
			// below instantiate from the same artifact, so artifact
			// reuse is itself under differential test.
			sums, err := runTwice(cfg, it.Bytes)
			if err != nil {
				fmt.Printf("FAIL %s on %s/%s: %v\n", cfg.Name, it.Suite, it.Name, err)
				bad++
				continue
			}
			if sums[0] != sums[1] {
				fmt.Printf("REUSE MISMATCH %s on %s/%s: %#x != %#x\n",
					cfg.Name, it.Suite, it.Name, sums[0], sums[1])
				bad++
			}
			if ci == 0 {
				want = sums[0]
			} else if sums[0] != want {
				fmt.Printf("MISMATCH %s on %s/%s: %#x != %#x\n", cfg.Name, it.Suite, it.Name, sums[0], want)
				bad++
			}
			// The early-return variant must compile everywhere too and
			// compute nothing.
			if m0, err := runTwice(cfg, it.BytesM0); err != nil || m0[0] != 0 || m0[1] != 0 {
				fmt.Printf("M0 FAIL %s on %s/%s: sums %#x,%#x err %v\n",
					cfg.Name, it.Suite, it.Name, m0[0], m0[1], err)
				bad++
			}
		}
	}
	fmt.Printf("verified %d items x %d configs (plus m0 variants, x2 instances each): %d failures\n",
		len(items), len(cfgs), bad)
	if bad > 0 {
		os.Exit(1)
	}
}

// runTwice compiles bytes once and runs two fresh instances of the
// artifact, returning both checksums.
func runTwice(cfg engine.Config, bytes []byte) (sums [2]int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	cm, err := engine.New(cfg, nil).Compile(bytes)
	if err != nil {
		return sums, err
	}
	for i := range sums {
		inst, err := cm.Instantiate()
		if err != nil {
			return sums, err
		}
		if _, err := inst.Call("_start"); err != nil {
			return sums, err
		}
		res, err := inst.Call("checksum")
		if err != nil {
			return sums, err
		}
		sums[i] = res[0].I64()
	}
	return sums, nil
}
