package wizgo

import (
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/workloads"
)

// BenchmarkExecGemm isolates steady-state execution of polybench/gemm
// under the three tiers the telemetry acceptance gate tracks: the
// in-place interpreter, the single-pass compiler, and copy-and-patch.
// Setup (compile + instantiate) is untimed; each iteration is one
// _start run on a warm instance.
func BenchmarkExecGemm(b *testing.B) {
	item := workloads.PolyBench()[0] // gemm
	for _, cfg := range []engine.Config{
		engines.WizardINT(), engines.WizardSPC(), engines.WasmNowLike(),
	} {
		b.Run(cfg.Name, func(b *testing.B) {
			inst, err := engine.New(cfg, nil).Instantiate(item.Bytes)
			if err != nil {
				b.Fatal(err)
			}
			start, ok := inst.RT.FuncByName("_start")
			if !ok {
				b.Fatal("gemm has no _start")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inst.CallFunc(start); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
