package wasm

// Encode serializes a module to the binary format. Together with Decode
// it round-trips: Decode(Encode(m)) yields an equivalent module. The
// workload generators build Modules programmatically (see builder.go) and
// encode them so every engine tier in this repository consumes real wasm
// bytes, paying real parse/validate costs.
func Encode(m *Module) []byte {
	var out []byte
	out = append(out, magic...)
	out = append(out, version...)

	out = encodeSection(out, secType, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Types)))
		for _, t := range m.Types {
			b = append(b, 0x60)
			b = appendResultTypes(b, t.Params)
			b = appendResultTypes(b, t.Results)
		}
		return b
	}, len(m.Types) > 0)

	out = encodeSection(out, secImport, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Imports)))
		for _, imp := range m.Imports {
			b = appendName(b, imp.Module)
			b = appendName(b, imp.Name)
			switch imp.Kind {
			case ImportFunc:
				b = append(b, 0x00)
				b = AppendU32(b, imp.TypeIdx)
			case ImportTable:
				b = append(b, 0x01, byte(FuncRef))
				b = appendLimits(b, imp.Lim)
			case ImportMemory:
				b = append(b, 0x02)
				b = appendLimits(b, imp.Lim)
			case ImportGlobal:
				b = append(b, 0x03, byte(imp.GlobalType))
				if imp.Mutable {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
			}
		}
		return b
	}, len(m.Imports) > 0)

	out = encodeSection(out, secFunction, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Funcs)))
		for _, f := range m.Funcs {
			b = AppendU32(b, f.TypeIdx)
		}
		return b
	}, len(m.Funcs) > 0)

	out = encodeSection(out, secTable, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Tables)))
		for _, t := range m.Tables {
			b = append(b, byte(FuncRef))
			b = appendLimits(b, t.Lim)
		}
		return b
	}, len(m.Tables) > 0)

	out = encodeSection(out, secMemory, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Memories)))
		for _, lim := range m.Memories {
			b = appendLimits(b, lim)
		}
		return b
	}, len(m.Memories) > 0)

	out = encodeSection(out, secGlobal, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Globals)))
		for _, g := range m.Globals {
			b = append(b, byte(g.Type))
			if g.Mutable {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendConstExpr(b, g.Init)
		}
		return b
	}, len(m.Globals) > 0)

	out = encodeSection(out, secExport, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Exports)))
		for _, e := range m.Exports {
			b = appendName(b, e.Name)
			b = append(b, byte(e.Kind))
			b = AppendU32(b, e.Idx)
		}
		return b
	}, len(m.Exports) > 0)

	out = encodeSection(out, secStart, func(b []byte) []byte {
		return AppendU32(b, m.Start)
	}, m.HasStart)

	out = encodeSection(out, secElem, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Elems)))
		for _, e := range m.Elems {
			b = AppendU32(b, 0) // flag: active, table 0
			b = appendConstExpr(b, ValI32(int32(e.Offset)))
			b = AppendU32(b, uint32(len(e.Funcs)))
			for _, f := range e.Funcs {
				b = AppendU32(b, f)
			}
		}
		return b
	}, len(m.Elems) > 0)

	out = encodeSection(out, secCode, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Funcs)))
		for _, f := range m.Funcs {
			var fb []byte
			fb = appendLocalDecls(fb, f.Locals)
			fb = append(fb, f.Body...)
			b = AppendU32(b, uint32(len(fb)))
			b = append(b, fb...)
		}
		return b
	}, len(m.Funcs) > 0)

	out = encodeSection(out, secData, func(b []byte) []byte {
		b = AppendU32(b, uint32(len(m.Datas)))
		for _, d := range m.Datas {
			b = AppendU32(b, 0) // flag: active, memory 0
			b = appendConstExpr(b, ValI32(int32(d.Offset)))
			b = AppendU32(b, uint32(len(d.Bytes)))
			b = append(b, d.Bytes...)
		}
		return b
	}, len(m.Datas) > 0)

	if len(m.Names) > 0 {
		out = encodeSection(out, secCustom, func(b []byte) []byte {
			b = appendName(b, "name")
			var sub []byte
			sub = AppendU32(sub, uint32(len(m.Names)))
			// Name maps must be sorted by index in the binary format.
			idxs := make([]uint32, 0, len(m.Names))
			for idx := range m.Names {
				idxs = append(idxs, idx)
			}
			for i := 1; i < len(idxs); i++ {
				for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
					idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
				}
			}
			for _, idx := range idxs {
				sub = AppendU32(sub, idx)
				sub = appendName(sub, m.Names[idx])
			}
			b = append(b, 1) // subsection: function names
			b = AppendU32(b, uint32(len(sub)))
			return append(b, sub...)
		}, true)
	}
	return out
}

func encodeSection(out []byte, id byte, fill func([]byte) []byte, present bool) []byte {
	if !present {
		return out
	}
	body := fill(nil)
	out = append(out, id)
	out = AppendU32(out, uint32(len(body)))
	return append(out, body...)
}

func appendName(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendResultTypes(b []byte, types []ValueType) []byte {
	b = AppendU32(b, uint32(len(types)))
	for _, t := range types {
		b = append(b, byte(t))
	}
	return b
}

func appendLimits(b []byte, lim Limits) []byte {
	if lim.HasMax {
		b = append(b, 1)
		b = AppendU32(b, lim.Min)
		return AppendU32(b, lim.Max)
	}
	b = append(b, 0)
	return AppendU32(b, lim.Min)
}

func appendConstExpr(b []byte, v Value) []byte {
	switch v.Type {
	case I32:
		b = append(b, byte(OpI32Const))
		b = AppendS32(b, v.I32())
	case I64:
		b = append(b, byte(OpI64Const))
		b = AppendS64(b, v.I64())
	case F32:
		b = append(b, byte(OpF32Const))
		b = AppendF32(b, uint32(v.Bits))
	case F64:
		b = append(b, byte(OpF64Const))
		b = AppendF64(b, v.Bits)
	case FuncRef:
		if v.Bits == NullRef {
			b = append(b, byte(OpRefNull), byte(FuncRef))
		} else {
			b = append(b, byte(OpRefFunc))
			b = AppendU32(b, uint32(v.Bits-1))
		}
	case ExternRef:
		b = append(b, byte(OpRefNull), byte(ExternRef))
	}
	return append(b, byte(OpEnd))
}

func appendLocalDecls(b []byte, locals []ValueType) []byte {
	// Run-length encode consecutive locals of the same type.
	type run struct {
		t ValueType
		n uint32
	}
	var runs []run
	for _, t := range locals {
		if len(runs) > 0 && runs[len(runs)-1].t == t {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{t, 1})
		}
	}
	b = AppendU32(b, uint32(len(runs)))
	for _, r := range runs {
		b = AppendU32(b, r.n)
		b = append(b, byte(r.t))
	}
	return b
}
