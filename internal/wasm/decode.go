package wasm

import (
	"errors"
	"fmt"
)

// Binary format section IDs.
const (
	secCustom   = 0
	secType     = 1
	secImport   = 2
	secFunction = 3
	secTable    = 4
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secStart    = 8
	secElem     = 9
	secCode     = 10
	secData     = 11
)

var (
	magic   = []byte{0x00, 0x61, 0x73, 0x6D}
	version = []byte{0x01, 0x00, 0x00, 0x00}
)

// ErrBadMagic reports a module that does not start with "\0asm".
var ErrBadMagic = errors.New("wasm: bad magic or version")

// checkCount guards count-prefixed vectors before allocation: every
// element occupies at least one byte, so a count exceeding the
// remaining input is malformed — and would otherwise let a few
// attacker-controlled bytes size a multi-gigabyte allocation.
func checkCount(r *Reader, n uint32, what string) error {
	if int64(n) > int64(r.Len()) {
		return fmt.Errorf("wasm: %s count %d exceeds remaining input", what, n)
	}
	return nil
}

// Decode parses a binary module. It performs structural decoding only;
// type checking of function bodies is the validator's job
// (internal/validate), mirroring the engine pipeline of the paper where
// parsing and validation are distinct costs.
func Decode(b []byte) (*Module, error) {
	r := NewReader(b)
	hdr, err := r.Take(8)
	if err != nil {
		return nil, ErrBadMagic
	}
	for i := 0; i < 4; i++ {
		if hdr[i] != magic[i] || hdr[4+i] != version[i] {
			return nil, ErrBadMagic
		}
	}

	m := &Module{Size: len(b)}
	var funcTypeIdxs []uint32
	lastSec := -1
	for r.Len() > 0 {
		id, err := r.Byte()
		if err != nil {
			return nil, err
		}
		size, err := r.U32()
		if err != nil {
			return nil, err
		}
		body, err := r.Take(int(size))
		if err != nil {
			return nil, err
		}
		if id != secCustom {
			if int(id) <= lastSec {
				return nil, fmt.Errorf("wasm: section %d out of order", id)
			}
			lastSec = int(id)
		}
		sr := NewReader(body)
		// Section payload offsets must be translated to module-wide
		// offsets for diagnostics.
		base := r.Pos - int(size)
		switch id {
		case secCustom:
			if err := decodeCustom(sr, m); err != nil {
				return nil, err
			}
		case secType:
			if err := decodeTypes(sr, m); err != nil {
				return nil, err
			}
		case secImport:
			if err := decodeImports(sr, m); err != nil {
				return nil, err
			}
		case secFunction:
			n, err := sr.U32()
			if err != nil {
				return nil, err
			}
			if err := checkCount(sr, n, "function"); err != nil {
				return nil, err
			}
			funcTypeIdxs = make([]uint32, n)
			for i := range funcTypeIdxs {
				if funcTypeIdxs[i], err = sr.U32(); err != nil {
					return nil, err
				}
			}
		case secTable:
			if err := decodeTables(sr, m); err != nil {
				return nil, err
			}
		case secMemory:
			if err := decodeMemories(sr, m); err != nil {
				return nil, err
			}
		case secGlobal:
			if err := decodeGlobals(sr, m); err != nil {
				return nil, err
			}
		case secExport:
			if err := decodeExports(sr, m); err != nil {
				return nil, err
			}
		case secStart:
			idx, err := sr.U32()
			if err != nil {
				return nil, err
			}
			m.Start, m.HasStart = idx, true
		case secElem:
			if err := decodeElems(sr, m); err != nil {
				return nil, err
			}
		case secCode:
			if err := decodeCode(sr, m, funcTypeIdxs, base); err != nil {
				return nil, err
			}
		case secData:
			if err := decodeDatas(sr, m); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wasm: unknown section id %d", id)
		}
		if id != secCustom && sr.Len() != 0 {
			return nil, fmt.Errorf("wasm: section %d has %d trailing bytes", id, sr.Len())
		}
	}
	if len(funcTypeIdxs) != len(m.Funcs) {
		return nil, fmt.Errorf("wasm: function section declares %d funcs, code section has %d",
			len(funcTypeIdxs), len(m.Funcs))
	}
	return m, nil
}

func decodeValType(r *Reader) (ValueType, error) {
	b, err := r.Byte()
	if err != nil {
		return 0, err
	}
	t := ValueType(b)
	if !t.Valid() {
		return 0, fmt.Errorf("wasm: invalid value type 0x%02x", b)
	}
	return t, nil
}

func decodeResultTypes(r *Reader) ([]ValueType, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if err := checkCount(r, n, "result type"); err != nil {
		return nil, err
	}
	types := make([]ValueType, n)
	for i := range types {
		if types[i], err = decodeValType(r); err != nil {
			return nil, err
		}
	}
	return types, nil
}

func decodeTypes(r *Reader, m *Module) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if err := checkCount(r, n, "type"); err != nil {
		return err
	}
	m.Types = make([]FuncType, n)
	for i := range m.Types {
		form, err := r.Byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return fmt.Errorf("wasm: type %d: expected func form 0x60, got 0x%02x", i, form)
		}
		if m.Types[i].Params, err = decodeResultTypes(r); err != nil {
			return err
		}
		if m.Types[i].Results, err = decodeResultTypes(r); err != nil {
			return err
		}
	}
	return nil
}

func decodeLimits(r *Reader) (Limits, error) {
	flag, err := r.Byte()
	if err != nil {
		return Limits{}, err
	}
	var lim Limits
	if lim.Min, err = r.U32(); err != nil {
		return Limits{}, err
	}
	switch flag {
	case 0:
	case 1:
		lim.HasMax = true
		if lim.Max, err = r.U32(); err != nil {
			return Limits{}, err
		}
		if lim.Max < lim.Min {
			return Limits{}, fmt.Errorf("wasm: limits max %d < min %d", lim.Max, lim.Min)
		}
	default:
		return Limits{}, fmt.Errorf("wasm: invalid limits flag 0x%02x", flag)
	}
	return lim, nil
}

func decodeImports(r *Reader, m *Module) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if err := checkCount(r, n, "import"); err != nil {
		return err
	}
	m.Imports = make([]Import, 0, n)
	for i := uint32(0); i < n; i++ {
		var imp Import
		if imp.Module, err = r.Name(); err != nil {
			return err
		}
		if imp.Name, err = r.Name(); err != nil {
			return err
		}
		kind, err := r.Byte()
		if err != nil {
			return err
		}
		switch kind {
		case 0x00:
			imp.Kind = ImportFunc
			if imp.TypeIdx, err = r.U32(); err != nil {
				return err
			}
		case 0x01:
			imp.Kind = ImportTable
			if _, err = r.Byte(); err != nil { // reftype
				return err
			}
			if imp.Lim, err = decodeLimits(r); err != nil {
				return err
			}
		case 0x02:
			imp.Kind = ImportMemory
			if imp.Lim, err = decodeLimits(r); err != nil {
				return err
			}
		case 0x03:
			imp.Kind = ImportGlobal
			if imp.GlobalType, err = decodeValType(r); err != nil {
				return err
			}
			mut, err := r.Byte()
			if err != nil {
				return err
			}
			imp.Mutable = mut == 1
		default:
			return fmt.Errorf("wasm: invalid import kind 0x%02x", kind)
		}
		m.Imports = append(m.Imports, imp)
	}
	return nil
}

func decodeTables(r *Reader, m *Module) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if err := checkCount(r, n, "table"); err != nil {
		return err
	}
	m.Tables = make([]Table, n)
	for i := range m.Tables {
		refType, err := r.Byte()
		if err != nil {
			return err
		}
		if !ValueType(refType).IsRef() {
			return fmt.Errorf("wasm: table %d: invalid element type 0x%02x", i, refType)
		}
		if m.Tables[i].Lim, err = decodeLimits(r); err != nil {
			return err
		}
	}
	return nil
}

func decodeMemories(r *Reader, m *Module) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if n > 1 {
		return errors.New("wasm: at most one memory is supported")
	}
	m.Memories = make([]Limits, n)
	for i := range m.Memories {
		if m.Memories[i], err = decodeLimits(r); err != nil {
			return err
		}
	}
	return nil
}

// decodeConstExpr evaluates the single-instruction constant expressions
// this subset supports: t.const, ref.null, ref.func.
func decodeConstExpr(r *Reader, want ValueType) (Value, error) {
	op, err := r.ReadOpcode()
	if err != nil {
		return Value{}, err
	}
	var v Value
	switch op {
	case OpI32Const:
		c, err := r.S32()
		if err != nil {
			return Value{}, err
		}
		v = ValI32(c)
	case OpI64Const:
		c, err := r.S64()
		if err != nil {
			return Value{}, err
		}
		v = ValI64(c)
	case OpF32Const:
		bits, err := r.F32()
		if err != nil {
			return Value{}, err
		}
		v = Value{F32, uint64(bits)}
	case OpF64Const:
		bits, err := r.F64()
		if err != nil {
			return Value{}, err
		}
		v = Value{F64, bits}
	case OpRefNull:
		ht, err := r.Byte()
		if err != nil {
			return Value{}, err
		}
		v = Value{ValueType(ht), NullRef}
	case OpRefFunc:
		idx, err := r.U32()
		if err != nil {
			return Value{}, err
		}
		// funcref handles are 1-based so that 0 remains null.
		v = Value{FuncRef, uint64(idx) + 1}
	default:
		return Value{}, fmt.Errorf("wasm: unsupported constant expression opcode %v", op)
	}
	end, err := r.ReadOpcode()
	if err != nil {
		return Value{}, err
	}
	if end != OpEnd {
		return Value{}, fmt.Errorf("wasm: constant expression not terminated by end, got %v", end)
	}
	if v.Type != want {
		return Value{}, fmt.Errorf("wasm: constant expression type %v, want %v", v.Type, want)
	}
	return v, nil
}

func decodeGlobals(r *Reader, m *Module) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if err := checkCount(r, n, "global"); err != nil {
		return err
	}
	m.Globals = make([]Global, n)
	for i := range m.Globals {
		t, err := decodeValType(r)
		if err != nil {
			return err
		}
		mut, err := r.Byte()
		if err != nil {
			return err
		}
		init, err := decodeConstExpr(r, t)
		if err != nil {
			return err
		}
		m.Globals[i] = Global{Type: t, Mutable: mut == 1, Init: init}
	}
	return nil
}

func decodeExports(r *Reader, m *Module) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if err := checkCount(r, n, "export"); err != nil {
		return err
	}
	m.Exports = make([]Export, n)
	seen := make(map[string]bool, n)
	for i := range m.Exports {
		name, err := r.Name()
		if err != nil {
			return err
		}
		if seen[name] {
			return fmt.Errorf("wasm: duplicate export %q", name)
		}
		seen[name] = true
		kind, err := r.Byte()
		if err != nil {
			return err
		}
		if kind > 3 {
			return fmt.Errorf("wasm: invalid export kind 0x%02x", kind)
		}
		idx, err := r.U32()
		if err != nil {
			return err
		}
		m.Exports[i] = Export{Name: name, Kind: ImportKind(kind), Idx: idx}
	}
	return nil
}

func decodeElems(r *Reader, m *Module) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if err := checkCount(r, n, "element segment"); err != nil {
		return err
	}
	m.Elems = make([]Elem, n)
	for i := range m.Elems {
		flag, err := r.U32()
		if err != nil {
			return err
		}
		if flag != 0 {
			return fmt.Errorf("wasm: only active funcref element segments supported (flag %d)", flag)
		}
		off, err := decodeConstExpr(r, I32)
		if err != nil {
			return err
		}
		cnt, err := r.U32()
		if err != nil {
			return err
		}
		if err := checkCount(r, cnt, "element function"); err != nil {
			return err
		}
		funcs := make([]uint32, cnt)
		for j := range funcs {
			if funcs[j], err = r.U32(); err != nil {
				return err
			}
		}
		m.Elems[i] = Elem{TableIdx: 0, Offset: uint32(off.I32()), Funcs: funcs}
	}
	return nil
}

func decodeCode(r *Reader, m *Module, typeIdxs []uint32, base int) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if int(n) != len(typeIdxs) {
		return fmt.Errorf("wasm: code count %d != function count %d", n, len(typeIdxs))
	}
	m.Funcs = make([]Func, n)
	for i := range m.Funcs {
		size, err := r.U32()
		if err != nil {
			return err
		}
		bodyStart := r.Pos
		body, err := r.Take(int(size))
		if err != nil {
			return err
		}
		br := NewReader(body)
		numDecls, err := br.U32()
		if err != nil {
			return err
		}
		var locals []ValueType
		for d := uint32(0); d < numDecls; d++ {
			cnt, err := br.U32()
			if err != nil {
				return err
			}
			t, err := decodeValType(br)
			if err != nil {
				return err
			}
			if len(locals)+int(cnt) > 65536 {
				return fmt.Errorf("wasm: function %d: too many locals", i)
			}
			for c := uint32(0); c < cnt; c++ {
				locals = append(locals, t)
			}
		}
		m.Funcs[i] = Func{
			TypeIdx:    typeIdxs[i],
			Locals:     locals,
			Body:       body[br.Pos:],
			BodyOffset: base + bodyStart + br.Pos,
		}
	}
	return nil
}

func decodeDatas(r *Reader, m *Module) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if err := checkCount(r, n, "data segment"); err != nil {
		return err
	}
	m.Datas = make([]Data, n)
	for i := range m.Datas {
		flag, err := r.U32()
		if err != nil {
			return err
		}
		if flag != 0 {
			return fmt.Errorf("wasm: only active data segments supported (flag %d)", flag)
		}
		off, err := decodeConstExpr(r, I32)
		if err != nil {
			return err
		}
		cnt, err := r.U32()
		if err != nil {
			return err
		}
		bytes, err := r.Take(int(cnt))
		if err != nil {
			return err
		}
		m.Datas[i] = Data{MemIdx: 0, Offset: uint32(off.I32()), Bytes: bytes}
	}
	return nil
}

func decodeCustom(r *Reader, m *Module) error {
	name, err := r.Name()
	if err != nil {
		return err
	}
	if name != "name" {
		return nil // ignore unknown custom sections
	}
	// Name section: subsections; we only parse function names (id 1).
	for r.Len() > 0 {
		id, err := r.Byte()
		if err != nil {
			return err
		}
		size, err := r.U32()
		if err != nil {
			return err
		}
		body, err := r.Take(int(size))
		if err != nil {
			return err
		}
		if id != 1 {
			continue
		}
		sr := NewReader(body)
		cnt, err := sr.U32()
		if err != nil {
			return err
		}
		if err := checkCount(sr, cnt, "name"); err != nil {
			return err
		}
		if m.Names == nil {
			m.Names = make(map[uint32]string, cnt)
		}
		for i := uint32(0); i < cnt; i++ {
			idx, err := sr.U32()
			if err != nil {
				return err
			}
			fname, err := sr.Name()
			if err != nil {
				return err
			}
			m.Names[idx] = fname
		}
	}
	return nil
}
