package wasm

// Instruction-level body scanning helpers. The differential-testing
// minimizer edits function bodies by splicing whole instructions, and
// the fuzzer's reproducer reports size divergences in instructions, so
// both need the byte offsets of instruction boundaries. The opcode
// table's ImmKind metadata (via Reader.SkipImm) keeps this in sync with
// the decoder, validator and compilers.

// InstrStarts returns the byte offset of every instruction in body,
// in order. The final offset addresses the function's trailing end
// opcode. An error means the body is structurally malformed (truncated
// immediates or an unknown opcode).
func InstrStarts(body []byte) ([]int, error) {
	var starts []int
	r := NewReader(body)
	for r.Len() > 0 {
		starts = append(starts, r.Pos)
		op, err := r.ReadOpcode()
		if err != nil {
			return nil, err
		}
		if err := r.SkipImm(op); err != nil {
			return nil, err
		}
	}
	return starts, nil
}

// CountInstrs returns the number of instructions in body, including the
// trailing end opcode.
func CountInstrs(body []byte) (int, error) {
	starts, err := InstrStarts(body)
	return len(starts), err
}
