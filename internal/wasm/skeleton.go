package wasm

import (
	"fmt"
	"sort"

	"wizgo/internal/wbin"
)

// This file persists a decoded Module's structure — the "skeleton" — so
// a disk-cache load never re-parses the wasm binary. LEB decoding and
// per-section dispatch are a measurable slice of a cold start for small
// modules, and all of it re-derives information the seed process
// already computed. Function bodies are stored as offsets into the
// original module bytes (the cache key is their content hash, so the
// loader always holds them); data segments are stored inline because
// the decoder hands out views into section bodies without recording
// where they came from.
//
// The encoding must be deterministic — one decode always yields
// byte-identical skeletons — because artifacts are content-addressed
// and deduped on their bytes. The one iteration-ordered structure, the
// name map, is sorted before encoding.

// AppendSkeleton serializes m's structure into w.
func AppendSkeleton(w *wbin.Writer, m *Module) {
	// The header carries the total count of value types across all
	// signatures and locals lists, so the decoder can allocate one
	// contiguous block and sub-slice it (cold-start rehydration cost
	// is dominated by allocation, not byte decoding).
	totVT := 0
	for _, t := range m.Types {
		totVT += len(t.Params) + len(t.Results)
	}
	for i := range m.Funcs {
		totVT += len(m.Funcs[i].Locals)
	}
	w.Uvarint(uint64(totVT))

	w.Uvarint(uint64(len(m.Types)))
	for _, t := range m.Types {
		appendValTypes(w, t.Params)
		appendValTypes(w, t.Results)
	}

	w.Uvarint(uint64(len(m.Imports)))
	for _, imp := range m.Imports {
		w.String(imp.Module)
		w.String(imp.Name)
		w.U8(uint8(imp.Kind))
		switch imp.Kind {
		case ImportFunc:
			w.Uvarint(uint64(imp.TypeIdx))
		case ImportTable, ImportMemory:
			appendLimitsSkel(w, imp.Lim)
		case ImportGlobal:
			w.U8(uint8(imp.GlobalType))
			w.Bool(imp.Mutable)
		}
	}

	w.Uvarint(uint64(len(m.Funcs)))
	for i := range m.Funcs {
		f := &m.Funcs[i]
		w.Uvarint(uint64(f.TypeIdx))
		appendValTypes(w, f.Locals)
		w.Uvarint(uint64(f.BodyOffset))
		w.Uvarint(uint64(len(f.Body)))
	}

	w.Uvarint(uint64(len(m.Tables)))
	for _, t := range m.Tables {
		appendLimitsSkel(w, t.Lim)
	}
	w.Uvarint(uint64(len(m.Memories)))
	for _, lim := range m.Memories {
		appendLimitsSkel(w, lim)
	}

	w.Uvarint(uint64(len(m.Globals)))
	for _, g := range m.Globals {
		w.U8(uint8(g.Type))
		w.Bool(g.Mutable)
		w.U8(uint8(g.Init.Type))
		w.U64(g.Init.Bits)
	}

	w.Uvarint(uint64(len(m.Exports)))
	for _, e := range m.Exports {
		w.String(e.Name)
		w.U8(uint8(e.Kind))
		w.Uvarint(uint64(e.Idx))
	}

	w.Uvarint(uint64(len(m.Elems)))
	for _, e := range m.Elems {
		w.Uvarint(uint64(e.TableIdx))
		w.Uvarint(uint64(e.Offset))
		w.Uvarint(uint64(len(e.Funcs)))
		for _, f := range e.Funcs {
			w.Uvarint(uint64(f))
		}
	}

	w.Uvarint(uint64(len(m.Datas)))
	for _, d := range m.Datas {
		w.Uvarint(uint64(d.MemIdx))
		w.Uvarint(uint64(d.Offset))
		w.Bytes8(d.Bytes)
	}

	w.Bool(m.HasStart)
	w.Uvarint(uint64(m.Start))

	w.Uvarint(uint64(len(m.Names)))
	idxs := make([]uint32, 0, len(m.Names))
	for idx := range m.Names {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		w.Uvarint(uint64(idx))
		w.String(m.Names[idx])
	}
}

// DecodeSkeleton rebuilds a Module from a skeleton, resolving function
// bodies as views into moduleBytes. Lengths and offsets come from
// (possibly corrupt) disk bytes, so everything is validated before use;
// structural nonsense surfaces as an error, never a panic.
func DecodeSkeleton(r *wbin.Reader, moduleBytes []byte) (*Module, error) {
	m := &Module{Size: len(moduleBytes)}

	// One block for every value-type list in the skeleton; Count bounds
	// the total against the payload, and a lying total merely exhausts
	// the arena (take falls back to plain allocation).
	vts := vtArena{buf: make([]ValueType, 0, r.Count(1))}

	nTypes := r.Count(2)
	m.Types = make([]FuncType, nTypes)
	for i := range m.Types {
		var err error
		if m.Types[i].Params, err = decodeValTypes(r, &vts); err != nil {
			return nil, err
		}
		if m.Types[i].Results, err = decodeValTypes(r, &vts); err != nil {
			return nil, err
		}
	}

	nImports := r.Count(3)
	if nImports > 0 {
		m.Imports = make([]Import, nImports)
	}
	for i := range m.Imports {
		imp := &m.Imports[i]
		imp.Module = r.String()
		imp.Name = r.String()
		imp.Kind = ImportKind(r.U8())
		switch imp.Kind {
		case ImportFunc:
			imp.TypeIdx = uint32(r.Uvarint())
		case ImportTable, ImportMemory:
			imp.Lim = decodeLimitsSkel(r)
		case ImportGlobal:
			imp.GlobalType = ValueType(r.U8())
			imp.Mutable = r.Bool()
			if r.Err() == nil && !imp.GlobalType.Valid() {
				return nil, fmt.Errorf("wasm: skeleton import %d: invalid global type", i)
			}
		default:
			if r.Err() == nil {
				return nil, fmt.Errorf("wasm: skeleton import %d: invalid kind %d", i, imp.Kind)
			}
		}
	}

	nFuncs := r.Count(3)
	m.Funcs = make([]Func, nFuncs)
	for i := range m.Funcs {
		f := &m.Funcs[i]
		f.TypeIdx = uint32(r.Uvarint())
		var err error
		if f.Locals, err = decodeValTypes(r, &vts); err != nil {
			return nil, err
		}
		off := r.Uvarint()
		n := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if off > uint64(len(moduleBytes)) || n > uint64(len(moduleBytes))-off {
			return nil, fmt.Errorf("wasm: skeleton func %d: body [%d:+%d] outside %d module bytes",
				i, off, n, len(moduleBytes))
		}
		f.BodyOffset = int(off)
		f.Body = moduleBytes[off : off+n]
	}

	nTables := r.Count(2)
	if nTables > 0 {
		m.Tables = make([]Table, nTables)
		for i := range m.Tables {
			m.Tables[i].Lim = decodeLimitsSkel(r)
		}
	}
	nMems := r.Count(2)
	if nMems > 0 {
		m.Memories = make([]Limits, nMems)
		for i := range m.Memories {
			m.Memories[i] = decodeLimitsSkel(r)
		}
	}

	nGlobals := r.Count(3)
	if nGlobals > 0 {
		m.Globals = make([]Global, nGlobals)
	}
	for i := range m.Globals {
		g := &m.Globals[i]
		g.Type = ValueType(r.U8())
		g.Mutable = r.Bool()
		g.Init = Value{Type: ValueType(r.U8()), Bits: r.U64()}
		if r.Err() == nil && !g.Type.Valid() {
			return nil, fmt.Errorf("wasm: skeleton global %d: invalid type", i)
		}
	}

	nExports := r.Count(3)
	if nExports > 0 {
		m.Exports = make([]Export, nExports)
	}
	for i := range m.Exports {
		e := &m.Exports[i]
		e.Name = r.String()
		e.Kind = ImportKind(r.U8())
		e.Idx = uint32(r.Uvarint())
		if r.Err() == nil && e.Kind > ImportGlobal {
			return nil, fmt.Errorf("wasm: skeleton export %d: invalid kind %d", i, e.Kind)
		}
	}

	nElems := r.Count(3)
	if nElems > 0 {
		m.Elems = make([]Elem, nElems)
	}
	for i := range m.Elems {
		e := &m.Elems[i]
		e.TableIdx = uint32(r.Uvarint())
		e.Offset = uint32(r.Uvarint())
		nf := r.Count(1)
		e.Funcs = make([]uint32, nf)
		for j := range e.Funcs {
			e.Funcs[j] = uint32(r.Uvarint())
		}
	}

	nDatas := r.Count(3)
	if nDatas > 0 {
		m.Datas = make([]Data, nDatas)
	}
	for i := range m.Datas {
		d := &m.Datas[i]
		d.MemIdx = uint32(r.Uvarint())
		d.Offset = uint32(r.Uvarint())
		d.Bytes = r.Bytes8()
	}

	m.HasStart = r.Bool()
	m.Start = uint32(r.Uvarint())

	nNames := r.Count(2)
	if nNames > 0 {
		m.Names = make(map[uint32]string, nNames)
		for i := 0; i < nNames; i++ {
			idx := uint32(r.Uvarint())
			m.Names[idx] = r.String()
		}
	}

	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func appendValTypes(w *wbin.Writer, types []ValueType) {
	w.Uvarint(uint64(len(types)))
	b := w.Reserve(len(types))
	for i, t := range types {
		b[i] = uint8(t)
	}
}

// vtArena is the skeleton-wide backing block for value-type lists,
// sized from the header total.
type vtArena struct{ buf []ValueType }

func (a *vtArena) take(n int) []ValueType {
	if len(a.buf)+n > cap(a.buf) {
		return make([]ValueType, n)
	}
	s := a.buf[len(a.buf) : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return s
}

func decodeValTypes(r *wbin.Reader, a *vtArena) ([]ValueType, error) {
	n := r.Count(1)
	b := r.Take(n)
	if b == nil {
		return nil, r.Err()
	}
	types := a.take(n)
	for i := range types {
		types[i] = ValueType(b[i])
		if !types[i].Valid() {
			return nil, fmt.Errorf("wasm: skeleton value type 0x%02x invalid", b[i])
		}
	}
	return types, nil
}

func appendLimitsSkel(w *wbin.Writer, lim Limits) {
	w.Bool(lim.HasMax)
	w.Uvarint(uint64(lim.Min))
	w.Uvarint(uint64(lim.Max))
}

func decodeLimitsSkel(r *wbin.Reader) Limits {
	return Limits{
		HasMax: r.Bool(),
		Min:    uint32(r.Uvarint()),
		Max:    uint32(r.Uvarint()),
	}
}
