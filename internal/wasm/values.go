// Package wasm implements the WebAssembly binary format: the type system,
// the instruction set, a module model, and a decoder and encoder for the
// binary format. It is the foundation every other package in this
// repository builds on (the validator, the interpreter, and the
// compilers).
//
// The subset implemented is the Wasm core spec (MVP) plus the extensions
// the paper's engines rely on: multi-value blocks and functions,
// sign-extension operators, saturating truncations, bulk memory
// (memory.copy / memory.fill), and reference types (externref / funcref)
// sufficient for GC-root experiments. SIMD (v128), threads and exception
// handling are intentionally out of scope; the evaluation does not use
// them.
package wasm

import (
	"fmt"
	"math"
)

// ValueType is a Wasm value type. The encodings match the binary format.
type ValueType byte

const (
	I32       ValueType = 0x7F
	I64       ValueType = 0x7E
	F32       ValueType = 0x7D
	F64       ValueType = 0x7C
	FuncRef   ValueType = 0x70
	ExternRef ValueType = 0x6F
)

// IsNum reports whether t is a numeric type.
func (t ValueType) IsNum() bool {
	switch t {
	case I32, I64, F32, F64:
		return true
	}
	return false
}

// IsRef reports whether t is a reference type.
func (t ValueType) IsRef() bool { return t == FuncRef || t == ExternRef }

// Valid reports whether t is one of the supported value types.
func (t ValueType) Valid() bool { return t.IsNum() || t.IsRef() }

func (t ValueType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	case FuncRef:
		return "funcref"
	case ExternRef:
		return "externref"
	}
	return fmt.Sprintf("valuetype(0x%02x)", byte(t))
}

// Tag is the dynamic value tag stored alongside each value stack slot when
// the engine runs with value tags enabled. Tags let a stack walker (and
// the host garbage collector) classify any slot in memory without static
// metadata — the design choice the paper evaluates against stackmaps.
type Tag byte

const (
	// TagVoid marks a slot that holds no live value (e.g. above the
	// operand stack top, or a slot whose tag was never stored under
	// on-demand tagging).
	TagVoid Tag = iota
	TagI32
	TagI64
	TagF32
	TagF64
	TagFuncRef
	TagRef // externref; the only tag the GC scans for roots
)

// TagOf returns the tag corresponding to a value type.
func TagOf(t ValueType) Tag {
	switch t {
	case I32:
		return TagI32
	case I64:
		return TagI64
	case F32:
		return TagF32
	case F64:
		return TagF64
	case FuncRef:
		return TagFuncRef
	case ExternRef:
		return TagRef
	}
	return TagVoid
}

func (g Tag) String() string {
	switch g {
	case TagVoid:
		return "void"
	case TagI32:
		return "i32"
	case TagI64:
		return "i64"
	case TagF32:
		return "f32"
	case TagF64:
		return "f64"
	case TagFuncRef:
		return "funcref"
	case TagRef:
		return "ref"
	}
	return fmt.Sprintf("tag(%d)", byte(g))
}

// IsRef reports whether the tag marks a GC-scannable reference slot.
func (g Tag) IsRef() bool { return g == TagRef }

// Value slots are raw uint64 bit patterns; these helpers convert between
// Go values and slot representations. They are used by the interpreter,
// the machine executor, host call marshalling, and tests.

// BoxI32 stores a signed 32-bit integer in a slot.
func BoxI32(v int32) uint64 { return uint64(uint32(v)) }

// BoxI64 stores a signed 64-bit integer in a slot.
func BoxI64(v int64) uint64 { return uint64(v) }

// BoxF32 stores a 32-bit float in a slot.
func BoxF32(v float32) uint64 { return uint64(math.Float32bits(v)) }

// BoxF64 stores a 64-bit float in a slot.
func BoxF64(v float64) uint64 { return math.Float64bits(v) }

// UnboxI32 reads a slot as a signed 32-bit integer.
func UnboxI32(s uint64) int32 { return int32(uint32(s)) }

// UnboxI64 reads a slot as a signed 64-bit integer.
func UnboxI64(s uint64) int64 { return int64(s) }

// UnboxF32 reads a slot as a 32-bit float.
func UnboxF32(s uint64) float32 { return math.Float32frombits(uint32(s)) }

// UnboxF64 reads a slot as a 64-bit float.
func UnboxF64(s uint64) float64 { return math.Float64frombits(s) }

// NullRef is the slot representation of a null reference. Non-null
// references are 1-based handles into the host heap (see internal/heap)
// or 1-based function indices for funcref.
const NullRef uint64 = 0

// Value is a typed Wasm value used at API boundaries (host calls, test
// assertions, CLI output). Inside the engine values live untyped in
// uint64 slots.
type Value struct {
	Type ValueType
	Bits uint64
}

// ValI32 constructs an i32 Value.
func ValI32(v int32) Value { return Value{I32, BoxI32(v)} }

// ValI64 constructs an i64 Value.
func ValI64(v int64) Value { return Value{I64, BoxI64(v)} }

// ValF32 constructs an f32 Value.
func ValF32(v float32) Value { return Value{F32, BoxF32(v)} }

// ValF64 constructs an f64 Value.
func ValF64(v float64) Value { return Value{F64, BoxF64(v)} }

// ValRef constructs an externref Value from a heap handle.
func ValRef(handle uint64) Value { return Value{ExternRef, handle} }

// I32 reads the value as int32.
func (v Value) I32() int32 { return UnboxI32(v.Bits) }

// I64 reads the value as int64.
func (v Value) I64() int64 { return UnboxI64(v.Bits) }

// F32 reads the value as float32.
func (v Value) F32() float32 { return UnboxF32(v.Bits) }

// F64 reads the value as float64.
func (v Value) F64() float64 { return UnboxF64(v.Bits) }

func (v Value) String() string {
	switch v.Type {
	case I32:
		return fmt.Sprintf("i32:%d", v.I32())
	case I64:
		return fmt.Sprintf("i64:%d", v.I64())
	case F32:
		return fmt.Sprintf("f32:%g", v.F32())
	case F64:
		return fmt.Sprintf("f64:%g", v.F64())
	case FuncRef:
		return fmt.Sprintf("funcref:%d", v.Bits)
	case ExternRef:
		if v.Bits == NullRef {
			return "externref:null"
		}
		return fmt.Sprintf("externref:%d", v.Bits)
	}
	return fmt.Sprintf("value(%s:0x%x)", v.Type, v.Bits)
}
