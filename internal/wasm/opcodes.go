package wasm

import "fmt"

// Opcode is a Wasm instruction opcode. Single-byte opcodes use their
// binary encoding directly; 0xFC-prefixed opcodes are mapped into the
// 0x100+ range so every instruction has a distinct Opcode value.
type Opcode uint16

// Core single-byte opcodes (Wasm core spec §5.4).
const (
	OpUnreachable  Opcode = 0x00
	OpNop          Opcode = 0x01
	OpBlock        Opcode = 0x02
	OpLoop         Opcode = 0x03
	OpIf           Opcode = 0x04
	OpElse         Opcode = 0x05
	OpEnd          Opcode = 0x0B
	OpBr           Opcode = 0x0C
	OpBrIf         Opcode = 0x0D
	OpBrTable      Opcode = 0x0E
	OpReturn       Opcode = 0x0F
	OpCall         Opcode = 0x10
	OpCallIndirect Opcode = 0x11

	OpDrop   Opcode = 0x1A
	OpSelect Opcode = 0x1B
	// OpSelectT is the typed select from the reference-types proposal.
	OpSelectT Opcode = 0x1C

	OpLocalGet  Opcode = 0x20
	OpLocalSet  Opcode = 0x21
	OpLocalTee  Opcode = 0x22
	OpGlobalGet Opcode = 0x23
	OpGlobalSet Opcode = 0x24

	OpI32Load    Opcode = 0x28
	OpI64Load    Opcode = 0x29
	OpF32Load    Opcode = 0x2A
	OpF64Load    Opcode = 0x2B
	OpI32Load8S  Opcode = 0x2C
	OpI32Load8U  Opcode = 0x2D
	OpI32Load16S Opcode = 0x2E
	OpI32Load16U Opcode = 0x2F
	OpI64Load8S  Opcode = 0x30
	OpI64Load8U  Opcode = 0x31
	OpI64Load16S Opcode = 0x32
	OpI64Load16U Opcode = 0x33
	OpI64Load32S Opcode = 0x34
	OpI64Load32U Opcode = 0x35
	OpI32Store   Opcode = 0x36
	OpI64Store   Opcode = 0x37
	OpF32Store   Opcode = 0x38
	OpF64Store   Opcode = 0x39
	OpI32Store8  Opcode = 0x3A
	OpI32Store16 Opcode = 0x3B
	OpI64Store8  Opcode = 0x3C
	OpI64Store16 Opcode = 0x3D
	OpI64Store32 Opcode = 0x3E
	OpMemorySize Opcode = 0x3F
	OpMemoryGrow Opcode = 0x40

	OpI32Const Opcode = 0x41
	OpI64Const Opcode = 0x42
	OpF32Const Opcode = 0x43
	OpF64Const Opcode = 0x44

	OpI32Eqz Opcode = 0x45
	OpI32Eq  Opcode = 0x46
	OpI32Ne  Opcode = 0x47
	OpI32LtS Opcode = 0x48
	OpI32LtU Opcode = 0x49
	OpI32GtS Opcode = 0x4A
	OpI32GtU Opcode = 0x4B
	OpI32LeS Opcode = 0x4C
	OpI32LeU Opcode = 0x4D
	OpI32GeS Opcode = 0x4E
	OpI32GeU Opcode = 0x4F

	OpI64Eqz Opcode = 0x50
	OpI64Eq  Opcode = 0x51
	OpI64Ne  Opcode = 0x52
	OpI64LtS Opcode = 0x53
	OpI64LtU Opcode = 0x54
	OpI64GtS Opcode = 0x55
	OpI64GtU Opcode = 0x56
	OpI64LeS Opcode = 0x57
	OpI64LeU Opcode = 0x58
	OpI64GeS Opcode = 0x59
	OpI64GeU Opcode = 0x5A

	OpF32Eq Opcode = 0x5B
	OpF32Ne Opcode = 0x5C
	OpF32Lt Opcode = 0x5D
	OpF32Gt Opcode = 0x5E
	OpF32Le Opcode = 0x5F
	OpF32Ge Opcode = 0x60

	OpF64Eq Opcode = 0x61
	OpF64Ne Opcode = 0x62
	OpF64Lt Opcode = 0x63
	OpF64Gt Opcode = 0x64
	OpF64Le Opcode = 0x65
	OpF64Ge Opcode = 0x66

	OpI32Clz    Opcode = 0x67
	OpI32Ctz    Opcode = 0x68
	OpI32Popcnt Opcode = 0x69
	OpI32Add    Opcode = 0x6A
	OpI32Sub    Opcode = 0x6B
	OpI32Mul    Opcode = 0x6C
	OpI32DivS   Opcode = 0x6D
	OpI32DivU   Opcode = 0x6E
	OpI32RemS   Opcode = 0x6F
	OpI32RemU   Opcode = 0x70
	OpI32And    Opcode = 0x71
	OpI32Or     Opcode = 0x72
	OpI32Xor    Opcode = 0x73
	OpI32Shl    Opcode = 0x74
	OpI32ShrS   Opcode = 0x75
	OpI32ShrU   Opcode = 0x76
	OpI32Rotl   Opcode = 0x77
	OpI32Rotr   Opcode = 0x78

	OpI64Clz    Opcode = 0x79
	OpI64Ctz    Opcode = 0x7A
	OpI64Popcnt Opcode = 0x7B
	OpI64Add    Opcode = 0x7C
	OpI64Sub    Opcode = 0x7D
	OpI64Mul    Opcode = 0x7E
	OpI64DivS   Opcode = 0x7F
	OpI64DivU   Opcode = 0x80
	OpI64RemS   Opcode = 0x81
	OpI64RemU   Opcode = 0x82
	OpI64And    Opcode = 0x83
	OpI64Or     Opcode = 0x84
	OpI64Xor    Opcode = 0x85
	OpI64Shl    Opcode = 0x86
	OpI64ShrS   Opcode = 0x87
	OpI64ShrU   Opcode = 0x88
	OpI64Rotl   Opcode = 0x89
	OpI64Rotr   Opcode = 0x8A

	OpF32Abs      Opcode = 0x8B
	OpF32Neg      Opcode = 0x8C
	OpF32Ceil     Opcode = 0x8D
	OpF32Floor    Opcode = 0x8E
	OpF32Trunc    Opcode = 0x8F
	OpF32Nearest  Opcode = 0x90
	OpF32Sqrt     Opcode = 0x91
	OpF32Add      Opcode = 0x92
	OpF32Sub      Opcode = 0x93
	OpF32Mul      Opcode = 0x94
	OpF32Div      Opcode = 0x95
	OpF32Min      Opcode = 0x96
	OpF32Max      Opcode = 0x97
	OpF32Copysign Opcode = 0x98

	OpF64Abs      Opcode = 0x99
	OpF64Neg      Opcode = 0x9A
	OpF64Ceil     Opcode = 0x9B
	OpF64Floor    Opcode = 0x9C
	OpF64Trunc    Opcode = 0x9D
	OpF64Nearest  Opcode = 0x9E
	OpF64Sqrt     Opcode = 0x9F
	OpF64Add      Opcode = 0xA0
	OpF64Sub      Opcode = 0xA1
	OpF64Mul      Opcode = 0xA2
	OpF64Div      Opcode = 0xA3
	OpF64Min      Opcode = 0xA4
	OpF64Max      Opcode = 0xA5
	OpF64Copysign Opcode = 0xA6

	OpI32WrapI64        Opcode = 0xA7
	OpI32TruncF32S      Opcode = 0xA8
	OpI32TruncF32U      Opcode = 0xA9
	OpI32TruncF64S      Opcode = 0xAA
	OpI32TruncF64U      Opcode = 0xAB
	OpI64ExtendI32S     Opcode = 0xAC
	OpI64ExtendI32U     Opcode = 0xAD
	OpI64TruncF32S      Opcode = 0xAE
	OpI64TruncF32U      Opcode = 0xAF
	OpI64TruncF64S      Opcode = 0xB0
	OpI64TruncF64U      Opcode = 0xB1
	OpF32ConvertI32S    Opcode = 0xB2
	OpF32ConvertI32U    Opcode = 0xB3
	OpF32ConvertI64S    Opcode = 0xB4
	OpF32ConvertI64U    Opcode = 0xB5
	OpF32DemoteF64      Opcode = 0xB6
	OpF64ConvertI32S    Opcode = 0xB7
	OpF64ConvertI32U    Opcode = 0xB8
	OpF64ConvertI64S    Opcode = 0xB9
	OpF64ConvertI64U    Opcode = 0xBA
	OpF64PromoteF32     Opcode = 0xBB
	OpI32ReinterpretF32 Opcode = 0xBC
	OpI64ReinterpretF64 Opcode = 0xBD
	OpF32ReinterpretI32 Opcode = 0xBE
	OpF64ReinterpretI64 Opcode = 0xBF

	OpI32Extend8S  Opcode = 0xC0
	OpI32Extend16S Opcode = 0xC1
	OpI64Extend8S  Opcode = 0xC2
	OpI64Extend16S Opcode = 0xC3
	OpI64Extend32S Opcode = 0xC4

	OpRefNull   Opcode = 0xD0
	OpRefIsNull Opcode = 0xD1
	OpRefFunc   Opcode = 0xD2
)

// PrefixFC is the byte introducing the two-byte "miscellaneous" opcodes.
const PrefixFC byte = 0xFC

// 0xFC-prefixed opcodes, offset into the 0x100 range.
const (
	opFCBase Opcode = 0x100

	OpI32TruncSatF32S Opcode = opFCBase + 0
	OpI32TruncSatF32U Opcode = opFCBase + 1
	OpI32TruncSatF64S Opcode = opFCBase + 2
	OpI32TruncSatF64U Opcode = opFCBase + 3
	OpI64TruncSatF32S Opcode = opFCBase + 4
	OpI64TruncSatF32U Opcode = opFCBase + 5
	OpI64TruncSatF64S Opcode = opFCBase + 6
	OpI64TruncSatF64U Opcode = opFCBase + 7

	OpMemoryCopy Opcode = opFCBase + 10
	OpMemoryFill Opcode = opFCBase + 11
)

// ImmKind describes the immediate operand(s) an instruction carries in
// the binary format. The decoder, validator and compilers all use this
// table to stay in sync about instruction boundaries.
type ImmKind byte

const (
	ImmNone      ImmKind = iota
	ImmBlockType         // block, loop, if: s33 block type
	ImmLabel             // br, br_if: u32 label index
	ImmBrTable           // br_table: vector of labels + default
	ImmFunc              // call, ref.func: u32 function index
	ImmCallInd           // call_indirect: u32 type index + u32 table index
	ImmLocal             // local.get/set/tee: u32 local index
	ImmGlobal            // global.get/set: u32 global index
	ImmMem               // loads/stores: u32 align + u32 offset
	ImmMemOnly           // memory.size/grow: one 0x00 byte
	ImmI32               // i32.const: s32 LEB
	ImmI64               // i64.const: s64 LEB
	ImmF32               // f32.const: 4 bytes LE
	ImmF64               // f64.const: 8 bytes LE
	ImmRefType           // ref.null: heap type byte
	ImmSelectT           // select t*: vector of value types
	ImmTwoMem            // memory.copy: two 0x00 bytes
	ImmOneMem            // memory.fill: one 0x00 byte
)

// opInfo is static per-opcode metadata.
type opInfo struct {
	name string
	imm  ImmKind
	// sig describes the stack effect of "simple" instructions whose
	// types do not depend on context: params consumed (top of stack
	// last) and results produced. Context-dependent instructions
	// (control flow, locals, calls, parametric) leave both nil.
	params  []ValueType
	results []ValueType
}

var opTable = map[Opcode]opInfo{
	OpUnreachable:  {name: "unreachable"},
	OpNop:          {name: "nop"},
	OpBlock:        {name: "block", imm: ImmBlockType},
	OpLoop:         {name: "loop", imm: ImmBlockType},
	OpIf:           {name: "if", imm: ImmBlockType},
	OpElse:         {name: "else"},
	OpEnd:          {name: "end"},
	OpBr:           {name: "br", imm: ImmLabel},
	OpBrIf:         {name: "br_if", imm: ImmLabel},
	OpBrTable:      {name: "br_table", imm: ImmBrTable},
	OpReturn:       {name: "return"},
	OpCall:         {name: "call", imm: ImmFunc},
	OpCallIndirect: {name: "call_indirect", imm: ImmCallInd},

	OpDrop:    {name: "drop"},
	OpSelect:  {name: "select"},
	OpSelectT: {name: "select_t", imm: ImmSelectT},

	OpLocalGet:  {name: "local.get", imm: ImmLocal},
	OpLocalSet:  {name: "local.set", imm: ImmLocal},
	OpLocalTee:  {name: "local.tee", imm: ImmLocal},
	OpGlobalGet: {name: "global.get", imm: ImmGlobal},
	OpGlobalSet: {name: "global.set", imm: ImmGlobal},

	OpI32Load:    {name: "i32.load", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I32}},
	OpI64Load:    {name: "i64.load", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I64}},
	OpF32Load:    {name: "f32.load", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{F32}},
	OpF64Load:    {name: "f64.load", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{F64}},
	OpI32Load8S:  {name: "i32.load8_s", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I32}},
	OpI32Load8U:  {name: "i32.load8_u", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I32}},
	OpI32Load16S: {name: "i32.load16_s", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I32}},
	OpI32Load16U: {name: "i32.load16_u", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I32}},
	OpI64Load8S:  {name: "i64.load8_s", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I64}},
	OpI64Load8U:  {name: "i64.load8_u", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I64}},
	OpI64Load16S: {name: "i64.load16_s", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I64}},
	OpI64Load16U: {name: "i64.load16_u", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I64}},
	OpI64Load32S: {name: "i64.load32_s", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I64}},
	OpI64Load32U: {name: "i64.load32_u", imm: ImmMem, params: []ValueType{I32}, results: []ValueType{I64}},
	OpI32Store:   {name: "i32.store", imm: ImmMem, params: []ValueType{I32, I32}},
	OpI64Store:   {name: "i64.store", imm: ImmMem, params: []ValueType{I32, I64}},
	OpF32Store:   {name: "f32.store", imm: ImmMem, params: []ValueType{I32, F32}},
	OpF64Store:   {name: "f64.store", imm: ImmMem, params: []ValueType{I32, F64}},
	OpI32Store8:  {name: "i32.store8", imm: ImmMem, params: []ValueType{I32, I32}},
	OpI32Store16: {name: "i32.store16", imm: ImmMem, params: []ValueType{I32, I32}},
	OpI64Store8:  {name: "i64.store8", imm: ImmMem, params: []ValueType{I32, I64}},
	OpI64Store16: {name: "i64.store16", imm: ImmMem, params: []ValueType{I32, I64}},
	OpI64Store32: {name: "i64.store32", imm: ImmMem, params: []ValueType{I32, I64}},
	OpMemorySize: {name: "memory.size", imm: ImmMemOnly, results: []ValueType{I32}},
	OpMemoryGrow: {name: "memory.grow", imm: ImmMemOnly, params: []ValueType{I32}, results: []ValueType{I32}},

	OpI32Const: {name: "i32.const", imm: ImmI32, results: []ValueType{I32}},
	OpI64Const: {name: "i64.const", imm: ImmI64, results: []ValueType{I64}},
	OpF32Const: {name: "f32.const", imm: ImmF32, results: []ValueType{F32}},
	OpF64Const: {name: "f64.const", imm: ImmF64, results: []ValueType{F64}},

	OpI32Eqz: {name: "i32.eqz", params: []ValueType{I32}, results: []ValueType{I32}},
	OpI32Eq:  {name: "i32.eq", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32Ne:  {name: "i32.ne", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32LtS: {name: "i32.lt_s", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32LtU: {name: "i32.lt_u", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32GtS: {name: "i32.gt_s", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32GtU: {name: "i32.gt_u", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32LeS: {name: "i32.le_s", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32LeU: {name: "i32.le_u", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32GeS: {name: "i32.ge_s", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32GeU: {name: "i32.ge_u", params: []ValueType{I32, I32}, results: []ValueType{I32}},

	OpI64Eqz: {name: "i64.eqz", params: []ValueType{I64}, results: []ValueType{I32}},
	OpI64Eq:  {name: "i64.eq", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64Ne:  {name: "i64.ne", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64LtS: {name: "i64.lt_s", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64LtU: {name: "i64.lt_u", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64GtS: {name: "i64.gt_s", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64GtU: {name: "i64.gt_u", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64LeS: {name: "i64.le_s", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64LeU: {name: "i64.le_u", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64GeS: {name: "i64.ge_s", params: []ValueType{I64, I64}, results: []ValueType{I32}},
	OpI64GeU: {name: "i64.ge_u", params: []ValueType{I64, I64}, results: []ValueType{I32}},

	OpF32Eq: {name: "f32.eq", params: []ValueType{F32, F32}, results: []ValueType{I32}},
	OpF32Ne: {name: "f32.ne", params: []ValueType{F32, F32}, results: []ValueType{I32}},
	OpF32Lt: {name: "f32.lt", params: []ValueType{F32, F32}, results: []ValueType{I32}},
	OpF32Gt: {name: "f32.gt", params: []ValueType{F32, F32}, results: []ValueType{I32}},
	OpF32Le: {name: "f32.le", params: []ValueType{F32, F32}, results: []ValueType{I32}},
	OpF32Ge: {name: "f32.ge", params: []ValueType{F32, F32}, results: []ValueType{I32}},

	OpF64Eq: {name: "f64.eq", params: []ValueType{F64, F64}, results: []ValueType{I32}},
	OpF64Ne: {name: "f64.ne", params: []ValueType{F64, F64}, results: []ValueType{I32}},
	OpF64Lt: {name: "f64.lt", params: []ValueType{F64, F64}, results: []ValueType{I32}},
	OpF64Gt: {name: "f64.gt", params: []ValueType{F64, F64}, results: []ValueType{I32}},
	OpF64Le: {name: "f64.le", params: []ValueType{F64, F64}, results: []ValueType{I32}},
	OpF64Ge: {name: "f64.ge", params: []ValueType{F64, F64}, results: []ValueType{I32}},

	OpI32Clz:    {name: "i32.clz", params: []ValueType{I32}, results: []ValueType{I32}},
	OpI32Ctz:    {name: "i32.ctz", params: []ValueType{I32}, results: []ValueType{I32}},
	OpI32Popcnt: {name: "i32.popcnt", params: []ValueType{I32}, results: []ValueType{I32}},
	OpI32Add:    {name: "i32.add", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32Sub:    {name: "i32.sub", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32Mul:    {name: "i32.mul", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32DivS:   {name: "i32.div_s", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32DivU:   {name: "i32.div_u", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32RemS:   {name: "i32.rem_s", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32RemU:   {name: "i32.rem_u", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32And:    {name: "i32.and", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32Or:     {name: "i32.or", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32Xor:    {name: "i32.xor", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32Shl:    {name: "i32.shl", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32ShrS:   {name: "i32.shr_s", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32ShrU:   {name: "i32.shr_u", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32Rotl:   {name: "i32.rotl", params: []ValueType{I32, I32}, results: []ValueType{I32}},
	OpI32Rotr:   {name: "i32.rotr", params: []ValueType{I32, I32}, results: []ValueType{I32}},

	OpI64Clz:    {name: "i64.clz", params: []ValueType{I64}, results: []ValueType{I64}},
	OpI64Ctz:    {name: "i64.ctz", params: []ValueType{I64}, results: []ValueType{I64}},
	OpI64Popcnt: {name: "i64.popcnt", params: []ValueType{I64}, results: []ValueType{I64}},
	OpI64Add:    {name: "i64.add", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64Sub:    {name: "i64.sub", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64Mul:    {name: "i64.mul", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64DivS:   {name: "i64.div_s", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64DivU:   {name: "i64.div_u", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64RemS:   {name: "i64.rem_s", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64RemU:   {name: "i64.rem_u", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64And:    {name: "i64.and", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64Or:     {name: "i64.or", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64Xor:    {name: "i64.xor", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64Shl:    {name: "i64.shl", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64ShrS:   {name: "i64.shr_s", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64ShrU:   {name: "i64.shr_u", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64Rotl:   {name: "i64.rotl", params: []ValueType{I64, I64}, results: []ValueType{I64}},
	OpI64Rotr:   {name: "i64.rotr", params: []ValueType{I64, I64}, results: []ValueType{I64}},

	OpF32Abs:      {name: "f32.abs", params: []ValueType{F32}, results: []ValueType{F32}},
	OpF32Neg:      {name: "f32.neg", params: []ValueType{F32}, results: []ValueType{F32}},
	OpF32Ceil:     {name: "f32.ceil", params: []ValueType{F32}, results: []ValueType{F32}},
	OpF32Floor:    {name: "f32.floor", params: []ValueType{F32}, results: []ValueType{F32}},
	OpF32Trunc:    {name: "f32.trunc", params: []ValueType{F32}, results: []ValueType{F32}},
	OpF32Nearest:  {name: "f32.nearest", params: []ValueType{F32}, results: []ValueType{F32}},
	OpF32Sqrt:     {name: "f32.sqrt", params: []ValueType{F32}, results: []ValueType{F32}},
	OpF32Add:      {name: "f32.add", params: []ValueType{F32, F32}, results: []ValueType{F32}},
	OpF32Sub:      {name: "f32.sub", params: []ValueType{F32, F32}, results: []ValueType{F32}},
	OpF32Mul:      {name: "f32.mul", params: []ValueType{F32, F32}, results: []ValueType{F32}},
	OpF32Div:      {name: "f32.div", params: []ValueType{F32, F32}, results: []ValueType{F32}},
	OpF32Min:      {name: "f32.min", params: []ValueType{F32, F32}, results: []ValueType{F32}},
	OpF32Max:      {name: "f32.max", params: []ValueType{F32, F32}, results: []ValueType{F32}},
	OpF32Copysign: {name: "f32.copysign", params: []ValueType{F32, F32}, results: []ValueType{F32}},

	OpF64Abs:      {name: "f64.abs", params: []ValueType{F64}, results: []ValueType{F64}},
	OpF64Neg:      {name: "f64.neg", params: []ValueType{F64}, results: []ValueType{F64}},
	OpF64Ceil:     {name: "f64.ceil", params: []ValueType{F64}, results: []ValueType{F64}},
	OpF64Floor:    {name: "f64.floor", params: []ValueType{F64}, results: []ValueType{F64}},
	OpF64Trunc:    {name: "f64.trunc", params: []ValueType{F64}, results: []ValueType{F64}},
	OpF64Nearest:  {name: "f64.nearest", params: []ValueType{F64}, results: []ValueType{F64}},
	OpF64Sqrt:     {name: "f64.sqrt", params: []ValueType{F64}, results: []ValueType{F64}},
	OpF64Add:      {name: "f64.add", params: []ValueType{F64, F64}, results: []ValueType{F64}},
	OpF64Sub:      {name: "f64.sub", params: []ValueType{F64, F64}, results: []ValueType{F64}},
	OpF64Mul:      {name: "f64.mul", params: []ValueType{F64, F64}, results: []ValueType{F64}},
	OpF64Div:      {name: "f64.div", params: []ValueType{F64, F64}, results: []ValueType{F64}},
	OpF64Min:      {name: "f64.min", params: []ValueType{F64, F64}, results: []ValueType{F64}},
	OpF64Max:      {name: "f64.max", params: []ValueType{F64, F64}, results: []ValueType{F64}},
	OpF64Copysign: {name: "f64.copysign", params: []ValueType{F64, F64}, results: []ValueType{F64}},

	OpI32WrapI64:        {name: "i32.wrap_i64", params: []ValueType{I64}, results: []ValueType{I32}},
	OpI32TruncF32S:      {name: "i32.trunc_f32_s", params: []ValueType{F32}, results: []ValueType{I32}},
	OpI32TruncF32U:      {name: "i32.trunc_f32_u", params: []ValueType{F32}, results: []ValueType{I32}},
	OpI32TruncF64S:      {name: "i32.trunc_f64_s", params: []ValueType{F64}, results: []ValueType{I32}},
	OpI32TruncF64U:      {name: "i32.trunc_f64_u", params: []ValueType{F64}, results: []ValueType{I32}},
	OpI64ExtendI32S:     {name: "i64.extend_i32_s", params: []ValueType{I32}, results: []ValueType{I64}},
	OpI64ExtendI32U:     {name: "i64.extend_i32_u", params: []ValueType{I32}, results: []ValueType{I64}},
	OpI64TruncF32S:      {name: "i64.trunc_f32_s", params: []ValueType{F32}, results: []ValueType{I64}},
	OpI64TruncF32U:      {name: "i64.trunc_f32_u", params: []ValueType{F32}, results: []ValueType{I64}},
	OpI64TruncF64S:      {name: "i64.trunc_f64_s", params: []ValueType{F64}, results: []ValueType{I64}},
	OpI64TruncF64U:      {name: "i64.trunc_f64_u", params: []ValueType{F64}, results: []ValueType{I64}},
	OpF32ConvertI32S:    {name: "f32.convert_i32_s", params: []ValueType{I32}, results: []ValueType{F32}},
	OpF32ConvertI32U:    {name: "f32.convert_i32_u", params: []ValueType{I32}, results: []ValueType{F32}},
	OpF32ConvertI64S:    {name: "f32.convert_i64_s", params: []ValueType{I64}, results: []ValueType{F32}},
	OpF32ConvertI64U:    {name: "f32.convert_i64_u", params: []ValueType{I64}, results: []ValueType{F32}},
	OpF32DemoteF64:      {name: "f32.demote_f64", params: []ValueType{F64}, results: []ValueType{F32}},
	OpF64ConvertI32S:    {name: "f64.convert_i32_s", params: []ValueType{I32}, results: []ValueType{F64}},
	OpF64ConvertI32U:    {name: "f64.convert_i32_u", params: []ValueType{I32}, results: []ValueType{F64}},
	OpF64ConvertI64S:    {name: "f64.convert_i64_s", params: []ValueType{I64}, results: []ValueType{F64}},
	OpF64ConvertI64U:    {name: "f64.convert_i64_u", params: []ValueType{I64}, results: []ValueType{F64}},
	OpF64PromoteF32:     {name: "f64.promote_f32", params: []ValueType{F32}, results: []ValueType{F64}},
	OpI32ReinterpretF32: {name: "i32.reinterpret_f32", params: []ValueType{F32}, results: []ValueType{I32}},
	OpI64ReinterpretF64: {name: "i64.reinterpret_f64", params: []ValueType{F64}, results: []ValueType{I64}},
	OpF32ReinterpretI32: {name: "f32.reinterpret_i32", params: []ValueType{I32}, results: []ValueType{F32}},
	OpF64ReinterpretI64: {name: "f64.reinterpret_i64", params: []ValueType{I64}, results: []ValueType{F64}},

	OpI32Extend8S:  {name: "i32.extend8_s", params: []ValueType{I32}, results: []ValueType{I32}},
	OpI32Extend16S: {name: "i32.extend16_s", params: []ValueType{I32}, results: []ValueType{I32}},
	OpI64Extend8S:  {name: "i64.extend8_s", params: []ValueType{I64}, results: []ValueType{I64}},
	OpI64Extend16S: {name: "i64.extend16_s", params: []ValueType{I64}, results: []ValueType{I64}},
	OpI64Extend32S: {name: "i64.extend32_s", params: []ValueType{I64}, results: []ValueType{I64}},

	OpRefNull:   {name: "ref.null", imm: ImmRefType},
	OpRefIsNull: {name: "ref.is_null"},
	OpRefFunc:   {name: "ref.func", imm: ImmFunc},

	OpI32TruncSatF32S: {name: "i32.trunc_sat_f32_s", params: []ValueType{F32}, results: []ValueType{I32}},
	OpI32TruncSatF32U: {name: "i32.trunc_sat_f32_u", params: []ValueType{F32}, results: []ValueType{I32}},
	OpI32TruncSatF64S: {name: "i32.trunc_sat_f64_s", params: []ValueType{F64}, results: []ValueType{I32}},
	OpI32TruncSatF64U: {name: "i32.trunc_sat_f64_u", params: []ValueType{F64}, results: []ValueType{I32}},
	OpI64TruncSatF32S: {name: "i64.trunc_sat_f32_s", params: []ValueType{F32}, results: []ValueType{I64}},
	OpI64TruncSatF32U: {name: "i64.trunc_sat_f32_u", params: []ValueType{F32}, results: []ValueType{I64}},
	OpI64TruncSatF64S: {name: "i64.trunc_sat_f64_s", params: []ValueType{F64}, results: []ValueType{I64}},
	OpI64TruncSatF64U: {name: "i64.trunc_sat_f64_u", params: []ValueType{F64}, results: []ValueType{I64}},

	OpMemoryCopy: {name: "memory.copy", imm: ImmTwoMem, params: []ValueType{I32, I32, I32}},
	OpMemoryFill: {name: "memory.fill", imm: ImmOneMem, params: []ValueType{I32, I32, I32}},
}

// Known reports whether op is an opcode this implementation supports.
func (op Opcode) Known() bool {
	_, ok := opTable[op]
	return ok
}

// Imm returns the immediate kind of op.
func (op Opcode) Imm() ImmKind { return opTable[op].imm }

// Sig returns the static stack signature of a "simple" instruction, or
// (nil, nil, false) for context-dependent instructions such as control
// flow, locals, globals and calls.
func (op Opcode) Sig() (params, results []ValueType, ok bool) {
	info, found := opTable[op]
	if !found || (info.params == nil && info.results == nil) {
		return nil, nil, false
	}
	// Control/parametric opcodes without a static signature are the
	// ones with nil params and nil results; everything else in the
	// table is simple.
	switch op {
	case OpUnreachable, OpNop, OpBlock, OpLoop, OpIf, OpElse, OpEnd, OpBr,
		OpBrIf, OpBrTable, OpReturn, OpCall, OpCallIndirect, OpDrop,
		OpSelect, OpSelectT, OpLocalGet, OpLocalSet, OpLocalTee,
		OpGlobalGet, OpGlobalSet, OpRefNull, OpRefIsNull, OpRefFunc:
		return nil, nil, false
	}
	return info.params, info.results, true
}

func (op Opcode) String() string {
	if info, ok := opTable[op]; ok {
		return info.name
	}
	return fmt.Sprintf("opcode(0x%x)", uint16(op))
}

// IsPure reports whether the instruction has no side effects and cannot
// trap, so a compiler that tracks constants may evaluate it at compile
// time (the paper's constant-folding optimization, feature "KF").
func (op Opcode) IsPure() bool {
	switch op {
	case OpI32DivS, OpI32DivU, OpI32RemS, OpI32RemU,
		OpI64DivS, OpI64DivU, OpI64RemS, OpI64RemU,
		OpI32TruncF32S, OpI32TruncF32U, OpI32TruncF64S, OpI32TruncF64U,
		OpI64TruncF32S, OpI64TruncF32U, OpI64TruncF64S, OpI64TruncF64U:
		// These can trap; folding them would need trap-at-compile
		// semantics, which single-pass compilers do not attempt.
		return false
	}
	_, _, simple := op.Sig()
	return simple
}
