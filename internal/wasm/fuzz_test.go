package wasm_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wizgo/internal/wasm"
	"wizgo/internal/workloads"
)

// seedModules feeds the fuzzer every checked-in module plus the
// benchmark-suite modules, so coverage starts from real inputs rather
// than random bytes.
func seedModules(f *testing.F) {
	paths, _ := filepath.Glob("../../modules/*/*.wasm")
	if more, _ := filepath.Glob("../../modules/*.wasm"); len(more) > 0 {
		paths = append(paths, more...)
	}
	for _, p := range paths {
		if bytes, err := os.ReadFile(p); err == nil {
			f.Add(bytes)
		}
	}
	f.Add(workloads.Mnop())
}

// FuzzDecode: the decoder must reject or accept arbitrary bytes without
// panicking, and anything it accepts must re-encode without panicking.
func FuzzDecode(f *testing.F) {
	seedModules(f)
	f.Fuzz(func(t *testing.T, bytes []byte) {
		m, err := wasm.Decode(bytes)
		if err != nil {
			return
		}
		_ = wasm.Encode(m)
	})
}

// skeleton strips the fields Encode legitimately does not round-trip:
// byte offsets into the original encoding, the original size, and the
// custom name section.
func skeleton(m *wasm.Module) *wasm.Module {
	c := *m
	c.Size = 0
	c.Names = nil
	c.Funcs = append([]wasm.Func(nil), m.Funcs...)
	for i := range c.Funcs {
		c.Funcs[i].BodyOffset = 0
	}
	return &c
}

// FuzzRoundTrip: decode → encode → decode reproduces an identical
// module skeleton, so the minimizer's decode/mutate/encode pipeline and
// the persistent code cache can trust Encode as a faithful inverse.
func FuzzRoundTrip(f *testing.F) {
	seedModules(f)
	f.Fuzz(func(t *testing.T, bytes []byte) {
		m1, err := wasm.Decode(bytes)
		if err != nil {
			return
		}
		enc := wasm.Encode(m1)
		m2, err := wasm.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded module failed: %v", err)
		}
		if !reflect.DeepEqual(skeleton(m1), skeleton(m2)) {
			t.Fatalf("round-trip skeleton mismatch:\nfirst:  %+v\nsecond: %+v", skeleton(m1), skeleton(m2))
		}
	})
}
