package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decoding errors shared by the LEB reader and the module decoder.
var (
	ErrUnexpectedEOF = errors.New("wasm: unexpected end of section or function")
	ErrLEBTooLong    = errors.New("wasm: integer representation too long")
)

// Reader is a cursor over a byte slice with LEB128 primitives. It is used
// by the binary decoder, the validator, and anything that walks raw
// bytecode (the in-place interpreter decodes immediates with the same
// routines via the precomputed forms below).
type Reader struct {
	Bytes []byte
	Pos   int
}

// NewReader returns a Reader positioned at the start of b.
func NewReader(b []byte) *Reader { return &Reader{Bytes: b} }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.Bytes) - r.Pos }

// Byte reads one byte.
func (r *Reader) Byte() (byte, error) {
	if r.Pos >= len(r.Bytes) {
		return 0, ErrUnexpectedEOF
	}
	b := r.Bytes[r.Pos]
	r.Pos++
	return b, nil
}

// Take reads n bytes as a subslice of the underlying buffer.
func (r *Reader) Take(n int) ([]byte, error) {
	if n < 0 || r.Pos+n > len(r.Bytes) {
		return nil, ErrUnexpectedEOF
	}
	b := r.Bytes[r.Pos : r.Pos+n]
	r.Pos += n
	return b, nil
}

// U32 reads an unsigned LEB128 32-bit integer.
func (r *Reader) U32() (uint32, error) {
	var result uint32
	var shift uint
	for i := 0; i < 5; i++ {
		b, err := r.Byte()
		if err != nil {
			return 0, err
		}
		if i == 4 && b > 0x0F {
			return 0, ErrLEBTooLong
		}
		result |= uint32(b&0x7F) << shift
		if b&0x80 == 0 {
			return result, nil
		}
		shift += 7
	}
	return 0, ErrLEBTooLong
}

// U64 reads an unsigned LEB128 64-bit integer.
func (r *Reader) U64() (uint64, error) {
	var result uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := r.Byte()
		if err != nil {
			return 0, err
		}
		if i == 9 && b > 0x01 {
			return 0, ErrLEBTooLong
		}
		result |= uint64(b&0x7F) << shift
		if b&0x80 == 0 {
			return result, nil
		}
		shift += 7
	}
	return 0, ErrLEBTooLong
}

// S32 reads a signed LEB128 32-bit integer.
func (r *Reader) S32() (int32, error) {
	v, err := r.sleb(32)
	return int32(v), err
}

// S64 reads a signed LEB128 64-bit integer.
func (r *Reader) S64() (int64, error) {
	return r.sleb(64)
}

// S33 reads the signed 33-bit integer used by block types.
func (r *Reader) S33() (int64, error) {
	return r.sleb(33)
}

func (r *Reader) sleb(bits uint) (int64, error) {
	var result int64
	var shift uint
	maxBytes := int(bits+6) / 7
	for i := 0; i < maxBytes; i++ {
		b, err := r.Byte()
		if err != nil {
			return 0, err
		}
		result |= int64(b&0x7F) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				result |= -1 << shift
			}
			return result, nil
		}
	}
	return 0, ErrLEBTooLong
}

// F32 reads a little-endian 32-bit float's bits.
func (r *Reader) F32() (uint32, error) {
	b, err := r.Take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// F64 reads a little-endian 64-bit float's bits.
func (r *Reader) F64() (uint64, error) {
	b, err := r.Take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Name reads a length-prefixed UTF-8 name.
func (r *Reader) Name() (string, error) {
	n, err := r.U32()
	if err != nil {
		return "", err
	}
	b, err := r.Take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// AppendU32 appends v as unsigned LEB128.
func AppendU32(dst []byte, v uint32) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if v == 0 {
			return dst
		}
	}
}

// AppendU64 appends v as unsigned LEB128.
func AppendU64(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if v == 0 {
			return dst
		}
	}
}

// AppendS32 appends v as signed LEB128.
func AppendS32(dst []byte, v int32) []byte { return AppendS64(dst, int64(v)) }

// AppendS64 appends v as signed LEB128.
func AppendS64(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		done := (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0)
		if !done {
			b |= 0x80
		}
		dst = append(dst, b)
		if done {
			return dst
		}
	}
}

// AppendF32 appends 4 little-endian bytes.
func AppendF32(dst []byte, bits uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, bits)
}

// AppendF64 appends 8 little-endian bytes.
func AppendF64(dst []byte, bits uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, bits)
}

// SkipImm advances r past the immediates of op. It is used by code that
// scans bytecode without interpreting it (probe insertion, disassembly
// alignment, the m0 "early return" rewriter in the harness).
func (r *Reader) SkipImm(op Opcode) error {
	switch op.Imm() {
	case ImmNone:
		return nil
	case ImmBlockType:
		_, err := r.S33()
		return err
	case ImmLabel, ImmFunc, ImmLocal, ImmGlobal:
		_, err := r.U32()
		return err
	case ImmCallInd:
		if _, err := r.U32(); err != nil {
			return err
		}
		_, err := r.U32()
		return err
	case ImmBrTable:
		n, err := r.U32()
		if err != nil {
			return err
		}
		for i := uint32(0); i <= n; i++ {
			if _, err := r.U32(); err != nil {
				return err
			}
		}
		return nil
	case ImmMem:
		if _, err := r.U32(); err != nil {
			return err
		}
		_, err := r.U32()
		return err
	case ImmMemOnly, ImmOneMem:
		_, err := r.Byte()
		return err
	case ImmTwoMem:
		if _, err := r.Byte(); err != nil {
			return err
		}
		_, err := r.Byte()
		return err
	case ImmI32:
		_, err := r.S32()
		return err
	case ImmI64:
		_, err := r.S64()
		return err
	case ImmF32:
		_, err := r.F32()
		return err
	case ImmF64:
		_, err := r.F64()
		return err
	case ImmRefType:
		_, err := r.Byte()
		return err
	case ImmSelectT:
		n, err := r.U32()
		if err != nil {
			return err
		}
		_, err = r.Take(int(n))
		return err
	}
	return fmt.Errorf("wasm: unknown immediate kind for %v", op)
}

// ReadOpcode reads the next opcode, folding 0xFC prefixes into the
// extended Opcode space.
func (r *Reader) ReadOpcode() (Opcode, error) {
	b, err := r.Byte()
	if err != nil {
		return 0, err
	}
	if b != PrefixFC {
		return Opcode(b), nil
	}
	sub, err := r.U32()
	if err != nil {
		return 0, err
	}
	return opFCBase + Opcode(sub), nil
}

// AppendOpcode appends the binary encoding of op.
func AppendOpcode(dst []byte, op Opcode) []byte {
	if op < 0x100 {
		return append(dst, byte(op))
	}
	dst = append(dst, PrefixFC)
	return AppendU32(dst, uint32(op-opFCBase))
}
