package wasm

import "fmt"

// FuncType is a function signature.
type FuncType struct {
	Params  []ValueType
	Results []ValueType
}

// Equal reports signature equality (used by call_indirect checks).
func (t FuncType) Equal(o FuncType) bool {
	if len(t.Params) != len(o.Params) || len(t.Results) != len(o.Results) {
		return false
	}
	for i, p := range t.Params {
		if o.Params[i] != p {
			return false
		}
	}
	for i, r := range t.Results {
		if o.Results[i] != r {
			return false
		}
	}
	return true
}

func (t FuncType) String() string {
	s := "("
	for i, p := range t.Params {
		if i > 0 {
			s += " "
		}
		s += p.String()
	}
	s += ") -> ("
	for i, r := range t.Results {
		if i > 0 {
			s += " "
		}
		s += r.String()
	}
	return s + ")"
}

// Limits bound a memory or table size, in pages or elements.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// ImportKind discriminates import/export descriptors. It doubles as the
// extern kind of the embedding API: the four kinds of external values a
// module can import or export (functions, tables, memories, globals).
type ImportKind byte

const (
	ImportFunc ImportKind = iota
	ImportTable
	ImportMemory
	ImportGlobal
)

// ExternKind is the embedding-API name for ImportKind: linkers resolve
// imports to external values of these kinds.
type ExternKind = ImportKind

// Extern kind aliases for embedding-API readability.
const (
	ExternFunc   = ImportFunc
	ExternTable  = ImportTable
	ExternMemory = ImportMemory
	ExternGlobal = ImportGlobal
)

func (k ImportKind) String() string {
	switch k {
	case ImportFunc:
		return "function"
	case ImportTable:
		return "table"
	case ImportMemory:
		return "memory"
	case ImportGlobal:
		return "global"
	}
	return fmt.Sprintf("externkind(%d)", byte(k))
}

// Import is a module import.
type Import struct {
	Module string
	Name   string
	Kind   ImportKind
	// Type index for ImportFunc.
	TypeIdx uint32
	// Limits for ImportTable / ImportMemory.
	Lim Limits
	// Global descriptor for ImportGlobal.
	GlobalType ValueType
	Mutable    bool
}

// Global is a module-defined global variable with a constant initializer.
type Global struct {
	Type    ValueType
	Mutable bool
	// Init is the evaluated constant initializer (constant expressions
	// in this subset are a single const/ref.null/ref.func instruction).
	Init Value
}

// Table holds funcref elements for call_indirect.
type Table struct {
	Lim Limits
}

// Elem is an active element segment initializing a table.
type Elem struct {
	TableIdx uint32
	Offset   uint32
	Funcs    []uint32
}

// Data is an active data segment initializing memory.
type Data struct {
	MemIdx uint32
	Offset uint32
	Bytes  []byte
}

// Export names a module item.
type Export struct {
	Name string
	Kind ImportKind
	Idx  uint32
}

// Func is a module-defined function body.
type Func struct {
	TypeIdx uint32
	// Locals are the declared (non-parameter) locals, expanded.
	Locals []ValueType
	// Body is the raw bytecode of the function body including the
	// trailing end opcode. Offsets into Body are the bytecode offsets
	// ("pc") used by the interpreter, the sidetable, probes, and the
	// pc tables of compiled code.
	Body []byte
	// BodyOffset is the offset of Body[0] within the original module
	// bytes, for diagnostics.
	BodyOffset int
}

// Module is a decoded WebAssembly module.
type Module struct {
	Types   []FuncType
	Imports []Import
	// Funcs holds the module-defined functions; function index space is
	// [imported funcs..., module funcs...].
	Funcs    []Func
	Tables   []Table
	Memories []Limits
	Globals  []Global
	Exports  []Export
	Elems    []Elem
	Datas    []Data
	Start    uint32
	HasStart bool
	// Names from the custom name section, if present (func index → name).
	Names map[uint32]string
	// Size is the byte length of the original encoded module, used to
	// normalize compile time per input byte.
	Size int
}

// NumImportedFuncs returns how many functions are imported; they occupy
// the low function indices.
func (m *Module) NumImportedFuncs() int { return m.numImported(ImportFunc) }

// FuncTypeAt returns the signature of function index idx spanning both
// imported and module-defined functions.
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	imported := 0
	for _, imp := range m.Imports {
		if imp.Kind != ImportFunc {
			continue
		}
		if uint32(imported) == idx {
			if int(imp.TypeIdx) >= len(m.Types) {
				return FuncType{}, fmt.Errorf("wasm: import type index %d out of range", imp.TypeIdx)
			}
			return m.Types[imp.TypeIdx], nil
		}
		imported++
	}
	local := int(idx) - imported
	if local < 0 || local >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", idx)
	}
	ti := m.Funcs[local].TypeIdx
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: type index %d out of range", ti)
	}
	return m.Types[ti], nil
}

// GlobalTypeAt returns the type and mutability of global index idx,
// spanning imported and module-defined globals.
func (m *Module) GlobalTypeAt(idx uint32) (ValueType, bool, error) {
	imported := 0
	for _, imp := range m.Imports {
		if imp.Kind != ImportGlobal {
			continue
		}
		if uint32(imported) == idx {
			return imp.GlobalType, imp.Mutable, nil
		}
		imported++
	}
	local := int(idx) - imported
	if local < 0 || local >= len(m.Globals) {
		return 0, false, fmt.Errorf("wasm: global index %d out of range", idx)
	}
	g := m.Globals[local]
	return g.Type, g.Mutable, nil
}

// NumGlobals returns the total number of globals (imported + defined).
func (m *Module) NumGlobals() int {
	return m.NumImportedGlobals() + len(m.Globals)
}

// NumFuncs returns the total number of functions (imported + defined).
func (m *Module) NumFuncs() int {
	return m.NumImportedFuncs() + len(m.Funcs)
}

// numImported counts imports of one kind; they occupy the low indices of
// the corresponding index space.
func (m *Module) numImported(kind ImportKind) int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == kind {
			n++
		}
	}
	return n
}

// NumImportedGlobals returns how many globals are imported.
func (m *Module) NumImportedGlobals() int { return m.numImported(ImportGlobal) }

// NumImportedTables returns how many tables are imported.
func (m *Module) NumImportedTables() int { return m.numImported(ImportTable) }

// NumImportedMemories returns how many memories are imported.
func (m *Module) NumImportedMemories() int { return m.numImported(ImportMemory) }

// MemoryMinPages returns the declared minimum page count of the
// module's memory (imported or defined), or 0 when the module has no
// memory. Linking enforces the minimum on imported memories and
// memory.grow never shrinks, so any address below MemoryMinPages()*
// PageSize is in bounds for the module's whole lifetime — the
// invariant the static analysis's in-bounds facts rest on.
func (m *Module) MemoryMinPages() uint32 {
	for _, imp := range m.Imports {
		if imp.Kind == ImportMemory {
			return imp.Lim.Min
		}
	}
	if len(m.Memories) > 0 {
		return m.Memories[0].Min
	}
	return 0
}

// NumMemories returns the total number of memories (imported + defined).
// The MVP subset allows at most one.
func (m *Module) NumMemories() int {
	return m.NumImportedMemories() + len(m.Memories)
}

// NumTables returns the total number of tables (imported + defined).
func (m *Module) NumTables() int {
	return m.NumImportedTables() + len(m.Tables)
}

// ExportedFunc looks up an exported function index by name.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ImportFunc && e.Name == name {
			return e.Idx, true
		}
	}
	return 0, false
}

// FuncName returns a printable name for function idx.
func (m *Module) FuncName(idx uint32) string {
	if n, ok := m.Names[idx]; ok {
		return n
	}
	for _, e := range m.Exports {
		if e.Kind == ImportFunc && e.Idx == idx {
			return e.Name
		}
	}
	return fmt.Sprintf("func%d", idx)
}

// LocalFunc returns the module-defined function with overall index idx.
func (m *Module) LocalFunc(idx uint32) (*Func, bool) {
	local := int(idx) - m.NumImportedFuncs()
	if local < 0 || local >= len(m.Funcs) {
		return nil, false
	}
	return &m.Funcs[local], true
}

// PageSize is the Wasm linear memory page size.
const PageSize = 65536

// MaxPages caps memory at 4 GiB as in the spec; engines in this repo
// clamp further to keep benchmarks laptop-sized.
const MaxPages = 65536
