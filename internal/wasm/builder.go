package wasm

import (
	"fmt"
	"math"
)

// Builder constructs a Module programmatically. The workload generators
// use it to synthesize the benchmark suites; tests use it to build
// focused snippets. All imports must be declared before the first
// defined function so that function indices are stable.
type Builder struct {
	m          Module
	funcsFixed bool
	// Like funcsFixed: once a table/global/memory is defined, importing
	// one of the same kind would shift the already-returned indices, so
	// the Import* helpers panic instead of handing out stale indices.
	tablesFixed   bool
	globalsFixed  bool
	memoriesFixed bool
	names         map[uint32]string
	fbs           []*FuncBuilder
}

// NewBuilder returns an empty module builder.
func NewBuilder() *Builder {
	return &Builder{names: make(map[uint32]string)}
}

// AddType interns a function type and returns its index.
func (b *Builder) AddType(ft FuncType) uint32 {
	for i, t := range b.m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	b.m.Types = append(b.m.Types, ft)
	return uint32(len(b.m.Types) - 1)
}

// ImportFunc declares a function import and returns its function index.
// It must be called before any NewFunc.
func (b *Builder) ImportFunc(module, name string, ft FuncType) uint32 {
	if b.funcsFixed {
		panic("wasm.Builder: imports must precede defined functions")
	}
	idx := uint32(b.m.NumImportedFuncs())
	b.m.Imports = append(b.m.Imports, Import{
		Module: module, Name: name, Kind: ImportFunc, TypeIdx: b.AddType(ft),
	})
	return idx
}

// ImportMemory declares a memory import with the given limits in pages.
// At most one memory (imported or defined) is supported; it must
// precede AddMemory.
func (b *Builder) ImportMemory(module, name string, minPages, maxPages uint32) {
	if b.memoriesFixed {
		panic("wasm.Builder: memory imports must precede defined memories")
	}
	b.m.Imports = append(b.m.Imports, Import{
		Module: module, Name: name, Kind: ImportMemory,
		Lim: Limits{Min: minPages, Max: maxPages, HasMax: maxPages > 0},
	})
}

// ImportTable declares a funcref table import and returns its table
// index. It must precede any AddTable so that table indices stay stable.
func (b *Builder) ImportTable(module, name string, min uint32) uint32 {
	if b.tablesFixed {
		panic("wasm.Builder: table imports must precede defined tables")
	}
	idx := uint32(b.m.NumImportedTables())
	b.m.Imports = append(b.m.Imports, Import{
		Module: module, Name: name, Kind: ImportTable,
		Lim: Limits{Min: min},
	})
	return idx
}

// ImportGlobal declares a global import and returns its global index. It
// must precede any AddGlobal so that global indices stay stable.
func (b *Builder) ImportGlobal(module, name string, t ValueType, mutable bool) uint32 {
	if b.globalsFixed {
		panic("wasm.Builder: global imports must precede defined globals")
	}
	idx := uint32(b.m.NumImportedGlobals())
	b.m.Imports = append(b.m.Imports, Import{
		Module: module, Name: name, Kind: ImportGlobal,
		GlobalType: t, Mutable: mutable,
	})
	return idx
}

// AddMemory declares the module memory in pages. At most one memory
// (imported or defined) is supported.
func (b *Builder) AddMemory(minPages, maxPages uint32) {
	if b.m.NumImportedMemories() > 0 {
		panic("wasm.Builder: module already imports a memory")
	}
	b.memoriesFixed = true
	b.m.Memories = append(b.m.Memories, Limits{Min: minPages, Max: maxPages, HasMax: maxPages > 0})
}

// AddGlobal declares a global and returns its index (imported globals
// occupy the low indices).
func (b *Builder) AddGlobal(t ValueType, mutable bool, init Value) uint32 {
	b.globalsFixed = true
	idx := uint32(b.m.NumGlobals())
	b.m.Globals = append(b.m.Globals, Global{Type: t, Mutable: mutable, Init: init})
	return idx
}

// AddTable declares a funcref table and returns its index (imported
// tables occupy the low indices).
func (b *Builder) AddTable(min uint32) uint32 {
	b.tablesFixed = true
	b.m.Tables = append(b.m.Tables, Table{Lim: Limits{Min: min, Max: min, HasMax: true}})
	return uint32(b.m.NumTables() - 1)
}

// AddElem adds an active element segment for table 0. The binary subset
// only encodes flag-0 (table 0) segments, and the engine rejects
// segments targeting an imported table, so modules that import a table
// cannot also carry active element segments.
func (b *Builder) AddElem(offset uint32, funcs []uint32) {
	b.m.Elems = append(b.m.Elems, Elem{Offset: offset, Funcs: funcs})
}

// AddData adds an active data segment for memory 0.
func (b *Builder) AddData(offset uint32, bytes []byte) {
	b.m.Datas = append(b.m.Datas, Data{Offset: offset, Bytes: bytes})
}

// Export exports a function index under name.
func (b *Builder) Export(name string, funcIdx uint32) {
	b.m.Exports = append(b.m.Exports, Export{Name: name, Kind: ImportFunc, Idx: funcIdx})
}

// ExportMemory exports memory 0 under name.
func (b *Builder) ExportMemory(name string) {
	b.m.Exports = append(b.m.Exports, Export{Name: name, Kind: ImportMemory, Idx: 0})
}

// ExportGlobal exports global index idx under name.
func (b *Builder) ExportGlobal(name string, idx uint32) {
	b.m.Exports = append(b.m.Exports, Export{Name: name, Kind: ImportGlobal, Idx: idx})
}

// ExportTable exports table index idx under name.
func (b *Builder) ExportTable(name string, idx uint32) {
	b.m.Exports = append(b.m.Exports, Export{Name: name, Kind: ImportTable, Idx: idx})
}

// SetStart marks funcIdx as the module start function.
func (b *Builder) SetStart(funcIdx uint32) {
	b.m.Start, b.m.HasStart = funcIdx, true
}

// NewFunc starts a function definition and returns its builder. The
// returned FuncBuilder must be finished (all blocks ended) before the
// module is finalized.
func (b *Builder) NewFunc(name string, ft FuncType) *FuncBuilder {
	b.funcsFixed = true
	idx := uint32(b.m.NumImportedFuncs() + len(b.m.Funcs))
	b.m.Funcs = append(b.m.Funcs, Func{TypeIdx: b.AddType(ft)})
	if name != "" {
		b.names[idx] = name
	}
	fb := &FuncBuilder{
		mod:   b,
		slot:  len(b.m.Funcs) - 1,
		Idx:   idx,
		Type:  ft,
		depth: 1, // the implicit function block
	}
	b.fbs = append(b.fbs, fb)
	return fb
}

// Module finalizes and returns the built module. The builder must not be
// used afterwards.
func (b *Builder) Module() *Module {
	for _, fb := range b.fbs {
		fb.Finish()
	}
	if len(b.names) > 0 {
		b.m.Names = b.names
	}
	enc := Encode(&b.m)
	b.m.Size = len(enc)
	return &b.m
}

// Encode finalizes the module and returns its binary encoding.
func (b *Builder) Encode() []byte {
	return Encode(b.Module())
}

// BlockType describes the signature of a block/loop/if construct.
type BlockType struct {
	// kind: 0 empty, 1 single value, 2 type index
	kind    byte
	val     ValueType
	typeIdx uint32
}

// BlockEmpty is the empty block type [] -> [].
var BlockEmpty = BlockType{kind: 0}

// BlockVal is the block type [] -> [t].
func BlockVal(t ValueType) BlockType { return BlockType{kind: 1, val: t} }

// BlockFunc is a multi-value block typed by a function type index.
func BlockFunc(typeIdx uint32) BlockType { return BlockType{kind: 2, typeIdx: typeIdx} }

// FuncBuilder emits the body of one function.
type FuncBuilder struct {
	mod  *Builder
	slot int
	// Idx is the function's index in the module function index space.
	Idx    uint32
	Type   FuncType
	locals []ValueType
	code   []byte
	depth  int
	done   bool
}

// AddLocal declares a local of type t and returns its index (parameters
// occupy the low indices).
func (f *FuncBuilder) AddLocal(t ValueType) uint32 {
	f.locals = append(f.locals, t)
	return uint32(len(f.Type.Params) + len(f.locals) - 1)
}

// Raw appends raw bytes to the body; escape hatch for tests that need
// malformed code.
func (f *FuncBuilder) Raw(bytes ...byte) *FuncBuilder {
	f.code = append(f.code, bytes...)
	return f
}

// Op emits an instruction with no immediates.
func (f *FuncBuilder) Op(op Opcode) *FuncBuilder {
	switch op {
	case OpBlock, OpLoop, OpIf:
		panic(fmt.Sprintf("wasm.FuncBuilder: %v requires a block type; use Block/Loop/If", op))
	case OpEnd:
		f.depth--
	}
	f.code = AppendOpcode(f.code, op)
	return f
}

// I32Const emits i32.const v.
func (f *FuncBuilder) I32Const(v int32) *FuncBuilder {
	f.code = append(f.code, byte(OpI32Const))
	f.code = AppendS32(f.code, v)
	return f
}

// I64Const emits i64.const v.
func (f *FuncBuilder) I64Const(v int64) *FuncBuilder {
	f.code = append(f.code, byte(OpI64Const))
	f.code = AppendS64(f.code, v)
	return f
}

// F32Const emits f32.const v.
func (f *FuncBuilder) F32Const(v float32) *FuncBuilder {
	f.code = append(f.code, byte(OpF32Const))
	f.code = AppendF32(f.code, math.Float32bits(v))
	return f
}

// F64Const emits f64.const v.
func (f *FuncBuilder) F64Const(v float64) *FuncBuilder {
	f.code = append(f.code, byte(OpF64Const))
	f.code = AppendF64(f.code, math.Float64bits(v))
	return f
}

// LocalGet emits local.get idx.
func (f *FuncBuilder) LocalGet(idx uint32) *FuncBuilder { return f.idxOp(OpLocalGet, idx) }

// LocalSet emits local.set idx.
func (f *FuncBuilder) LocalSet(idx uint32) *FuncBuilder { return f.idxOp(OpLocalSet, idx) }

// LocalTee emits local.tee idx.
func (f *FuncBuilder) LocalTee(idx uint32) *FuncBuilder { return f.idxOp(OpLocalTee, idx) }

// GlobalGet emits global.get idx.
func (f *FuncBuilder) GlobalGet(idx uint32) *FuncBuilder { return f.idxOp(OpGlobalGet, idx) }

// GlobalSet emits global.set idx.
func (f *FuncBuilder) GlobalSet(idx uint32) *FuncBuilder { return f.idxOp(OpGlobalSet, idx) }

func (f *FuncBuilder) idxOp(op Opcode, idx uint32) *FuncBuilder {
	f.code = append(f.code, byte(op))
	f.code = AppendU32(f.code, idx)
	return f
}

func (f *FuncBuilder) blockType(bt BlockType) {
	switch bt.kind {
	case 0:
		f.code = append(f.code, 0x40)
	case 1:
		f.code = append(f.code, byte(bt.val))
	case 2:
		f.code = AppendS64(f.code, int64(bt.typeIdx))
	}
}

// Block opens a block construct.
func (f *FuncBuilder) Block(bt BlockType) *FuncBuilder {
	f.depth++
	f.code = append(f.code, byte(OpBlock))
	f.blockType(bt)
	return f
}

// Loop opens a loop construct.
func (f *FuncBuilder) Loop(bt BlockType) *FuncBuilder {
	f.depth++
	f.code = append(f.code, byte(OpLoop))
	f.blockType(bt)
	return f
}

// If opens an if construct.
func (f *FuncBuilder) If(bt BlockType) *FuncBuilder {
	f.depth++
	f.code = append(f.code, byte(OpIf))
	f.blockType(bt)
	return f
}

// Else emits the else of the innermost if.
func (f *FuncBuilder) Else() *FuncBuilder {
	f.code = append(f.code, byte(OpElse))
	return f
}

// End closes the innermost construct (or the function body).
func (f *FuncBuilder) End() *FuncBuilder { return f.Op(OpEnd) }

// SelectT emits a typed select with one explicit result type (the
// reference-types encoding: a one-element type vector).
func (f *FuncBuilder) SelectT(t ValueType) *FuncBuilder {
	f.code = append(f.code, byte(OpSelectT))
	f.code = AppendU32(f.code, 1)
	f.code = append(f.code, byte(t))
	return f
}

// Br emits br depth.
func (f *FuncBuilder) Br(depth uint32) *FuncBuilder { return f.idxOp(OpBr, depth) }

// BrIf emits br_if depth.
func (f *FuncBuilder) BrIf(depth uint32) *FuncBuilder { return f.idxOp(OpBrIf, depth) }

// BrTable emits br_table with the given targets and default.
func (f *FuncBuilder) BrTable(targets []uint32, def uint32) *FuncBuilder {
	f.code = append(f.code, byte(OpBrTable))
	f.code = AppendU32(f.code, uint32(len(targets)))
	for _, t := range targets {
		f.code = AppendU32(f.code, t)
	}
	f.code = AppendU32(f.code, def)
	return f
}

// Call emits call funcIdx.
func (f *FuncBuilder) Call(funcIdx uint32) *FuncBuilder { return f.idxOp(OpCall, funcIdx) }

// CallIndirect emits call_indirect typeIdx (table 0).
func (f *FuncBuilder) CallIndirect(typeIdx uint32) *FuncBuilder {
	return f.CallIndirectTable(typeIdx, 0)
}

// CallIndirectTable emits call_indirect typeIdx against tableIdx.
func (f *FuncBuilder) CallIndirectTable(typeIdx, tableIdx uint32) *FuncBuilder {
	f.code = append(f.code, byte(OpCallIndirect))
	f.code = AppendU32(f.code, typeIdx)
	f.code = AppendU32(f.code, tableIdx)
	return f
}

// Load emits a load instruction with natural alignment and the given
// static offset.
func (f *FuncBuilder) Load(op Opcode, offset uint32) *FuncBuilder {
	return f.memOp(op, offset)
}

// Store emits a store instruction with natural alignment and the given
// static offset.
func (f *FuncBuilder) Store(op Opcode, offset uint32) *FuncBuilder {
	return f.memOp(op, offset)
}

func naturalAlign(op Opcode) uint32 {
	switch op {
	case OpI32Load8S, OpI32Load8U, OpI64Load8S, OpI64Load8U, OpI32Store8, OpI64Store8:
		return 0
	case OpI32Load16S, OpI32Load16U, OpI64Load16S, OpI64Load16U, OpI32Store16, OpI64Store16:
		return 1
	case OpI32Load, OpF32Load, OpI32Store, OpF32Store, OpI64Load32S, OpI64Load32U, OpI64Store32:
		return 2
	default:
		return 3
	}
}

func (f *FuncBuilder) memOp(op Opcode, offset uint32) *FuncBuilder {
	if op.Imm() != ImmMem {
		panic(fmt.Sprintf("wasm.FuncBuilder: %v is not a memory instruction", op))
	}
	f.code = append(f.code, byte(op))
	f.code = AppendU32(f.code, naturalAlign(op))
	f.code = AppendU32(f.code, offset)
	return f
}

// MemorySize emits memory.size.
func (f *FuncBuilder) MemorySize() *FuncBuilder {
	f.code = append(f.code, byte(OpMemorySize), 0)
	return f
}

// MemoryGrow emits memory.grow.
func (f *FuncBuilder) MemoryGrow() *FuncBuilder {
	f.code = append(f.code, byte(OpMemoryGrow), 0)
	return f
}

// MemoryCopy emits memory.copy.
func (f *FuncBuilder) MemoryCopy() *FuncBuilder {
	f.code = AppendOpcode(f.code, OpMemoryCopy)
	f.code = append(f.code, 0, 0)
	return f
}

// MemoryFill emits memory.fill.
func (f *FuncBuilder) MemoryFill() *FuncBuilder {
	f.code = AppendOpcode(f.code, OpMemoryFill)
	f.code = append(f.code, 0)
	return f
}

// RefNull emits ref.null t.
func (f *FuncBuilder) RefNull(t ValueType) *FuncBuilder {
	f.code = append(f.code, byte(OpRefNull), byte(t))
	return f
}

// RefFunc emits ref.func funcIdx.
func (f *FuncBuilder) RefFunc(funcIdx uint32) *FuncBuilder { return f.idxOp(OpRefFunc, funcIdx) }

// Body returns the bytes emitted so far (without the locals prefix).
func (f *FuncBuilder) Body() []byte { return f.code }

// Depth returns the current block nesting depth, counting the implicit
// function block: 1 at function start, incremented by Block/Loop/If and
// decremented by End. Code generators (the differential-test module
// generator) use it to bound nesting and to balance blocks explicitly.
func (f *FuncBuilder) Depth() int { return f.depth }

// Finish seals the function body, appending the final end if the caller
// has not already balanced the implicit function block.
func (f *FuncBuilder) Finish() {
	if f.done {
		return
	}
	if f.depth > 0 {
		for i := 0; i < f.depth; i++ {
			f.code = append(f.code, byte(OpEnd))
		}
		f.depth = 0
	}
	f.done = true
	fn := &f.mod.m.Funcs[f.slot]
	fn.Locals = f.locals
	fn.Body = f.code
}
