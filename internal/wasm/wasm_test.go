package wasm

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestLEBU32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		enc := AppendU32(nil, v)
		r := NewReader(enc)
		got, err := r.U32()
		return err == nil && got == v && r.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLEBU64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := AppendU64(nil, v)
		r := NewReader(enc)
		got, err := r.U64()
		return err == nil && got == v && r.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLEBS32RoundTrip(t *testing.T) {
	f := func(v int32) bool {
		enc := AppendS32(nil, v)
		r := NewReader(enc)
		got, err := r.S32()
		return err == nil && got == v && r.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []int32{0, -1, 1, 63, 64, -64, -65, math.MaxInt32, math.MinInt32} {
		enc := AppendS32(nil, v)
		r := NewReader(enc)
		got, err := r.S32()
		if err != nil || got != v {
			t.Errorf("S32 round trip of %d: got %d, err %v", v, got, err)
		}
	}
}

func TestLEBS64RoundTrip(t *testing.T) {
	f := func(v int64) bool {
		enc := AppendS64(nil, v)
		r := NewReader(enc)
		got, err := r.S64()
		return err == nil && got == v && r.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLEBTooLong(t *testing.T) {
	r := NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	if _, err := r.U32(); err == nil {
		t.Error("expected error for over-long u32 LEB")
	}
}

func TestLEBTruncated(t *testing.T) {
	r := NewReader([]byte{0x80})
	if _, err := r.U32(); err == nil {
		t.Error("expected error for truncated LEB")
	}
}

func TestValueBoxing(t *testing.T) {
	if UnboxI32(BoxI32(-42)) != -42 {
		t.Error("i32 box round trip failed")
	}
	if UnboxI64(BoxI64(-1<<62)) != -1<<62 {
		t.Error("i64 box round trip failed")
	}
	if UnboxF32(BoxF32(3.25)) != 3.25 {
		t.Error("f32 box round trip failed")
	}
	if UnboxF64(BoxF64(-1e300)) != -1e300 {
		t.Error("f64 box round trip failed")
	}
	nan := UnboxF64(BoxF64(math.NaN()))
	if nan == nan {
		t.Error("NaN should survive boxing")
	}
}

func TestTagOf(t *testing.T) {
	cases := map[ValueType]Tag{
		I32: TagI32, I64: TagI64, F32: TagF32, F64: TagF64,
		FuncRef: TagFuncRef, ExternRef: TagRef,
	}
	for vt, want := range cases {
		if TagOf(vt) != want {
			t.Errorf("TagOf(%v) = %v, want %v", vt, TagOf(vt), want)
		}
	}
	if !TagRef.IsRef() || TagI64.IsRef() {
		t.Error("tag ref classification wrong")
	}
}

func TestOpcodeTable(t *testing.T) {
	if !OpI32Add.Known() || Opcode(0xFF).Known() {
		t.Error("Known misclassifies opcodes")
	}
	if OpI32Add.String() != "i32.add" {
		t.Errorf("String: %q", OpI32Add.String())
	}
	p, r, ok := OpI32Add.Sig()
	if !ok || len(p) != 2 || len(r) != 1 || p[0] != I32 || r[0] != I32 {
		t.Errorf("Sig(i32.add) = %v %v %v", p, r, ok)
	}
	if _, _, ok := OpBlock.Sig(); ok {
		t.Error("block should have no static signature")
	}
	if OpI32DivS.IsPure() {
		t.Error("div can trap; must not be pure")
	}
	if !OpI32Add.IsPure() {
		t.Error("add is pure")
	}
}

func TestSkipImmAllKinds(t *testing.T) {
	// Construct immediates for each kind and check SkipImm consumes them.
	type tc struct {
		op  Opcode
		imm []byte
	}
	cases := []tc{
		{OpNop, nil},
		{OpBlock, []byte{0x40}},
		{OpBr, AppendU32(nil, 3)},
		{OpBrTable, append(AppendU32(AppendU32(nil, 1), 0), AppendU32(nil, 2)...)},
		{OpCall, AppendU32(nil, 7)},
		{OpCallIndirect, AppendU32(AppendU32(nil, 1), 0)},
		{OpLocalGet, AppendU32(nil, 9)},
		{OpGlobalGet, AppendU32(nil, 2)},
		{OpI32Load, AppendU32(AppendU32(nil, 2), 16)},
		{OpMemorySize, []byte{0}},
		{OpI32Const, AppendS32(nil, -7)},
		{OpI64Const, AppendS64(nil, 1<<40)},
		{OpF32Const, AppendF32(nil, 0x3F800000)},
		{OpF64Const, AppendF64(nil, 0x3FF0000000000000)},
		{OpRefNull, []byte{byte(ExternRef)}},
		{OpSelectT, append(AppendU32(nil, 1), byte(I32))},
		{OpMemoryCopy, []byte{0, 0}},
		{OpMemoryFill, []byte{0}},
	}
	for _, c := range cases {
		r := NewReader(c.imm)
		if err := r.SkipImm(c.op); err != nil {
			t.Errorf("SkipImm(%v): %v", c.op, err)
		}
		if r.Len() != 0 {
			t.Errorf("SkipImm(%v) left %d bytes", c.op, r.Len())
		}
	}
}

func TestReadOpcodePrefixed(t *testing.T) {
	enc := AppendOpcode(nil, OpMemoryCopy)
	r := NewReader(enc)
	op, err := r.ReadOpcode()
	if err != nil || op != OpMemoryCopy {
		t.Fatalf("got %v, %v", op, err)
	}
}

func buildModule(t *testing.T) *Module {
	t.Helper()
	b := NewBuilder()
	ft := FuncType{Params: []ValueType{I32, I64}, Results: []ValueType{F64}}
	imp := b.ImportFunc("env", "h", FuncType{Params: []ValueType{I32}})
	b.AddMemory(2, 4)
	g := b.AddGlobal(I64, true, ValI64(99))
	b.AddTable(4)
	f := b.NewFunc("f", ft)
	f.LocalGet(0).Call(imp)
	f.GlobalGet(g).Op(OpF64ConvertI64S)
	f.End()
	b.AddElem(1, []uint32{f.Idx})
	b.AddData(64, []byte{1, 2, 3})
	b.Export("f", f.Idx)
	b.ExportMemory("memory")
	return b.Module()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := buildModule(t)
	enc := Encode(m)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Types) != len(m.Types) {
		t.Errorf("types: %d != %d", len(dec.Types), len(m.Types))
	}
	if len(dec.Funcs) != len(m.Funcs) {
		t.Errorf("funcs: %d != %d", len(dec.Funcs), len(m.Funcs))
	}
	if dec.NumImportedFuncs() != 1 {
		t.Errorf("imports: %d != 1", dec.NumImportedFuncs())
	}
	if !bytes.Equal(dec.Funcs[0].Body, m.Funcs[0].Body) {
		t.Error("function body changed in round trip")
	}
	if len(dec.Memories) != 1 || dec.Memories[0].Min != 2 || dec.Memories[0].Max != 4 {
		t.Errorf("memory limits: %+v", dec.Memories)
	}
	if len(dec.Globals) != 1 || dec.Globals[0].Init.I64() != 99 {
		t.Errorf("globals: %+v", dec.Globals)
	}
	if len(dec.Elems) != 1 || dec.Elems[0].Offset != 1 {
		t.Errorf("elems: %+v", dec.Elems)
	}
	if len(dec.Datas) != 1 || dec.Datas[0].Offset != 64 {
		t.Errorf("datas: %+v", dec.Datas)
	}
	if name := dec.FuncName(dec.Funcs[0].TypeIdx + 1); name == "" {
		t.Error("missing function name")
	}
	// Re-encoding the decoded module must be byte-identical.
	if !bytes.Equal(Encode(dec), enc) {
		t.Error("encode(decode(x)) != x")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode([]byte("not a wasm module")); err == nil {
		t.Error("expected bad magic error")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestDecodeSectionOrder(t *testing.T) {
	m := buildModule(t)
	enc := Encode(m)
	// Duplicate a section id by appending a type section at the end.
	bad := append(append([]byte{}, enc...), 1 /*type*/, 1, 0)
	if _, err := Decode(bad); err == nil {
		t.Error("expected section-order error")
	}
}

func TestFuncTypeAt(t *testing.T) {
	m := buildModule(t)
	ft, err := m.FuncTypeAt(0) // the import
	if err != nil || len(ft.Params) != 1 {
		t.Errorf("import type: %v %v", ft, err)
	}
	ft, err = m.FuncTypeAt(1)
	if err != nil || len(ft.Params) != 2 || len(ft.Results) != 1 {
		t.Errorf("func type: %v %v", ft, err)
	}
	if _, err := m.FuncTypeAt(2); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestExportedFunc(t *testing.T) {
	m := buildModule(t)
	if idx, ok := m.ExportedFunc("f"); !ok || idx != 1 {
		t.Errorf("ExportedFunc: %d %v", idx, ok)
	}
	if _, ok := m.ExportedFunc("missing"); ok {
		t.Error("found non-existent export")
	}
}

func TestMemoryGrowEncoding(t *testing.T) {
	lim := Limits{Min: 1}
	enc := appendLimits(nil, lim)
	r := NewReader(enc)
	got, err := decodeLimits(r)
	if err != nil || got.Min != 1 || got.HasMax {
		t.Errorf("limits: %+v %v", got, err)
	}
}

func TestBuilderLocalRuns(t *testing.T) {
	b := NewBuilder()
	f := b.NewFunc("g", FuncType{})
	f.AddLocal(I32)
	f.AddLocal(I32)
	f.AddLocal(F64)
	f.End()
	m := b.Module()
	enc := Encode(m)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := dec.Funcs[0].Locals
	want := []ValueType{I32, I32, F64}
	if len(got) != len(want) {
		t.Fatalf("locals %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("locals %v, want %v", got, want)
		}
	}
}
