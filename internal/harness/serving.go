package harness

import (
	"fmt"
	"sync"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/telemetry"
)

// ServingSample measures the multi-instance serving shape end to end:
// compile once, then drive `requests` complete requests (pool get →
// _start → put) through `workers` concurrent goroutines against a pool
// of `poolSize` instances. Unlike PooledSample, which splits the
// pool-side costs, this sample characterizes the whole request path the
// way a load balancer sees it — throughput and latency percentiles as
// functions of the worker count and the instance count — with the
// percentiles read from a telemetry histogram rather than a sorted
// sample array, so the numbers have exactly the resolution a scraped
// /metrics endpoint would report.
type ServingSample struct {
	// Compile is the one-time artifact cost.
	Compile time.Duration
	// Requests, Workers, PoolSize describe the load shape.
	Requests, Workers, PoolSize int
	// Wall is the end-to-end time serving all requests; Throughput is
	// Requests / Wall in requests per second.
	Wall       time.Duration
	Throughput float64
	// Mean and the percentiles summarize the per-request latency
	// (get + execute + put), derived from the histogram buckets.
	Mean, P50, P90, P99 time.Duration
	// Hits and Misses count recycled vs freshly instantiated requests.
	Hits, Misses uint64
}

// MeasureServing compiles bytes once under cfg and serves requests from
// an instance pool, returning throughput and histogram-derived latency
// percentiles for the (workers, poolSize) cell.
func MeasureServing(cfg engine.Config, bytes []byte, requests, workers, poolSize int) (ServingSample, error) {
	if requests < 1 {
		requests = 1
	}
	if workers < 1 {
		workers = 1
	}
	e := engine.New(cfg, nil)
	t0 := time.Now()
	cm, err := e.Compile(bytes)
	if err != nil {
		return ServingSample{}, err
	}
	s := ServingSample{
		Compile:  time.Since(t0),
		Requests: requests,
		Workers:  workers,
		PoolSize: poolSize,
	}
	if _, ok := cm.Module.ExportedFunc("_start"); !ok {
		return ServingSample{}, fmt.Errorf("harness: module has no _start")
	}
	pool := cm.NewPool(poolSize)
	defer pool.Close()

	// A private registry keeps this cell's latency distribution separate
	// from the process-wide one (which also accumulates across cells).
	reg := telemetry.NewRegistry()
	hist := reg.Histogram("serving_request_seconds",
		"End-to-end request latency: pool get + _start + put.")

	errs := make(chan error, workers)
	var wg sync.WaitGroup
	tStart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := w; r < requests; r += workers {
				t1 := time.Now()
				inst, err := pool.Get()
				if err != nil {
					errs <- err
					return
				}
				startFn, _ := inst.RT.FuncByName("_start")
				if _, err := inst.CallFunc(startFn); err != nil {
					errs <- err
					return
				}
				pool.Put(inst)
				hist.Observe(time.Since(t1))
			}
		}(w)
	}
	wg.Wait()
	s.Wall = time.Since(tStart)
	close(errs)
	if err := <-errs; err != nil {
		return ServingSample{}, err
	}

	if s.Wall > 0 {
		s.Throughput = float64(requests) / s.Wall.Seconds()
	}
	snap := reg.Snapshot()
	for _, h := range snap.Histograms {
		if h.Desc.Name == "serving_request_seconds" {
			s.Mean = h.Mean()
			s.P50 = h.Quantile(0.50)
			s.P90 = h.Quantile(0.90)
			s.P99 = h.Quantile(0.99)
		}
	}
	st := pool.Stats()
	s.Hits, s.Misses = st.Hits, st.Misses
	return s, nil
}
