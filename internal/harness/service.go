package harness

import (
	"fmt"
	"time"

	"wizgo/internal/engine"
)

// ServiceSample measures the serving deployment shape the two-phase
// engine API enables: pay decode+validate+compile once, then
// instantiate and run many instances from the same CompiledModule. The
// paper's per-run methodology (RunOnce) deliberately re-pays setup every
// time — this is the complementary measurement, and the ratio
// Setup/Instantiate is the amortization factor a multi-instance
// deployment gains.
type ServiceSample struct {
	// Compile is the one-time artifact cost (decode+validate+compile).
	Compile time.Duration
	// Instantiate is the median per-instance link cost: imports,
	// memory/table/global allocation, stack, start function.
	Instantiate time.Duration
	// Main is the median per-instance _start execution time.
	Main time.Duration
	// Instances is the number of instances measured.
	Instances int
	// CodeBytes and ModuleBytes mirror Sample for throughput metrics.
	CodeBytes   int
	ModuleBytes int
	// Checksum verifies cross-instance agreement (0 if not exported).
	Checksum int64
}

// CompileThroughput returns the compile-once throughput in MB of module
// per second — the compile-speed axis of the SQ-space, measured on the
// artifact path rather than per run. A compile too fast for the clock
// to resolve yields 0 (no data), matching Amortization, rather than an
// absurd clamped number.
func (s ServiceSample) CompileThroughput() float64 {
	sec := s.Compile.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(s.ModuleBytes) / 1e6 / sec
}

// Amortization returns how many times faster an instance becomes ready
// from the compiled artifact than from raw bytes (setup time over
// instantiate time).
func (s ServiceSample) Amortization() float64 {
	if s.Instantiate <= 0 {
		return 0
	}
	return float64(s.Compile) / float64(s.Instantiate)
}

// MeasureService compiles bytes once under cfg and then instantiates
// and runs _start `instances` times from the shared artifact, verifying
// every instance computes the same checksum.
func MeasureService(cfg engine.Config, bytes []byte, instances int) (ServiceSample, error) {
	if instances < 1 {
		instances = 1
	}
	e := engine.New(cfg, nil)
	t0 := time.Now()
	cm, err := e.Compile(bytes)
	if err != nil {
		return ServiceSample{}, err
	}
	s := ServiceSample{
		Compile:     time.Since(t0),
		Instances:   instances,
		CodeBytes:   cm.Timings.CodeBytes,
		ModuleBytes: cm.Timings.ModuleBytes,
	}

	instTimes := make([]time.Duration, instances)
	mainTimes := make([]time.Duration, instances)
	for i := 0; i < instances; i++ {
		t1 := time.Now()
		inst, err := cm.Instantiate()
		if err != nil {
			return ServiceSample{}, err
		}
		instTimes[i] = time.Since(t1)

		startFn, ok := inst.RT.FuncByName("_start")
		if !ok {
			return ServiceSample{}, fmt.Errorf("harness: module has no _start")
		}
		t2 := time.Now()
		if _, err := inst.CallFunc(startFn); err != nil {
			return ServiceSample{}, err
		}
		mainTimes[i] = time.Since(t2)

		// "checksum not exported" is fine; "checksum trapped" is exactly
		// the regression class this measurement exists to catch.
		if sumFn, ok := inst.RT.FuncByName("checksum"); ok {
			sum, err := inst.CallFunc(sumFn)
			if err != nil {
				return ServiceSample{}, fmt.Errorf("harness: instance %d checksum: %w", i, err)
			}
			if len(sum) == 1 {
				got := sum[0].I64()
				if i == 0 {
					s.Checksum = got
				} else if got != s.Checksum {
					return ServiceSample{}, fmt.Errorf(
						"harness: instance %d checksum %#x != %#x", i, got, s.Checksum)
				}
			}
		}
		inst.Release() // serving shape: recycle the stack between instances
	}
	s.Instantiate = median(instTimes)
	s.Main = median(mainTimes)
	return s, nil
}
