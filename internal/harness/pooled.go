package harness

import (
	"fmt"
	"sync"
	"time"

	"wizgo/internal/engine"
)

// PooledSample measures the pooled serving mode: compile once, then
// serve requests from an instance pool under worker contention, where
// each request pays only Pool.Get (copy-on-write reset or, on a miss,
// a fresh link) instead of a full instantiation. It is the third rung
// of the amortization ladder after ServiceSample: compile → cache →
// pool → call.
type PooledSample struct {
	// Compile is the one-time artifact cost.
	Compile time.Duration
	// Requests and Workers describe the load shape.
	Requests, Workers int
	// Get is the median request acquisition latency observed by the
	// workers (inline reset on late hits, instantiation on misses,
	// contention included). MeanReset and MeanMiss split the pool-side
	// cost by path; ResetMax is the worst single reset.
	Get       time.Duration
	MeanReset time.Duration
	MeanMiss  time.Duration
	ResetMax  time.Duration
	// ResetsOnPut counts resets the pool's background drainer absorbed
	// between requests; ResetsOnGet counts resets that landed back on
	// the request path because Get outran the drainer.
	ResetsOnPut, ResetsOnGet uint64
	// MeanResetOnPut / MeanResetOnGet are the per-path reset means.
	MeanResetOnPut, MeanResetOnGet time.Duration
	// Hits and Misses count recycled vs freshly instantiated requests.
	Hits, Misses uint64
	// Main is the median per-request _start execution time.
	Main time.Duration
	// Checksum verifies cross-request agreement (0 if not exported) —
	// a reset that leaks state between requests shows up here.
	Checksum int64
}

// Amortization returns how many times cheaper a pooled request setup is
// than a fresh instantiation (miss cost over hit cost).
func (s PooledSample) Amortization() float64 {
	if s.MeanReset <= 0 || s.MeanMiss <= 0 {
		return 0
	}
	return float64(s.MeanMiss) / float64(s.MeanReset)
}

// MeasurePooled compiles bytes once under cfg, then serves `requests`
// _start runs from an instance pool of the given capacity driven by
// `workers` goroutines, verifying every request computes the same
// checksum. It reports get/reset/miss latencies and the hit ratio.
func MeasurePooled(cfg engine.Config, bytes []byte, requests, workers, poolSize int) (PooledSample, error) {
	if requests < 1 {
		requests = 1
	}
	if workers < 1 {
		workers = 1
	}
	e := engine.New(cfg, nil)
	t0 := time.Now()
	cm, err := e.Compile(bytes)
	if err != nil {
		return PooledSample{}, err
	}
	s := PooledSample{
		Compile:  time.Since(t0),
		Requests: requests,
		Workers:  workers,
	}
	if _, ok := cm.Module.ExportedFunc("_start"); !ok {
		return PooledSample{}, fmt.Errorf("harness: module has no _start")
	}
	_, hasChecksum := cm.Module.ExportedFunc("checksum")
	pool := cm.NewPool(poolSize)
	defer pool.Close()

	getTimes := make([]time.Duration, requests)
	mainTimes := make([]time.Duration, requests)
	checksums := make([]int64, requests)
	errs := make(chan error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := w; r < requests; r += workers {
				t1 := time.Now()
				inst, err := pool.Get()
				if err != nil {
					errs <- err
					return
				}
				getTimes[r] = time.Since(t1)

				startFn, _ := inst.RT.FuncByName("_start")
				t2 := time.Now()
				if _, err := inst.CallFunc(startFn); err != nil {
					errs <- err
					return
				}
				mainTimes[r] = time.Since(t2)

				if sumFn, ok := inst.RT.FuncByName("checksum"); ok && hasChecksum {
					sum, err := inst.CallFunc(sumFn)
					if err != nil {
						errs <- fmt.Errorf("harness: request %d checksum: %w", r, err)
						return
					}
					if len(sum) == 1 {
						checksums[r] = sum[0].I64()
					}
				}
				pool.Put(inst)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return PooledSample{}, err
	}

	if hasChecksum {
		s.Checksum = checksums[0]
		for r, sum := range checksums {
			if sum != s.Checksum {
				return PooledSample{}, fmt.Errorf(
					"harness: pooled request %d checksum %#x != %#x (reset leaked state?)",
					r, sum, s.Checksum)
			}
		}
	}

	st := pool.Stats()
	s.Get = median(getTimes)
	s.MeanReset = st.MeanReset()
	s.MeanMiss = st.MeanMiss()
	s.ResetMax = st.ResetMax
	s.ResetsOnPut = st.ResetsOnPut
	s.ResetsOnGet = st.ResetsOnGet
	s.MeanResetOnPut = st.MeanResetOnPut()
	s.MeanResetOnGet = st.MeanResetOnGet()
	s.Hits = st.Hits
	s.Misses = st.Misses
	s.Main = median(mainTimes)
	return s, nil
}
