package harness_test

import (
	"testing"
	"time"

	"wizgo/internal/engines"
	"wizgo/internal/harness"
	"wizgo/internal/workloads"
)

func TestAggregate(t *testing.T) {
	st := harness.Aggregate([]float64{2, 4, 6})
	if st.Mean != 4 || st.Min != 2 || st.Max != 6 || st.N != 3 {
		t.Errorf("stat = %+v", st)
	}
	empty := harness.Aggregate(nil)
	if empty.N != 0 {
		t.Errorf("empty stat = %+v", empty)
	}
}

func TestGeomean(t *testing.T) {
	g := harness.Geomean([]float64{1, 4})
	if g < 1.99 || g > 2.01 {
		t.Errorf("geomean(1,4) = %f", g)
	}
	if harness.Geomean(nil) != 0 {
		t.Error("geomean of nothing should be 0")
	}
}

func TestRunOnceProducesChecksumAndTimings(t *testing.T) {
	item := workloads.Ostrich()[3] // crc, fast
	s, err := harness.RunOnce(engines.WizardSPC(), item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if s.Checksum == 0 {
		t.Error("checksum missing")
	}
	if s.Main <= 0 || s.Total < s.Main || s.Setup <= 0 {
		t.Errorf("timings inconsistent: %+v", s)
	}
	if s.ModuleBytes != len(item.Bytes) || s.CodeBytes == 0 {
		t.Errorf("sizes: %+v", s)
	}
}

func TestMedians(t *testing.T) {
	samples := []harness.Sample{
		{Main: 3, Total: 30, Setup: 300},
		{Main: 1, Total: 10, Setup: 100},
		{Main: 2, Total: 20, Setup: 200},
	}
	if harness.MainMedian(samples) != 2 {
		t.Error("main median wrong")
	}
	if harness.TotalMedian(samples) != 20 {
		t.Error("total median wrong")
	}
	if harness.SetupMedian(samples) != 200 {
		t.Error("setup median wrong")
	}
}

func TestAdjustedTimesSane(t *testing.T) {
	item := workloads.Ostrich()[3]
	cfg := engines.WizardSPC()
	startup, err := harness.StartupTime(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	at, err := harness.MeasureAdjusted(cfg, item, 3, startup)
	if err != nil {
		t.Fatal(err)
	}
	if at.Adjusted < 10*time.Microsecond {
		t.Errorf("adjusted main time implausibly small: %v", at.Adjusted)
	}
	if at.SetupUB <= 0 {
		t.Errorf("setup upper bound missing: %v", at.SetupUB)
	}
}

func TestFigure3Table(t *testing.T) {
	tbl := harness.Figure3()
	out := tbl.Render()
	for _, want := range []string{"wizeng-spc", "MR K KF ISEL TAG MV", "sm-base"} {
		if !containsStr(out, want) {
			t.Errorf("figure 3 output missing %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestFigure4Small runs the full Figure 4 pipeline on a tiny selection,
// checking the structural invariants of the result.
func TestFigure4Small(t *testing.T) {
	items := []workloads.Item{
		workloads.PolyBench()[0],
		workloads.Libsodium()[0],
		workloads.Ostrich()[3],
	}
	tbl, err := harness.Figure4(items, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("figure 4 has %d rows, want 5 ablations", len(tbl.Rows))
	}
	if tbl.Rows[0].Label != "allopt" {
		t.Errorf("first row %q", tbl.Rows[0].Label)
	}
	if len(tbl.Columns) != 3 {
		t.Errorf("columns %v", tbl.Columns)
	}
}

func TestMeasurePooled(t *testing.T) {
	item := workloads.Ostrich()[3] // crc
	s, err := harness.MeasurePooled(engines.WizardSPC(), item.Bytes, 12, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hits+s.Misses != 12 {
		t.Errorf("hits %d + misses %d != 12 requests", s.Hits, s.Misses)
	}
	if s.Misses == 0 {
		t.Error("a cold pool must record at least one miss")
	}
	if s.Checksum == 0 {
		t.Error("checksum not captured")
	}
	if s.Main <= 0 || s.Get < 0 {
		t.Errorf("implausible latencies: get=%v main=%v", s.Get, s.Main)
	}
}
