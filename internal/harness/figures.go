package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/monitors"
	"wizgo/internal/spc"
	"wizgo/internal/workloads"
)

// Table is a rendered experiment result: one row per configuration (or
// scatter point), one column group per suite.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   string
}

// Row is one table line.
type Row struct {
	Label string
	Cells []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("config")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Cells) && len(r.Cells[i]) > widths[i+1] {
				widths[i+1] = len(r.Cells[i])
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0]+2, "config")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", widths[i+1]+2, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0]+2, r.Label)
		for i, c := range r.Cells {
			fmt.Fprintf(&b, "%*s", widths[i+1]+2, c)
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "%s\n", t.Notes)
	}
	return b.String()
}

func suites() []string {
	return []string{workloads.SuitePolyBench, workloads.SuiteLibsodium, workloads.SuiteOstrich}
}

func bySuite(items []workloads.Item) map[string][]workloads.Item {
	m := make(map[string][]workloads.Item)
	for _, it := range items {
		m[it.Suite] = append(m[it.Suite], it)
	}
	return m
}

func statCell(st Stat) string {
	return fmt.Sprintf("%.2f [%.2f,%.2f]", st.Mean, st.Min, st.Max)
}

// mainTimes measures the median main time of every item under cfg.
func mainTimes(cfg engine.Config, items []workloads.Item, runs int) (map[string]time.Duration, error) {
	out := make(map[string]time.Duration, len(items))
	for _, it := range items {
		samples, err := Measure(cfg, it.Bytes, runs)
		if err != nil {
			return nil, fmt.Errorf("%s on %s/%s: %w", cfg.Name, it.Suite, it.Name, err)
		}
		out[it.Suite+"/"+it.Name] = MainMedian(samples)
	}
	return out, nil
}

// Figure4 reproduces the execution-time speedup of Wizard-SPC variants
// over Wizard-INT (main time only).
func Figure4(items []workloads.Item, runs int) (*Table, error) {
	interp, err := mainTimes(engines.WizardINT(), items, runs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 4: execution time speedup of Wizard-SPC over Wizard-INT (higher is better)",
		Columns: suites(),
		Notes:   "cells: suite mean speedup [min,max] across line items",
	}
	for _, cfg := range engines.Figure4Variants() {
		times, err := mainTimes(cfg, items, runs)
		if err != nil {
			return nil, err
		}
		row := Row{Label: cfg.Name}
		for _, suite := range suites() {
			var speedups []float64
			for key, it := range interp {
				if strings.HasPrefix(key, suite+"/") {
					speedups = append(speedups, float64(it)/float64(times[key]))
				}
			}
			row.Cells = append(row.Cells, statCell(Aggregate(speedups)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure5 reproduces the relative execution time of tagging
// configurations vs the notags baseline (lower is better).
func Figure5(items []workloads.Item, runs int) (*Table, error) {
	variants := engines.Figure5Variants()
	base, err := mainTimes(variants[0], items, runs) // notags
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 5: execution time of tagging configurations relative to notags (lower is better)",
		Columns: suites(),
		Notes:   "cells: suite mean relative time [min,max]; 1.00 = notags",
	}
	for _, cfg := range variants[1:] {
		times, err := mainTimes(cfg, items, runs)
		if err != nil {
			return nil, err
		}
		row := Row{Label: cfg.Name}
		for _, suite := range suites() {
			var rel []float64
			for key, b := range base {
				if strings.HasPrefix(key, suite+"/") {
					rel = append(rel, float64(times[key])/float64(b))
				}
			}
			row.Cells = append(row.Cells, statCell(Aggregate(rel)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// probedMainTimes measures main time with the branch monitor attached.
func probedMainTimes(cfg engine.Config, items []workloads.Item, runs int) (map[string]time.Duration, error) {
	cfg.CompileWorkers = 1 // match RunOnce's single-threaded methodology
	out := make(map[string]time.Duration, len(items))
	for _, it := range items {
		var best []time.Duration
		for r := 0; r < runs; r++ {
			e := engine.New(cfg, nil)
			inst, err := e.Instantiate(it.Bytes)
			if err != nil {
				return nil, err
			}
			if _, err := monitors.AttachBranchMonitor(inst); err != nil {
				return nil, err
			}
			start, _ := inst.RT.FuncByName("_start")
			t0 := time.Now()
			if _, err := inst.CallFunc(start); err != nil {
				return nil, err
			}
			best = append(best, time.Since(t0))
		}
		out[it.Suite+"/"+it.Name] = median(best)
	}
	return out, nil
}

// Figure6 reproduces branch-monitor probe overhead: the increase in main
// execution time relative to the *uninstrumented interpreter* run, for
// int, jit, and optjit configurations.
func Figure6(items []workloads.Item, runs int) (*Table, error) {
	interpBase, err := mainTimes(engines.WizardINT(), items, runs)
	if err != nil {
		return nil, err
	}
	cfgs := []struct {
		name string
		cfg  engine.Config
	}{
		{"int", engines.WizardINT()},
		{"jit", engines.SPCVariant("jit-probes", func(c *spc.Config) { c.OptProbes = false })},
		{"optjit", engines.WizardSPC()},
	}
	t := &Table{
		Title:   "Figure 6: branch-monitor overhead relative to interpreter main time (lower is better)",
		Columns: suites(),
		Notes:   "cells: suite mean of (probed − unprobed)/interp-main [min,max]",
	}
	for _, c := range cfgs {
		unprobed, err := mainTimes(c.cfg, items, runs)
		if err != nil {
			return nil, err
		}
		probed, err := probedMainTimes(c.cfg, items, runs)
		if err != nil {
			return nil, err
		}
		row := Row{Label: c.name}
		for _, suite := range suites() {
			var overheads []float64
			for key, ib := range interpBase {
				if strings.HasPrefix(key, suite+"/") {
					d := float64(probed[key]-unprobed[key]) / float64(ib)
					if d < 0 {
						d = 0
					}
					overheads = append(overheads, d)
				}
			}
			row.Cells = append(row.Cells, statCell(Aggregate(overheads)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure7 reproduces relative execution time (total, including startup
// and compile) of the baseline compilers over Wizard-SPC.
func Figure7(items []workloads.Item, runs int) (*Table, error) {
	shootout := engines.BaselineShootout()
	base := make(map[string]time.Duration)
	for _, it := range items {
		samples, err := Measure(shootout[0], it.Bytes, runs)
		if err != nil {
			return nil, err
		}
		base[it.Suite+"/"+it.Name] = TotalMedian(samples)
	}
	t := &Table{
		Title:   "Figure 7: execution time relative to wizeng-spc (total time; lower is better)",
		Columns: suites(),
		Notes:   "cells: suite mean relative total time [min,max]",
	}
	for _, cfg := range shootout[1:] {
		row := Row{Label: cfg.Name}
		rel := make(map[string]float64)
		for _, it := range items {
			samples, err := Measure(cfg, it.Bytes, runs)
			if err != nil {
				return nil, err
			}
			key := it.Suite + "/" + it.Name
			rel[key] = float64(TotalMedian(samples)) / float64(base[key])
		}
		for _, suite := range suites() {
			var vals []float64
			for key, v := range rel {
				if strings.HasPrefix(key, suite+"/") {
					vals = append(vals, v)
				}
			}
			row.Cells = append(row.Cells, statCell(Aggregate(vals)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure8 reproduces compile time per input byte relative to wizeng-spc.
func Figure8(items []workloads.Item, runs int) (*Table, error) {
	shootout := engines.BaselineShootout()
	perByte := func(cfg engine.Config) (map[string]float64, error) {
		out := make(map[string]float64)
		for _, it := range items {
			samples, err := Measure(cfg, it.Bytes, runs)
			if err != nil {
				return nil, err
			}
			setup := SetupMedian(samples)
			out[it.Suite+"/"+it.Name] = float64(setup) / float64(samples[0].ModuleBytes)
		}
		return out, nil
	}
	base, err := perByte(shootout[0])
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 8: compile time per byte relative to wizeng-spc (lower is better)",
		Columns: suites(),
		Notes:   "cells: suite mean relative ns/byte [min,max]; includes decode+validate+compile",
	}
	for _, cfg := range shootout[1:] {
		times, err := perByte(cfg)
		if err != nil {
			return nil, err
		}
		row := Row{Label: cfg.Name}
		for _, suite := range suites() {
			var vals []float64
			for key, b := range base {
				if strings.HasPrefix(key, suite+"/") {
					vals = append(vals, times[key]/b)
				}
			}
			row.Cells = append(row.Cells, statCell(Aggregate(vals)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// SQPoint is one scatter point of Figures 9 and 10.
type SQPoint struct {
	Engine  string  `json:"engine"`
	Class   string  `json:"class"`
	Item    string  `json:"item"`
	SetupMB float64 `json:"setup_mb_s"` // setup speed, MB/s
	Speedup float64 `json:"speedup"`    // speedup over wizeng-int
}

// Figure9 produces the baseline-compiler SQ-space scatter: per line item,
// compile speed (MB/s) vs speedup of main time over wizeng-int.
func Figure9(items []workloads.Item, runs int) ([]SQPoint, error) {
	interp, err := mainTimes(engines.WizardINT(), items, runs)
	if err != nil {
		return nil, err
	}
	var points []SQPoint
	for _, cfg := range engines.BaselineShootout() {
		for _, it := range items {
			samples, err := Measure(cfg, it.Bytes, runs)
			if err != nil {
				return nil, err
			}
			key := it.Suite + "/" + it.Name
			setup := SetupMedian(samples)
			mb := float64(samples[0].ModuleBytes) / 1e6
			points = append(points, SQPoint{
				Engine:  cfg.Name,
				Class:   engines.TierClass(cfg.Name),
				Item:    key,
				SetupMB: mb / setup.Seconds(),
				Speedup: float64(interp[key]) / float64(MainMedian(samples)),
			})
		}
	}
	return points, nil
}

// Figure10 produces the full 18-tier SQ-space using the adjusted-time
// methodology: setup speed from T(m0)−T(Mnop), adjusted speedup over
// wizeng-int from T(m)−T(m0).
func Figure10(items []workloads.Item, runs int) ([]SQPoint, error) {
	tiers := engines.SQSpaceTiers()
	// Baseline: wizeng-int adjusted times per item.
	intCfg := tiers[0]
	intStartup, err := StartupTime(intCfg, runs*4)
	if err != nil {
		return nil, err
	}
	intAdj := make(map[string]time.Duration)
	for _, it := range items {
		at, err := MeasureAdjusted(intCfg, it, runs, intStartup)
		if err != nil {
			return nil, err
		}
		intAdj[it.Suite+"/"+it.Name] = at.Adjusted
	}
	var points []SQPoint
	for _, cfg := range tiers {
		startup, err := StartupTime(cfg, runs*4)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			at, err := MeasureAdjusted(cfg, it, runs, startup)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", cfg.Name, it.Name, err)
			}
			key := it.Suite + "/" + it.Name
			setupSec := at.SetupUB.Seconds()
			if setupSec <= 0 {
				setupSec = 1e-9
			}
			points = append(points, SQPoint{
				Engine:  cfg.Name,
				Class:   engines.TierClass(cfg.Name),
				Item:    key,
				SetupMB: (float64(len(it.Bytes)) / 1e6) / setupSec,
				Speedup: float64(intAdj[key]) / float64(at.Adjusted),
			})
		}
	}
	return points, nil
}

// RenderSQ renders scatter points as a per-engine summary table plus a
// CSV block suitable for external plotting.
func RenderSQ(title string, points []SQPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	type agg struct {
		class    string
		setups   []float64
		speedups []float64
	}
	byEngine := map[string]*agg{}
	var order []string
	for _, p := range points {
		a, ok := byEngine[p.Engine]
		if !ok {
			a = &agg{class: p.Class}
			byEngine[p.Engine] = a
			order = append(order, p.Engine)
		}
		a.setups = append(a.setups, p.SetupMB)
		a.speedups = append(a.speedups, p.Speedup)
	}
	fmt.Fprintf(&b, "%-14s %-12s %16s %18s\n", "engine", "class", "setup MB/s(gm)", "speedup(gm)")
	for _, name := range order {
		a := byEngine[name]
		fmt.Fprintf(&b, "%-14s %-12s %16.2f %18.2f\n",
			name, a.class, Geomean(a.setups), Geomean(a.speedups))
	}
	b.WriteString("\ncsv: engine,class,item,setup_mb_s,speedup\n")
	sorted := make([]SQPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Engine != sorted[j].Engine {
			return sorted[i].Engine < sorted[j].Engine
		}
		return sorted[i].Item < sorted[j].Item
	})
	for _, p := range sorted {
		fmt.Fprintf(&b, "%s,%s,%s,%.4f,%.4f\n", p.Engine, p.Class, p.Item, p.SetupMB, p.Speedup)
	}
	return b.String()
}

// Figure3 renders the feature-matrix table.
func Figure3() *Table {
	t := &Table{
		Title:   "Figure 3: baseline compiler feature matrix",
		Columns: []string{"year", "features", "description"},
	}
	for _, r := range engines.Figure3() {
		t.Rows = append(t.Rows, Row{
			Label: r.Name,
			Cells: []string{fmt.Sprintf("%d", r.Year), r.Features, r.Desc},
		})
	}
	t.Notes = "MR=multi-register, R=register alloc, K=constants, KF=const-folding,\nISEL=instr selection, TAG=value tags, MAP=stackmaps, MV=multi-value"
	return t
}
