package harness

import (
	"fmt"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/engine"
)

// ColdStartSample measures the persistent-cache serving shape: a seed
// process pays the full compile once and writes the artifact through to
// disk; a cold process (fresh engine, empty memory cache, its own disk
// handle on the same directory) then serves its first request by
// rehydrating the artifact without invoking the compiler at all. The
// sample records each rung of that ladder — full compile, disk load,
// in-memory hit — plus the compiler-invocation count of the cold
// process, which a healthy cache keeps at exactly zero.
type ColdStartSample struct {
	// FullCompile is the seed process's compile (decode + validate +
	// compile + artifact write-through).
	FullCompile time.Duration
	// DiskLoad is the cold process's Compile: module decode plus
	// artifact rehydration, no validation, no compilation.
	DiskLoad time.Duration
	// FullPipeline and ColdPipeline are the per-module pipeline work of
	// the two paths, from the engine's own Timings: decode + validate +
	// compile for the full path, artifact rehydration for the disk path.
	// Unlike the wall-clock fields they exclude cache bookkeeping and
	// file I/O, so their ratio (Speedup) is the module-size-scaling part
	// of the win.
	//
	// PairedSpeedup, when nonzero, is the median of per-pair pipeline
	// ratios from the process-per-sample protocol, where a full child
	// and a disk child run back to back under the same machine-load
	// epoch; Speedup prefers it because machine-load drift cancels
	// within each pair instead of skewing two independent medians.
	FullPipeline  time.Duration
	ColdPipeline  time.Duration
	PairedSpeedup float64
	// MemHit is a repeat Compile in the warm process: a memory-cache
	// hit, the floor of the ladder.
	MemHit time.Duration
	// Instantiate is the cold process's link cost and Main its first
	// _start run; FirstRequest = DiskLoad + Instantiate + Main is the
	// full time-to-first-response of the cold process.
	Instantiate  time.Duration
	Main         time.Duration
	FirstRequest time.Duration
	// ColdCompileCalls counts tier-compiler invocations in the cold
	// process. Zero is the contract: any other value means the disk
	// tier failed to serve and the cold start silently recompiled.
	ColdCompileCalls uint64
	// DiskHits / DiskMisses / DiskWrites are the cold process's disk
	// counters. In-process measurement sees the last cold iteration's
	// handle (expected 1/0/0 after a seeded run); the process-per-sample
	// protocol sums across all cold children (expected runs/0/0).
	DiskHits, DiskMisses, DiskWrites uint64
	// Checksum verifies the rehydrated instance agrees with the seed
	// instance (0 if the module exports no checksum).
	Checksum int64
}

// Speedup returns how many times less pipeline work the disk path does
// than the full path: (decode + validate + compile) over rehydration,
// both from the engine's own per-module Timings. This deliberately
// excludes per-process constants — cache-key hashing, open/mmap
// syscalls — which dominate the wall-clock numbers for tiny modules and
// shrink toward nothing for real ones; DiskLoad vs FullCompile carries
// the wall-clock story.
func (s ColdStartSample) Speedup() float64 {
	if s.PairedSpeedup > 0 {
		return s.PairedSpeedup
	}
	if s.ColdPipeline <= 0 {
		return 0
	}
	return float64(s.FullPipeline) / float64(s.ColdPipeline)
}

// MeasureColdStart seeds dir with the module's artifact under cfg, then
// simulates a process restart — fresh engine, empty in-memory cache, a
// separate disk-store handle on the same directory — and measures its
// time-to-first-response against the full compile. Each phase repeats
// `runs` times (a fresh engine and cache every iteration, so nothing is
// memoized away); wall times report the median and pipeline times the
// minimum — in-process repeats converge to warm-process steady state,
// where the minimum is the least-interference estimate. (For genuinely
// cold numbers use wizgo-bench -coldstart, which runs every sample in a
// fresh child process.) Both processes run _start and their checksums
// must agree: a cold start that loads wrong code is worse than a slow
// one.
func MeasureColdStart(cfg engine.Config, bytes []byte, dir string, runs int) (ColdStartSample, error) {
	var s ColdStartSample
	if runs < 1 {
		runs = 1
	}

	// Full compiles, measured without a disk tier so every iteration
	// pays decode+validate+compile even once dir holds the artifact.
	fullTimes := make([]time.Duration, runs)
	fullPipes := make([]time.Duration, runs)
	for i := range fullTimes {
		fullCfg := cfg
		fullCfg.Cache = codecache.New(codecache.Options{})
		t0 := time.Now()
		cm, err := engine.New(fullCfg, nil).Compile(bytes)
		if err != nil {
			return s, err
		}
		fullTimes[i] = time.Since(t0)
		fullPipes[i] = cm.Timings.Setup()
	}
	s.FullCompile = median(fullTimes)
	s.FullPipeline = minimum(fullPipes)

	// Seed process: full compile, written through to dir.
	seedCfg := cfg
	seedCfg.Cache = codecache.New(codecache.Options{})
	seedDisk, err := engine.OpenDiskCache(dir)
	if err != nil {
		return s, err
	}
	seedCfg.DiskCache = seedDisk
	seedEng := engine.New(seedCfg, nil)
	seedCM, err := seedEng.Compile(bytes)
	if err != nil {
		return s, err
	}
	seedSum, err := runOnce(seedCM)
	if err != nil {
		return s, fmt.Errorf("harness: seed run: %w", err)
	}

	// Cold processes: each shares nothing with the seed but the files
	// in dir. Compiler invocations across ALL of them must stay zero.
	loadTimes := make([]time.Duration, runs)
	coldPipes := make([]time.Duration, runs)
	var coldEng *engine.Engine
	var coldCM *engine.CompiledModule
	var coldDisk *codecache.DiskStore
	for i := range loadTimes {
		coldCfg := cfg
		coldCfg.Cache = codecache.New(codecache.Options{})
		coldDisk, err = engine.OpenDiskCache(dir)
		if err != nil {
			return s, err
		}
		coldCfg.DiskCache = coldDisk
		coldEng = engine.New(coldCfg, nil)
		t1 := time.Now()
		coldCM, err = coldEng.Compile(bytes)
		if err != nil {
			return s, err
		}
		loadTimes[i] = time.Since(t1)
		coldPipes[i] = coldCM.Timings.Setup()
		s.ColdCompileCalls += coldEng.CompileCalls()
	}
	s.DiskLoad = median(loadTimes)
	s.ColdPipeline = minimum(coldPipes)

	t2 := time.Now()
	inst, err := coldCM.Instantiate()
	if err != nil {
		return s, err
	}
	s.Instantiate = time.Since(t2)
	startFn, ok := inst.RT.FuncByName("_start")
	if !ok {
		return s, fmt.Errorf("harness: module has no _start")
	}
	t3 := time.Now()
	if _, err := inst.CallFunc(startFn); err != nil {
		return s, fmt.Errorf("harness: cold run: %w", err)
	}
	s.Main = time.Since(t3)
	s.FirstRequest = s.DiskLoad + s.Instantiate + s.Main

	if sumFn, ok := inst.RT.FuncByName("checksum"); ok {
		sum, err := inst.CallFunc(sumFn)
		if err != nil {
			return s, fmt.Errorf("harness: cold checksum: %w", err)
		}
		if len(sum) == 1 {
			s.Checksum = sum[0].I64()
			if s.Checksum != seedSum {
				return s, fmt.Errorf(
					"harness: cold checksum %#x != seed %#x (artifact loaded wrong code)",
					s.Checksum, seedSum)
			}
		}
	}
	inst.Release()

	// Warm repeats: the same process compiles again, now a memory hit.
	hitTimes := make([]time.Duration, runs)
	for i := range hitTimes {
		t4 := time.Now()
		if _, err := coldEng.Compile(bytes); err != nil {
			return s, err
		}
		hitTimes[i] = time.Since(t4)
	}
	s.MemHit = median(hitTimes)

	dst := coldDisk.Stats()
	s.DiskHits, s.DiskMisses, s.DiskWrites = dst.Hits, dst.Misses, dst.Writes
	return s, nil
}

// runOnce instantiates cm, runs _start, and returns the module's
// checksum (0 if not exported).
func runOnce(cm *engine.CompiledModule) (int64, error) {
	inst, err := cm.Instantiate()
	if err != nil {
		return 0, err
	}
	defer inst.Release()
	startFn, ok := inst.RT.FuncByName("_start")
	if !ok {
		return 0, fmt.Errorf("harness: module has no _start")
	}
	if _, err := inst.CallFunc(startFn); err != nil {
		return 0, err
	}
	if sumFn, ok := inst.RT.FuncByName("checksum"); ok {
		sum, err := inst.CallFunc(sumFn)
		if err != nil {
			return 0, err
		}
		if len(sum) == 1 {
			return sum[0].I64(), nil
		}
	}
	return 0, nil
}
