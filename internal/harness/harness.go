// Package harness implements the paper's measurement methodology
// (Section VI): main execution time (from _start entry to exit,
// excluding VM startup and compilation), total time T_E(m), the
// early-return module T_E(m0) and minimal module T_E(Mnop) used to bound
// per-module setup cost, adjusted execution time and adjusted speedup,
// and the statistics (per-line-item mean with min/max error bars across
// suites) behind every figure.
package harness

import (
	"fmt"
	"math"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/workloads"
)

// Sample is one run's timings for a line item under one engine config.
type Sample struct {
	// Setup is per-module processing before execution (decode,
	// validate, compile), measured directly from engine timings.
	Setup time.Duration
	// Main is the execution time of _start alone.
	Main time.Duration
	// Total is instantiate + _start (the T_E(m) of the paper).
	Total time.Duration
	// Checksum lets callers verify cross-engine agreement.
	Checksum int64
	// CodeBytes and ModuleBytes feed compile-throughput metrics.
	CodeBytes   int
	ModuleBytes int
}

// RunOnce instantiates a fresh engine (a fresh "VM instance", as the
// paper does for every run) and executes the module's _start.
// Compilation is pinned serial: the paper's setup-time measurements are
// single-threaded, and parallel fan-out would skew every compile-speed
// axis (Figures 8-10). The serving-shape measurement that does exploit
// the worker pool is MeasureService.
func RunOnce(cfg engine.Config, bytes []byte) (Sample, error) {
	cfg.CompileWorkers = 1
	e := engine.New(cfg, nil)
	t0 := time.Now()
	inst, err := e.Instantiate(bytes)
	if err != nil {
		return Sample{}, err
	}
	startFn, ok := inst.RT.FuncByName("_start")
	if !ok {
		return Sample{}, fmt.Errorf("harness: module has no _start")
	}
	t1 := time.Now()
	if _, err := inst.CallFunc(startFn); err != nil {
		return Sample{}, err
	}
	t2 := time.Now()

	s := Sample{
		Setup:       inst.Timings.Setup(),
		Main:        t2.Sub(t1),
		Total:       t2.Sub(t0),
		CodeBytes:   inst.Timings.CodeBytes,
		ModuleBytes: inst.Timings.ModuleBytes,
	}
	if sum, err := inst.Call("checksum"); err == nil && len(sum) == 1 {
		s.Checksum = sum[0].I64()
	}
	return s, nil
}

// Measure runs a line item `runs` times in fresh VM instances and
// returns the per-run samples.
func Measure(cfg engine.Config, bytes []byte, runs int) ([]Sample, error) {
	samples := make([]Sample, runs)
	for i := 0; i < runs; i++ {
		s, err := RunOnce(cfg, bytes)
		if err != nil {
			return nil, err
		}
		samples[i] = s
	}
	return samples, nil
}

// MainMedian returns the median main time of samples — the paper uses
// stable per-item repeats; the median suppresses scheduler noise.
func MainMedian(samples []Sample) time.Duration {
	ds := make([]time.Duration, len(samples))
	for i, s := range samples {
		ds[i] = s.Main
	}
	return median(ds)
}

// TotalMedian returns the median total time.
func TotalMedian(samples []Sample) time.Duration {
	ds := make([]time.Duration, len(samples))
	for i, s := range samples {
		ds[i] = s.Total
	}
	return median(ds)
}

// SetupMedian returns the median setup time.
func SetupMedian(samples []Sample) time.Duration {
	ds := make([]time.Duration, len(samples))
	for i, s := range samples {
		ds[i] = s.Setup
	}
	return median(ds)
}

// minimum returns the smallest duration: the least-interference
// estimate for deterministic work repeated under scheduler noise.
func minimum(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

func median(ds []time.Duration) time.Duration {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// Stat aggregates per-line-item values within a suite: the bars of the
// paper's figures are the suite mean, with error bars at the min and max
// line item (not measurement variance — Section VI-A's footnote).
type Stat struct {
	Mean, Min, Max float64
	N              int
}

// Aggregate computes a Stat over per-item values.
func Aggregate(values []float64) Stat {
	if len(values) == 0 {
		return Stat{}
	}
	st := Stat{Min: math.Inf(1), Max: math.Inf(-1), N: len(values)}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(values))
	return st
}

// Geomean computes a geometric mean (used for cross-suite summaries).
func Geomean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range values {
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values)))
}

// StartupTime measures T_E(Mnop): the engine's time to load and run the
// minimal module, repeated `runs` times (the paper runs it hundreds of
// times; benchmarks scale this down).
func StartupTime(cfg engine.Config, runs int) (time.Duration, error) {
	nop := workloads.Mnop()
	samples, err := Measure(cfg, nop, runs)
	if err != nil {
		return 0, err
	}
	return TotalMedian(samples), nil
}

// AdjustedTimes implements the paper's setup-time bounding:
//
//	setup ≈ T(m0) − T(Mnop)    (upper bound of per-module processing)
//	adjusted main ≈ T(m) − T(m0)
type AdjustedTimes struct {
	Startup  time.Duration // T(Mnop)
	SetupUB  time.Duration // T(m0) − T(Mnop)
	Adjusted time.Duration // T(m) − T(m0)
}

// MeasureAdjusted runs the full methodology for one item/config pair.
//
// The paper notes these quantities are "crude" approximations subject to
// sampling error, and that precision "could probably be improved with
// metrics reported directly from instrumenting engines". This harness
// does both: the black-box differences use minimum-over-runs estimators
// (the standard noise-robust choice), and because our engines are not
// black boxes, degenerate subtractions (setup noise exceeding main time)
// are floored by the directly instrumented setup and main times.
func MeasureAdjusted(cfg engine.Config, item workloads.Item, runs int, startup time.Duration) (AdjustedTimes, error) {
	m0Samples, err := Measure(cfg, item.BytesM0, runs)
	if err != nil {
		return AdjustedTimes{}, err
	}
	mSamples, err := Measure(cfg, item.Bytes, runs)
	if err != nil {
		return AdjustedTimes{}, err
	}
	tm0 := minTotal(m0Samples)
	tm := minTotal(mSamples)
	at := AdjustedTimes{
		Startup:  startup,
		SetupUB:  maxDur(tm0-startup, 0),
		Adjusted: maxDur(tm-tm0, time.Nanosecond),
	}
	// Instrumented floors: the adjusted main time cannot be below the
	// measured main time, and the setup upper bound cannot be below the
	// measured per-phase setup.
	if instMain := MainMedian(mSamples); at.Adjusted < instMain {
		at.Adjusted = instMain
	}
	if instSetup := SetupMedian(mSamples); at.SetupUB < instSetup {
		at.SetupUB = instSetup
	}
	return at, nil
}

func minTotal(samples []Sample) time.Duration {
	m := samples[0].Total
	for _, s := range samples[1:] {
		if s.Total < m {
			m = s.Total
		}
	}
	return m
}

func maxDur(d, lo time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	return d
}
