// Package wbin is the little-endian wire format shared by the
// persistent code cache: a tiny append-only writer and an
// error-latching reader. It exists so every serializer in the artifact
// pipeline (mach code, rewriter code, validation metadata, the cache
// envelope itself) agrees on one encoding and one failure discipline.
//
// The reader is designed for hostile input — a cache file may be
// truncated, bit-flipped or written by a different revision — so it
// never panics and never allocates proportionally to an attacker-chosen
// length prefix: every length is checked against the bytes actually
// remaining before any slice is made. The first malformed read latches
// an error; subsequent reads return zero values, so decoders can run
// straight-line and check Err once at the end.
package wbin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrMalformed is the latched error for any structurally invalid read.
var ErrMalformed = errors.New("wbin: malformed input")

// Writer accumulates an encoded artifact section.
type Writer struct {
	buf []byte
}

// NewWriter creates a writer with a capacity hint.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// Bytes returns the encoded bytes (owned by the writer).
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a fixed-width little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a zigzag-encoded signed varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes8 appends a length-prefixed byte slice.
func (w *Writer) Bytes8(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends bytes with no prefix (for fixed-size fields).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reserve appends n zero bytes and returns them for in-place filling,
// so fixed-width record encoders can write a whole block without a
// function call and append per field. The slice is only valid until the
// next write.
func (w *Writer) Reserve(n int) []byte {
	w.buf = append(w.buf, make([]byte, n)...)
	return w.buf[len(w.buf)-n:]
}

// Reader decodes wbin-encoded bytes. The zero value over a byte slice
// is usable; construct with NewReader.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader creates a reader over buf. The reader never mutates buf and
// copies everything it hands out, so buf may be an mmap'd region that
// is unmapped after decoding finishes.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the first malformed-input error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrMalformed, what, r.off)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail(fmt.Sprintf("need %d bytes, have %d", n, len(r.buf)-r.off))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a fixed-width little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Length reads a uvarint length prefix and validates it against the
// remaining input, so corrupt prefixes cannot drive huge allocations.
func (r *Reader) Length() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.Remaining()) || v > math.MaxInt32 {
		r.fail(fmt.Sprintf("length %d exceeds %d remaining bytes", v, r.Remaining()))
		return 0
	}
	return int(v)
}

// Count reads a uvarint element count for elements of at least elemSize
// encoded bytes each, bounding allocation by the remaining input.
func (r *Reader) Count(elemSize int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if v > uint64(r.Remaining()/elemSize) {
		r.fail(fmt.Sprintf("count %d exceeds remaining input", v))
		return 0
	}
	return int(v)
}

// Bytes8 reads a length-prefixed byte slice (copied out of the buffer).
func (r *Reader) Bytes8() []byte {
	n := r.Length()
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Length()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Raw reads n bytes without a prefix (copied out of the buffer).
func (r *Reader) Raw(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Take returns the next n bytes as a view into the input — NOT a copy —
// and advances past them, or nil (with the error latched) if fewer
// remain. It exists for fixed-width record blocks, where decoding
// through per-field reader calls dominates cold-start rehydration;
// callers must finish decoding the view into their own structures
// before the backing buffer goes away (e.g. an mmap'd artifact being
// unmapped).
func (r *Reader) Take(n int) []byte { return r.take(n) }
