package engine

import (
	"fmt"

	"wizgo/internal/rt"
)

// AttachProbe inserts a local probe at a bytecode offset of a function,
// the engine API behind Wizard's monitors (Section IV-D). If the
// function was already compiled, it is recompiled with the probe sites
// baked in; frames currently executing the old code tier down at their
// next checkpoint and continue in the interpreter, which honors probes
// at every instruction — instrumentation is never missed for long.
//
// Probes are strictly per-instance state: the recompilation replaces
// only this instance's code, and the invalidation hits this instance's
// private code view (mach.Code.InstanceView), so other instances
// sharing the same CompiledModule keep running uninstrumented at full
// speed.
func (inst *Instance) AttachProbe(funcIdx uint32, pc int, p rt.Probe) error {
	if int(funcIdx) >= len(inst.RT.Funcs) {
		return fmt.Errorf("engine: function index %d out of range", funcIdx)
	}
	f := inst.RT.Funcs[funcIdx]
	if f.IsHost() {
		return fmt.Errorf("engine: cannot probe host function %d", funcIdx)
	}
	if f.Owner != nil && f.Owner != inst.RT {
		// A cross-instance import is the exporter's function; probing it
		// here would mutate (and recompile under this engine's config)
		// state owned by another instance.
		return fmt.Errorf("engine: function %d is imported from another instance; attach the probe on its owner", funcIdx)
	}
	if pc < 0 || pc >= len(f.Decl.Body) {
		return fmt.Errorf("engine: probe pc %d out of range for function %d", pc, funcIdx)
	}
	if f.Probes == nil {
		f.Probes = rt.NewProbeSet(len(f.Decl.Body))
		inst.RT.ProbedFuncs++
	}
	f.Probes.Insert(pc, p)
	return inst.reinstallCode(f)
}

// DetachProbes removes all probes at a pc.
func (inst *Instance) DetachProbes(funcIdx uint32, pc int) error {
	f := inst.RT.Funcs[funcIdx]
	if f.Probes == nil {
		return nil
	}
	f.Probes.Remove(pc)
	if f.Probes.Empty() {
		f.Probes = nil
		inst.RT.ProbedFuncs--
	}
	return inst.reinstallCode(f)
}

// reinstallCode invalidates and (in JIT modes) recompiles a function
// after its probe set changed.
func (inst *Instance) reinstallCode(f *rt.FuncInst) error {
	if f.Compiled == nil {
		return nil
	}
	if osr, ok := f.Compiled.(OSRCode); ok {
		osr.Invalidate() // active frames deopt at their next checkpoint
	}
	f.Compiled = nil
	if inst.Engine.cfg.Mode != ModeInterp && !inst.Engine.cfg.LazyCompile {
		return inst.compileFunc(f)
	}
	return nil
}
