package engine

import "wizgo/internal/rt"
import "wizgo/internal/wasm"

// HostEntry pairs a host function with its declared signature.
type HostEntry struct {
	Type wasm.FuncType
	Fn   rt.HostFunc
}

// Linker resolves module imports to host functions.
type Linker struct {
	funcs map[string]HostEntry
}

// NewLinker returns an empty linker.
func NewLinker() *Linker {
	return &Linker{funcs: make(map[string]HostEntry)}
}

// Func registers a host function under module.name.
func (l *Linker) Func(module, name string, ft wasm.FuncType, fn rt.HostFunc) *Linker {
	l.funcs[module+"."+name] = HostEntry{Type: ft, Fn: fn}
	return l
}

func (l *Linker) resolve(module, name string) (HostEntry, bool) {
	e, ok := l.funcs[module+"."+name]
	return e, ok
}
