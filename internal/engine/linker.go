package engine

import (
	"fmt"
	"sync"

	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// externKey is the namespaced identity of a linker definition. Imports
// resolve per (module, name) pair; using a struct key (rather than a
// joined string) keeps ("a.b","c") and ("a","b.c") distinct.
type externKey struct {
	Module, Name string
}

func (k externKey) String() string { return k.Module + "." + k.Name }

// Linker resolves module imports to external values in named
// namespaces: host functions, host-provided memories/tables/globals,
// and — via DefineInstance — the exports of already-instantiated
// modules, which is how instance A imports B's memory and calls B's
// functions.
//
// A Linker is safe for concurrent use: definitions take a write lock,
// and engine.New snapshots the definitions under a read lock, so an
// engine never observes later mutations (registering with one linker
// while another goroutine instantiates through an engine built from it
// is race-free; the engine simply keeps resolving against the state it
// snapshotted).
type Linker struct {
	mu   sync.RWMutex
	defs map[externKey]rt.Extern
}

// NewLinker returns an empty linker.
func NewLinker() *Linker {
	return &Linker{defs: make(map[externKey]rt.Extern)}
}

func (l *Linker) define(module, name string, ext rt.Extern) error {
	key := externKey{module, name}
	switch ext.Kind {
	case wasm.ExternFunc:
		if (ext.HostFunc == nil) == (ext.Func == nil) {
			return fmt.Errorf("engine: %s: a function extern needs exactly one of HostFunc and Func", key)
		}
	case wasm.ExternMemory:
		if ext.Memory == nil {
			return fmt.Errorf("engine: %s: memory extern has no memory", key)
		}
	case wasm.ExternTable:
		if ext.Table == nil {
			return fmt.Errorf("engine: %s: table extern has no table", key)
		}
	case wasm.ExternGlobal:
		if ext.Global.Cell == nil {
			return fmt.Errorf("engine: %s: global extern has no cell", key)
		}
	default:
		return fmt.Errorf("engine: %s: unknown extern kind %d", key, ext.Kind)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.defs[key]; ok {
		return fmt.Errorf("engine: %s already defined as a %s", key, prev.Kind)
	}
	l.defs[key] = ext
	return nil
}

// Func registers a host function under module.name. It is the legacy
// chaining API: redefinitions panic (they always clobbered silently
// before; a panic surfaces the bug). New code should prefer DefineFunc.
func (l *Linker) Func(module, name string, ft wasm.FuncType, fn rt.HostFunc) *Linker {
	if err := l.DefineFunc(module, name, ft, fn); err != nil {
		panic(err)
	}
	return l
}

// DefineFunc registers a host function under module.name. The function
// runs in the calling instance's execution context.
func (l *Linker) DefineFunc(module, name string, ft wasm.FuncType, fn rt.HostFunc) error {
	return l.define(module, name, rt.Extern{
		Kind: wasm.ExternFunc, FuncType: ft, HostFunc: fn,
	})
}

// DefineMemory registers a linear memory under module.name. Instances
// importing it share the memory with every other importer (and with the
// host): writes are immediately visible to all of them.
func (l *Linker) DefineMemory(module, name string, mem *rt.Memory) error {
	return l.define(module, name, rt.Extern{Kind: wasm.ExternMemory, Memory: mem})
}

// DefineTable registers a funcref table under module.name. Tables taken
// from an Instance's exports carry the owner's function resolution
// (rt.Table.Funcs); a host-built table without one is only useful for
// null entries — call_indirect through an entry the table cannot
// resolve traps (TrapNullFunc) rather than dispatching.
func (l *Linker) DefineTable(module, name string, table *rt.Table) error {
	return l.define(module, name, rt.Extern{Kind: wasm.ExternTable, Table: table})
}

// DefineGlobal registers a global cell under module.name with its
// declared type and mutability. Importers alias the cell: a mutation by
// one instance is visible to all.
func (l *Linker) DefineGlobal(module, name string, t wasm.ValueType, mutable bool, cell *rt.GlobalSlot) error {
	return l.define(module, name, rt.Extern{
		Kind:   wasm.ExternGlobal,
		Global: rt.ExternGlobal{Type: t, Mutable: mutable, Cell: cell},
	})
}

// DefineExtern registers a pre-built external value under module.name.
func (l *Linker) DefineExtern(module, name string, ext rt.Extern) error {
	return l.define(module, name, ext)
}

// DefineInstance registers every export of an instantiated module under
// the given namespace, making them importable by modules instantiated
// later: functions dispatch into the exporting instance's execution
// context through the engine's cross-tier invoke path, and memories,
// tables and globals are shared (aliased, not copied) — instance A
// importing B's memory observes B's writes and vice versa.
//
// The exporting instance must outlive every importer, and — like all
// instance state — shared externals are not synchronized: two instances
// must not execute concurrently against a shared memory.
// DefineInstance is atomic: if any export's name collides with an
// existing definition, nothing is registered.
func (l *Linker) DefineInstance(namespace string, inst *Instance) error {
	exts := inst.exports()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ext := range exts {
		key := externKey{namespace, ext.name}
		if prev, ok := l.defs[key]; ok {
			return fmt.Errorf("engine: %s already defined as a %s", key, prev.Kind)
		}
	}
	for _, ext := range exts {
		l.defs[externKey{namespace, ext.name}] = ext.ext
	}
	return nil
}

// snapshot copies the current definitions; engine.New freezes the
// result so later linker mutations cannot race with instantiation.
func (l *Linker) snapshot() map[externKey]rt.Extern {
	l.mu.RLock()
	defer l.mu.RUnlock()
	defs := make(map[externKey]rt.Extern, len(l.defs))
	for k, v := range l.defs {
		defs[k] = v
	}
	return defs
}

// namedExtern is one exported external value of an instance.
type namedExtern struct {
	name string
	ext  rt.Extern
}

// exports enumerates the instance's exports as external values, the
// form DefineInstance registers.
func (inst *Instance) exports() []namedExtern {
	m := inst.RT.Module
	exts := make([]namedExtern, 0, len(m.Exports))
	for _, e := range m.Exports {
		switch e.Kind {
		case wasm.ExternFunc:
			f := inst.RT.Funcs[e.Idx]
			exts = append(exts, namedExtern{e.Name, rt.Extern{
				Kind: wasm.ExternFunc, FuncType: f.Type, Func: f,
			}})
		case wasm.ExternMemory:
			exts = append(exts, namedExtern{e.Name, rt.Extern{
				Kind: wasm.ExternMemory, Memory: inst.RT.Memory,
			}})
		case wasm.ExternTable:
			exts = append(exts, namedExtern{e.Name, rt.Extern{
				Kind: wasm.ExternTable, Table: inst.RT.Tables[e.Idx],
			}})
		case wasm.ExternGlobal:
			t, mut, err := m.GlobalTypeAt(e.Idx)
			if err != nil {
				continue // unreachable: exports are validated
			}
			exts = append(exts, namedExtern{e.Name, rt.Extern{
				Kind:   wasm.ExternGlobal,
				Global: rt.ExternGlobal{Type: t, Mutable: mut, Cell: inst.RT.Globals[e.Idx]},
			}})
		}
	}
	return exts
}
