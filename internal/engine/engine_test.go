package engine_test

import (
	"errors"
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// allConfigs returns every engine configuration a correctness test
// should pass: interpreter, all Figure 4 ablations, all Figure 5 tag
// modes, and the tiered configuration with aggressive OSR.
func allConfigs() []engine.Config {
	cfgs := []engine.Config{engines.WizardINT(), engines.WizardSPC(), engines.WizardTiered(2)}
	cfgs = append(cfgs, engines.Figure4Variants()...)
	cfgs = append(cfgs, engines.Figure5Variants()...)
	return cfgs
}

// runAll executes fn(name, args) on every configuration and checks the
// results agree with want.
func runAll(t *testing.T, bytes []byte, fname string, args []wasm.Value, want []wasm.Value) {
	t.Helper()
	for _, cfg := range allConfigs() {
		inst, err := engine.New(cfg, nil).Instantiate(bytes)
		if err != nil {
			t.Fatalf("%s: instantiate: %v", cfg.Name, err)
		}
		got, err := inst.Call(fname, args...)
		if err != nil {
			t.Fatalf("%s: call %s: %v", cfg.Name, fname, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: got %d results, want %d", cfg.Name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: result %d: got %v, want %v", cfg.Name, i, got[i], want[i])
			}
		}
	}
}

// trapAll checks every configuration traps with the given kind.
func trapAll(t *testing.T, bytes []byte, fname string, args []wasm.Value, want rt.TrapKind) {
	t.Helper()
	for _, cfg := range allConfigs() {
		inst, err := engine.New(cfg, nil).Instantiate(bytes)
		if err != nil {
			t.Fatalf("%s: instantiate: %v", cfg.Name, err)
		}
		_, err = inst.Call(fname, args...)
		var trap *rt.Trap
		if !errors.As(err, &trap) {
			t.Fatalf("%s: expected trap, got %v", cfg.Name, err)
		}
		if trap.Kind != want {
			t.Errorf("%s: trap kind %v, want %v", cfg.Name, trap.Kind, want)
		}
	}
}

func sig(params, results []wasm.ValueType) wasm.FuncType {
	return wasm.FuncType{Params: params, Results: results}
}

func TestAddFunction(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("add", sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add).End()
	b.Export("add", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "add",
		[]wasm.Value{wasm.ValI32(2), wasm.ValI32(40)},
		[]wasm.Value{wasm.ValI32(42)})
	runAll(t, bytes, "add",
		[]wasm.Value{wasm.ValI32(-1), wasm.ValI32(1)},
		[]wasm.Value{wasm.ValI32(0)})
}

func TestConstantsAndLocals(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("k", sig(nil, []wasm.ValueType{wasm.I32}))
	tmp := f.AddLocal(wasm.I32)
	f.I32Const(10).LocalSet(tmp)
	f.LocalGet(tmp).I32Const(32).Op(wasm.OpI32Add)
	f.End()
	b.Export("k", f.Idx)

	runAll(t, b.Encode(), "k", nil, []wasm.Value{wasm.ValI32(42)})
}

func TestLoopSum(t *testing.T) {
	// sum(n) = 0+1+...+n-1 via a loop with br_if back-edge.
	b := wasm.NewBuilder()
	f := b.NewFunc("sum", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	i := f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.I32)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalSet(i)
	f.LocalGet(i).LocalGet(0).Op(wasm.OpI32LtS)
	f.BrIf(0)
	f.End()
	f.LocalGet(acc)
	f.End()
	b.Export("sum", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "sum", []wasm.Value{wasm.ValI32(10)}, []wasm.Value{wasm.ValI32(45)})
	runAll(t, bytes, "sum", []wasm.Value{wasm.ValI32(1000)}, []wasm.Value{wasm.ValI32(499500)})
}

func TestIfElse(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("max", sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(0).LocalGet(1).Op(wasm.OpI32GtS)
	f.If(wasm.BlockVal(wasm.I32))
	f.LocalGet(0)
	f.Else()
	f.LocalGet(1)
	f.End()
	f.End()
	b.Export("max", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "max", []wasm.Value{wasm.ValI32(3), wasm.ValI32(7)}, []wasm.Value{wasm.ValI32(7)})
	runAll(t, bytes, "max", []wasm.Value{wasm.ValI32(9), wasm.ValI32(-7)}, []wasm.Value{wasm.ValI32(9)})
}

func TestIfWithoutElse(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("clamp", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(0).I32Const(100).Op(wasm.OpI32GtS)
	f.If(wasm.BlockEmpty)
	f.I32Const(100).LocalSet(0)
	f.End()
	f.LocalGet(0)
	f.End()
	b.Export("clamp", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "clamp", []wasm.Value{wasm.ValI32(300)}, []wasm.Value{wasm.ValI32(100)})
	runAll(t, bytes, "clamp", []wasm.Value{wasm.ValI32(42)}, []wasm.Value{wasm.ValI32(42)})
}

func TestRecursionFactorial(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("fact", sig([]wasm.ValueType{wasm.I64}, []wasm.ValueType{wasm.I64}))
	f.LocalGet(0).I64Const(2).Op(wasm.OpI64LtS)
	f.If(wasm.BlockVal(wasm.I64))
	f.I64Const(1)
	f.Else()
	f.LocalGet(0)
	f.LocalGet(0).I64Const(1).Op(wasm.OpI64Sub).Call(f.Idx)
	f.Op(wasm.OpI64Mul)
	f.End()
	f.End()
	b.Export("fact", f.Idx)

	runAll(t, b.Encode(), "fact", []wasm.Value{wasm.ValI64(10)}, []wasm.Value{wasm.ValI64(3628800)})
}

func TestBrTable(t *testing.T) {
	// dispatch(x): 0->10, 1->20, 2->30, default->99
	b := wasm.NewBuilder()
	f := b.NewFunc("dispatch", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.Block(wasm.BlockEmpty) // 3: default
	f.Block(wasm.BlockEmpty) // 2
	f.Block(wasm.BlockEmpty) // 1
	f.Block(wasm.BlockEmpty) // 0
	f.LocalGet(0)
	f.BrTable([]uint32{0, 1, 2}, 3)
	f.End()
	f.I32Const(10).Op(wasm.OpReturn)
	f.End()
	f.I32Const(20).Op(wasm.OpReturn)
	f.End()
	f.I32Const(30).Op(wasm.OpReturn)
	f.End()
	f.I32Const(99)
	f.End()
	b.Export("dispatch", f.Idx)
	bytes := b.Encode()

	for _, tc := range []struct{ in, out int32 }{{0, 10}, {1, 20}, {2, 30}, {3, 99}, {-1, 99}, {1000, 99}} {
		runAll(t, bytes, "dispatch", []wasm.Value{wasm.ValI32(tc.in)}, []wasm.Value{wasm.ValI32(tc.out)})
	}
}

func TestBlockWithResultAndBr(t *testing.T) {
	// block (result i32): push 5; br 0 carrying it; unreachable tail.
	b := wasm.NewBuilder()
	f := b.NewFunc("brval", sig(nil, []wasm.ValueType{wasm.I32}))
	f.Block(wasm.BlockVal(wasm.I32))
	f.I32Const(5)
	f.Br(0)
	f.End()
	f.I32Const(1).Op(wasm.OpI32Add)
	f.End()
	b.Export("brval", f.Idx)

	runAll(t, b.Encode(), "brval", nil, []wasm.Value{wasm.ValI32(6)})
}

func TestMemoryOps(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(1, 2)
	f := b.NewFunc("mem", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	// store x at 16, load back with offset addressing, add i8 view.
	f.I32Const(16).LocalGet(0).Store(wasm.OpI32Store, 0)
	f.I32Const(0).Load(wasm.OpI32Load, 16)
	f.I32Const(16).Load(wasm.OpI32Load8U, 0)
	f.Op(wasm.OpI32Add)
	f.End()
	b.Export("mem", f.Idx)

	runAll(t, b.Encode(), "mem", []wasm.Value{wasm.ValI32(0x01020304)},
		[]wasm.Value{wasm.ValI32(0x01020304 + 0x04)})
}

func TestMemoryGrowSize(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(1, 4)
	f := b.NewFunc("grow", sig(nil, []wasm.ValueType{wasm.I32}))
	f.I32Const(2).MemoryGrow()  // old size = 1
	f.MemorySize()              // new size = 3
	f.Op(wasm.OpI32Add)         // 4
	f.I32Const(10).MemoryGrow() // fails: -1
	f.Op(wasm.OpI32Add)         // 3
	f.End()
	b.Export("grow", f.Idx)

	runAll(t, b.Encode(), "grow", nil, []wasm.Value{wasm.ValI32(3)})
}

func TestMemoryCopyFill(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("cf", sig(nil, []wasm.ValueType{wasm.I32}))
	// fill [0,8) with 7; copy [0,8) to [8,16); read back byte 12.
	f.I32Const(0).I32Const(7).I32Const(8).MemoryFill()
	f.I32Const(8).I32Const(0).I32Const(8).MemoryCopy()
	f.I32Const(12).Load(wasm.OpI32Load8U, 0)
	f.End()
	b.Export("cf", f.Idx)

	runAll(t, b.Encode(), "cf", nil, []wasm.Value{wasm.ValI32(7)})
}

func TestGlobals(t *testing.T) {
	b := wasm.NewBuilder()
	g := b.AddGlobal(wasm.I64, true, wasm.ValI64(5))
	f := b.NewFunc("bump", sig(nil, []wasm.ValueType{wasm.I64}))
	f.GlobalGet(g).I64Const(10).Op(wasm.OpI64Add).GlobalSet(g)
	f.GlobalGet(g)
	f.End()
	b.Export("bump", f.Idx)

	runAll(t, b.Encode(), "bump", nil, []wasm.Value{wasm.ValI64(15)})
}

func TestCallIndirect(t *testing.T) {
	b := wasm.NewBuilder()
	ft := sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	tidx := b.AddType(ft)
	double := b.NewFunc("double", ft)
	double.LocalGet(0).I32Const(2).Op(wasm.OpI32Mul).End()
	square := b.NewFunc("square", ft)
	square.LocalGet(0).LocalGet(0).Op(wasm.OpI32Mul).End()
	b.AddTable(2)
	b.AddElem(0, []uint32{double.Idx, square.Idx})

	f := b.NewFunc("apply", sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(1).LocalGet(0).CallIndirect(tidx)
	f.End()
	b.Export("apply", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "apply", []wasm.Value{wasm.ValI32(0), wasm.ValI32(21)}, []wasm.Value{wasm.ValI32(42)})
	runAll(t, bytes, "apply", []wasm.Value{wasm.ValI32(1), wasm.ValI32(9)}, []wasm.Value{wasm.ValI32(81)})
	trapAll(t, bytes, "apply", []wasm.Value{wasm.ValI32(7), wasm.ValI32(1)}, rt.TrapOOBTable)
}

func TestSelect(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("sel", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.F64}))
	f.F64Const(1.5).F64Const(2.5).LocalGet(0).Op(wasm.OpSelect)
	f.End()
	b.Export("sel", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "sel", []wasm.Value{wasm.ValI32(1)}, []wasm.Value{wasm.ValF64(1.5)})
	runAll(t, bytes, "sel", []wasm.Value{wasm.ValI32(0)}, []wasm.Value{wasm.ValF64(2.5)})
}

func TestFloatArith(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("fma", sig([]wasm.ValueType{wasm.F64, wasm.F64, wasm.F64}, []wasm.ValueType{wasm.F64}))
	f.LocalGet(0).LocalGet(1).Op(wasm.OpF64Mul).LocalGet(2).Op(wasm.OpF64Add)
	f.Op(wasm.OpF64Sqrt)
	f.End()
	b.Export("fma", f.Idx)

	runAll(t, b.Encode(), "fma",
		[]wasm.Value{wasm.ValF64(3), wasm.ValF64(5), wasm.ValF64(1)},
		[]wasm.Value{wasm.ValF64(4)})
}

func TestMultiValue(t *testing.T) {
	b := wasm.NewBuilder()
	ft2 := sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32, wasm.I32})
	divmod := b.NewFunc("divmod", sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32, wasm.I32}))
	divmod.LocalGet(0).LocalGet(1).Op(wasm.OpI32DivU)
	divmod.LocalGet(0).LocalGet(1).Op(wasm.OpI32RemU)
	divmod.End()
	b.Export("divmod", divmod.Idx)

	// A multi-value block: (i32) -> (i32 i32) duplicating through a block.
	tidx := b.AddType(ft2)
	f := b.NewFunc("mv", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(0)
	f.Block(wasm.BlockFunc(tidx))
	f.I32Const(3).Op(wasm.OpI32Mul)
	f.I32Const(7)
	f.End()
	f.Op(wasm.OpI32Add)
	f.End()
	b.Export("mv", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "divmod", []wasm.Value{wasm.ValI32(17), wasm.ValI32(5)},
		[]wasm.Value{wasm.ValI32(3), wasm.ValI32(2)})
	runAll(t, bytes, "mv", []wasm.Value{wasm.ValI32(5)}, []wasm.Value{wasm.ValI32(22)})
}

func TestTrapDivByZero(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("div", sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(0).LocalGet(1).Op(wasm.OpI32DivS).End()
	b.Export("div", f.Idx)
	bytes := b.Encode()

	trapAll(t, bytes, "div", []wasm.Value{wasm.ValI32(1), wasm.ValI32(0)}, rt.TrapDivByZero)
	trapAll(t, bytes, "div", []wasm.Value{wasm.ValI32(-2147483648), wasm.ValI32(-1)}, rt.TrapIntOverflow)
	runAll(t, bytes, "div", []wasm.Value{wasm.ValI32(7), wasm.ValI32(-2)}, []wasm.Value{wasm.ValI32(-3)})
}

func TestTrapOOB(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("peek", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(0).Load(wasm.OpI32Load, 0).End()
	b.Export("peek", f.Idx)
	bytes := b.Encode()

	trapAll(t, bytes, "peek", []wasm.Value{wasm.ValI32(65536)}, rt.TrapOOBMemory)
	trapAll(t, bytes, "peek", []wasm.Value{wasm.ValI32(65533)}, rt.TrapOOBMemory)
	trapAll(t, bytes, "peek", []wasm.Value{wasm.ValI32(-4)}, rt.TrapOOBMemory)
	runAll(t, bytes, "peek", []wasm.Value{wasm.ValI32(65532)}, []wasm.Value{wasm.ValI32(0)})
}

func TestTrapUnreachable(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("boom", sig(nil, nil))
	f.Op(wasm.OpUnreachable).End()
	b.Export("boom", f.Idx)

	trapAll(t, b.Encode(), "boom", nil, rt.TrapUnreachable)
}

func TestTrapStackOverflow(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("rec", sig(nil, nil))
	f.Call(f.Idx).End()
	b.Export("rec", f.Idx)

	trapAll(t, b.Encode(), "rec", nil, rt.TrapStackOverflow)
}

func TestHostCall(t *testing.T) {
	b := wasm.NewBuilder()
	addft := sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	hidx := b.ImportFunc("env", "host_add", addft)
	f := b.NewFunc("go", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(0).I32Const(100).Call(hidx).End()
	b.Export("go", f.Idx)
	bytes := b.Encode()

	linker := engine.NewLinker().Func("env", "host_add", addft,
		func(ctx *rt.Context, args, results []uint64) error {
			results[0] = wasm.BoxI32(wasm.UnboxI32(args[0]) + wasm.UnboxI32(args[1]))
			return nil
		})

	for _, cfg := range allConfigs() {
		inst, err := engine.New(cfg, linker).Instantiate(bytes)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		got, err := inst.Call("go", wasm.ValI32(7))
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if got[0].I32() != 107 {
			t.Errorf("%s: got %v, want 107", cfg.Name, got[0])
		}
	}
}

func TestConversionOps(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("conv", sig([]wasm.ValueType{wasm.F64}, []wasm.ValueType{wasm.I64}))
	f.LocalGet(0).Op(wasm.OpI32TruncF64S)
	f.Op(wasm.OpI64ExtendI32S)
	f.End()
	b.Export("conv", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "conv", []wasm.Value{wasm.ValF64(-3.7)}, []wasm.Value{wasm.ValI64(-3)})
	trapAll(t, bytes, "conv", []wasm.Value{wasm.ValF64(3e10)}, rt.TrapIntOverflow)
}

func TestNestedLoops(t *testing.T) {
	// Count pairs (i,j) with i*j odd for i,j < n — exercises nested
	// loops, register pressure across merges, and compare fusion.
	b := wasm.NewBuilder()
	f := b.NewFunc("pairs", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	i := f.AddLocal(wasm.I32)
	j := f.AddLocal(wasm.I32)
	cnt := f.AddLocal(wasm.I32)
	f.Block(wasm.BlockEmpty)
	f.LocalGet(0).I32Const(0).Op(wasm.OpI32LeS).BrIf(0)
	f.Loop(wasm.BlockEmpty)
	f.I32Const(0).LocalSet(j)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(i).LocalGet(j).Op(wasm.OpI32Mul).I32Const(1).Op(wasm.OpI32And)
	f.If(wasm.BlockEmpty)
	f.LocalGet(cnt).I32Const(1).Op(wasm.OpI32Add).LocalSet(cnt)
	f.End()
	f.LocalGet(j).I32Const(1).Op(wasm.OpI32Add).LocalTee(j)
	f.LocalGet(0).Op(wasm.OpI32LtS).BrIf(0)
	f.End()
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
	f.LocalGet(0).Op(wasm.OpI32LtS).BrIf(0)
	f.End()
	f.End()
	f.LocalGet(cnt)
	f.End()
	b.Export("pairs", f.Idx)

	// odd i in [0,10): 1,3,5,7,9 → 5 values; pairs = 25.
	runAll(t, b.Encode(), "pairs", []wasm.Value{wasm.ValI32(10)}, []wasm.Value{wasm.ValI32(25)})
}

func TestReferenceValues(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("isnull", sig([]wasm.ValueType{wasm.ExternRef}, []wasm.ValueType{wasm.I32}))
	f.LocalGet(0).Op(wasm.OpRefIsNull).End()
	b.Export("isnull", f.Idx)
	bytes := b.Encode()

	runAll(t, bytes, "isnull", []wasm.Value{wasm.ValRef(wasm.NullRef)}, []wasm.Value{wasm.ValI32(1)})
	runAll(t, bytes, "isnull", []wasm.Value{wasm.ValRef(33)}, []wasm.Value{wasm.ValI32(0)})
}

func TestTieredOSR(t *testing.T) {
	// A long-running loop in a single call: tier-up must happen mid-loop
	// and produce the same result.
	b := wasm.NewBuilder()
	f := b.NewFunc("spin", sig([]wasm.ValueType{wasm.I64}, []wasm.ValueType{wasm.I64}))
	i := f.AddLocal(wasm.I64)
	acc := f.AddLocal(wasm.I64)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(acc).LocalGet(i).I64Const(3).Op(wasm.OpI64Mul).Op(wasm.OpI64Add).LocalSet(acc)
	f.LocalGet(i).I64Const(1).Op(wasm.OpI64Add).LocalTee(i)
	f.LocalGet(0).Op(wasm.OpI64LtS).BrIf(0)
	f.End()
	f.LocalGet(acc)
	f.End()
	b.Export("spin", f.Idx)
	bytes := b.Encode()

	var want int64 = 0
	for k := int64(0); k < 100000; k++ {
		want += 3 * k
	}

	cfg := engines.WizardTiered(10)
	inst, err := engine.New(cfg, nil).Instantiate(bytes)
	if err != nil {
		t.Fatal(err)
	}
	inst.Ctx.CountStats = true
	got, err := inst.Call("spin", wasm.ValI64(100000))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I64() != want {
		t.Fatalf("got %d, want %d", got[0].I64(), want)
	}
	if inst.Ctx.Stats.OSRUps == 0 {
		t.Error("expected at least one OSR tier-up")
	}
	if inst.Ctx.Stats.MachOps == 0 {
		t.Error("expected compiled code to execute after OSR")
	}
}
