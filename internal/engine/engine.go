// Package engine is the public face of the virtual machine: it loads and
// validates modules, links imports, instantiates memories/tables/globals,
// selects and orchestrates execution tiers (interpreter, baseline
// compiler, optimizing compiler), and performs tier-up (OSR) and
// tier-down (deopt) by rewriting execution frames on the shared value
// stack — the integration story of the paper's Section IV.
//
// Module setup is a two-phase pipeline. Engine.Compile performs the
// per-module work — decode, validate, per-function tier compilation
// (fanned out over a worker pool) — once, yielding an immutable,
// goroutine-safe CompiledModule. CompiledModule.Instantiate then only
// links imports, allocates memories/tables/globals and a value stack,
// and runs the start function, so one compiled artifact serves many
// concurrent instances. Engine.Instantiate composes the two for callers
// that load a module exactly once, and a codecache.Cache plugged into
// Config memoizes Compile across engines of the same configuration.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/faultinject"
	"wizgo/internal/interp"
	"wizgo/internal/rt"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// PointHostCall fires just before a host function runs, inside the
// panic-containment region, so an armed Fault{Err}, Fault{Panic} or
// Fault{Delay} exercises the host-error, host-panic-poisoning and
// slow-host paths respectively.
var PointHostCall = faultinject.Register("engine.host.call")

// Mode selects the execution strategy.
type Mode int

const (
	// ModeInterp runs everything in the in-place interpreter.
	ModeInterp Mode = iota
	// ModeJIT compiles every function at load time and never interprets.
	ModeJIT
	// ModeTiered starts in the interpreter and tiers up hot functions
	// (call-count threshold) and hot loops (OSR at back-edges).
	ModeTiered
)

func (m Mode) String() string {
	switch m {
	case ModeInterp:
		return "interp"
	case ModeJIT:
		return "jit"
	case ModeTiered:
		return "tiered"
	}
	return "mode?"
}

// Tier is a compiler that can translate functions for this engine.
// Adapters in internal/engines wrap the single-pass compiler, the
// optimizing compiler and the rewriting translator as Tiers.
type Tier interface {
	Name() string
	Compile(m *wasm.Module, fidx uint32, decl *wasm.Func, info *validate.FuncInfo,
		probes *rt.ProbeSet) (Code, error)
}

// Code is executable code produced by a Tier.
type Code interface {
	Run(ctx *rt.Context, f *rt.FuncInst, vfp int) (rt.Status, error)
	// Bytes reports the emitted code size for compile-throughput
	// accounting.
	Bytes() int
}

// OSRCode is implemented by code objects that support entering at a loop
// header with a canonical frame (tier-up) and invalidation (tier-down).
type OSRCode interface {
	Code
	OSREntry(wasmPC int) (int, bool)
	RunFrom(ctx *rt.Context, f *rt.FuncInst, vfp, machPC int) (rt.Status, error)
	Invalidate()
}

// Config describes an engine configuration ("tier preset").
type Config struct {
	Name string
	Mode Mode
	// Tier compiles functions in ModeJIT/ModeTiered.
	Tier Tier
	// LazyCompile defers compilation to first call (JSC-style laziness,
	// a confounder the paper discusses); default is eager compilation
	// at instantiation, which is what setup-time measurements assume.
	LazyCompile bool
	// OSRThreshold is the loop back-edge count before tier-up (ModeTiered).
	OSRThreshold int
	// CallThreshold is the call count before a function is compiled
	// (ModeTiered with LazyCompile).
	CallThreshold int
	// Tags allocates the value-tag array alongside the value stack.
	Tags bool
	// StackSlots sizes the value stack (default 1<<20 slots).
	StackSlots int
	// MaxDepth bounds call nesting (default 10000).
	MaxDepth int
	// SkipValidation models engines that do not verify bytecode (the
	// paper found wasm3 does not!). Setup time then excludes a
	// validation pass, but the sidetable must still be built, so this
	// only skips module-level checks in our implementation.
	SkipValidation bool
	// NoAnalysis disables the static-analysis pass (internal/analysis):
	// no facts are attached to FuncInfos, so every executor keeps its
	// full dynamic bounds checks and interrupt polls. The default (zero
	// value) runs the analysis. The differential soundness suite runs
	// each engine in both states and compares results, traps, and final
	// memory.
	NoAnalysis bool
	// CompileWorkers bounds the worker pool Compile fans per-function
	// tier compilation out over (functions are independent compilation
	// units). 0 means GOMAXPROCS; 1 forces serial compilation, the
	// behavior the paper's single-threaded setup measurements assume.
	CompileWorkers int
	// Cache, when non-nil, memoizes Compile results by module content
	// hash and configuration fingerprint, so repeated loads of the same
	// module pay only the instantiation (link) cost.
	Cache *codecache.Cache
	// DiskCache, when non-nil, persists compiled artifacts below the
	// in-memory cache (which New creates on demand if Cache is nil): a
	// cold process whose cache directory is warm rehydrates compiled
	// modules from disk — verified, via mmap where available — without
	// running the compiler at all. Open one with OpenDiskCache.
	DiskCache *codecache.DiskStore
}

// Timings records per-phase setup costs for the compile-speed and
// SQ-space experiments (Figures 8–10).
type Timings struct {
	Decode   time.Duration
	Validate time.Duration
	// Analyze is the static-analysis pass (internal/analysis) — fact
	// derivation between validation and tier compilation. Zero when
	// Config.NoAnalysis is set or the module rehydrated from disk
	// (facts travel inside the artifact).
	Analyze time.Duration
	Compile time.Duration
	// Rehydrate is the time spent materializing a persisted artifact's
	// sidetables and code sections on a disk-cache load — the pipeline
	// work that replaces Validate+Compile on the zero-compile path.
	// Zero on a freshly compiled module.
	Rehydrate time.Duration
	// CodeBytes is the total size of emitted machine code.
	CodeBytes int
	// ModuleBytes is the binary module size.
	ModuleBytes int
}

// Setup returns total per-module processing time before execution.
func (t Timings) Setup() time.Duration {
	return t.Decode + t.Validate + t.Analyze + t.Compile + t.Rehydrate
}

// Engine creates instances under one configuration. An Engine is safe
// for concurrent use once constructed: New snapshots the linker's
// definitions, so even a linker that keeps being mutated on another
// goroutine cannot race with Compile or Instantiate — the engine
// resolves imports against the frozen snapshot.
type Engine struct {
	cfg Config
	// externs is the frozen linker snapshot taken by New.
	externs map[externKey]rt.Extern
	// stacks recycles value stacks between instances. Allocating (and,
	// on reuse, re-zeroing) the multi-megabyte slot and tag arrays is
	// by far the largest per-instance cost, so a serving loop that
	// Releases finished instances instantiates in microseconds. Reuse
	// without zeroing is sound: every executor zeroes and tags declared
	// locals at frame entry, operand slots are written before they are
	// read (a validation guarantee), and stack walkers only scan live
	// frame ranges [VFP, SP).
	stacks sync.Pool
	// compileCalls counts tier compiler invocations (per function, eager
	// and lazy alike). The cold-start acceptance check is built on it: a
	// warm disk cache must serve a cold process's first request with
	// this counter still at zero.
	compileCalls atomic.Uint64
	// fingerprint is cfg.Fingerprint(), precomputed at New when a cache
	// is configured so the reflective rendering stays off the Compile
	// fast path.
	fingerprint string
}

// New creates an engine. A nil linker provides no host imports.
func New(cfg Config, linker *Linker) *Engine {
	if cfg.StackSlots == 0 {
		cfg.StackSlots = 1 << 20
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 10000
	}
	if linker == nil {
		linker = NewLinker()
	}
	if cfg.DiskCache != nil {
		// The disk tier hangs below an in-memory cache; compile results
		// promote through it. A caller that supplied no memory tier
		// gets a private default one.
		if cfg.Cache == nil {
			cfg.Cache = codecache.New(codecache.Options{})
		}
		cfg.Cache.SetDisk(cfg.DiskCache)
	}
	e := &Engine{cfg: cfg, externs: linker.snapshot()}
	if cfg.Cache != nil {
		// The configuration fingerprint is reflective (%#v over the tier)
		// and costs tens of microseconds on its first rendering — real
		// money on the cold-start path, where the first Compile IS the
		// request. It is invariant for the engine's lifetime, so pay it
		// here, at construction time, not per request.
		e.fingerprint = cfg.Fingerprint()
	}
	e.stacks.New = func() any {
		return rt.NewValueStack(e.cfg.StackSlots, e.cfg.Tags)
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// CompileCalls returns how many times this engine invoked its tier
// compiler on a function — eager compiles, lazy compiles and probe
// recompiles alike. A process serving entirely from warm caches keeps
// it at zero.
func (e *Engine) CompileCalls() uint64 { return e.compileCalls.Load() }

// Instance is an instantiated module bound to an execution context.
type Instance struct {
	Engine  *Engine
	RT      *rt.Instance
	Ctx     *rt.Context
	Infos   []validate.FuncInfo
	Timings Timings

	// released latches the first Release so a double release (including
	// a racing one) cannot push the same value stack into the engine's
	// pool twice — two later instantiations would then share a stack.
	released atomic.Bool
}

// Instantiate is the single-shot compatibility path: Compile followed
// by CompiledModule.Instantiate. Callers that load a module more than
// once should hold on to the CompiledModule (or configure a Cache) and
// instantiate from it, paying decode/validate/compile only once.
func (e *Engine) Instantiate(bytes []byte) (*Instance, error) {
	cm, err := e.Compile(bytes)
	if err != nil {
		return nil, err
	}
	return cm.Instantiate()
}

// resolveImport looks an import up in the engine's frozen linker
// snapshot and checks the extern kind.
func (e *Engine) resolveImport(imp wasm.Import) (rt.Extern, error) {
	ext, ok := e.externs[externKey{imp.Module, imp.Name}]
	if !ok {
		return rt.Extern{}, fmt.Errorf("engine: unresolved import %s.%s (%s)",
			imp.Module, imp.Name, imp.Kind)
	}
	if ext.Kind != imp.Kind {
		return rt.Extern{}, fmt.Errorf("engine: import %s.%s extern kind mismatch: import requires a %s, definition provides a %s",
			imp.Module, imp.Name, imp.Kind, ext.Kind)
	}
	return ext, nil
}

// link builds the runtime instance: resolve imports of all four extern
// kinds against the engine's frozen linker snapshot, then allocate the
// instance's own memory, globals and tables. Imported externals occupy
// the low indices of their index spaces and are aliased, never copied —
// an imported memory IS the exporter's memory.
func (e *Engine) link(m *wasm.Module, infos []validate.FuncInfo) (*Instance, error) {
	ri := &rt.Instance{Module: m}

	// Index spaces: imports first, in import-section order.
	for _, imp := range m.Imports {
		ext, err := e.resolveImport(imp)
		if err != nil {
			return nil, err
		}
		switch imp.Kind {
		case wasm.ImportFunc:
			ft := m.Types[imp.TypeIdx]
			if !ext.FuncType.Equal(ft) {
				return nil, fmt.Errorf("engine: import %s.%s signature mismatch: have %v, want %v",
					imp.Module, imp.Name, ext.FuncType, ft)
			}
			if ext.Func != nil {
				// Cross-instance import: share the exporter's resolved
				// function. Its Owner differs from ri, which makes the
				// invoke dispatcher bridge calls into the owner's context.
				ri.Funcs = append(ri.Funcs, ext.Func)
			} else {
				ri.Funcs = append(ri.Funcs, &rt.FuncInst{
					Idx: uint32(len(ri.Funcs)), Type: ft,
					Name: imp.Module + "." + imp.Name, Host: ext.HostFunc,
					Owner: ri,
				})
			}
		case wasm.ImportMemory:
			mem := ext.Memory
			if mem.Pages() < imp.Lim.Min {
				return nil, fmt.Errorf("engine: import %s.%s: memory has %d pages, import requires at least %d",
					imp.Module, imp.Name, mem.Pages(), imp.Lim.Min)
			}
			if imp.Lim.HasMax && mem.MaxPages > imp.Lim.Max {
				return nil, fmt.Errorf("engine: import %s.%s: memory may grow to %d pages, import caps it at %d",
					imp.Module, imp.Name, mem.MaxPages, imp.Lim.Max)
			}
			ri.Memory = mem
		case wasm.ImportTable:
			tbl := ext.Table
			if uint32(len(tbl.Elems)) < imp.Lim.Min {
				return nil, fmt.Errorf("engine: import %s.%s: table has %d elements, import requires at least %d",
					imp.Module, imp.Name, len(tbl.Elems), imp.Lim.Min)
			}
			if imp.Lim.HasMax && tbl.MaxElems > imp.Lim.Max {
				return nil, fmt.Errorf("engine: import %s.%s: table may grow to %d elements, import caps it at %d",
					imp.Module, imp.Name, tbl.MaxElems, imp.Lim.Max)
			}
			ri.Tables = append(ri.Tables, tbl)
			ri.ImportedTables++
		case wasm.ImportGlobal:
			g := ext.Global
			if g.Type != imp.GlobalType || g.Mutable != imp.Mutable {
				return nil, fmt.Errorf("engine: import %s.%s global type mismatch: have %s (mutable=%v), want %s (mutable=%v)",
					imp.Module, imp.Name, g.Type, g.Mutable, imp.GlobalType, imp.Mutable)
			}
			ri.Globals = append(ri.Globals, g.Cell)
			ri.ImportedGlobals++
		}
	}
	localIdx := 0
	for i := range m.Funcs {
		f := &m.Funcs[i]
		idx := uint32(len(ri.Funcs))
		ri.Funcs = append(ri.Funcs, &rt.FuncInst{
			Idx: idx, Type: m.Types[f.TypeIdx], Name: m.FuncName(idx),
			Decl: f, Info: &infos[localIdx], Owner: ri,
		})
		localIdx++
	}

	if ri.Memory == nil {
		if len(m.Memories) > 0 {
			ri.Memory = rt.NewMemory(m.Memories[0])
		} else {
			ri.Memory = &rt.Memory{} // zero-size memory simplifies executors
		}
		ri.OwnsMemory = true
	}
	for di, d := range m.Datas {
		if end := int(d.Offset) + len(d.Bytes); end > len(ri.Memory.Data) {
			return nil, fmt.Errorf("engine: data segment %d: [%#x, %#x) overflows %d-byte memory",
				di, d.Offset, end, len(ri.Memory.Data))
		}
		// Mark keeps an imported (possibly write-tracked) memory's dirty
		// accounting sound; it is a no-op on untracked memories.
		ri.Memory.Mark(d.Offset, 0, len(d.Bytes))
		copy(ri.Memory.Data[d.Offset:], d.Bytes)
	}

	for _, g := range m.Globals {
		ri.Globals = append(ri.Globals, &rt.GlobalSlot{
			Bits: g.Init.Bits, Tag: wasm.TagOf(g.Type),
		})
	}

	for _, t := range m.Tables {
		// Owned tables resolve their handles in this instance's function
		// index space; ri.Funcs is complete by now.
		tbl := rt.NewTable(t.Lim)
		tbl.Funcs = ri.Funcs
		ri.Tables = append(ri.Tables, tbl)
	}
	for ei, el := range m.Elems {
		if int(el.TableIdx) < ri.ImportedTables {
			// Handles are owner-relative, so a local segment's function
			// indices would dangle in the exporter's index space.
			return nil, fmt.Errorf("engine: element segment %d: cannot initialize imported table %d",
				ei, el.TableIdx)
		}
		tbl := ri.Tables[el.TableIdx]
		if end := int(el.Offset) + len(el.Funcs); end > len(tbl.Elems) {
			return nil, fmt.Errorf("engine: element segment %d: [%d, %d) overflows %d-element table %d",
				ei, el.Offset, end, len(tbl.Elems), el.TableIdx)
		}
		for i, fidx := range el.Funcs {
			tbl.Elems[int(el.Offset)+i] = uint64(fidx) + 1
		}
	}

	ctx := &rt.Context{
		Stack:        e.stacks.Get().(*rt.ValueStack),
		Inst:         ri,
		MaxDepth:     e.cfg.MaxDepth,
		OSRThreshold: e.cfg.OSRThreshold,
		Interrupt:    new(rt.InterruptFlag),
	}
	inst := &Instance{Engine: e, RT: ri, Ctx: ctx, Infos: infos}
	ctx.Invoke = inst.invoke
	ri.Ctx = ctx
	return inst, nil
}

func (inst *Instance) compileFunc(f *rt.FuncInst) error {
	inst.Engine.compileCalls.Add(1)
	code, err := inst.Engine.cfg.Tier.Compile(inst.RT.Module, f.Idx, f.Decl, f.Info, f.Probes)
	if err != nil {
		return err
	}
	f.Compiled = code
	return nil
}

// invoke is the cross-tier call dispatcher installed on the context.
// Arguments are at argBase on the value stack; results replace them.
func (inst *Instance) invoke(f *rt.FuncInst, argBase int) error {
	e := inst.Engine
	ctx := inst.Ctx

	// Function entry is the second interruption point (back-edges are
	// the first): a cancelled context unwinds before any new frame runs.
	if ctx.Interrupted() {
		return rt.NewTrap(rt.TrapInterrupted, f.Idx, 0)
	}

	// A function owned by another instance (a cross-instance import, or
	// an entry of an imported table) runs in its owner's execution
	// context, not ours. The bridged call charges its entry fuel in the
	// owner's dispatcher, so it is accounted exactly once.
	if f.Owner != nil && f.Owner != inst.RT {
		return crossInvoke(ctx, f, argBase)
	}

	// Function entry is also a fuel checkpoint: every call — guest or
	// host — costs one unit, so recursion without loops still exhausts
	// a budget deterministically in every tier.
	if ctx.Fuel > 0 && !ctx.FuelCheckpoint() {
		return rt.NewTrap(rt.TrapFuelExhausted, f.Idx, 0)
	}

	if f.Host != nil {
		if err := ctx.CheckStack(argBase, len(f.Type.Params)+len(f.Type.Results), f.Idx); err != nil {
			return err
		}
		args := ctx.Stack.Slots[argBase : argBase+len(f.Type.Params)]
		results := ctx.Stack.Slots[argBase : argBase+len(f.Type.Results)]
		err := callHost(ctx, f, args, results)
		// Host functions can write linear memory through ctx without the
		// executors' Mark hooks seeing it; declare the memory dirty so a
		// pooled reset falls back to a full restore rather than leaking
		// host-written bytes across requests. Free when tracking is off.
		ctx.Inst.Memory.MarkAll()
		if err != nil {
			// A host function that already produced a trap (e.g. by
			// calling back into guest code) propagates it unchanged, so
			// kinds like TrapInterrupted stay observable at the top.
			var t *rt.Trap
			if errors.As(err, &t) {
				return err
			}
			return rt.NewTrapWrapped(rt.TrapHostError, f.Idx, 0, err)
		}
		if ctx.Stack.Tags != nil {
			for i, t := range f.Type.Results {
				ctx.Stack.Tags[argBase+i] = wasm.TagOf(t)
			}
		}
		return nil
	}

	// Lazy compilation / tier-up by call count.
	if f.Compiled == nil && e.cfg.Mode != ModeInterp && e.cfg.LazyCompile {
		f.CallCount++
		if e.cfg.Mode == ModeJIT || f.CallCount >= e.cfg.CallThreshold {
			if err := inst.compileFunc(f); err != nil {
				return err
			}
		}
	}

	var status rt.Status
	var err error
	if code, ok := f.Compiled.(Code); ok && e.cfg.Mode != ModeInterp {
		status, err = code.Run(ctx, f, argBase)
	} else {
		status, err = interp.Call(ctx, f, argBase)
	}

	// Tier transitions bounce the same frame between executors until it
	// completes — the frame itself never moves (Figure 2's design).
	for err == nil && status != rt.Done {
		switch status {
		case rt.OSRUp:
			if f.Compiled == nil {
				if cerr := inst.compileFunc(f); cerr != nil {
					return cerr
				}
			}
			osr, ok := f.Compiled.(OSRCode)
			if !ok {
				status, err = inst.resumeInterp(f, argBase)
				continue
			}
			machPC, found := osr.OSREntry(ctx.Resume.PC)
			if !found {
				status, err = inst.resumeInterp(f, argBase)
				continue
			}
			status, err = osr.RunFrom(ctx, f, argBase, machPC)
		case rt.Deopt:
			status, err = inst.resumeInterp(f, argBase)
		default:
			return fmt.Errorf("engine: unexpected executor status %d", status)
		}
	}
	return err
}

// callHost runs a host function inside a panic-containment region: a
// panic anywhere below it — the host function itself, or an injected
// fault — is converted into a counted TrapHostPanic instead of
// unwinding through the embedder, and the instance is marked poisoned.
// A poisoned instance may hold arbitrary partial state (the panic
// interrupted the host mid-write), so Reset refuses it and pools drop
// it rather than recycle it; the current call still unwinds cleanly
// because every executor releases its frame bookkeeping via defer.
func callHost(ctx *rt.Context, f *rt.FuncInst, args, results []uint64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ctx.Inst.Poisoned = true
			err = rt.NewTrapWrapped(rt.TrapHostPanic, f.Idx, 0,
				fmt.Errorf("host function %s panicked: %v", f.Name, r))
		}
	}()
	ctx.Depth++
	defer func() { ctx.Depth-- }()
	if ferr := faultinject.Fire(PointHostCall); ferr != nil {
		return ferr
	}
	return f.Host(ctx, args, results)
}

// mayWriteMemory reports whether a call to f could modify ri's linear
// memory: true unless the static analysis proved f's entire call tree
// read-only. Host functions, probed instances, and functions without
// facts (NoAnalysis engines, unanalyzed imports) are conservatively
// writers.
func mayWriteMemory(ri *rt.Instance, f *rt.FuncInst) bool {
	if ri.ProbedFuncs > 0 || f.Host != nil || f.Info == nil || f.Info.Facts == nil {
		return true
	}
	return f.Info.Facts.WritesMemory
}

// crossInvoke bridges a call to a function owned by another instance:
// arguments move from the caller's value stack to the owner's, the call
// runs through the owner's own invoke dispatcher (its memory, globals,
// tables, tier configuration and tiering state), and results move back.
// The caller's interrupt flag is installed on the owner's context for
// the duration, so cancellation follows the call across the instance
// boundary — a deadline on A's CallContext interrupts a loop running in
// B. Cross-instance calls are synchronous and single-threaded, like all
// execution on an instance.
func crossInvoke(src *rt.Context, f *rt.FuncInst, argBase int) error {
	dst := f.Owner.Ctx
	if dst == nil {
		return fmt.Errorf("engine: function %s: owning instance has no execution context", f.Name)
	}
	if dst.Stack == nil {
		// The exporting instance's value stack was Released; error out
		// instead of letting CheckStack dereference a nil stack.
		return fmt.Errorf("engine: function %s: owning instance's value stack was released", f.Name)
	}
	np, nr := len(f.Type.Params), len(f.Type.Results)
	base := 0
	if n := len(dst.Frames); n > 0 {
		// Re-entrant cross call (the owner called out and the callee
		// called back in): frame SPs are synced at call sites, so the
		// top frame's SP is the first free slot on the owner's stack.
		base = dst.Frames[n-1].SP
	}
	if err := dst.CheckStack(base, np+nr, f.Idx); err != nil {
		return err
	}
	copy(dst.Stack.Slots[base:base+np], src.Stack.Slots[argBase:argBase+np])
	if dst.Stack.Tags != nil {
		for i, t := range f.Type.Params {
			dst.Stack.Tags[base+i] = wasm.TagOf(t)
		}
	}
	if mayWriteMemory(f.Owner, f) {
		f.Owner.MemTouched = true
	}
	saved := dst.Interrupt
	dst.Interrupt = src.Interrupt
	// The fuel budget and Go context travel with the call the same way
	// the interrupt flag does: the callee burns the caller's budget, and
	// whatever remains flows back so the caller's accounting stays exact.
	savedFuel, savedPer, savedGo := dst.Fuel, dst.FuelPerIter, dst.GoCtx
	dst.Fuel, dst.FuelPerIter, dst.GoCtx = src.Fuel, src.FuelPerIter, src.GoCtx
	// Deferred so a panicking host function deeper in the call cannot
	// leave the callee instance permanently polling the caller's flag.
	defer func() {
		src.Fuel, src.FuelPerIter = dst.Fuel, dst.FuelPerIter
		dst.Fuel, dst.FuelPerIter, dst.GoCtx = savedFuel, savedPer, savedGo
		dst.Interrupt = saved
	}()
	if err := dst.Invoke(f, base); err != nil {
		return err
	}
	copy(src.Stack.Slots[argBase:argBase+nr], dst.Stack.Slots[base:base+nr])
	if src.Stack.Tags != nil {
		for i, t := range f.Type.Results {
			src.Stack.Tags[argBase+i] = wasm.TagOf(t)
		}
	}
	return nil
}

// resumeInterp continues a canonical frame in the interpreter,
// reconstructing IP and STP — the tier-down path.
func (inst *Instance) resumeInterp(f *rt.FuncInst, vfp int) (rt.Status, error) {
	pc := inst.Ctx.Resume.PC
	entry := interp.Entry{
		PC:  pc,
		STP: f.Info.STPForPC(pc),
		SP:  inst.Ctx.Resume.SP,
	}
	return interp.Run(inst.Ctx, f, vfp, entry)
}

// Release returns the instance's value stack to the engine's pool so a
// future instantiation can reuse it without re-allocating. The instance
// must be quiescent (no call in progress) and must not be used again
// afterwards. Calling Release is optional — an instance that is simply
// dropped is collected normally — but serving loops that release
// finished instances make CompiledModule.Instantiate a microsecond-scale
// operation.
func (inst *Instance) Release() {
	// The latch must win before the stack is even read: concurrent
	// releases may otherwise both observe a non-nil stack and pool it
	// twice. Only the CAS winner touches Ctx.Stack.
	if inst.Ctx == nil || !inst.released.CompareAndSwap(false, true) {
		return
	}
	if inst.Ctx.Stack == nil {
		return
	}
	inst.Engine.stacks.Put(inst.Ctx.Stack)
	inst.Ctx.Stack = nil
}

// Call invokes an exported function with typed arguments.
func (inst *Instance) Call(name string, args ...wasm.Value) ([]wasm.Value, error) {
	return inst.CallContext(context.Background(), name, args...)
}

// CallContext invokes an exported function with typed arguments under a
// context: cancellation or deadline expiry arms the instance's atomic
// interrupt flag, which every executor polls at function entry and loop
// back-edges, so a runaway guest unwinds with a TrapInterrupted (whose
// cause is goctx's error) within one loop iteration instead of hanging
// the goroutine.
func (inst *Instance) CallContext(goctx context.Context, name string, args ...wasm.Value) ([]wasm.Value, error) {
	return inst.CallWith(goctx, CallOpts{}, name, args...)
}

// CallOpts are per-call resource limits.
type CallOpts struct {
	// Fuel bounds the call's checkpoint executions: one unit per
	// function entry (guest and host alike) and one per loop-header
	// arrival, identically in every tier and regardless of whether the
	// static analysis prepaid a loop's proven trip count. 0 means
	// unlimited. Exhaustion unwinds with a deterministic
	// rt.TrapFuelExhausted at the same checkpoint in every
	// configuration; any residual budget is discarded when the call
	// returns.
	Fuel int64
}

// CallWith is CallContext with per-call resource limits.
func (inst *Instance) CallWith(goctx context.Context, opts CallOpts, name string, args ...wasm.Value) ([]wasm.Value, error) {
	f, ok := inst.RT.FuncByName(name)
	if !ok {
		return nil, fmt.Errorf("engine: no exported function %q", name)
	}
	return inst.CallFuncWith(goctx, opts, f, args...)
}

// CallFunc invokes a resolved function with typed arguments.
func (inst *Instance) CallFunc(f *rt.FuncInst, args ...wasm.Value) ([]wasm.Value, error) {
	return inst.CallFuncContext(context.Background(), f, args...)
}

// CallFuncContext invokes a resolved function with typed arguments
// under a context; see CallContext for the cancellation contract.
func (inst *Instance) CallFuncContext(goctx context.Context, f *rt.FuncInst, args ...wasm.Value) ([]wasm.Value, error) {
	return inst.CallFuncWith(goctx, CallOpts{}, f, args...)
}

// CallFuncWith invokes a resolved function under a context and per-call
// resource limits; see CallContext and CallOpts. The context is also
// made visible to host functions for the duration of the call via
// rt.Context.GoContext, so hosts can respect deadlines on their own
// blocking work.
func (inst *Instance) CallFuncWith(goctx context.Context, opts CallOpts, f *rt.FuncInst, args ...wasm.Value) ([]wasm.Value, error) {
	if err := goctx.Err(); err != nil {
		return nil, err
	}
	ctx := inst.Ctx
	// Save/restore rather than set/clear: a re-entrant call (guest →
	// host → guest on the same instance) must not erase the outer
	// call's context or budget when it finishes.
	savedGo := ctx.GoCtx
	ctx.GoCtx = goctx
	defer func() { ctx.GoCtx = savedGo }()
	if opts.Fuel > 0 {
		savedFuel, savedPer := ctx.Fuel, ctx.FuelPerIter
		ctx.Fuel, ctx.FuelPerIter = opts.Fuel, false
		defer func() { ctx.Fuel, ctx.FuelPerIter = savedFuel, savedPer }()
	}
	stop := inst.armInterrupt(goctx)
	// stop is idempotent; the defer covers a panic unwinding out of the
	// guest (which would otherwise leak the watcher and its source).
	defer stop()
	results, err := inst.callFunc(f, args...)
	fired := stop()
	if err != nil && fired {
		// Attach the context's error as the trap cause so callers can
		// errors.Is(err, context.DeadlineExceeded / Canceled).
		var trap *rt.Trap
		if errors.As(err, &trap) && trap.Kind == rt.TrapInterrupted && trap.Wrapped == nil {
			trap.Wrapped = goctx.Err()
		}
	}
	return results, err
}

// armInterrupt starts a watcher that arms the context's interrupt flag
// when goctx is cancelled, registering goctx as a cancellation source
// on the flag itself (the flag may be temporarily shared across
// instances by crossInvoke, so the bookkeeping must travel with it).
// The returned stop function shuts the watcher down, removes the
// source — which re-derives the flag, so a finishing inner call cannot
// erase an enclosing call's cancellation and a cancellation that raced
// completion cannot leak into the next call — and reports whether this
// call's own watcher fired. When goctx can never be cancelled there is
// no watcher and no overhead.
//
// Deliberately NOT context.AfterFunc: its stop() can return false while
// the callback is still mid-flight, so a straggling Set could land
// after the source removal's re-derivation and leak a stale interrupt
// into the next call. The channel handshake joins the watcher first.
func (inst *Instance) armInterrupt(goctx context.Context) (stop func() bool) {
	done := goctx.Done()
	if done == nil {
		return func() bool { return false }
	}
	flag := inst.Ctx.Interrupt
	removeSource := flag.AddSource(func() bool { return goctx.Err() != nil })
	quit := make(chan struct{})
	fired := make(chan bool, 1)
	go func() {
		select {
		case <-done:
			flag.Set()
			fired <- true
		case <-quit:
			fired <- false
		}
	}()
	var once sync.Once
	var f bool
	return func() bool {
		once.Do(func() {
			close(quit)
			f = <-fired
			removeSource()
		})
		return f
	}
}

// callFunc is the uninstrumented call path: marshal arguments, invoke,
// marshal results. The frame is based at the instance's current stack
// top — 0 for an ordinary entry call, above the live frames for a
// re-entrant call (guest → host → guest on the same instance), which
// would otherwise overwrite the outer call's locals at slot 0.
func (inst *Instance) callFunc(f *rt.FuncInst, args ...wasm.Value) ([]wasm.Value, error) {
	if len(args) != len(f.Type.Params) {
		return nil, fmt.Errorf("engine: %s expects %d args, got %d", f.Name, len(f.Type.Params), len(args))
	}
	ctx := inst.Ctx
	base := 0
	// Only top-level entries feed the execute histogram: a re-entrant
	// call (guest → host → guest) is already inside a measured request,
	// and counting it would double-book its time.
	topLevel := len(ctx.Frames) == 0
	if n := len(ctx.Frames); n > 0 {
		// Frame SPs are synced before every outgoing call, so the top
		// frame's SP is the first free slot.
		base = ctx.Frames[n-1].SP
	}
	if err := ctx.CheckStack(base, len(f.Type.Params)+len(f.Type.Results), f.Idx); err != nil {
		return nil, err
	}
	for i, a := range args {
		if a.Type != f.Type.Params[i] {
			return nil, fmt.Errorf("engine: %s arg %d: have %v, want %v", f.Name, i, a.Type, f.Type.Params[i])
		}
		ctx.Stack.Slots[base+i] = a.Bits
		if ctx.Stack.Tags != nil {
			ctx.Stack.Tags[base+i] = wasm.TagOf(a.Type)
		}
	}
	if mayWriteMemory(inst.RT, f) {
		inst.RT.MemTouched = true
	}
	var t0 time.Time
	if topLevel {
		t0 = time.Now()
	}
	if err := inst.invoke(f, base); err != nil {
		if topLevel {
			noteExecute(f.Name, t0, err)
		}
		return nil, err
	}
	if topLevel {
		noteExecute(f.Name, t0, nil)
	}
	results := make([]wasm.Value, len(f.Type.Results))
	for i, t := range f.Type.Results {
		results[i] = wasm.Value{Type: t, Bits: ctx.Stack.Slots[base+i]}
	}
	return results, nil
}

// CallIdx invokes function index idx with no arguments.
func (inst *Instance) CallIdx(idx uint32) error {
	f := inst.RT.Funcs[idx]
	if len(f.Type.Params) != 0 {
		return fmt.Errorf("engine: function %d takes parameters", idx)
	}
	if mayWriteMemory(inst.RT, f) {
		inst.RT.MemTouched = true
	}
	return inst.invoke(f, 0)
}
