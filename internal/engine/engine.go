// Package engine is the public face of the virtual machine: it loads and
// validates modules, links imports, instantiates memories/tables/globals,
// selects and orchestrates execution tiers (interpreter, baseline
// compiler, optimizing compiler), and performs tier-up (OSR) and
// tier-down (deopt) by rewriting execution frames on the shared value
// stack — the integration story of the paper's Section IV.
//
// Module setup is a two-phase pipeline. Engine.Compile performs the
// per-module work — decode, validate, per-function tier compilation
// (fanned out over a worker pool) — once, yielding an immutable,
// goroutine-safe CompiledModule. CompiledModule.Instantiate then only
// links imports, allocates memories/tables/globals and a value stack,
// and runs the start function, so one compiled artifact serves many
// concurrent instances. Engine.Instantiate composes the two for callers
// that load a module exactly once, and a codecache.Cache plugged into
// Config memoizes Compile across engines of the same configuration.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/interp"
	"wizgo/internal/rt"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// Mode selects the execution strategy.
type Mode int

const (
	// ModeInterp runs everything in the in-place interpreter.
	ModeInterp Mode = iota
	// ModeJIT compiles every function at load time and never interprets.
	ModeJIT
	// ModeTiered starts in the interpreter and tiers up hot functions
	// (call-count threshold) and hot loops (OSR at back-edges).
	ModeTiered
)

func (m Mode) String() string {
	switch m {
	case ModeInterp:
		return "interp"
	case ModeJIT:
		return "jit"
	case ModeTiered:
		return "tiered"
	}
	return "mode?"
}

// Tier is a compiler that can translate functions for this engine.
// Adapters in internal/engines wrap the single-pass compiler, the
// optimizing compiler and the rewriting translator as Tiers.
type Tier interface {
	Name() string
	Compile(m *wasm.Module, fidx uint32, decl *wasm.Func, info *validate.FuncInfo,
		probes *rt.ProbeSet) (Code, error)
}

// Code is executable code produced by a Tier.
type Code interface {
	Run(ctx *rt.Context, f *rt.FuncInst, vfp int) (rt.Status, error)
	// Bytes reports the emitted code size for compile-throughput
	// accounting.
	Bytes() int
}

// OSRCode is implemented by code objects that support entering at a loop
// header with a canonical frame (tier-up) and invalidation (tier-down).
type OSRCode interface {
	Code
	OSREntry(wasmPC int) (int, bool)
	RunFrom(ctx *rt.Context, f *rt.FuncInst, vfp, machPC int) (rt.Status, error)
	Invalidate()
}

// Config describes an engine configuration ("tier preset").
type Config struct {
	Name string
	Mode Mode
	// Tier compiles functions in ModeJIT/ModeTiered.
	Tier Tier
	// LazyCompile defers compilation to first call (JSC-style laziness,
	// a confounder the paper discusses); default is eager compilation
	// at instantiation, which is what setup-time measurements assume.
	LazyCompile bool
	// OSRThreshold is the loop back-edge count before tier-up (ModeTiered).
	OSRThreshold int
	// CallThreshold is the call count before a function is compiled
	// (ModeTiered with LazyCompile).
	CallThreshold int
	// Tags allocates the value-tag array alongside the value stack.
	Tags bool
	// StackSlots sizes the value stack (default 1<<20 slots).
	StackSlots int
	// MaxDepth bounds call nesting (default 10000).
	MaxDepth int
	// SkipValidation models engines that do not verify bytecode (the
	// paper found wasm3 does not!). Setup time then excludes a
	// validation pass, but the sidetable must still be built, so this
	// only skips module-level checks in our implementation.
	SkipValidation bool
	// CompileWorkers bounds the worker pool Compile fans per-function
	// tier compilation out over (functions are independent compilation
	// units). 0 means GOMAXPROCS; 1 forces serial compilation, the
	// behavior the paper's single-threaded setup measurements assume.
	CompileWorkers int
	// Cache, when non-nil, memoizes Compile results by module content
	// hash and configuration fingerprint, so repeated loads of the same
	// module pay only the instantiation (link) cost.
	Cache *codecache.Cache
}

// Timings records per-phase setup costs for the compile-speed and
// SQ-space experiments (Figures 8–10).
type Timings struct {
	Decode   time.Duration
	Validate time.Duration
	Compile  time.Duration
	// CodeBytes is the total size of emitted machine code.
	CodeBytes int
	// ModuleBytes is the binary module size.
	ModuleBytes int
}

// Setup returns total per-module processing time before execution.
func (t Timings) Setup() time.Duration { return t.Decode + t.Validate + t.Compile }

// Engine creates instances under one configuration. An Engine is safe
// for concurrent use once constructed, provided its Linker is not
// mutated after construction: Compile and Instantiate only read the
// configuration and linker.
type Engine struct {
	cfg    Config
	linker *Linker
	// stacks recycles value stacks between instances. Allocating (and,
	// on reuse, re-zeroing) the multi-megabyte slot and tag arrays is
	// by far the largest per-instance cost, so a serving loop that
	// Releases finished instances instantiates in microseconds. Reuse
	// without zeroing is sound: every executor zeroes and tags declared
	// locals at frame entry, operand slots are written before they are
	// read (a validation guarantee), and stack walkers only scan live
	// frame ranges [VFP, SP).
	stacks sync.Pool
}

// New creates an engine. A nil linker provides no host imports.
func New(cfg Config, linker *Linker) *Engine {
	if cfg.StackSlots == 0 {
		cfg.StackSlots = 1 << 20
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 10000
	}
	if linker == nil {
		linker = NewLinker()
	}
	e := &Engine{cfg: cfg, linker: linker}
	e.stacks.New = func() any {
		return rt.NewValueStack(e.cfg.StackSlots, e.cfg.Tags)
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Instance is an instantiated module bound to an execution context.
type Instance struct {
	Engine  *Engine
	RT      *rt.Instance
	Ctx     *rt.Context
	Infos   []validate.FuncInfo
	Timings Timings

	// released latches the first Release so a double release (including
	// a racing one) cannot push the same value stack into the engine's
	// pool twice — two later instantiations would then share a stack.
	released atomic.Bool
}

// Instantiate is the single-shot compatibility path: Compile followed
// by CompiledModule.Instantiate. Callers that load a module more than
// once should hold on to the CompiledModule (or configure a Cache) and
// instantiate from it, paying decode/validate/compile only once.
func (e *Engine) Instantiate(bytes []byte) (*Instance, error) {
	cm, err := e.Compile(bytes)
	if err != nil {
		return nil, err
	}
	return cm.Instantiate()
}

// link builds the runtime instance: imports, memory, globals, tables.
func (e *Engine) link(m *wasm.Module, infos []validate.FuncInfo) (*Instance, error) {
	ri := &rt.Instance{Module: m}

	// Function index space: imports first.
	localIdx := 0
	for _, imp := range m.Imports {
		switch imp.Kind {
		case wasm.ImportFunc:
			ft := m.Types[imp.TypeIdx]
			host, ok := e.linker.resolve(imp.Module, imp.Name)
			if !ok {
				return nil, fmt.Errorf("engine: unresolved import %s.%s", imp.Module, imp.Name)
			}
			if !host.Type.Equal(ft) {
				return nil, fmt.Errorf("engine: import %s.%s signature mismatch: have %v, want %v",
					imp.Module, imp.Name, host.Type, ft)
			}
			ri.Funcs = append(ri.Funcs, &rt.FuncInst{
				Idx: uint32(len(ri.Funcs)), Type: ft,
				Name: imp.Module + "." + imp.Name, Host: host.Fn,
			})
		case wasm.ImportMemory, wasm.ImportTable, wasm.ImportGlobal:
			return nil, fmt.Errorf("engine: %s.%s: only function imports are supported",
				imp.Module, imp.Name)
		}
	}
	for i := range m.Funcs {
		f := &m.Funcs[i]
		idx := uint32(len(ri.Funcs))
		ri.Funcs = append(ri.Funcs, &rt.FuncInst{
			Idx: idx, Type: m.Types[f.TypeIdx], Name: m.FuncName(idx),
			Decl: f, Info: &infos[localIdx],
		})
		localIdx++
	}

	if len(m.Memories) > 0 {
		ri.Memory = rt.NewMemory(m.Memories[0])
	} else {
		ri.Memory = &rt.Memory{} // zero-size memory simplifies executors
	}
	for di, d := range m.Datas {
		if end := int(d.Offset) + len(d.Bytes); end > len(ri.Memory.Data) {
			return nil, fmt.Errorf("engine: data segment %d: [%#x, %#x) overflows %d-byte memory",
				di, d.Offset, end, len(ri.Memory.Data))
		}
		copy(ri.Memory.Data[d.Offset:], d.Bytes)
	}

	for _, g := range m.Globals {
		ri.Globals = append(ri.Globals, rt.GlobalSlot{
			Bits: g.Init.Bits, Tag: wasm.TagOf(g.Type),
		})
	}

	for _, t := range m.Tables {
		ri.Tables = append(ri.Tables, &rt.Table{Elems: make([]uint64, t.Lim.Min)})
	}
	for _, el := range m.Elems {
		tbl := ri.Tables[el.TableIdx]
		if int(el.Offset)+len(el.Funcs) > len(tbl.Elems) {
			return nil, fmt.Errorf("engine: element segment at %d overflows table", el.Offset)
		}
		for i, fidx := range el.Funcs {
			tbl.Elems[int(el.Offset)+i] = uint64(fidx) + 1
		}
	}

	ctx := &rt.Context{
		Stack:        e.stacks.Get().(*rt.ValueStack),
		Inst:         ri,
		MaxDepth:     e.cfg.MaxDepth,
		OSRThreshold: e.cfg.OSRThreshold,
	}
	inst := &Instance{Engine: e, RT: ri, Ctx: ctx, Infos: infos}
	ctx.Invoke = inst.invoke
	return inst, nil
}

func (inst *Instance) compileFunc(f *rt.FuncInst) error {
	code, err := inst.Engine.cfg.Tier.Compile(inst.RT.Module, f.Idx, f.Decl, f.Info, f.Probes)
	if err != nil {
		return err
	}
	f.Compiled = code
	return nil
}

// invoke is the cross-tier call dispatcher installed on the context.
// Arguments are at argBase on the value stack; results replace them.
func (inst *Instance) invoke(f *rt.FuncInst, argBase int) error {
	e := inst.Engine
	ctx := inst.Ctx

	if f.Host != nil {
		if err := ctx.CheckStack(argBase, len(f.Type.Params)+len(f.Type.Results), f.Idx); err != nil {
			return err
		}
		ctx.Depth++
		args := ctx.Stack.Slots[argBase : argBase+len(f.Type.Params)]
		results := ctx.Stack.Slots[argBase : argBase+len(f.Type.Results)]
		err := f.Host(ctx, args, results)
		ctx.Depth--
		// Host functions can write linear memory through ctx without the
		// executors' Mark hooks seeing it; declare the memory dirty so a
		// pooled reset falls back to a full restore rather than leaking
		// host-written bytes across requests. Free when tracking is off.
		ctx.Inst.Memory.MarkAll()
		if err != nil {
			return &rt.Trap{Kind: rt.TrapHostError, FuncIdx: f.Idx, Wrapped: err}
		}
		if ctx.Stack.Tags != nil {
			for i, t := range f.Type.Results {
				ctx.Stack.Tags[argBase+i] = wasm.TagOf(t)
			}
		}
		return nil
	}

	// Lazy compilation / tier-up by call count.
	if f.Compiled == nil && e.cfg.Mode != ModeInterp && e.cfg.LazyCompile {
		f.CallCount++
		if e.cfg.Mode == ModeJIT || f.CallCount >= e.cfg.CallThreshold {
			if err := inst.compileFunc(f); err != nil {
				return err
			}
		}
	}

	var status rt.Status
	var err error
	if code, ok := f.Compiled.(Code); ok && e.cfg.Mode != ModeInterp {
		status, err = code.Run(ctx, f, argBase)
	} else {
		status, err = interp.Call(ctx, f, argBase)
	}

	// Tier transitions bounce the same frame between executors until it
	// completes — the frame itself never moves (Figure 2's design).
	for err == nil && status != rt.Done {
		switch status {
		case rt.OSRUp:
			if f.Compiled == nil {
				if cerr := inst.compileFunc(f); cerr != nil {
					return cerr
				}
			}
			osr, ok := f.Compiled.(OSRCode)
			if !ok {
				status, err = inst.resumeInterp(f, argBase)
				continue
			}
			machPC, found := osr.OSREntry(ctx.Resume.PC)
			if !found {
				status, err = inst.resumeInterp(f, argBase)
				continue
			}
			status, err = osr.RunFrom(ctx, f, argBase, machPC)
		case rt.Deopt:
			status, err = inst.resumeInterp(f, argBase)
		default:
			return fmt.Errorf("engine: unexpected executor status %d", status)
		}
	}
	return err
}

// resumeInterp continues a canonical frame in the interpreter,
// reconstructing IP and STP — the tier-down path.
func (inst *Instance) resumeInterp(f *rt.FuncInst, vfp int) (rt.Status, error) {
	pc := inst.Ctx.Resume.PC
	entry := interp.Entry{
		PC:  pc,
		STP: f.Info.STPForPC(pc),
		SP:  inst.Ctx.Resume.SP,
	}
	return interp.Run(inst.Ctx, f, vfp, entry)
}

// Release returns the instance's value stack to the engine's pool so a
// future instantiation can reuse it without re-allocating. The instance
// must be quiescent (no call in progress) and must not be used again
// afterwards. Calling Release is optional — an instance that is simply
// dropped is collected normally — but serving loops that release
// finished instances make CompiledModule.Instantiate a microsecond-scale
// operation.
func (inst *Instance) Release() {
	// The latch must win before the stack is even read: concurrent
	// releases may otherwise both observe a non-nil stack and pool it
	// twice. Only the CAS winner touches Ctx.Stack.
	if inst.Ctx == nil || !inst.released.CompareAndSwap(false, true) {
		return
	}
	if inst.Ctx.Stack == nil {
		return
	}
	inst.Engine.stacks.Put(inst.Ctx.Stack)
	inst.Ctx.Stack = nil
}

// Call invokes an exported function with typed arguments.
func (inst *Instance) Call(name string, args ...wasm.Value) ([]wasm.Value, error) {
	f, ok := inst.RT.FuncByName(name)
	if !ok {
		return nil, fmt.Errorf("engine: no exported function %q", name)
	}
	return inst.CallFunc(f, args...)
}

// CallFunc invokes a resolved function with typed arguments.
func (inst *Instance) CallFunc(f *rt.FuncInst, args ...wasm.Value) ([]wasm.Value, error) {
	if len(args) != len(f.Type.Params) {
		return nil, fmt.Errorf("engine: %s expects %d args, got %d", f.Name, len(f.Type.Params), len(args))
	}
	ctx := inst.Ctx
	for i, a := range args {
		if a.Type != f.Type.Params[i] {
			return nil, fmt.Errorf("engine: %s arg %d: have %v, want %v", f.Name, i, a.Type, f.Type.Params[i])
		}
		ctx.Stack.Slots[i] = a.Bits
		if ctx.Stack.Tags != nil {
			ctx.Stack.Tags[i] = wasm.TagOf(a.Type)
		}
	}
	if err := inst.invoke(f, 0); err != nil {
		return nil, err
	}
	results := make([]wasm.Value, len(f.Type.Results))
	for i, t := range f.Type.Results {
		results[i] = wasm.Value{Type: t, Bits: ctx.Stack.Slots[i]}
	}
	return results, nil
}

// CallIdx invokes function index idx with no arguments.
func (inst *Instance) CallIdx(idx uint32) error {
	f := inst.RT.Funcs[idx]
	if len(f.Type.Params) != 0 {
		return fmt.Errorf("engine: function %d takes parameters", idx)
	}
	return inst.invoke(f, 0)
}
