package engine

import (
	"errors"
	"time"

	"wizgo/internal/analysis"
	"wizgo/internal/rt"
	"wizgo/internal/telemetry"
)

// Process-wide latency histograms for the engine pipeline. Compile and
// rehydrate cover the per-module setup cost the code cache amortizes;
// link is the per-instance cost that remains; execute is the per-request
// cost. Together with the cache and pool series they answer the
// deployment question the paper poses — where does a request's time go?
var (
	hCompile = telemetry.Default().Histogram("wizgo_compile_seconds",
		"Full compile pipeline latency per module (decode+validate+compile).")
	hRehydrate = telemetry.Default().Histogram("wizgo_rehydrate_seconds",
		"Artifact rehydration latency per module (zero-compile disk load).")
	hLink = telemetry.Default().Histogram("wizgo_link_seconds",
		"Instantiation (link) latency per instance.")
	hExecute = telemetry.Default().Histogram("wizgo_execute_seconds",
		"Top-level guest call latency (re-entrant guest calls excluded).")

	mCompileCalls = telemetry.Default().Counter("wizgo_compile_calls_total",
		"Per-function compiler invocations across all engines.")

	hAnalyze = telemetry.Default().Histogram("wizgo_analysis_seconds",
		"Static-analysis pass latency per module (fact derivation).")
	mAnalysisFacts = telemetry.Default().Counter("wizgo_analysis_facts_total",
		"Static-analysis facts derived: proven-in-bounds accesses, elided loop polls, read-only functions.")
	mChecksElided = telemetry.Default().Counter("wizgo_analysis_checks_elided_total",
		"Dynamic checks the executors elide on analysis facts (bounds checks + interrupt polls), counted per compile site.")
)

// noteAnalysis publishes one finished static-analysis pass.
func noteAnalysis(s analysis.Stats, dur time.Duration) {
	hAnalyze.Observe(dur)
	mAnalysisFacts.Add(uint64(s.BoundsProven + s.PollsElided + s.ReadOnly))
	mChecksElided.Add(uint64(s.BoundsProven + s.PollsElided))
}

// noteExecute publishes one finished top-level call: the execute
// histogram, an execute span, and — when the call trapped — a trap or
// interrupt span labeled with the trap kind.
func noteExecute(name string, start time.Time, err error) {
	dur := time.Since(start)
	hExecute.Observe(dur)
	tr := telemetry.DefaultTracer()
	if !tr.Enabled() {
		return
	}
	var t *rt.Trap
	if errors.As(err, &t) {
		stage := telemetry.StageTrap
		if t.Kind == rt.TrapInterrupted {
			stage = telemetry.StageInterrupt
		}
		tr.Record(stage, t.Kind.Label(), start, dur, t.Error())
	}
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	tr.Record(telemetry.StageExecute, name, start, dur, errStr)
}
