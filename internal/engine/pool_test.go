package engine_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
	"wizgo/internal/workloads"
)

// mutatorModule builds a module that dirties every class of instance
// state a pool reset must undo: scattered linear-memory stores (three
// distinct granules plus a memory.fill), a data segment that the
// stores overwrite, and a mutable global. It also carries a table with
// an element segment so table re-seeding is exercised.
func mutatorModule() []byte {
	b := wasm.NewBuilder()
	b.AddMemory(4, 4) // 256 KiB = 64 reset granules
	b.AddData(16, []byte("baseline-data-segment"))
	b.AddData(0x20000, []byte{1, 2, 3, 4})
	g := b.AddGlobal(wasm.I64, true, wasm.ValI64(7))

	id := b.NewFunc("id", wasm.FuncType{
		Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}})
	id.LocalGet(0)
	id.End()
	b.Export("id", id.Idx)

	b.AddTable(2)
	b.AddElem(0, []uint32{id.Idx, id.Idx})

	f := b.NewFunc("mutate", wasm.FuncType{Results: []wasm.ValueType{wasm.I64}})
	// Overwrite the data segment region.
	f.I32Const(16).I64Const(-1).Store(wasm.OpI64Store, 0)
	// Scattered stores in two more granules.
	f.I32Const(0x8000).F64Const(3.25).Store(wasm.OpF64Store, 0)
	f.I32Const(0x20000).I32Const(0x5A5A5A5A).Store(wasm.OpI32Store, 4)
	// A memory.fill burst.
	f.I32Const(0x30000).I32Const(0xCC).I32Const(64).MemoryFill()
	// Mutate the global.
	f.GlobalGet(g).I64Const(3).Op(wasm.OpI64Mul).GlobalSet(g)
	// Result folds mutated state so runs are comparable.
	f.GlobalGet(g)
	f.I32Const(16).Load(wasm.OpI64Load, 0)
	f.Op(wasm.OpI64Add)
	f.I32Const(0x30000).Load(wasm.OpI64Load, 0)
	f.Op(wasm.OpI64Add)
	f.End()
	b.Export("mutate", f.Idx)
	return b.Encode()
}

// stateEqual compares the observable state of two instances: memory
// bytes, globals (bits and tags), and table contents.
func stateEqual(t *testing.T, label string, a, b *engine.Instance) {
	t.Helper()
	if !bytes.Equal(a.RT.Memory.Data, b.RT.Memory.Data) {
		for i := range a.RT.Memory.Data {
			if a.RT.Memory.Data[i] != b.RT.Memory.Data[i] {
				t.Fatalf("%s: memory differs at %#x: %#x != %#x",
					label, i, a.RT.Memory.Data[i], b.RT.Memory.Data[i])
			}
		}
		t.Fatalf("%s: memory lengths differ: %d != %d",
			label, len(a.RT.Memory.Data), len(b.RT.Memory.Data))
	}
	for i := range a.RT.Globals {
		if *a.RT.Globals[i] != *b.RT.Globals[i] {
			t.Fatalf("%s: global %d differs: %+v != %+v",
				label, i, *a.RT.Globals[i], *b.RT.Globals[i])
		}
	}
	for ti := range a.RT.Tables {
		for ei := range a.RT.Tables[ti].Elems {
			if a.RT.Tables[ti].Elems[ei] != b.RT.Tables[ti].Elems[ei] {
				t.Fatalf("%s: table %d elem %d differs", label, ti, ei)
			}
		}
	}
}

// TestPooledResetObservationallyIdentical is the pool's correctness
// contract: after a mutating run and a reset, a recycled instance must
// be indistinguishable from a freshly instantiated one — memory,
// globals, tables, and the results of the next run.
func TestPooledResetObservationallyIdentical(t *testing.T) {
	module := mutatorModule()
	for _, cfg := range []engine.Config{
		engines.WizardINT(), engines.WizardSPC(),
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			e := engine.New(cfg, nil)
			cm, err := e.Compile(module)
			if err != nil {
				t.Fatal(err)
			}
			pool := cm.NewPool(2)
			defer pool.Close()

			inst, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			first, err := inst.Call("mutate")
			if err != nil {
				t.Fatal(err)
			}
			// Host-side table poke so restore (not just never-mutated) is
			// what the comparison proves.
			inst.RT.Tables[0].Elems[1] = 0
			pool.Put(inst)

			recycled, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			if recycled != inst {
				t.Fatal("pool did not recycle the released instance")
			}
			fresh, err := cm.Instantiate()
			if err != nil {
				t.Fatal(err)
			}
			stateEqual(t, "after reset", recycled, fresh)

			// And the next run must behave exactly like a fresh one.
			again, err := recycled.Call("mutate")
			if err != nil {
				t.Fatal(err)
			}
			if again[0].Bits != first[0].Bits {
				t.Fatalf("re-run result %#x != first run %#x", again[0].Bits, first[0].Bits)
			}
			freshRes, err := fresh.Call("mutate")
			if err != nil {
				t.Fatal(err)
			}
			stateEqual(t, "after second run", recycled, fresh)
			if freshRes[0].Bits != again[0].Bits {
				t.Fatalf("fresh result %#x != recycled result %#x", freshRes[0].Bits, again[0].Bits)
			}
		})
	}
}

// TestPooledResetIsSparse verifies the copy-on-write property the pool
// exists for: a run that touches a few granules must not trigger a
// full-memory restore.
func TestPooledResetIsSparse(t *testing.T) {
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(mutatorModule())
	if err != nil {
		t.Fatal(err)
	}
	pool := cm.NewPool(1)
	defer pool.Close()
	inst, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !inst.RT.Memory.WriteTracking() {
		t.Fatal("pooled instance is not write-tracking")
	}
	if _, err := inst.Call("mutate"); err != nil {
		t.Fatal(err)
	}
	// mutate touches 4 granules (16, 0x8000, 0x20004, 0x30000) out of
	// 64 — well under the full-wipe threshold, so the recycle below
	// takes the sparse path by construction.
	if dirty := inst.RT.Memory.DirtyGranules(); dirty != 4 {
		t.Fatalf("dirty granules = %d, want 4", dirty)
	}
	pool.Put(inst)
	recycled, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if recycled.RT.Memory.DirtyGranules() != 0 || recycled.RT.Memory.Grown() {
		t.Error("reset did not leave tracking clean")
	}
}

// TestPoolGemmChecksums drives a real workload through the pool: every
// pooled request must produce the identical checksum a fresh instance
// produces, across enough iterations to exercise the reset path
// repeatedly.
func TestPoolGemmChecksums(t *testing.T) {
	item := workloads.PolyBench()[0] // gemm
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Call("_start"); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Call("checksum")
	if err != nil {
		t.Fatal(err)
	}

	pool := cm.NewPool(2)
	defer pool.Close()
	for i := 0; i < 5; i++ {
		inst, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Call("_start"); err != nil {
			t.Fatal(err)
		}
		got, err := inst.Call("checksum")
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Bits != want[0].Bits {
			t.Fatalf("pooled run %d checksum %#x != fresh %#x", i, got[0].Bits, want[0].Bits)
		}
		pool.Put(inst)
	}
	st := pool.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats = %+v, want 1 miss / 4 hits", st)
	}
}

// TestPoolConcurrentServing hammers one pool from many workers (run
// with -race in CI): checksums must agree and stats must balance.
func TestPoolConcurrentServing(t *testing.T) {
	item := workloads.Ostrich()[3] // crc, fast enough for -race
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	pool := cm.NewPool(4)
	defer pool.Close()

	const workers, perWorker = 8, 6
	sums := make([]uint64, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				inst, err := pool.Get()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := inst.Call("_start"); err != nil {
					t.Error(err)
					return
				}
				sum, err := inst.Call("checksum")
				if err != nil {
					t.Error(err)
					return
				}
				sums[w*perWorker+i] = sum[0].Bits
				pool.Put(inst)
			}
		}(w)
	}
	wg.Wait()
	for i, s := range sums {
		if s != sums[0] {
			t.Fatalf("request %d checksum %#x != %#x", i, s, sums[0])
		}
	}
	st := pool.Stats()
	if st.Gets != workers*perWorker || st.Hits+st.Misses != st.Gets {
		t.Errorf("unbalanced stats: %+v", st)
	}
}

// TestResetRejectsInFlightCall: a reset must refuse an instance that is
// mid-call (a host function observes exactly that state).
func TestResetRejectsInFlightCall(t *testing.T) {
	linker := engine.NewLinker()
	var target *engine.Instance
	var resetErr error
	linker.Func("env", "poke", wasm.FuncType{}, func(ctx *rt.Context, args, results []uint64) error {
		resetErr = target.Reset(target.Snapshot())
		return nil
	})

	b := wasm.NewBuilder()
	imp := b.ImportFunc("env", "poke", wasm.FuncType{})
	f := b.NewFunc("go", wasm.FuncType{})
	f.Call(imp)
	f.End()
	b.Export("go", f.Idx)

	e := engine.New(engines.WizardINT(), linker)
	inst, err := e.Instantiate(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	target = inst
	if _, err := inst.Call("go"); err != nil {
		t.Fatal(err)
	}
	if resetErr == nil {
		t.Fatal("Reset accepted an instance with a call in progress")
	}
}

// TestDoubleReleaseDoesNotDuplicateStacks is the regression test for
// the double-release guard: without it, releasing twice pushes the same
// value stack into the engine pool twice, and two later instances
// share one stack.
func TestDoubleReleaseDoesNotDuplicateStacks(t *testing.T) {
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	stack := inst.Ctx.Stack
	inst.Release()
	inst.Ctx.Stack = stack // simulate a stale caller holding on
	inst.Release()         // must be latched, not re-pooled

	a, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Ctx.Stack == b.Ctx.Stack {
		t.Fatal("double release leaked one stack into two instances")
	}
}

// TestConcurrentReleaseRace releases the same instance from many
// goroutines; under -race this flags any unsynchronized double put.
func TestConcurrentReleaseRace(t *testing.T) {
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		inst, err := cm.Instantiate()
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				inst.Release()
			}()
		}
		wg.Wait()
	}
}

// TestPooledHostWriteIsReset: host functions write linear memory
// without passing the executors' Mark hooks; the engine declares the
// memory dirty around host calls (rt.Memory.MarkAll), so a pooled
// reset must still restore host-written bytes.
func TestPooledHostWriteIsReset(t *testing.T) {
	linker := engine.NewLinker()
	linker.Func("env", "scribble", wasm.FuncType{}, func(ctx *rt.Context, args, results []uint64) error {
		ctx.Inst.Memory.Data[0x1234] = 0xAB
		return nil
	})
	b := wasm.NewBuilder()
	imp := b.ImportFunc("env", "scribble", wasm.FuncType{})
	b.AddMemory(1, 1)
	f := b.NewFunc("go", wasm.FuncType{})
	f.Call(imp)
	f.End()
	b.Export("go", f.Idx)

	e := engine.New(engines.WizardSPC(), linker)
	cm, err := e.Compile(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	pool := cm.NewPool(1)
	defer pool.Close()
	inst, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("go"); err != nil {
		t.Fatal(err)
	}
	if inst.RT.Memory.Data[0x1234] != 0xAB {
		t.Fatal("host write did not land")
	}
	pool.Put(inst)
	recycled, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if recycled.RT.Memory.Data[0x1234] != 0 {
		t.Fatal("host-written byte leaked across a pooled reset")
	}
}

// TestPoolDiscardDoesNotReleaseBusyInstance: a Get that finds a
// mid-call instance in the pool (a misuse: someone Put it from inside
// a host call) must fail its reset and drop the instance WITHOUT
// pooling its value stack — the call is still executing on it.
func TestPoolDiscardDoesNotReleaseBusyInstance(t *testing.T) {
	var pool *engine.InstancePool
	var self *engine.Instance
	var fresh *engine.Instance
	linker := engine.NewLinker()
	linker.Func("env", "misuse", wasm.FuncType{}, func(ctx *rt.Context, args, results []uint64) error {
		pool.Put(self) // Put while this very call is in progress
		inst, err := pool.Get()
		if err != nil {
			return err
		}
		fresh = inst
		return nil
	})
	b := wasm.NewBuilder()
	imp := b.ImportFunc("env", "misuse", wasm.FuncType{})
	b.AddMemory(1, 1)
	f := b.NewFunc("go", wasm.FuncType{})
	f.Call(imp)
	f.End()
	b.Export("go", f.Idx)

	e := engine.New(engines.WizardSPC(), linker)
	cm, err := e.Compile(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	pool = cm.NewPool(2)
	defer pool.Close()
	self, err = pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := self.Call("go"); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.ResetFailures != 1 {
		t.Fatalf("reset failures = %d, want 1 (mid-call reset must fail)", st.ResetFailures)
	}
	if self.Ctx.Stack == nil {
		t.Fatal("busy instance's stack was released")
	}
	if fresh == self || fresh.Ctx.Stack == self.Ctx.Stack {
		t.Fatal("mid-call instance (or its stack) was handed back out")
	}
}

// readWriteModule builds a module with a provably read-only export
// ("reader" only loads) and a writing export ("writer" stores).
func readWriteModule() []byte {
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	b.AddData(0, []byte{42})

	reader := b.NewFunc("reader", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
	reader.I32Const(0).Load(wasm.OpI32Load8U, 0)
	reader.End()
	b.Export("reader", reader.Idx)

	writer := b.NewFunc("writer", wasm.FuncType{})
	writer.I32Const(0).I32Const(99).Store(wasm.OpI32Store8, 0)
	writer.End()
	b.Export("writer", writer.Idx)
	return b.Encode()
}

// TestResetSkipsMemoryForReadOnlyCalls: calls the analysis proves
// read-only never set MemTouched, so a pooled reset skips the memory
// restore; a writing call forces the restore and the baseline comes
// back intact.
func TestResetSkipsMemoryForReadOnlyCalls(t *testing.T) {
	inst, err := engine.New(engines.WizardSPC(), nil).Instantiate(readWriteModule())
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Release()
	snap := inst.Snapshot()
	inst.RT.Memory.EnableWriteTracking()
	inst.RT.MemTouched = false // discharge instantiate-time conservatism

	if _, err := inst.Call("reader"); err != nil {
		t.Fatal(err)
	}
	if inst.RT.MemTouched {
		t.Error("read-only call set MemTouched; pool resets will never be skipped")
	}
	if err := inst.Reset(snap); err != nil {
		t.Fatal(err)
	}

	if _, err := inst.Call("writer"); err != nil {
		t.Fatal(err)
	}
	if !inst.RT.MemTouched {
		t.Error("writing call did not set MemTouched; reset would leak state")
	}
	if inst.RT.Memory.Data[0] != 99 {
		t.Fatalf("writer did not write: %d", inst.RT.Memory.Data[0])
	}
	if err := inst.Reset(snap); err != nil {
		t.Fatal(err)
	}
	if inst.RT.Memory.Data[0] != 42 {
		t.Fatalf("reset did not restore the data segment: %d", inst.RT.Memory.Data[0])
	}
	if inst.RT.MemTouched {
		t.Error("reset did not clear MemTouched")
	}

	// With analysis disabled the reader is conservatively a writer.
	cfg := engines.WizardSPC()
	cfg.NoAnalysis = true
	inst2, err := engine.New(cfg, nil).Instantiate(readWriteModule())
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Release()
	inst2.RT.MemTouched = false
	if _, err := inst2.Call("reader"); err != nil {
		t.Fatal(err)
	}
	if !inst2.RT.MemTouched {
		t.Error("NoAnalysis engine skipped MemTouched; nothing proves the reader read-only there")
	}
}

// poisonModule imports env.maybe (panics when its argument is nonzero)
// and exports poke(x) = call maybe(x), plus a healthy seven() = 7.
func poisonModule() []byte {
	b := wasm.NewBuilder()
	maybe := b.ImportFunc("env", "maybe", wasm.FuncType{Params: []wasm.ValueType{wasm.I32}})
	poke := b.NewFunc("poke", wasm.FuncType{Params: []wasm.ValueType{wasm.I32}})
	poke.LocalGet(0).Call(maybe).End()
	b.Export("poke", poke.Idx)
	seven := b.NewFunc("seven", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
	seven.I32Const(7).End()
	b.Export("seven", seven.Idx)
	return b.Encode()
}

func poisonLinker() *engine.Linker {
	return engine.NewLinker().Func("env", "maybe",
		wasm.FuncType{Params: []wasm.ValueType{wasm.I32}},
		func(_ *rt.Context, args, _ []uint64) error {
			if args[0] != 0 {
				panic("maybe: poisoned request")
			}
			return nil
		})
}

// TestPoolPoisonedInstanceDropped asserts the host-panic containment
// chain end to end in every cataloged executor: the panic surfaces as
// TrapHostPanic, the instance is poisoned, and the pool drops it on Put
// (counting the drop) instead of ever handing it out again.
func TestPoolPoisonedInstanceDropped(t *testing.T) {
	for _, cfg := range engines.Catalog() {
		t.Run(cfg.Name, func(t *testing.T) {
			eng := engine.New(cfg, poisonLinker())
			cm, err := eng.Compile(poisonModule())
			if err != nil {
				t.Fatal(err)
			}
			pool := cm.NewPool(4)
			defer pool.Close()

			inst, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			_, err = inst.Call("poke", wasm.ValI32(1))
			var trap *rt.Trap
			if !errors.As(err, &trap) || trap.Kind != rt.TrapHostPanic {
				t.Fatalf("host panic: got %v, want TrapHostPanic", err)
			}
			if !inst.RT.Poisoned {
				t.Fatal("host panic did not poison the instance")
			}
			pool.Put(inst)

			// The drop happens on the background reset; wait for it.
			deadline := time.Now().Add(5 * time.Second)
			for pool.Stats().PoisonDrops == 0 {
				if time.Now().After(deadline) {
					t.Fatal("poisoned instance was never dropped")
				}
				time.Sleep(time.Millisecond)
			}

			// The pool never hands the poisoned instance out again, and
			// keeps serving healthy requests.
			for i := 0; i < 4; i++ {
				got, err := pool.Get()
				if err != nil {
					t.Fatal(err)
				}
				if got == inst {
					t.Fatal("pool handed out a poisoned instance")
				}
				res, err := got.Call("seven")
				if err != nil || res[0].I32() != 7 {
					t.Fatalf("healthy request after poison drop: %v %v", res, err)
				}
				pool.Put(got)
			}
		})
	}
}

// TestPoolPoisonConcurrentServing hammers one pool from many workers
// while a fraction of requests panic their host call, and asserts every
// healthy request still succeeds and every poisoned instance is
// dropped, not recycled. Run under -race this doubles as the data-race
// check on the poison flag's write (trap path) vs reads (reset path,
// discard path).
func TestPoolPoisonConcurrentServing(t *testing.T) {
	eng := engine.New(engines.WizardSPC(), poisonLinker())
	cm, err := eng.Compile(poisonModule())
	if err != nil {
		t.Fatal(err)
	}
	pool := cm.NewPool(4)
	defer pool.Close()

	const (
		nWorkers  = 8
		perWorker = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, nWorkers*perWorker)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				inst, err := pool.Get()
				if err != nil {
					errs <- err
					return
				}
				if i%5 == w%5 {
					// A poisoning request: the panic must surface as a
					// trap, never as a crashed worker.
					_, err := inst.Call("poke", wasm.ValI32(1))
					var trap *rt.Trap
					if !errors.As(err, &trap) || trap.Kind != rt.TrapHostPanic {
						errs <- fmt.Errorf("worker %d: got %v, want TrapHostPanic", w, err)
						return
					}
				} else {
					res, err := inst.Call("seven")
					if err != nil || res[0].I32() != 7 {
						errs <- fmt.Errorf("worker %d: healthy request: %v %v", w, res, err)
						return
					}
					if inst.RT.Poisoned {
						errs <- fmt.Errorf("worker %d: pool handed out a poisoned instance", w)
						return
					}
				}
				pool.Put(inst)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Prove the poison-drop path was taken, with a deterministic final
	// cycle: the concurrent phase may race some poisoned Puts into
	// capacity overflow, which discards without a reset, but with the
	// workers quiet this Put lands in the pool and must be reset-refused.
	inst, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("poke", wasm.ValI32(1)); err == nil {
		t.Fatal("poisoning request unexpectedly succeeded")
	}
	base := pool.Stats().PoisonDrops
	pool.Put(inst)
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().PoisonDrops <= base {
		if time.Now().After(deadline) {
			t.Fatalf("poison drops stuck at %d after a poisoned Put", base)
		}
		time.Sleep(time.Millisecond)
	}
}
