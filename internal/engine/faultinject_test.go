package engine_test

// The fault-injection schedule driver: every injection point registered
// anywhere in the engine (host calls, pool resets, memory growth, the
// four disk-cache failure modes) has a driver here that arms it, runs a
// workload that reaches it, and asserts the graceful-degradation
// contract — recompile on cache corruption, a defined guest result on
// grow failure, trap-and-poison on host panic — rather than trusting
// failure branches that never run under normal tests. The schedule test
// runs the drivers in a seeded random order and then asserts that every
// registered point actually fired, so adding an injection point without
// a driver fails the suite.

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/faultinject"
	"wizgo/internal/instancepool"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// hostAddModule imports env.add and exports call5() = add(2, 3).
func hostAddModule() []byte {
	b := wasm.NewBuilder()
	ft := wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32, wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	}
	add := b.ImportFunc("env", "add", ft)
	f := b.NewFunc("call5", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
	f.I32Const(2).I32Const(3).Call(add).End()
	b.Export("call5", f.Idx)
	return b.Encode()
}

func hostAddLinker() *engine.Linker {
	return engine.NewLinker().Func("env", "add", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32, wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	}, func(_ *rt.Context, args, results []uint64) error {
		results[0] = uint64(uint32(int32(args[0]) + int32(args[1])))
		return nil
	})
}

// growModule exports grow() = memory.grow(1), normally the old page
// count (1), and -1 when growth fails.
func growModule() []byte {
	b := wasm.NewBuilder()
	b.AddMemory(1, 4)
	f := b.NewFunc("grow", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
	f.I32Const(1).MemoryGrow().End()
	b.Export("grow", f.Idx)
	return b.Encode()
}

// mulModule is the disk-cache workload: a pure function whose artifact
// round-trips through the store.
func mulModule() []byte {
	b := wasm.NewBuilder()
	f := b.NewFunc("mul", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32, wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	})
	f.LocalGet(0).LocalGet(1).Op(wasm.OpI32Mul).End()
	b.Export("mul", f.Idx)
	return b.Encode()
}

func callI32(t *testing.T, inst *engine.Instance, name string, want int32, args ...wasm.Value) {
	t.Helper()
	res, err := inst.Call(name, args...)
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	if res[0].I32() != want {
		t.Fatalf("call %s = %d, want %d", name, res[0].I32(), want)
	}
}

// mustFire asserts the driver's workload actually reached its point.
func mustFire(t *testing.T, point string, before int) {
	t.Helper()
	if faultinject.Fired(point) <= before {
		t.Fatalf("injection point %s never fired", point)
	}
}

// faultDrivers maps every registered injection point to the test that
// arms it and asserts graceful degradation. The schedule test fails if
// a registered point has no driver.
var faultDrivers = map[string]func(t *testing.T){
	"engine.host.call":         driveHostCall,
	"instancepool.reset":       drivePoolReset,
	"rt.memory.grow":           driveMemGrow,
	"codecache.disk.mmap":      func(t *testing.T) { driveDiskFault(t, "codecache.disk.mmap") },
	"codecache.disk.shortread": func(t *testing.T) { driveDiskFault(t, "codecache.disk.shortread") },
	"codecache.disk.checksum":  func(t *testing.T) { driveDiskFault(t, "codecache.disk.checksum") },
	"codecache.disk.stalelock": driveDiskStaleLock,
}

// driveHostCall exercises the three host-call fault modes: an injected
// error surfaces as TrapHostError, a delay completes normally, and a
// panic is contained as TrapHostPanic with the instance poisoned and
// refused by Reset.
func driveHostCall(t *testing.T) {
	const point = "engine.host.call"
	for _, cfg := range engines.Catalog() {
		eng := engine.New(cfg, hostAddLinker())
		inst, err := eng.Instantiate(hostAddModule())
		if err != nil {
			t.Fatalf("%s: instantiate: %v", cfg.Name, err)
		}

		// Error mode: the injected error is wrapped as a host-error trap.
		before := faultinject.Fired(point)
		disarm := faultinject.Arm(point, faultinject.Fault{Count: 1})
		_, err = inst.Call("call5")
		disarm()
		var trap *rt.Trap
		if !errors.As(err, &trap) || trap.Kind != rt.TrapHostError {
			t.Fatalf("%s: injected host error: got %v, want TrapHostError", cfg.Name, err)
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: trap does not wrap the injected error: %v", cfg.Name, err)
		}
		mustFire(t, point, before)

		// Delay mode: a slow host is not an error.
		disarm = faultinject.Arm(point, faultinject.Fault{Delay: time.Millisecond, Count: 1})
		callI32(t, inst, "call5", 5)
		disarm()

		// Panic mode: contained as a trap, and the instance is poisoned.
		disarm = faultinject.Arm(point, faultinject.Fault{Panic: "injected host panic", Count: 1})
		_, err = inst.Call("call5")
		disarm()
		if !errors.As(err, &trap) || trap.Kind != rt.TrapHostPanic {
			t.Fatalf("%s: injected host panic: got %v, want TrapHostPanic", cfg.Name, err)
		}
		if !inst.RT.Poisoned {
			t.Fatalf("%s: host panic did not poison the instance", cfg.Name)
		}
		if err := inst.Reset(inst.Snapshot()); !errors.Is(err, instancepool.ErrPoisoned) {
			t.Fatalf("%s: Reset of a poisoned instance: got %v, want ErrPoisoned", cfg.Name, err)
		}
	}
}

// drivePoolReset injects a reset failure and asserts the pool discards
// the instance and serves the next request from a fresh one.
func drivePoolReset(t *testing.T) {
	const point = "instancepool.reset"
	eng := engine.New(engines.WizardSPC(), nil)
	cm, err := eng.Compile(mulModule())
	if err != nil {
		t.Fatal(err)
	}
	pool := cm.NewPool(2)
	defer pool.Close()

	inst, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	callI32(t, inst, "mul", 42, wasm.ValI32(6), wasm.ValI32(7))

	before := faultinject.Fired(point)
	disarm := faultinject.Arm(point, faultinject.Fault{Count: 1})
	defer disarm()
	pool.Put(inst) // background reset fails; the instance is discarded

	// The pool must keep serving: whichever path the next Get takes
	// (fresh instantiation after the discard), the request succeeds.
	inst, err = pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	callI32(t, inst, "mul", 42, wasm.ValI32(6), wasm.ValI32(7))
	pool.Put(inst)

	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().ResetFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected reset failure was never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	mustFire(t, point, before)
}

// driveMemGrow injects a growth failure and asserts the guest observes
// the defined failure result (-1), not an error.
func driveMemGrow(t *testing.T) {
	const point = "rt.memory.grow"
	for _, cfg := range engines.Catalog() {
		eng := engine.New(cfg, nil)
		inst, err := eng.Instantiate(growModule())
		if err != nil {
			t.Fatalf("%s: instantiate: %v", cfg.Name, err)
		}
		before := faultinject.Fired(point)
		disarm := faultinject.Arm(point, faultinject.Fault{Count: 1})
		callI32(t, inst, "grow", -1) // injected failure: defined result
		disarm()
		mustFire(t, point, before)
		callI32(t, inst, "grow", 1) // recovered: the same grow now works
	}
}

// diskEngine builds an engine with a cold memory cache over the given
// artifact directory, so every Compile consults the disk tier.
func diskEngine(t *testing.T, dir string) (*engine.Engine, *codecache.DiskStore) {
	t.Helper()
	disk, err := engine.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engines.WizardSPC()
	cfg.Cache = codecache.New(codecache.Options{})
	cfg.DiskCache = disk
	return engine.New(cfg, nil), disk
}

// driveDiskFault injects one of the artifact-read failure modes (mmap
// failure, truncation, checksum corruption) into a warm disk cache and
// asserts the cold process recompiles and still serves correct code —
// corruption must never be an error, only a miss.
func driveDiskFault(t *testing.T, point string) {
	dir := t.TempDir()

	warm, _ := diskEngine(t, dir)
	if _, err := warm.Compile(mulModule()); err != nil {
		t.Fatal(err)
	}

	cold, disk := diskEngine(t, dir)
	before := faultinject.Fired(point)
	disarm := faultinject.Arm(point, faultinject.Fault{Count: 1})
	defer disarm()
	cm, err := cold.Compile(mulModule())
	if err != nil {
		t.Fatalf("%s: compile with injected fault: %v", point, err)
	}
	mustFire(t, point, before)
	if cold.CompileCalls() == 0 {
		t.Fatalf("%s: injected fault did not force a recompile", point)
	}
	if st := disk.Stats(); st.Misses == 0 {
		t.Fatalf("%s: injected fault was not a disk miss: %+v", point, st)
	}
	inst, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	callI32(t, inst, "mul", 42, wasm.ValI32(6), wasm.ValI32(7))
}

// driveDiskStaleLock abandons a writer lock (as a crashed process
// would) and asserts a cold process — with the stale judgment forced by
// injection — breaks the lock, compiles, and republishes the artifact
// instead of waiting forever or failing.
func driveDiskStaleLock(t *testing.T) {
	const point = "codecache.disk.stalelock"
	dir := t.TempDir()

	warm, _ := diskEngine(t, dir)
	if _, err := warm.Compile(mulModule()); err != nil {
		t.Fatal(err)
	}

	// Replace the artifact with an abandoned lock: the cold Load below
	// misses, and TryLock finds another "writer" that will never finish.
	arts, err := filepath.Glob(filepath.Join(dir, "*.wzc"))
	if err != nil || len(arts) != 1 {
		t.Fatalf("artifact glob: %v (%d matches)", err, len(arts))
	}
	if err := os.WriteFile(arts[0]+".lock", []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(arts[0]); err != nil {
		t.Fatal(err)
	}

	cold, disk := diskEngine(t, dir)
	before := faultinject.Fired(point)
	disarm := faultinject.Arm(point, faultinject.Fault{Count: 1})
	defer disarm()
	cm, err := cold.Compile(mulModule())
	if err != nil {
		t.Fatalf("compile past an abandoned lock: %v", err)
	}
	mustFire(t, point, before)
	st := disk.Stats()
	if st.CorruptEvictions == 0 {
		t.Fatalf("breaking the stale lock was not counted: %+v", st)
	}
	if st.Writes == 0 {
		t.Fatalf("the lock-breaking compile did not republish the artifact: %+v", st)
	}
	inst, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	callI32(t, inst, "mul", 42, wasm.ValI32(6), wasm.ValI32(7))
}

// TestFaultSchedule is the seeded schedule driver: it runs every
// point's driver in a deterministic random order (several rounds, so
// points fire in different global orders), then asserts the catalog is
// fully covered — every registered point has a driver and every point
// actually fired.
func TestFaultSchedule(t *testing.T) {
	points := faultinject.Points()
	for _, p := range points {
		if faultDrivers[p] == nil {
			t.Errorf("registered injection point %s has no schedule driver", p)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	faultinject.ResetCounts()
	r := rand.New(rand.NewSource(1))
	for round := 0; round < 2; round++ {
		order := append([]string(nil), points...)
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, p := range order {
			p := p
			t.Run(p, func(t *testing.T) { faultDrivers[p](t) })
		}
	}

	for _, p := range points {
		if faultinject.Fired(p) == 0 {
			t.Errorf("injection point %s registered but never fired under the schedule", p)
		}
	}
}
