package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"wizgo/internal/analysis"
	"wizgo/internal/codecache"
	"wizgo/internal/mach"
	"wizgo/internal/rewriter"
	"wizgo/internal/telemetry"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
	"wizgo/internal/wbin"
)

// CompilerRevision stamps every persisted artifact. Bump it whenever
// compiled output changes shape or meaning — new opcodes, changed frame
// layout, changed sidetable semantics — and every stale artifact in
// every cache directory is evicted on its next load instead of
// executing under wrong assumptions. The analysis version is folded in
// because serialized facts license check elision: an artifact produced
// under different analysis rules must self-invalidate.
const CompilerRevision = "wizgo-codegen-4+analysis-" + analysis.Version

// DiskStamp returns the producer identity for this build: the host ISA
// (MachCode is portable, but a real JIT cache is ISA-keyed, and keeping
// the discipline costs nothing) and the compiler revision.
func DiskStamp() codecache.Stamp {
	return codecache.Stamp{
		ISA:              runtime.GOARCH + "/machcode",
		CompilerRevision: CompilerRevision,
	}
}

// OpenDiskCache opens (creating if needed) a persistent artifact store
// at dir, stamped for this build. Plug the result into Config.DiskCache
// and a cold process's first Compile of a previously seen module loads
// the artifact instead of running the compiler.
func OpenDiskCache(dir string) (*codecache.DiskStore, error) {
	return codecache.OpenDisk(dir, codecache.DiskOptions{Stamp: DiskStamp()})
}

// Per-function code sections carry a kind tag so decode can rebuild the
// right concrete executor type.
const (
	codeKindNil      = 0 // function not eagerly compiled (interp/lazy)
	codeKindMach     = 1 // *mach.Code: SPC, copy-and-patch and opt tiers
	codeKindRewriter = 2 // *rewriter.Code: rewriting-interpreter tiers
)

// errUncacheableCode reports a tier whose code objects the artifact
// format cannot represent; the module then stays memory-cached only.
var errUncacheableCode = errors.New("engine: code type has no artifact serialization")

// encodeArtifact serializes a compiled module into the disk-cache
// payload: the decoded module skeleton, the validation metadata of
// every local function, and its compiled code section. The module
// bytes themselves are NOT stored — the cache key is their content
// hash, so whoever asks for this artifact already holds them — but the
// decoded structure is, so a cold load never re-parses the binary:
// function bodies rehydrate as offsets into the module bytes.
func encodeArtifact(cm *CompiledModule) ([]byte, error) {
	w := wbin.NewWriter(1024 + 64*len(cm.Infos))

	wasm.AppendSkeleton(w, cm.Module)

	// Section headers carry exact bulk totals so the decoder can
	// allocate each kind of storage once, up front, and sub-slice per
	// function (see mach.DecodeArena): a cold process's rehydration
	// cost is mostly allocation, and scattered small makes fault in
	// heap spans one by one.
	var totST, totInfoTypes int
	for i := range cm.Infos {
		totST += len(cm.Infos[i].Sidetable)
		totInfoTypes += len(cm.Infos[i].LocalTypes) + len(cm.Infos[i].Results)
	}
	w.Uvarint(uint64(len(cm.Infos)))
	w.Uvarint(uint64(totST))
	w.Uvarint(uint64(totInfoTypes))
	for i := range cm.Infos {
		encodeFuncInfo(w, &cm.Infos[i])
	}

	if cm.Codes == nil {
		w.Bool(false)
		return w.Bytes(), nil
	}
	w.Bool(true)
	var nMach, machInstrs, machTypes int
	var nRw, rwInstrs, rwTypes int
	for _, code := range cm.Codes {
		switch c := code.(type) {
		case *mach.Code:
			nMach++
			machInstrs += len(c.Instrs)
			machTypes += len(c.LocalTypes)
		case *rewriter.Code:
			nRw++
			rwInstrs += len(c.Instrs)
			rwTypes += len(c.LocalTypes)
		}
	}
	for _, n := range []int{nMach, machInstrs, machTypes, nRw, rwInstrs, rwTypes} {
		w.Uvarint(uint64(n))
	}
	w.Uvarint(uint64(len(cm.Codes)))
	for _, code := range cm.Codes {
		switch c := code.(type) {
		case nil:
			w.U8(codeKindNil)
		case *mach.Code:
			w.U8(codeKindMach)
			if err := c.AppendTo(w); err != nil {
				return nil, err
			}
		case *rewriter.Code:
			w.U8(codeKindRewriter)
			if err := c.AppendTo(w); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: %T", errUncacheableCode, code)
		}
	}
	return w.Bytes(), nil
}

// decodeArtifact rebuilds a CompiledModule from module bytes plus a
// verified artifact payload. Nothing is re-derived from the binary:
// the module structure rehydrates from the persisted skeleton (bodies
// resolve as offsets into bytes), the sidetables come from the payload,
// and the code sections materialize directly as executor objects —
// no parse, no validation, no compilation. This is the zero-compile
// cold-start path.
func (e *Engine) decodeArtifact(bytes []byte, payload []byte) (*CompiledModule, error) {
	t1 := time.Now()
	r := wbin.NewReader(payload)
	m, err := wasm.DecodeSkeleton(r, bytes)
	if err != nil {
		return nil, err
	}
	nInfos := r.Count(1)
	if r.Err() == nil && nInfos != len(m.Funcs) {
		return nil, fmt.Errorf("engine: artifact has %d function infos, module has %d functions",
			nInfos, len(m.Funcs))
	}
	// Bulk totals from the section header, validated against the
	// remaining payload (Count) so corrupt totals cannot provoke a
	// runaway allocation; a lying total merely exhausts the arena and
	// the decoders fall back to plain makes.
	totST := r.Count(sidetableRecordSize)
	ia := infoArena{
		st:     make([]validate.SidetableEntry, 0, totST),
		owners: make([]uint32, 0, totST),
		types:  make([]wasm.ValueType, 0, r.Count(1)),
	}
	infos := make([]validate.FuncInfo, nInfos)
	for i := range infos {
		if err := decodeFuncInfo(r, &infos[i], &ia); err != nil {
			return nil, err
		}
	}

	cm := &CompiledModule{
		engine: e, Module: m, Infos: infos,
		Timings:  Timings{ModuleBytes: len(bytes)},
		Analysis: analysis.StatsFromInfos(infos),
	}

	if hasCodes := r.Bool(); hasCodes {
		// Count-validated totals size the per-kind arenas; each instr
		// record is at least 8 bytes on disk, so Count(8) bounds the
		// arena against the payload even for corrupt totals.
		nMach, machInstrs, machTypes := r.Count(1), r.Count(8), r.Count(1)
		nRw, rwInstrs, rwTypes := r.Count(1), r.Count(8), r.Count(1)
		var machArena *mach.DecodeArena
		var rwArena *rewriter.DecodeArena
		if r.Err() == nil {
			if nMach > 0 {
				machArena = mach.NewDecodeArena(nMach, machInstrs, machTypes)
			}
			if nRw > 0 {
				rwArena = rewriter.NewDecodeArena(nRw, rwInstrs, rwTypes)
			}
		}
		nCodes := r.Count(1)
		if r.Err() == nil && nCodes != len(m.Funcs) {
			return nil, fmt.Errorf("engine: artifact has %d code sections, module has %d functions",
				nCodes, len(m.Funcs))
		}
		codes := make([]Code, nCodes)
		for i := range codes {
			switch kind := r.U8(); kind {
			case codeKindNil:
			case codeKindMach:
				c, err := mach.DecodeCode(r, machArena)
				if err != nil {
					return nil, err
				}
				codes[i] = c
				cm.Timings.CodeBytes += c.Bytes()
			case codeKindRewriter:
				c, err := rewriter.DecodeCode(r, rwArena)
				if err != nil {
					return nil, err
				}
				codes[i] = c
				cm.Timings.CodeBytes += c.Bytes()
			default:
				return nil, fmt.Errorf("engine: unknown artifact code kind %d", kind)
			}
			if r.Err() != nil {
				return nil, r.Err()
			}
		}
		cm.Codes = codes
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	cm.Timings.Rehydrate = time.Since(t1)
	hRehydrate.Observe(cm.Timings.Rehydrate)
	if tr := telemetry.DefaultTracer(); tr.Enabled() {
		tr.Record(telemetry.StageCacheDisk, "rehydrate", t1, cm.Timings.Rehydrate, "")
	}
	return cm, nil
}

// sidetableRecordSize is the fixed on-disk width of one sidetable
// entry: two little-endian u64 words — (TargetIP | TargetSTP<<32),
// (ValCount | PopCount<<32). Fixed-width word-packed records keep
// rehydration a bulk loop of two loads per entry; for interpreter tiers
// the sidetable IS the artifact, so this is their whole cold-start
// decode cost.
const sidetableRecordSize = 2 * 8

// encodeFuncInfo serializes one function's validation output — the
// sidetable and frame metadata every executor (and the deopt path)
// needs — so a disk load skips the validation pass too.
func encodeFuncInfo(w *wbin.Writer, fi *validate.FuncInfo) {
	w.Uvarint(uint64(len(fi.Sidetable)))
	b := w.Reserve(sidetableRecordSize * len(fi.Sidetable))
	for i, st := range fi.Sidetable {
		rec := b[i*sidetableRecordSize : (i+1)*sidetableRecordSize]
		binary.LittleEndian.PutUint64(rec[0:], uint64(st.TargetIP)|uint64(st.TargetSTP)<<32)
		binary.LittleEndian.PutUint64(rec[8:], uint64(st.ValCount)|uint64(st.PopCount)<<32)
	}
	w.Uvarint(uint64(len(fi.Owners)))
	b = w.Reserve(4 * len(fi.Owners))
	for i, o := range fi.Owners {
		binary.LittleEndian.PutUint32(b[i*4:], o)
	}
	w.Uvarint(uint64(fi.MaxStack))
	w.Uvarint(uint64(len(fi.LocalTypes)))
	for _, t := range fi.LocalTypes {
		w.U8(uint8(t))
	}
	w.Uvarint(uint64(len(fi.Results)))
	for _, t := range fi.Results {
		w.U8(uint8(t))
	}
	w.Uvarint(uint64(fi.NumParams))
	w.Uvarint(uint64(fi.BodyLen))
	// Facts tail: the static-analysis bitsets ride in the artifact so a
	// disk-cache load keeps every elided check without rerunning the
	// analysis (its absence — NoAnalysis engines, old artifacts — just
	// means no elision).
	if fi.Facts == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Bool(fi.Facts.WritesMemory)
	w.Uvarint(uint64(fi.Facts.BoundsProven))
	w.Uvarint(uint64(fi.Facts.PollsElided))
	writeWords(w, fi.Facts.InBounds)
	writeWords(w, fi.Facts.NoPoll)
	writeWords(w, fi.Facts.Prepaid)
	w.Uvarint(uint64(len(fi.Facts.Trips)))
	for _, pc := range sortedKeys(fi.Facts.Trips) {
		w.Uvarint(uint64(pc))
		w.Uvarint(uint64(fi.Facts.Trips[pc]))
	}
}

// sortedKeys orders the trip-count map so artifact bytes are
// deterministic for identical facts (the cache keys on content).
func sortedKeys(m map[int]int64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func writeWords(w *wbin.Writer, words []uint64) {
	w.Uvarint(uint64(len(words)))
	b := w.Reserve(8 * len(words))
	for i, v := range words {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
}

// infoArena holds the artifact-wide bulk storage for FuncInfo decoding,
// sized from the section header's totals; see mach.DecodeArena for the
// rationale. Exhaustion (lying totals) falls back to plain allocation.
type infoArena struct {
	st     []validate.SidetableEntry
	owners []uint32
	types  []wasm.ValueType
}

func readWords(r *wbin.Reader) []uint64 {
	n := r.Count(8)
	if n == 0 {
		return nil
	}
	words := make([]uint64, n)
	if b := r.Take(8 * n); b != nil {
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(b[i*8:])
		}
	}
	return words
}

func (a *infoArena) takeST(n int) []validate.SidetableEntry {
	if len(a.st)+n > cap(a.st) {
		return make([]validate.SidetableEntry, n)
	}
	s := a.st[len(a.st) : len(a.st)+n]
	a.st = a.st[:len(a.st)+n]
	return s
}

func (a *infoArena) takeOwners(n int) []uint32 {
	if len(a.owners)+n > cap(a.owners) {
		return make([]uint32, n)
	}
	s := a.owners[len(a.owners) : len(a.owners)+n]
	a.owners = a.owners[:len(a.owners)+n]
	return s
}

func (a *infoArena) takeTypes(n int) []wasm.ValueType {
	if len(a.types)+n > cap(a.types) {
		return make([]wasm.ValueType, n)
	}
	s := a.types[len(a.types) : len(a.types)+n]
	a.types = a.types[:len(a.types)+n]
	return s
}

func decodeFuncInfo(r *wbin.Reader, fi *validate.FuncInfo, arena *infoArena) error {
	nST := r.Count(sidetableRecordSize)
	if nST > 0 {
		fi.Sidetable = arena.takeST(nST)
		if b := r.Take(sidetableRecordSize * nST); b != nil {
			for i := range fi.Sidetable {
				w0 := binary.LittleEndian.Uint64(b[0:])
				w1 := binary.LittleEndian.Uint64(b[8:])
				b = b[sidetableRecordSize:]
				fi.Sidetable[i] = validate.SidetableEntry{
					TargetIP:  uint32(w0),
					TargetSTP: uint32(w0 >> 32),
					ValCount:  uint32(w1),
					PopCount:  uint32(w1 >> 32),
				}
			}
		}
	}
	nOwn := r.Count(4)
	if nOwn > 0 {
		fi.Owners = arena.takeOwners(nOwn)
		if b := r.Take(4 * nOwn); b != nil {
			for i := range fi.Owners {
				fi.Owners[i] = binary.LittleEndian.Uint32(b[i*4:])
			}
		}
	}
	fi.MaxStack = int(r.Uvarint())
	nLocals := r.Count(1)
	fi.LocalTypes = arena.takeTypes(nLocals)
	for i := range fi.LocalTypes {
		fi.LocalTypes[i] = wasm.ValueType(r.U8())
	}
	nResults := r.Count(1)
	if nResults > 0 {
		fi.Results = arena.takeTypes(nResults)
		for i := range fi.Results {
			fi.Results[i] = wasm.ValueType(r.U8())
		}
	}
	fi.NumParams = int(r.Uvarint())
	fi.BodyLen = int(r.Uvarint())
	if r.Bool() {
		facts := &validate.Facts{
			WritesMemory: r.Bool(),
			BoundsProven: int(r.Uvarint()),
			PollsElided:  int(r.Uvarint()),
		}
		facts.InBounds = readWords(r)
		facts.NoPoll = readWords(r)
		facts.Prepaid = readWords(r)
		if n := int(r.Count(2)); n > 0 {
			facts.Trips = make(map[int]int64, n)
			for i := 0; i < n; i++ {
				pc := int(r.Uvarint())
				facts.Trips[pc] = int64(r.Uvarint())
			}
		}
		if r.Err() == nil {
			fi.Facts = facts
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if len(fi.Owners) != len(fi.Sidetable) {
		return fmt.Errorf("engine: artifact sidetable has %d owners for %d entries",
			len(fi.Owners), len(fi.Sidetable))
	}
	if fi.NumParams > len(fi.LocalTypes) {
		return fmt.Errorf("engine: artifact declares %d params over %d locals",
			fi.NumParams, len(fi.LocalTypes))
	}
	return nil
}
