package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wizgo/internal/instancepool"
	"wizgo/internal/rt"
)

// Snapshot is the post-instantiation state of an instance — linear
// memory after data segments and the start function, globals, and
// tables — captured once and shared read-only by every reset against
// it. It is the baseline the instance pool restores instances to.
//
// Only state the instance OWNS is captured: an imported memory, table
// or global belongs to its exporting instance, and resetting it from
// here would roll back state the exporter (and every other importer)
// still depends on. For a module whose memory is imported, mem is nil
// and reset leaves the shared memory untouched.
type Snapshot struct {
	mem     []byte          // nil when the memory is imported
	globals []rt.GlobalSlot // owned globals only (indices ≥ ImportedGlobals)
	tables  [][]uint64      // owned tables only (indices ≥ ImportedTables)
}

// Snapshot captures the instance's current owned memory, globals and
// tables. Call it on a quiescent instance, normally right after
// instantiation.
func (inst *Instance) Snapshot() *Snapshot {
	ri := inst.RT
	s := &Snapshot{}
	if ri.OwnsMemory {
		// make (not a nil literal) so a zero-size owned memory still
		// yields a non-nil snapshot, which Reset uses to distinguish
		// "owned but empty" from "imported".
		s.mem = append(make([]byte, 0, len(ri.Memory.Data)), ri.Memory.Data...)
	}
	for _, g := range ri.Globals[ri.ImportedGlobals:] {
		s.globals = append(s.globals, *g)
	}
	for _, t := range ri.Tables[ri.ImportedTables:] {
		s.tables = append(s.tables, append([]uint64(nil), t.Elems...))
	}
	return s
}

// Reset restores the instance to the snapshot state: owned linear
// memory via the memory's dirty-granule tracking (only granules written
// since the last reset are copied back; see rt.Memory.ResetTo), owned
// globals and tables wholesale (they are small). Imported memory,
// tables and globals are deliberately NOT restored — the instance does
// not own them, and their exporter (or its own pool) is responsible for
// their lifecycle. The execution context is cleared of any aborted-call
// residue, and a Released instance is re-armed with a recycled value
// stack. The value stack itself is reused dirty for the same reason
// Release can pool it: executors never read slots they have not
// written.
//
// Per-function tier state (lazily compiled code, call counts, attached
// probes) is deliberately retained — a recycled instance stays warm,
// and none of it is observable in execution results.
func (inst *Instance) Reset(s *Snapshot) error {
	ri := inst.RT
	if ri.Poisoned {
		// A host panic interrupted arbitrary host-side work: the snapshot
		// can restore guest-visible state, but nothing can vouch for what
		// the host half-finished (external handles, partially written
		// side state). Refuse, so pools drop the instance instead of
		// recycling it.
		return fmt.Errorf("engine: %w: host panic left the instance in an unknown state", instancepool.ErrPoisoned)
	}
	if inst.Ctx.Depth != 0 || len(inst.Ctx.Frames) != 0 {
		return fmt.Errorf("engine: cannot reset an instance with a call in progress")
	}
	ownedGlobals := ri.Globals[ri.ImportedGlobals:]
	ownedTables := ri.Tables[ri.ImportedTables:]
	if len(ownedGlobals) != len(s.globals) || len(ownedTables) != len(s.tables) ||
		ri.OwnsMemory != (s.mem != nil) {
		return fmt.Errorf("engine: snapshot shape mismatch: %d/%d owned globals, %d/%d owned tables, owns-memory %v/%v",
			len(ownedGlobals), len(s.globals), len(ownedTables), len(s.tables),
			ri.OwnsMemory, s.mem != nil)
	}
	if ri.OwnsMemory {
		// Every top-level call since the last reset proven read-only by
		// the static analysis (MemTouched never set) means the memory
		// still equals the snapshot — skip the restore. Grown() catches
		// the paths that bypass the proof (host writes via MarkAll,
		// memory.grow), so the skip is belt-and-suspenders sound.
		if ri.MemTouched || ri.Memory.Grown() {
			ri.Memory.ResetTo(s.mem)
		}
		ri.MemTouched = false
	}
	for i, g := range ownedGlobals {
		*g = s.globals[i]
	}
	for i, t := range ownedTables {
		if len(t.Elems) != len(s.tables[i]) {
			t.Elems = append(t.Elems[:0], s.tables[i]...)
		} else {
			copy(t.Elems, s.tables[i])
		}
	}
	inst.Ctx.Resume = rt.FrameInfo{}
	if inst.Ctx.Stack == nil {
		inst.Ctx.Stack = inst.Engine.stacks.Get().(*rt.ValueStack)
		inst.released.Store(false)
	}
	return nil
}

// InstancePool recycles whole instances of one CompiledModule: Get
// returns an instance reset to its post-instantiation state (memory,
// globals, tables), instantiating fresh only when the pool is empty.
// The reset itself runs in the background after Put, so a steady-state
// Get pays neither instantiation nor reset — instancepool.Stats splits
// the reset latency into the on-put (hidden) and on-get (request-path)
// shares. It is the engine-typed facade over instancepool.Pool and is
// safe for concurrent use.
type InstancePool struct {
	cm       *CompiledModule
	pool     *instancepool.Pool[*Instance]
	snap     atomic.Pointer[Snapshot]
	snapOnce sync.Once
}

// NewPool creates an instance pool retaining up to capacity idle
// instances (capacity <= 0 selects the instancepool default).
//
// The reset baseline is the post-instantiation state of the first
// instance the pool creates; modules whose start function is
// nondeterministic (e.g. via host imports) would make that baseline
// instance-specific and should not be pooled. Instances obtained from
// Get must not be Released while still in the pool's custody — return
// them with Put, which releases on overflow.
func (cm *CompiledModule) NewPool(capacity int) *InstancePool {
	ip := &InstancePool{cm: cm}
	pool, err := instancepool.New(instancepool.Config[*Instance]{
		Capacity: capacity,
		New:      ip.newInstance,
		Reset:    func(inst *Instance) error { return inst.Reset(ip.snap.Load()) },
		Discard: func(inst *Instance) {
			// A discard can follow a failed reset, and a reset fails
			// when the instance was Put with a call still in progress —
			// releasing then would pool a stack that call is executing
			// on. Leaking the misused instance is always safe; pooling
			// its stack is not. A poisoned instance's stack is equally
			// suspect (the panic may have unwound past frame cleanup),
			// so it is leaked with the instance.
			if !inst.RT.Poisoned && inst.Ctx.Depth == 0 && len(inst.Ctx.Frames) == 0 {
				inst.Release()
			}
		},
	})
	if err != nil {
		// Unreachable: both callbacks are always supplied.
		panic(err)
	}
	ip.pool = pool
	return ip
}

// newInstance is the pool's miss path: instantiate, capture the shared
// reset baseline the first time, and start write tracking so the next
// reset copies only what the instance's runs actually dirtied.
func (ip *InstancePool) newInstance() (*Instance, error) {
	inst, err := ip.cm.Instantiate()
	if err != nil {
		return nil, err
	}
	// Every fresh instance is an equally valid baseline; the Once keeps
	// concurrent cold misses from each copying a multi-megabyte memory
	// only to discard all but one.
	ip.snapOnce.Do(func() { ip.snap.Store(inst.Snapshot()) })
	// Only an owned memory is reset (and therefore worth tracking);
	// tracking an imported memory would tax the exporter's writes for a
	// reset that never happens here.
	if inst.RT.OwnsMemory {
		inst.RT.Memory.EnableWriteTracking()
	}
	return inst, nil
}

// Get returns a ready instance: recycled (already reset in the
// background when the pool kept pace) when possible, freshly
// instantiated otherwise.
func (ip *InstancePool) Get() (*Instance, error) { return ip.pool.Get() }

// Put returns a quiescent instance obtained from Get for recycling and
// schedules its copy-on-write reset off the request path.
func (ip *InstancePool) Put(inst *Instance) { ip.pool.Put(inst) }

// Stats returns the pool's counters (get/reset/miss latencies, hit and
// drop counts).
func (ip *InstancePool) Stats() instancepool.Stats { return ip.pool.Stats() }

// Len returns the number of idle instances.
func (ip *InstancePool) Len() int { return ip.pool.Len() }

// Close releases every idle instance; subsequent Gets still work but
// always instantiate fresh.
func (ip *InstancePool) Close() { ip.pool.Close() }
