package engine_test

import (
	"os"
	"path/filepath"
	"testing"

	"wizgo/internal/analysis"
	"wizgo/internal/codecache"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/workloads"
)

// seedDir compiles item under cfg with a fresh cache and a disk tier on
// dir, runs the module, and returns its checksum. After it returns, dir
// holds exactly the artifact a restarted process would find.
func seedDir(t *testing.T, cfg engine.Config, item workloads.Item, dir string) int64 {
	t.Helper()
	cfg.Cache = codecache.New(codecache.Options{})
	disk, err := engine.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DiskCache = disk
	cm, err := engine.New(cfg, nil).Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	sum := runChecksum(t, cm)
	if st := disk.Stats(); st.Writes != 1 {
		t.Fatalf("seed disk writes = %d, want 1", st.Writes)
	}
	return sum
}

// coldCompile simulates a process restart: a fresh engine, an empty
// memory cache and a new disk handle on the same directory.
func coldCompile(t *testing.T, cfg engine.Config, item workloads.Item, dir string) (*engine.Engine, *engine.CompiledModule, *codecache.DiskStore) {
	t.Helper()
	cfg.Cache = codecache.New(codecache.Options{})
	disk, err := engine.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DiskCache = disk
	e := engine.New(cfg, nil)
	cm, err := e.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	return e, cm, disk
}

func runChecksum(t *testing.T, cm *engine.CompiledModule) int64 {
	t.Helper()
	inst, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Release()
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	got, err := inst.Call("checksum")
	if err != nil {
		t.Fatal(err)
	}
	return got[0].I64()
}

// TestArtifactColdReload is the zero-compile contract end to end, for a
// machine-code tier and a rewriting-interpreter tier (the two concrete
// code representations the artifact format carries): seed a cache dir,
// restart, and demand that the first Compile of the new process invokes
// the tier compiler zero times, is served entirely by rehydration, and
// yields an instance computing the exact same checksum.
func TestArtifactColdReload(t *testing.T) {
	item := workloads.Ostrich()[3] // crc: small and fast
	for _, cfg := range []engine.Config{engines.WizardSPC(), engines.Wasm3Like()} {
		t.Run(cfg.Name, func(t *testing.T) {
			dir := t.TempDir()
			want := seedDir(t, cfg, item, dir)

			e, cm, disk := coldCompile(t, cfg, item, dir)
			if n := e.CompileCalls(); n != 0 {
				t.Errorf("cold process invoked the compiler %d times, want 0", n)
			}
			st := disk.Stats()
			if st.Hits != 1 || st.Misses != 0 || st.Writes != 0 {
				t.Errorf("cold disk stats = %+v, want exactly one hit", st)
			}
			// The cold pipeline is rehydration only: no validation pass,
			// no compile pass.
			if cm.Timings.Rehydrate <= 0 {
				t.Error("cold load recorded no rehydration time")
			}
			if cm.Timings.Validate != 0 || cm.Timings.Compile != 0 {
				t.Errorf("cold load ran validate (%v) / compile (%v), want neither",
					cm.Timings.Validate, cm.Timings.Compile)
			}
			if got := runChecksum(t, cm); got != want {
				t.Errorf("cold checksum %#x != seed %#x (artifact loaded wrong code)", got, want)
			}
		})
	}
}

// TestArtifactColdReloadLazyTier: a lazy configuration compiles nothing
// eagerly, so its artifact carries only the skeleton and validation
// metadata — the cold process must still reload it, skip validation,
// and compile per instance on first call exactly like the seed did.
func TestArtifactColdReloadLazyTier(t *testing.T) {
	item := workloads.Ostrich()[3]
	cfg := engines.WizardTiered(100)
	dir := t.TempDir()
	want := seedDir(t, cfg, item, dir)

	_, cm, disk := coldCompile(t, cfg, item, dir)
	if cm.Codes != nil {
		t.Error("lazy artifact rehydrated eager code")
	}
	if st := disk.Stats(); st.Hits != 1 {
		t.Errorf("cold disk stats = %+v, want a hit", st)
	}
	if cm.Timings.Validate != 0 {
		t.Errorf("cold load ran validation (%v)", cm.Timings.Validate)
	}
	if got := runChecksum(t, cm); got != want {
		t.Errorf("lazy cold checksum %#x != seed %#x", got, want)
	}
}

// TestArtifactDeterministic: one module compiled twice must produce
// byte-identical artifacts — content-addressed stores dedupe on the
// bytes, and map iteration order or nondeterministic parallel compile
// order leaking into the encoding would silently break that.
func TestArtifactDeterministic(t *testing.T) {
	item := workloads.PolyBench()[0]
	read := func(dir string) []byte {
		matches, err := filepath.Glob(filepath.Join(dir, "*.wzc"))
		if err != nil || len(matches) != 1 {
			t.Fatalf("artifacts in %s: %v (err %v)", dir, matches, err)
		}
		data, err := os.ReadFile(matches[0])
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	cfg := engines.WizardSPC()
	cfg.CompileWorkers = 8 // parallel compile must not perturb the encoding
	dirA, dirB := t.TempDir(), t.TempDir()
	seedDir(t, cfg, item, dirA)
	seedDir(t, cfg, item, dirB)
	a, b := read(dirA), read(dirB)
	if string(a) != string(b) {
		t.Errorf("two compiles of one module produced different artifacts (%d vs %d bytes)", len(a), len(b))
	}
}

// TestArtifactCorruptFallsBackToCompile: a cold process facing a
// damaged artifact must transparently recompile — same checksum, one
// compiler invocation, corruption counted — because a cache dir that
// can break cold starts is worse than no cache dir.
func TestArtifactCorruptFallsBackToCompile(t *testing.T) {
	item := workloads.Ostrich()[3]
	cfg := engines.WizardSPC()
	dir := t.TempDir()
	want := seedDir(t, cfg, item, dir)

	matches, err := filepath.Glob(filepath.Join(dir, "*.wzc"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("artifacts: %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	e, cm, disk := coldCompile(t, cfg, item, dir)
	if n := e.CompileCalls(); n == 0 {
		t.Error("cold process served a corrupt artifact without recompiling")
	}
	st := disk.Stats()
	if st.CorruptEvictions != 1 {
		t.Errorf("CorruptEvictions = %d, want 1", st.CorruptEvictions)
	}
	if st.Writes != 1 {
		t.Errorf("Writes = %d, want 1 (clean republish after recompile)", st.Writes)
	}
	if got := runChecksum(t, cm); got != want {
		t.Errorf("recompiled checksum %#x != seed %#x", got, want)
	}
}

// TestArtifactCarriesFacts: the static-analysis facts must survive the
// disk round-trip bit-for-bit, so a cold process elides exactly the
// checks the seed proved — without rerunning the analysis.
func TestArtifactCarriesFacts(t *testing.T) {
	item := workloads.PolyBench()[0] // gemm: loop nests with provable accesses
	cfg := engines.WizardSPC()
	dir := t.TempDir()

	wcfg := cfg
	wcfg.Cache = codecache.New(codecache.Options{})
	disk, err := engine.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	wcfg.DiskCache = disk
	warm, err := engine.New(wcfg, nil).Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	want := warm.AnalysisStats()
	if want.BoundsProven == 0 && want.PollsElided == 0 {
		t.Fatalf("seed compile proved nothing on gemm: %+v", want)
	}

	_, cold, _ := coldCompile(t, cfg, item, dir)
	if got := cold.AnalysisStats(); got != want {
		t.Errorf("rehydrated analysis stats %+v != seed %+v", got, want)
	}
	if cold.Timings.Analyze != 0 {
		t.Errorf("cold load ran the analysis (%v), facts should come from the artifact", cold.Timings.Analyze)
	}
	for i := range cold.Infos {
		w, c := warm.Infos[i].Facts, cold.Infos[i].Facts
		if (w == nil) != (c == nil) {
			t.Fatalf("func %d: facts presence diverges after round-trip", i)
		}
		if w == nil {
			continue
		}
		if w.WritesMemory != c.WritesMemory || w.BoundsProven != c.BoundsProven ||
			w.PollsElided != c.PollsElided {
			t.Errorf("func %d: facts scalar fields diverge: %+v vs %+v", i, w, c)
		}
		for j := range w.InBounds {
			if w.InBounds[j] != c.InBounds[j] {
				t.Fatalf("func %d: InBounds word %d diverges", i, j)
			}
		}
		for j := range w.NoPoll {
			if w.NoPoll[j] != c.NoPoll[j] {
				t.Fatalf("func %d: NoPoll word %d diverges", i, j)
			}
		}
	}
}

// TestArtifactNoAnalysisOmitsFacts: an engine with analysis disabled
// persists fact-free artifacts and never elides.
func TestArtifactNoAnalysisOmitsFacts(t *testing.T) {
	item := workloads.Ostrich()[3]
	cfg := engines.WizardSPC()
	cfg.NoAnalysis = true
	dir := t.TempDir()
	seedDir(t, cfg, item, dir)
	_, cold, _ := coldCompile(t, cfg, item, dir)
	if st := cold.AnalysisStats(); st != (analysis.Stats{}) {
		t.Errorf("NoAnalysis artifact carries facts: %+v", st)
	}
}
