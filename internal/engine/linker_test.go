package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// buildExporter returns a module that exports one of every extern kind:
// a one-page memory "mem", a mutable i64 global "g" (initially 5), a
// 4-element table "tab" holding [add, mul] at slots 0 and 1, and the
// functions:
//
//	add(a,b) -> a+b
//	mul(a,b) -> a*b
//	poke(addr,val)   stores val at mem[addr]
//	getg() -> g
//	spin()           loops forever
func buildExporter() []byte {
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	g := b.AddGlobal(wasm.I64, true, wasm.ValI64(5))

	i32x2 := sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	add := b.NewFunc("add", i32x2)
	add.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add).End()
	mul := b.NewFunc("mul", i32x2)
	mul.LocalGet(0).LocalGet(1).Op(wasm.OpI32Mul).End()

	poke := b.NewFunc("poke", sig([]wasm.ValueType{wasm.I32, wasm.I32}, nil))
	poke.LocalGet(0).LocalGet(1).Store(wasm.OpI32Store, 0).End()

	getg := b.NewFunc("getg", sig(nil, []wasm.ValueType{wasm.I64}))
	getg.GlobalGet(g).End()

	spin := b.NewFunc("spin", sig(nil, nil))
	spin.Loop(wasm.BlockEmpty).Br(0).End().End()

	tab := b.AddTable(4)
	b.AddElem(0, []uint32{add.Idx, mul.Idx})

	b.Export("add", add.Idx)
	b.Export("mul", mul.Idx)
	b.Export("poke", poke.Idx)
	b.Export("getg", getg.Idx)
	b.Export("spin", spin.Idx)
	b.ExportMemory("mem")
	b.ExportGlobal("g", g)
	b.ExportTable("tab", tab)
	return b.Encode()
}

// buildImporter returns a module importing from namespace "store": the
// memory, the global, the table, and the functions poke/add/spin.
//
//	probe(addr) -> i32   calls store.poke(addr, 42), then loads mem[addr]
//	peek(addr)  -> i32   loads mem[addr]
//	setg(v)              sets the imported global
//	callvia(slot,a,b)    call_indirect through the imported table
//	run()                calls store.spin (runaway loop in the exporter)
func buildImporter() []byte {
	b := wasm.NewBuilder()
	i32x2 := sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	poke := b.ImportFunc("store", "poke", sig([]wasm.ValueType{wasm.I32, wasm.I32}, nil))
	spin := b.ImportFunc("store", "spin", sig(nil, nil))
	b.ImportMemory("store", "mem", 1, 1)
	b.ImportTable("store", "tab", 4)
	g := b.ImportGlobal("store", "g", wasm.I64, true)

	probe := b.NewFunc("probe", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	probe.LocalGet(0).I32Const(42).Call(poke)
	probe.LocalGet(0).Load(wasm.OpI32Load, 0)
	probe.End()

	peek := b.NewFunc("peek", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
	peek.LocalGet(0).Load(wasm.OpI32Load, 0).End()

	setg := b.NewFunc("setg", sig([]wasm.ValueType{wasm.I64}, nil))
	setg.LocalGet(0).GlobalSet(g).End()

	callvia := b.NewFunc("callvia", sig([]wasm.ValueType{wasm.I32, wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32}))
	callvia.LocalGet(1).LocalGet(2).LocalGet(0).CallIndirect(b.AddType(i32x2))

	run := b.NewFunc("run", sig(nil, nil))
	run.Call(spin).End()

	b.Export("probe", probe.Idx)
	b.Export("peek", peek.Idx)
	b.Export("setg", setg.Idx)
	b.Export("callvia", callvia.Idx)
	b.Export("run", run.Idx)
	return b.Encode()
}

// linkPair instantiates the exporter under cfgB, registers it as
// namespace "store", and instantiates the importer under cfgA.
func linkPair(t *testing.T, cfgA, cfgB engine.Config) (imp, exp *engine.Instance) {
	t.Helper()
	exp, err := engine.New(cfgB, nil).Instantiate(buildExporter())
	if err != nil {
		t.Fatalf("instantiate exporter: %v", err)
	}
	linker := engine.NewLinker()
	if err := linker.DefineInstance("store", exp); err != nil {
		t.Fatalf("DefineInstance: %v", err)
	}
	imp, err = engine.New(cfgA, linker).Instantiate(buildImporter())
	if err != nil {
		t.Fatalf("instantiate importer: %v", err)
	}
	return imp, exp
}

// TestCrossInstanceLinking is the end-to-end contract: instance A
// imports a function, a memory, a table and a global from instance B
// and each is genuinely shared — A observes B's writes and vice versa —
// across every executor family, including mixed pairings.
func TestCrossInstanceLinking(t *testing.T) {
	for _, cfgA := range engines.Catalog() {
		for _, cfgB := range engines.Catalog() {
			t.Run(cfgA.Name+"->"+cfgB.Name, func(t *testing.T) {
				imp, exp := linkPair(t, cfgA, cfgB)

				// A calls B's poke (which writes B's memory in B's
				// context), then loads the shared memory itself.
				res, err := imp.Call("probe", wasm.ValI32(64))
				if err != nil {
					t.Fatalf("probe: %v", err)
				}
				if got := res[0].I32(); got != 42 {
					t.Fatalf("probe: got %d, want 42 (A did not observe B's write)", got)
				}

				// The host writes B's memory directly; A reads it.
				exp.RT.Memory.Data[100] = 7
				res, err = imp.Call("peek", wasm.ValI32(100))
				if err != nil {
					t.Fatalf("peek: %v", err)
				}
				if got := res[0].I32(); got != 7 {
					t.Fatalf("peek: got %d, want 7", got)
				}

				// A mutates the imported global; B reads its own global.
				if _, err := imp.Call("setg", wasm.ValI64(99)); err != nil {
					t.Fatalf("setg: %v", err)
				}
				res, err = exp.Call("getg")
				if err != nil {
					t.Fatalf("getg: %v", err)
				}
				if got := res[0].I64(); got != 99 {
					t.Fatalf("getg: got %d, want 99 (B did not observe A's global write)", got)
				}

				// call_indirect through the imported table dispatches to
				// B's functions (slot 0 = add, slot 1 = mul).
				res, err = imp.Call("callvia", wasm.ValI32(0), wasm.ValI32(6), wasm.ValI32(7))
				if err != nil {
					t.Fatalf("callvia add: %v", err)
				}
				if got := res[0].I32(); got != 13 {
					t.Fatalf("callvia add: got %d, want 13", got)
				}
				res, err = imp.Call("callvia", wasm.ValI32(1), wasm.ValI32(6), wasm.ValI32(7))
				if err != nil {
					t.Fatalf("callvia mul: %v", err)
				}
				if got := res[0].I32(); got != 42 {
					t.Fatalf("callvia mul: got %d, want 42", got)
				}
			})
		}
	}
}

// TestCrossInstanceLinkingConcurrent exercises independent A↔B pairs on
// concurrent goroutines (the -race configuration the acceptance
// criteria name). Pairs do not share state with each other; sharing
// within a pair is single-threaded, as the embedding contract requires.
func TestCrossInstanceLinkingConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for _, cfg := range engines.Catalog() {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(cfg engine.Config) {
				defer wg.Done()
				exp, err := engine.New(cfg, nil).Instantiate(buildExporter())
				if err != nil {
					t.Errorf("%s: instantiate exporter: %v", cfg.Name, err)
					return
				}
				linker := engine.NewLinker()
				if err := linker.DefineInstance("store", exp); err != nil {
					t.Errorf("%s: DefineInstance: %v", cfg.Name, err)
					return
				}
				imp, err := engine.New(cfg, linker).Instantiate(buildImporter())
				if err != nil {
					t.Errorf("%s: instantiate importer: %v", cfg.Name, err)
					return
				}
				for i := 0; i < 20; i++ {
					res, err := imp.Call("probe", wasm.ValI32(4))
					if err != nil || res[0].I32() != 42 {
						t.Errorf("%s: probe: %v %v", cfg.Name, res, err)
						return
					}
				}
			}(cfg)
		}
	}
	wg.Wait()
}

// TestCallContextCancel verifies that a deadline interrupts a runaway
// guest loop in every executor family, that the trap carries the
// context's error, and that the instance stays usable afterwards.
func TestCallContextCancel(t *testing.T) {
	b := wasm.NewBuilder()
	spin := b.NewFunc("spin", sig(nil, nil))
	spin.Loop(wasm.BlockEmpty).Br(0).End().End()
	k := b.NewFunc("fortytwo", sig(nil, []wasm.ValueType{wasm.I32}))
	k.I32Const(42).End()
	b.Export("spin", spin.Idx)
	b.Export("fortytwo", k.Idx)
	bytes := b.Encode()

	for _, cfg := range engines.Catalog() {
		t.Run(cfg.Name, func(t *testing.T) {
			inst, err := engine.New(cfg, nil).Instantiate(bytes)
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			callCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			_, err = inst.CallContext(callCtx, "spin")
			var trap *rt.Trap
			if !errors.As(err, &trap) || trap.Kind != rt.TrapInterrupted {
				t.Fatalf("expected TrapInterrupted, got %v", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("trap does not carry the context error: %v", err)
			}
			// The instance unwound cleanly and remains usable.
			res, err := inst.Call("fortytwo")
			if err != nil || res[0].I32() != 42 {
				t.Fatalf("after interrupt: %v %v", res, err)
			}
		})
	}
}

// TestCallContextCancelCrossInstance verifies cancellation follows a
// call across the instance boundary: the runaway loop runs in B, the
// deadline is on A's call.
func TestCallContextCancelCrossInstance(t *testing.T) {
	for _, cfg := range engines.Catalog() {
		t.Run(cfg.Name, func(t *testing.T) {
			imp, _ := linkPair(t, cfg, cfg)
			callCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			_, err := imp.CallContext(callCtx, "run")
			var trap *rt.Trap
			if !errors.As(err, &trap) || trap.Kind != rt.TrapInterrupted {
				t.Fatalf("expected TrapInterrupted from B's loop, got %v", err)
			}
			// A later call without a deadline must not be poisoned by
			// the cleared flag.
			if _, err := imp.Call("probe", wasm.ValI32(8)); err != nil {
				t.Fatalf("after cross-instance interrupt: %v", err)
			}
		})
	}
}

// TestCallIndirectTableIndex: call_indirect against a non-zero table
// index dispatches through THAT table in every executor family (the
// SPC and rewriter code paths used to hardcode table 0, which imported
// tables made observable).
func TestCallIndirectTableIndex(t *testing.T) {
	i32x2 := sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	for _, cfg := range engines.Catalog() {
		t.Run(cfg.Name, func(t *testing.T) {
			exp, err := engine.New(cfg, nil).Instantiate(buildExporter())
			if err != nil {
				t.Fatal(err)
			}
			// Table 0: the exporter's [add, mul]. Table 1: a host-built
			// table resolving in the exporter's index space whose slot 0
			// is mul — so slot 0 answers differently per table.
			mulHandle := uint64(0)
			for _, f := range exp.RT.Funcs {
				if f.Name == "mul" {
					mulHandle = uint64(f.Idx) + 1
				}
			}
			linker := engine.NewLinker()
			if err := linker.DefineInstance("store", exp); err != nil {
				t.Fatal(err)
			}
			if err := linker.DefineTable("store", "tab2", &rt.Table{
				Elems: []uint64{mulHandle}, Funcs: exp.RT.Funcs,
			}); err != nil {
				t.Fatal(err)
			}

			b := wasm.NewBuilder()
			b.ImportTable("store", "tab", 4)  // table 0
			b.ImportTable("store", "tab2", 1) // table 1
			via := b.NewFunc("via", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
			via.I32Const(6).I32Const(7)
			via.I32Const(0).CallIndirectTable(b.AddType(i32x2), 1) // slot 0 of table 1
			via.End()
			via0 := b.NewFunc("via0", sig(nil, []wasm.ValueType{wasm.I32}))
			via0.I32Const(6).I32Const(7)
			via0.I32Const(0).CallIndirectTable(b.AddType(i32x2), 0) // slot 0 of table 0
			via0.End()
			b.Export("via", via.Idx)
			b.Export("via0", via0.Idx)

			inst, err := engine.New(cfg, linker).Instantiate(b.Encode())
			if err != nil {
				t.Fatal(err)
			}
			res, err := inst.Call("via", wasm.ValI32(0))
			if err != nil {
				t.Fatalf("via: %v", err)
			}
			if got := res[0].I32(); got != 42 {
				t.Fatalf("table 1 slot 0: got %d, want 42 (mul) — table index ignored", got)
			}
			res, err = inst.Call("via0")
			if err != nil {
				t.Fatalf("via0: %v", err)
			}
			if got := res[0].I32(); got != 13 {
				t.Fatalf("table 0 slot 0: got %d, want 13 (add)", got)
			}
		})
	}
}

// TestCallContextCancelBrTable: a loop whose only backward branch is a
// br_table arm must still be interruptible in every executor family.
func TestCallContextCancelBrTable(t *testing.T) {
	b := wasm.NewBuilder()
	spin := b.NewFunc("spin", sig(nil, nil))
	// loop { br_table [0] 0 } — both arms are the back-edge.
	spin.Loop(wasm.BlockEmpty)
	spin.I32Const(0).BrTable([]uint32{0}, 0)
	spin.End().End()
	b.Export("spin", spin.Idx)
	bytes := b.Encode()

	for _, cfg := range engines.Catalog() {
		t.Run(cfg.Name, func(t *testing.T) {
			inst, err := engine.New(cfg, nil).Instantiate(bytes)
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			callCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			_, err = inst.CallContext(callCtx, "spin")
			var trap *rt.Trap
			if !errors.As(err, &trap) || trap.Kind != rt.TrapInterrupted {
				t.Fatalf("expected TrapInterrupted, got %v", err)
			}
		})
	}
}

// TestHostTableDanglingHandle: call_indirect through a host-defined
// table whose entries the table cannot resolve traps instead of
// panicking the embedder.
func TestHostTableDanglingHandle(t *testing.T) {
	i32x2 := sig([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	hostTable := &rt.Table{Elems: make([]uint64, 4)}
	hostTable.Elems[0] = 1 // 1-based handle with no Funcs to resolve it

	for _, cfg := range engines.Catalog() {
		t.Run(cfg.Name, func(t *testing.T) {
			linker := engine.NewLinker()
			if err := linker.DefineTable("env", "tab", hostTable); err != nil {
				t.Fatal(err)
			}
			b := wasm.NewBuilder()
			b.ImportTable("env", "tab", 4)
			f := b.NewFunc("via", sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}))
			f.I32Const(1).I32Const(2).LocalGet(0).CallIndirect(b.AddType(i32x2))
			b.Export("via", f.Idx)

			inst, err := engine.New(cfg, linker).Instantiate(b.Encode())
			if err != nil {
				t.Fatal(err)
			}
			_, err = inst.Call("via", wasm.ValI32(0))
			var trap *rt.Trap
			if !errors.As(err, &trap) || trap.Kind != rt.TrapNullFunc {
				t.Fatalf("expected TrapNullFunc for dangling handle, got %v", err)
			}
			// A null entry traps identically.
			_, err = inst.Call("via", wasm.ValI32(1))
			if !errors.As(err, &trap) || trap.Kind != rt.TrapNullFunc {
				t.Fatalf("expected TrapNullFunc for null entry, got %v", err)
			}
		})
	}
}

// TestDefineInstanceAtomic: a colliding DefineInstance registers
// nothing, leaving the namespace exactly as it was.
func TestDefineInstanceAtomic(t *testing.T) {
	exp, err := engine.New(engines.WizardINT(), nil).Instantiate(buildExporter())
	if err != nil {
		t.Fatal(err)
	}
	linker := engine.NewLinker()
	// Pre-claim one of the exporter's export names in the namespace.
	if err := linker.DefineGlobal("store", "g", wasm.I32, false, &rt.GlobalSlot{}); err != nil {
		t.Fatal(err)
	}
	if err := linker.DefineInstance("store", exp); err == nil {
		t.Fatal("expected collision error")
	}
	// None of the other exports leaked into the namespace: a module
	// importing store.mem must still fail to resolve.
	b := wasm.NewBuilder()
	b.ImportMemory("store", "mem", 1, 1)
	f := b.NewFunc("main", sig(nil, nil))
	f.End()
	b.Export("main", f.Idx)
	_, err = engine.New(engines.WizardINT(), linker).Instantiate(b.Encode())
	if err == nil || !strings.Contains(err.Error(), "unresolved import store.mem") {
		t.Fatalf("expected unresolved store.mem after failed DefineInstance, got %v", err)
	}
}

// TestCallContextReentrant: a finishing inner CallContext (guest → host
// → guest on the same instance) must not erase an enclosing call's
// cancellation — the outer call still unwinds with TrapInterrupted
// instead of spinning forever.
func TestCallContextReentrant(t *testing.T) {
	ft := sig(nil, []wasm.ValueType{wasm.I32})
	b := wasm.NewBuilder()
	reenter := b.ImportFunc("env", "reenter", sig(nil, nil))
	k := b.NewFunc("fortytwo", ft)
	k.I32Const(42).End()
	outer := b.NewFunc("outer", sig(nil, nil))
	outer.Call(reenter)
	outer.Loop(wasm.BlockEmpty).Br(0).End() // runaway after the host call
	outer.End()
	b.Export("fortytwo", k.Idx)
	b.Export("outer", outer.Idx)

	outerCtx, outerCancel := context.WithCancel(context.Background())
	defer outerCancel()
	var inst *engine.Instance
	linker := engine.NewLinker()
	err := linker.DefineFunc("env", "reenter", sig(nil, nil),
		func(ctx *rt.Context, args, results []uint64) error {
			// Cancel the outer call, then make (and swallow) an inner
			// re-entrant call under a different, never-cancelled but
			// cancellable context — its stop() must not clear the
			// outer cancellation.
			outerCancel()
			innerCtx, innerCancel := context.WithCancel(context.Background())
			defer innerCancel()
			_, _ = inst.CallContext(innerCtx, "fortytwo")
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	inst, err = engine.New(engines.WizardINT(), linker).Instantiate(b.Encode())
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := inst.CallContext(outerCtx, "outer")
		done <- err
	}()
	select {
	case err := <-done:
		var trap *rt.Trap
		if !errors.As(err, &trap) || trap.Kind != rt.TrapInterrupted {
			t.Fatalf("expected TrapInterrupted, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("outer call hung: inner stop() erased the outer cancellation")
	}
}

// TestReentrantCallPreservesOuterFrame: a re-entrant top-level call
// (guest → host → guest on the same instance) must base its frame above
// the live frames; basing at slot 0 would silently overwrite the outer
// call's parameters.
func TestReentrantCallPreservesOuterFrame(t *testing.T) {
	i32 := sig([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	var inst *engine.Instance
	linker := engine.NewLinker()
	err := linker.DefineFunc("env", "reenter", sig(nil, nil),
		func(ctx *rt.Context, args, results []uint64) error {
			_, err := inst.Call("fortytwo")
			return err
		})
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range engines.Catalog() {
		t.Run(cfg.Name, func(t *testing.T) {
			b := wasm.NewBuilder()
			reenter := b.ImportFunc("env", "reenter", sig(nil, nil))
			k := b.NewFunc("fortytwo", sig(nil, []wasm.ValueType{wasm.I32}))
			k.I32Const(42).End()
			// outer(x): call the host (which re-enters), then return x —
			// x lives in slot vfp+0 across the re-entrant call.
			outer := b.NewFunc("outer", i32)
			outer.Call(reenter).LocalGet(0).End()
			b.Export("fortytwo", k.Idx)
			b.Export("outer", outer.Idx)

			var err error
			inst, err = engine.New(cfg, linker).Instantiate(b.Encode())
			if err != nil {
				t.Fatal(err)
			}
			res, err := inst.Call("outer", wasm.ValI32(7))
			if err != nil {
				t.Fatalf("outer: %v", err)
			}
			if got := res[0].I32(); got != 7 {
				t.Fatalf("outer(7) = %d, want 7 — re-entrant call clobbered the outer frame", got)
			}
		})
	}
}

// TestCallContextReentrantCrossInstance: the interrupt flag travels
// with cross-instance calls, so the bookkeeping must too — an inner
// re-entrant call on the CALLEE instance (which borrowed the caller's
// flag) must not erase the caller's cancellation when it finishes.
func TestCallContextReentrantCrossInstance(t *testing.T) {
	outerCtx, outerCancel := context.WithCancel(context.Background())
	defer outerCancel()

	// B: imports a host function, exports outer() = call host; loop.
	bb := wasm.NewBuilder()
	reenter := bb.ImportFunc("env", "reenter", sig(nil, nil))
	k := bb.NewFunc("fortytwo", sig(nil, []wasm.ValueType{wasm.I32}))
	k.I32Const(42).End()
	outer := bb.NewFunc("outer", sig(nil, nil))
	outer.Call(reenter)
	outer.Loop(wasm.BlockEmpty).Br(0).End()
	outer.End()
	bb.Export("fortytwo", k.Idx)
	bb.Export("outer", outer.Idx)

	var instB *engine.Instance
	linkerB := engine.NewLinker()
	err := linkerB.DefineFunc("env", "reenter", sig(nil, nil),
		func(ctx *rt.Context, args, results []uint64) error {
			outerCancel() // the caller's context is now cancelled
			innerCtx, innerCancel := context.WithCancel(context.Background())
			defer innerCancel()
			_, _ = instB.CallContext(innerCtx, "fortytwo")
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	instB, err = engine.New(engines.WizardINT(), linkerB).Instantiate(bb.Encode())
	if err != nil {
		t.Fatal(err)
	}

	// A: imports B's outer and calls it.
	ba := wasm.NewBuilder()
	bouter := ba.ImportFunc("bns", "outer", sig(nil, nil))
	run := ba.NewFunc("run", sig(nil, nil))
	run.Call(bouter).End()
	ba.Export("run", run.Idx)
	linkerA := engine.NewLinker()
	if err := linkerA.DefineInstance("bns", instB); err != nil {
		t.Fatal(err)
	}
	instA, err := engine.New(engines.WizardINT(), linkerA).Instantiate(ba.Encode())
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := instA.CallContext(outerCtx, "run")
		done <- err
	}()
	select {
	case err := <-done:
		var trap *rt.Trap
		if !errors.As(err, &trap) || trap.Kind != rt.TrapInterrupted {
			t.Fatalf("expected TrapInterrupted, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hung: inner call on the callee instance erased the caller's cancellation")
	}
}

// TestDefineExternValidation: extern payloads are checked at definition
// time, so a nil memory/table/cell fails loudly instead of panicking at
// instantiation or first call.
func TestDefineExternValidation(t *testing.T) {
	cases := []struct {
		name string
		ext  rt.Extern
	}{
		{"memory without memory", rt.Extern{Kind: wasm.ExternMemory}},
		{"table without table", rt.Extern{Kind: wasm.ExternTable}},
		{"global without cell", rt.Extern{Kind: wasm.ExternGlobal}},
		{"function without impl", rt.Extern{Kind: wasm.ExternFunc}},
		{"function with both impls", rt.Extern{
			Kind:     wasm.ExternFunc,
			HostFunc: func(ctx *rt.Context, args, results []uint64) error { return nil },
			Func:     &rt.FuncInst{},
		}},
		{"unknown kind", rt.Extern{Kind: wasm.ExternKind(9)}},
	}
	for _, tc := range cases {
		l := engine.NewLinker()
		if err := l.DefineExtern("env", "x", tc.ext); err == nil {
			t.Errorf("%s: expected a definition error", tc.name)
		}
	}
}

// TestCrossInvokeReleasedExporter: calling an imported function whose
// owning instance released its value stack errors instead of panicking.
func TestCrossInvokeReleasedExporter(t *testing.T) {
	imp, exp := linkPair(t, engines.WizardINT(), engines.WizardINT())
	exp.Release()
	_, err := imp.Call("probe", wasm.ValI32(4))
	if err == nil || !strings.Contains(err.Error(), "released") {
		t.Fatalf("expected released-stack error, got %v", err)
	}
}

// TestCallContextPreCancelled: an already-cancelled context fails fast
// without running any guest code.
func TestCallContextPreCancelled(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("f", sig(nil, []wasm.ValueType{wasm.I32}))
	f.I32Const(1).End()
	b.Export("f", f.Idx)

	inst, err := engine.New(engines.WizardINT(), nil).Instantiate(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	callCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inst.CallContext(callCtx, "f"); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// TestLinkerKeyCollision is the regression test for the namespaced key:
// the legacy joined-string key conflated ("a.b","c") with ("a","b.c").
func TestLinkerKeyCollision(t *testing.T) {
	ft := sig(nil, []wasm.ValueType{wasm.I32})
	linker := engine.NewLinker()
	if err := linker.DefineFunc("a.b", "c", ft, func(ctx *rt.Context, args, results []uint64) error {
		results[0] = 1
		return nil
	}); err != nil {
		t.Fatalf("define a.b/c: %v", err)
	}
	if err := linker.DefineFunc("a", "b.c", ft, func(ctx *rt.Context, args, results []uint64) error {
		results[0] = 2
		return nil
	}); err != nil {
		t.Fatalf("define a/b.c collided with a.b/c: %v", err)
	}

	b := wasm.NewBuilder()
	f1 := b.ImportFunc("a.b", "c", ft)
	f2 := b.ImportFunc("a", "b.c", ft)
	g := b.NewFunc("both", sig(nil, []wasm.ValueType{wasm.I32, wasm.I32}))
	g.Call(f1).Call(f2).End()
	b.Export("both", g.Idx)

	inst, err := engine.New(engines.WizardINT(), linker).Instantiate(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("both")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].I32() != 1 || res[1].I32() != 2 {
		t.Fatalf("namespaces collided: got (%d, %d), want (1, 2)", res[0].I32(), res[1].I32())
	}
}

// TestLinkerFreezeRace: engine.New snapshots the linker, so registering
// definitions concurrently with instantiation is race-free (run under
// -race) and an engine never observes definitions added after New.
func TestLinkerFreezeRace(t *testing.T) {
	ft := sig(nil, []wasm.ValueType{wasm.I32})
	linker := engine.NewLinker()
	if err := linker.DefineFunc("env", "f", ft, func(ctx *rt.Context, args, results []uint64) error {
		results[0] = 7
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	b := wasm.NewBuilder()
	imp := b.ImportFunc("env", "f", ft)
	g := b.NewFunc("g", ft)
	g.Call(imp).End()
	b.Export("g", g.Idx)
	bytes := b.Encode()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mutator: keeps defining while engines instantiate
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = linker.DefineFunc("env", fmt.Sprintf("extra%d", i), ft,
				func(ctx *rt.Context, args, results []uint64) error { return nil })
		}
	}()
	for i := 0; i < 50; i++ {
		inst, err := engine.New(engines.WizardSPC(), linker).Instantiate(bytes)
		if err != nil {
			t.Fatalf("instantiate %d: %v", i, err)
		}
		if res, err := inst.Call("g"); err != nil || res[0].I32() != 7 {
			t.Fatalf("call %d: %v %v", i, res, err)
		}
		inst.Release()
	}
	close(stop)
	wg.Wait()
}

// TestImportResolutionErrors covers the link-time error paths across
// every Catalog configuration: unresolved imports, signature
// mismatches, and extern-kind mismatches in both directions (including
// a function import resolved by another instance's memory export).
func TestImportResolutionErrors(t *testing.T) {
	i32void := sig([]wasm.ValueType{wasm.I32}, nil)
	void := sig(nil, nil)
	hostNop := func(ctx *rt.Context, args, results []uint64) error { return nil }

	newLinker := func(t *testing.T) *engine.Linker {
		l := engine.NewLinker()
		if err := l.DefineFunc("env", "f", void, hostNop); err != nil {
			t.Fatal(err)
		}
		if err := l.DefineMemory("env", "mem", rt.NewMemory(wasm.Limits{Min: 1, Max: 1, HasMax: true})); err != nil {
			t.Fatal(err)
		}
		if err := l.DefineGlobal("env", "g", wasm.I32, true, &rt.GlobalSlot{Tag: wasm.TagI32}); err != nil {
			t.Fatal(err)
		}
		return l
	}

	cases := []struct {
		name    string
		build   func(b *wasm.Builder)
		wantErr string
	}{
		{
			name:    "unresolved function import",
			build:   func(b *wasm.Builder) { b.ImportFunc("env", "missing", void) },
			wantErr: "unresolved import env.missing",
		},
		{
			name:    "unresolved memory import",
			build:   func(b *wasm.Builder) { b.ImportMemory("env", "nomem", 1, 1) },
			wantErr: "unresolved import env.nomem",
		},
		{
			name:    "function signature mismatch",
			build:   func(b *wasm.Builder) { b.ImportFunc("env", "f", i32void) },
			wantErr: "signature mismatch",
		},
		{
			name:    "function import resolved by memory definition",
			build:   func(b *wasm.Builder) { b.ImportFunc("env", "mem", void) },
			wantErr: "extern kind mismatch: import requires a function, definition provides a memory",
		},
		{
			name:    "memory import resolved by function definition",
			build:   func(b *wasm.Builder) { b.ImportMemory("env", "f", 1, 1) },
			wantErr: "extern kind mismatch: import requires a memory, definition provides a function",
		},
		{
			name:    "global import resolved by function definition",
			build:   func(b *wasm.Builder) { b.ImportGlobal("env", "f", wasm.I32, true) },
			wantErr: "extern kind mismatch",
		},
		{
			name:    "global type mismatch",
			build:   func(b *wasm.Builder) { b.ImportGlobal("env", "g", wasm.I64, true) },
			wantErr: "global type mismatch",
		},
		{
			name:    "global mutability mismatch",
			build:   func(b *wasm.Builder) { b.ImportGlobal("env", "g", wasm.I32, false) },
			wantErr: "global type mismatch",
		},
		{
			name:    "memory smaller than import minimum",
			build:   func(b *wasm.Builder) { b.ImportMemory("env", "mem", 2, 2) },
			wantErr: "import requires at least 2",
		},
	}

	for _, cfg := range engines.Catalog() {
		for _, tc := range cases {
			t.Run(cfg.Name+"/"+tc.name, func(t *testing.T) {
				b := wasm.NewBuilder()
				tc.build(b)
				f := b.NewFunc("main", sig(nil, nil))
				f.End()
				b.Export("main", f.Idx)
				_, err := engine.New(cfg, newLinker(t)).Instantiate(b.Encode())
				if err == nil {
					t.Fatalf("expected link error containing %q, got success", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
			})
		}
	}

	// A function import resolved by another INSTANCE's memory export —
	// the DefineInstance flavor of the kind mismatch.
	t.Run("function import resolved by instance memory export", func(t *testing.T) {
		exp, err := engine.New(engines.WizardINT(), nil).Instantiate(buildExporter())
		if err != nil {
			t.Fatal(err)
		}
		linker := engine.NewLinker()
		if err := linker.DefineInstance("store", exp); err != nil {
			t.Fatal(err)
		}
		b := wasm.NewBuilder()
		b.ImportFunc("store", "mem", void)
		f := b.NewFunc("main", void)
		f.End()
		b.Export("main", f.Idx)
		_, err = engine.New(engines.WizardINT(), linker).Instantiate(b.Encode())
		if err == nil || !strings.Contains(err.Error(), "extern kind mismatch") {
			t.Fatalf("expected extern kind mismatch, got %v", err)
		}
	})
}

// TestElementSegmentErrorDetail: instantiation errors for overflowing
// element segments carry the segment index, the table index, and the
// offending bounds, matching the data-segment diagnostics.
func TestElementSegmentErrorDetail(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("f", sig(nil, nil))
	f.End()
	b.Export("f", f.Idx)
	b.AddTable(2)
	b.AddElem(1, []uint32{f.Idx, f.Idx}) // [1, 3) overflows a 2-element table

	_, err := engine.New(engines.WizardINT(), nil).Instantiate(b.Encode())
	if err == nil {
		t.Fatal("expected element segment overflow error")
	}
	for _, want := range []string{"element segment 0", "[1, 3)", "2-element table 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestLinkerRedefinition: defining the same (module, name) twice is an
// error instead of a silent clobber.
func TestLinkerRedefinition(t *testing.T) {
	ft := sig(nil, nil)
	hostNop := func(ctx *rt.Context, args, results []uint64) error { return nil }
	l := engine.NewLinker()
	if err := l.DefineFunc("env", "f", ft, hostNop); err != nil {
		t.Fatal(err)
	}
	err := l.DefineFunc("env", "f", ft, hostNop)
	if err == nil || !strings.Contains(err.Error(), "already defined") {
		t.Fatalf("expected redefinition error, got %v", err)
	}
}

// TestPoolResetOwnership: a pooled instance that imports another
// instance's memory must NOT roll that memory back on reset — only its
// own state (here, its own globals) returns to the baseline.
func TestPoolResetOwnership(t *testing.T) {
	exp, err := engine.New(engines.WizardSPC(), nil).Instantiate(buildExporter())
	if err != nil {
		t.Fatal(err)
	}
	linker := engine.NewLinker()
	if err := linker.DefineInstance("store", exp); err != nil {
		t.Fatal(err)
	}

	// The pooled module imports store.mem and owns one mutable global.
	b := wasm.NewBuilder()
	b.ImportMemory("store", "mem", 1, 1)
	own := b.AddGlobal(wasm.I64, true, wasm.ValI64(11))
	scribble := b.NewFunc("scribble", sig(nil, nil))
	scribble.I32Const(0).I32Const(9).Store(wasm.OpI32Store, 0)
	scribble.I64Const(77).GlobalSet(own)
	scribble.End()
	getown := b.NewFunc("getown", sig(nil, []wasm.ValueType{wasm.I64}))
	getown.GlobalGet(own).End()
	b.Export("scribble", scribble.Idx)
	b.Export("getown", getown.Idx)

	cm, err := engine.New(engines.WizardSPC(), linker).Compile(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	pool := cm.NewPool(2)
	defer pool.Close()

	inst, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("scribble"); err != nil {
		t.Fatal(err)
	}
	pool.Put(inst)

	inst, err = pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Put(inst)
	// Owned global: reset to its baseline.
	res, err := inst.Call("getown")
	if err != nil || res[0].I64() != 11 {
		t.Fatalf("owned global not reset: %v %v", res, err)
	}
	// Imported memory: B's byte survives the reset (the instance does
	// not own it and must not roll it back).
	if got := exp.RT.Memory.Data[0]; got != 9 {
		t.Fatalf("imported memory was rolled back: mem[0] = %d, want 9", got)
	}
}
