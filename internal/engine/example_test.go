package engine_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// ExampleLinker_DefineFunc registers a host function in a namespace and
// calls it from a module.
func ExampleLinker_DefineFunc() {
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}}
	linker := engine.NewLinker()
	_ = linker.DefineFunc("env", "double", ft,
		func(ctx *rt.Context, args, results []uint64) error {
			results[0] = wasm.BoxI32(2 * wasm.UnboxI32(args[0]))
			return nil
		})

	b := wasm.NewBuilder()
	double := b.ImportFunc("env", "double", ft)
	f := b.NewFunc("quad", ft)
	f.LocalGet(0).Call(double).Call(double).End()
	b.Export("quad", f.Idx)

	inst, err := engine.New(engines.WizardSPC(), linker).Instantiate(b.Encode())
	if err != nil {
		panic(err)
	}
	res, _ := inst.Call("quad", wasm.ValI32(10))
	fmt.Println(res[0].I32())
	// Output: 40
}

// ExampleLinker_DefineInstance links two instances: the second module
// imports the first one's exported function and memory, writes into the
// shared memory, and calls across the instance boundary.
func ExampleLinker_DefineInstance() {
	// Exporter: a memory and get(addr) -> i32.
	be := wasm.NewBuilder()
	be.AddMemory(1, 1)
	get := be.NewFunc("get", wasm.FuncType{
		Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32},
	})
	get.LocalGet(0).Load(wasm.OpI32Load, 0).End()
	be.Export("get", get.Idx)
	be.ExportMemory("mem")

	exporter, err := engine.New(engines.WizardSPC(), nil).Instantiate(be.Encode())
	if err != nil {
		panic(err)
	}
	linker := engine.NewLinker()
	_ = linker.DefineInstance("store", exporter)

	// Importer: writes 41+1 into the shared memory, then asks the
	// exporter to read it back.
	bi := wasm.NewBuilder()
	sget := bi.ImportFunc("store", "get", wasm.FuncType{
		Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32},
	})
	bi.ImportMemory("store", "mem", 1, 1)
	f := bi.NewFunc("roundtrip", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
	f.I32Const(8).I32Const(42).Store(wasm.OpI32Store, 0)
	f.I32Const(8).Call(sget).End()
	bi.Export("roundtrip", f.Idx)

	importer, err := engine.New(engines.WizardSPC(), linker).Instantiate(bi.Encode())
	if err != nil {
		panic(err)
	}
	res, _ := importer.Call("roundtrip")
	fmt.Println(res[0].I32())
	// Output: 42
}

// ExampleInstance_CallContext interrupts a guest loop that would never
// return by attaching a deadline to the call.
func ExampleInstance_CallContext() {
	b := wasm.NewBuilder()
	spin := b.NewFunc("spin", wasm.FuncType{})
	spin.Loop(wasm.BlockEmpty).Br(0).End().End()
	b.Export("spin", spin.Idx)

	inst, err := engine.New(engines.WizardSPC(), nil).Instantiate(b.Encode())
	if err != nil {
		panic(err)
	}
	callCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = inst.CallContext(callCtx, "spin")

	var trap *rt.Trap
	fmt.Println(errors.As(err, &trap) && trap.Kind == rt.TrapInterrupted)
	fmt.Println(errors.Is(err, context.DeadlineExceeded))
	// Output:
	// true
	// true
}
