package engine_test

import (
	"sync"
	"testing"

	"wizgo/internal/codecache"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/mach"
	"wizgo/internal/monitors"
	"wizgo/internal/spc"
	"wizgo/internal/wasm"
	"wizgo/internal/workloads"
)

// corpus returns a few workload modules spanning the three suites, kept
// small so -race runs stay fast.
func corpus() []workloads.Item {
	return []workloads.Item{
		workloads.PolyBench()[0],
		workloads.Libsodium()[0],
		workloads.Ostrich()[3],
	}
}

// counterModule builds a module with a memory-backed counter so that
// instance-state isolation is observable: bump() increments a cell and
// returns the new value.
func counterModule() []byte {
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("bump", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
	f.I32Const(0)
	f.I32Const(0).Load(wasm.OpI32Load, 0)
	f.I32Const(1).Op(wasm.OpI32Add)
	f.Store(wasm.OpI32Store, 0)
	f.I32Const(0).Load(wasm.OpI32Load, 0)
	f.End()
	b.Export("bump", f.Idx)
	return b.Encode()
}

func TestCompileOnceInstantiateMany(t *testing.T) {
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	if cm.Timings.CodeBytes == 0 || len(cm.Codes) != 1 {
		t.Fatalf("compile artifact incomplete: %d codes, %d code bytes",
			len(cm.Codes), cm.Timings.CodeBytes)
	}

	// Each instance must own its memory: counters advance independently.
	a, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		got, err := a.Call("bump")
		if err != nil {
			t.Fatal(err)
		}
		if got[0].I32() != int32(i) {
			t.Fatalf("instance a bump %d = %d", i, got[0].I32())
		}
	}
	got, err := b.Call("bump")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I32() != 1 {
		t.Fatalf("instance b saw instance a's memory: bump = %d", got[0].I32())
	}
}

func TestInstantiateChecksumMatchesSingleShot(t *testing.T) {
	// The two-phase path must compute exactly what the single-shot path
	// computes, for every workload in the corpus.
	for _, it := range corpus() {
		e := engine.New(engines.WizardSPC(), nil)
		single, err := e.Instantiate(it.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := single.Call("_start"); err != nil {
			t.Fatal(err)
		}
		want, err := single.Call("checksum")
		if err != nil {
			t.Fatal(err)
		}

		cm, err := e.Compile(it.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			inst, err := cm.Instantiate()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inst.Call("_start"); err != nil {
				t.Fatal(err)
			}
			got, err := inst.Call("checksum")
			if err != nil {
				t.Fatal(err)
			}
			if got[0].I64() != want[0].I64() {
				t.Errorf("%s/%s round %d: checksum %#x != %#x",
					it.Suite, it.Name, round, got[0].I64(), want[0].I64())
			}
		}
	}
}

func TestParallelCompileMatchesSerial(t *testing.T) {
	// Per-function compilation must be order- and
	// concurrency-insensitive: the same code comes out of 1 worker and
	// 8 workers.
	for _, it := range corpus() {
		serialCfg := engines.WizardSPC()
		serialCfg.CompileWorkers = 1
		parallelCfg := engines.WizardSPC()
		parallelCfg.CompileWorkers = 8

		serial, err := engine.New(serialCfg, nil).Compile(it.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := engine.New(parallelCfg, nil).Compile(it.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Codes) != len(parallel.Codes) {
			t.Fatalf("%s: code count %d != %d", it.Name, len(serial.Codes), len(parallel.Codes))
		}
		if serial.Timings.CodeBytes != parallel.Timings.CodeBytes {
			t.Errorf("%s: total code bytes %d != %d",
				it.Name, serial.Timings.CodeBytes, parallel.Timings.CodeBytes)
		}
		for i := range serial.Codes {
			s := serial.Codes[i].(*mach.Code)
			p := parallel.Codes[i].(*mach.Code)
			if len(s.Instrs) != len(p.Instrs) || s.CodeBytes != p.CodeBytes {
				t.Errorf("%s func %d: serial %d instrs/%d bytes, parallel %d instrs/%d bytes",
					it.Name, i, len(s.Instrs), s.CodeBytes, len(p.Instrs), p.CodeBytes)
			}
		}
	}
}

func TestConcurrentCompile(t *testing.T) {
	// Many goroutines compiling the whole corpus on one engine: exercised
	// under -race in CI. Each compile is independent; results must be
	// complete every time.
	e := engine.New(engines.WizardSPC(), nil)
	items := corpus()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, it := range items {
				cm, err := e.Compile(it.Bytes)
				if err != nil {
					t.Error(err)
					return
				}
				for i, c := range cm.Codes {
					if c == nil {
						t.Errorf("%s: func %d not compiled", it.Name, i)
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentInstantiateAndCall(t *testing.T) {
	// One CompiledModule, many goroutines instantiating and running
	// concurrently — the serving shape. Checksums must all agree.
	item := workloads.Ostrich()[3] // crc: fast
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Call("_start"); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Call("checksum")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				inst, err := cm.Instantiate()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := inst.Call("_start"); err != nil {
					t.Error(err)
					return
				}
				got, err := inst.Call("checksum")
				if err != nil {
					t.Error(err)
					return
				}
				if got[0].I64() != want[0].I64() {
					t.Errorf("checksum %#x != %#x", got[0].I64(), want[0].I64())
				}
			}
		}()
	}
	wg.Wait()
}

func TestCompileCacheHitsAndRebinding(t *testing.T) {
	cache := codecache.New(codecache.Options{})
	cfg := engines.WizardSPC()
	cfg.Cache = cache
	item := workloads.Ostrich()[3]

	e1 := engine.New(cfg, nil)
	cm1, err := e1.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := e1.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if cm1 != cm2 {
		t.Error("same engine, same bytes: expected the identical cached artifact")
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats after two compiles = %+v, want 1 miss 1 hit", st)
	}

	// A second engine with the same configuration shares the artifact
	// but gets it re-bound, so instantiation uses its own linker.
	e2 := engine.New(cfg, nil)
	cm3, err := e2.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if cm3 == cm1 {
		t.Error("artifact not re-bound to the second engine")
	}
	if cm3.Engine() != e2 {
		t.Error("re-bound artifact does not reference the compiling engine")
	}
	if cm3.Codes[0] != cm1.Codes[0] {
		t.Error("re-bound artifact should share the compiled code")
	}

	// A different configuration must never share the artifact.
	other := engines.LiftoffLike()
	other.Cache = cache
	if _, err := engine.New(other, nil).Compile(item.Bytes); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache has %d artifacts, want 2 (one per configuration)", cache.Len())
	}

	inst, err := cm3.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintSeparatesTierFlags(t *testing.T) {
	// Two configs sharing Name and tier name but differing in a single
	// compiler flag must never share a cached artifact.
	a := engines.SPCVariant("same", func(c *spc.Config) {})
	b := engines.SPCVariant("same", func(c *spc.Config) { c.ConstFold = false })
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("configs with different tier flags share fingerprint %q", a.Fingerprint())
	}
	if a.Fingerprint() != engines.SPCVariant("same", func(c *spc.Config) {}).Fingerprint() {
		t.Error("identical configs should share a fingerprint")
	}
}

func TestProbeIsolationBetweenInstances(t *testing.T) {
	// Attaching a monitor to one instance must not deoptimize or
	// instrument a sibling instance sharing the same CompiledModule.
	item := workloads.Ostrich()[3]
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	probed, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}

	mon, err := monitors.AttachBranchMonitor(probed)
	if err != nil {
		t.Fatal(err)
	}

	// The shared artifact must still be valid even though the probed
	// instance invalidated its private view during recompilation.
	for _, code := range cm.Codes {
		if code.(*mach.Code).Invalidated {
			t.Fatal("probe attach invalidated the shared compiled module")
		}
	}

	plain.Ctx.CountStats = true
	if _, err := plain.Call("_start"); err != nil {
		t.Fatal(err)
	}
	if plain.Ctx.Stats.ProbeFires != 0 {
		t.Errorf("unprobed instance fired %d probes", plain.Ctx.Stats.ProbeFires)
	}
	if plain.Ctx.Stats.MachOps == 0 {
		t.Error("unprobed instance did not run compiled code")
	}

	if _, err := probed.Call("_start"); err != nil {
		t.Fatal(err)
	}
	if mon.TotalFires() == 0 {
		t.Error("probed instance fired no probes")
	}
}

func TestConcurrentCachedCompileSingleFlight(t *testing.T) {
	// Hammer one engine+cache with concurrent compiles of the same
	// corpus: exactly one compilation per (module, config) must happen.
	cache := codecache.New(codecache.Options{})
	cfg := engines.WizardSPC()
	cfg.Cache = cache
	e := engine.New(cfg, nil)
	items := corpus()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, it := range items {
				if _, err := e.Compile(it.Bytes); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := cache.Stats(); st.Misses != uint64(len(items)) {
		t.Errorf("misses = %d, want %d (one real compile per module)",
			cache.Stats().Misses, len(items))
	}
}

func TestReleaseRecyclesStacks(t *testing.T) {
	// Released stacks are reused dirty; correctness must not depend on
	// zeroed slots. Run a real workload through many instantiate →
	// run → release cycles and demand stable checksums.
	item := workloads.Ostrich()[3]
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(item.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 5; i++ {
		inst, err := cm.Instantiate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Call("_start"); err != nil {
			t.Fatal(err)
		}
		got, err := inst.Call("checksum")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got[0].I64()
		} else if got[0].I64() != want {
			t.Fatalf("cycle %d: checksum %#x != %#x on a recycled stack", i, got[0].I64(), want)
		}
		inst.Release()
		inst.Release() // double release must be a no-op
	}
}

func TestLazyTierCompilesPerInstance(t *testing.T) {
	// Under lazy compilation the artifact carries no code; each instance
	// compiles privately on first call, and instances stay independent.
	e := engine.New(engines.WizardTiered(100), nil)
	cm, err := e.Compile(counterModule())
	if err != nil {
		t.Fatal(err)
	}
	if cm.Codes != nil {
		t.Fatal("lazy configuration should not compile eagerly")
	}
	a, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Call("bump"); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Call("bump")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I32() != 1 {
		t.Fatalf("lazy instances share state: bump = %d", got[0].I32())
	}
}
