package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wizgo/internal/analysis"
	"wizgo/internal/codecache"
	"wizgo/internal/telemetry"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// CompiledModule is the immutable product of Engine.Compile: the decoded
// module, its validation metadata, and (in eager JIT modes) the compiled
// code of every local function. It is safe to share between goroutines
// and to instantiate any number of times — the compile-once /
// instantiate-many split that lets a serving deployment amortize the
// per-module setup cost the paper's Figure 8 measures. Mutable
// per-instance state (memories, globals, tables, value stacks, probe
// sets, lazily compiled code) lives on the Instance; the only mutable
// field of compiled code, the invalidation flag, is copied per instance
// at link time (see mach.Code.InstanceView).
//
// Compilation always runs without probes: instrumentation is a
// per-instance concern, so Instance.AttachProbe recompiles the affected
// function privately and never touches the shared artifact.
type CompiledModule struct {
	engine *Engine

	// Module is the decoded module. Read-only after Compile.
	Module *wasm.Module
	// Infos is the per-local-function validation metadata. Read-only.
	Infos []validate.FuncInfo
	// Codes holds compiled code per local function (index-aligned with
	// Module.Funcs). Nil in interpreter mode and under lazy compilation,
	// where functions compile per instance on first call.
	Codes []Code
	// Timings records the one-time setup cost: decode, validate, and
	// the wall-clock time of the (possibly parallel) compile phase.
	Timings Timings
	// Analysis summarizes the static-analysis facts baked into Infos:
	// how many bounds checks and interrupt polls the executors will
	// elide, and how many functions are proven read-only. Zero when the
	// engine was configured with NoAnalysis. On a disk-cache load the
	// stats are recomputed from the deserialized facts, so warm and
	// cold processes report the same numbers.
	Analysis analysis.Stats
}

// AnalysisStats returns the static-analysis summary for this module.
func (cm *CompiledModule) AnalysisStats() analysis.Stats { return cm.Analysis }

// Engine returns the engine this module was compiled under.
func (cm *CompiledModule) Engine() *Engine { return cm.engine }

// Fingerprint returns the cache identity of a configuration: everything
// that changes the emitted code must appear here, so two presets never
// share a cached artifact. The tier is rendered with %#v so its
// concrete type and every compilation flag it carries (e.g. an SPC
// feature set) participate, guarding ad-hoc configurations that reuse a
// preset name with different flags.
func (cfg Config) Fingerprint() string {
	tier := "none"
	if cfg.Tier != nil {
		tier = fmt.Sprintf("%s %#v", cfg.Tier.Name(), cfg.Tier)
	}
	return fmt.Sprintf("%s|%s|%s|lazy=%v|tags=%v|skipv=%v|noanalysis=%v",
		cfg.Name, cfg.Mode, tier, cfg.LazyCompile, cfg.Tags, cfg.SkipValidation, cfg.NoAnalysis)
}

// Compile decodes, validates, and (in eager JIT modes) compiles every
// function of a module exactly once, returning a reusable artifact.
// When the engine is configured with a code cache, the artifact is
// memoized by content hash and configuration fingerprint, and concurrent
// compiles of the same module collapse into one. With a disk cache
// attached, a memory miss first tries to rehydrate a persisted artifact
// (skipping decode-validation-compile down to just the decode), and a
// fresh compile is written through for the next cold start.
func (e *Engine) Compile(bytes []byte) (*CompiledModule, error) {
	if e.cfg.Cache == nil {
		return e.compile(bytes)
	}
	key := codecache.KeyFor(bytes, e.fingerprint)
	v, err := e.cfg.Cache.GetOrAddTiered(key, codecache.TierOps{
		Build: func() (any, error) { return e.compile(bytes) },
		Encode: func(v any) ([]byte, error) {
			return encodeArtifact(v.(*CompiledModule))
		},
		Decode: func(payload []byte) (any, error) {
			return e.decodeArtifact(bytes, payload)
		},
	})
	if err != nil {
		return nil, err
	}
	cm := v.(*CompiledModule)
	if cm.engine != e {
		// A different engine (same configuration) compiled this
		// artifact. Re-bind so Instantiate links against our linker.
		bound := *cm
		bound.engine = e
		return &bound, nil
	}
	return cm, nil
}

// compile is the uncached compile pipeline.
func (e *Engine) compile(bytes []byte) (*CompiledModule, error) {
	t0 := time.Now()
	m, err := wasm.Decode(bytes)
	if err != nil {
		return nil, err
	}
	tDecode := time.Since(t0)

	t1 := time.Now()
	infos, err := validate.Module(m)
	if err != nil {
		return nil, err
	}
	tValidate := time.Since(t1)

	cm := &CompiledModule{
		engine: e, Module: m, Infos: infos,
		Timings: Timings{
			Decode: tDecode, Validate: tValidate, ModuleBytes: len(bytes),
		},
	}

	if !e.cfg.NoAnalysis {
		ta := time.Now()
		cm.Analysis = analysis.Module(m, infos)
		cm.Timings.Analyze = time.Since(ta)
		noteAnalysis(cm.Analysis, cm.Timings.Analyze)
	}

	if e.cfg.Mode != ModeInterp && !e.cfg.LazyCompile {
		t2 := time.Now()
		codes, err := e.compileAll(m, infos)
		if err != nil {
			return nil, err
		}
		cm.Codes = codes
		cm.Timings.Compile = time.Since(t2)
		for _, c := range codes {
			cm.Timings.CodeBytes += c.Bytes()
		}
	}
	hCompile.Observe(time.Since(t0))
	if tr := telemetry.DefaultTracer(); tr.Enabled() {
		tr.Record(telemetry.StageCompile, e.cfg.Name, t0, time.Since(t0), "")
	}
	return cm, nil
}

// compileAll runs the tier over every local function. Functions are
// independent compilation units (the property Copy-and-Patch and Druid
// exploit), so the work fans out over a bounded worker pool sized by
// Config.CompileWorkers. Compilation sees no probe sets — those are
// per-instance — which is what makes the fan-out safe.
func (e *Engine) compileAll(m *wasm.Module, infos []validate.FuncInfo) ([]Code, error) {
	n := len(m.Funcs)
	codes := make([]Code, n)
	imported := m.NumImportedFuncs()

	compileOne := func(i int) (Code, error) {
		e.compileCalls.Add(1)
		mCompileCalls.Inc()
		return e.cfg.Tier.Compile(m, uint32(imported+i), &m.Funcs[i], &infos[i], nil)
	}

	workers := e.cfg.CompileWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			code, err := compileOne(i)
			if err != nil {
				return nil, err
			}
			codes[i] = code
		}
		return codes, nil
	}

	var (
		next    atomic.Int64
		mu      sync.Mutex
		firstI  = n
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				code, err := compileOne(i)
				if err != nil {
					// Every claimed index is compiled even after a
					// failure (errors are rare and compilation is
					// cheap), so the surviving error is always the
					// lowest-index one — exactly what serial
					// compilation reports.
					mu.Lock()
					if i < firstI {
						firstI, firstEr = i, err
					}
					mu.Unlock()
					continue
				}
				codes[i] = code
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return codes, nil
}

// Instantiate links a fresh instance of the compiled module: resolve
// imports, allocate memory/tables/globals and a value stack, install
// per-instance views of the shared code, and run the start function.
// This is the only per-instance cost — the artifact itself is never
// touched, so any number of goroutines may instantiate concurrently.
func (cm *CompiledModule) Instantiate() (*Instance, error) {
	t0 := time.Now()
	inst, err := cm.engine.link(cm.Module, cm.Infos)
	if err != nil {
		return nil, err
	}
	hLink.Observe(time.Since(t0))
	if tr := telemetry.DefaultTracer(); tr.Enabled() {
		tr.Record(telemetry.StageLink, cm.engine.cfg.Name, t0, time.Since(t0), "")
	}
	inst.Timings = cm.Timings

	if cm.Codes != nil {
		imported := cm.Module.NumImportedFuncs()
		for i, code := range cm.Codes {
			if code == nil {
				continue
			}
			inst.RT.Funcs[imported+i].Compiled = instanceCode(code)
		}
	}

	if cm.Module.HasStart {
		if err := inst.CallIdx(cm.Module.Start); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// instanceViewer is implemented by code objects that carry mutable
// execution state (today: the invalidation flag) and can produce a
// per-instance view of themselves. Code types that are immutable after
// compilation are shared between instances directly.
type instanceViewer interface{ InstanceView() any }

func instanceCode(code Code) any {
	if v, ok := code.(instanceViewer); ok {
		return v.InstanceView()
	}
	return code
}
