package validate

// Facts is the per-function output of the static-analysis pass
// (internal/analysis): properties proven by forward abstract
// interpretation over the validated body, consumed by every executor to
// elide dynamic checks. It lives here — not in the analysis package —
// so tiers can consume facts through the *FuncInfo they already
// receive, and the analysis package (which imports validate) stays
// acyclic with the engine (which imports both).
//
// A nil Facts means "nothing proven": every consumer must treat the
// absence of a fact as "keep the dynamic check". Facts never make a
// program trap less — they only license removing checks that provably
// cannot fire.
type Facts struct {
	// InBounds is a bitset over body pcs: bit pc is set when the memory
	// access decoded at pc is provably in bounds for any memory of at
	// least the module's declared minimum page count. Sound because
	// linking rejects imported memories below the declared minimum and
	// memory.grow never shrinks.
	InBounds []uint64
	// NoPoll is a bitset over body pcs: bit pc is set at loop back-edge
	// branches (and at the loop's first body pc, for tiers that plant a
	// checkpoint at the header) whose loop provably terminates within a
	// bounded trip count without calls, so the per-iteration interrupt
	// poll may be skipped. OSR and fuel accounting are unaffected.
	NoPoll []uint64
	// WritesMemory is false only when the function — and everything it
	// can transitively call — provably never writes, fills, copies into
	// or grows linear memory. Imports and indirect calls are
	// conservatively assumed to write.
	WritesMemory bool
	// Prepaid is a bitset over body pcs: bit pc is set at the sole
	// back-edge branch of a loop whose exact trip count was proven
	// (Trips), licensing fuel prepayment — the loop's whole fuel charge
	// is deducted at entry and the back-edge charge becomes conditional
	// (rt.Context.FuelIter). Only set for loops with no calls, no inner
	// loops, no early exits and no trapping instructions, so the proven
	// count is exact, not an upper bound.
	Prepaid []uint64
	// Trips maps a loop's first body pc to its proven exact trip count
	// (header-execution count: entry plus taken back-edges). Nil when
	// no loop qualified.
	Trips map[int]int64
	// BoundsProven counts InBounds bits set; PollsElided counts loops
	// whose back-edge poll was proven skippable. Telemetry feed.
	BoundsProven int
	// PollsElided counts loops proven poll-free.
	PollsElided int
}

// NewFacts returns a Facts with bitsets sized for a body of bodyLen
// bytes, conservatively assuming the function writes memory.
func NewFacts(bodyLen int) *Facts {
	n := (bodyLen + 63) / 64
	return &Facts{
		InBounds:     make([]uint64, n),
		NoPoll:       make([]uint64, n),
		WritesMemory: true,
	}
}

// SetInBounds marks the access at pc provably in bounds.
func (f *Facts) SetInBounds(pc int) {
	f.InBounds[pc>>6] |= 1 << (uint(pc) & 63)
	f.BoundsProven++
}

// SetNoPoll marks the back-edge (or loop header body pc) at pc as not
// requiring an interrupt poll.
func (f *Facts) SetNoPoll(pc int) {
	f.NoPoll[pc>>6] |= 1 << (uint(pc) & 63)
}

// InBoundsAt reports whether the access at pc is proven in bounds.
// Safe on a nil receiver.
func (f *Facts) InBoundsAt(pc int) bool {
	if f == nil {
		return false
	}
	w := pc >> 6
	return w < len(f.InBounds) && f.InBounds[w]&(1<<(uint(pc)&63)) != 0
}

// NoPollAt reports whether the back-edge (or loop header) at pc is
// proven poll-free. Safe on a nil receiver.
func (f *Facts) NoPollAt(pc int) bool {
	if f == nil {
		return false
	}
	w := pc >> 6
	return w < len(f.NoPoll) && f.NoPoll[w]&(1<<(uint(pc)&63)) != 0
}

// SetPrepaid marks the back-edge at pc as belonging to a loop whose
// fuel is prepaid at entry, allocating the bitset lazily (most
// functions have no prepaid loops).
func (f *Facts) SetPrepaid(pc int, bodyLen int) {
	if f.Prepaid == nil {
		f.Prepaid = make([]uint64, (bodyLen+63)/64)
	}
	f.Prepaid[pc>>6] |= 1 << (uint(pc) & 63)
}

// PrepaidAt reports whether the back-edge at pc belongs to a
// fuel-prepaid loop. Safe on a nil receiver.
func (f *Facts) PrepaidAt(pc int) bool {
	if f == nil {
		return false
	}
	w := pc >> 6
	return w < len(f.Prepaid) && f.Prepaid[w]&(1<<(uint(pc)&63)) != 0
}

// SetTrips records the proven exact trip count for the loop whose first
// body instruction is at pc.
func (f *Facts) SetTrips(pc int, trips int64) {
	if f.Trips == nil {
		f.Trips = make(map[int]int64, 2)
	}
	f.Trips[pc] = trips
}

// TripsAt returns the proven exact trip count of the loop whose first
// body instruction is at pc, or 0 when unproven. Safe on a nil
// receiver.
func (f *Facts) TripsAt(pc int) int64 {
	if f == nil {
		return 0
	}
	return f.Trips[pc]
}
