package validate

import "sort"

// STPForPC reconstructs the sidetable pointer for an execution state
// about to execute the instruction at pc: the number of sidetable
// entries whose owning instruction precedes pc. Owners is sorted, so
// this is a binary search. Tier-down (deopt) uses it to resume the
// in-place interpreter at an arbitrary bytecode boundary.
func (fi *FuncInfo) STPForPC(pc int) int {
	return sort.Search(len(fi.Owners), func(i int) bool {
		return int(fi.Owners[i]) >= pc
	})
}
