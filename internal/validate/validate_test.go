package validate_test

import (
	"strings"
	"testing"

	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

func mod(t *testing.T, build func(b *wasm.Builder)) *wasm.Module {
	t.Helper()
	b := wasm.NewBuilder()
	build(b)
	return b.Module()
}

func expectOK(t *testing.T, build func(b *wasm.Builder)) []validate.FuncInfo {
	t.Helper()
	infos, err := validate.Module(mod(t, build))
	if err != nil {
		t.Fatalf("expected valid module: %v", err)
	}
	return infos
}

func expectErr(t *testing.T, substr string, build func(b *wasm.Builder)) {
	t.Helper()
	_, err := validate.Module(mod(t, build))
	if err == nil {
		t.Fatalf("expected validation error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestValidSimple(t *testing.T) {
	infos := expectOK(t, func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
		f.I32Const(1).I32Const(2).Op(wasm.OpI32Add).End()
	})
	if infos[0].MaxStack != 2 {
		t.Errorf("MaxStack = %d, want 2", infos[0].MaxStack)
	}
}

func TestTypeMismatch(t *testing.T) {
	expectErr(t, "type mismatch", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
		f.I32Const(1).F64Const(2).Op(wasm.OpI32Add).End()
	})
}

func TestStackUnderflow(t *testing.T) {
	expectErr(t, "underflow", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{})
		f.Op(wasm.OpDrop).End()
	})
}

func TestSuperfluousValues(t *testing.T) {
	expectErr(t, "superfluous", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{})
		f.I32Const(1).End()
	})
}

func TestBadLocalIndex(t *testing.T) {
	expectErr(t, "local index", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{})
		f.LocalGet(3).Op(wasm.OpDrop).End()
	})
}

func TestBranchDepth(t *testing.T) {
	expectErr(t, "branch depth", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{})
		f.Br(5).End()
	})
}

func TestIfWithoutElseTypeRule(t *testing.T) {
	expectErr(t, "matching params and results", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
		f.I32Const(1)
		f.If(wasm.BlockVal(wasm.I32))
		f.I32Const(2)
		f.End()
		f.End()
	})
}

func TestGlobalSetImmutable(t *testing.T) {
	expectErr(t, "immutable", func(b *wasm.Builder) {
		g := b.AddGlobal(wasm.I32, false, wasm.ValI32(1))
		f := b.NewFunc("f", wasm.FuncType{})
		f.I32Const(2).GlobalSet(g).End()
	})
}

func TestMemoryRequired(t *testing.T) {
	expectErr(t, "without declared memory", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
		f.I32Const(0).Load(wasm.OpI32Load, 0).End()
	})
}

func TestAlignmentCheck(t *testing.T) {
	expectErr(t, "alignment", func(b *wasm.Builder) {
		b.AddMemory(1, 1)
		f := b.NewFunc("f", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
		f.I32Const(0)
		f.Raw(byte(wasm.OpI32Load))
		f.Raw(wasm.AppendU32(nil, 5)...) // align 2^5 > natural 2^2
		f.Raw(wasm.AppendU32(nil, 0)...)
		f.End()
	})
}

func TestUnreachableCodePolymorphism(t *testing.T) {
	// After br, the stack is polymorphic: dropping and pushing anything
	// must validate.
	expectOK(t, func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
		f.Block(wasm.BlockEmpty)
		f.Br(0)
		f.Op(wasm.OpDrop)
		f.Op(wasm.OpDrop)
		f.End()
		f.I32Const(1)
		f.End()
	})
}

func TestBrTableArityMismatch(t *testing.T) {
	expectErr(t, "inconsistent arity", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{})
		f.Block(wasm.BlockVal(wasm.I32)) // arity 1
		f.Block(wasm.BlockEmpty)         // arity 0
		f.I32Const(0).I32Const(0)
		f.BrTable([]uint32{0}, 1)
		f.End()
		f.Op(wasm.OpDrop)
		f.End()
		f.End()
	})
}

func TestSelectRefRejected(t *testing.T) {
	expectErr(t, "numeric operands", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{})
		f.RefNull(wasm.ExternRef).RefNull(wasm.ExternRef).I32Const(1)
		f.Op(wasm.OpSelect)
		f.Op(wasm.OpDrop)
		f.End()
	})
}

func TestStartMustBeNullary(t *testing.T) {
	expectErr(t, "start function", func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValueType{wasm.I32}})
		f.End()
		b.SetStart(f.Idx)
	})
}

// TestSidetableShape checks the sidetable structure of a known body.
func TestSidetableShape(t *testing.T) {
	infos := expectOK(t, func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}})
		f.LocalGet(0)
		f.If(wasm.BlockVal(wasm.I32)) // entry 0: false edge
		f.I32Const(1)
		f.Else() // entry 1: skip else
		f.I32Const(2)
		f.End()
		f.End()
	})
	st := infos[0].Sidetable
	if len(st) != 2 {
		t.Fatalf("sidetable has %d entries, want 2", len(st))
	}
	// The false edge must target just after the else opcode, with the
	// else's own entry consumed.
	if st[0].TargetSTP != 2 {
		t.Errorf("if false edge TargetSTP = %d, want 2", st[0].TargetSTP)
	}
	if st[0].TargetIP <= uint32(0) || st[1].TargetIP <= st[0].TargetIP {
		t.Errorf("sidetable target order wrong: %+v", st)
	}
	if len(infos[0].Owners) != 2 || infos[0].Owners[0] > infos[0].Owners[1] {
		t.Errorf("owners not sorted: %v", infos[0].Owners)
	}
}

func TestSidetableLoopBackedge(t *testing.T) {
	infos := expectOK(t, func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{})
		i := f.AddLocal(wasm.I32)
		f.Loop(wasm.BlockEmpty)
		f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
		f.I32Const(10).Op(wasm.OpI32LtS)
		f.BrIf(0)
		f.End()
		f.End()
	})
	st := infos[0].Sidetable
	if len(st) != 1 {
		t.Fatalf("sidetable has %d entries, want 1", len(st))
	}
	// Backward target: loop body start (after the loop header byte+bt).
	if st[0].TargetIP != 2 {
		t.Errorf("backedge TargetIP = %d, want 2", st[0].TargetIP)
	}
	if st[0].TargetSTP != 0 {
		t.Errorf("backedge TargetSTP = %d, want 0", st[0].TargetSTP)
	}
}

func TestSTPForPC(t *testing.T) {
	fi := &validate.FuncInfo{Owners: []uint32{4, 9, 9, 15}}
	cases := map[int]int{0: 0, 4: 0, 5: 1, 9: 1, 10: 3, 15: 3, 16: 4}
	for pc, want := range cases {
		if got := fi.STPForPC(pc); got != want {
			t.Errorf("STPForPC(%d) = %d, want %d", pc, got, want)
		}
	}
}

func TestNumSlots(t *testing.T) {
	infos := expectOK(t, func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValueType{wasm.I32}})
		f.AddLocal(wasm.F64)
		f.I32Const(1).I32Const(2).I32Const(3).Op(wasm.OpI32Add).Op(wasm.OpI32Add).Op(wasm.OpDrop)
		f.End()
	})
	if infos[0].NumSlots() != 2+3 {
		t.Errorf("NumSlots = %d, want 5", infos[0].NumSlots())
	}
	if infos[0].NumParams != 1 {
		t.Errorf("NumParams = %d", infos[0].NumParams)
	}
}

func TestExportIndexChecks(t *testing.T) {
	m := mod(t, func(b *wasm.Builder) {
		f := b.NewFunc("f", wasm.FuncType{})
		f.End()
	})
	m.Exports = append(m.Exports, wasm.Export{Name: "x", Kind: wasm.ImportFunc, Idx: 42})
	if _, err := validate.Module(m); err == nil {
		t.Error("expected export index error")
	}
}
