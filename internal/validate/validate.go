// Package validate implements Wasm code validation as a single forward
// abstract-interpretation pass, exactly the algorithm family the paper
// identifies as the common core of all single-pass Wasm compilers. As it
// validates, it builds the control "sidetable" that Wizard's in-place
// interpreter uses to take branches in O(1) without rewriting bytecode
// (Titzer, OOPSLA 2022), and records the metadata (max operand stack
// height, local types) every execution tier needs.
package validate

import (
	"errors"
	"fmt"

	"wizgo/internal/wasm"
)

// SidetableEntry describes one control transfer. The in-place interpreter
// maintains a sidetable pointer (STP) that advances in lock-step with the
// instruction pointer; taking a branch applies the entry: jump to
// TargetIP, set STP to TargetSTP, keep the top ValCount values and
// discard PopCount slots beneath them.
type SidetableEntry struct {
	TargetIP  uint32
	TargetSTP uint32
	ValCount  uint32
	PopCount  uint32
}

// FuncInfo is the validator's output for one function body.
type FuncInfo struct {
	// Sidetable entries in bytecode order of their owning instructions:
	// if and else own one entry each, br and br_if own one, br_table
	// owns len(targets)+1 consecutive entries.
	Sidetable []SidetableEntry
	// Owners[i] is the bytecode offset of the instruction owning
	// Sidetable[i]. Sorted ascending by construction; used to
	// reconstruct the sidetable pointer for an arbitrary pc during
	// tier-down (deopt), the "reconstructing IP and STP" step of the
	// paper's Section IV-B.
	Owners []uint32
	// MaxStack is the maximum operand stack height in slots.
	MaxStack int
	// LocalTypes lists parameter types followed by declared locals.
	LocalTypes []wasm.ValueType
	// Results is the function result types.
	Results []wasm.ValueType
	// NumParams is the number of parameters within LocalTypes.
	NumParams int
	// BodyLen is the length of the validated body in bytes.
	BodyLen int
	// Facts holds the static-analysis results for this function, or nil
	// when analysis did not run (engine.Config.NoAnalysis, direct tier
	// invocation). Executors must treat nil as "no fact proven".
	Facts *Facts
}

// NumSlots returns the frame size in value slots (locals + max operand
// stack), the quantity both interpreter and compiled frames reserve.
func (fi *FuncInfo) NumSlots() int { return len(fi.LocalTypes) + fi.MaxStack }

// unknownType marks a polymorphic stack slot produced in unreachable code.
const unknownType wasm.ValueType = 0

type ctrlFrame struct {
	op          wasm.Opcode // block, loop, if, or 0 for the function frame
	startTypes  []wasm.ValueType
	endTypes    []wasm.ValueType
	height      int // value stack height at frame entry, params excluded
	unreachable bool
	hasElse     bool
	// stpAtStart and ipAtStart give the branch target for loops.
	stpAtStart int
	ipAtStart  int
	// endFixups are sidetable entry indices patched when end is reached.
	endFixups []int
	// ifFixup is the entry emitted at if for its false edge; patched at
	// else (or at end when there is no else). -1 if absent.
	ifFixup int
}

func (f *ctrlFrame) labelArity() int {
	if f.op == wasm.OpLoop {
		return len(f.startTypes)
	}
	return len(f.endTypes)
}

func (f *ctrlFrame) labelTypes() []wasm.ValueType {
	if f.op == wasm.OpLoop {
		return f.startTypes
	}
	return f.endTypes
}

type validator struct {
	m      *wasm.Module
	f      *wasm.Func
	r      *wasm.Reader
	vals   []wasm.ValueType
	ctrls  []ctrlFrame
	info   *FuncInfo
	opPC   int         // pc of the opcode being validated
	op     wasm.Opcode // opcode being validated (noOpcode before the first)
	locals []wasm.ValueType
	// numMemories and numTables cache the imported+defined counts:
	// memCheck and call_indirect consult them per instruction, and
	// recounting the import section each time would make validation
	// O(imports x instructions).
	numMemories int
	numTables   int
}

// Error wraps a validation failure with function context. Op is the
// opcode being validated when the failure was raised (noOpcode before
// the first opcode of a body is read), so diagnostics name the
// offending instruction, not just its raw pc.
type Error struct {
	FuncIdx uint32
	PC      int
	Op      wasm.Opcode
	Msg     string
}

// noOpcode marks an Error raised before any opcode was decoded; it is
// outside the opcode space, so it never renders as an instruction name.
const noOpcode wasm.Opcode = 0xFFFF

func (e *Error) Error() string {
	if e.Op != noOpcode && e.Op.Known() {
		return fmt.Sprintf("validate: func %d at +%d (%v): %s", e.FuncIdx, e.PC, e.Op, e.Msg)
	}
	return fmt.Sprintf("validate: func %d at +%d: %s", e.FuncIdx, e.PC, e.Msg)
}

// Module validates every function body and the module-level index spaces,
// returning per-function metadata in function-section order.
func Module(m *wasm.Module) ([]FuncInfo, error) {
	if err := moduleLevel(m); err != nil {
		return nil, err
	}
	infos := make([]FuncInfo, len(m.Funcs))
	nImp := m.NumImportedFuncs()
	// The counts are shared across all function validations; recounting
	// the import section per function would make Module O(functions x
	// imports).
	numMemories, numTables := m.NumMemories(), m.NumTables()
	for i := range m.Funcs {
		fi, err := function(m, &m.Funcs[i], numMemories, numTables)
		if err != nil {
			var verr *Error
			if errors.As(err, &verr) {
				verr.FuncIdx = uint32(nImp + i)
			}
			return nil, err
		}
		infos[i] = *fi
	}
	return infos, nil
}

func moduleLevel(m *wasm.Module) error {
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ImportFunc && int(imp.TypeIdx) >= len(m.Types) {
			return fmt.Errorf("validate: import %s.%s: type index %d out of range",
				imp.Module, imp.Name, imp.TypeIdx)
		}
	}
	// Counted once: the Num* helpers walk the import section, and the
	// export/elem/data loops below consult the counts per item.
	numMemories, numTables := m.NumMemories(), m.NumTables()
	if numMemories > 1 {
		return fmt.Errorf("validate: %d memories (imported + defined); at most one is supported",
			numMemories)
	}
	for i, f := range m.Funcs {
		if int(f.TypeIdx) >= len(m.Types) {
			return fmt.Errorf("validate: func %d: type index %d out of range", i, f.TypeIdx)
		}
	}
	nFuncs := uint32(m.NumFuncs())
	for _, e := range m.Exports {
		switch e.Kind {
		case wasm.ImportFunc:
			if e.Idx >= nFuncs {
				return fmt.Errorf("validate: export %q: function index %d out of range", e.Name, e.Idx)
			}
		case wasm.ImportMemory:
			if int(e.Idx) >= numMemories {
				return fmt.Errorf("validate: export %q: memory index %d out of range", e.Name, e.Idx)
			}
		case wasm.ImportGlobal:
			if int(e.Idx) >= m.NumGlobals() {
				return fmt.Errorf("validate: export %q: global index %d out of range", e.Name, e.Idx)
			}
		case wasm.ImportTable:
			if int(e.Idx) >= numTables {
				return fmt.Errorf("validate: export %q: table index %d out of range", e.Name, e.Idx)
			}
		}
	}
	for i, el := range m.Elems {
		if int(el.TableIdx) >= numTables {
			return fmt.Errorf("validate: elem %d: table index out of range", i)
		}
		for _, fidx := range el.Funcs {
			if fidx >= nFuncs {
				return fmt.Errorf("validate: elem %d: function index %d out of range", i, fidx)
			}
		}
	}
	for i, d := range m.Datas {
		if int(d.MemIdx) >= numMemories {
			return fmt.Errorf("validate: data %d: memory index out of range", i)
		}
	}
	if m.HasStart {
		ft, err := m.FuncTypeAt(m.Start)
		if err != nil {
			return fmt.Errorf("validate: start: %v", err)
		}
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return fmt.Errorf("validate: start function must have type () -> (), has %v", ft)
		}
	}
	return nil
}

// Function validates a single function body and returns its metadata.
func Function(m *wasm.Module, f *wasm.Func) (*FuncInfo, error) {
	return function(m, f, m.NumMemories(), m.NumTables())
}

// function is Function with the import-spanning counts precomputed, so
// Module's per-function loop shares one count.
func function(m *wasm.Module, f *wasm.Func, numMemories, numTables int) (*FuncInfo, error) {
	ft := m.Types[f.TypeIdx]
	locals := make([]wasm.ValueType, 0, len(ft.Params)+len(f.Locals))
	locals = append(locals, ft.Params...)
	locals = append(locals, f.Locals...)

	v := &validator{
		m:           m,
		f:           f,
		r:           wasm.NewReader(f.Body),
		op:          noOpcode,
		locals:      locals,
		numMemories: numMemories,
		numTables:   numTables,
		info: &FuncInfo{
			LocalTypes: locals,
			Results:    ft.Results,
			NumParams:  len(ft.Params),
			BodyLen:    len(f.Body),
		},
	}
	v.pushCtrl(0, nil, ft.Results)
	if err := v.run(); err != nil {
		return nil, err
	}
	return v.info, nil
}

func (v *validator) fail(format string, args ...any) error {
	return &Error{PC: v.opPC, Op: v.op, Msg: fmt.Sprintf(format, args...)}
}

func (v *validator) pushVal(t wasm.ValueType) {
	v.vals = append(v.vals, t)
	if h := len(v.vals); h > v.info.MaxStack {
		v.info.MaxStack = h
	}
}

func (v *validator) popVal() (wasm.ValueType, error) {
	frame := &v.ctrls[len(v.ctrls)-1]
	if len(v.vals) == frame.height {
		if frame.unreachable {
			return unknownType, nil
		}
		return 0, v.fail("operand stack underflow")
	}
	t := v.vals[len(v.vals)-1]
	v.vals = v.vals[:len(v.vals)-1]
	return t, nil
}

func (v *validator) popExpect(want wasm.ValueType) (wasm.ValueType, error) {
	got, err := v.popVal()
	if err != nil {
		return 0, err
	}
	if got != want && got != unknownType && want != unknownType {
		return 0, v.fail("type mismatch: expected %v, got %v", want, got)
	}
	return got, nil
}

func (v *validator) popVals(types []wasm.ValueType) error {
	for i := len(types) - 1; i >= 0; i-- {
		if _, err := v.popExpect(types[i]); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) pushVals(types []wasm.ValueType) {
	for _, t := range types {
		v.pushVal(t)
	}
}

func (v *validator) pushCtrl(op wasm.Opcode, in, out []wasm.ValueType) {
	v.ctrls = append(v.ctrls, ctrlFrame{
		op:         op,
		startTypes: in,
		endTypes:   out,
		height:     len(v.vals),
		stpAtStart: len(v.info.Sidetable),
		ipAtStart:  v.r.Pos,
		ifFixup:    -1,
	})
	v.pushVals(in)
}

func (v *validator) popCtrl() (ctrlFrame, error) {
	if len(v.ctrls) == 0 {
		return ctrlFrame{}, v.fail("control stack underflow")
	}
	frame := v.ctrls[len(v.ctrls)-1]
	if err := v.popVals(frame.endTypes); err != nil {
		return ctrlFrame{}, err
	}
	if len(v.vals) != frame.height {
		return ctrlFrame{}, v.fail("%d superfluous values at end of block", len(v.vals)-frame.height)
	}
	v.ctrls = v.ctrls[:len(v.ctrls)-1]
	v.pushVals(frame.endTypes)
	return frame, nil
}

func (v *validator) setUnreachable() {
	frame := &v.ctrls[len(v.ctrls)-1]
	v.vals = v.vals[:frame.height]
	frame.unreachable = true
}

func (v *validator) frameAt(depth uint32) (*ctrlFrame, error) {
	if int(depth) >= len(v.ctrls) {
		return nil, v.fail("branch depth %d exceeds control stack depth %d", depth, len(v.ctrls))
	}
	return &v.ctrls[len(v.ctrls)-1-int(depth)], nil
}

// emitBranch emits a sidetable entry for a branch to the given frame and
// returns the entry index. Backward (loop) targets are resolved
// immediately; forward targets are appended to the frame's fixup list.
func (v *validator) emitBranch(frame *ctrlFrame) int {
	arity := frame.labelArity()
	pop := len(v.vals) - arity - frame.height
	if pop < 0 {
		pop = 0 // only possible in unreachable code; entry never runs
	}
	idx := len(v.info.Sidetable)
	v.info.Owners = append(v.info.Owners, uint32(v.opPC))
	e := SidetableEntry{ValCount: uint32(arity), PopCount: uint32(pop)}
	if frame.op == wasm.OpLoop {
		e.TargetIP = uint32(frame.ipAtStart)
		e.TargetSTP = uint32(frame.stpAtStart)
	} else {
		frame.endFixups = append(frame.endFixups, idx)
	}
	v.info.Sidetable = append(v.info.Sidetable, e)
	return idx
}

func (v *validator) blockType() (in, out []wasm.ValueType, err error) {
	bt, err := v.r.S33()
	if err != nil {
		return nil, nil, err
	}
	if bt >= 0 {
		if int(bt) >= len(v.m.Types) {
			return nil, nil, v.fail("block type index %d out of range", bt)
		}
		t := v.m.Types[bt]
		return t.Params, t.Results, nil
	}
	if bt == -64 { // 0x40: empty
		return nil, nil, nil
	}
	vt := wasm.ValueType(byte(bt & 0x7F))
	if !vt.Valid() {
		return nil, nil, v.fail("invalid block type %d", bt)
	}
	return nil, []wasm.ValueType{vt}, nil
}

func (v *validator) run() error {
	for {
		if v.r.Len() == 0 {
			if len(v.ctrls) != 0 {
				return v.fail("function body truncated inside %d open blocks", len(v.ctrls))
			}
			return nil
		}
		if len(v.ctrls) == 0 {
			return v.fail("instructions after function end")
		}
		v.opPC = v.r.Pos
		op, err := v.r.ReadOpcode()
		if err != nil {
			return err
		}
		v.op = op
		if err := v.instr(op); err != nil {
			return err
		}
	}
}

func (v *validator) instr(op wasm.Opcode) error {
	// Simple instructions are fully described by their static signature.
	if params, results, ok := op.Sig(); ok {
		if err := v.memCheck(op); err != nil {
			return err
		}
		if err := v.popVals(params); err != nil {
			return err
		}
		v.pushVals(results)
		return nil
	}

	switch op {
	case wasm.OpUnreachable:
		v.setUnreachable()
	case wasm.OpNop:
	case wasm.OpBlock:
		in, out, err := v.blockType()
		if err != nil {
			return err
		}
		if err := v.popVals(in); err != nil {
			return err
		}
		v.pushCtrl(wasm.OpBlock, in, out)
	case wasm.OpLoop:
		in, out, err := v.blockType()
		if err != nil {
			return err
		}
		if err := v.popVals(in); err != nil {
			return err
		}
		v.pushCtrl(wasm.OpLoop, in, out)
	case wasm.OpIf:
		in, out, err := v.blockType()
		if err != nil {
			return err
		}
		if _, err := v.popExpect(wasm.I32); err != nil {
			return err
		}
		if err := v.popVals(in); err != nil {
			return err
		}
		v.pushCtrl(wasm.OpIf, in, out)
		frame := &v.ctrls[len(v.ctrls)-1]
		// The if's false edge: target patched at else or end.
		frame.ifFixup = len(v.info.Sidetable)
		v.info.Owners = append(v.info.Owners, uint32(v.opPC))
		v.info.Sidetable = append(v.info.Sidetable, SidetableEntry{
			ValCount: uint32(len(in)),
		})
	case wasm.OpElse:
		if len(v.ctrls) == 0 || v.ctrls[len(v.ctrls)-1].op != wasm.OpIf {
			return v.fail("else outside if")
		}
		frame := v.ctrls[len(v.ctrls)-1]
		if _, err := v.popCtrl(); err != nil {
			return err
		}
		// Pop the just-pushed results; the else arm starts fresh.
		if err := v.popVals(frame.endTypes); err != nil {
			return err
		}
		v.pushCtrl(wasm.OpIf, frame.startTypes, frame.endTypes)
		nf := &v.ctrls[len(v.ctrls)-1]
		nf.hasElse = true
		// This entry jumps from the end of the then-arm past end.
		elseEntry := len(v.info.Sidetable)
		v.info.Owners = append(v.info.Owners, uint32(v.opPC))
		v.info.Sidetable = append(v.info.Sidetable, SidetableEntry{
			ValCount: uint32(len(frame.endTypes)),
		})
		// Branches inside the then-arm that target this label must
		// still be patched at end; carry their fixups over.
		nf.endFixups = append(frame.endFixups, elseEntry)
		// Patch the if's false edge to just after the else opcode.
		if frame.ifFixup >= 0 {
			v.info.Sidetable[frame.ifFixup].TargetIP = uint32(v.r.Pos)
			v.info.Sidetable[frame.ifFixup].TargetSTP = uint32(len(v.info.Sidetable))
		}
	case wasm.OpEnd:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		if frame.op == wasm.OpIf && !frame.hasElse && frame.ifFixup >= 0 {
			// if without else: types must satisfy in == out.
			if !sameTypes(frame.startTypes, frame.endTypes) {
				return v.fail("if without else requires matching params and results")
			}
		}
		endIP := uint32(v.r.Pos)
		endSTP := uint32(len(v.info.Sidetable))
		if frame.op == wasm.OpIf && !frame.hasElse && frame.ifFixup >= 0 {
			v.info.Sidetable[frame.ifFixup].TargetIP = endIP
			v.info.Sidetable[frame.ifFixup].TargetSTP = endSTP
		}
		for _, fixup := range frame.endFixups {
			v.info.Sidetable[fixup].TargetIP = endIP
			v.info.Sidetable[fixup].TargetSTP = endSTP
		}
		// The end of the outermost frame is the function return; no
		// sidetable entry needed, the interpreter returns directly.
	case wasm.OpBr:
		depth, err := v.r.U32()
		if err != nil {
			return err
		}
		frame, err := v.frameAt(depth)
		if err != nil {
			return err
		}
		if err := v.popVals(frame.labelTypes()); err != nil {
			return err
		}
		// Restore stack for emitBranch height computation: the branch
		// transfers labelTypes; emit with them conceptually present.
		v.pushVals(frame.labelTypes())
		v.emitBranch(frame)
		if err := v.popVals(frame.labelTypes()); err != nil {
			return err
		}
		v.setUnreachable()
	case wasm.OpBrIf:
		depth, err := v.r.U32()
		if err != nil {
			return err
		}
		if _, err := v.popExpect(wasm.I32); err != nil {
			return err
		}
		frame, err := v.frameAt(depth)
		if err != nil {
			return err
		}
		if err := v.popVals(frame.labelTypes()); err != nil {
			return err
		}
		v.pushVals(frame.labelTypes())
		v.emitBranch(frame)
	case wasm.OpBrTable:
		n, err := v.r.U32()
		if err != nil {
			return err
		}
		if _, err := v.popExpect(wasm.I32); err != nil {
			return err
		}
		targets := make([]uint32, n+1)
		for i := range targets {
			if targets[i], err = v.r.U32(); err != nil {
				return err
			}
		}
		// All targets must agree on arity; validate against the
		// default's label types.
		def, err := v.frameAt(targets[n])
		if err != nil {
			return err
		}
		arity := def.labelArity()
		for _, depth := range targets {
			frame, err := v.frameAt(depth)
			if err != nil {
				return err
			}
			if frame.labelArity() != arity {
				return v.fail("br_table targets have inconsistent arity")
			}
		}
		if err := v.popVals(def.labelTypes()); err != nil {
			return err
		}
		v.pushVals(def.labelTypes())
		for _, depth := range targets {
			frame, _ := v.frameAt(depth)
			v.emitBranch(frame)
		}
		if err := v.popVals(def.labelTypes()); err != nil {
			return err
		}
		v.setUnreachable()
	case wasm.OpReturn:
		if err := v.popVals(v.info.Results); err != nil {
			return err
		}
		v.setUnreachable()
	case wasm.OpCall:
		idx, err := v.r.U32()
		if err != nil {
			return err
		}
		ft, err := v.m.FuncTypeAt(idx)
		if err != nil {
			return v.fail("%v", err)
		}
		if err := v.popVals(ft.Params); err != nil {
			return err
		}
		v.pushVals(ft.Results)
	case wasm.OpCallIndirect:
		typeIdx, err := v.r.U32()
		if err != nil {
			return err
		}
		tableIdx, err := v.r.U32()
		if err != nil {
			return err
		}
		if int(tableIdx) >= v.numTables {
			return v.fail("call_indirect: table %d out of range", tableIdx)
		}
		if int(typeIdx) >= len(v.m.Types) {
			return v.fail("call_indirect: type %d out of range", typeIdx)
		}
		if _, err := v.popExpect(wasm.I32); err != nil {
			return err
		}
		ft := v.m.Types[typeIdx]
		if err := v.popVals(ft.Params); err != nil {
			return err
		}
		v.pushVals(ft.Results)
	case wasm.OpDrop:
		if _, err := v.popVal(); err != nil {
			return err
		}
	case wasm.OpSelect:
		if _, err := v.popExpect(wasm.I32); err != nil {
			return err
		}
		t1, err := v.popVal()
		if err != nil {
			return err
		}
		t2, err := v.popVal()
		if err != nil {
			return err
		}
		if t1 != unknownType && t1.IsRef() || t2 != unknownType && t2.IsRef() {
			return v.fail("select requires numeric operands; use typed select for references")
		}
		if t1 != t2 && t1 != unknownType && t2 != unknownType {
			return v.fail("select operand types differ: %v vs %v", t1, t2)
		}
		if t1 == unknownType {
			v.pushVal(t2)
		} else {
			v.pushVal(t1)
		}
	case wasm.OpSelectT:
		n, err := v.r.U32()
		if err != nil {
			return err
		}
		if n != 1 {
			return v.fail("typed select must list exactly one type")
		}
		b, err := v.r.Byte()
		if err != nil {
			return err
		}
		t := wasm.ValueType(b)
		if !t.Valid() {
			return v.fail("typed select: invalid type 0x%02x", b)
		}
		if _, err := v.popExpect(wasm.I32); err != nil {
			return err
		}
		if _, err := v.popExpect(t); err != nil {
			return err
		}
		if _, err := v.popExpect(t); err != nil {
			return err
		}
		v.pushVal(t)
	case wasm.OpLocalGet:
		idx, err := v.r.U32()
		if err != nil {
			return err
		}
		if int(idx) >= len(v.locals) {
			return v.fail("local index %d out of range", idx)
		}
		v.pushVal(v.locals[idx])
	case wasm.OpLocalSet:
		idx, err := v.r.U32()
		if err != nil {
			return err
		}
		if int(idx) >= len(v.locals) {
			return v.fail("local index %d out of range", idx)
		}
		if _, err := v.popExpect(v.locals[idx]); err != nil {
			return err
		}
	case wasm.OpLocalTee:
		idx, err := v.r.U32()
		if err != nil {
			return err
		}
		if int(idx) >= len(v.locals) {
			return v.fail("local index %d out of range", idx)
		}
		if _, err := v.popExpect(v.locals[idx]); err != nil {
			return err
		}
		v.pushVal(v.locals[idx])
	case wasm.OpGlobalGet:
		idx, err := v.r.U32()
		if err != nil {
			return err
		}
		t, _, err := v.m.GlobalTypeAt(idx)
		if err != nil {
			return v.fail("%v", err)
		}
		v.pushVal(t)
	case wasm.OpGlobalSet:
		idx, err := v.r.U32()
		if err != nil {
			return err
		}
		t, mut, err := v.m.GlobalTypeAt(idx)
		if err != nil {
			return v.fail("%v", err)
		}
		if !mut {
			return v.fail("global.set of immutable global %d", idx)
		}
		if _, err := v.popExpect(t); err != nil {
			return err
		}
	case wasm.OpRefNull:
		b, err := v.r.Byte()
		if err != nil {
			return err
		}
		t := wasm.ValueType(b)
		if !t.IsRef() {
			return v.fail("ref.null: invalid heap type 0x%02x", b)
		}
		v.pushVal(t)
	case wasm.OpRefIsNull:
		t, err := v.popVal()
		if err != nil {
			return err
		}
		if t != unknownType && !t.IsRef() {
			return v.fail("ref.is_null on non-reference %v", t)
		}
		v.pushVal(wasm.I32)
	case wasm.OpRefFunc:
		idx, err := v.r.U32()
		if err != nil {
			return err
		}
		if int(idx) >= v.m.NumFuncs() {
			return v.fail("ref.func: function index %d out of range", idx)
		}
		v.pushVal(wasm.FuncRef)
	default:
		return v.fail("unknown or unsupported opcode %v", op)
	}
	return nil
}

// memCheck verifies memory presence and alignment immediates for simple
// instructions that touch memory, and consumes their immediates.
func (v *validator) memCheck(op wasm.Opcode) error {
	switch op.Imm() {
	case wasm.ImmMem:
		align, err := v.r.U32()
		if err != nil {
			return err
		}
		if _, err := v.r.U32(); err != nil { // offset
			return err
		}
		if v.numMemories == 0 {
			return v.fail("%v without declared memory", op)
		}
		if align > naturalAlign(op) {
			return v.fail("%v alignment 2^%d exceeds natural alignment", op, align)
		}
	case wasm.ImmMemOnly, wasm.ImmOneMem:
		if _, err := v.r.Byte(); err != nil {
			return err
		}
		if v.numMemories == 0 {
			return v.fail("%v without declared memory", op)
		}
	case wasm.ImmTwoMem:
		if _, err := v.r.Byte(); err != nil {
			return err
		}
		if _, err := v.r.Byte(); err != nil {
			return err
		}
		if v.numMemories == 0 {
			return v.fail("%v without declared memory", op)
		}
	case wasm.ImmI32:
		if _, err := v.r.S32(); err != nil {
			return err
		}
	case wasm.ImmI64:
		if _, err := v.r.S64(); err != nil {
			return err
		}
	case wasm.ImmF32:
		if _, err := v.r.F32(); err != nil {
			return err
		}
	case wasm.ImmF64:
		if _, err := v.r.F64(); err != nil {
			return err
		}
	}
	return nil
}

func naturalAlign(op wasm.Opcode) uint32 {
	switch op {
	case wasm.OpI32Load8S, wasm.OpI32Load8U, wasm.OpI64Load8S, wasm.OpI64Load8U,
		wasm.OpI32Store8, wasm.OpI64Store8:
		return 0
	case wasm.OpI32Load16S, wasm.OpI32Load16U, wasm.OpI64Load16S, wasm.OpI64Load16U,
		wasm.OpI32Store16, wasm.OpI64Store16:
		return 1
	case wasm.OpI32Load, wasm.OpF32Load, wasm.OpI32Store, wasm.OpF32Store,
		wasm.OpI64Load32S, wasm.OpI64Load32U, wasm.OpI64Store32:
		return 2
	default:
		return 3
	}
}

func sameTypes(a, b []wasm.ValueType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
