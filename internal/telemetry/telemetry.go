// Package telemetry is the runtime's unified observability core: a
// zero-dependency, allocation-free metrics layer (atomic counters,
// gauges, and fixed-bucket latency histograms with mergeable
// snapshots), a ring-buffered request-lifecycle tracer, and the
// exposition surfaces that make both visible — Prometheus text format
// and an expvar-compatible JSON snapshot.
//
// The paper frames baseline-compiler design as a measurable tradeoff
// between compile speed and code quality; this package is how a
// deployment keeps measuring it in production. Every stat producer in
// the runtime — the code cache's memory and disk tiers, the instance
// pool, the engine's compile/link/execute pipeline, the executors' trap
// paths — publishes into one process-wide Registry (Default), so a
// single scrape answers where time goes: compiling, rehydrating,
// linking, resetting, or executing.
//
// Design constraints, in order:
//
//   - Hot-path cost. Counter.Inc and Histogram.Observe are one or two
//     uncontended atomic adds and never allocate — cheap enough to sit
//     on the code cache's lookup path and the engine's per-call path
//     without moving the execution benchmarks. The tracer is disabled
//     by default and costs one atomic load when off.
//   - Mergeability. Snapshots from different processes (or different
//     scrape instants) merge associatively: counters and histogram
//     buckets add, gauges add (they are sized in deltas, e.g. pooled
//     instances in custody). This is what lets a fleet aggregate
//     per-replica snapshots into one view, and what BENCH_*.json
//     trajectory entries are built from.
//   - No dependencies. The package imports only the standard library,
//     so every internal package (rt included) can publish into it
//     without cycles.
package telemetry

import "sync"

var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
	defaultTracer   = NewTracer()
)

// Default returns the process-wide registry every runtime package
// publishes into. The first call creates it.
func Default() *Registry {
	defaultOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}

// DefaultTracer returns the process-wide request-lifecycle tracer. It
// starts disabled; call Enable to start recording spans.
func DefaultTracer() *Tracer { return defaultTracer }
