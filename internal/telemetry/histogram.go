package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: power-of-two nanosecond bounds starting at
// 256ns. Bucket i covers durations whose upper bound is 256ns<<i; the
// last slot is the overflow bucket (everything above the largest
// bound, ~9.2s). The layout is fixed so snapshots from any two
// histograms merge bucket-by-bucket.
const (
	// histShift is log2 of the first bucket's upper bound (256ns).
	histShift = 8
	// HistBuckets is the number of bounded buckets; durations above
	// the last bound land in the overflow bucket at index HistBuckets.
	HistBuckets = 26
)

// BucketBound returns the upper bound of bounded bucket i in
// nanoseconds (256ns << i).
func BucketBound(i int) uint64 { return 1 << (histShift + i) }

// bucketIndex maps a duration in nanoseconds to its bucket index.
// d <= 256ns → 0; each doubling of d advances one bucket; anything
// above the last bound → HistBuckets (overflow).
func bucketIndex(ns uint64) int {
	if ns <= 1<<histShift {
		return 0
	}
	// bits.Len64(ns-1) is the position of the highest set bit of the
	// smallest power of two >= ns, i.e. ceil(log2(ns)).
	i := bits.Len64(ns-1) - histShift
	if i > HistBuckets {
		return HistBuckets
	}
	return i
}

// Histogram is a fixed-bucket latency histogram. Observe is a bounded
// handful of uncontended atomic adds and never allocates, so it can sit
// on the engine's per-call path. Buckets are non-cumulative internally;
// the Prometheus exposition accumulates them.
type Histogram struct {
	buckets [HistBuckets + 1]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	desc    Desc
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }
