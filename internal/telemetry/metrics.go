package telemetry

import "sync/atomic"

// Desc is a metric's identity: its family name, help text, and an
// optional single label pair. Two metrics with the same Name but
// different label values are members of one family (one HELP/TYPE block
// in the Prometheus exposition, one series each).
type Desc struct {
	Name string
	Help string
	// LabelKey/LabelValue form the series label (e.g. kind="oob_memory").
	// Empty LabelKey means an unlabeled series.
	LabelKey   string
	LabelValue string
}

// seriesKey identifies one time series within a registry.
func (d Desc) seriesKey() string {
	if d.LabelKey == "" {
		return d.Name
	}
	return d.Name + "{" + d.LabelKey + "=" + d.LabelValue + "}"
}

// Counter is a monotonically increasing counter. Inc and Add are one
// uncontended atomic add and never allocate; the zero value is usable
// standalone, but registered counters must come from Registry.Counter
// so they carry a Desc.
type Counter struct {
	v    atomic.Uint64
	desc Desc
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Pool custody counts and
// other sizes publish as gauges via deltas (Add), which is what keeps
// gauge snapshots mergeable across processes.
type Gauge struct {
	v    atomic.Int64
	desc Desc
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
