package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names for request-lifecycle spans. Producers use these
// constants so traces are filterable by exact stage name.
const (
	StageCompile   = "compile"
	StageCacheMem  = "cache_mem"
	StageCacheDisk = "cache_disk"
	StageLink      = "link"
	StagePoolGet   = "pool_get"
	StagePoolReset = "pool_reset"
	StageExecute   = "execute"
	StageTrap      = "trap"
	StageInterrupt = "interrupt"
)

// Span is one recorded lifecycle event. Detail identifies the subject
// (module hash, export name, trap kind); Err is the outcome label for
// failed spans ("" on success).
type Span struct {
	Seq    uint64        `json:"seq"`
	Stage  string        `json:"stage"`
	Detail string        `json:"detail,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Err    string        `json:"err,omitempty"`
}

// Tracer records lifecycle spans into a fixed ring buffer. It starts
// disabled: Record is one atomic load when off, and producers are
// expected to call Record unconditionally. Enable sizes the ring;
// once full, new spans overwrite the oldest.
type Tracer struct {
	enabled atomic.Bool

	mu   sync.Mutex
	ring []Span
	next uint64 // total spans recorded; ring index is next % len(ring)
}

// NewTracer returns a disabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enable starts recording with a ring of the given capacity (minimum
// 16). Re-enabling resizes and clears the ring.
func (t *Tracer) Enable(capacity int) {
	if capacity < 16 {
		capacity = 16
	}
	t.mu.Lock()
	t.ring = make([]Span, capacity)
	t.next = 0
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable stops recording. Recorded spans remain readable.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Record adds one span. A disabled tracer returns after one atomic
// load and does not allocate.
func (t *Tracer) Record(stage, detail string, start time.Time, dur time.Duration, errLabel string) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	if len(t.ring) == 0 {
		t.mu.Unlock()
		return
	}
	t.ring[t.next%uint64(len(t.ring))] = Span{
		Seq: t.next, Stage: stage, Detail: detail,
		Start: start, Dur: dur, Err: errLabel,
	}
	t.next++
	t.mu.Unlock()
}

// Spans returns the recorded spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next == 0 || len(t.ring) == 0 {
		return nil
	}
	n := t.next
	cap64 := uint64(len(t.ring))
	if n > cap64 {
		out := make([]Span, 0, cap64)
		for i := uint64(0); i < cap64; i++ {
			out = append(out, t.ring[(n+i)%cap64])
		}
		return out
	}
	out := make([]Span, n)
	copy(out, t.ring[:n])
	return out
}

// WriteJSON dumps the recorded spans as a JSON array, oldest first.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
