package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 0},
		{255, 0},
		{256, 0}, // exactly the first bound
		{257, 1}, // one past it
		{511, 1},
		{512, 1}, // exactly bound of bucket 1
		{513, 2},
		{1024, 2},
		{1025, 3},
		{BucketBound(HistBuckets - 1), HistBuckets - 1}, // largest bounded value
		{BucketBound(HistBuckets-1) + 1, HistBuckets},   // overflow
		{1 << 62, HistBuckets},                          // deep overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	if h.Count() != 110 {
		t.Fatalf("count = %d, want 110", h.Count())
	}
	wantSum := 100*time.Microsecond + 10*time.Millisecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	r := NewRegistry()
	hr := r.Histogram("h", "")
	hr.Observe(time.Microsecond)
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("snapshot histogram missing: %+v", snap.Histograms)
	}

	var hs HistSnap
	hs.Count = h.Count()
	hs.SumNS = uint64(h.Sum())
	for i := range h.buckets {
		hs.Buckets[i] = h.buckets[i].Load()
	}
	// p50 of 110 observations where 100 are ~1µs must land in the 1µs
	// bucket's range; p99 must land near 1ms.
	if p50 := hs.Quantile(0.50); p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want <= 2µs", p50)
	}
	if p99 := hs.Quantile(0.99); p99 < 500*time.Microsecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms", p99)
	}
	if q0 := hs.Quantile(0); q0 > time.Microsecond {
		t.Errorf("q0 = %v, want small", q0)
	}
	var empty HistSnap
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Errorf("empty histogram quantile/mean must be 0")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(BucketBound(HistBuckets-1)) + time.Hour)
	if got := h.buckets[HistBuckets].Load(); got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
	var hs HistSnap
	hs.Count = 1
	hs.Buckets[HistBuckets] = 1
	// Overflow observations report the largest bounded bound, not 0.
	if q := hs.Quantile(0.99); q != time.Duration(BucketBound(HistBuckets-1)) {
		t.Fatalf("overflow quantile = %v, want %v", q, time.Duration(BucketBound(HistBuckets-1)))
	}
}

func TestHistogramNegativeDuration(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation: count=%d sum=%v, want 1, 0", h.Count(), h.Sum())
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("wizgo_x_total", "help")
	b := r.Counter("wizgo_x_total", "ignored")
	if a != b {
		t.Fatal("same name must return same counter")
	}
	l1 := r.CounterL("wizgo_y_total", "", "kind", "a")
	l2 := r.CounterL("wizgo_y_total", "", "kind", "b")
	l3 := r.CounterL("wizgo_y_total", "", "kind", "a")
	if l1 == l2 {
		t.Fatal("different label values must be distinct series")
	}
	if l1 != l3 {
		t.Fatal("same label value must return same counter")
	}
	if g1, g2 := r.Gauge("wizgo_g", ""), r.Gauge("wizgo_g", ""); g1 != g2 {
		t.Fatal("same name must return same gauge")
	}
	if h1, h2 := r.Histogram("wizgo_h", ""), r.Histogram("wizgo_h", ""); h1 != h2 {
		t.Fatal("same name must return same histogram")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wizgo_conc_total", "")
	g := r.Gauge("wizgo_conc_gauge", "")
	h := r.Histogram("wizgo_conc_hist", "")
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(j) * time.Nanosecond)
				// Concurrent registration of the same series must be
				// safe and return the shared instance.
				r.Counter("wizgo_conc_total", "")
			}
		}()
	}
	// Snapshot concurrently with the writers: must not race.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if c.Value() != goroutines*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*iters)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
}

// snapFrom builds a snapshot from a throwaway registry via a setup
// function — convenient for merge tests.
func snapFrom(setup func(r *Registry)) Snapshot {
	r := NewRegistry()
	setup(r)
	return r.Snapshot()
}

func TestMergeAssociativity(t *testing.T) {
	a := snapFrom(func(r *Registry) {
		r.Counter("wizgo_a_total", "ha").Add(3)
		r.Gauge("wizgo_g", "").Add(5)
		r.Histogram("wizgo_h", "").Observe(time.Microsecond)
		r.CounterL("wizgo_traps_total", "", "kind", "oob").Add(2)
	})
	b := snapFrom(func(r *Registry) {
		r.Counter("wizgo_a_total", "").Add(4)
		r.Histogram("wizgo_h", "").Observe(time.Millisecond)
		r.CounterL("wizgo_traps_total", "", "kind", "div").Add(1)
	})
	c := snapFrom(func(r *Registry) {
		r.Gauge("wizgo_g", "").Add(-2)
		r.Histogram("wizgo_h", "").Observe(time.Second)
		r.Counter("wizgo_only_c_total", "").Inc()
	})

	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))

	lj, _ := json.Marshal(left.JSONValue())
	rj, _ := json.Marshal(right.JSONValue())
	if !bytes.Equal(lj, rj) {
		t.Fatalf("merge not associative:\n(a+b)+c = %s\na+(b+c) = %s", lj, rj)
	}

	// Spot-check the sums.
	found := false
	for _, cs := range left.Counters {
		if cs.Desc.Name == "wizgo_a_total" {
			found = true
			if cs.Value != 7 {
				t.Fatalf("merged counter = %d, want 7", cs.Value)
			}
		}
	}
	if !found {
		t.Fatal("merged counter missing")
	}
	for _, hs := range left.Histograms {
		if hs.Desc.Name == "wizgo_h" && hs.Count != 3 {
			t.Fatalf("merged histogram count = %d, want 3", hs.Count)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	s := snapFrom(func(r *Registry) {
		r.Counter("wizgo_cache_hits_total", "Memory cache hits.").Add(5)
		r.CounterL("wizgo_traps_total", "Traps by kind.", "kind", "oob_memory").Add(2)
		r.CounterL("wizgo_traps_total", "Traps by kind.", "kind", "unreachable").Add(1)
		h := r.Histogram("wizgo_execute_seconds", "Execute latency.")
		h.Observe(300 * time.Nanosecond)
		h.Observe(10 * time.Second) // overflow
	})
	var buf bytes.Buffer
	s.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE wizgo_cache_hits_total counter",
		"wizgo_cache_hits_total 5",
		`wizgo_traps_total{kind="oob_memory"} 2`,
		`wizgo_traps_total{kind="unreachable"} 1`,
		"# TYPE wizgo_execute_seconds histogram",
		`wizgo_execute_seconds_bucket{le="+Inf"} 2`,
		"wizgo_execute_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One HELP/TYPE block per family, even with two trap series.
	if n := strings.Count(out, "# TYPE wizgo_traps_total"); n != 1 {
		t.Errorf("trap family TYPE lines = %d, want 1", n)
	}
	// Buckets must be cumulative: the 300ns observation (512ns bucket)
	// appears in every bucket from 512ns up.
	if !strings.Contains(out, `wizgo_execute_seconds_bucket{le="2.56e-07"} 0`) ||
		!strings.Contains(out, `wizgo_execute_seconds_bucket{le="5.12e-07"} 1`) ||
		!strings.Contains(out, `wizgo_execute_seconds_bucket{le="1.024e-06"} 1`) {
		t.Errorf("buckets not cumulative from 300ns observation:\n%s", out)
	}
}

func TestJSONValue(t *testing.T) {
	s := snapFrom(func(r *Registry) {
		r.Counter("wizgo_x_total", "").Add(9)
		r.Histogram("wizgo_h", "").Observe(time.Microsecond)
	})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	counters := m["counters"].(map[string]any)
	if counters["wizgo_x_total"].(float64) != 9 {
		t.Fatalf("counter in JSON = %v, want 9", counters["wizgo_x_total"])
	}
	hists := m["histograms"].(map[string]any)
	if _, ok := hists["wizgo_h"]; !ok {
		t.Fatal("histogram missing from JSON")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer()
	start := time.Unix(0, 0)
	// Disabled: records are dropped.
	tr.Record(StageCompile, "x", start, time.Millisecond, "")
	if got := tr.Spans(); got != nil {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}

	tr.Enable(16)
	for i := 0; i < 20; i++ {
		tr.Record(StageExecute, "req", start, time.Duration(i), "")
	}
	spans := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	// Oldest first: seq 4..19 survive after 20 records into a 16-ring.
	if spans[0].Seq != 4 || spans[15].Seq != 19 {
		t.Fatalf("ring order wrong: first seq %d, last seq %d", spans[0].Seq, spans[15].Seq)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Span
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(decoded) != 16 {
		t.Fatalf("trace JSON has %d spans, want 16", len(decoded))
	}

	tr.Disable()
	tr.Record(StageExecute, "late", start, 0, "")
	if len(tr.Spans()) != 16 {
		t.Fatal("disabled tracer must not record")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	tr.Enable(64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.Record(StageExecute, "r", time.Unix(0, 0), time.Duration(j), "")
			}
		}()
	}
	wg.Wait()
	if len(tr.Spans()) != 64 {
		t.Fatalf("ring = %d spans, want 64", len(tr.Spans()))
	}
}

func TestZeroAllocHotPaths(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wizgo_alloc_total", "")
	g := r.Gauge("wizgo_alloc_gauge", "")
	h := r.Histogram("wizgo_alloc_hist", "")
	tr := NewTracer() // disabled

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Record(StageExecute, "", time.Time{}, 0, "")
	}); n != 0 {
		t.Errorf("disabled Tracer.Record allocates %v/op, want 0", n)
	}
}
