package telemetry

import (
	"sort"
	"sync"
)

// Registry holds the process's metric series. Registration is
// idempotent: asking for a name+label pair that already exists returns
// the existing metric, so package-level producers (many engines, many
// caches in one process) all fold into the same series. Registration
// takes a lock; the returned metrics are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry. Most code uses Default.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help, "", "")
}

// CounterL registers (or fetches) a counter with one label pair.
func (r *Registry) CounterL(name, help, labelKey, labelValue string) *Counter {
	d := Desc{Name: name, Help: help, LabelKey: labelKey, LabelValue: labelValue}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[d.seriesKey()]; ok {
		return c
	}
	c := &Counter{desc: d}
	r.counters[d.seriesKey()] = c
	return c
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, help, "", "")
}

// GaugeL registers (or fetches) a gauge with one label pair.
func (r *Registry) GaugeL(name, help, labelKey, labelValue string) *Gauge {
	d := Desc{Name: name, Help: help, LabelKey: labelKey, LabelValue: labelValue}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[d.seriesKey()]; ok {
		return g
	}
	g := &Gauge{desc: d}
	r.gauges[d.seriesKey()] = g
	return g
}

// Histogram registers (or fetches) an unlabeled latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramL(name, help, "", "")
}

// HistogramL registers (or fetches) a histogram with one label pair.
func (r *Registry) HistogramL(name, help, labelKey, labelValue string) *Histogram {
	d := Desc{Name: name, Help: help, LabelKey: labelKey, LabelValue: labelValue}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[d.seriesKey()]; ok {
		return h
	}
	h := &Histogram{desc: d}
	r.histograms[d.seriesKey()] = h
	return h
}

// Snapshot captures every registered series at one instant. The result
// is deterministic (sorted by series key) and safe to merge with other
// snapshots.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Desc: c.desc, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Desc: g.desc, Value: g.Value()})
	}
	for _, h := range hists {
		hs := HistSnap{Desc: h.desc, Count: h.count.Load(), SumNS: h.sum.Load()}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		return s.Counters[i].Desc.seriesKey() < s.Counters[j].Desc.seriesKey()
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return s.Gauges[i].Desc.seriesKey() < s.Gauges[j].Desc.seriesKey()
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return s.Histograms[i].Desc.seriesKey() < s.Histograms[j].Desc.seriesKey()
	})
}
