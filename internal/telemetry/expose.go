package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Series sharing a family name emit one HELP/TYPE block;
// histogram buckets are cumulative with `le` bounds in seconds, ending
// at +Inf (= _count), per the format's contract.
func (s Snapshot) WritePrometheus(w io.Writer) {
	lastFamily := ""
	header := func(name, help, typ string) {
		if name == lastFamily {
			return
		}
		lastFamily = name
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	series := func(name string, d Desc, extraKey, extraVal string) string {
		labels := ""
		if d.LabelKey != "" {
			labels = d.LabelKey + `="` + d.LabelValue + `"`
		}
		if extraKey != "" {
			if labels != "" {
				labels += ","
			}
			labels += extraKey + `="` + extraVal + `"`
		}
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}

	for _, c := range s.Counters {
		header(c.Desc.Name, c.Desc.Help, "counter")
		fmt.Fprintf(w, "%s %d\n", series(c.Desc.Name, c.Desc, "", ""), c.Value)
	}
	lastFamily = ""
	for _, g := range s.Gauges {
		header(g.Desc.Name, g.Desc.Help, "gauge")
		fmt.Fprintf(w, "%s %d\n", series(g.Desc.Name, g.Desc, "", ""), g.Value)
	}
	lastFamily = ""
	for _, h := range s.Histograms {
		header(h.Desc.Name, h.Desc.Help, "histogram")
		var cum uint64
		for i := 0; i <= HistBuckets; i++ {
			cum += h.Buckets[i]
			var le string
			if i == HistBuckets {
				le = "+Inf"
			} else {
				le = strconv.FormatFloat(float64(BucketBound(i))/1e9, 'g', -1, 64)
			}
			fmt.Fprintf(w, "%s %d\n", series(h.Desc.Name+"_bucket", h.Desc, "le", le), cum)
		}
		fmt.Fprintf(w, "%s %s\n", series(h.Desc.Name+"_sum", h.Desc, "", ""),
			strconv.FormatFloat(float64(h.SumNS)/1e9, 'g', -1, 64))
		fmt.Fprintf(w, "%s %d\n", series(h.Desc.Name+"_count", h.Desc, "", ""), h.Count)
	}
}

// jsonHist is the JSON shape of one histogram series.
type jsonHist struct {
	Count    uint64   `json:"count"`
	SumNS    uint64   `json:"sum_ns"`
	MeanNS   int64    `json:"mean_ns"`
	P50NS    int64    `json:"p50_ns"`
	P90NS    int64    `json:"p90_ns"`
	P99NS    int64    `json:"p99_ns"`
	BoundsNS []uint64 `json:"bounds_ns"`
	Buckets  []uint64 `json:"buckets"`
}

// JSONValue returns the snapshot as a plain map — counter/gauge series
// keyed by their series key, histograms as objects with buckets and
// derived percentiles. This is the payload behind `wizgo -stats -json`,
// the expvar "wizgo" variable, and BENCH_*.json telemetry sections.
func (s Snapshot) JSONValue() map[string]any {
	counters := map[string]uint64{}
	for _, c := range s.Counters {
		counters[c.Desc.seriesKey()] = c.Value
	}
	gauges := map[string]int64{}
	for _, g := range s.Gauges {
		gauges[g.Desc.seriesKey()] = g.Value
	}
	hists := map[string]jsonHist{}
	for _, h := range s.Histograms {
		jh := jsonHist{
			Count:  h.Count,
			SumNS:  h.SumNS,
			MeanNS: int64(h.Mean()),
			P50NS:  int64(h.Quantile(0.50)),
			P90NS:  int64(h.Quantile(0.90)),
			P99NS:  int64(h.Quantile(0.99)),
		}
		for i := 0; i < HistBuckets; i++ {
			jh.BoundsNS = append(jh.BoundsNS, BucketBound(i))
		}
		jh.Buckets = append(jh.Buckets, h.Buckets[:]...)
		hists[h.Desc.seriesKey()] = jh
	}
	return map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.JSONValue())
}

// WriteText renders the snapshot as a human-readable stats report —
// the body of `wizgo -stats`. Counters and gauges print one per line;
// histograms print count, mean, and p50/p90/p99.
func (s Snapshot) WriteText(w io.Writer) {
	for _, c := range s.Counters {
		fmt.Fprintf(w, "%-44s %d\n", c.Desc.seriesKey(), c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "%-44s %d\n", g.Desc.seriesKey(), g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "%-44s count=%d mean=%v p50=%v p90=%v p99=%v\n",
			h.Desc.seriesKey(), h.Count,
			round(h.Mean()), round(h.Quantile(0.50)),
			round(h.Quantile(0.90)), round(h.Quantile(0.99)))
	}
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(10 * time.Nanosecond)
	}
}

// Handler serves the registry in Prometheus text format — mount it at
// /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
}

// PublishExpvar publishes the registry as the expvar variable "wizgo",
// so the standard /debug/vars endpoint carries the full snapshot
// alongside Go's memstats. Safe to call once per process; a duplicate
// publish panics in expvar, so the caller gates it.
func PublishExpvar(r *Registry) {
	expvar.Publish("wizgo", expvar.Func(func() any {
		return r.Snapshot().JSONValue()
	}))
}
