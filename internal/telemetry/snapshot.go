package telemetry

import "time"

// CounterSnap is one counter series at one instant.
type CounterSnap struct {
	Desc  Desc
	Value uint64
}

// GaugeSnap is one gauge series at one instant.
type GaugeSnap struct {
	Desc  Desc
	Value int64
}

// HistSnap is one histogram series at one instant. Buckets are
// non-cumulative; index HistBuckets is the overflow bucket.
type HistSnap struct {
	Desc    Desc
	Count   uint64
	SumNS   uint64
	Buckets [HistBuckets + 1]uint64
}

// Mean returns the mean observation, or 0 with no observations.
func (h HistSnap) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNS / h.Count)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by
// linear interpolation within the containing bucket. Observations in
// the overflow bucket report the largest bounded bound.
func (h HistSnap) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next || i == HistBuckets {
			if i == HistBuckets {
				return time.Duration(BucketBound(HistBuckets - 1))
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(BucketBound(i - 1))
			}
			hi := float64(BucketBound(i))
			frac := (rank - cum) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum = next
	}
	return time.Duration(BucketBound(HistBuckets - 1))
}

// Snapshot is every registered series at one instant, sorted by series
// key. Snapshots merge associatively: counters add, gauges add (they
// are sized in deltas), histogram buckets/count/sum add.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistSnap
}

// Merge returns a new snapshot combining s and o. Series present in
// only one side pass through unchanged; series present in both sum.
// Help text is taken from whichever side defines it first.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	var out Snapshot

	cs := map[string]int{}
	for _, c := range s.Counters {
		cs[c.Desc.seriesKey()] = len(out.Counters)
		out.Counters = append(out.Counters, c)
	}
	for _, c := range o.Counters {
		if i, ok := cs[c.Desc.seriesKey()]; ok {
			out.Counters[i].Value += c.Value
		} else {
			out.Counters = append(out.Counters, c)
		}
	}

	gs := map[string]int{}
	for _, g := range s.Gauges {
		gs[g.Desc.seriesKey()] = len(out.Gauges)
		out.Gauges = append(out.Gauges, g)
	}
	for _, g := range o.Gauges {
		if i, ok := gs[g.Desc.seriesKey()]; ok {
			out.Gauges[i].Value += g.Value
		} else {
			out.Gauges = append(out.Gauges, g)
		}
	}

	hs := map[string]int{}
	for _, h := range s.Histograms {
		hs[h.Desc.seriesKey()] = len(out.Histograms)
		out.Histograms = append(out.Histograms, h)
	}
	for _, h := range o.Histograms {
		if i, ok := hs[h.Desc.seriesKey()]; ok {
			out.Histograms[i].Count += h.Count
			out.Histograms[i].SumNS += h.SumNS
			for b := range h.Buckets {
				out.Histograms[i].Buckets[b] += h.Buckets[b]
			}
		} else {
			out.Histograms = append(out.Histograms, h)
		}
	}

	out.sort()
	return out
}
