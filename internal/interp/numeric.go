package interp

import (
	"math"
	"math/bits"

	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// numeric executes the pure numeric instruction set shared by all tiers.
// It returns the new stack top and a trap kind (TrapNone on success).
// Tag writes are unconditional-when-enabled, matching the interpreter's
// eager tagging discipline.
func numeric(op wasm.Opcode, slots []uint64, tags []wasm.Tag, sp int) (int, rt.TrapKind) {
	setTag := func(i int, t wasm.Tag) {
		if tags != nil {
			tags[i] = t
		}
	}

	switch op {
	// ---- i32 comparisons ----
	case wasm.OpI32Eqz:
		slots[sp-1] = b2u(uint32(slots[sp-1]) == 0)
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI32LtS, wasm.OpI32LtU, wasm.OpI32GtS,
		wasm.OpI32GtU, wasm.OpI32LeS, wasm.OpI32LeU, wasm.OpI32GeS, wasm.OpI32GeU:
		sp--
		a, b := uint32(slots[sp-1]), uint32(slots[sp])
		var r bool
		switch op {
		case wasm.OpI32Eq:
			r = a == b
		case wasm.OpI32Ne:
			r = a != b
		case wasm.OpI32LtS:
			r = int32(a) < int32(b)
		case wasm.OpI32LtU:
			r = a < b
		case wasm.OpI32GtS:
			r = int32(a) > int32(b)
		case wasm.OpI32GtU:
			r = a > b
		case wasm.OpI32LeS:
			r = int32(a) <= int32(b)
		case wasm.OpI32LeU:
			r = a <= b
		case wasm.OpI32GeS:
			r = int32(a) >= int32(b)
		case wasm.OpI32GeU:
			r = a >= b
		}
		slots[sp-1] = b2u(r)
		setTag(sp-1, wasm.TagI32)

	// ---- i64 comparisons ----
	case wasm.OpI64Eqz:
		slots[sp-1] = b2u(slots[sp-1] == 0)
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI64Eq, wasm.OpI64Ne, wasm.OpI64LtS, wasm.OpI64LtU, wasm.OpI64GtS,
		wasm.OpI64GtU, wasm.OpI64LeS, wasm.OpI64LeU, wasm.OpI64GeS, wasm.OpI64GeU:
		sp--
		a, b := slots[sp-1], slots[sp]
		var r bool
		switch op {
		case wasm.OpI64Eq:
			r = a == b
		case wasm.OpI64Ne:
			r = a != b
		case wasm.OpI64LtS:
			r = int64(a) < int64(b)
		case wasm.OpI64LtU:
			r = a < b
		case wasm.OpI64GtS:
			r = int64(a) > int64(b)
		case wasm.OpI64GtU:
			r = a > b
		case wasm.OpI64LeS:
			r = int64(a) <= int64(b)
		case wasm.OpI64LeU:
			r = a <= b
		case wasm.OpI64GeS:
			r = int64(a) >= int64(b)
		case wasm.OpI64GeU:
			r = a >= b
		}
		slots[sp-1] = b2u(r)
		setTag(sp-1, wasm.TagI32)

	// ---- f32 comparisons ----
	case wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt, wasm.OpF32Le, wasm.OpF32Ge:
		sp--
		a := math.Float32frombits(uint32(slots[sp-1]))
		b := math.Float32frombits(uint32(slots[sp]))
		var r bool
		switch op {
		case wasm.OpF32Eq:
			r = a == b
		case wasm.OpF32Ne:
			r = a != b
		case wasm.OpF32Lt:
			r = a < b
		case wasm.OpF32Gt:
			r = a > b
		case wasm.OpF32Le:
			r = a <= b
		case wasm.OpF32Ge:
			r = a >= b
		}
		slots[sp-1] = b2u(r)
		setTag(sp-1, wasm.TagI32)

	// ---- f64 comparisons ----
	case wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge:
		sp--
		a := math.Float64frombits(slots[sp-1])
		b := math.Float64frombits(slots[sp])
		var r bool
		switch op {
		case wasm.OpF64Eq:
			r = a == b
		case wasm.OpF64Ne:
			r = a != b
		case wasm.OpF64Lt:
			r = a < b
		case wasm.OpF64Gt:
			r = a > b
		case wasm.OpF64Le:
			r = a <= b
		case wasm.OpF64Ge:
			r = a >= b
		}
		slots[sp-1] = b2u(r)
		setTag(sp-1, wasm.TagI32)

	// ---- i32 arithmetic ----
	case wasm.OpI32Clz:
		slots[sp-1] = uint64(uint32(bits.LeadingZeros32(uint32(slots[sp-1]))))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Ctz:
		slots[sp-1] = uint64(uint32(bits.TrailingZeros32(uint32(slots[sp-1]))))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Popcnt:
		slots[sp-1] = uint64(uint32(bits.OnesCount32(uint32(slots[sp-1]))))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Add:
		sp--
		slots[sp-1] = uint64(uint32(slots[sp-1]) + uint32(slots[sp]))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Sub:
		sp--
		slots[sp-1] = uint64(uint32(slots[sp-1]) - uint32(slots[sp]))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Mul:
		sp--
		slots[sp-1] = uint64(uint32(slots[sp-1]) * uint32(slots[sp]))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32DivS:
		sp--
		a, b := int32(slots[sp-1]), int32(slots[sp])
		if b == 0 {
			return sp, rt.TrapDivByZero
		}
		if a == math.MinInt32 && b == -1 {
			return sp, rt.TrapIntOverflow
		}
		slots[sp-1] = uint64(uint32(a / b))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32DivU:
		sp--
		a, b := uint32(slots[sp-1]), uint32(slots[sp])
		if b == 0 {
			return sp, rt.TrapDivByZero
		}
		slots[sp-1] = uint64(a / b)
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32RemS:
		sp--
		a, b := int32(slots[sp-1]), int32(slots[sp])
		if b == 0 {
			return sp, rt.TrapDivByZero
		}
		if a == math.MinInt32 && b == -1 {
			slots[sp-1] = 0
		} else {
			slots[sp-1] = uint64(uint32(a % b))
		}
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32RemU:
		sp--
		a, b := uint32(slots[sp-1]), uint32(slots[sp])
		if b == 0 {
			return sp, rt.TrapDivByZero
		}
		slots[sp-1] = uint64(a % b)
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32And:
		sp--
		slots[sp-1] = uint64(uint32(slots[sp-1]) & uint32(slots[sp]))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Or:
		sp--
		slots[sp-1] = uint64(uint32(slots[sp-1]) | uint32(slots[sp]))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Xor:
		sp--
		slots[sp-1] = uint64(uint32(slots[sp-1]) ^ uint32(slots[sp]))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Shl:
		sp--
		slots[sp-1] = uint64(uint32(slots[sp-1]) << (uint32(slots[sp]) & 31))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32ShrS:
		sp--
		slots[sp-1] = uint64(uint32(int32(slots[sp-1]) >> (uint32(slots[sp]) & 31)))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32ShrU:
		sp--
		slots[sp-1] = uint64(uint32(slots[sp-1]) >> (uint32(slots[sp]) & 31))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Rotl:
		sp--
		slots[sp-1] = uint64(bits.RotateLeft32(uint32(slots[sp-1]), int(uint32(slots[sp])&31)))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Rotr:
		sp--
		slots[sp-1] = uint64(bits.RotateLeft32(uint32(slots[sp-1]), -int(uint32(slots[sp])&31)))
		setTag(sp-1, wasm.TagI32)

	// ---- i64 arithmetic ----
	case wasm.OpI64Clz:
		slots[sp-1] = uint64(bits.LeadingZeros64(slots[sp-1]))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Ctz:
		slots[sp-1] = uint64(bits.TrailingZeros64(slots[sp-1]))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Popcnt:
		slots[sp-1] = uint64(bits.OnesCount64(slots[sp-1]))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Add:
		sp--
		slots[sp-1] += slots[sp]
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Sub:
		sp--
		slots[sp-1] -= slots[sp]
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Mul:
		sp--
		slots[sp-1] *= slots[sp]
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64DivS:
		sp--
		a, b := int64(slots[sp-1]), int64(slots[sp])
		if b == 0 {
			return sp, rt.TrapDivByZero
		}
		if a == math.MinInt64 && b == -1 {
			return sp, rt.TrapIntOverflow
		}
		slots[sp-1] = uint64(a / b)
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64DivU:
		sp--
		if slots[sp] == 0 {
			return sp, rt.TrapDivByZero
		}
		slots[sp-1] /= slots[sp]
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64RemS:
		sp--
		a, b := int64(slots[sp-1]), int64(slots[sp])
		if b == 0 {
			return sp, rt.TrapDivByZero
		}
		if a == math.MinInt64 && b == -1 {
			slots[sp-1] = 0
		} else {
			slots[sp-1] = uint64(a % b)
		}
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64RemU:
		sp--
		if slots[sp] == 0 {
			return sp, rt.TrapDivByZero
		}
		slots[sp-1] %= slots[sp]
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64And:
		sp--
		slots[sp-1] &= slots[sp]
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Or:
		sp--
		slots[sp-1] |= slots[sp]
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Xor:
		sp--
		slots[sp-1] ^= slots[sp]
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Shl:
		sp--
		slots[sp-1] <<= slots[sp] & 63
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64ShrS:
		sp--
		slots[sp-1] = uint64(int64(slots[sp-1]) >> (slots[sp] & 63))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64ShrU:
		sp--
		slots[sp-1] >>= slots[sp] & 63
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Rotl:
		sp--
		slots[sp-1] = bits.RotateLeft64(slots[sp-1], int(slots[sp]&63))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Rotr:
		sp--
		slots[sp-1] = bits.RotateLeft64(slots[sp-1], -int(slots[sp]&63))
		setTag(sp-1, wasm.TagI64)

	// ---- f32 arithmetic ----
	case wasm.OpF32Abs, wasm.OpF32Neg, wasm.OpF32Ceil, wasm.OpF32Floor,
		wasm.OpF32Trunc, wasm.OpF32Nearest, wasm.OpF32Sqrt:
		a := math.Float32frombits(uint32(slots[sp-1]))
		var r float32
		switch op {
		case wasm.OpF32Abs:
			r = math.Float32frombits(uint32(slots[sp-1]) &^ (1 << 31))
		case wasm.OpF32Neg:
			r = math.Float32frombits(uint32(slots[sp-1]) ^ (1 << 31))
		case wasm.OpF32Ceil:
			r = float32(math.Ceil(float64(a)))
		case wasm.OpF32Floor:
			r = float32(math.Floor(float64(a)))
		case wasm.OpF32Trunc:
			r = float32(math.Trunc(float64(a)))
		case wasm.OpF32Nearest:
			r = float32(math.RoundToEven(float64(a)))
		case wasm.OpF32Sqrt:
			r = float32(math.Sqrt(float64(a)))
		}
		slots[sp-1] = uint64(math.Float32bits(r))
		setTag(sp-1, wasm.TagF32)
	case wasm.OpF32Add, wasm.OpF32Sub, wasm.OpF32Mul, wasm.OpF32Div,
		wasm.OpF32Min, wasm.OpF32Max, wasm.OpF32Copysign:
		sp--
		a := math.Float32frombits(uint32(slots[sp-1]))
		b := math.Float32frombits(uint32(slots[sp]))
		var r float32
		switch op {
		case wasm.OpF32Add:
			r = a + b
		case wasm.OpF32Sub:
			r = a - b
		case wasm.OpF32Mul:
			r = a * b
		case wasm.OpF32Div:
			r = a / b
		case wasm.OpF32Min:
			r = fmin32(a, b)
		case wasm.OpF32Max:
			r = fmax32(a, b)
		case wasm.OpF32Copysign:
			r = float32(math.Copysign(float64(a), float64(b)))
		}
		slots[sp-1] = uint64(math.Float32bits(r))
		setTag(sp-1, wasm.TagF32)

	// ---- f64 arithmetic ----
	case wasm.OpF64Abs:
		slots[sp-1] &^= 1 << 63
		setTag(sp-1, wasm.TagF64)
	case wasm.OpF64Neg:
		slots[sp-1] ^= 1 << 63
		setTag(sp-1, wasm.TagF64)
	case wasm.OpF64Ceil, wasm.OpF64Floor, wasm.OpF64Trunc, wasm.OpF64Nearest, wasm.OpF64Sqrt:
		a := math.Float64frombits(slots[sp-1])
		var r float64
		switch op {
		case wasm.OpF64Ceil:
			r = math.Ceil(a)
		case wasm.OpF64Floor:
			r = math.Floor(a)
		case wasm.OpF64Trunc:
			r = math.Trunc(a)
		case wasm.OpF64Nearest:
			r = math.RoundToEven(a)
		case wasm.OpF64Sqrt:
			r = math.Sqrt(a)
		}
		slots[sp-1] = math.Float64bits(r)
		setTag(sp-1, wasm.TagF64)
	case wasm.OpF64Add, wasm.OpF64Sub, wasm.OpF64Mul, wasm.OpF64Div,
		wasm.OpF64Min, wasm.OpF64Max, wasm.OpF64Copysign:
		sp--
		a := math.Float64frombits(slots[sp-1])
		b := math.Float64frombits(slots[sp])
		var r float64
		switch op {
		case wasm.OpF64Add:
			r = a + b
		case wasm.OpF64Sub:
			r = a - b
		case wasm.OpF64Mul:
			r = a * b
		case wasm.OpF64Div:
			r = a / b
		case wasm.OpF64Min:
			r = fmin64(a, b)
		case wasm.OpF64Max:
			r = fmax64(a, b)
		case wasm.OpF64Copysign:
			r = math.Copysign(a, b)
		}
		slots[sp-1] = math.Float64bits(r)
		setTag(sp-1, wasm.TagF64)

	// ---- conversions ----
	case wasm.OpI32WrapI64:
		slots[sp-1] = uint64(uint32(slots[sp-1]))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32TruncF32S:
		v, kind := truncToI32S(float64(math.Float32frombits(uint32(slots[sp-1]))))
		if kind != rt.TrapNone {
			return sp, kind
		}
		slots[sp-1] = uint64(uint32(v))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32TruncF32U:
		v, kind := truncToI32U(float64(math.Float32frombits(uint32(slots[sp-1]))))
		if kind != rt.TrapNone {
			return sp, kind
		}
		slots[sp-1] = uint64(v)
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32TruncF64S:
		v, kind := truncToI32S(math.Float64frombits(slots[sp-1]))
		if kind != rt.TrapNone {
			return sp, kind
		}
		slots[sp-1] = uint64(uint32(v))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32TruncF64U:
		v, kind := truncToI32U(math.Float64frombits(slots[sp-1]))
		if kind != rt.TrapNone {
			return sp, kind
		}
		slots[sp-1] = uint64(v)
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI64ExtendI32S:
		slots[sp-1] = uint64(int64(int32(slots[sp-1])))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64ExtendI32U:
		slots[sp-1] = uint64(uint32(slots[sp-1]))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64TruncF32S:
		v, kind := truncToI64S(float64(math.Float32frombits(uint32(slots[sp-1]))))
		if kind != rt.TrapNone {
			return sp, kind
		}
		slots[sp-1] = uint64(v)
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64TruncF32U:
		v, kind := truncToI64U(float64(math.Float32frombits(uint32(slots[sp-1]))))
		if kind != rt.TrapNone {
			return sp, kind
		}
		slots[sp-1] = v
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64TruncF64S:
		v, kind := truncToI64S(math.Float64frombits(slots[sp-1]))
		if kind != rt.TrapNone {
			return sp, kind
		}
		slots[sp-1] = uint64(v)
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64TruncF64U:
		v, kind := truncToI64U(math.Float64frombits(slots[sp-1]))
		if kind != rt.TrapNone {
			return sp, kind
		}
		slots[sp-1] = v
		setTag(sp-1, wasm.TagI64)
	case wasm.OpF32ConvertI32S:
		slots[sp-1] = uint64(math.Float32bits(float32(int32(slots[sp-1]))))
		setTag(sp-1, wasm.TagF32)
	case wasm.OpF32ConvertI32U:
		slots[sp-1] = uint64(math.Float32bits(float32(uint32(slots[sp-1]))))
		setTag(sp-1, wasm.TagF32)
	case wasm.OpF32ConvertI64S:
		slots[sp-1] = uint64(math.Float32bits(float32(int64(slots[sp-1]))))
		setTag(sp-1, wasm.TagF32)
	case wasm.OpF32ConvertI64U:
		slots[sp-1] = uint64(math.Float32bits(float32(slots[sp-1])))
		setTag(sp-1, wasm.TagF32)
	case wasm.OpF32DemoteF64:
		slots[sp-1] = uint64(math.Float32bits(float32(math.Float64frombits(slots[sp-1]))))
		setTag(sp-1, wasm.TagF32)
	case wasm.OpF64ConvertI32S:
		slots[sp-1] = math.Float64bits(float64(int32(slots[sp-1])))
		setTag(sp-1, wasm.TagF64)
	case wasm.OpF64ConvertI32U:
		slots[sp-1] = math.Float64bits(float64(uint32(slots[sp-1])))
		setTag(sp-1, wasm.TagF64)
	case wasm.OpF64ConvertI64S:
		slots[sp-1] = math.Float64bits(float64(int64(slots[sp-1])))
		setTag(sp-1, wasm.TagF64)
	case wasm.OpF64ConvertI64U:
		slots[sp-1] = math.Float64bits(float64(slots[sp-1]))
		setTag(sp-1, wasm.TagF64)
	case wasm.OpF64PromoteF32:
		slots[sp-1] = math.Float64bits(float64(math.Float32frombits(uint32(slots[sp-1]))))
		setTag(sp-1, wasm.TagF64)
	case wasm.OpI32ReinterpretF32:
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI64ReinterpretF64:
		setTag(sp-1, wasm.TagI64)
	case wasm.OpF32ReinterpretI32:
		setTag(sp-1, wasm.TagF32)
	case wasm.OpF64ReinterpretI64:
		setTag(sp-1, wasm.TagF64)

	// ---- sign extensions ----
	case wasm.OpI32Extend8S:
		slots[sp-1] = uint64(uint32(int32(int8(slots[sp-1]))))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI32Extend16S:
		slots[sp-1] = uint64(uint32(int32(int16(slots[sp-1]))))
		setTag(sp-1, wasm.TagI32)
	case wasm.OpI64Extend8S:
		slots[sp-1] = uint64(int64(int8(slots[sp-1])))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Extend16S:
		slots[sp-1] = uint64(int64(int16(slots[sp-1])))
		setTag(sp-1, wasm.TagI64)
	case wasm.OpI64Extend32S:
		slots[sp-1] = uint64(int64(int32(slots[sp-1])))
		setTag(sp-1, wasm.TagI64)

	default:
		return sp, rt.TrapUnreachable
	}
	return sp, rt.TrapNone
}

// fcOp executes a 0xFC-prefixed instruction.
func fcOp(sub uint32, body []byte, ip int, slots []uint64, tags []wasm.Tag, sp int, mem *rt.Memory) (int, int, rt.TrapKind) {
	op := wasm.Opcode(0x100 + sub)
	switch op {
	case wasm.OpI32TruncSatF32S:
		slots[sp-1] = uint64(uint32(satToI32S(float64(math.Float32frombits(uint32(slots[sp-1]))))))
	case wasm.OpI32TruncSatF32U:
		slots[sp-1] = uint64(satToI32U(float64(math.Float32frombits(uint32(slots[sp-1])))))
	case wasm.OpI32TruncSatF64S:
		slots[sp-1] = uint64(uint32(satToI32S(math.Float64frombits(slots[sp-1]))))
	case wasm.OpI32TruncSatF64U:
		slots[sp-1] = uint64(satToI32U(math.Float64frombits(slots[sp-1])))
	case wasm.OpI64TruncSatF32S:
		slots[sp-1] = uint64(satToI64S(float64(math.Float32frombits(uint32(slots[sp-1])))))
	case wasm.OpI64TruncSatF32U:
		slots[sp-1] = satToI64U(float64(math.Float32frombits(uint32(slots[sp-1]))))
	case wasm.OpI64TruncSatF64S:
		slots[sp-1] = uint64(satToI64S(math.Float64frombits(slots[sp-1])))
	case wasm.OpI64TruncSatF64U:
		slots[sp-1] = satToI64U(math.Float64frombits(slots[sp-1]))
	case wasm.OpMemoryCopy:
		ip += 2 // two reserved memory index bytes
		sp -= 3
		dst, src, n := uint32(slots[sp]), uint32(slots[sp+1]), uint32(slots[sp+2])
		if !mem.InBounds(dst, 0, int(n)) || !mem.InBounds(src, 0, int(n)) {
			return sp, ip, rt.TrapOOBMemory
		}
		mem.Mark(dst, 0, int(n))
		copy(mem.Data[dst:dst+n], mem.Data[src:src+n])
		return sp, ip, rt.TrapNone
	case wasm.OpMemoryFill:
		ip++ // reserved memory index byte
		sp -= 3
		dst, val, n := uint32(slots[sp]), byte(slots[sp+1]), uint32(slots[sp+2])
		if !mem.InBounds(dst, 0, int(n)) {
			return sp, ip, rt.TrapOOBMemory
		}
		mem.Mark(dst, 0, int(n))
		for i := uint32(0); i < n; i++ {
			mem.Data[dst+i] = val
		}
		return sp, ip, rt.TrapNone
	default:
		return sp, ip, rt.TrapUnreachable
	}
	if tags != nil {
		switch op {
		case wasm.OpI32TruncSatF32S, wasm.OpI32TruncSatF32U,
			wasm.OpI32TruncSatF64S, wasm.OpI32TruncSatF64U:
			tags[sp-1] = wasm.TagI32
		default:
			tags[sp-1] = wasm.TagI64
		}
	}
	return sp, ip, rt.TrapNone
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Float min/max with Wasm NaN and signed-zero semantics.

func fmin32(a, b float32) float32 {
	if a != a || b != b {
		return float32(math.NaN())
	}
	if a == b { // pick -0 over +0
		return float32(math.Min(float64(a), float64(b)))
	}
	if a < b {
		return a
	}
	return b
}

func fmax32(a, b float32) float32 {
	if a != a || b != b {
		return float32(math.NaN())
	}
	if a == b {
		return float32(math.Max(float64(a), float64(b)))
	}
	if a > b {
		return a
	}
	return b
}

func fmin64(a, b float64) float64 {
	if a != a || b != b {
		return math.NaN()
	}
	return math.Min(a, b)
}

func fmax64(a, b float64) float64 {
	if a != a || b != b {
		return math.NaN()
	}
	return math.Max(a, b)
}

// Trapping float→int truncations.

func truncToI32S(x float64) (int32, rt.TrapKind) {
	if x != x {
		return 0, rt.TrapInvalidConversion
	}
	x = math.Trunc(x)
	if x < -2147483648 || x > 2147483647 {
		return 0, rt.TrapIntOverflow
	}
	return int32(x), rt.TrapNone
}

func truncToI32U(x float64) (uint32, rt.TrapKind) {
	if x != x {
		return 0, rt.TrapInvalidConversion
	}
	x = math.Trunc(x)
	if x < 0 || x > 4294967295 {
		return 0, rt.TrapIntOverflow
	}
	return uint32(x), rt.TrapNone
}

func truncToI64S(x float64) (int64, rt.TrapKind) {
	if x != x {
		return 0, rt.TrapInvalidConversion
	}
	x = math.Trunc(x)
	if x < -9223372036854775808 || x >= 9223372036854775808 {
		return 0, rt.TrapIntOverflow
	}
	return int64(x), rt.TrapNone
}

func truncToI64U(x float64) (uint64, rt.TrapKind) {
	if x != x {
		return 0, rt.TrapInvalidConversion
	}
	x = math.Trunc(x)
	if x < 0 || x >= 18446744073709551616 {
		return 0, rt.TrapIntOverflow
	}
	return uint64(x), rt.TrapNone
}

// Saturating float→int truncations.

func satToI32S(x float64) int32 {
	if x != x {
		return 0
	}
	x = math.Trunc(x)
	if x < -2147483648 {
		return math.MinInt32
	}
	if x > 2147483647 {
		return math.MaxInt32
	}
	return int32(x)
}

func satToI32U(x float64) uint32 {
	if x != x || x < 0 {
		return 0
	}
	x = math.Trunc(x)
	if x > 4294967295 {
		return math.MaxUint32
	}
	return uint32(x)
}

func satToI64S(x float64) int64 {
	if x != x {
		return 0
	}
	x = math.Trunc(x)
	if x < -9223372036854775808 {
		return math.MinInt64
	}
	if x >= 9223372036854775808 {
		return math.MaxInt64
	}
	return int64(x)
}

func satToI64U(x float64) uint64 {
	if x != x || x < 0 {
		return 0
	}
	x = math.Trunc(x)
	if x >= 18446744073709551616 {
		return math.MaxUint64
	}
	return uint64(x)
}
