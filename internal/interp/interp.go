// Package interp implements the in-place interpreter (the analog of
// Wizard-INT, Titzer OOPSLA 2022). It executes Wasm bytecode directly —
// no rewriting, no translation — decoding immediates from the original
// bytes, resolving control flow through the validator-built sidetable,
// and emulating the value stack explicitly in memory, writing a value
// tag for every slot it pushes. Those properties are what make it the
// debugging/instrumentation tier: any probe can inspect any frame at any
// bytecode boundary, and the GC can scan its frames with no metadata.
//
// They are also what make it slow relative to compiled code: one
// dispatch, several memory operations and a tag store per Wasm
// instruction — the gap Figures 4 and 10 of the paper quantify.
package interp

import (
	"fmt"

	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// assertInBounds re-checks an access the static analysis proved in
// bounds. Only reachable under the `checked` build tag; a failure is an
// analysis soundness bug, not a guest trap, so it panics.
func assertInBounds(mem *rt.Memory, addr, off uint32, size int, f *rt.FuncInst, pc int) {
	if !mem.InBounds(addr, off, size) {
		panic(fmt.Sprintf("interp: checked build: analysis-elided bounds check failed: func %d pc %d addr %d+%d size %d",
			f.Idx, pc, addr, off, size))
	}
}

// TestHookOOBReadsZero, when true, makes an out-of-bounds i32.load
// return 0 instead of trapping — a deliberately planted soundness bug.
// The differential-testing suite (internal/difftest) sets it to prove
// the cross-tier oracle detects a single skipped bounds check and that
// the minimizer shrinks the diverging module to a handful of
// instructions. Never set outside tests; reads cost nothing on the
// trap path (the hook is only consulted after a bounds check failed).
var TestHookOOBReadsZero bool

// Entry describes where to (re-)enter a function: a fresh call starts at
// pc 0 with an empty operand stack; a tier-down (deopt) from compiled
// code resumes at an arbitrary bytecode boundary with the frame already
// canonical in the value stack.
type Entry struct {
	PC  int
	STP int
	SP  int // absolute operand stack top
}

// Call runs function f with arguments already placed at
// stack[argBase : argBase+nparams]. On success the results occupy
// stack[argBase : argBase+nresults]. Declared locals are zero-initialized
// and tagged. Mirrors the calling convention shared with compiled code.
func Call(ctx *rt.Context, f *rt.FuncInst, argBase int) (rt.Status, error) {
	info := f.Info
	if err := ctx.CheckStack(argBase, info.NumSlots(), f.Idx); err != nil {
		return rt.Done, err
	}
	slots := ctx.Stack.Slots
	tags := ctx.Stack.Tags
	// Zero and tag declared locals; parameter tags were stored by the
	// caller (the convention the paper notes for on-demand tagging).
	for i := info.NumParams; i < len(info.LocalTypes); i++ {
		slots[argBase+i] = 0
	}
	if tags != nil {
		for i, t := range info.LocalTypes {
			tags[argBase+i] = wasm.TagOf(t)
		}
	}
	return Run(ctx, f, argBase, Entry{SP: argBase + len(info.LocalTypes)})
}

// Run executes f's body from the given entry state with frame base vfp.
// It returns Done when the function returns (results copied down to
// vfp), or OSRUp when a hot loop back-edge requests tier-up (the frame
// is canonical; FrameInfo on ctx.Frames carries the resume pc).
func Run(ctx *rt.Context, f *rt.FuncInst, vfp int, entry Entry) (rt.Status, error) {
	body := f.Decl.Body
	info := f.Info
	st := info.Sidetable
	slots := ctx.Stack.Slots
	tags := ctx.Stack.Tags
	inst := ctx.Inst
	mem := inst.Memory

	ip := entry.PC
	stp := entry.STP
	sp := entry.SP
	nres := len(info.Results)

	frameIdx := ctx.PushFrame(rt.FrameInfo{
		Kind: rt.FrameInterp, Func: f, VFP: vfp, SP: sp, PC: ip,
	})
	ctx.Depth++
	defer func() {
		ctx.Depth--
		ctx.PopFrame()
	}()

	probes := f.Probes
	counting := ctx.CountStats
	// Hoisted so the back-edge poll is a register test + one atomic
	// load, not a ctx field reload.
	interrupt := ctx.Interrupt
	// Static-analysis facts (nil-safe accessors): proven in-bounds
	// accesses skip the bounds check, proven-terminating counted loops
	// skip the back-edge interrupt poll.
	facts := info.Facts

	trap := func(kind rt.TrapKind) error {
		return rt.NewTrap(kind, f.Idx, ip)
	}

	// syncFrame publishes ip/sp for stack walkers before observation
	// points (calls, probes, traps leave via trap()).
	syncFrame := func() {
		fr := &ctx.Frames[frameIdx]
		fr.SP = sp
		fr.PC = ip
	}

	for {
		opPC := ip
		op := body[ip]
		ip++

		if probes != nil && probes.HasAt(opPC) {
			syncFrame()
			ctx.Frames[frameIdx].PC = opPC
			probes.FireAll(ctx, ctx.Frames[frameIdx], opPC)
		}
		if counting {
			ctx.Stats.InterpOps++
		}

		switch wasm.Opcode(op) {
		case wasm.OpUnreachable:
			return rt.Done, trap(rt.TrapUnreachable)
		case wasm.OpNop:
		case wasm.OpBlock:
			_, ip = readBlockType(body, ip)
		case wasm.OpLoop:
			_, ip = readBlockType(body, ip)
			// Loop entry is a fuel checkpoint (ip is now the first body
			// pc — the same pc compiled tiers stamp on their header
			// checkpoint). Proven-exact-trip loops prepay their whole
			// charge; everything is behind the Fuel > 0 branch so
			// metering off costs one predictable test.
			if ctx.Fuel > 0 {
				if trips := facts.TripsAt(ip); trips > 0 {
					ctx.FuelPrepay(trips)
					if !ctx.FuelIter() {
						return rt.Done, trap(rt.TrapFuelExhausted)
					}
				} else if !ctx.FuelCheckpoint() {
					return rt.Done, trap(rt.TrapFuelExhausted)
				}
			}
		case wasm.OpIf:
			_, ip = readBlockType(body, ip)
			sp--
			if uint32(slots[sp]) != 0 {
				stp++ // fall into then-branch, skip the false edge entry
			} else {
				e := st[stp]
				ip, stp, sp = applyBranch(slots, tags, e, sp)
			}
		case wasm.OpElse:
			// Reached by falling out of the then-branch: jump past end.
			e := st[stp]
			ip, stp, sp = applyBranch(slots, tags, e, sp)
		case wasm.OpEnd:
			if ip == len(body) {
				// Function-level end: move results down to the frame base.
				copy(slots[vfp:vfp+nres], slots[sp-nres:sp])
				if tags != nil {
					copy(tags[vfp:vfp+nres], tags[sp-nres:sp])
				}
				return rt.Done, nil
			}
		case wasm.OpBr:
			_, ip = readU32(body, ip)
			e := st[stp]
			if int(e.TargetIP) <= opPC {
				// Backward branch: loop back-edge — a fuel checkpoint,
				// the tier-up point and the interruption point (extra
				// predictable branches on the path that already tests
				// for OSR). Fuel is charged first: a back-edge that
				// deopts or interrupts must still account its header
				// arrival. An unconditional br is never the recognized
				// counted back-edge, so no prepaid variant here.
				if ctx.Fuel > 0 && !ctx.FuelCheckpoint() {
					return rt.Done, trap(rt.TrapFuelExhausted)
				}
				if interrupt != nil && interrupt.Get() {
					return rt.Done, trap(rt.TrapInterrupted)
				}
				if ctx.Invoke != nil && shouldOSR(ctx, f) {
					ip, stp, sp = applyBranch(slots, tags, e, sp)
					syncFrame()
					ctx.Frames[frameIdx].PC = ip
					ctx.Resume = ctx.Frames[frameIdx]
					return rt.OSRUp, nil
				}
			}
			ip, stp, sp = applyBranch(slots, tags, e, sp)
		case wasm.OpBrIf:
			_, ip = readU32(body, ip)
			sp--
			if uint32(slots[sp]) != 0 {
				e := st[stp]
				if int(e.TargetIP) <= opPC && ctx.Fuel > 0 {
					// Taken back-edge: charge the header arrival, FuelIter
					// when the loop's charge was prepaid at entry.
					if facts.PrepaidAt(opPC) {
						if !ctx.FuelIter() {
							return rt.Done, trap(rt.TrapFuelExhausted)
						}
					} else if !ctx.FuelCheckpoint() {
						return rt.Done, trap(rt.TrapFuelExhausted)
					}
				}
				if int(e.TargetIP) <= opPC && interrupt != nil && !facts.NoPollAt(opPC) && interrupt.Get() {
					return rt.Done, trap(rt.TrapInterrupted)
				}
				if int(e.TargetIP) <= opPC && ctx.Invoke != nil && shouldOSR(ctx, f) {
					ip, stp, sp = applyBranch(slots, tags, e, sp)
					syncFrame()
					ctx.Frames[frameIdx].PC = ip
					ctx.Resume = ctx.Frames[frameIdx]
					return rt.OSRUp, nil
				}
				ip, stp, sp = applyBranch(slots, tags, e, sp)
			} else {
				stp++
			}
		case wasm.OpBrTable:
			var n uint32
			n, ip = readU32(body, ip)
			sp--
			idx := uint32(slots[sp])
			if idx > n {
				idx = n
			}
			e := st[stp+int(idx)]
			// A br_table arm can be a loop back-edge too: charge fuel
			// and poll the interrupt so cancellation cannot hang a
			// br_table-only loop. A br_table arm is never the counted
			// back-edge, so no prepaid variant.
			if int(e.TargetIP) <= opPC && ctx.Fuel > 0 && !ctx.FuelCheckpoint() {
				return rt.Done, trap(rt.TrapFuelExhausted)
			}
			if int(e.TargetIP) <= opPC && interrupt != nil && interrupt.Get() {
				return rt.Done, trap(rt.TrapInterrupted)
			}
			ip, stp, sp = applyBranch(slots, tags, e, sp)
		case wasm.OpReturn:
			copy(slots[vfp:vfp+nres], slots[sp-nres:sp])
			if tags != nil {
				copy(tags[vfp:vfp+nres], tags[sp-nres:sp])
			}
			return rt.Done, nil
		case wasm.OpCall:
			var fidx uint32
			fidx, ip = readU32(body, ip)
			callee := inst.Funcs[fidx]
			argBase := sp - len(callee.Type.Params)
			syncFrame()
			if err := ctx.Invoke(callee, argBase); err != nil {
				return rt.Done, err
			}
			sp = argBase + len(callee.Type.Results)
		case wasm.OpCallIndirect:
			var typeIdx, tblIdx uint32
			typeIdx, ip = readU32(body, ip)
			tblIdx, ip = readU32(body, ip)
			sp--
			elem := uint32(slots[sp])
			table := inst.Tables[tblIdx]
			if int(elem) >= len(table.Elems) {
				return rt.Done, trap(rt.TrapOOBTable)
			}
			handle := table.Elems[elem]
			if handle == wasm.NullRef {
				return rt.Done, trap(rt.TrapNullFunc)
			}
			if handle > uint64(len(table.Funcs)) {
				// Dangling handle (e.g. a host-built table without owner
				// resolution): trap, never index out of range.
				return rt.Done, trap(rt.TrapNullFunc)
			}
			// Handles resolve in the table OWNER's function index space,
			// so an imported table dispatches to the exporter's functions.
			callee := table.Funcs[handle-1]
			if !callee.Type.Equal(inst.Module.Types[typeIdx]) {
				return rt.Done, trap(rt.TrapIndirectSigMismatch)
			}
			argBase := sp - len(callee.Type.Params)
			syncFrame()
			if err := ctx.Invoke(callee, argBase); err != nil {
				return rt.Done, err
			}
			sp = argBase + len(callee.Type.Results)

		case wasm.OpDrop:
			sp--
		case wasm.OpSelect:
			sp -= 2
			if uint32(slots[sp+1]) == 0 {
				slots[sp-1] = slots[sp]
				if tags != nil {
					tags[sp-1] = tags[sp]
				}
			}
		case wasm.OpSelectT:
			var n uint32
			n, ip = readU32(body, ip)
			ip += int(n) // skip the type vector
			sp -= 2
			if uint32(slots[sp+1]) == 0 {
				slots[sp-1] = slots[sp]
				if tags != nil {
					tags[sp-1] = tags[sp]
				}
			}

		case wasm.OpLocalGet:
			var idx uint32
			idx, ip = readU32(body, ip)
			slots[sp] = slots[vfp+int(idx)]
			if tags != nil {
				tags[sp] = tags[vfp+int(idx)]
			}
			sp++
		case wasm.OpLocalSet:
			var idx uint32
			idx, ip = readU32(body, ip)
			sp--
			slots[vfp+int(idx)] = slots[sp]
			if tags != nil {
				tags[vfp+int(idx)] = tags[sp]
			}
		case wasm.OpLocalTee:
			var idx uint32
			idx, ip = readU32(body, ip)
			slots[vfp+int(idx)] = slots[sp-1]
			if tags != nil {
				tags[vfp+int(idx)] = tags[sp-1]
			}
		case wasm.OpGlobalGet:
			var idx uint32
			idx, ip = readU32(body, ip)
			g := inst.Globals[idx]
			slots[sp] = g.Bits
			if tags != nil {
				tags[sp] = g.Tag
			}
			sp++
		case wasm.OpGlobalSet:
			var idx uint32
			idx, ip = readU32(body, ip)
			sp--
			inst.Globals[idx].Bits = slots[sp]
			if tags != nil {
				inst.Globals[idx].Tag = tags[sp]
			}

		case wasm.OpI32Load:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !facts.InBoundsAt(opPC) && !mem.InBounds(addr, off, 4) {
				if TestHookOOBReadsZero {
					// Planted bug (tests only): silently yield 0.
					slots[sp-1] = 0
					if tags != nil {
						tags[sp-1] = wasm.TagI32
					}
					break
				}
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && facts.InBoundsAt(opPC) {
				assertInBounds(mem, addr, off, 4, f, opPC)
			}
			slots[sp-1] = uint64(leU32(mem.Data, int(addr)+int(off)))
			if tags != nil {
				tags[sp-1] = wasm.TagI32
			}
		case wasm.OpI64Load:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !facts.InBoundsAt(opPC) && !mem.InBounds(addr, off, 8) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && facts.InBoundsAt(opPC) {
				assertInBounds(mem, addr, off, 8, f, opPC)
			}
			slots[sp-1] = leU64(mem.Data, int(addr)+int(off))
			if tags != nil {
				tags[sp-1] = wasm.TagI64
			}
		case wasm.OpF32Load:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !facts.InBoundsAt(opPC) && !mem.InBounds(addr, off, 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && facts.InBoundsAt(opPC) {
				assertInBounds(mem, addr, off, 4, f, opPC)
			}
			slots[sp-1] = uint64(leU32(mem.Data, int(addr)+int(off)))
			if tags != nil {
				tags[sp-1] = wasm.TagF32
			}
		case wasm.OpF64Load:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !facts.InBoundsAt(opPC) && !mem.InBounds(addr, off, 8) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && facts.InBoundsAt(opPC) {
				assertInBounds(mem, addr, off, 8, f, opPC)
			}
			slots[sp-1] = leU64(mem.Data, int(addr)+int(off))
			if tags != nil {
				tags[sp-1] = wasm.TagF64
			}
		case wasm.OpI32Load8S:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 1) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(uint32(int32(int8(mem.Data[int(addr)+int(off)]))))
			if tags != nil {
				tags[sp-1] = wasm.TagI32
			}
		case wasm.OpI32Load8U:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 1) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(mem.Data[int(addr)+int(off)])
			if tags != nil {
				tags[sp-1] = wasm.TagI32
			}
		case wasm.OpI32Load16S:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 2) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(uint32(int32(int16(leU16(mem.Data, int(addr)+int(off))))))
			if tags != nil {
				tags[sp-1] = wasm.TagI32
			}
		case wasm.OpI32Load16U:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 2) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(leU16(mem.Data, int(addr)+int(off)))
			if tags != nil {
				tags[sp-1] = wasm.TagI32
			}
		case wasm.OpI64Load8S:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 1) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(int64(int8(mem.Data[int(addr)+int(off)])))
			if tags != nil {
				tags[sp-1] = wasm.TagI64
			}
		case wasm.OpI64Load8U:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 1) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(mem.Data[int(addr)+int(off)])
			if tags != nil {
				tags[sp-1] = wasm.TagI64
			}
		case wasm.OpI64Load16S:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 2) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(int64(int16(leU16(mem.Data, int(addr)+int(off)))))
			if tags != nil {
				tags[sp-1] = wasm.TagI64
			}
		case wasm.OpI64Load16U:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 2) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(leU16(mem.Data, int(addr)+int(off)))
			if tags != nil {
				tags[sp-1] = wasm.TagI64
			}
		case wasm.OpI64Load32S:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(int64(int32(leU32(mem.Data, int(addr)+int(off)))))
			if tags != nil {
				tags[sp-1] = wasm.TagI64
			}
		case wasm.OpI64Load32U:
			var off uint32
			off, ip = readMemArg(body, ip)
			addr := uint32(slots[sp-1])
			if !mem.InBounds(addr, off, 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			slots[sp-1] = uint64(leU32(mem.Data, int(addr)+int(off)))
			if tags != nil {
				tags[sp-1] = wasm.TagI64
			}
		case wasm.OpI32Store:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !facts.InBoundsAt(opPC) && !mem.InBounds(addr, off, 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && facts.InBoundsAt(opPC) {
				assertInBounds(mem, addr, off, 4, f, opPC)
			}
			mem.Mark(addr, off, 4)
			putU32(mem.Data, int(addr)+int(off), uint32(slots[sp+1]))
		case wasm.OpI64Store:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !facts.InBoundsAt(opPC) && !mem.InBounds(addr, off, 8) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && facts.InBoundsAt(opPC) {
				assertInBounds(mem, addr, off, 8, f, opPC)
			}
			mem.Mark(addr, off, 8)
			putU64(mem.Data, int(addr)+int(off), slots[sp+1])
		case wasm.OpF32Store:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !facts.InBoundsAt(opPC) && !mem.InBounds(addr, off, 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && facts.InBoundsAt(opPC) {
				assertInBounds(mem, addr, off, 4, f, opPC)
			}
			mem.Mark(addr, off, 4)
			putU32(mem.Data, int(addr)+int(off), uint32(slots[sp+1]))
		case wasm.OpF64Store:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !facts.InBoundsAt(opPC) && !mem.InBounds(addr, off, 8) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && facts.InBoundsAt(opPC) {
				assertInBounds(mem, addr, off, 8, f, opPC)
			}
			mem.Mark(addr, off, 8)
			putU64(mem.Data, int(addr)+int(off), slots[sp+1])
		case wasm.OpI32Store8:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !mem.InBounds(addr, off, 1) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			mem.Mark(addr, off, 1)
			mem.Data[int(addr)+int(off)] = byte(slots[sp+1])
		case wasm.OpI32Store16:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !mem.InBounds(addr, off, 2) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			mem.Mark(addr, off, 2)
			putU16(mem.Data, int(addr)+int(off), uint16(slots[sp+1]))
		case wasm.OpI64Store8:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !mem.InBounds(addr, off, 1) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			mem.Mark(addr, off, 1)
			mem.Data[int(addr)+int(off)] = byte(slots[sp+1])
		case wasm.OpI64Store16:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !mem.InBounds(addr, off, 2) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			mem.Mark(addr, off, 2)
			putU16(mem.Data, int(addr)+int(off), uint16(slots[sp+1]))
		case wasm.OpI64Store32:
			var off uint32
			off, ip = readMemArg(body, ip)
			sp -= 2
			addr := uint32(slots[sp])
			if !mem.InBounds(addr, off, 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			mem.Mark(addr, off, 4)
			putU32(mem.Data, int(addr)+int(off), uint32(slots[sp+1]))
		case wasm.OpMemorySize:
			ip++ // memory index byte
			slots[sp] = uint64(mem.Pages())
			if tags != nil {
				tags[sp] = wasm.TagI32
			}
			sp++
		case wasm.OpMemoryGrow:
			ip++
			slots[sp-1] = uint64(uint32(mem.Grow(uint32(slots[sp-1]))))
			if tags != nil {
				tags[sp-1] = wasm.TagI32
			}

		case wasm.OpI32Const:
			var v int32
			v, ip = readS32(body, ip)
			slots[sp] = uint64(uint32(v))
			if tags != nil {
				tags[sp] = wasm.TagI32
			}
			sp++
		case wasm.OpI64Const:
			var v int64
			v, ip = readS64(body, ip)
			slots[sp] = uint64(v)
			if tags != nil {
				tags[sp] = wasm.TagI64
			}
			sp++
		case wasm.OpF32Const:
			slots[sp] = uint64(leU32(body, ip))
			ip += 4
			if tags != nil {
				tags[sp] = wasm.TagF32
			}
			sp++
		case wasm.OpF64Const:
			slots[sp] = leU64(body, ip)
			ip += 8
			if tags != nil {
				tags[sp] = wasm.TagF64
			}
			sp++

		case wasm.OpRefNull:
			ip++ // heap type byte
			slots[sp] = wasm.NullRef
			if tags != nil {
				tags[sp] = wasm.TagRef
			}
			sp++
		case wasm.OpRefIsNull:
			if slots[sp-1] == wasm.NullRef {
				slots[sp-1] = 1
			} else {
				slots[sp-1] = 0
			}
			if tags != nil {
				tags[sp-1] = wasm.TagI32
			}
		case wasm.OpRefFunc:
			var fidx uint32
			fidx, ip = readU32(body, ip)
			slots[sp] = uint64(fidx) + 1
			if tags != nil {
				tags[sp] = wasm.TagFuncRef
			}
			sp++

		case wasm.Opcode(wasm.PrefixFC):
			var sub uint32
			sub, ip = readU32(body, ip)
			var trapKind rt.TrapKind
			sp, ip, trapKind = fcOp(sub, body, ip, slots, tags, sp, mem)
			if trapKind != rt.TrapNone {
				return rt.Done, trap(trapKind)
			}

		default:
			var trapKind rt.TrapKind
			sp, trapKind = numeric(wasm.Opcode(op), slots, tags, sp)
			if trapKind != rt.TrapNone {
				return rt.Done, trap(trapKind)
			}
		}
	}
}

func shouldOSR(ctx *rt.Context, f *rt.FuncInst) bool {
	if ctx.OSRThreshold <= 0 {
		return false
	}
	f.CallCount++
	if f.CallCount < ctx.OSRThreshold {
		return false
	}
	if ctx.CountStats {
		ctx.Stats.OSRUps++
	}
	return true
}
