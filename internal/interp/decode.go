package interp

import (
	"encoding/binary"

	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// Inline immediate decoding. The in-place interpreter reads immediates
// straight from the original bytecode on every execution — that is the
// "no rewriting" cost the rewriting interpreter tier avoids by
// pre-decoding (and what compiled code avoids entirely).

func readU32(b []byte, pos int) (uint32, int) {
	v := uint32(b[pos])
	if v < 0x80 {
		return v, pos + 1
	}
	v &= 0x7F
	shift := uint(7)
	pos++
	for {
		c := b[pos]
		v |= uint32(c&0x7F) << shift
		pos++
		if c < 0x80 {
			return v, pos
		}
		shift += 7
	}
}

func readS32(b []byte, pos int) (int32, int) {
	var v int32
	var shift uint
	for {
		c := b[pos]
		v |= int32(c&0x7F) << shift
		shift += 7
		pos++
		if c < 0x80 {
			if shift < 32 && c&0x40 != 0 {
				v |= -1 << shift
			}
			return v, pos
		}
	}
}

func readS64(b []byte, pos int) (int64, int) {
	var v int64
	var shift uint
	for {
		c := b[pos]
		v |= int64(c&0x7F) << shift
		shift += 7
		pos++
		if c < 0x80 {
			if shift < 64 && c&0x40 != 0 {
				v |= -1 << shift
			}
			return v, pos
		}
	}
}

// readBlockType skips a block type immediate (value unused at run time).
func readBlockType(b []byte, pos int) (int64, int) {
	var v int64
	var shift uint
	for {
		c := b[pos]
		v |= int64(c&0x7F) << shift
		shift += 7
		pos++
		if c < 0x80 {
			if shift < 64 && c&0x40 != 0 {
				v |= -1 << shift
			}
			return v, pos
		}
	}
}

// readMemArg reads align+offset, returning only the offset.
func readMemArg(b []byte, pos int) (uint32, int) {
	_, pos = readU32(b, pos) // align
	return readU32(b, pos)
}

func leU16(b []byte, pos int) uint16 { return binary.LittleEndian.Uint16(b[pos:]) }
func leU32(b []byte, pos int) uint32 { return binary.LittleEndian.Uint32(b[pos:]) }
func leU64(b []byte, pos int) uint64 { return binary.LittleEndian.Uint64(b[pos:]) }

func putU16(b []byte, pos int, v uint16) { binary.LittleEndian.PutUint16(b[pos:], v) }
func putU32(b []byte, pos int, v uint32) { binary.LittleEndian.PutUint32(b[pos:], v) }
func putU64(b []byte, pos int, v uint64) { binary.LittleEndian.PutUint64(b[pos:], v) }

// applyBranch performs a sidetable-driven control transfer: keep the top
// ValCount values, discard PopCount slots beneath them, and jump to the
// entry's target ip/stp.
func applyBranch(slots []uint64, tags []wasm.Tag, e validate.SidetableEntry, sp int) (ip, stp, nsp int) {
	val := int(e.ValCount)
	pop := int(e.PopCount)
	if pop > 0 {
		if val > 0 {
			copy(slots[sp-val-pop:sp-pop], slots[sp-val:sp])
			if tags != nil {
				copy(tags[sp-val-pop:sp-pop], tags[sp-val:sp])
			}
		}
		sp -= pop
	}
	return int(e.TargetIP), int(e.TargetSTP), sp
}
