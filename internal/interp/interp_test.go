package interp_test

import (
	"errors"
	"testing"

	"wizgo/internal/interp"
	"wizgo/internal/rt"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// setup builds a single-function instance runnable by the interpreter
// without the engine facade, exercising the package API directly.
func setup(t *testing.T, build func(f *wasm.FuncBuilder), ft wasm.FuncType) (*rt.Context, *rt.FuncInst) {
	t.Helper()
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("f", ft)
	build(f)
	m := b.Module()
	infos, err := validate.Module(m)
	if err != nil {
		t.Fatal(err)
	}
	fi := &rt.FuncInst{Idx: 0, Type: ft, Decl: &m.Funcs[0], Info: &infos[0]}
	ctx := &rt.Context{
		Stack:    rt.NewValueStack(1024, true),
		Inst:     &rt.Instance{Module: m, Funcs: []*rt.FuncInst{fi}, Memory: rt.NewMemory(m.Memories[0])},
		MaxDepth: 64,
	}
	ctx.Invoke = func(callee *rt.FuncInst, argBase int) error {
		_, err := interp.Call(ctx, callee, argBase)
		return err
	}
	return ctx, fi
}

func TestDirectCall(t *testing.T) {
	ctx, f := setup(t, func(f *wasm.FuncBuilder) {
		f.LocalGet(0).LocalGet(0).Op(wasm.OpI32Mul).End()
	}, wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}})
	ctx.Stack.Slots[0] = wasm.BoxI32(9)
	ctx.Stack.Tags[0] = wasm.TagI32
	if _, err := interp.Call(ctx, f, 0); err != nil {
		t.Fatal(err)
	}
	if got := wasm.UnboxI32(ctx.Stack.Slots[0]); got != 81 {
		t.Fatalf("9*9 = %d", got)
	}
	if ctx.Stack.Tags[0] != wasm.TagI32 {
		t.Fatalf("result tag = %v", ctx.Stack.Tags[0])
	}
}

// TestTagsWrittenEagerly: the in-place interpreter stores a tag for
// every slot it pushes — the property value-tag GC scanning relies on.
func TestTagsWrittenEagerly(t *testing.T) {
	ctx, f := setup(t, func(f *wasm.FuncBuilder) {
		l := f.AddLocal(wasm.F64)
		f.F64Const(2.5).LocalSet(l)
		f.LocalGet(l).Op(wasm.OpI64TruncF64S)
		f.End()
	}, wasm.FuncType{Results: []wasm.ValueType{wasm.I64}})
	if _, err := interp.Call(ctx, f, 0); err != nil {
		t.Fatal(err)
	}
	if ctx.Stack.Tags[0] != wasm.TagI64 {
		t.Fatalf("result tag = %v, want i64", ctx.Stack.Tags[0])
	}
	if wasm.UnboxI64(ctx.Stack.Slots[0]) != 2 {
		t.Fatalf("trunc(2.5) = %d", wasm.UnboxI64(ctx.Stack.Slots[0]))
	}
}

// TestResumeAtArbitraryPC exercises the deopt entry path: run a loop
// partially via a fresh entry state mid-body.
func TestResumeEntry(t *testing.T) {
	ctx, f := setup(t, func(f *wasm.FuncBuilder) {
		i := f.AddLocal(wasm.I32)
		f.Loop(wasm.BlockEmpty)
		f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
		f.I32Const(100).Op(wasm.OpI32LtS)
		f.BrIf(0)
		f.End()
		f.LocalGet(i)
		f.End()
	}, wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})

	// Fresh call runs to completion.
	if _, err := interp.Call(ctx, f, 0); err != nil {
		t.Fatal(err)
	}
	if wasm.UnboxI32(ctx.Stack.Slots[0]) != 100 {
		t.Fatalf("loop result %d", wasm.UnboxI32(ctx.Stack.Slots[0]))
	}

	// Resume at the loop body with i pre-set to 95 (canonical frame):
	// pc of body start = 2 (loop opcode + blocktype), stp 0, sp above
	// the single local.
	ctx.Stack.Slots[0] = wasm.BoxI32(95)
	ctx.Stack.Tags[0] = wasm.TagI32
	status, err := interp.Run(ctx, f, 0, interp.Entry{PC: 2, STP: f.Info.STPForPC(2), SP: 1})
	if err != nil || status != rt.Done {
		t.Fatalf("resume: %v %v", status, err)
	}
	if wasm.UnboxI32(ctx.Stack.Slots[0]) != 100 {
		t.Fatalf("resumed loop result %d", wasm.UnboxI32(ctx.Stack.Slots[0]))
	}
}

// TestOSRRequest: with a threshold set, a hot back-edge returns OSRUp
// with a canonical resume state.
func TestOSRRequest(t *testing.T) {
	ctx, f := setup(t, func(f *wasm.FuncBuilder) {
		i := f.AddLocal(wasm.I32)
		f.Loop(wasm.BlockEmpty)
		f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
		f.I32Const(1000).Op(wasm.OpI32LtS)
		f.BrIf(0)
		f.End()
		f.End()
	}, wasm.FuncType{})
	ctx.OSRThreshold = 10
	status, err := interp.Call(ctx, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status != rt.OSRUp {
		t.Fatalf("status %v, want OSRUp", status)
	}
	if ctx.Resume.PC != 2 {
		t.Fatalf("resume pc %d, want loop body start", ctx.Resume.PC)
	}
	// Continue in the interpreter from the OSR point; must terminate.
	status, err = interp.Run(ctx, f, 0, interp.Entry{
		PC: ctx.Resume.PC, STP: f.Info.STPForPC(ctx.Resume.PC), SP: ctx.Resume.SP,
	})
	if err != nil || status != rt.Done {
		// A second OSR request may fire again; drain them.
		for status == rt.OSRUp && err == nil {
			status, err = interp.Run(ctx, f, 0, interp.Entry{
				PC: ctx.Resume.PC, STP: f.Info.STPForPC(ctx.Resume.PC), SP: ctx.Resume.SP,
			})
		}
		if err != nil || status != rt.Done {
			t.Fatalf("continue: %v %v", status, err)
		}
	}
}

func TestFuelBound(t *testing.T) {
	ctx, f := setup(t, func(f *wasm.FuncBuilder) {
		f.Loop(wasm.BlockEmpty)
		f.Br(0) // infinite loop
		f.End()
		f.End()
	}, wasm.FuncType{})
	ctx.Fuel = 10000
	_, err := interp.Call(ctx, f, 0)
	if err == nil {
		t.Fatal("infinite loop terminated without fuel trap")
	}
	var trap *rt.Trap
	if !errors.As(err, &trap) || trap.Kind != rt.TrapFuelExhausted {
		t.Fatalf("fuel exhaustion trapped with %v, want TrapFuelExhausted", err)
	}
}

func TestStatsCounting(t *testing.T) {
	ctx, f := setup(t, func(f *wasm.FuncBuilder) {
		f.I32Const(1).I32Const(2).Op(wasm.OpI32Add).Op(wasm.OpDrop).End()
	}, wasm.FuncType{})
	ctx.CountStats = true
	if _, err := interp.Call(ctx, f, 0); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.InterpOps != 5 {
		t.Fatalf("counted %d ops, want 5", ctx.Stats.InterpOps)
	}
}
