package analysis

import (
	"testing"

	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// analyze builds, decodes, validates and analyzes a module, returning
// the per-function facts.
func analyze(t *testing.T, b *wasm.Builder) ([]validate.FuncInfo, Stats) {
	t.Helper()
	m, err := wasm.Decode(b.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	infos, err := validate.Module(m)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	st := Module(m, infos)
	return infos, st
}

// countedLoopFunc emits the workloads ForI32 idiom: for (i = 0; i < n;
// i++) { mem[i*8] = 7 }.
func countedLoopFunc(b *wasm.Builder, n int32) {
	f := b.NewFunc("_start", wasm.FuncType{})
	i := f.AddLocal(wasm.I32)
	f.I32Const(0).LocalSet(i)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul)
	f.I64Const(7)
	f.Store(wasm.OpI64Store, 0)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
	f.I32Const(n).Op(wasm.OpI32LtS)
	f.BrIf(0)
	f.End()
	f.End()
}

func TestCountedLoopFacts(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(16, 16) // 1 MiB
	countedLoopFunc(b, 100)
	infos, st := analyze(t, b)

	facts := infos[0].Facts
	if facts == nil {
		t.Fatal("no facts attached")
	}
	// i ∈ [0, 100], address = i*8 ∈ [0, 800], +8 ≤ 1 MiB.
	if facts.BoundsProven != 1 {
		t.Errorf("BoundsProven = %d, want 1", facts.BoundsProven)
	}
	// 100 trips, no calls, no inner loops: poll elided at the br_if
	// back edge and at the loop checkpoint.
	if facts.PollsElided == 0 {
		t.Error("PollsElided = 0, want > 0")
	}
	if !facts.WritesMemory {
		t.Error("WritesMemory = false for a function that stores")
	}
	if st.BoundsProven != 1 || st.PollsElided == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnboundedLoopGetsNoFacts(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(16, 16)
	// i*8 reaches 1.6 MB > 1 MiB, and 200000 trips exceed the no-poll
	// cap: neither fact may be produced.
	countedLoopFunc(b, 200000)
	infos, _ := analyze(t, b)
	facts := infos[0].Facts
	if facts == nil {
		t.Fatal("no facts attached")
	}
	if facts.BoundsProven != 0 {
		t.Errorf("BoundsProven = %d, want 0 (address range exceeds memory)", facts.BoundsProven)
	}
	if facts.PollsElided != 0 {
		t.Errorf("PollsElided = %d, want 0 (trip count exceeds cap)", facts.PollsElided)
	}
}

func TestSecondInductionWriteBlocksFacts(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(16, 16)
	f := b.NewFunc("_start", wasm.FuncType{})
	i := f.AddLocal(wasm.I32)
	f.I32Const(0).LocalSet(i)
	f.Loop(wasm.BlockEmpty)
	// A second write to i inside the loop: the counted pattern no
	// longer proves anything about its range.
	f.LocalGet(i).I32Const(2).Op(wasm.OpI32Mul).LocalSet(i)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
	f.I32Const(100).Op(wasm.OpI32LtS)
	f.BrIf(0)
	f.End()
	f.End()
	infos, _ := analyze(t, b)
	if got := infos[0].Facts.PollsElided; got != 0 {
		t.Errorf("PollsElided = %d, want 0", got)
	}
}

func TestIfElseJoin(t *testing.T) {
	build := func(elseAddr int32) *wasm.Builder {
		b := wasm.NewBuilder()
		b.AddMemory(16, 16)
		f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValueType{wasm.I32}})
		l := f.AddLocal(wasm.I32)
		f.LocalGet(0)
		f.If(wasm.BlockEmpty)
		f.I32Const(8).LocalSet(l)
		f.Else()
		f.I32Const(elseAddr).LocalSet(l)
		f.End()
		f.LocalGet(l)
		f.I64Const(0)
		f.Store(wasm.OpI64Store, 0)
		f.End()
		return b
	}

	infos, _ := analyze(t, build(16))
	if got := infos[0].Facts.BoundsProven; got != 1 {
		t.Errorf("join of [8,8] and [16,16]: BoundsProven = %d, want 1", got)
	}
	infos, _ = analyze(t, build(0x7FFFFFF0))
	if got := infos[0].Facts.BoundsProven; got != 0 {
		t.Errorf("join with huge else arm: BoundsProven = %d, want 0", got)
	}
}

func TestWritesMemoryPropagation(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	ft := wasm.FuncType{}

	reader := b.NewFunc("reader", ft) // loads only
	reader.I32Const(0)
	reader.Load(wasm.OpI32Load, 0)
	reader.Op(wasm.OpDrop)
	reader.End()

	caller := b.NewFunc("caller", ft) // calls the reader
	caller.Call(reader.Idx)
	caller.End()

	writer := b.NewFunc("writer", ft) // stores
	writer.I32Const(0).I32Const(1)
	writer.Store(wasm.OpI32Store, 0)
	writer.End()

	indirect := b.NewFunc("indirect", ft) // calls the writer
	indirect.Call(writer.Idx)
	indirect.End()

	infos, st := analyze(t, b)
	want := []bool{false, false, true, true}
	for i, w := range want {
		if infos[i].Facts.WritesMemory != w {
			t.Errorf("func %d: WritesMemory = %v, want %v", i, infos[i].Facts.WritesMemory, w)
		}
	}
	if st.ReadOnly != 2 {
		t.Errorf("ReadOnly = %d, want 2", st.ReadOnly)
	}
}

func TestNoMemoryModule(t *testing.T) {
	b := wasm.NewBuilder()
	f := b.NewFunc("f", wasm.FuncType{})
	i := f.AddLocal(wasm.I32)
	f.I32Const(0).LocalSet(i)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
	f.I32Const(10).Op(wasm.OpI32LtS)
	f.BrIf(0)
	f.End()
	f.End()
	infos, _ := analyze(t, b)
	facts := infos[0].Facts
	if facts == nil {
		t.Fatal("no facts attached")
	}
	if facts.BoundsProven != 0 {
		t.Errorf("BoundsProven = %d, want 0 without a memory", facts.BoundsProven)
	}
	if facts.PollsElided == 0 {
		t.Error("PollsElided = 0: counted loop should still be recognized")
	}
	if facts.WritesMemory {
		t.Error("WritesMemory = true for a pure-local function")
	}
}
