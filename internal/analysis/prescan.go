package analysis

import "wizgo/internal/wasm"

// loopInfo is the syntactic summary of one loop construct, collected by
// the prescan before the interval pass runs. The interval pass uses it
// to havoc exactly the locals the loop body can modify, and — when the
// loop matches the counted idiom — to assign the induction variable a
// finite interval instead of havocking it.
type loopInfo struct {
	headerPC int // pc of the loop opcode
	bodyPC   int // pc of the first instruction after the block type
	endPC    int // pc of the matching end

	// modified counts local.set/local.tee sites per local index within
	// the loop extent (inner loops included).
	modified map[uint32]int
	// backEdges counts branches (br, br_if, br_table arms) targeting
	// this loop's header.
	backEdges    int
	hasCall      bool
	hasInnerLoop bool

	// Counted-loop recognition: the sole back edge is a trailing
	//   local.get L; i32.const step; i32.add; local.tee L;
	//   i32.const bound; i32.lt_s|lt_u; br_if <header>
	// sequence. With L modified nowhere else in the extent, L increases
	// by step each iteration and every back edge is guarded by
	// L' < bound, so the loop terminates and L stays in a computable
	// interval (see analyzeFunc).
	counted    bool
	indVar     uint32
	step       int64
	bound      int64
	backEdgePC int // pc of the recognized br_if

	// Fuel-prepayment screening. escape is set when the extent contains
	// a way out of the loop other than the recognized guard failing: a
	// branch past the loop frame, a return, or unreachable. hasTrapOp is
	// set for instructions that can trap regardless of proven bounds
	// (div/rem, non-saturating float→int truncation, unreachable,
	// memory.copy/fill). memPCs lists plain load/store pcs in the
	// extent; prepayment additionally requires each proven in bounds,
	// so the proven trip count is exact — the loop cannot end early.
	escape    bool
	hasTrapOp bool
	memPCs    []int
}

// eligible reports whether the counted-loop facts may be used: the
// recognized br_if must be the only way back to the header and the
// induction variable must be written exactly once (the tee) in the
// whole extent.
func (li *loopInfo) eligible() bool {
	return li.counted && li.backEdges == 1 && li.modified[li.indVar] == 1
}

// preInfo is the per-function prescan result.
type preInfo struct {
	loops   map[int]*loopInfo // keyed by headerPC
	callees []uint32          // direct call targets (function index space)
	// writes is true when the body itself can modify linear memory:
	// stores, memory.fill/copy/grow, or call_indirect (unknown callee).
	writes bool
}

// winEntry is one slot of the sliding instruction window used to match
// the counted-loop back-edge pattern.
type winEntry struct {
	pc  int
	op  wasm.Opcode
	arg int64 // const value or local index, depending on op
}

// prescan walks a validated body once, collecting loop extents, modified
// locals, call sites and the memory-write flag. It returns nil if the
// body fails to decode (cannot happen after validation; callers treat
// nil as "no facts").
func prescan(f *wasm.Func) *preInfo {
	pre := &preInfo{loops: make(map[int]*loopInfo)}
	r := wasm.NewReader(f.Body)

	type frame struct{ li *loopInfo }
	open := make([]frame, 1, 8) // open[0] is the function frame
	var win [6]winEntry

	markCall := func() {
		for _, fr := range open {
			if fr.li != nil {
				fr.li.hasCall = true
			}
		}
	}
	markTrapOp := func() {
		for _, fr := range open {
			if fr.li != nil {
				fr.li.hasTrapOp = true
			}
		}
	}
	markEscape := func() {
		for _, fr := range open {
			if fr.li != nil {
				fr.li.escape = true
			}
		}
	}
	branchTo := func(d uint32, brOp wasm.Opcode, pc int) {
		t := len(open) - 1 - int(d)
		// A branch to frame t exits every loop strictly deeper than t
		// (branching to a loop frame itself is its back edge, not an
		// exit).
		for j := t + 1; j >= 1 && j < len(open); j++ {
			if li := open[j].li; li != nil {
				li.escape = true
			}
		}
		if t < 1 {
			// Function frame or out of range: every open loop escapes.
			markEscape()
			return
		}
		li := open[t].li
		if li == nil {
			return
		}
		li.backEdges++
		if brOp != wasm.OpBrIf {
			return
		}
		// Match the trailing increment-and-test window, entirely inside
		// this loop's extent.
		w := &win
		if w[0].pc < li.bodyPC {
			return
		}
		if w[0].op != wasm.OpLocalGet || w[1].op != wasm.OpI32Const ||
			w[2].op != wasm.OpI32Add || w[3].op != wasm.OpLocalTee ||
			w[4].op != wasm.OpI32Const ||
			(w[5].op != wasm.OpI32LtS && w[5].op != wasm.OpI32LtU) {
			return
		}
		if w[0].arg != w[3].arg {
			return
		}
		li.counted = true
		li.indVar = uint32(w[0].arg)
		li.step = w[1].arg
		li.bound = w[4].arg
		li.backEdgePC = pc
	}

	for r.Len() > 0 {
		pc := r.Pos
		op, err := r.ReadOpcode()
		if err != nil {
			return nil
		}
		var arg int64
		switch op {
		case wasm.OpBlock, wasm.OpIf:
			if _, err := r.S33(); err != nil {
				return nil
			}
			open = append(open, frame{})
		case wasm.OpLoop:
			if _, err := r.S33(); err != nil {
				return nil
			}
			li := &loopInfo{headerPC: pc, bodyPC: r.Pos, modified: make(map[uint32]int)}
			for _, fr := range open {
				if fr.li != nil {
					fr.li.hasInnerLoop = true
				}
			}
			pre.loops[pc] = li
			open = append(open, frame{li: li})
		case wasm.OpElse:
			// No frame change: else shares the if frame.
		case wasm.OpEnd:
			if len(open) > 1 {
				if li := open[len(open)-1].li; li != nil {
					li.endPC = pc
				}
				open = open[:len(open)-1]
			}
		case wasm.OpBr, wasm.OpBrIf:
			d, err := r.U32()
			if err != nil {
				return nil
			}
			branchTo(d, op, pc)
		case wasm.OpBrTable:
			n, err := r.U32()
			if err != nil {
				return nil
			}
			for i := uint32(0); i <= n; i++ {
				d, err := r.U32()
				if err != nil {
					return nil
				}
				branchTo(d, op, pc)
			}
		case wasm.OpCall:
			idx, err := r.U32()
			if err != nil {
				return nil
			}
			pre.callees = append(pre.callees, idx)
			markCall()
		case wasm.OpCallIndirect:
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			pre.writes = true
			markCall()
		case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
			idx, err := r.U32()
			if err != nil {
				return nil
			}
			arg = int64(idx)
			if op != wasm.OpLocalGet {
				for _, fr := range open {
					if fr.li != nil {
						fr.li.modified[idx]++
					}
				}
			}
		case wasm.OpI32Const:
			v, err := r.S32()
			if err != nil {
				return nil
			}
			arg = int64(v)
		case wasm.OpMemoryGrow:
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			pre.writes = true
		case wasm.OpMemoryFill, wasm.OpMemoryCopy:
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			pre.writes = true
			markTrapOp() // can trap out of bounds mid-loop
		case wasm.OpReturn:
			markEscape()
		case wasm.OpUnreachable:
			markEscape()
			markTrapOp()
		case wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU,
			wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU,
			wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI32TruncF64S, wasm.OpI32TruncF64U,
			wasm.OpI64TruncF32S, wasm.OpI64TruncF32U, wasm.OpI64TruncF64S, wasm.OpI64TruncF64U:
			markTrapOp()
		default:
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			if _, isStore, ok := memAccess(op); ok {
				if isStore {
					pre.writes = true
				}
				for _, fr := range open {
					if fr.li != nil {
						fr.li.memPCs = append(fr.li.memPCs, pc)
					}
				}
			}
		}
		copy(win[:], win[1:])
		win[5] = winEntry{pc: pc, op: op, arg: arg}
	}
	return pre
}

// memAccess classifies plain load/store opcodes: access width in bytes
// and whether the access writes memory.
func memAccess(op wasm.Opcode) (size uint32, store bool, ok bool) {
	switch op {
	case wasm.OpI32Load8S, wasm.OpI32Load8U, wasm.OpI64Load8S, wasm.OpI64Load8U:
		return 1, false, true
	case wasm.OpI32Load16S, wasm.OpI32Load16U, wasm.OpI64Load16S, wasm.OpI64Load16U:
		return 2, false, true
	case wasm.OpI32Load, wasm.OpF32Load, wasm.OpI64Load32S, wasm.OpI64Load32U:
		return 4, false, true
	case wasm.OpI64Load, wasm.OpF64Load:
		return 8, false, true
	case wasm.OpI32Store8, wasm.OpI64Store8:
		return 1, true, true
	case wasm.OpI32Store16, wasm.OpI64Store16:
		return 2, true, true
	case wasm.OpI32Store, wasm.OpF32Store, wasm.OpI64Store32:
		return 4, true, true
	case wasm.OpI64Store, wasm.OpF64Store:
		return 8, true, true
	}
	return 0, false, false
}
