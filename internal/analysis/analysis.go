// Package analysis is wizgo's static-analysis engine. It runs once per
// module, after validation and before any tier compiles, and attaches a
// validate.Facts record to each function's FuncInfo. Every executor —
// the in-place interpreter, the rewriting interpreter, the single-pass
// compiler's MachCode and the copy-and-patch tier — consults the same
// facts, so a check eliminated here is eliminated everywhere.
//
// Three kinds of facts are computed:
//
//   - In-bounds memory accesses. A forward abstract interpretation over
//     unsigned 32-bit intervals tracks i32 locals and the operand
//     stack; a load/store whose effective address interval satisfies
//     hi + offset + size ≤ minPages*65536 can never trap, because
//     linking rejects imported memories below the declared minimum and
//     memory.grow never shrinks. Executors skip the bounds check at
//     those pcs.
//
//   - Provably terminating counted loops. The workhorse loop idiom
//     (local.get L; i32.const s; i32.add; local.tee L; i32.const N;
//     i32.lt; br_if header) with a sole back edge and a bounded trip
//     count cannot run unboundedly, so executors skip the interrupt
//     poll on its back edge. Deopt (OSR invalidation) and fuel
//     accounting are NOT elided — only the poll.
//
//   - Writes-memory. A syntactic per-function scan plus a call-graph
//     fixpoint marks functions that cannot modify linear memory (nor
//     reach one that can). The instance pool skips memory reset after
//     invoking only read-only exports.
//
// Soundness escape hatch: building with `-tags checked` keeps every
// elided check as an assertion (see rt.Checked); the differential CI
// job runs all workloads under that tag with analysis on and off.
package analysis

import (
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// Version identifies the fact-producing algorithm. It is folded into
// the disk-cache fingerprint and compiler revision: bump it whenever
// the meaning or encoding of facts changes so stale artifacts are
// discarded rather than misread.
const Version = "a2"

// maxNoPollTrips caps the trip count of loops whose back-edge interrupt
// poll may be elided. 2^16 short iterations is far below any plausible
// interrupt latency budget while covering every inner loop of the
// benchmark suites.
const maxNoPollTrips = 1 << 16

// Stats summarizes one module's analysis, for telemetry counters and
// the benchmark harness.
type Stats struct {
	Funcs        int // functions analyzed
	BoundsProven int // load/store sites proven in bounds
	PollsElided  int // loops whose back-edge poll is elided
	ReadOnly     int // functions proven not to write memory
}

// Module analyzes every function body of a validated module and attaches
// a Facts record to each infos[i]. infos must be the validator's output
// for m (len(infos) == len(m.Funcs)). The analysis is pure: it never
// fails — a function it cannot reason about simply gets conservative
// facts (everything checked, WritesMemory true).
func Module(m *wasm.Module, infos []validate.FuncInfo) Stats {
	var st Stats
	if len(infos) != len(m.Funcs) {
		return st
	}
	pres := make([]*preInfo, len(m.Funcs))
	for i := range m.Funcs {
		pres[i] = prescan(&m.Funcs[i])
	}
	writes := propagateWrites(m, pres)

	memBytes := uint64(m.MemoryMinPages()) * wasm.PageSize
	for i := range m.Funcs {
		facts := analyzeFunc(m, &m.Funcs[i], &infos[i], pres[i], memBytes)
		if facts == nil {
			facts = &validate.Facts{WritesMemory: true}
		}
		facts.WritesMemory = writes[i]
		infos[i].Facts = facts
		st.Funcs++
		st.BoundsProven += facts.BoundsProven
		st.PollsElided += facts.PollsElided
		if !facts.WritesMemory {
			st.ReadOnly++
		}
	}
	return st
}

// StatsFromInfos recomputes the module summary from facts already
// attached to infos — the artifact-rehydration path, where facts are
// deserialized rather than derived, but telemetry and the benchmark
// harness still want the same numbers a fresh compile reports.
func StatsFromInfos(infos []validate.FuncInfo) Stats {
	var st Stats
	for i := range infos {
		f := infos[i].Facts
		if f == nil {
			continue
		}
		st.Funcs++
		st.BoundsProven += f.BoundsProven
		st.PollsElided += f.PollsElided
		if !f.WritesMemory {
			st.ReadOnly++
		}
	}
	return st
}

// propagateWrites computes, for each module-defined function, whether it
// can modify linear memory directly or through any reachable callee.
// Imported functions and call_indirect targets are conservatively
// assumed to write.
func propagateWrites(m *wasm.Module, pres []*preInfo) []bool {
	imported := m.NumImportedFuncs()
	writes := make([]bool, len(pres))
	for i, pre := range pres {
		if pre == nil {
			writes[i] = true
			continue
		}
		writes[i] = pre.writes
		for _, c := range pre.callees {
			if int(c) < imported {
				writes[i] = true // host import: unknown effects
				break
			}
		}
	}
	// Fixpoint over the local call graph; len(pres) is small and the
	// graph is shallow, so a simple iterate-until-stable loop is fine.
	for changed := true; changed; {
		changed = false
		for i, pre := range pres {
			if writes[i] || pre == nil {
				continue
			}
			for _, c := range pre.callees {
				li := int(c) - imported
				if li >= 0 && li < len(writes) && writes[li] {
					writes[i] = true
					changed = true
					break
				}
			}
		}
	}
	return writes
}

// aframe is the abstract interpreter's control frame, mirroring the
// validator's control stack.
type aframe struct {
	op     wasm.Opcode
	height int // stack height at entry, params excluded
	nIn    int
	nOut   int
	// unreach is true while the current straight-line code in this
	// frame cannot execute (after br/return/unreachable).
	unreach bool
	// liveIn records whether the frame was entered in reachable code;
	// an if's else arm is reachable iff the if was.
	liveIn bool
	// branched is set when a reachable forward branch targets this
	// frame; merged then holds the local-interval hull at those
	// branch sites.
	branched bool
	merged   []iv
	// saved holds the locals at if entry for the else arm / the
	// implicit false edge of if-without-else.
	saved   []iv
	hasElse bool
}

// analyzeFunc runs the interval abstract interpretation over one body
// and returns its facts, or nil when the walk hits anything unexpected
// (the caller substitutes conservative facts). One forward pass is
// sound: loop entry havocs every local the body can modify (except a
// recognized induction variable, which gets its proven invariant
// interval), so the state at the header already covers all iterations.
func analyzeFunc(m *wasm.Module, f *wasm.Func, info *validate.FuncInfo, pre *preInfo, memBytes uint64) *validate.Facts {
	if pre == nil {
		return nil
	}
	facts := validate.NewFacts(len(f.Body))
	// Fuel-prepay candidates are collected during the walk and resolved
	// after it: the loop-entry decision needs the in-bounds facts of the
	// loop body, which the forward pass has not visited yet.
	type prepayCand struct {
		li    *loopInfo
		trips int64
	}
	var prepays []prepayCand
	nLocals := len(info.LocalTypes)
	locals := make([]iv, nLocals)
	for i := range locals {
		if i >= info.NumParams && info.LocalTypes[i] == wasm.I32 {
			locals[i] = iv{0, 0} // declared locals are zero-initialized
		} else {
			locals[i] = top
		}
	}
	stk := make([]iv, 0, 16)
	frames := make([]aframe, 1, 8)
	frames[0] = aframe{op: wasm.OpBlock, nOut: len(info.Results), liveIn: true}

	imported := m.NumImportedGlobals()
	bad := false // set on any mirror inconsistency; discards all facts
	pop := func() iv {
		if len(stk) == 0 {
			bad = true
			return top
		}
		v := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		return v
	}
	popN := func(n int) {
		if len(stk) < n {
			bad = true
			stk = stk[:0]
			return
		}
		stk = stk[:len(stk)-n]
	}
	push := func(v iv) { stk = append(stk, v) }
	pushN := func(n int) {
		for i := 0; i < n; i++ {
			push(top)
		}
	}
	mergeInto := func(fr *aframe) {
		if fr.op == wasm.OpLoop {
			return // back edge: header state is already the invariant
		}
		if !fr.branched {
			fr.branched = true
			fr.merged = append([]iv(nil), locals...)
			return
		}
		for i := range fr.merged {
			fr.merged[i] = hull(fr.merged[i], locals[i])
		}
	}
	branchTo := func(d uint32) {
		t := len(frames) - 1 - int(d)
		if t < 0 {
			bad = true
			return
		}
		mergeInto(&frames[t])
	}
	blockArity := func(bt int64) (in, out int) {
		if bt >= 0 {
			if int(bt) < len(m.Types) {
				t := m.Types[bt]
				return len(t.Params), len(t.Results)
			}
			bad = true
			return 0, 0
		}
		if bt == -64 {
			return 0, 0
		}
		return 0, 1
	}

	r := wasm.NewReader(f.Body)
	for r.Len() > 0 && len(frames) > 0 && !bad {
		pc := r.Pos
		op, err := r.ReadOpcode()
		if err != nil {
			return nil
		}
		cur := &frames[len(frames)-1]

		if cur.unreach {
			// Track control structure only; validation already proved
			// this code well-formed and it can never execute.
			switch op {
			case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
				bt, err := r.S33()
				if err != nil {
					return nil
				}
				in, out := blockArity(bt)
				frames = append(frames, aframe{op: op, height: len(stk), nIn: in, nOut: out, unreach: true})
			case wasm.OpElse:
				cur.hasElse = true
				if cur.liveIn {
					// The else arm is reachable through the if's
					// false edge even though the then arm died.
					copy(locals, cur.saved)
					stk = stk[:cur.height]
					pushN(cur.nIn)
					cur.unreach = false
				}
			case wasm.OpEnd:
				closeFrame(&frames, &stk, &locals, pushN)
			default:
				if err := r.SkipImm(op); err != nil {
					return nil
				}
			}
			continue
		}

		switch op {
		case wasm.OpNop:
		case wasm.OpUnreachable:
			cur.unreach = true
		case wasm.OpBlock:
			bt, err := r.S33()
			if err != nil {
				return nil
			}
			in, out := blockArity(bt)
			h := len(stk) - in
			if h < 0 {
				bad = true
				h = 0
			}
			frames = append(frames, aframe{op: op, height: h, nIn: in, nOut: out, liveIn: true})
		case wasm.OpIf:
			bt, err := r.S33()
			if err != nil {
				return nil
			}
			pop() // condition
			in, out := blockArity(bt)
			h := len(stk) - in
			if h < 0 {
				bad = true
				h = 0
			}
			frames = append(frames, aframe{
				op: op, height: h, nIn: in, nOut: out,
				liveIn: true, saved: append([]iv(nil), locals...),
			})
		case wasm.OpLoop:
			bt, err := r.S33()
			if err != nil {
				return nil
			}
			in, out := blockArity(bt)
			if len(stk) < in {
				bad = true
				break
			}
			// Loop-carried stack params are unknown.
			for j := len(stk) - in; j < len(stk); j++ {
				stk[j] = top
			}
			li := pre.loops[pc]
			if li == nil {
				return nil // prescan and interval walk disagree on structure
			}
			entry := top
			if int(li.indVar) < nLocals {
				entry = locals[li.indVar]
			}
			for idx := range li.modified {
				if int(idx) < nLocals {
					locals[idx] = top
				}
			}
			if li.eligible() && int(li.indVar) < nLocals &&
				li.step >= 1 && li.bound >= 1 && li.bound < 1<<31 &&
				entry.hi < 1<<31 {
				// Induction invariant at any point in or after the
				// loop: L started at entry ∈ [a0.lo, a0.hi]; every
				// back edge passes the guard L' < bound, so the
				// header value is < bound after the first iteration
				// and one increment never exceeds
				// max(a0.hi, bound-1) + step. All quantities stay
				// below 2^31, so the signed guard agrees with this
				// unsigned interval.
				hi := uint64(li.bound - 1)
				if entry.hi > hi {
					hi = entry.hi
				}
				hi += uint64(li.step)
				if hi < 1<<31 {
					locals[li.indVar] = iv{entry.lo, hi}
					if !li.hasCall && !li.hasInnerLoop {
						trips := uint64(1)
						if entry.lo < uint64(li.bound) {
							trips += (uint64(li.bound) - entry.lo) / uint64(li.step)
						}
						if trips <= maxNoPollTrips {
							facts.SetNoPoll(li.backEdgePC)
							facts.SetNoPoll(li.bodyPC)
							facts.PollsElided++
						}
						// Fuel prepayment needs the EXACT header-execution
						// count, not an upper bound: a point entry value,
						// no early exits, and no instruction that could
						// trap mid-loop. The loop is do-while shaped
						// (body, increment, guard), so it runs once even
						// when the entry value already meets the bound.
						if entry.lo == entry.hi && !li.escape && !li.hasTrapOp {
							exact := uint64(1)
							if entry.lo < uint64(li.bound) {
								exact = (uint64(li.bound) - entry.lo + uint64(li.step) - 1) / uint64(li.step)
							}
							if exact <= maxNoPollTrips {
								prepays = append(prepays, prepayCand{li: li, trips: int64(exact)})
							}
						}
					}
				}
			}
			frames = append(frames, aframe{op: op, height: len(stk) - in, nIn: in, nOut: out, liveIn: true})
		case wasm.OpElse:
			cur.hasElse = true
			mergeInto(cur) // then-arm fall-through joins at end
			copy(locals, cur.saved)
			stk = stk[:cur.height]
			pushN(cur.nIn)
		case wasm.OpEnd:
			closeFrame(&frames, &stk, &locals, pushN)
		case wasm.OpBr:
			d, err := r.U32()
			if err != nil {
				return nil
			}
			branchTo(d)
			cur.unreach = true
		case wasm.OpBrIf:
			d, err := r.U32()
			if err != nil {
				return nil
			}
			pop()
			branchTo(d)
		case wasm.OpBrTable:
			n, err := r.U32()
			if err != nil {
				return nil
			}
			pop()
			for i := uint32(0); i <= n; i++ {
				d, err := r.U32()
				if err != nil {
					return nil
				}
				branchTo(d)
			}
			cur.unreach = true
		case wasm.OpReturn:
			cur.unreach = true
		case wasm.OpCall:
			idx, err := r.U32()
			if err != nil {
				return nil
			}
			ft, err2 := m.FuncTypeAt(idx)
			if err2 != nil {
				return nil
			}
			popN(len(ft.Params))
			pushN(len(ft.Results))
		case wasm.OpCallIndirect:
			ti, err := r.U32()
			if err != nil {
				return nil
			}
			if _, err := r.U32(); err != nil {
				return nil
			}
			if int(ti) >= len(m.Types) {
				return nil
			}
			pop() // table index
			popN(len(m.Types[ti].Params))
			pushN(len(m.Types[ti].Results))
		case wasm.OpDrop:
			pop()
		case wasm.OpSelect:
			pop() // condition
			b := pop()
			a := pop()
			push(hull(a, b))
		case wasm.OpSelectT:
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			pop()
			b := pop()
			a := pop()
			push(hull(a, b))
		case wasm.OpLocalGet:
			idx, err := r.U32()
			if err != nil || int(idx) >= nLocals {
				return nil
			}
			push(locals[idx])
		case wasm.OpLocalSet:
			idx, err := r.U32()
			if err != nil || int(idx) >= nLocals {
				return nil
			}
			locals[idx] = pop()
		case wasm.OpLocalTee:
			idx, err := r.U32()
			if err != nil || int(idx) >= nLocals {
				return nil
			}
			if len(stk) == 0 {
				bad = true
				break
			}
			locals[idx] = stk[len(stk)-1]
		case wasm.OpGlobalGet:
			idx, err := r.U32()
			if err != nil {
				return nil
			}
			v := top
			if li := int(idx) - imported; li >= 0 && li < len(m.Globals) {
				if g := m.Globals[li]; !g.Mutable && g.Type == wasm.I32 {
					v = constIv(uint64(uint32(g.Init.I32())))
				}
			}
			push(v)
		case wasm.OpGlobalSet:
			if _, err := r.U32(); err != nil {
				return nil
			}
			pop()
		case wasm.OpI32Const:
			v, err := r.S32()
			if err != nil {
				return nil
			}
			push(constIv(uint64(uint32(v))))
		case wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			push(top)
		case wasm.OpMemorySize:
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			push(iv{memBytes / wasm.PageSize, wasm.MaxPages})
		case wasm.OpMemoryGrow:
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			pop()
			push(top)
		case wasm.OpI32Add:
			b, a := pop(), pop()
			push(addIv(a, b))
		case wasm.OpI32Sub:
			b, a := pop(), pop()
			push(subIv(a, b))
		case wasm.OpI32Mul:
			b, a := pop(), pop()
			push(mulIv(a, b))
		case wasm.OpI32And:
			b, a := pop(), pop()
			push(andIv(a, b))
		case wasm.OpI32Or:
			b, a := pop(), pop()
			push(orIv(a, b))
		case wasm.OpI32Xor:
			b, a := pop(), pop()
			push(xorIv(a, b))
		case wasm.OpI32Shl:
			b, a := pop(), pop()
			push(shlIv(a, b))
		case wasm.OpI32ShrU:
			b, a := pop(), pop()
			push(shrUIv(a, b))
		case wasm.OpI32DivU:
			b, a := pop(), pop()
			push(divUIv(a, b))
		case wasm.OpI32RemU:
			b, a := pop(), pop()
			push(remUIv(a, b))
		case wasm.OpI32DivS:
			b, a := pop(), pop()
			push(divSIv(a, b))
		case wasm.OpI32RemS:
			b, a := pop(), pop()
			push(remSIv(a, b))
		case wasm.OpI32Eqz:
			pop()
			push(iv{0, 1})
		case wasm.OpI32Clz, wasm.OpI32Ctz, wasm.OpI32Popcnt:
			pop()
			push(iv{0, 32})
		default:
			if size, isStore, ok := memAccess(op); ok {
				if _, err := r.U32(); err != nil { // align
					return nil
				}
				off, err := r.U32()
				if err != nil {
					return nil
				}
				if isStore {
					pop() // value
				}
				addr := pop()
				if memBytes > 0 && addr.hi+uint64(off)+uint64(size) <= memBytes {
					facts.SetInBounds(pc)
				}
				if !isStore {
					switch op {
					case wasm.OpI32Load8U:
						push(iv{0, 0xFF})
					case wasm.OpI32Load16U:
						push(iv{0, 0xFFFF})
					default:
						push(top)
					}
				}
				break
			}
			// Everything else is signature-driven: pop the params,
			// push unknown results. Comparisons land in [0,1] via
			// their i32 result being top-truncated anyway; precision
			// there buys nothing downstream.
			params, results, ok := op.Sig()
			if !ok {
				return nil
			}
			if err := r.SkipImm(op); err != nil {
				return nil
			}
			popN(len(params))
			pushN(len(results))
		}
	}
	if bad {
		return nil
	}
	// Resolve prepay candidates now that the body's in-bounds facts are
	// complete: every plain memory access in the extent must be proven,
	// or the loop could trap early and the prepaid charge would
	// overcount relative to the per-iteration execution.
	for _, cand := range prepays {
		ok := true
		for _, mpc := range cand.li.memPCs {
			if !facts.InBoundsAt(mpc) {
				ok = false
				break
			}
		}
		if ok {
			facts.SetPrepaid(cand.li.backEdgePC, len(f.Body))
			facts.SetTrips(cand.li.bodyPC, cand.trips)
		}
	}
	return facts
}

// closeFrame handles an end opcode: pops the top control frame, joins
// the locals over every edge that can reach the code after the end, and
// rebuilds the stack to height+nOut.
func closeFrame(frames *[]aframe, stk *[]iv, locals *[]iv, pushN func(int)) {
	fs := *frames
	fr := &fs[len(fs)-1]
	fallthrough_ := !fr.unreach

	// Join locals over the incoming edges.
	if fr.branched {
		if fallthrough_ {
			for i := range fr.merged {
				fr.merged[i] = hull(fr.merged[i], (*locals)[i])
			}
		}
		copy(*locals, fr.merged)
	}
	ifNoElse := fr.op == wasm.OpIf && !fr.hasElse && fr.liveIn
	if ifNoElse {
		// The false edge skips the arm entirely.
		for i := range *locals {
			(*locals)[i] = hull((*locals)[i], fr.saved[i])
		}
	}

	// Code after the end is reachable through fall-through, a forward
	// branch, or an if's false edge. (Branches to a loop go backward,
	// so a loop's end is reachable only by falling through.)
	live := fallthrough_
	if fr.op != wasm.OpLoop {
		live = live || fr.branched || ifNoElse
	}

	// Rebuild the stack: keep precise fall-through results only when
	// fall-through is the sole incoming edge.
	keep := fallthrough_ && !fr.branched && !ifNoElse &&
		len(*stk) == fr.height+fr.nOut
	if !keep {
		if len(*stk) > fr.height {
			*stk = (*stk)[:fr.height]
		}
		pushN(fr.nOut)
	}

	*frames = fs[:len(fs)-1]
	if len(*frames) > 0 && !live {
		(*frames)[len(*frames)-1].unreach = true
	}
}
