package analysis

import "math/bits"

// iv is an unsigned interval over 32-bit values: every value the tracked
// i32 slot can hold (interpreted as uint32) lies in [lo, hi]. The lattice
// top is [0, 2^32-1]; there is no bottom — unreachable code is tracked
// separately by the abstract interpreter and never emits facts.
//
// Signed quantities are representable as long as they are non-negative
// (hi < 2^31); the analyzer refuses to reason about intervals that may
// straddle the sign boundary wherever signedness matters (counted-loop
// bounds, i32.div_s/rem_s).
type iv struct {
	lo, hi uint64
}

const maxU32 = 1<<32 - 1

// top is the unknown interval.
var top = iv{0, maxU32}

func (v iv) isTop() bool { return v.lo == 0 && v.hi == maxU32 }

// constIv is the singleton interval, defined only for in-range k.
func constIv(k uint64) iv { return iv{k, k} }

// isConst reports whether v is a singleton and returns its value.
func (v iv) isConst() (uint64, bool) { return v.lo, v.lo == v.hi }

// hull is the smallest interval containing both a and b.
func hull(a, b iv) iv {
	if b.lo < a.lo {
		a.lo = b.lo
	}
	if b.hi > a.hi {
		a.hi = b.hi
	}
	return a
}

// The transfer functions below return top whenever the concrete i32
// operation could wrap modulo 2^32 on some pair of inputs; within the
// guard they are the exact image of the interval pair.

func addIv(a, b iv) iv {
	if a.hi+b.hi > maxU32 {
		return top
	}
	return iv{a.lo + b.lo, a.hi + b.hi}
}

func subIv(a, b iv) iv {
	if a.lo < b.hi {
		return top
	}
	return iv{a.lo - b.hi, a.hi - b.lo}
}

func mulIv(a, b iv) iv {
	// a.hi, b.hi ≤ 2^32-1 so the product fits in uint64 exactly.
	if a.hi*b.hi > maxU32 {
		return top
	}
	return iv{a.lo * b.lo, a.hi * b.hi}
}

func andIv(a, b iv) iv {
	hi := a.hi
	if b.hi < hi {
		hi = b.hi
	}
	return iv{0, hi}
}

// orHull bounds x|y by the next power-of-two envelope of both operands;
// also a sound bound for xor.
func orIv(a, b iv) iv {
	n := bits.Len64(a.hi | b.hi)
	lo := a.lo
	if b.lo > lo {
		lo = b.lo
	}
	return iv{lo, 1<<uint(n) - 1}
}

func xorIv(a, b iv) iv {
	n := bits.Len64(a.hi | b.hi)
	return iv{0, 1<<uint(n) - 1}
}

func shlIv(a, b iv) iv {
	k, ok := b.isConst()
	if !ok {
		return top
	}
	k &= 31
	if a.hi<<k > maxU32 {
		return top
	}
	return iv{a.lo << k, a.hi << k}
}

func shrUIv(a, b iv) iv {
	k, ok := b.isConst()
	if !ok {
		return top
	}
	k &= 31
	return iv{a.lo >> k, a.hi >> k}
}

func divUIv(a, b iv) iv {
	if b.lo == 0 {
		// Divisor may be zero; that path traps at runtime, but the
		// result interval must still be sound for nonzero divisors.
		return top
	}
	return iv{a.lo / b.hi, a.hi / b.lo}
}

func remUIv(a, b iv) iv {
	if b.lo == 0 {
		return top
	}
	hi := b.hi - 1
	if a.hi < hi {
		hi = a.hi
	}
	return iv{0, hi}
}

// divSIv and remSIv handle only the all-non-negative case, where the
// signed operations agree with their unsigned counterparts.
func divSIv(a, b iv) iv {
	if a.hi >= 1<<31 || b.hi >= 1<<31 {
		return top
	}
	return divUIv(a, b)
}

func remSIv(a, b iv) iv {
	if a.hi >= 1<<31 || b.hi >= 1<<31 {
		return top
	}
	return remUIv(a, b)
}
