package analysis_test

import (
	"bytes"
	"errors"
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
	"wizgo/internal/workloads"
)

// The differential soundness suite: every fact the analysis derives
// licenses removing a dynamic check somewhere, so the strongest
// evidence of soundness is that execution with analysis on and off is
// observably identical — same results, same traps, same final memory —
// across every engine configuration. Built with `-tags checked` the
// same tests additionally execute the elided checks as assertions (see
// rt.Checked), turning any unsound fact into a panic instead of a
// silent divergence.

// outcome is everything a guest run can observe.
type outcome struct {
	checksum int64
	trapKind rt.TrapKind
	trapped  bool
	err      string
	memory   []byte
}

// runModule executes a module's _start under cfg and captures the
// outcome. A non-trap error fails the test (it would indicate a broken
// harness, not a divergence).
func runModule(t *testing.T, cfg engine.Config, module []byte) outcome {
	t.Helper()
	var o outcome
	inst, err := engine.New(cfg, nil).Instantiate(module)
	if err != nil {
		t.Fatalf("%s: instantiate: %v", cfg.Name, err)
	}
	defer inst.Release()
	_, err = inst.Call("_start")
	if err != nil {
		var trap *rt.Trap
		if !errors.As(err, &trap) {
			t.Fatalf("%s: non-trap error: %v", cfg.Name, err)
		}
		o.trapped = true
		o.trapKind = trap.Kind
		o.err = err.Error()
	} else if sum, err := inst.Call("checksum"); err == nil && len(sum) == 1 {
		o.checksum = sum[0].I64()
	}
	o.memory = append([]byte(nil), inst.RT.Memory.Data...)
	return o
}

// assertSame compares the analysis-on and analysis-off outcomes of one
// module under one engine configuration.
func assertSame(t *testing.T, name string, on, off outcome) {
	t.Helper()
	if on.trapped != off.trapped || on.trapKind != off.trapKind {
		t.Errorf("%s: trap divergence: analysis on = (%v, %v), off = (%v, %v)",
			name, on.trapped, on.trapKind, off.trapped, off.trapKind)
	}
	if on.checksum != off.checksum {
		t.Errorf("%s: checksum divergence: analysis on = %d, off = %d",
			name, on.checksum, off.checksum)
	}
	if !bytes.Equal(on.memory, off.memory) {
		t.Errorf("%s: final linear memory diverges (%d vs %d bytes)",
			name, len(on.memory), len(off.memory))
	}
}

// differentialModules picks the workload modules to push through every
// engine. -short keeps one fast item per suite; the full run covers a
// broader slice of all three generated suites.
func differentialModules(t *testing.T) []workloads.Item {
	poly, libs, ostr := workloads.PolyBench(), workloads.Libsodium(), workloads.Ostrich()
	if testing.Short() {
		return []workloads.Item{poly[0], libs[0], ostr[3]}
	}
	var items []workloads.Item
	for _, suite := range [][]workloads.Item{poly, libs, ostr} {
		for i, it := range suite {
			if i%4 == 0 { // every 4th item bounds runtime while sampling each suite
				items = append(items, it)
			}
		}
	}
	return items
}

// TestDifferentialWorkloads runs generated benchmark modules through
// every catalog configuration with the static analysis enabled and
// disabled, asserting identical observable behavior.
func TestDifferentialWorkloads(t *testing.T) {
	items := differentialModules(t)
	for _, base := range engines.Catalog() {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			t.Parallel()
			for _, item := range items {
				on := base
				on.NoAnalysis = false
				off := base
				off.NoAnalysis = true
				name := base.Name + "/" + item.Suite + "/" + item.Name
				assertSame(t, name,
					runModule(t, on, item.Bytes),
					runModule(t, off, item.Bytes))
			}
		})
	}
}

// trapModules builds modules that definitely trap, exercising the
// boundary the analysis must never move: elided checks may only be
// those that provably cannot fire.
func trapModules() map[string][]byte {
	mods := map[string][]byte{}

	// A counted loop whose stores start in bounds and walk off the end
	// of memory: the analysis must keep the bounds check (the address
	// interval exceeds minPages) and the trap must surface identically.
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("_start", wasm.FuncType{})
	i := f.AddLocal(wasm.I32)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(i).LocalGet(i).Store(wasm.OpI32Store, 0)
	f.LocalGet(i).I32Const(4096).Op(wasm.OpI32Add).LocalTee(i)
	f.I32Const(1 << 20).Op(wasm.OpI32LtS).BrIf(0)
	f.End()
	f.End()
	b.Export("_start", f.Idx)
	mods["oob-walk"] = b.Encode()

	// An in-bounds counted loop that ends in unreachable: poll elision
	// must not change which trap fires.
	b = wasm.NewBuilder()
	b.AddMemory(1, 1)
	f = b.NewFunc("_start", wasm.FuncType{})
	i = f.AddLocal(wasm.I32)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(i).I64Const(7).Store(wasm.OpI64Store, 8)
	f.LocalGet(i).I32Const(8).Op(wasm.OpI32Add).LocalTee(i)
	f.I32Const(4096).Op(wasm.OpI32LtS).BrIf(0)
	f.End()
	f.Op(wasm.OpUnreachable)
	f.End()
	b.Export("_start", f.Idx)
	mods["loop-then-unreachable"] = b.Encode()

	return mods
}

// TestDifferentialTraps asserts trapping modules trap identically (same
// kind) with analysis on and off under every configuration.
func TestDifferentialTraps(t *testing.T) {
	mods := trapModules()
	for _, base := range engines.Catalog() {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			t.Parallel()
			for name, module := range mods {
				on := base
				on.NoAnalysis = false
				off := base
				off.NoAnalysis = true
				onOut := runModule(t, on, module)
				offOut := runModule(t, off, module)
				assertSame(t, base.Name+"/"+name, onOut, offOut)
				if name == "oob-walk" && (!onOut.trapped || onOut.trapKind != rt.TrapOOBMemory) {
					t.Errorf("%s: oob-walk should trap OOB, got %+v", base.Name, onOut)
				}
				if name == "loop-then-unreachable" && (!onOut.trapped || onOut.trapKind != rt.TrapUnreachable) {
					t.Errorf("%s: loop-then-unreachable should trap unreachable, got %+v", base.Name, onOut)
				}
			}
		})
	}
}

// TestAnalysisProducesFacts guards against the differential suite
// passing vacuously: the workloads must actually exercise elided
// checks, not compare two identical all-checks configurations.
func TestAnalysisProducesFacts(t *testing.T) {
	e := engine.New(engines.WizardSPC(), nil)
	var elided int
	for _, item := range differentialModules(t) {
		cm, err := e.Compile(item.Bytes)
		if err != nil {
			t.Fatalf("%s: %v", item.Name, err)
		}
		st := cm.AnalysisStats()
		elided += st.BoundsProven + st.PollsElided
	}
	if elided == 0 {
		t.Fatal("no checks elided across the differential corpus; the suite is comparing identical configurations")
	}
	t.Logf("differential corpus elides %d checks", elided)
}
