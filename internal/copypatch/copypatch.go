// Package copypatch implements a template-based baseline compiler in the
// style of WasmNow / Copy&Patch (Xu & Kjolstad, OOPSLA 2021): for each
// Wasm instruction a pre-made machine-code template is stamped out with
// its immediates patched in. There is no abstract state beyond the stack
// height — no register allocation decisions, no constant tracking, no
// snapshots — which is why this is the fastest compile pipeline in
// Figure 8. The price is code quality: every operand round-trips through
// its value-stack slot, so execution lands between the register
// allocating baselines and the interpreters (Figures 7 and 10). Because
// the frame is always canonical, calls need no spill code at all.
package copypatch

import (
	"fmt"

	"wizgo/internal/engine"
	"wizgo/internal/mach"
	"wizgo/internal/rt"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// Tier adapts the template compiler for the engine.
type Tier struct{ TierName string }

// Name implements engine.Tier.
func (t Tier) Name() string {
	if t.TierName != "" {
		return t.TierName
	}
	return "copypatch"
}

// Compile implements engine.Tier.
func (t Tier) Compile(m *wasm.Module, fidx uint32, decl *wasm.Func,
	info *validate.FuncInfo, probes *rt.ProbeSet) (engine.Code, error) {
	return Compile(m, fidx, decl, info)
}

// Fixed template registers (scratch only; never live across templates).
const (
	r0 = 0
	r1 = 1
	r2 = 2
)

type ctrl struct {
	op          wasm.Opcode
	label       int // end label (header for loops)
	elseLabel   int
	height      int
	nIn, nOut   int
	hasElse     bool
	unreachable bool
	wasDead     bool
}

type tc struct {
	m       *wasm.Module
	info    *validate.FuncInfo
	asm     *mach.Asm
	ctrls   []ctrl
	h       int
	nLocals int
	osr     map[int]int
	r       *wasm.Reader
}

func (t *tc) slot(pos int) int { return t.nLocals + pos }

// Compile translates one function with per-opcode templates.
func Compile(m *wasm.Module, fidx uint32, decl *wasm.Func, info *validate.FuncInfo) (*mach.Code, error) {
	t := &tc{
		m: m, info: info, asm: mach.NewAsm(),
		nLocals: len(info.LocalTypes),
		osr:     make(map[int]int),
		r:       wasm.NewReader(decl.Body),
	}
	ft := m.Types[decl.TypeIdx]

	// Prologue template: zero declared locals.
	for i := info.NumParams; i < t.nLocals; i++ {
		t.asm.Emit(mach.Instr{Op: mach.OStoreSlotConst, A: int32(i), Imm: 0})
	}
	t.ctrls = append(t.ctrls, ctrl{label: t.asm.NewLabel(), elseLabel: -1, nOut: len(ft.Results)})

	for t.r.Len() > 0 {
		pc := t.r.Pos
		op, err := t.r.ReadOpcode()
		if err != nil {
			return nil, err
		}
		if len(t.ctrls) == 0 {
			return nil, fmt.Errorf("copypatch: code after function end")
		}
		t.asm.SetWasmPC(pc)
		if err := t.instr(op, pc); err != nil {
			return nil, err
		}
	}
	code, err := t.asm.Finish()
	if err != nil {
		return nil, err
	}
	code.FuncIdx = fidx
	code.Name = m.FuncName(fidx)
	code.OSREntries = t.osr
	code.NumSlots = info.NumSlots()
	code.NumResults = len(ft.Results)
	code.NumParams = len(ft.Params)
	code.LocalTypes = info.LocalTypes
	return code, nil
}

func (t *tc) blockArity() (nIn, nOut int, err error) {
	bt, err := t.r.S33()
	if err != nil {
		return 0, 0, err
	}
	if bt >= 0 {
		ty := t.m.Types[bt]
		return len(ty.Params), len(ty.Results), nil
	}
	if bt == -64 {
		return 0, 0, nil
	}
	return 0, 1, nil
}

func (t *tc) emit(in mach.Instr) { t.asm.Emit(in) }

// transfer moves the top val operand slots down to dest positions.
func (t *tc) transfer(destHeight, val int) {
	srcBase := t.h - val
	if srcBase == destHeight {
		return
	}
	for i := 0; i < val; i++ {
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(srcBase + i))})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(destHeight + i))})
	}
}

func (t *tc) frameAt(d uint32) *ctrl { return &t.ctrls[len(t.ctrls)-1-int(d)] }

func (t *tc) branchVals(fr *ctrl) int {
	if fr.op == wasm.OpLoop {
		return fr.nIn
	}
	return fr.nOut
}

func (t *tc) epilogue() {
	nres := len(t.info.Results)
	for i := 0; i < nres; i++ {
		src := t.slot(t.h - nres + i)
		if src == i {
			continue
		}
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(src)})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(i)})
	}
	t.emit(mach.Instr{Op: mach.OReturn})
}

func (t *tc) instr(op wasm.Opcode, pc int) error {
	fr := &t.ctrls[len(t.ctrls)-1]
	if fr.unreachable {
		return t.skip(op)
	}
	switch op {
	case wasm.OpUnreachable:
		t.emit(mach.Instr{Op: mach.OTrap, A: int32(rt.TrapUnreachable), Imm: uint64(pc)})
		fr.unreachable = true
	case wasm.OpNop:
	case wasm.OpBlock:
		nIn, nOut, err := t.blockArity()
		if err != nil {
			return err
		}
		t.ctrls = append(t.ctrls, ctrl{op: wasm.OpBlock, label: t.asm.NewLabel(),
			elseLabel: -1, height: t.h - nIn, nIn: nIn, nOut: nOut})
	case wasm.OpLoop:
		nIn, nOut, err := t.blockArity()
		if err != nil {
			return err
		}
		bodyPC := t.r.Pos
		trips := t.info.Facts.TripsAt(bodyPC)
		if trips > 0 {
			t.emit(mach.Instr{Op: mach.OFuelPrepay, A: int32(trips), Imm: uint64(bodyPC)})
		}
		l := t.asm.NewLabel()
		t.asm.Bind(l)
		cp := mach.OCheckPoint
		if t.info.Facts.NoPollAt(bodyPC) {
			cp = mach.OCheckPointNoPoll
		}
		prepaid := int32(0)
		if trips > 0 {
			prepaid = 1
		}
		t.emit(mach.Instr{Op: cp, A: int32(t.nLocals + t.h), B: prepaid, Imm: uint64(bodyPC)})
		// OSR entry after the checkpoint: the interpreter charged this
		// header arrival at the back-edge it tiered up from.
		t.osr[bodyPC] = t.asm.Pos()
		t.ctrls = append(t.ctrls, ctrl{op: wasm.OpLoop, label: l,
			elseLabel: -1, height: t.h - nIn, nIn: nIn, nOut: nOut})
	case wasm.OpIf:
		nIn, nOut, err := t.blockArity()
		if err != nil {
			return err
		}
		t.h--
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h))})
		fr := ctrl{op: wasm.OpIf, label: t.asm.NewLabel(), elseLabel: t.asm.NewLabel(),
			height: t.h - nIn, nIn: nIn, nOut: nOut}
		t.asm.EmitBranch(mach.Instr{Op: mach.OBrIfZero, B: r0}, fr.elseLabel)
		t.ctrls = append(t.ctrls, fr)
	case wasm.OpElse:
		fr.hasElse = true
		t.transfer(fr.height, fr.nOut)
		t.asm.EmitBranch(mach.Instr{Op: mach.OJump}, fr.label)
		t.asm.Bind(fr.elseLabel)
		t.h = fr.height + fr.nIn
	case wasm.OpEnd:
		frv := *fr
		t.ctrls = t.ctrls[:len(t.ctrls)-1]
		if !frv.unreachable {
			t.transfer(frv.height, t.branchEndVals(&frv))
		}
		if frv.op == wasm.OpIf && !frv.hasElse && frv.elseLabel >= 0 {
			t.asm.Bind(frv.elseLabel)
		}
		if frv.op != wasm.OpLoop && frv.label >= 0 {
			t.asm.Bind(frv.label)
		}
		if len(t.ctrls) == 0 {
			t.h = frv.height + frv.nOut
			t.epilogue()
			return nil
		}
		t.h = frv.height + frv.nOut
	case wasm.OpBr:
		d, err := t.r.U32()
		if err != nil {
			return err
		}
		target := t.frameAt(d)
		t.transfer(target.height, t.branchVals(target))
		t.asm.EmitBranch(mach.Instr{Op: mach.OJump}, target.label)
		fr.unreachable = true
	case wasm.OpBrIf:
		d, err := t.r.U32()
		if err != nil {
			return err
		}
		t.h--
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h))})
		target := t.frameAt(d)
		vals := t.branchVals(target)
		if t.h-vals == target.height {
			t.asm.EmitBranch(mach.Instr{Op: mach.OBrIfNonZero, B: r0}, target.label)
		} else {
			skip := t.asm.NewLabel()
			t.asm.EmitBranch(mach.Instr{Op: mach.OBrIfZero, B: r0}, skip)
			t.transfer(target.height, vals)
			t.asm.EmitBranch(mach.Instr{Op: mach.OJump}, target.label)
			t.asm.Bind(skip)
		}
	case wasm.OpBrTable:
		n, err := t.r.U32()
		if err != nil {
			return err
		}
		depths := make([]uint32, n+1)
		for i := range depths {
			if depths[i], err = t.r.U32(); err != nil {
				return err
			}
		}
		t.h--
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h))})
		labels := make([]int, len(depths))
		type tramp struct {
			label int
			depth uint32
		}
		var tramps []tramp
		for i, d := range depths {
			target := t.frameAt(d)
			vals := t.branchVals(target)
			if t.h-vals == target.height {
				labels[i] = target.label
			} else {
				l := t.asm.NewLabel()
				labels[i] = l
				tramps = append(tramps, tramp{l, d})
			}
		}
		tidx := t.asm.NewTable(labels)
		t.emit(mach.Instr{Op: mach.OBrTable, A: int32(tidx), B: r0})
		for _, tr := range tramps {
			t.asm.Bind(tr.label)
			target := t.frameAt(tr.depth)
			t.transfer(target.height, t.branchVals(target))
			t.asm.EmitBranch(mach.Instr{Op: mach.OJump}, target.label)
		}
		fr.unreachable = true
	case wasm.OpReturn:
		t.epilogue()
		fr.unreachable = true
	case wasm.OpCall:
		fidx, err := t.r.U32()
		if err != nil {
			return err
		}
		ft, err := t.m.FuncTypeAt(fidx)
		if err != nil {
			return err
		}
		argBase := t.nLocals + t.h - len(ft.Params)
		t.emit(mach.Instr{Op: mach.OCall, A: int32(fidx), B: int32(argBase)})
		t.h += len(ft.Results) - len(ft.Params)
	case wasm.OpCallIndirect:
		typeIdx, err := t.r.U32()
		if err != nil {
			return err
		}
		tblIdx, err := t.r.U32()
		if err != nil {
			return err
		}
		ft := t.m.Types[typeIdx]
		t.h--
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r2, Imm: uint64(t.slot(t.h))})
		argBase := t.nLocals + t.h - len(ft.Params)
		t.emit(mach.Instr{Op: mach.OCallIndirect, A: int32(typeIdx), B: int32(argBase), C: r2, Imm: uint64(tblIdx)})
		t.h += len(ft.Results) - len(ft.Params)
	case wasm.OpDrop:
		t.h--
	case wasm.OpSelect:
		t.selectTemplate()
	case wasm.OpSelectT:
		n, err := t.r.U32()
		if err != nil {
			return err
		}
		if _, err := t.r.Take(int(n)); err != nil {
			return err
		}
		t.selectTemplate()
	case wasm.OpLocalGet:
		idx, err := t.r.U32()
		if err != nil {
			return err
		}
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(idx)})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h))})
		t.h++
	case wasm.OpLocalSet:
		idx, err := t.r.U32()
		if err != nil {
			return err
		}
		t.h--
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h))})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(idx)})
	case wasm.OpLocalTee:
		idx, err := t.r.U32()
		if err != nil {
			return err
		}
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h - 1))})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(idx)})
	case wasm.OpGlobalGet:
		idx, err := t.r.U32()
		if err != nil {
			return err
		}
		t.emit(mach.Instr{Op: mach.OGlobalGet, A: r0, Imm: uint64(idx)})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h))})
		t.h++
	case wasm.OpGlobalSet:
		idx, err := t.r.U32()
		if err != nil {
			return err
		}
		gt, _, _ := t.m.GlobalTypeAt(idx)
		t.h--
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h))})
		t.emit(mach.Instr{Op: mach.OGlobalSet, B: r0, C: int32(wasm.TagOf(gt)), Imm: uint64(idx)})
	case wasm.OpI32Const:
		v, err := t.r.S32()
		if err != nil {
			return err
		}
		t.pushConst(uint64(uint32(v)))
	case wasm.OpI64Const:
		v, err := t.r.S64()
		if err != nil {
			return err
		}
		t.pushConst(uint64(v))
	case wasm.OpF32Const:
		bits, err := t.r.F32()
		if err != nil {
			return err
		}
		t.pushConst(uint64(bits))
	case wasm.OpF64Const:
		bits, err := t.r.F64()
		if err != nil {
			return err
		}
		t.pushConst(bits)
	case wasm.OpMemorySize:
		if _, err := t.r.Byte(); err != nil {
			return err
		}
		t.emit(mach.Instr{Op: mach.OMemSize, A: r0})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h))})
		t.h++
	case wasm.OpMemoryGrow:
		if _, err := t.r.Byte(); err != nil {
			return err
		}
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h - 1))})
		t.emit(mach.Instr{Op: mach.OMemGrow, A: r0, B: r0})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h - 1))})
	case wasm.OpMemoryCopy:
		if _, err := t.r.Take(2); err != nil {
			return err
		}
		t.h -= 3
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h))})
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r1, Imm: uint64(t.slot(t.h + 1))})
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r2, Imm: uint64(t.slot(t.h + 2))})
		t.emit(mach.Instr{Op: mach.OMemCopy, A: r0, B: r1, C: r2})
	case wasm.OpMemoryFill:
		if _, err := t.r.Byte(); err != nil {
			return err
		}
		t.h -= 3
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h))})
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r1, Imm: uint64(t.slot(t.h + 1))})
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r2, Imm: uint64(t.slot(t.h + 2))})
		t.emit(mach.Instr{Op: mach.OMemFill, A: r0, B: r1, C: r2})
	case wasm.OpRefNull:
		if _, err := t.r.Byte(); err != nil {
			return err
		}
		t.pushConst(wasm.NullRef)
	case wasm.OpRefIsNull:
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h - 1))})
		t.emit(mach.Instr{Op: mach.OI64Eqz, A: r0, B: r0})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h - 1))})
	case wasm.OpRefFunc:
		fidx, err := t.r.U32()
		if err != nil {
			return err
		}
		t.pushConst(uint64(fidx) + 1)
	default:
		return t.numericTemplate(op, pc)
	}
	return nil
}

func (t *tc) branchEndVals(fr *ctrl) int { return fr.nOut }

func (t *tc) pushConst(bits uint64) {
	t.emit(mach.Instr{Op: mach.OStoreSlotConst, A: int32(t.slot(t.h)), Imm: bits})
	t.h++
}

func (t *tc) selectTemplate() {
	t.h -= 2
	t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h - 1))}) // true value
	t.emit(mach.Instr{Op: mach.OLoadSlot, A: r1, Imm: uint64(t.slot(t.h))})     // false value
	t.emit(mach.Instr{Op: mach.OLoadSlot, A: r2, Imm: uint64(t.slot(t.h + 1))}) // condition
	t.emit(mach.Instr{Op: mach.OSelect, A: r0, B: r1, C: r2})
	t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h - 1))})
}

// numericTemplate stamps out loads/stores around the arithmetic body.
// pc is the wasm offset of op, used to look up analysis facts.
func (t *tc) numericTemplate(op wasm.Opcode, pc int) error {
	switch op.Imm() {
	case wasm.ImmMem:
		if _, err := t.r.U32(); err != nil {
			return err
		}
		off, err := t.r.U32()
		if err != nil {
			return err
		}
		nc := t.info.Facts.InBoundsAt(pc)
		if mop, ok := loadTemplate(op); ok {
			if nc {
				mop = mach.Unchecked(mop)
			}
			t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h - 1))})
			t.emit(mach.Instr{Op: mop, A: r0, B: r0, Imm: uint64(off)})
			t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h - 1))})
			return nil
		}
		mop := storeTemplate(op)
		if nc {
			mop = mach.Unchecked(mop)
		}
		t.h -= 2
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h))})
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r1, Imm: uint64(t.slot(t.h + 1))})
		t.emit(mach.Instr{Op: mop, B: r0, C: r1, Imm: uint64(off)})
		return nil
	}
	params, _, ok := op.Sig()
	if !ok {
		return fmt.Errorf("copypatch: unsupported opcode %v", op)
	}
	switch len(params) {
	case 1:
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h - 1))})
		t.emit(mach.Instr{Op: mach.OGen1, A: r0, B: r0, Imm: uint64(op)})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h - 1))})
	case 2:
		t.h--
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r0, Imm: uint64(t.slot(t.h - 1))})
		t.emit(mach.Instr{Op: mach.OLoadSlot, A: r1, Imm: uint64(t.slot(t.h))})
		t.emit(mach.Instr{Op: mach.OGen2, A: r0, B: r0, C: r1, Imm: uint64(op)})
		t.emit(mach.Instr{Op: mach.OStoreSlot, B: r0, Imm: uint64(t.slot(t.h - 1))})
	default:
		return fmt.Errorf("copypatch: unexpected arity for %v", op)
	}
	return nil
}

func (t *tc) skip(op wasm.Opcode) error {
	switch op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
		if _, _, err := t.blockArity(); err != nil {
			return err
		}
		t.ctrls = append(t.ctrls, ctrl{op: op, label: -1, elseLabel: -1,
			unreachable: true, wasDead: true, height: t.h})
	case wasm.OpElse:
		fr := &t.ctrls[len(t.ctrls)-1]
		fr.hasElse = true
		if !fr.wasDead {
			t.asm.Bind(fr.elseLabel)
			t.h = fr.height + fr.nIn
			fr.unreachable = false
		}
	case wasm.OpEnd:
		fr := t.ctrls[len(t.ctrls)-1]
		t.ctrls = t.ctrls[:len(t.ctrls)-1]
		if fr.wasDead {
			return nil
		}
		if fr.op == wasm.OpIf && !fr.hasElse && fr.elseLabel >= 0 {
			t.asm.Bind(fr.elseLabel)
		}
		if fr.op != wasm.OpLoop && fr.label >= 0 {
			t.asm.Bind(fr.label)
		}
		t.h = fr.height + fr.nOut
		if len(t.ctrls) == 0 {
			t.epilogue()
			return nil
		}
		// The merge is reachable via branches or the if false edge.
		if fr.op != wasm.OpLoop {
			t.ctrls[len(t.ctrls)-1].unreachable = false
		}
	default:
		return t.r.SkipImm(op)
	}
	return nil
}

func loadTemplate(op wasm.Opcode) (mach.Op, bool) {
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load:
		return mach.OLd32, true
	case wasm.OpI64Load, wasm.OpF64Load:
		return mach.OLd64, true
	case wasm.OpI32Load8S:
		return mach.OLd8S32, true
	case wasm.OpI32Load8U:
		return mach.OLd8U32, true
	case wasm.OpI32Load16S:
		return mach.OLd16S32, true
	case wasm.OpI32Load16U:
		return mach.OLd16U32, true
	case wasm.OpI64Load8S:
		return mach.OLd8S64, true
	case wasm.OpI64Load8U:
		return mach.OLd8U64, true
	case wasm.OpI64Load16S:
		return mach.OLd16S64, true
	case wasm.OpI64Load16U:
		return mach.OLd16U64, true
	case wasm.OpI64Load32S:
		return mach.OLd32S64, true
	case wasm.OpI64Load32U:
		return mach.OLd32U64, true
	}
	return 0, false
}

func storeTemplate(op wasm.Opcode) mach.Op {
	switch op {
	case wasm.OpI32Store8, wasm.OpI64Store8:
		return mach.OSt8
	case wasm.OpI32Store16, wasm.OpI64Store16:
		return mach.OSt16
	case wasm.OpI32Store, wasm.OpF32Store, wasm.OpI64Store32:
		return mach.OSt32
	default:
		return mach.OSt64
	}
}
