package copypatch_test

import (
	"testing"

	"wizgo/internal/copypatch"
	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/mach"
	"wizgo/internal/spc"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

func build(t *testing.T) (*wasm.Module, []validate.FuncInfo) {
	t.Helper()
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("f", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	})
	acc := f.AddLocal(wasm.I32)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(acc).LocalGet(0).Op(wasm.OpI32Add).LocalSet(acc)
	f.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).LocalTee(0)
	f.I32Const(0).Op(wasm.OpI32GtS)
	f.BrIf(0)
	f.End()
	f.LocalGet(acc)
	f.End()
	b.Export("f", f.Idx)
	m := b.Module()
	infos, err := validate.Module(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, infos
}

// TestTemplateCodeShape: template compilation keeps the frame canonical
// — no register allocation decisions, so every operand round-trips
// through its slot and call sites need no spill code.
func TestTemplateCodeShape(t *testing.T) {
	m, infos := build(t)
	code, err := copypatch.Compile(m, 0, &m.Funcs[0], &infos[0])
	if err != nil {
		t.Fatal(err)
	}
	spcCode, err := spc.Compile(m, 0, &m.Funcs[0], &infos[0], nil, spc.Wizard())
	if err != nil {
		t.Fatal(err)
	}
	// Templates emit strictly more instructions than the abstract-
	// interpretation compiler (the code-quality price of compile speed).
	if len(code.Instrs) <= len(spcCode.Instrs) {
		t.Errorf("template code (%d) should be larger than spc code (%d)",
			len(code.Instrs), len(spcCode.Instrs))
	}
	// Templates use only the fixed scratch registers r0-r2.
	for _, in := range code.Instrs {
		if in.Op == mach.OLoadSlot && in.A > 2 {
			t.Errorf("template used register r%d", in.A)
		}
	}
	if len(code.OSREntries) != 1 {
		t.Errorf("loop checkpoint missing: %v", code.OSREntries)
	}
}

func TestTemplateEndToEnd(t *testing.T) {
	m, _ := build(t)
	inst, err := engine.New(engines.WasmNowLike(), nil).Instantiate(wasm.Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Call("f", wasm.ValI32(100))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I32() != 5050 {
		t.Errorf("sum 1..100 = %d", got[0].I32())
	}
}
