// Execution profiler: a sampling-free hotness monitor built from
// counter probes, the signal a tiering JIT consumes. Each profiled
// function gets an entry probe (pc 0 executes exactly once per call —
// loop back-edges never target offset 0, their targets point past the
// loop opcode) and one counter probe on every loop back-edge branch
// instruction, discovered from the validator's sidetable: an owner pc
// whose entry targets an earlier-or-equal offset is a backward branch,
// the same test the interpreter's OSR detection uses. Probes fire
// before the probed instruction in every tier, and compiled code
// intrinsifies *rt.CounterProbe to a direct increment, so the counts —
// and therefore the hot-function ranking — are identical whether the
// instance runs under the interpreter or a compiler tier.
package monitors

import (
	"fmt"
	"sort"
	"strings"

	"wizgo/internal/engine"
	"wizgo/internal/rt"
)

// FuncProfile is the execution profile of one function: how often it
// was entered and how many loop back-edge executions it accumulated
// ("ticks" — the classic hotness numerator).
type FuncProfile struct {
	FuncIdx uint32
	Name    string

	entry *rt.CounterProbe
	// edgePCs are the bytecode offsets of the function's backward
	// branches; edges holds the counter attached at each.
	edgePCs []int
	edges   []*rt.CounterProbe
}

// Calls returns the number of times the function was entered.
func (fp *FuncProfile) Calls() uint64 { return fp.entry.Count }

// Ticks returns the cumulative back-edge executions across the
// function's loops.
func (fp *FuncProfile) Ticks() uint64 {
	var n uint64
	for _, e := range fp.edges {
		n += e.Count
	}
	return n
}

// Profiler profiles one instance's functions via counter probes. Like
// all probe instrumentation it is per-instance state: attaching to one
// instance never perturbs others sharing the same compiled module.
type Profiler struct {
	inst *engine.Instance
	// positions[i] is the index-space position FuncProfile i was
	// attached at (it can differ from FuncIdx for re-exported imports).
	positions []uint32

	Profiles []*FuncProfile
}

// backEdgePCs returns the deduplicated bytecode offsets of f's backward
// branches. An owner pc whose sidetable entry targets an offset <= the
// owner is a loop back-edge (TargetIP points into an enclosing loop);
// a br_table owns several consecutive entries at one pc, hence the
// dedup.
func backEdgePCs(f *rt.FuncInst) []int {
	info := f.Info
	var pcs []int
	last := -1
	for i, owner := range info.Owners {
		e := &info.Sidetable[i]
		if int(e.TargetIP) <= int(owner) && int(owner) != last {
			pcs = append(pcs, int(owner))
			last = int(owner)
		}
	}
	return pcs
}

// AttachProfiler attaches entry and back-edge counter probes to every
// local function of the instance. Host functions and functions imported
// from other instances are skipped — their profile belongs to their
// owner. Attachment triggers per-function recompilation on compiler
// tiers; the recompiled code intrinsifies the counters, so steady-state
// profiling overhead is one increment per probe site.
func AttachProfiler(inst *engine.Instance) (*Profiler, error) {
	p := &Profiler{inst: inst}
	for i, f := range inst.RT.Funcs {
		if f.IsHost() || (f.Owner != nil && f.Owner != inst.RT) {
			continue
		}
		fp := &FuncProfile{
			FuncIdx: f.Idx,
			Name:    f.Name,
			entry:   &rt.CounterProbe{},
			edgePCs: backEdgePCs(f),
		}
		if err := inst.AttachProbe(uint32(i), 0, fp.entry); err != nil {
			return nil, fmt.Errorf("monitors: profiler entry probe func %d: %w", f.Idx, err)
		}
		for _, pc := range fp.edgePCs {
			c := &rt.CounterProbe{}
			fp.edges = append(fp.edges, c)
			if err := inst.AttachProbe(uint32(i), pc, c); err != nil {
				return nil, fmt.Errorf("monitors: profiler edge probe func %d pc %d: %w", f.Idx, pc, err)
			}
		}
		p.Profiles = append(p.Profiles, fp)
		p.positions = append(p.positions, uint32(i))
	}
	return p, nil
}

// Detach removes every probe the profiler attached, recompiling the
// affected functions back to their uninstrumented form. The collected
// counts remain readable.
func (p *Profiler) Detach() error {
	var firstErr error
	for i, fp := range p.Profiles {
		pos := p.positions[i]
		if err := p.inst.DetachProbes(pos, 0); err != nil && firstErr == nil {
			firstErr = err
		}
		for _, pc := range fp.edgePCs {
			if err := p.inst.DetachProbes(pos, pc); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Tier returns the engine preset name the profiled instance runs under.
func (p *Profiler) Tier() string { return p.inst.Engine.Config().Name }

// HotFunc is one row of the hotness report.
type HotFunc struct {
	FuncIdx uint32 `json:"func"`
	Name    string `json:"name,omitempty"`
	Calls   uint64 `json:"calls"`
	Ticks   uint64 `json:"ticks"`
}

// Hot returns the top-n functions ranked by back-edge ticks, then
// calls, then function index — a deterministic order, so two tiers that
// executed the same work report the same ranking.
func (p *Profiler) Hot(n int) []HotFunc {
	rows := make([]HotFunc, 0, len(p.Profiles))
	for _, fp := range p.Profiles {
		rows = append(rows, HotFunc{
			FuncIdx: fp.FuncIdx, Name: fp.Name,
			Calls: fp.Calls(), Ticks: fp.Ticks(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Ticks != rows[j].Ticks {
			return rows[i].Ticks > rows[j].Ticks
		}
		if rows[i].Calls != rows[j].Calls {
			return rows[i].Calls > rows[j].Calls
		}
		return rows[i].FuncIdx < rows[j].FuncIdx
	})
	if n > 0 && n < len(rows) {
		rows = rows[:n]
	}
	return rows
}

// Report renders the top-n hot functions as text.
func (p *Profiler) Report(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profiler (%s): %d functions\n", p.Tier(), len(p.Profiles))
	for _, h := range p.Hot(n) {
		name := h.Name
		if name == "" {
			name = fmt.Sprintf("func[%d]", h.FuncIdx)
		}
		fmt.Fprintf(&b, "  %-28s calls=%-10d ticks=%d\n", name, h.Calls, h.Ticks)
	}
	return b.String()
}
