package monitors_test

import (
	"reflect"
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/monitors"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
	"wizgo/internal/workloads"
)

// TestProfilerCountsExact: on the counted-loop module, one call with n
// iterations must report exactly 1 call and n back-edge ticks (the
// br_if instruction executes once per iteration), under both the
// interpreter and the intrinsifying compiler.
func TestProfilerCountsExact(t *testing.T) {
	const n = 57
	for _, cfg := range []engine.Config{engines.WizardINT(), engines.WizardSPC()} {
		inst, err := engine.New(cfg, nil).Instantiate(buildCounted())
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		prof, err := monitors.AttachProfiler(inst)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(prof.Profiles) != 1 {
			t.Fatalf("%s: %d profiles, want 1", cfg.Name, len(prof.Profiles))
		}
		if _, err := inst.Call("run", wasm.ValI32(n)); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		fp := prof.Profiles[0]
		if fp.Calls() != 1 {
			t.Errorf("%s: calls = %d, want 1", cfg.Name, fp.Calls())
		}
		if fp.Ticks() != n {
			t.Errorf("%s: ticks = %d, want %d", cfg.Name, fp.Ticks(), n)
		}
	}
}

// gemmHot runs polybench/gemm once under cfg with the profiler attached
// and returns the full ranking.
func gemmHot(t *testing.T, cfg engine.Config) []monitors.HotFunc {
	t.Helper()
	item := workloads.PolyBench()[0] // gemm
	inst, err := engine.New(cfg, nil).Instantiate(item.Bytes)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	prof, err := monitors.AttachProfiler(inst)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	return prof.Hot(0)
}

// TestProfilerTierIdentical: the acceptance property — the profiler's
// hot-function ranking for polybench/gemm is identical (same functions,
// same call counts, same tick counts, same order) under the interpreter
// and the SPC tier. Probes fire before the probed instruction in every
// tier, so the counts cannot diverge.
func TestProfilerTierIdentical(t *testing.T) {
	intHot := gemmHot(t, engines.WizardINT())
	spcHot := gemmHot(t, engines.WizardSPC())
	if len(intHot) == 0 {
		t.Fatal("empty profile")
	}
	if !reflect.DeepEqual(intHot, spcHot) {
		t.Fatalf("tier profiles differ:\nint: %+v\nspc: %+v", intHot, spcHot)
	}
	// gemm's kernel must actually have registered loop work.
	if intHot[0].Ticks == 0 {
		t.Fatalf("hottest function has no ticks: %+v", intHot[0])
	}
}

// TestProfilerAttachDetachIsolation: profiling is per-instance state.
// A second instance of the same compiled module must observe no probes
// and no counts; after Detach, further execution must not move the
// profiled counters.
func TestProfilerAttachDetachIsolation(t *testing.T) {
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(buildCounted())
	if err != nil {
		t.Fatal(err)
	}
	a, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cm.Instantiate()
	if err != nil {
		t.Fatal(err)
	}

	prof, err := monitors.AttachProfiler(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("run", wasm.ValI32(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call("run", wasm.ValI32(10)); err != nil {
		t.Fatal(err)
	}
	fp := prof.Profiles[0]
	if fp.Calls() != 1 || fp.Ticks() != 10 {
		t.Fatalf("profiled instance: calls=%d ticks=%d, want 1, 10", fp.Calls(), fp.Ticks())
	}
	// The sibling instance must be untouched: no probe set installed.
	for _, f := range b.RT.Funcs {
		if !f.Probes.Empty() {
			t.Fatalf("sibling instance func %d has probes", f.Idx)
		}
	}

	if err := prof.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("run", wasm.ValI32(10)); err != nil {
		t.Fatal(err)
	}
	if fp.Calls() != 1 || fp.Ticks() != 10 {
		t.Fatalf("counters moved after Detach: calls=%d ticks=%d", fp.Calls(), fp.Ticks())
	}
	for _, f := range a.RT.Funcs {
		if !f.Probes.Empty() {
			t.Fatalf("func %d still has probes after Detach", f.Idx)
		}
	}
}

// TestProfilerHookZeroAlloc: the profiler's per-call hook is a counter
// probe; firing it through the interpreter's shared FireAll path must
// not allocate (the direct-dispatch fast path added for exactly this).
func TestProfilerHookZeroAlloc(t *testing.T) {
	set := rt.NewProbeSet(8)
	set.Insert(0, &rt.CounterProbe{})
	ctx := &rt.Context{Stack: rt.NewValueStack(16, false)}
	fi := rt.FrameInfo{SP: 1}
	if n := testing.AllocsPerRun(1000, func() { set.FireAll(ctx, fi, 0) }); n != 0 {
		t.Errorf("FireAll with counter probe allocates %v/op, want 0", n)
	}
	// A TosProbe fires allocation-free through the same path.
	set2 := rt.NewProbeSet(8)
	set2.Insert(0, &monitors.BranchCounter{})
	if n := testing.AllocsPerRun(1000, func() { set2.FireAll(ctx, fi, 0) }); n != 0 {
		t.Errorf("FireAll with tos probe allocates %v/op, want 0", n)
	}
}
