package monitors_test

import (
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/monitors"
	"wizgo/internal/spc"
	"wizgo/internal/wasm"
)

// buildCounted returns a module with a loop of exactly n iterations (one
// conditional back-edge) and an if taken on even iterations.
func buildCounted() []byte {
	b := wasm.NewBuilder()
	f := b.NewFunc("run", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	})
	i := f.AddLocal(wasm.I32)
	evens := f.AddLocal(wasm.I32)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32And).Op(wasm.OpI32Eqz)
	f.If(wasm.BlockEmpty)
	f.LocalGet(evens).I32Const(1).Op(wasm.OpI32Add).LocalSet(evens)
	f.End()
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
	f.LocalGet(0).Op(wasm.OpI32LtS)
	f.BrIf(0)
	f.End()
	f.LocalGet(evens)
	f.End()
	b.Export("run", f.Idx)
	return b.Encode()
}

// expectCounts runs the branch monitor under cfg and checks exact fire
// counts: the loop has n iterations, each fires the if-site once and the
// br_if site once.
func expectCounts(t *testing.T, cfg engine.Config, n int32) {
	t.Helper()
	inst, err := engine.New(cfg, nil).Instantiate(buildCounted())
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	mon, err := monitors.AttachBranchMonitor(inst)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	if len(mon.Counters) != 2 {
		t.Fatalf("%s: %d branch sites, want 2 (if, br_if)", cfg.Name, len(mon.Counters))
	}
	got, err := inst.Call("run", wasm.ValI32(n))
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	if got[0].I32() != (n+1)/2 {
		t.Fatalf("%s: evens = %d", cfg.Name, got[0].I32())
	}
	if mon.TotalFires() != uint64(2*n) {
		t.Errorf("%s: %d fires, want %d", cfg.Name, mon.TotalFires(), 2*n)
	}
	for _, c := range mon.Counters {
		if c.Total != uint64(n) {
			t.Errorf("%s: site +%d fired %d times, want %d", cfg.Name, c.PC, c.Total, n)
		}
	}
	// The if condition (eqz of parity) is true for even i: ceil(n/2)
	// takes; the br_if is taken n-1 times.
	var ifSite, brSite *monitors.BranchCounter
	for _, c := range mon.Counters {
		if ifSite == nil || c.PC < ifSite.PC {
			ifSite, brSite = c, ifSite
		} else {
			brSite = c
		}
	}
	if ifSite.Taken != uint64((n+1)/2) {
		t.Errorf("%s: if taken %d, want %d", cfg.Name, ifSite.Taken, (n+1)/2)
	}
	if brSite.Taken != uint64(n-1) {
		t.Errorf("%s: br_if taken %d, want %d", cfg.Name, brSite.Taken, n-1)
	}
}

// TestBranchMonitorCountsAgree: the interpreter, the unoptimized probe
// path, and the intrinsified probe path must observe identical profiles
// — the transparency property of Section IV-D.
func TestBranchMonitorCountsAgree(t *testing.T) {
	const n = 101
	expectCounts(t, engines.WizardINT(), n)
	expectCounts(t, engines.WizardSPC(), n) // optjit: intrinsified
	expectCounts(t, engines.SPCVariant("jit-plain", func(c *spc.Config) {
		c.OptProbes = false // jit: runtime probe calls
	}), n)
}

// TestProbeSitesCompileToIntrinsics: under optjit, the branch monitor
// produces direct probe instructions, not runtime calls.
func TestProbeSitesCompileToIntrinsics(t *testing.T) {
	inst, err := engine.New(engines.WizardSPC(), nil).Instantiate(buildCounted())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := monitors.AttachBranchMonitor(inst); err != nil {
		t.Fatal(err)
	}
	f := inst.RT.Funcs[0]
	code := f.Compiled.(interface{ Disassemble() string })
	d := code.Disassemble()
	if !contains(d, "probe.tos") {
		t.Errorf("expected intrinsified probe.tos in:\n%s", d)
	}
	if contains(d, "probe.fire") {
		t.Errorf("unoptimized probe.fire present under optjit:\n%s", d)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestDynamicProbeAttachDeopt: attaching a probe to a function with
// compiled code invalidates it; execution still completes correctly and
// the probe fires (via recompile or deopt).
func TestDynamicProbeAttachDeopt(t *testing.T) {
	inst, err := engine.New(engines.WizardSPC(), nil).Instantiate(buildCounted())
	if err != nil {
		t.Fatal(err)
	}
	// First run without probes.
	if _, err := inst.Call("run", wasm.ValI32(10)); err != nil {
		t.Fatal(err)
	}
	// Attach afterwards: code must be recompiled with the probe.
	mon, err := monitors.AttachBranchMonitor(inst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Call("run", wasm.ValI32(10))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I32() != 5 {
		t.Fatalf("result %d", got[0].I32())
	}
	if mon.TotalFires() == 0 {
		t.Error("probes attached after compilation never fired")
	}
}
