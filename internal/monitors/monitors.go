// Package monitors provides the instrumentation tools built on the
// engine's probe API, in the style of Wizard's monitors. The branch
// monitor is the paper's Figure 6 workload: a local probe at every
// conditional branch that reads the top-of-value-stack (the branch
// condition) and profiles its outcome. Because it only needs the
// top-of-stack, the single-pass compiler can intrinsify it (the "optjit"
// configuration); the unoptimized path allocates an accessor object per
// fire (the "jit" and "int" configurations).
package monitors

import (
	"fmt"
	"sort"

	"wizgo/internal/engine"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// BranchCounter profiles one conditional branch site. It implements
// rt.TosProbe, so optimizing probe compilation can pass the condition
// value directly.
type BranchCounter struct {
	FuncIdx uint32
	PC      int
	Taken   uint64
	Total   uint64
}

// Fire implements rt.Probe (the slow path through the accessor).
func (b *BranchCounter) Fire(a *rt.Accessor) { b.FireTos(a.Top()) }

// FireTos implements rt.TosProbe (the intrinsified path).
func (b *BranchCounter) FireTos(bits uint64) {
	b.Total++
	if uint32(bits) != 0 {
		b.Taken++
	}
}

// BranchMonitor aggregates the branch counters of one instance.
type BranchMonitor struct {
	Counters []*BranchCounter
}

// AttachBranchMonitor scans every function of the instance for
// conditional branches (br_if and if) and attaches a counter probe at
// each site. Functions imported from other instances are skipped: the
// probe belongs to their owner. AttachProbe takes a POSITION in the
// instance's function index space — a cross-instance import keeps its
// owner's FuncInst.Idx, so positions and Idx values can differ.
func AttachBranchMonitor(inst *engine.Instance) (*BranchMonitor, error) {
	mon := &BranchMonitor{}
	for i, f := range inst.RT.Funcs {
		if f.IsHost() || (f.Owner != nil && f.Owner != inst.RT) {
			continue
		}
		pcs, err := CondBranchPCs(f.Decl.Body)
		if err != nil {
			return nil, fmt.Errorf("monitors: func %d: %w", f.Idx, err)
		}
		for _, pc := range pcs {
			c := &BranchCounter{FuncIdx: f.Idx, PC: pc}
			mon.Counters = append(mon.Counters, c)
			if err := inst.AttachProbe(uint32(i), pc, c); err != nil {
				return nil, err
			}
		}
	}
	return mon, nil
}

// CondBranchPCs returns the bytecode offsets of all conditional branches
// (br_if and if) in a function body.
func CondBranchPCs(body []byte) ([]int, error) {
	var pcs []int
	r := wasm.NewReader(body)
	for r.Len() > 0 {
		pc := r.Pos
		op, err := r.ReadOpcode()
		if err != nil {
			return nil, err
		}
		if op == wasm.OpBrIf || op == wasm.OpIf {
			pcs = append(pcs, pc)
		}
		if err := r.SkipImm(op); err != nil {
			return nil, err
		}
	}
	return pcs, nil
}

// TotalFires returns the number of probe firings observed.
func (m *BranchMonitor) TotalFires() uint64 {
	var n uint64
	for _, c := range m.Counters {
		n += c.Total
	}
	return n
}

// Hottest returns the n most-fired branch sites, for report output.
func (m *BranchMonitor) Hottest(n int) []*BranchCounter {
	sorted := make([]*BranchCounter, len(m.Counters))
	copy(sorted, m.Counters)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total > sorted[j].Total })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// Report renders a short textual profile.
func (m *BranchMonitor) Report(n int) string {
	s := fmt.Sprintf("branch monitor: %d sites, %d fires\n", len(m.Counters), m.TotalFires())
	for _, c := range m.Hottest(n) {
		ratio := 0.0
		if c.Total > 0 {
			ratio = float64(c.Taken) / float64(c.Total)
		}
		s += fmt.Sprintf("  func %d +%d: %d fires, %.1f%% taken\n",
			c.FuncIdx, c.PC, c.Total, ratio*100)
	}
	return s
}
