// Package heap implements the simulated host garbage collector the
// value-tag experiments need: a mark-sweep heap of host objects
// referenced from Wasm as externref values. Roots are found by walking
// the execution frames of a context — via value tags (scan any slot
// whose tag says "ref"; Wizard's strategy) or via stackmaps (per
// call-site metadata recorded by MAP-feature compilers; the Web engines'
// strategy). Both walks are implemented so tests can verify they find
// identical root sets, the correctness property that makes the paper's
// design comparison meaningful.
package heap

import (
	"fmt"

	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// Object is a host-heap object. Refs lets tests build object graphs so
// that mark-sweep has real transitive work to do.
type Object struct {
	Payload uint64
	Refs    []uint64 // handles of referenced objects
	marked  bool
	dead    bool
}

// Heap is a non-moving mark-sweep heap. Handles are 1-based indices so
// that handle 0 is the null reference.
type Heap struct {
	objects []*Object
	// Collections counts completed GC cycles.
	Collections int
	// LastLive and LastSwept record the outcome of the last cycle.
	LastLive  int
	LastSwept int
	// RootScanMode selects how frames are walked.
	RootScanMode ScanMode
}

// ScanMode selects the root-finding strategy.
type ScanMode int

const (
	// ScanTags walks every live slot and checks its value tag —
	// Wizard's strategy, requiring no compiler metadata.
	ScanTags ScanMode = iota
	// ScanStackmaps uses per-callsite stackmaps for JIT frames and
	// tags for interpreter frames — the Web engines' strategy.
	ScanStackmaps
)

// New returns an empty heap.
func New(mode ScanMode) *Heap {
	return &Heap{RootScanMode: mode}
}

// Alloc creates an object and returns its handle.
func (h *Heap) Alloc(payload uint64, refs ...uint64) uint64 {
	h.objects = append(h.objects, &Object{Payload: payload, Refs: refs})
	return uint64(len(h.objects))
}

// Get resolves a handle; nil for null, dead or out-of-range handles.
func (h *Heap) Get(handle uint64) *Object {
	if handle == 0 || int(handle) > len(h.objects) {
		return nil
	}
	o := h.objects[handle-1]
	if o.dead {
		return nil
	}
	return o
}

// Size returns the number of live (non-swept) objects.
func (h *Heap) Size() int {
	n := 0
	for _, o := range h.objects {
		if !o.dead {
			n++
		}
	}
	return n
}

// StackRoots walks the execution frames of ctx and returns the handles
// found in root slots, in deterministic stack order.
func (h *Heap) StackRoots(ctx *rt.Context) ([]uint64, error) {
	var roots []uint64
	seen := make(map[int]bool) // slot indices already scanned
	for i := len(ctx.Frames) - 1; i >= 0; i-- {
		fr := &ctx.Frames[i]
		var err error
		roots, err = h.frameRoots(ctx, fr, seen, roots)
		if err != nil {
			return nil, err
		}
	}
	return roots, nil
}

func (h *Heap) frameRoots(ctx *rt.Context, fr *rt.FrameInfo, seen map[int]bool, roots []uint64) ([]uint64, error) {
	useStackmaps := h.RootScanMode == ScanStackmaps && fr.Kind == rt.FrameJIT
	if useStackmaps {
		code, ok := fr.Func.Compiled.(interface{ StackmapAt(pc int) ([]int32, bool) })
		if !ok {
			return nil, fmt.Errorf("heap: stackmap scan requested but code has no stackmaps (func %d)", fr.Func.Idx)
		}
		slots, ok := code.StackmapAt(fr.PC)
		if !ok {
			return nil, fmt.Errorf("heap: no stackmap at func %d pc %d", fr.Func.Idx, fr.PC)
		}
		for _, rel := range slots {
			abs := fr.VFP + int(rel)
			if seen[abs] {
				continue
			}
			seen[abs] = true
			if hdl := ctx.Stack.Slots[abs]; hdl != wasm.NullRef {
				roots = append(roots, hdl)
			}
		}
		return roots, nil
	}

	// Tag scan: every slot in [VFP, SP) whose tag marks a reference.
	tags := ctx.Stack.Tags
	if tags == nil {
		return nil, fmt.Errorf("heap: tag scan requested but the value stack has no tags")
	}
	var localTags []wasm.Tag
	if fr.Func.Info != nil {
		// Lazy local tagging support: reconstruct local tags from the
		// static declarations rather than trusting stored tags.
		localTags = rt.TagsForLocals(fr.Func)
	}
	for s := fr.VFP; s < fr.SP; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		tag := tags[s]
		if localTags != nil && s-fr.VFP < len(localTags) {
			tag = localTags[s-fr.VFP]
		}
		if tag == wasm.TagRef {
			if hdl := ctx.Stack.Slots[s]; hdl != wasm.NullRef {
				roots = append(roots, hdl)
			}
		}
	}
	return roots, nil
}

// Collect runs a full mark-sweep cycle using the frames of ctx (plus
// extraRoots, e.g. globals) as the root set. Returns the number of
// objects swept.
func (h *Heap) Collect(ctx *rt.Context, extraRoots ...uint64) (int, error) {
	roots, err := h.StackRoots(ctx)
	if err != nil {
		return 0, err
	}
	roots = append(roots, extraRoots...)

	// Mark.
	var stack []uint64
	stack = append(stack, roots...)
	for len(stack) > 0 {
		hdl := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o := h.Get(hdl)
		if o == nil || o.marked {
			continue
		}
		o.marked = true
		stack = append(stack, o.Refs...)
	}

	// Sweep.
	swept, live := 0, 0
	for _, o := range h.objects {
		if o.dead {
			continue
		}
		if o.marked {
			o.marked = false
			live++
		} else {
			o.dead = true
			swept++
		}
	}
	h.Collections++
	h.LastLive = live
	h.LastSwept = swept
	return swept, nil
}
