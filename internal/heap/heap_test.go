package heap_test

import (
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/heap"
	"wizgo/internal/rt"
	"wizgo/internal/spc"
	"wizgo/internal/wasm"
)

// buildRefModule returns a module that keeps externref values alive in
// locals and on the operand stack across a host call, so a GC triggered
// inside the host call must find them as roots.
func buildRefModule() []byte {
	b := wasm.NewBuilder()
	gcft := wasm.FuncType{}
	gcIdx := b.ImportFunc("env", "gc", gcft)
	ft := wasm.FuncType{
		Params:  []wasm.ValueType{wasm.ExternRef, wasm.ExternRef},
		Results: []wasm.ValueType{wasm.I32},
	}
	f := b.NewFunc("hold", ft)
	l := f.AddLocal(wasm.ExternRef)
	f.LocalGet(0).LocalSet(l) // ref alive in a declared local
	f.LocalGet(1)             // ref alive on the operand stack
	f.Call(gcIdx)             // host call triggers a collection
	f.Op(wasm.OpRefIsNull)
	f.End()
	b.Export("hold", f.Idx)
	return b.Encode()
}

// runGC executes the module under cfg with the given scan mode, forcing
// a collection during the host call, and returns the heap.
func runGC(t *testing.T, cfg engine.Config, mode heap.ScanMode) *heap.Heap {
	t.Helper()
	h := heap.New(mode)
	linker := engine.NewLinker().Func("env", "gc", wasm.FuncType{},
		func(ctx *rt.Context, args, results []uint64) error {
			_, err := h.Collect(ctx)
			return err
		})
	inst, err := engine.New(cfg, linker).Instantiate(buildRefModule())
	if err != nil {
		t.Fatal(err)
	}
	inst.Ctx.Heap = h

	// Allocate three objects; only two are passed as arguments (the
	// third is garbage), and the second references a fourth.
	dep := h.Alloc(400)
	a := h.Alloc(100)
	bb := h.Alloc(200, dep)
	h.Alloc(300) // garbage

	res, err := inst.Call("hold", wasm.ValRef(a), wasm.ValRef(bb))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].I32() != 0 {
		t.Fatalf("operand ref was null after GC")
	}
	if h.Collections != 1 {
		t.Fatalf("expected 1 collection, got %d", h.Collections)
	}
	if h.Get(a) == nil || h.Get(bb) == nil || h.Get(dep) == nil {
		t.Fatal("live object was swept")
	}
	return h
}

// TestGCWithValueTags: Wizard's strategy — the interpreter and the
// tag-emitting compiler both keep tags accurate at observation points.
func TestGCWithValueTags(t *testing.T) {
	for _, cfg := range []engine.Config{
		engines.WizardINT(),
		engines.WizardSPC(), // on-demand tags
		engines.SPCVariant("eager", func(c *spc.Config) { c.Tags = rt.TagsEager }),
	} {
		h := runGC(t, cfg, heap.ScanTags)
		if h.LastSwept != 1 {
			t.Errorf("%s: swept %d, want 1 (the garbage object)", cfg.Name, h.LastSwept)
		}
		if h.LastLive != 3 {
			t.Errorf("%s: live %d, want 3", cfg.Name, h.LastLive)
		}
	}
}

// TestGCWithStackmaps: the Web-engine strategy over MAP-compiled code.
func TestGCWithStackmaps(t *testing.T) {
	cfg := engines.LiftoffLike()
	cfg.Tags = true // tag array still present for interpreter frames
	h := runGC(t, cfg, heap.ScanStackmaps)
	if h.LastSwept != 1 || h.LastLive != 3 {
		t.Errorf("stackmap scan: swept %d live %d, want 1/3", h.LastSwept, h.LastLive)
	}
}

// TestTagAndStackmapRootsAgree is the key correctness property behind
// the paper's comparison: both strategies must find the same roots.
func TestTagAndStackmapRootsAgree(t *testing.T) {
	var tagRoots, mapRoots []uint64
	grab := func(mode heap.ScanMode, dst *[]uint64) {
		h := heap.New(mode)
		linker := engine.NewLinker().Func("env", "gc", wasm.FuncType{},
			func(ctx *rt.Context, args, results []uint64) error {
				roots, err := h.StackRoots(ctx)
				if err != nil {
					return err
				}
				*dst = roots
				return nil
			})
		cfg := engines.LiftoffLike()
		cfg.Tags = true
		inst, err := engine.New(cfg, linker).Instantiate(buildRefModule())
		if err != nil {
			t.Fatal(err)
		}
		a := h.Alloc(1)
		bb := h.Alloc(2)
		if _, err := inst.Call("hold", wasm.ValRef(a), wasm.ValRef(bb)); err != nil {
			t.Fatal(err)
		}
	}
	grab(heap.ScanTags, &tagRoots)
	grab(heap.ScanStackmaps, &mapRoots)

	set := func(xs []uint64) map[uint64]bool {
		m := map[uint64]bool{}
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	ts, ms := set(tagRoots), set(mapRoots)
	if len(ts) != len(ms) {
		t.Fatalf("tag roots %v != stackmap roots %v", tagRoots, mapRoots)
	}
	for r := range ts {
		if !ms[r] {
			t.Fatalf("root %d found by tags but not stackmaps", r)
		}
	}
}

func TestMarkSweepTransitive(t *testing.T) {
	h := heap.New(heap.ScanTags)
	leaf := h.Alloc(1)
	mid := h.Alloc(2, leaf)
	root := h.Alloc(3, mid)
	h.Alloc(4) // garbage cycle-free
	ctx := &rt.Context{Stack: rt.NewValueStack(16, true)}
	swept, err := h.Collect(ctx, root)
	if err != nil {
		t.Fatal(err)
	}
	if swept != 1 {
		t.Errorf("swept %d, want 1", swept)
	}
	if h.Get(leaf) == nil || h.Get(mid) == nil || h.Get(root) == nil {
		t.Error("transitively reachable object swept")
	}
	if h.Size() != 3 {
		t.Errorf("size %d, want 3", h.Size())
	}
}

func TestNullAndDeadHandles(t *testing.T) {
	h := heap.New(heap.ScanTags)
	if h.Get(0) != nil {
		t.Error("null handle must resolve to nil")
	}
	if h.Get(99) != nil {
		t.Error("out-of-range handle must resolve to nil")
	}
	obj := h.Alloc(7)
	ctx := &rt.Context{Stack: rt.NewValueStack(16, true)}
	if _, err := h.Collect(ctx); err != nil {
		t.Fatal(err)
	}
	if h.Get(obj) != nil {
		t.Error("unreferenced object must be swept")
	}
}
