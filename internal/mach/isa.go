// Package mach is the execution substrate that stands in for native
// machine code in this reproduction. Real Wizard-SPC emits x86-64 into
// executable pages; a Go library cannot portably do that (the JIT would
// fight the Go runtime), so the compilers in this repository emit
// "MachCode": a compact, register-based, linear instruction format run
// by a tight dispatch loop over a 16-entry register file.
//
// MachCode preserves every property the paper measures about baseline-
// compiled code:
//
//   - one dispatch per *machine* instruction rather than per Wasm
//     instruction (local.get/const usually compile to nothing);
//   - explicit register allocation — values live in registers until
//     spilled to the shared value stack;
//   - immediate operand forms (the paper's "instruction selection");
//   - fused compare-and-branch (the paper's peephole optimization);
//   - explicit value-tag stores, so tagging strategies differ in real
//     instruction counts;
//   - a machine-pc ↔ bytecode-pc mapping enabling OSR (tier-up) and
//     deopt (tier-down) at canonical frame states.
package mach

import (
	"fmt"

	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// NumRegs is the size of the register file. Baseline compilers allocate
// from AllocatableRegs; the remainder are assembler temporaries, the
// analog of reserved machine registers (VFP, instance, memory base).
const (
	NumRegs         = 32
	AllocatableRegs = 12
)

// Op is a MachCode opcode.
type Op uint16

// Instruction operand conventions: A is the destination register unless
// stated otherwise; B and C are source registers; Imm carries constants,
// value-stack slot indices (frame-relative), memory offsets, or branch
// targets (machine pcs).
const (
	ONop Op = iota

	// Data movement.
	OConst     // r[A] = Imm
	OMov       // r[A] = r[B]
	OLoadSlot  // r[A] = slots[vfp+Imm]
	OStoreSlot // slots[vfp+Imm] = r[B]
	OStoreSlotConst
	// OStoreSlotConst: slots[vfp+A] = Imm (constant spill without
	// occupying a register — possible because abstract values model
	// constants).
	OStoreTag // tags[vfp+Imm] = Tag(A)
	OSelect   // if r[C] == 0 { r[A] = r[B] } (dst preloaded with true value)

	// Control flow. Imm is the target machine pc.
	OJump
	OBrIfZero    // if u32(r[B]) == 0 jump
	OBrIfNonZero // if u32(r[B]) != 0 jump
	OBrTable     // jump Tables[A][min(u32(r[B]), len-1)]

	// Fused compare-and-branch, i32 (registers B ? C).
	OBrI32Eq
	OBrI32Ne
	OBrI32LtS
	OBrI32LtU
	OBrI32GtS
	OBrI32GtU
	OBrI32LeS
	OBrI32LeU
	OBrI32GeS
	OBrI32GeU
	// Fused compare-and-branch, i32 register B vs constant C.
	OBrI32EqImm
	OBrI32NeImm
	OBrI32LtSImm
	OBrI32LtUImm
	OBrI32GtSImm
	OBrI32GtUImm
	OBrI32LeSImm
	OBrI32LeUImm
	OBrI32GeSImm
	OBrI32GeUImm
	// Fused compare-and-branch, i64 (registers B ? C).
	OBrI64Eq
	OBrI64Ne
	OBrI64LtS
	OBrI64LtU
	OBrI64GtS
	OBrI64GtU
	OBrI64LeS
	OBrI64LeU
	OBrI64GeS
	OBrI64GeU

	// Calls. B is the frame-relative slot of the first argument.
	OCall         // call function index A
	OCallIndirect // call_indirect: type index A, element index in r[C], table index Imm
	OReturn

	// i32 arithmetic, r[A] = r[B] op r[C].
	OI32Add
	OI32Sub
	OI32Mul
	OI32DivS
	OI32DivU
	OI32RemS
	OI32RemU
	OI32And
	OI32Or
	OI32Xor
	OI32Shl
	OI32ShrS
	OI32ShrU
	// i32 arithmetic with immediate, r[A] = r[B] op Imm.
	OI32AddImm
	OI32SubImm
	OI32MulImm
	OI32AndImm
	OI32OrImm
	OI32XorImm
	OI32ShlImm
	OI32ShrSImm
	OI32ShrUImm

	// i64 arithmetic.
	OI64Add
	OI64Sub
	OI64Mul
	OI64DivS
	OI64DivU
	OI64RemS
	OI64RemU
	OI64And
	OI64Or
	OI64Xor
	OI64Shl
	OI64ShrS
	OI64ShrU
	OI64AddImm
	OI64SubImm
	OI64MulImm
	OI64AndImm
	OI64OrImm
	OI64XorImm
	OI64ShlImm
	OI64ShrSImm
	OI64ShrUImm

	// Comparisons producing 0/1 in r[A].
	OI32Eqz
	OI32Eq
	OI32Ne
	OI32LtS
	OI32LtU
	OI32GtS
	OI32GtU
	OI32LeS
	OI32LeU
	OI32GeS
	OI32GeU
	OI64Eqz
	OI64Eq
	OI64Ne
	OI64LtS
	OI64LtU
	OI64GtS
	OI64GtU
	OI64LeS
	OI64LeU
	OI64GeS
	OI64GeU
	OF32Eq
	OF32Ne
	OF32Lt
	OF32Gt
	OF32Le
	OF32Ge
	OF64Eq
	OF64Ne
	OF64Lt
	OF64Gt
	OF64Le
	OF64Ge

	// f32 arithmetic.
	OF32Add
	OF32Sub
	OF32Mul
	OF32Div
	OF32Min
	OF32Max
	OF32Neg
	OF32Abs
	OF32Sqrt

	// f64 arithmetic.
	OF64Add
	OF64Sub
	OF64Mul
	OF64Div
	OF64Min
	OF64Max
	OF64Neg
	OF64Abs
	OF64Sqrt

	// Common conversions.
	OI32WrapI64
	OI64ExtendI32S
	OI64ExtendI32U
	OF64ConvertI32S
	OF64ConvertI32U
	OF64ConvertI64S
	OF64ConvertI64U
	OF32ConvertI32S
	OF32DemoteF64
	OF64PromoteF32
	// Trapping truncations.
	OI32TruncF64S
	OI32TruncF64U
	OI64TruncF64S
	OI64TruncF64U
	OI32TruncF32S
	OI32TruncF32U
	OI64TruncF32S
	OI64TruncF32U

	// Generic fallbacks for the long tail of numeric ops: Imm holds the
	// Wasm opcode, evaluated via the shared scalar semantics.
	OGen1 // r[A] = eval(Imm, r[B])
	OGen2 // r[A] = eval(Imm, r[B], r[C])

	// Memory. Address register B, static offset Imm, value register C
	// for stores / destination A for loads.
	OLd8S32
	OLd8U32
	OLd16S32
	OLd16U32
	OLd32
	OLd8S64
	OLd8U64
	OLd16S64
	OLd16U64
	OLd32S64
	OLd32U64
	OLd64
	OSt8
	OSt16
	OSt32
	OSt64
	OMemSize // r[A] = pages
	OMemGrow // r[A] = grow(r[B])
	OMemCopy // dst r[A], src r[B], len r[C]
	OMemFill // dst r[A], val r[B], len r[C]

	// Globals. Imm is the global index.
	OGlobalGet // r[A] = globals[Imm]
	OGlobalSet // globals[Imm] = r[B], tag = Tag(C)

	// Traps and tier transitions.
	OTrap       // trap kind A at wasm pc Imm
	OCheckPoint // loop header: OSR entry / deopt check at wasm pc Imm
	OUnreachable

	// Instrumentation.
	OProbeFire    // fire probes at wasm pc Imm via the runtime (slow path)
	OProbeCounter // Probes[A].(*rt.CounterProbe).Count++
	OProbeTos     // Probes[A].(TosProbe).FireTos(slots[vfp+Imm])

	// Unchecked memory accesses, selected by compilers when the static
	// analysis (internal/analysis) proved the effective address in
	// bounds for the module's minimum memory size. Same operand layout
	// and semantics as the checked forms minus the bounds check; under
	// `-tags checked` the check is kept as a soundness assertion
	// (rt.Checked). Stores still mark dirty granules.
	OLd8S32NC
	OLd8U32NC
	OLd16S32NC
	OLd16U32NC
	OLd32NC
	OLd8S64NC
	OLd8U64NC
	OLd16S64NC
	OLd16U64NC
	OLd32S64NC
	OLd32U64NC
	OLd64NC
	OSt8NC
	OSt16NC
	OSt32NC
	OSt64NC

	// OCheckPointNoPoll is a loop-header checkpoint whose interrupt
	// poll is elided because the analysis proved the loop terminates
	// within a bounded trip count with no calls inside. Invalidation
	// deopt and fuel accounting are unchanged — only the poll goes.
	OCheckPointNoPoll

	// OFuelPrepay charges a proven-exact-trip loop's whole fuel cost at
	// entry (rt.Context.FuelPrepay): A is the trip count, Imm the wasm
	// pc of the loop's first body instruction. Emitted before the
	// header label, so back-edges (and OSR entries) skip it; the header
	// checkpoint carries B=1 and charges per arrival only when prepay
	// degraded to per-iteration mode.
	OFuelPrepay

	opCount
)

// Unchecked maps a memory-access op to its no-bounds-check variant, or
// returns op unchanged when it has none.
func Unchecked(op Op) Op {
	switch op {
	case OLd8S32:
		return OLd8S32NC
	case OLd8U32:
		return OLd8U32NC
	case OLd16S32:
		return OLd16S32NC
	case OLd16U32:
		return OLd16U32NC
	case OLd32:
		return OLd32NC
	case OLd8S64:
		return OLd8S64NC
	case OLd8U64:
		return OLd8U64NC
	case OLd16S64:
		return OLd16S64NC
	case OLd16U64:
		return OLd16U64NC
	case OLd32S64:
		return OLd32S64NC
	case OLd32U64:
		return OLd32U64NC
	case OLd64:
		return OLd64NC
	case OSt8:
		return OSt8NC
	case OSt16:
		return OSt16NC
	case OSt32:
		return OSt32NC
	case OSt64:
		return OSt64NC
	}
	return op
}

// Instr is one MachCode instruction.
type Instr struct {
	Op      Op
	A, B, C int32
	Imm     uint64
}

// Code is a compiled function body plus the metadata needed for
// integration: pc mapping, OSR entries, stackmaps, probe references.
type Code struct {
	FuncIdx uint32
	Name    string
	Instrs  []Instr
	// WasmPC maps each machine pc to the bytecode offset of the Wasm
	// instruction it belongs to, for trap attribution and deopt.
	WasmPC []int32
	// OSREntries maps a Wasm loop-header pc to the machine pc of its
	// checkpoint, where the frame is canonical (everything spilled).
	OSREntries map[int]int
	// Tables holds br_table target vectors.
	Tables [][]int32
	// Counters and TosProbes hold probe references for the
	// intrinsified probe instructions (the paper's "optjit" path).
	Counters  []*rt.CounterProbe
	TosProbes []rt.TosProbe
	// Stackmaps maps a call-site wasm pc to the frame-relative slots
	// holding live references (only populated by MAP-feature
	// compilers; TAG engines need none — the paper's space argument).
	Stackmaps map[int][]int32
	// NumSlots is the frame size in value-stack slots.
	NumSlots int
	// NumResults is the function's result count.
	NumResults int
	// NumParams is the function's parameter count.
	NumParams int
	// LocalTypes as in validate.FuncInfo, for zeroing locals on entry.
	LocalTypes []wasm.ValueType
	// Invalidated is set by the engine when instrumentation forces
	// tier-down; checkpoints observe it.
	Invalidated bool
	// CodeBytes approximates the emitted machine-code size in bytes
	// (for compile-speed accounting): one MachCode instruction stands
	// for one machine instruction.
	CodeBytes int
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint16(op))
}

var opNames = [opCount]string{
	ONop: "nop", OConst: "const", OMov: "mov", OLoadSlot: "load_slot",
	OStoreSlot: "store_slot", OStoreSlotConst: "store_slot_const",
	OStoreTag: "store_tag", OSelect: "select",
	OJump: "jump", OBrIfZero: "br_if_zero", OBrIfNonZero: "br_if_nonzero",
	OBrTable: "br_table",
	OBrI32Eq: "br_i32.eq", OBrI32Ne: "br_i32.ne", OBrI32LtS: "br_i32.lt_s",
	OBrI32LtU: "br_i32.lt_u", OBrI32GtS: "br_i32.gt_s", OBrI32GtU: "br_i32.gt_u",
	OBrI32LeS: "br_i32.le_s", OBrI32LeU: "br_i32.le_u", OBrI32GeS: "br_i32.ge_s",
	OBrI32GeU:   "br_i32.ge_u",
	OBrI32EqImm: "br_i32.eq_imm", OBrI32NeImm: "br_i32.ne_imm",
	OBrI32LtSImm: "br_i32.lt_s_imm", OBrI32LtUImm: "br_i32.lt_u_imm",
	OBrI32GtSImm: "br_i32.gt_s_imm", OBrI32GtUImm: "br_i32.gt_u_imm",
	OBrI32LeSImm: "br_i32.le_s_imm", OBrI32LeUImm: "br_i32.le_u_imm",
	OBrI32GeSImm: "br_i32.ge_s_imm", OBrI32GeUImm: "br_i32.ge_u_imm",
	OBrI64Eq: "br_i64.eq", OBrI64Ne: "br_i64.ne", OBrI64LtS: "br_i64.lt_s",
	OBrI64LtU: "br_i64.lt_u", OBrI64GtS: "br_i64.gt_s", OBrI64GtU: "br_i64.gt_u",
	OBrI64LeS: "br_i64.le_s", OBrI64LeU: "br_i64.le_u", OBrI64GeS: "br_i64.ge_s",
	OBrI64GeU: "br_i64.ge_u",
	OCall:     "call", OCallIndirect: "call_indirect", OReturn: "return",
	OI32Add: "i32.add", OI32Sub: "i32.sub", OI32Mul: "i32.mul",
	OI32DivS: "i32.div_s", OI32DivU: "i32.div_u", OI32RemS: "i32.rem_s",
	OI32RemU: "i32.rem_u", OI32And: "i32.and", OI32Or: "i32.or",
	OI32Xor: "i32.xor", OI32Shl: "i32.shl", OI32ShrS: "i32.shr_s",
	OI32ShrU:   "i32.shr_u",
	OI32AddImm: "i32.add_imm", OI32SubImm: "i32.sub_imm", OI32MulImm: "i32.mul_imm",
	OI32AndImm: "i32.and_imm", OI32OrImm: "i32.or_imm", OI32XorImm: "i32.xor_imm",
	OI32ShlImm: "i32.shl_imm", OI32ShrSImm: "i32.shr_s_imm", OI32ShrUImm: "i32.shr_u_imm",
	OI64Add: "i64.add", OI64Sub: "i64.sub", OI64Mul: "i64.mul",
	OI64DivS: "i64.div_s", OI64DivU: "i64.div_u", OI64RemS: "i64.rem_s",
	OI64RemU: "i64.rem_u", OI64And: "i64.and", OI64Or: "i64.or",
	OI64Xor: "i64.xor", OI64Shl: "i64.shl", OI64ShrS: "i64.shr_s",
	OI64ShrU:   "i64.shr_u",
	OI64AddImm: "i64.add_imm", OI64SubImm: "i64.sub_imm", OI64MulImm: "i64.mul_imm",
	OI64AndImm: "i64.and_imm", OI64OrImm: "i64.or_imm", OI64XorImm: "i64.xor_imm",
	OI64ShlImm: "i64.shl_imm", OI64ShrSImm: "i64.shr_s_imm", OI64ShrUImm: "i64.shr_u_imm",
	OI32Eqz: "i32.eqz", OI32Eq: "i32.eq", OI32Ne: "i32.ne", OI32LtS: "i32.lt_s",
	OI32LtU: "i32.lt_u", OI32GtS: "i32.gt_s", OI32GtU: "i32.gt_u",
	OI32LeS: "i32.le_s", OI32LeU: "i32.le_u", OI32GeS: "i32.ge_s", OI32GeU: "i32.ge_u",
	OI64Eqz: "i64.eqz", OI64Eq: "i64.eq", OI64Ne: "i64.ne", OI64LtS: "i64.lt_s",
	OI64LtU: "i64.lt_u", OI64GtS: "i64.gt_s", OI64GtU: "i64.gt_u",
	OI64LeS: "i64.le_s", OI64LeU: "i64.le_u", OI64GeS: "i64.ge_s", OI64GeU: "i64.ge_u",
	OF32Eq: "f32.eq", OF32Ne: "f32.ne", OF32Lt: "f32.lt", OF32Gt: "f32.gt",
	OF32Le: "f32.le", OF32Ge: "f32.ge",
	OF64Eq: "f64.eq", OF64Ne: "f64.ne", OF64Lt: "f64.lt", OF64Gt: "f64.gt",
	OF64Le: "f64.le", OF64Ge: "f64.ge",
	OF32Add: "f32.add", OF32Sub: "f32.sub", OF32Mul: "f32.mul", OF32Div: "f32.div",
	OF32Min: "f32.min", OF32Max: "f32.max", OF32Neg: "f32.neg", OF32Abs: "f32.abs",
	OF32Sqrt: "f32.sqrt",
	OF64Add:  "f64.add", OF64Sub: "f64.sub", OF64Mul: "f64.mul", OF64Div: "f64.div",
	OF64Min: "f64.min", OF64Max: "f64.max", OF64Neg: "f64.neg", OF64Abs: "f64.abs",
	OF64Sqrt:    "f64.sqrt",
	OI32WrapI64: "i32.wrap_i64", OI64ExtendI32S: "i64.extend_i32_s",
	OI64ExtendI32U:  "i64.extend_i32_u",
	OF64ConvertI32S: "f64.convert_i32_s", OF64ConvertI32U: "f64.convert_i32_u",
	OF64ConvertI64S: "f64.convert_i64_s", OF64ConvertI64U: "f64.convert_i64_u",
	OF32ConvertI32S: "f32.convert_i32_s", OF32DemoteF64: "f32.demote_f64",
	OF64PromoteF32: "f64.promote_f32",
	OI32TruncF64S:  "i32.trunc_f64_s", OI32TruncF64U: "i32.trunc_f64_u",
	OI64TruncF64S: "i64.trunc_f64_s", OI64TruncF64U: "i64.trunc_f64_u",
	OI32TruncF32S: "i32.trunc_f32_s", OI32TruncF32U: "i32.trunc_f32_u",
	OI64TruncF32S: "i64.trunc_f32_s", OI64TruncF32U: "i64.trunc_f32_u",
	OGen1: "gen1", OGen2: "gen2",
	OLd8S32: "ld8_s32", OLd8U32: "ld8_u32", OLd16S32: "ld16_s32",
	OLd16U32: "ld16_u32", OLd32: "ld32", OLd8S64: "ld8_s64", OLd8U64: "ld8_u64",
	OLd16S64: "ld16_s64", OLd16U64: "ld16_u64", OLd32S64: "ld32_s64",
	OLd32U64: "ld32_u64", OLd64: "ld64",
	OSt8: "st8", OSt16: "st16", OSt32: "st32", OSt64: "st64",
	OMemSize: "mem.size", OMemGrow: "mem.grow", OMemCopy: "mem.copy",
	OMemFill:   "mem.fill",
	OGlobalGet: "global.get", OGlobalSet: "global.set",
	OTrap: "trap", OCheckPoint: "checkpoint", OUnreachable: "unreachable",
	OProbeFire: "probe.fire", OProbeCounter: "probe.counter", OProbeTos: "probe.tos",
	OLd8S32NC: "ld8_s32!", OLd8U32NC: "ld8_u32!", OLd16S32NC: "ld16_s32!",
	OLd16U32NC: "ld16_u32!", OLd32NC: "ld32!", OLd8S64NC: "ld8_s64!",
	OLd8U64NC: "ld8_u64!", OLd16S64NC: "ld16_s64!", OLd16U64NC: "ld16_u64!",
	OLd32S64NC: "ld32_s64!", OLd32U64NC: "ld32_u64!", OLd64NC: "ld64!",
	OSt8NC: "st8!", OSt16NC: "st16!", OSt32NC: "st32!", OSt64NC: "st64!",
	OCheckPointNoPoll: "checkpoint!",
	OFuelPrepay:       "fuel.prepay",
}

// String renders an instruction in the disassembly style used by the
// Figure 1 golden test.
func (in Instr) String() string {
	switch in.Op {
	case OConst:
		return fmt.Sprintf("%-16s r%d, #%d", in.Op, in.A, int64(in.Imm))
	case OMov:
		return fmt.Sprintf("%-16s r%d, r%d", in.Op, in.A, in.B)
	case OLoadSlot:
		return fmt.Sprintf("%-16s r%d, [vfp+%d]", in.Op, in.A, in.Imm)
	case OStoreSlot:
		return fmt.Sprintf("%-16s [vfp+%d], r%d", in.Op, in.Imm, in.B)
	case OStoreSlotConst:
		return fmt.Sprintf("%-16s [vfp+%d], #%d", in.Op, in.A, int64(in.Imm))
	case OStoreTag:
		return fmt.Sprintf("%-16s [vfp+%d], %v", in.Op, in.Imm, wasm.Tag(in.A))
	case OJump:
		return fmt.Sprintf("%-16s @%d", in.Op, in.Imm)
	case OBrIfZero, OBrIfNonZero:
		return fmt.Sprintf("%-16s r%d, @%d", in.Op, in.B, in.Imm)
	case OCall:
		return fmt.Sprintf("%-16s func%d, args@%d", in.Op, in.A, in.B)
	case OCallIndirect:
		return fmt.Sprintf("%-16s sig%d, r%d, args@%d", in.Op, in.A, in.C, in.B)
	case OReturn:
		return "return"
	case OGlobalGet:
		return fmt.Sprintf("%-16s r%d, global%d", in.Op, in.A, in.Imm)
	case OGlobalSet:
		return fmt.Sprintf("%-16s global%d, r%d", in.Op, in.Imm, in.B)
	case OTrap:
		return fmt.Sprintf("%-16s %v", in.Op, rt.TrapKind(in.A))
	case OCheckPoint, OCheckPointNoPoll:
		return fmt.Sprintf("%-16s wasm@%d", in.Op, in.Imm)
	case OFuelPrepay:
		return fmt.Sprintf("%-16s #%d, wasm@%d", in.Op, in.A, in.Imm)
	case OLd8S32, OLd8U32, OLd16S32, OLd16U32, OLd32, OLd8S64, OLd8U64,
		OLd16S64, OLd16U64, OLd32S64, OLd32U64, OLd64,
		OLd8S32NC, OLd8U32NC, OLd16S32NC, OLd16U32NC, OLd32NC, OLd8S64NC,
		OLd8U64NC, OLd16S64NC, OLd16U64NC, OLd32S64NC, OLd32U64NC, OLd64NC:
		return fmt.Sprintf("%-16s r%d, [r%d+%d]", in.Op, in.A, in.B, in.Imm)
	case OSt8, OSt16, OSt32, OSt64, OSt8NC, OSt16NC, OSt32NC, OSt64NC:
		return fmt.Sprintf("%-16s [r%d+%d], r%d", in.Op, in.B, in.Imm, in.C)
	case OI32AddImm, OI32SubImm, OI32MulImm, OI32AndImm, OI32OrImm, OI32XorImm,
		OI32ShlImm, OI32ShrSImm, OI32ShrUImm,
		OI64AddImm, OI64SubImm, OI64MulImm, OI64AndImm, OI64OrImm, OI64XorImm,
		OI64ShlImm, OI64ShrSImm, OI64ShrUImm:
		return fmt.Sprintf("%-16s r%d, r%d, #%d", in.Op, in.A, in.B, int64(in.Imm))
	case OBrI32EqImm, OBrI32NeImm, OBrI32LtSImm, OBrI32LtUImm, OBrI32GtSImm,
		OBrI32GtUImm, OBrI32LeSImm, OBrI32LeUImm, OBrI32GeSImm, OBrI32GeUImm:
		return fmt.Sprintf("%-16s r%d, #%d, @%d", in.Op, in.B, in.C, in.Imm)
	case OBrI32Eq, OBrI32Ne, OBrI32LtS, OBrI32LtU, OBrI32GtS, OBrI32GtU,
		OBrI32LeS, OBrI32LeU, OBrI32GeS, OBrI32GeU,
		OBrI64Eq, OBrI64Ne, OBrI64LtS, OBrI64LtU, OBrI64GtS, OBrI64GtU,
		OBrI64LeS, OBrI64LeU, OBrI64GeS, OBrI64GeU:
		return fmt.Sprintf("%-16s r%d, r%d, @%d", in.Op, in.B, in.C, in.Imm)
	case OGen1:
		return fmt.Sprintf("%-16s r%d, r%d (%v)", in.Op, in.A, in.B, wasm.Opcode(in.Imm))
	case OGen2:
		return fmt.Sprintf("%-16s r%d, r%d, r%d (%v)", in.Op, in.A, in.B, in.C, wasm.Opcode(in.Imm))
	default:
		if in.B != 0 || in.C != 0 {
			return fmt.Sprintf("%-16s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
		}
		return fmt.Sprintf("%-16s r%d", in.Op, in.A)
	}
}

// Disassemble renders the whole code object, one instruction per line
// with machine pcs, in the style of Figure 1.
func (c *Code) Disassemble() string {
	s := ""
	for pc, in := range c.Instrs {
		s += fmt.Sprintf("%4d: %s\n", pc, in.String())
	}
	return s
}
