package mach

import (
	"encoding/binary"
	"fmt"
	"math"

	"wizgo/internal/numx"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// Run executes compiled code for a fresh call: arguments are already at
// slots[vfp:vfp+nparams] (tags stored by the caller), and the prologue
// instructions emitted by the compiler initialize declared locals.
func (c *Code) Run(ctx *rt.Context, f *rt.FuncInst, vfp int) (rt.Status, error) {
	if err := ctx.CheckStack(vfp, c.NumSlots, f.Idx); err != nil {
		return rt.Done, err
	}
	return c.run(ctx, f, vfp, 0)
}

// RunFrom enters compiled code at the checkpoint machine pc produced by
// an OSR request; the frame must be canonical (all values in the value
// stack), which is exactly the state the interpreter maintains.
func (c *Code) RunFrom(ctx *rt.Context, f *rt.FuncInst, vfp, machPC int) (rt.Status, error) {
	return c.run(ctx, f, vfp, machPC)
}

func (c *Code) run(ctx *rt.Context, f *rt.FuncInst, vfp, entry int) (rt.Status, error) {
	var regs [NumRegs]uint64
	slots := ctx.Stack.Slots
	tags := ctx.Stack.Tags
	inst := ctx.Inst
	mem := inst.Memory
	code := c.Instrs
	counting := ctx.CountStats
	// Hoisted so the per-checkpoint poll is a register test + one atomic
	// load, not a ctx field reload per loop iteration.
	interrupt := ctx.Interrupt

	frameIdx := ctx.PushFrame(rt.FrameInfo{
		Kind: rt.FrameJIT, Func: f, VFP: vfp, SP: vfp + len(c.LocalTypes),
	})
	ctx.Depth++
	defer func() {
		ctx.Depth--
		ctx.PopFrame()
	}()

	pc := entry
	for {
		in := &code[pc]
		if counting {
			ctx.Stats.MachOps++
		}
		switch in.Op {
		case ONop:
		case OConst:
			regs[in.A] = in.Imm
		case OMov:
			regs[in.A] = regs[in.B]
		case OLoadSlot:
			regs[in.A] = slots[vfp+int(in.Imm)]
		case OStoreSlot:
			slots[vfp+int(in.Imm)] = regs[in.B]
		case OStoreSlotConst:
			slots[vfp+int(in.A)] = in.Imm
		case OStoreTag:
			if tags != nil {
				tags[vfp+int(in.Imm)] = wasm.Tag(in.A)
			}
		case OSelect:
			if uint32(regs[in.C]) == 0 {
				regs[in.A] = regs[in.B]
			}

		case OJump:
			pc = int(in.Imm)
			continue
		case OBrIfZero:
			if uint32(regs[in.B]) == 0 {
				pc = int(in.Imm)
				continue
			}
		case OBrIfNonZero:
			if uint32(regs[in.B]) != 0 {
				pc = int(in.Imm)
				continue
			}
		case OBrTable:
			t := c.Tables[in.A]
			idx := uint32(regs[in.B])
			if int(idx) >= len(t) {
				idx = uint32(len(t) - 1)
			}
			pc = int(t[idx])
			continue

		case OBrI32Eq:
			if uint32(regs[in.B]) == uint32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32Ne:
			if uint32(regs[in.B]) != uint32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32LtS:
			if int32(regs[in.B]) < int32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32LtU:
			if uint32(regs[in.B]) < uint32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32GtS:
			if int32(regs[in.B]) > int32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32GtU:
			if uint32(regs[in.B]) > uint32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32LeS:
			if int32(regs[in.B]) <= int32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32LeU:
			if uint32(regs[in.B]) <= uint32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32GeS:
			if int32(regs[in.B]) >= int32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32GeU:
			if uint32(regs[in.B]) >= uint32(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}

		case OBrI32EqImm:
			if uint32(regs[in.B]) == uint32(in.C) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32NeImm:
			if uint32(regs[in.B]) != uint32(in.C) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32LtSImm:
			if int32(regs[in.B]) < in.C {
				pc = int(in.Imm)
				continue
			}
		case OBrI32LtUImm:
			if uint32(regs[in.B]) < uint32(in.C) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32GtSImm:
			if int32(regs[in.B]) > in.C {
				pc = int(in.Imm)
				continue
			}
		case OBrI32GtUImm:
			if uint32(regs[in.B]) > uint32(in.C) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32LeSImm:
			if int32(regs[in.B]) <= in.C {
				pc = int(in.Imm)
				continue
			}
		case OBrI32LeUImm:
			if uint32(regs[in.B]) <= uint32(in.C) {
				pc = int(in.Imm)
				continue
			}
		case OBrI32GeSImm:
			if int32(regs[in.B]) >= in.C {
				pc = int(in.Imm)
				continue
			}
		case OBrI32GeUImm:
			if uint32(regs[in.B]) >= uint32(in.C) {
				pc = int(in.Imm)
				continue
			}

		case OBrI64Eq:
			if regs[in.B] == regs[in.C] {
				pc = int(in.Imm)
				continue
			}
		case OBrI64Ne:
			if regs[in.B] != regs[in.C] {
				pc = int(in.Imm)
				continue
			}
		case OBrI64LtS:
			if int64(regs[in.B]) < int64(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI64LtU:
			if regs[in.B] < regs[in.C] {
				pc = int(in.Imm)
				continue
			}
		case OBrI64GtS:
			if int64(regs[in.B]) > int64(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI64GtU:
			if regs[in.B] > regs[in.C] {
				pc = int(in.Imm)
				continue
			}
		case OBrI64LeS:
			if int64(regs[in.B]) <= int64(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI64LeU:
			if regs[in.B] <= regs[in.C] {
				pc = int(in.Imm)
				continue
			}
		case OBrI64GeS:
			if int64(regs[in.B]) >= int64(regs[in.C]) {
				pc = int(in.Imm)
				continue
			}
		case OBrI64GeU:
			if regs[in.B] >= regs[in.C] {
				pc = int(in.Imm)
				continue
			}

		case OCall:
			callee := inst.Funcs[in.A]
			argBase := vfp + int(in.B)
			fr := &ctx.Frames[frameIdx]
			fr.SP = argBase + len(callee.Type.Params)
			fr.PC = int(c.WasmPC[pc])
			if err := ctx.Invoke(callee, argBase); err != nil {
				return rt.Done, err
			}
		case OCallIndirect:
			elem := uint32(regs[in.C])
			table := inst.Tables[in.Imm]
			if int(elem) >= len(table.Elems) {
				return rt.Done, c.trapAt(rt.TrapOOBTable, f, pc)
			}
			handle := table.Elems[elem]
			if handle == wasm.NullRef {
				return rt.Done, c.trapAt(rt.TrapNullFunc, f, pc)
			}
			if handle > uint64(len(table.Funcs)) {
				// Dangling handle (e.g. a host-built table without owner
				// resolution): trap, never index out of range.
				return rt.Done, c.trapAt(rt.TrapNullFunc, f, pc)
			}
			// Handles resolve in the table OWNER's function index space,
			// so an imported table dispatches to the exporter's functions.
			callee := table.Funcs[handle-1]
			if !callee.Type.Equal(inst.Module.Types[in.A]) {
				return rt.Done, c.trapAt(rt.TrapIndirectSigMismatch, f, pc)
			}
			argBase := vfp + int(in.B)
			fr := &ctx.Frames[frameIdx]
			fr.SP = argBase + len(callee.Type.Params)
			fr.PC = int(c.WasmPC[pc])
			if err := ctx.Invoke(callee, argBase); err != nil {
				return rt.Done, err
			}
		case OReturn:
			return rt.Done, nil

		case OI32Add:
			regs[in.A] = uint64(uint32(regs[in.B]) + uint32(regs[in.C]))
		case OI32Sub:
			regs[in.A] = uint64(uint32(regs[in.B]) - uint32(regs[in.C]))
		case OI32Mul:
			regs[in.A] = uint64(uint32(regs[in.B]) * uint32(regs[in.C]))
		case OI32DivS:
			a, b := int32(regs[in.B]), int32(regs[in.C])
			if b == 0 {
				return rt.Done, c.trapAt(rt.TrapDivByZero, f, pc)
			}
			if a == math.MinInt32 && b == -1 {
				return rt.Done, c.trapAt(rt.TrapIntOverflow, f, pc)
			}
			regs[in.A] = uint64(uint32(a / b))
		case OI32DivU:
			if uint32(regs[in.C]) == 0 {
				return rt.Done, c.trapAt(rt.TrapDivByZero, f, pc)
			}
			regs[in.A] = uint64(uint32(regs[in.B]) / uint32(regs[in.C]))
		case OI32RemS:
			a, b := int32(regs[in.B]), int32(regs[in.C])
			if b == 0 {
				return rt.Done, c.trapAt(rt.TrapDivByZero, f, pc)
			}
			if a == math.MinInt32 && b == -1 {
				regs[in.A] = 0
			} else {
				regs[in.A] = uint64(uint32(a % b))
			}
		case OI32RemU:
			if uint32(regs[in.C]) == 0 {
				return rt.Done, c.trapAt(rt.TrapDivByZero, f, pc)
			}
			regs[in.A] = uint64(uint32(regs[in.B]) % uint32(regs[in.C]))
		case OI32And:
			regs[in.A] = uint64(uint32(regs[in.B]) & uint32(regs[in.C]))
		case OI32Or:
			regs[in.A] = uint64(uint32(regs[in.B]) | uint32(regs[in.C]))
		case OI32Xor:
			regs[in.A] = uint64(uint32(regs[in.B]) ^ uint32(regs[in.C]))
		case OI32Shl:
			regs[in.A] = uint64(uint32(regs[in.B]) << (uint32(regs[in.C]) & 31))
		case OI32ShrS:
			regs[in.A] = uint64(uint32(int32(regs[in.B]) >> (uint32(regs[in.C]) & 31)))
		case OI32ShrU:
			regs[in.A] = uint64(uint32(regs[in.B]) >> (uint32(regs[in.C]) & 31))

		case OI32AddImm:
			regs[in.A] = uint64(uint32(regs[in.B]) + uint32(in.Imm))
		case OI32SubImm:
			regs[in.A] = uint64(uint32(regs[in.B]) - uint32(in.Imm))
		case OI32MulImm:
			regs[in.A] = uint64(uint32(regs[in.B]) * uint32(in.Imm))
		case OI32AndImm:
			regs[in.A] = uint64(uint32(regs[in.B]) & uint32(in.Imm))
		case OI32OrImm:
			regs[in.A] = uint64(uint32(regs[in.B]) | uint32(in.Imm))
		case OI32XorImm:
			regs[in.A] = uint64(uint32(regs[in.B]) ^ uint32(in.Imm))
		case OI32ShlImm:
			regs[in.A] = uint64(uint32(regs[in.B]) << (uint32(in.Imm) & 31))
		case OI32ShrSImm:
			regs[in.A] = uint64(uint32(int32(regs[in.B]) >> (uint32(in.Imm) & 31)))
		case OI32ShrUImm:
			regs[in.A] = uint64(uint32(regs[in.B]) >> (uint32(in.Imm) & 31))

		case OI64Add:
			regs[in.A] = regs[in.B] + regs[in.C]
		case OI64Sub:
			regs[in.A] = regs[in.B] - regs[in.C]
		case OI64Mul:
			regs[in.A] = regs[in.B] * regs[in.C]
		case OI64DivS:
			a, b := int64(regs[in.B]), int64(regs[in.C])
			if b == 0 {
				return rt.Done, c.trapAt(rt.TrapDivByZero, f, pc)
			}
			if a == math.MinInt64 && b == -1 {
				return rt.Done, c.trapAt(rt.TrapIntOverflow, f, pc)
			}
			regs[in.A] = uint64(a / b)
		case OI64DivU:
			if regs[in.C] == 0 {
				return rt.Done, c.trapAt(rt.TrapDivByZero, f, pc)
			}
			regs[in.A] = regs[in.B] / regs[in.C]
		case OI64RemS:
			a, b := int64(regs[in.B]), int64(regs[in.C])
			if b == 0 {
				return rt.Done, c.trapAt(rt.TrapDivByZero, f, pc)
			}
			if a == math.MinInt64 && b == -1 {
				regs[in.A] = 0
			} else {
				regs[in.A] = uint64(a % b)
			}
		case OI64RemU:
			if regs[in.C] == 0 {
				return rt.Done, c.trapAt(rt.TrapDivByZero, f, pc)
			}
			regs[in.A] = regs[in.B] % regs[in.C]
		case OI64And:
			regs[in.A] = regs[in.B] & regs[in.C]
		case OI64Or:
			regs[in.A] = regs[in.B] | regs[in.C]
		case OI64Xor:
			regs[in.A] = regs[in.B] ^ regs[in.C]
		case OI64Shl:
			regs[in.A] = regs[in.B] << (regs[in.C] & 63)
		case OI64ShrS:
			regs[in.A] = uint64(int64(regs[in.B]) >> (regs[in.C] & 63))
		case OI64ShrU:
			regs[in.A] = regs[in.B] >> (regs[in.C] & 63)

		case OI64AddImm:
			regs[in.A] = regs[in.B] + in.Imm
		case OI64SubImm:
			regs[in.A] = regs[in.B] - in.Imm
		case OI64MulImm:
			regs[in.A] = regs[in.B] * in.Imm
		case OI64AndImm:
			regs[in.A] = regs[in.B] & in.Imm
		case OI64OrImm:
			regs[in.A] = regs[in.B] | in.Imm
		case OI64XorImm:
			regs[in.A] = regs[in.B] ^ in.Imm
		case OI64ShlImm:
			regs[in.A] = regs[in.B] << (in.Imm & 63)
		case OI64ShrSImm:
			regs[in.A] = uint64(int64(regs[in.B]) >> (in.Imm & 63))
		case OI64ShrUImm:
			regs[in.A] = regs[in.B] >> (in.Imm & 63)

		case OI32Eqz:
			regs[in.A] = numx.B2u(uint32(regs[in.B]) == 0)
		case OI32Eq:
			regs[in.A] = numx.B2u(uint32(regs[in.B]) == uint32(regs[in.C]))
		case OI32Ne:
			regs[in.A] = numx.B2u(uint32(regs[in.B]) != uint32(regs[in.C]))
		case OI32LtS:
			regs[in.A] = numx.B2u(int32(regs[in.B]) < int32(regs[in.C]))
		case OI32LtU:
			regs[in.A] = numx.B2u(uint32(regs[in.B]) < uint32(regs[in.C]))
		case OI32GtS:
			regs[in.A] = numx.B2u(int32(regs[in.B]) > int32(regs[in.C]))
		case OI32GtU:
			regs[in.A] = numx.B2u(uint32(regs[in.B]) > uint32(regs[in.C]))
		case OI32LeS:
			regs[in.A] = numx.B2u(int32(regs[in.B]) <= int32(regs[in.C]))
		case OI32LeU:
			regs[in.A] = numx.B2u(uint32(regs[in.B]) <= uint32(regs[in.C]))
		case OI32GeS:
			regs[in.A] = numx.B2u(int32(regs[in.B]) >= int32(regs[in.C]))
		case OI32GeU:
			regs[in.A] = numx.B2u(uint32(regs[in.B]) >= uint32(regs[in.C]))

		case OI64Eqz:
			regs[in.A] = numx.B2u(regs[in.B] == 0)
		case OI64Eq:
			regs[in.A] = numx.B2u(regs[in.B] == regs[in.C])
		case OI64Ne:
			regs[in.A] = numx.B2u(regs[in.B] != regs[in.C])
		case OI64LtS:
			regs[in.A] = numx.B2u(int64(regs[in.B]) < int64(regs[in.C]))
		case OI64LtU:
			regs[in.A] = numx.B2u(regs[in.B] < regs[in.C])
		case OI64GtS:
			regs[in.A] = numx.B2u(int64(regs[in.B]) > int64(regs[in.C]))
		case OI64GtU:
			regs[in.A] = numx.B2u(regs[in.B] > regs[in.C])
		case OI64LeS:
			regs[in.A] = numx.B2u(int64(regs[in.B]) <= int64(regs[in.C]))
		case OI64LeU:
			regs[in.A] = numx.B2u(regs[in.B] <= regs[in.C])
		case OI64GeS:
			regs[in.A] = numx.B2u(int64(regs[in.B]) >= int64(regs[in.C]))
		case OI64GeU:
			regs[in.A] = numx.B2u(regs[in.B] >= regs[in.C])

		case OF32Eq:
			regs[in.A] = numx.B2u(mf32(regs[in.B]) == mf32(regs[in.C]))
		case OF32Ne:
			regs[in.A] = numx.B2u(mf32(regs[in.B]) != mf32(regs[in.C]))
		case OF32Lt:
			regs[in.A] = numx.B2u(mf32(regs[in.B]) < mf32(regs[in.C]))
		case OF32Gt:
			regs[in.A] = numx.B2u(mf32(regs[in.B]) > mf32(regs[in.C]))
		case OF32Le:
			regs[in.A] = numx.B2u(mf32(regs[in.B]) <= mf32(regs[in.C]))
		case OF32Ge:
			regs[in.A] = numx.B2u(mf32(regs[in.B]) >= mf32(regs[in.C]))
		case OF64Eq:
			regs[in.A] = numx.B2u(mf64(regs[in.B]) == mf64(regs[in.C]))
		case OF64Ne:
			regs[in.A] = numx.B2u(mf64(regs[in.B]) != mf64(regs[in.C]))
		case OF64Lt:
			regs[in.A] = numx.B2u(mf64(regs[in.B]) < mf64(regs[in.C]))
		case OF64Gt:
			regs[in.A] = numx.B2u(mf64(regs[in.B]) > mf64(regs[in.C]))
		case OF64Le:
			regs[in.A] = numx.B2u(mf64(regs[in.B]) <= mf64(regs[in.C]))
		case OF64Ge:
			regs[in.A] = numx.B2u(mf64(regs[in.B]) >= mf64(regs[in.C]))

		case OF32Add:
			regs[in.A] = mrf32(mf32(regs[in.B]) + mf32(regs[in.C]))
		case OF32Sub:
			regs[in.A] = mrf32(mf32(regs[in.B]) - mf32(regs[in.C]))
		case OF32Mul:
			regs[in.A] = mrf32(mf32(regs[in.B]) * mf32(regs[in.C]))
		case OF32Div:
			regs[in.A] = mrf32(mf32(regs[in.B]) / mf32(regs[in.C]))
		case OF32Min:
			regs[in.A] = mrf32(numx.FMin32(mf32(regs[in.B]), mf32(regs[in.C])))
		case OF32Max:
			regs[in.A] = mrf32(numx.FMax32(mf32(regs[in.B]), mf32(regs[in.C])))
		case OF32Neg:
			regs[in.A] = regs[in.B] ^ (1 << 31)
		case OF32Abs:
			regs[in.A] = regs[in.B] &^ (1 << 31)
		case OF32Sqrt:
			regs[in.A] = mrf32(float32(math.Sqrt(float64(mf32(regs[in.B])))))

		case OF64Add:
			regs[in.A] = mrf64(mf64(regs[in.B]) + mf64(regs[in.C]))
		case OF64Sub:
			regs[in.A] = mrf64(mf64(regs[in.B]) - mf64(regs[in.C]))
		case OF64Mul:
			regs[in.A] = mrf64(mf64(regs[in.B]) * mf64(regs[in.C]))
		case OF64Div:
			regs[in.A] = mrf64(mf64(regs[in.B]) / mf64(regs[in.C]))
		case OF64Min:
			regs[in.A] = mrf64(numx.FMin64(mf64(regs[in.B]), mf64(regs[in.C])))
		case OF64Max:
			regs[in.A] = mrf64(numx.FMax64(mf64(regs[in.B]), mf64(regs[in.C])))
		case OF64Neg:
			regs[in.A] = regs[in.B] ^ (1 << 63)
		case OF64Abs:
			regs[in.A] = regs[in.B] &^ (1 << 63)
		case OF64Sqrt:
			regs[in.A] = mrf64(math.Sqrt(mf64(regs[in.B])))

		case OI32WrapI64:
			regs[in.A] = uint64(uint32(regs[in.B]))
		case OI64ExtendI32S:
			regs[in.A] = uint64(int64(int32(regs[in.B])))
		case OI64ExtendI32U:
			regs[in.A] = uint64(uint32(regs[in.B]))
		case OF64ConvertI32S:
			regs[in.A] = mrf64(float64(int32(regs[in.B])))
		case OF64ConvertI32U:
			regs[in.A] = mrf64(float64(uint32(regs[in.B])))
		case OF64ConvertI64S:
			regs[in.A] = mrf64(float64(int64(regs[in.B])))
		case OF64ConvertI64U:
			regs[in.A] = mrf64(float64(regs[in.B]))
		case OF32ConvertI32S:
			regs[in.A] = mrf32(float32(int32(regs[in.B])))
		case OF32DemoteF64:
			regs[in.A] = mrf32(float32(mf64(regs[in.B])))
		case OF64PromoteF32:
			regs[in.A] = mrf64(float64(mf32(regs[in.B])))

		case OI32TruncF64S:
			v, k := numx.TruncToI32S(mf64(regs[in.B]))
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = uint64(uint32(v))
		case OI32TruncF64U:
			v, k := numx.TruncToI32U(mf64(regs[in.B]))
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = uint64(v)
		case OI64TruncF64S:
			v, k := numx.TruncToI64S(mf64(regs[in.B]))
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = uint64(v)
		case OI64TruncF64U:
			v, k := numx.TruncToI64U(mf64(regs[in.B]))
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = v
		case OI32TruncF32S:
			v, k := numx.TruncToI32S(float64(mf32(regs[in.B])))
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = uint64(uint32(v))
		case OI32TruncF32U:
			v, k := numx.TruncToI32U(float64(mf32(regs[in.B])))
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = uint64(v)
		case OI64TruncF32S:
			v, k := numx.TruncToI64S(float64(mf32(regs[in.B])))
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = uint64(v)
		case OI64TruncF32U:
			v, k := numx.TruncToI64U(float64(mf32(regs[in.B])))
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = v

		case OGen1:
			v, k, ok := numx.EvalUn(wasm.Opcode(in.Imm), regs[in.B])
			if !ok {
				return rt.Done, c.trapAt(rt.TrapUnreachable, f, pc)
			}
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = v
		case OGen2:
			v, k, ok := numx.EvalBin(wasm.Opcode(in.Imm), regs[in.B], regs[in.C])
			if !ok {
				return rt.Done, c.trapAt(rt.TrapUnreachable, f, pc)
			}
			if k != rt.TrapNone {
				return rt.Done, c.trapAt(k, f, pc)
			}
			regs[in.A] = v

		case OLd8S32:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 1) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(uint32(int32(int8(mem.Data[int(addr)+int(uint32(in.Imm))]))))
		case OLd8U32, OLd8U64:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 1) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(mem.Data[int(addr)+int(uint32(in.Imm))])
		case OLd16S32:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 2) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(uint32(int32(int16(binary.LittleEndian.Uint16(mem.Data[int(addr)+int(uint32(in.Imm)):])))))
		case OLd16U32, OLd16U64:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 2) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(binary.LittleEndian.Uint16(mem.Data[int(addr)+int(uint32(in.Imm)):]))
		case OLd32:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 4) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(binary.LittleEndian.Uint32(mem.Data[int(addr)+int(uint32(in.Imm)):]))
		case OLd8S64:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 1) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(int64(int8(mem.Data[int(addr)+int(uint32(in.Imm))])))
		case OLd16S64:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 2) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(int64(int16(binary.LittleEndian.Uint16(mem.Data[int(addr)+int(uint32(in.Imm)):]))))
		case OLd32S64:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 4) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(int64(int32(binary.LittleEndian.Uint32(mem.Data[int(addr)+int(uint32(in.Imm)):]))))
		case OLd32U64:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 4) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = uint64(binary.LittleEndian.Uint32(mem.Data[int(addr)+int(uint32(in.Imm)):]))
		case OLd64:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 8) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			regs[in.A] = binary.LittleEndian.Uint64(mem.Data[int(addr)+int(uint32(in.Imm)):])

		case OSt8:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 1) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 1)
			mem.Data[int(addr)+int(uint32(in.Imm))] = byte(regs[in.C])
		case OSt16:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 2) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 2)
			binary.LittleEndian.PutUint16(mem.Data[int(addr)+int(uint32(in.Imm)):], uint16(regs[in.C]))
		case OSt32:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 4) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 4)
			binary.LittleEndian.PutUint32(mem.Data[int(addr)+int(uint32(in.Imm)):], uint32(regs[in.C]))
		case OSt64:
			addr := uint32(regs[in.B])
			if !mem.InBounds(addr, uint32(in.Imm), 8) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 8)
			binary.LittleEndian.PutUint64(mem.Data[int(addr)+int(uint32(in.Imm)):], regs[in.C])

		// Unchecked accesses: the static analysis proved
		// addr.hi + offset + size ≤ minPages*PageSize, so the bounds
		// check is gone. Under -tags checked it survives as an
		// assertion whose failure is an analysis soundness bug, never
		// a guest error.
		case OLd8S32NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 1) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(uint32(int32(int8(mem.Data[int(addr)+int(uint32(in.Imm))]))))
		case OLd8U32NC, OLd8U64NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 1) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(mem.Data[int(addr)+int(uint32(in.Imm))])
		case OLd16S32NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 2) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(uint32(int32(int16(binary.LittleEndian.Uint16(mem.Data[int(addr)+int(uint32(in.Imm)):])))))
		case OLd16U32NC, OLd16U64NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 2) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(binary.LittleEndian.Uint16(mem.Data[int(addr)+int(uint32(in.Imm)):]))
		case OLd32NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 4) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(binary.LittleEndian.Uint32(mem.Data[int(addr)+int(uint32(in.Imm)):]))
		case OLd8S64NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 1) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(int64(int8(mem.Data[int(addr)+int(uint32(in.Imm))])))
		case OLd16S64NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 2) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(int64(int16(binary.LittleEndian.Uint16(mem.Data[int(addr)+int(uint32(in.Imm)):]))))
		case OLd32S64NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 4) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(int64(int32(binary.LittleEndian.Uint32(mem.Data[int(addr)+int(uint32(in.Imm)):]))))
		case OLd32U64NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 4) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = uint64(binary.LittleEndian.Uint32(mem.Data[int(addr)+int(uint32(in.Imm)):]))
		case OLd64NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 8) {
				checkedFail(in, f, pc)
			}
			regs[in.A] = binary.LittleEndian.Uint64(mem.Data[int(addr)+int(uint32(in.Imm)):])
		case OSt8NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 1) {
				checkedFail(in, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 1)
			mem.Data[int(addr)+int(uint32(in.Imm))] = byte(regs[in.C])
		case OSt16NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 2) {
				checkedFail(in, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 2)
			binary.LittleEndian.PutUint16(mem.Data[int(addr)+int(uint32(in.Imm)):], uint16(regs[in.C]))
		case OSt32NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 4) {
				checkedFail(in, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 4)
			binary.LittleEndian.PutUint32(mem.Data[int(addr)+int(uint32(in.Imm)):], uint32(regs[in.C]))
		case OSt64NC:
			addr := uint32(regs[in.B])
			if rt.Checked && !mem.InBounds(addr, uint32(in.Imm), 8) {
				checkedFail(in, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 8)
			binary.LittleEndian.PutUint64(mem.Data[int(addr)+int(uint32(in.Imm)):], regs[in.C])

		case OMemSize:
			regs[in.A] = uint64(mem.Pages())
		case OMemGrow:
			regs[in.A] = uint64(uint32(mem.Grow(uint32(regs[in.B]))))
		case OMemCopy:
			dst, src, n := uint32(regs[in.A]), uint32(regs[in.B]), uint32(regs[in.C])
			if !mem.InBounds(dst, 0, int(n)) || !mem.InBounds(src, 0, int(n)) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			mem.Mark(dst, 0, int(n))
			copy(mem.Data[dst:dst+n], mem.Data[src:src+n])
		case OMemFill:
			dst, val, n := uint32(regs[in.A]), byte(regs[in.B]), uint32(regs[in.C])
			if !mem.InBounds(dst, 0, int(n)) {
				return rt.Done, c.trapAt(rt.TrapOOBMemory, f, pc)
			}
			mem.Mark(dst, 0, int(n))
			for i := uint32(0); i < n; i++ {
				mem.Data[dst+i] = val
			}

		case OGlobalGet:
			regs[in.A] = inst.Globals[in.Imm].Bits
		case OGlobalSet:
			inst.Globals[in.Imm].Bits = regs[in.B]
			inst.Globals[in.Imm].Tag = wasm.Tag(in.C)

		case OTrap:
			return rt.Done, rt.NewTrap(rt.TrapKind(in.A), f.Idx, int(in.Imm))
		case OUnreachable:
			return rt.Done, c.trapAt(rt.TrapUnreachable, f, pc)

		case OCheckPoint:
			// Loop header with a canonical frame: the fuel charge, the
			// interruption point, the deopt point and the OSR entry —
			// predictable branches on checks compiled code already
			// executes per loop iteration. Fuel is charged FIRST: a
			// checkpoint that deopts or interrupts has still executed
			// this header arrival, and the interpreter resumes past the
			// loop opcode, so no tier charges it twice. B==1 marks a
			// prepaid loop (OFuelPrepay ran before the header label):
			// the per-arrival charge applies only in degraded mode.
			if ctx.Fuel > 0 {
				if in.B != 0 {
					if !ctx.FuelIter() {
						return rt.Done, c.trapAt(rt.TrapFuelExhausted, f, pc)
					}
				} else if !ctx.FuelCheckpoint() {
					return rt.Done, c.trapAt(rt.TrapFuelExhausted, f, pc)
				}
			}
			if interrupt != nil && interrupt.Get() {
				return rt.Done, c.trapAt(rt.TrapInterrupted, f, pc)
			}
			if c.Invalidated {
				fr := &ctx.Frames[frameIdx]
				fr.SP = vfp + int(in.A)
				fr.PC = int(in.Imm)
				ctx.Resume = *fr
				if counting {
					ctx.Stats.Deopts++
				}
				return rt.Deopt, nil
			}

		case OCheckPointNoPoll:
			// Loop header of a proven-terminating counted loop: the
			// interrupt poll is elided, but the checkpoint still
			// charges fuel and serves as deopt point, so fuel and
			// invalidation semantics are identical to OCheckPoint.
			if ctx.Fuel > 0 {
				if in.B != 0 {
					if !ctx.FuelIter() {
						return rt.Done, c.trapAt(rt.TrapFuelExhausted, f, pc)
					}
				} else if !ctx.FuelCheckpoint() {
					return rt.Done, c.trapAt(rt.TrapFuelExhausted, f, pc)
				}
			}
			if c.Invalidated {
				fr := &ctx.Frames[frameIdx]
				fr.SP = vfp + int(in.A)
				fr.PC = int(in.Imm)
				ctx.Resume = *fr
				if counting {
					ctx.Stats.Deopts++
				}
				return rt.Deopt, nil
			}

		case OFuelPrepay:
			// Fall-in-only (sits before the header label): deduct the
			// loop's proven trip count, or switch to per-iteration
			// charging when the budget cannot cover it.
			if ctx.Fuel > 0 {
				ctx.FuelPrepay(int64(in.A))
			}

		case OProbeFire:
			fr := ctx.Frames[frameIdx]
			fr.SP = vfp + int(in.A)
			fr.PC = int(in.Imm)
			f.Probes.FireAll(ctx, fr, int(in.Imm))
		case OProbeCounter:
			c.Counters[in.A].Count++
			if counting {
				ctx.Stats.ProbeFires++
			}
		case OProbeTos:
			c.TosProbes[in.A].FireTos(slots[vfp+int(in.Imm)])
			if counting {
				ctx.Stats.ProbeFires++
			}

		default:
			return rt.Done, c.trapAt(rt.TrapUnreachable, f, pc)
		}
		pc++
	}
}

func (c *Code) trapAt(kind rt.TrapKind, f *rt.FuncInst, machPC int) error {
	wasmPC := 0
	if machPC < len(c.WasmPC) {
		wasmPC = int(c.WasmPC[machPC])
	}
	return rt.NewTrap(kind, f.Idx, wasmPC)
}

// checkedFail fires when a `-tags checked` build catches an access the
// static analysis wrongly proved in bounds. That is a soundness bug in
// internal/analysis — never a guest-program error — so it panics
// instead of trapping.
func checkedFail(in *Instr, f *rt.FuncInst, machPC int) {
	panic(fmt.Sprintf("mach: checked build: analysis-elided bounds check failed: %v in func %d at machine pc %d", in, f.Idx, machPC))
}

func mf32(b uint64) float32  { return math.Float32frombits(uint32(b)) }
func mf64(b uint64) float64  { return math.Float64frombits(b) }
func mrf32(v float32) uint64 { return uint64(math.Float32bits(v)) }
func mrf64(v float64) uint64 { return math.Float64bits(v) }
