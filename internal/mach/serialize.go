package mach

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"wizgo/internal/wasm"
	"wizgo/internal/wbin"
)

// instrRecordSize is the fixed on-disk width of one instruction: three
// little-endian u64 words — (op | A<<32), (B | C<<32), Imm. Fixed-width
// (rather than varint) records trade a few KB of artifact size for a
// branch-free bulk decode loop, and packing into aligned words makes
// that loop three loads and a few shifts per instruction — instruction
// materialization is the hot path of a cold start, and the artifact is
// mmap'd so size is nearly free.
const instrRecordSize = 3 * 8

// ErrNotSerializable reports a code object carrying per-instance state
// (probe references, an invalidation in progress) that must never reach
// a shared artifact. Engine.Compile always compiles probe-free, so
// hitting this on the cache path is a bug, not an input condition.
var ErrNotSerializable = errors.New("mach: code with instance state is not serializable")

// AppendTo serializes the code object for the persistent artifact
// cache. The encoding is position-independent by construction — branch
// targets are machine pcs relative to the function's own instruction
// stream — which is what makes baseline-compiled functions cheap to
// persist and reload (the copy-and-patch observation).
func (c *Code) AppendTo(w *wbin.Writer) error {
	if len(c.Counters) != 0 || len(c.TosProbes) != 0 || c.Invalidated {
		return ErrNotSerializable
	}
	w.Uvarint(uint64(c.FuncIdx))
	w.String(c.Name)

	w.Uvarint(uint64(len(c.Instrs)))
	b := w.Reserve(instrRecordSize * len(c.Instrs))
	for i, in := range c.Instrs {
		rec := b[i*instrRecordSize : (i+1)*instrRecordSize]
		binary.LittleEndian.PutUint64(rec[0:], uint64(uint16(in.Op))|uint64(uint32(in.A))<<32)
		binary.LittleEndian.PutUint64(rec[8:], uint64(uint32(in.B))|uint64(uint32(in.C))<<32)
		binary.LittleEndian.PutUint64(rec[16:], in.Imm)
	}

	w.Uvarint(uint64(len(c.WasmPC)))
	b = w.Reserve(4 * len(c.WasmPC))
	for i, pc := range c.WasmPC {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(pc))
	}

	// Maps are encoded in sorted key order so one compile always yields
	// byte-identical artifacts (content-addressed stores dedupe on it).
	w.Uvarint(uint64(len(c.OSREntries)))
	for _, k := range sortedKeys(c.OSREntries) {
		w.Varint(int64(k))
		w.Varint(int64(c.OSREntries[k]))
	}

	w.Uvarint(uint64(len(c.Tables)))
	for _, t := range c.Tables {
		w.Uvarint(uint64(len(t)))
		for _, target := range t {
			w.Varint(int64(target))
		}
	}

	w.Uvarint(uint64(len(c.Stackmaps)))
	for _, k := range sortedKeys(c.Stackmaps) {
		w.Varint(int64(k))
		slots := c.Stackmaps[k]
		w.Uvarint(uint64(len(slots)))
		for _, s := range slots {
			w.Varint(int64(s))
		}
	}

	w.Uvarint(uint64(c.NumSlots))
	w.Uvarint(uint64(c.NumResults))
	w.Uvarint(uint64(c.NumParams))
	w.Uvarint(uint64(len(c.LocalTypes)))
	for _, t := range c.LocalTypes {
		w.U8(uint8(t))
	}
	w.Uvarint(uint64(c.CodeBytes))
	return nil
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// DecodeArena preallocates one artifact's worth of code-object bulk
// storage in a handful of contiguous blocks. Cold-start rehydration is
// dominated not by decoding but by allocation — dozens of small makes
// that each risk growing a fresh process's heap by another faulted-in
// span — so the artifact header records exact totals and DecodeCode
// sub-slices from these blocks instead. An exhausted or nil arena
// degrades to plain allocation, so corrupt totals cost speed, never
// correctness.
type DecodeArena struct {
	codes  []Code
	instrs []Instr
	pcs    []int32
	types  []wasm.ValueType
}

// NewDecodeArena sizes an arena for nCodes code objects holding
// nInstrs instructions (each with its pc-map entry) and nTypes local
// types in total. Callers must validate the totals against the input
// length before trusting them with an allocation.
func NewDecodeArena(nCodes, nInstrs, nTypes int) *DecodeArena {
	return &DecodeArena{
		codes:  make([]Code, 0, nCodes),
		instrs: make([]Instr, 0, nInstrs),
		pcs:    make([]int32, 0, nInstrs),
		types:  make([]wasm.ValueType, 0, nTypes),
	}
}

func (a *DecodeArena) nextCode() *Code {
	if a == nil || len(a.codes) == cap(a.codes) {
		return &Code{}
	}
	a.codes = a.codes[:len(a.codes)+1]
	return &a.codes[len(a.codes)-1]
}

func (a *DecodeArena) takeInstrs(n int) []Instr {
	if a == nil || len(a.instrs)+n > cap(a.instrs) {
		return make([]Instr, n)
	}
	s := a.instrs[len(a.instrs) : len(a.instrs)+n]
	a.instrs = a.instrs[:len(a.instrs)+n]
	return s
}

func (a *DecodeArena) takePCs(n int) []int32 {
	if a == nil || len(a.pcs)+n > cap(a.pcs) {
		return make([]int32, n)
	}
	s := a.pcs[len(a.pcs) : len(a.pcs)+n]
	a.pcs = a.pcs[:len(a.pcs)+n]
	return s
}

func (a *DecodeArena) takeTypes(n int) []wasm.ValueType {
	if a == nil || len(a.types)+n > cap(a.types) {
		return make([]wasm.ValueType, n)
	}
	s := a.types[len(a.types) : len(a.types)+n]
	a.types = a.types[:len(a.types)+n]
	return s
}

// DecodeCode reconstructs a serialized code object, drawing bulk
// storage from arena (which may be nil). Every length comes
// from (possibly corrupt) disk bytes, so it is validated against the
// remaining input before allocation; structural nonsense surfaces as an
// error, never a panic. Decoded instruction streams are additionally
// bounds-checked where cheap (opcodes, branch targets) so a bit-flipped
// artifact that survives the envelope checksum still cannot send the
// executor out of bounds.
func DecodeCode(r *wbin.Reader, arena *DecodeArena) (*Code, error) {
	c := arena.nextCode()
	c.FuncIdx = uint32(r.Uvarint())
	c.Name = r.String()

	nInstr := r.Count(instrRecordSize)
	c.Instrs = arena.takeInstrs(nInstr)
	if b := r.Take(instrRecordSize * nInstr); b != nil {
		for i := range c.Instrs {
			w0 := binary.LittleEndian.Uint64(b[0:])
			w1 := binary.LittleEndian.Uint64(b[8:])
			w2 := binary.LittleEndian.Uint64(b[16:])
			b = b[instrRecordSize:]
			op := Op(uint16(w0))
			if op >= opCount {
				return nil, fmt.Errorf("mach: decoded opcode %d out of range", op)
			}
			c.Instrs[i] = Instr{
				Op:  op,
				A:   int32(uint32(w0 >> 32)),
				B:   int32(uint32(w1)),
				C:   int32(uint32(w1 >> 32)),
				Imm: w2,
			}
		}
	}

	nPC := r.Count(4)
	c.WasmPC = arena.takePCs(nPC)
	if b := r.Take(4 * nPC); b != nil {
		for i := range c.WasmPC {
			c.WasmPC[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
		}
	}

	if n := r.Count(2); n > 0 {
		c.OSREntries = make(map[int]int, n)
		for i := 0; i < n; i++ {
			k := int(r.Varint())
			v := int(r.Varint())
			if v < 0 || v >= len(c.Instrs) {
				return nil, fmt.Errorf("mach: OSR entry pc %d out of range", v)
			}
			c.OSREntries[k] = v
		}
	}

	if n := r.Count(1); n > 0 {
		c.Tables = make([][]int32, n)
		for i := range c.Tables {
			m := r.Count(1)
			c.Tables[i] = make([]int32, m)
			for j := range c.Tables[i] {
				t := r.Varint()
				if t < 0 || t > int64(len(c.Instrs)) {
					return nil, fmt.Errorf("mach: br_table target %d out of range", t)
				}
				c.Tables[i][j] = int32(t)
			}
		}
	}

	if n := r.Count(2); n > 0 {
		c.Stackmaps = make(map[int][]int32, n)
		for i := 0; i < n; i++ {
			k := int(r.Varint())
			m := r.Count(1)
			slots := make([]int32, m)
			for j := range slots {
				slots[j] = int32(r.Varint())
			}
			c.Stackmaps[k] = slots
		}
	}

	c.NumSlots = int(r.Uvarint())
	c.NumResults = int(r.Uvarint())
	c.NumParams = int(r.Uvarint())
	nLocals := r.Count(1)
	c.LocalTypes = arena.takeTypes(nLocals)
	for i := range c.LocalTypes {
		c.LocalTypes[i] = wasm.ValueType(r.U8())
	}
	c.CodeBytes = int(r.Uvarint())

	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(c.WasmPC) != len(c.Instrs) {
		return nil, fmt.Errorf("mach: pc map covers %d of %d instructions", len(c.WasmPC), len(c.Instrs))
	}
	if c.NumSlots < 0 || c.NumResults < 0 || c.NumParams < 0 {
		return nil, errors.New("mach: negative frame dimension")
	}
	return c, nil
}
