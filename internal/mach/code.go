package mach

// Bytes reports the emitted code size (for compile-throughput
// accounting, Figure 8's "time per byte of input code" denominator's
// counterpart).
func (c *Code) Bytes() int { return c.CodeBytes }

// OSREntry returns the checkpoint machine pc for a Wasm loop-header pc.
func (c *Code) OSREntry(wasmPC int) (int, bool) {
	pc, ok := c.OSREntries[wasmPC]
	return pc, ok
}

// Invalidate marks the code for tier-down: active frames observe the
// flag at their next checkpoint and deopt to the interpreter.
func (c *Code) Invalidate() { c.Invalidated = true }

// StackmapAt returns the reference-slot stackmap recorded at a call-site
// wasm pc, for engines that scan JIT frames with stackmaps instead of
// value tags.
func (c *Code) StackmapAt(pc int) ([]int32, bool) {
	if c.Stackmaps == nil {
		return nil, false
	}
	m, ok := c.Stackmaps[pc]
	return m, ok
}
