package mach

// Bytes reports the emitted code size (for compile-throughput
// accounting, Figure 8's "time per byte of input code" denominator's
// counterpart).
func (c *Code) Bytes() int { return c.CodeBytes }

// OSREntry returns the checkpoint machine pc for a Wasm loop-header pc.
func (c *Code) OSREntry(wasmPC int) (int, bool) {
	pc, ok := c.OSREntries[wasmPC]
	return pc, ok
}

// Invalidate marks the code for tier-down: active frames observe the
// flag at their next checkpoint and deopt to the interpreter.
func (c *Code) Invalidate() { c.Invalidated = true }

// InstanceView returns a shallow per-instance copy of the code. The
// instruction stream, tables and stackmaps are immutable after
// compilation and stay shared; only the invalidation flag — the one
// field the engine mutates after compilation (probe attach/detach) — is
// private to the copy. This is what lets one compiled artifact serve
// many concurrent instances: instance A attaching a probe invalidates
// its own view, never the cached module another instance is executing.
// The return type is any to keep mach free of an engine dependency; the
// value is a *Code.
func (c *Code) InstanceView() any {
	view := *c
	view.Invalidated = false
	return &view
}

// StackmapAt returns the reference-slot stackmap recorded at a call-site
// wasm pc, for engines that scan JIT frames with stackmaps instead of
// value tags.
func (c *Code) StackmapAt(pc int) ([]int32, bool) {
	if c.Stackmaps == nil {
		return nil, false
	}
	m, ok := c.Stackmaps[pc]
	return m, ok
}
