package mach

import (
	"strings"
	"testing"

	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

func runCode(t *testing.T, c *Code, stack []uint64) []uint64 {
	t.Helper()
	ctx := &rt.Context{
		Stack:    rt.NewValueStack(256, true),
		Inst:     &rt.Instance{Memory: &rt.Memory{Data: make([]byte, 65536)}},
		MaxDepth: 64,
	}
	copy(ctx.Stack.Slots, stack)
	f := &rt.FuncInst{Idx: 0, Name: "test"}
	status, err := c.Run(ctx, f, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != rt.Done {
		t.Fatalf("status %v", status)
	}
	return ctx.Stack.Slots
}

func TestAsmLabelFixups(t *testing.T) {
	a := NewAsm()
	fwd := a.NewLabel()
	a.Emit(Instr{Op: OConst, A: 0, Imm: 1})
	a.EmitBranch(Instr{Op: OJump}, fwd)
	a.Emit(Instr{Op: OConst, A: 0, Imm: 99}) // skipped
	a.Bind(fwd)
	a.Emit(Instr{Op: OStoreSlot, B: 0, Imm: 0})
	a.Emit(Instr{Op: OReturn})
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if code.Instrs[1].Imm != 3 {
		t.Fatalf("forward fixup target = %d, want 3", code.Instrs[1].Imm)
	}
	slots := runCode(t, code, nil)
	if slots[0] != 1 {
		t.Fatalf("skipped code executed: slot0 = %d", slots[0])
	}
}

func TestAsmUnboundLabel(t *testing.T) {
	a := NewAsm()
	l := a.NewLabel()
	a.EmitBranch(Instr{Op: OJump}, l)
	if _, err := a.Finish(); err == nil {
		t.Fatal("expected unbound-label error")
	}
}

func TestAsmBrTable(t *testing.T) {
	a := NewAsm()
	l0, l1 := a.NewLabel(), a.NewLabel()
	tidx := a.NewTable([]int{l0, l1})
	a.Emit(Instr{Op: OLoadSlot, A: 0, Imm: 0})
	a.Emit(Instr{Op: OBrTable, A: int32(tidx), B: 0})
	a.Bind(l0)
	a.Emit(Instr{Op: OStoreSlotConst, A: 1, Imm: 100})
	a.Emit(Instr{Op: OReturn})
	a.Bind(l1)
	a.Emit(Instr{Op: OStoreSlotConst, A: 1, Imm: 200})
	a.Emit(Instr{Op: OReturn})
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := runCode(t, code, []uint64{0})[1]; got != 100 {
		t.Errorf("table[0] -> %d, want 100", got)
	}
	if got := runCode(t, code, []uint64{1})[1]; got != 200 {
		t.Errorf("table[1] -> %d, want 200", got)
	}
	if got := runCode(t, code, []uint64{7})[1]; got != 200 {
		t.Errorf("out-of-range clamps to default: %d, want 200", got)
	}
}

func TestExecArithAndSpill(t *testing.T) {
	a := NewAsm()
	a.Emit(Instr{Op: OLoadSlot, A: 1, Imm: 0})
	a.Emit(Instr{Op: OI32AddImm, A: 2, B: 1, Imm: 5})
	a.Emit(Instr{Op: OI32Mul, A: 3, B: 2, C: 2})
	a.Emit(Instr{Op: OStoreSlot, B: 3, Imm: 1})
	a.Emit(Instr{Op: OStoreTag, A: int32(wasm.TagI32), Imm: 1})
	a.Emit(Instr{Op: OReturn})
	code, _ := a.Finish()
	ctx := &rt.Context{
		Stack:    rt.NewValueStack(64, true),
		Inst:     &rt.Instance{Memory: &rt.Memory{}},
		MaxDepth: 8,
	}
	ctx.Stack.Slots[0] = 7
	f := &rt.FuncInst{}
	if _, err := code.Run(ctx, f, 0); err != nil {
		t.Fatal(err)
	}
	if ctx.Stack.Slots[1] != 144 {
		t.Errorf("(7+5)^2 = %d, want 144", ctx.Stack.Slots[1])
	}
	if ctx.Stack.Tags[1] != wasm.TagI32 {
		t.Errorf("tag store missing: %v", ctx.Stack.Tags[1])
	}
}

func TestExecTrapAttribution(t *testing.T) {
	a := NewAsm()
	a.SetWasmPC(42)
	a.Emit(Instr{Op: OConst, A: 1, Imm: 0})
	a.Emit(Instr{Op: OConst, A: 2, Imm: 9})
	a.Emit(Instr{Op: OI32DivU, A: 3, B: 2, C: 1})
	a.Emit(Instr{Op: OReturn})
	code, _ := a.Finish()
	ctx := &rt.Context{
		Stack:    rt.NewValueStack(64, false),
		Inst:     &rt.Instance{Memory: &rt.Memory{}},
		MaxDepth: 8,
	}
	_, err := code.Run(ctx, &rt.FuncInst{Idx: 5}, 0)
	trap, ok := err.(*rt.Trap)
	if !ok {
		t.Fatalf("expected trap, got %v", err)
	}
	if trap.Kind != rt.TrapDivByZero || trap.FuncIdx != 5 || trap.PC != 42 {
		t.Errorf("trap = %+v", trap)
	}
}

func TestMemoryBounds(t *testing.T) {
	a := NewAsm()
	a.Emit(Instr{Op: OLoadSlot, A: 1, Imm: 0})
	a.Emit(Instr{Op: OLd32, A: 2, B: 1, Imm: 0})
	a.Emit(Instr{Op: OStoreSlot, B: 2, Imm: 1})
	a.Emit(Instr{Op: OReturn})
	code, _ := a.Finish()
	ctx := &rt.Context{
		Stack:    rt.NewValueStack(64, false),
		Inst:     &rt.Instance{Memory: &rt.Memory{Data: make([]byte, 8)}},
		MaxDepth: 8,
	}
	ctx.Stack.Slots[0] = 6 // 6+4 > 8: out of bounds
	if _, err := code.Run(ctx, &rt.FuncInst{}, 0); err == nil {
		t.Fatal("expected OOB trap")
	}
	ctx.Stack.Slots[0] = 4
	ctx.Inst.Memory.Data[4] = 0xAA
	if _, err := code.Run(ctx, &rt.FuncInst{}, 0); err != nil {
		t.Fatal(err)
	}
	if ctx.Stack.Slots[1] != 0xAA {
		t.Errorf("loaded %#x", ctx.Stack.Slots[1])
	}
}

func TestDisassembleStable(t *testing.T) {
	a := NewAsm()
	a.Emit(Instr{Op: OConst, A: 3, Imm: 42})
	a.Emit(Instr{Op: OI32AddImm, A: 4, B: 3, Imm: 1})
	a.Emit(Instr{Op: OStoreSlot, B: 4, Imm: 2})
	a.Emit(Instr{Op: OReturn})
	code, _ := a.Finish()
	d := code.Disassemble()
	for _, want := range []string{"const", "r3, #42", "i32.add_imm", "[vfp+2], r4", "return"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestCodeInterfaces(t *testing.T) {
	c := &Code{OSREntries: map[int]int{10: 3}, CodeBytes: 64,
		Stackmaps: map[int][]int32{5: {0, 2}}}
	if b := c.Bytes(); b != 64 {
		t.Errorf("Bytes = %d", b)
	}
	if pc, ok := c.OSREntry(10); !ok || pc != 3 {
		t.Errorf("OSREntry = %d %v", pc, ok)
	}
	if _, ok := c.OSREntry(11); ok {
		t.Error("unexpected OSR entry")
	}
	if m, ok := c.StackmapAt(5); !ok || len(m) != 2 {
		t.Errorf("StackmapAt = %v %v", m, ok)
	}
	c.Invalidate()
	if !c.Invalidated {
		t.Error("Invalidate did not set the flag")
	}
}
