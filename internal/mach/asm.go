package mach

import "fmt"

// Asm is the assembler the compilers emit through: an append-only
// instruction buffer with label binding and forward-reference patching,
// the analog of a machine-code assembler with a relocation list.
type Asm struct {
	code   []Instr
	wasmPC []int32
	curPC  int32 // wasm pc attributed to instructions being emitted
	tables [][]int32

	// labels[i] is the bound machine pc, or -1 while unbound.
	labels []int
	// fixups maps label -> list of instruction indices whose Imm is the
	// label target.
	fixups map[int][]int
	// tableFixups maps label -> list of (table, slot) positions.
	tableFixups map[int][][2]int
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{fixups: make(map[int][]int), tableFixups: make(map[int][][2]int)}
}

// SetWasmPC sets the bytecode offset attributed to subsequently emitted
// instructions (for trap attribution and deopt).
func (a *Asm) SetWasmPC(pc int) { a.curPC = int32(pc) }

// Pos returns the current machine pc (the index of the next instruction).
func (a *Asm) Pos() int { return len(a.code) }

// Emit appends an instruction and returns its machine pc.
func (a *Asm) Emit(in Instr) int {
	a.code = append(a.code, in)
	a.wasmPC = append(a.wasmPC, a.curPC)
	return len(a.code) - 1
}

// NewLabel allocates an unbound label.
func (a *Asm) NewLabel() int {
	a.labels = append(a.labels, -1)
	return len(a.labels) - 1
}

// Bind binds label to the current position and patches pending fixups.
func (a *Asm) Bind(label int) {
	if a.labels[label] != -1 {
		panic(fmt.Sprintf("mach.Asm: label %d bound twice", label))
	}
	pos := len(a.code)
	a.labels[label] = pos
	for _, idx := range a.fixups[label] {
		a.code[idx].Imm = uint64(pos)
	}
	delete(a.fixups, label)
	for _, ts := range a.tableFixups[label] {
		a.tables[ts[0]][ts[1]] = int32(pos)
	}
	delete(a.tableFixups, label)
}

// Bound reports whether the label has been bound (loop headers are bound
// before their branches; forward labels after).
func (a *Asm) Bound(label int) bool { return a.labels[label] != -1 }

// Target returns the pc of a bound label.
func (a *Asm) Target(label int) int { return a.labels[label] }

// EmitBranch emits a branch instruction whose Imm is the label target,
// recording a fixup when the label is not yet bound.
func (a *Asm) EmitBranch(in Instr, label int) int {
	if a.labels[label] != -1 {
		in.Imm = uint64(a.labels[label])
		return a.Emit(in)
	}
	idx := a.Emit(in)
	a.fixups[label] = append(a.fixups[label], idx)
	return idx
}

// NewTable allocates a br_table target vector whose entries reference
// the given labels, patched as they bind. Returns the table index.
func (a *Asm) NewTable(labels []int) int {
	t := make([]int32, len(labels))
	tidx := len(a.tables)
	a.tables = append(a.tables, t)
	for i, l := range labels {
		if a.labels[l] != -1 {
			t[i] = int32(a.labels[l])
		} else {
			a.tableFixups[l] = append(a.tableFixups[l], [2]int{tidx, i})
		}
	}
	return tidx
}

// Finish seals the assembly into a Code object. All labels referenced by
// branches must be bound.
func (a *Asm) Finish() (*Code, error) {
	if len(a.fixups) > 0 || len(a.tableFixups) > 0 {
		return nil, fmt.Errorf("mach.Asm: %d labels left unbound", len(a.fixups)+len(a.tableFixups))
	}
	return &Code{
		Instrs: a.code,
		WasmPC: a.wasmPC,
		Tables: a.tables,
		// One MachCode instruction stands in for one native
		// instruction; 4 bytes approximates RISC-style encoding for
		// compile-throughput accounting.
		CodeBytes: len(a.code) * 4,
	}, nil
}
