package spc

import (
	"wizgo/internal/mach"
	"wizgo/internal/wasm"
)

// isFusableCmp reports whether op is an integer comparison the peephole
// can defer into a fused compare-and-branch, and its operand width.
func isFusableCmp(op wasm.Opcode) (wasm.ValueType, bool) {
	switch op {
	case wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI32LtS, wasm.OpI32LtU, wasm.OpI32GtS,
		wasm.OpI32GtU, wasm.OpI32LeS, wasm.OpI32LeU, wasm.OpI32GeS, wasm.OpI32GeU:
		return wasm.I32, true
	case wasm.OpI64Eq, wasm.OpI64Ne, wasm.OpI64LtS, wasm.OpI64LtU, wasm.OpI64GtS,
		wasm.OpI64GtU, wasm.OpI64LeS, wasm.OpI64LeU, wasm.OpI64GeS, wasm.OpI64GeU:
		return wasm.I64, true
	}
	return 0, false
}

// compileNumericOrMem handles loads, stores, and the table-driven
// numeric instruction set.
func (c *compiler) compileNumericOrMem(op wasm.Opcode) error {
	switch op.Imm() {
	case wasm.ImmMem:
		if _, err := c.r.U32(); err != nil { // align
			return err
		}
		offset, err := c.r.U32()
		if err != nil {
			return err
		}
		// When the analysis proved this access in bounds, select the
		// unchecked MachCode form. c.opPC is the wasm pc of the access.
		nc := c.info.Facts.InBoundsAt(c.opPC)
		if mop, resT := loadForm(op); mop != 0 {
			if nc {
				mop = mach.Unchecked(mop)
			}
			c.compileLoad(mop, resT, offset)
			return nil
		}
		mop := storeForm(op)
		if nc {
			mop = mach.Unchecked(mop)
		}
		c.compileStore(mop, offset)
		return nil
	}

	params, results, ok := op.Sig()
	if !ok {
		return c.fail("unsupported opcode %v", op)
	}
	switch len(params) {
	case 1:
		c.compileUn(op, results[0])
	case 2:
		c.compileBin(op, results[0])
	default:
		return c.fail("unexpected arity for %v", op)
	}
	return nil
}

func (c *compiler) compileLoad(mop mach.Op, resT wasm.ValueType, offset uint32) {
	addr := c.pop()
	aSlot := c.nLocals + c.st.h
	ra := c.ensureReg(&addr, aSlot)
	rd := c.destReg(&addr)
	c.releaseAll(&addr)
	c.asm.Emit(mach.Instr{Op: mop, A: int32(rd), B: int32(ra), Imm: uint64(offset)})
	c.push(aval{typ: resT, reg: rd})
}

func (c *compiler) compileStore(mop mach.Op, offset uint32) {
	val := c.pop()
	vSlot := c.nLocals + c.st.h
	rv := c.ensureReg(&val, vSlot)
	addr := c.pop()
	aSlot := c.nLocals + c.st.h
	ra := c.ensureReg(&addr, aSlot)
	c.asm.Emit(mach.Instr{Op: mop, B: int32(ra), C: int32(rv), Imm: uint64(offset)})
	c.releaseAll(&val, &addr)
}

func (c *compiler) compileUn(op wasm.Opcode, resT wasm.ValueType) {
	v := c.pop()
	vSlot := c.nLocals + c.st.h

	if c.cfg.ConstFold && v.isConst {
		if folded, ok := evalNumericConst(op, v.konst); ok {
			c.release(&v)
			c.push(aval{typ: resT, reg: noReg, isConst: true, konst: folded})
			return
		}
	}

	// Defer eqz for compare-branch fusion.
	if c.cfg.Peephole && (op == wasm.OpI32Eqz || op == wasm.OpI64Eqz) {
		width := wasm.I32
		if op == wasm.OpI64Eqz {
			width = wasm.I64
		}
		rb := c.ensureReg(&v, vSlot)
		c.pending = &pendingCmp{op: op, rb: rb, operandB: width, resType: wasm.I32}
		v.reg = noReg // reference moved into the pending record
		c.st.h++      // the pending result occupies the slot abstractly
		c.st.avals[c.nLocals+c.st.h-1] = aval{typ: wasm.I32, reg: noReg}
		return
	}

	rv := c.ensureReg(&v, vSlot)
	rd := c.destReg(&v)
	c.releaseAll(&v)
	if mop, ok := unForm(op); ok {
		c.asm.Emit(mach.Instr{Op: mop, A: int32(rd), B: int32(rv)})
	} else {
		c.asm.Emit(mach.Instr{Op: mach.OGen1, A: int32(rd), B: int32(rv), Imm: uint64(op)})
	}
	c.push(aval{typ: resT, reg: rd})
}

func (c *compiler) compileBin(op wasm.Opcode, resT wasm.ValueType) {
	b := c.pop()
	bSlot := c.nLocals + c.st.h
	a := c.pop()
	aSlot := c.nLocals + c.st.h

	// Constant folding (feature "KF").
	if c.cfg.ConstFold && a.isConst && b.isConst {
		if folded, ok := evalNumericConst(op, a.konst, b.konst); ok {
			c.release(&a)
			c.release(&b)
			c.push(aval{typ: resT, reg: noReg, isConst: true, konst: folded})
			return
		}
	}

	// Strength reduction on identities (x+0, x*1, x|0, ...).
	if c.cfg.ConstFold && b.isConst && isIdentity(op, b.konst) {
		c.release(&b)
		c.push(a)
		return
	}

	// Deferred compare for branch fusion (peephole).
	if width, fusable := isFusableCmp(op); fusable && c.cfg.Peephole {
		if b.isConst && width == wasm.I32 && c.cfg.ISel {
			ra := c.ensureReg(&a, aSlot)
			a.reg = noReg
			c.pending = &pendingCmp{op: op, rb: ra, imm: b.konst, isImm: true,
				operandB: width, resType: wasm.I32}
		} else {
			ra := c.ensureReg(&a, aSlot)
			rb := c.ensureReg(&b, bSlot)
			a.reg = noReg
			b.reg = noReg
			c.pending = &pendingCmp{op: op, rb: ra, rc: rb, operandB: width,
				resType: wasm.I32}
		}
		c.st.h++
		c.st.avals[c.nLocals+c.st.h-1] = aval{typ: wasm.I32, reg: noReg}
		return
	}

	// Immediate-mode instruction selection (feature "ISEL").
	if c.cfg.ISel && b.isConst {
		if mop, ok := immForm(op); ok {
			ra := c.ensureReg(&a, aSlot)
			rd := c.destReg(&a)
			c.releaseAll(&a)
			c.asm.Emit(mach.Instr{Op: mop, A: int32(rd), B: int32(ra), Imm: b.konst})
			c.push(aval{typ: resT, reg: rd})
			return
		}
	}

	ra := c.ensureReg(&a, aSlot)
	rb := c.ensureReg(&b, bSlot)
	rd := c.destReg(&a, &b)
	c.releaseAll(&a, &b)
	if mop, ok := regForm(op); ok {
		c.asm.Emit(mach.Instr{Op: mop, A: int32(rd), B: int32(ra), C: int32(rb)})
	} else {
		c.asm.Emit(mach.Instr{Op: mach.OGen2, A: int32(rd), B: int32(ra), C: int32(rb), Imm: uint64(op)})
	}
	c.push(aval{typ: resT, reg: rd})
}

// isIdentity reports whether `x op k` is just x — the simple strength
// reductions the paper cites, e.g. (i32.add x (i32.const 0)).
func isIdentity(op wasm.Opcode, k uint64) bool {
	switch op {
	case wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Or, wasm.OpI32Xor,
		wasm.OpI32Shl, wasm.OpI32ShrS, wasm.OpI32ShrU, wasm.OpI32Rotl, wasm.OpI32Rotr:
		return uint32(k) == 0
	case wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Or, wasm.OpI64Xor,
		wasm.OpI64Shl, wasm.OpI64ShrS, wasm.OpI64ShrU, wasm.OpI64Rotl, wasm.OpI64Rotr:
		return k == 0
	case wasm.OpI32Mul, wasm.OpI32DivS, wasm.OpI32DivU:
		return uint32(k) == 1
	case wasm.OpI64Mul, wasm.OpI64DivS, wasm.OpI64DivU:
		return k == 1
	case wasm.OpI32And:
		return uint32(k) == 0xFFFFFFFF
	case wasm.OpI64And:
		return k == 0xFFFFFFFFFFFFFFFF
	}
	return false
}
