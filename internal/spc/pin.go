package spc

import (
	"wizgo/internal/mach"
	"wizgo/internal/wasm"
)

// analyzeLocals is the optimizing tier's extra pre-pass: decode the body
// once, count local accesses, and pin the hottest locals into dedicated
// registers above the scratch window. Pinned locals keep their register
// across merges and calls (callee-saved style), which is precisely what
// a single forward pass cannot provide and why optimizing tiers beat
// baselines on loop-heavy code.
func (c *compiler) analyzeLocals() error {
	if c.cfg.PinLocals <= 0 {
		return nil
	}
	counts := make([]int, len(c.info.LocalTypes))
	r := wasm.NewReader(c.decl.Body)
	for r.Len() > 0 {
		op, err := r.ReadOpcode()
		if err != nil {
			return err
		}
		switch op {
		case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
			idx, err := r.U32()
			if err != nil {
				return err
			}
			if int(idx) < len(counts) {
				counts[idx]++
			}
		default:
			if err := r.SkipImm(op); err != nil {
				return err
			}
		}
	}

	maxPins := mach.NumRegs - c.cfg.NumRegs - 1 // reserve the scratch register
	if c.cfg.PinLocals < maxPins {
		maxPins = c.cfg.PinLocals
	}
	c.pinned = make([]int8, len(c.info.LocalTypes))
	for i := range c.pinned {
		c.pinned[i] = noReg
	}
	// Select the most-used non-reference locals.
	type cand struct{ idx, count int }
	var cands []cand
	for i, n := range counts {
		if n > 0 && !c.info.LocalTypes[i].IsRef() {
			cands = append(cands, cand{i, n})
		}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].count > cands[j-1].count; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	next := int8(c.cfg.NumRegs)
	for i := 0; i < len(cands) && i < maxPins; i++ {
		c.pinned[cands[i].idx] = next
		next++
	}
	return nil
}

// isPinned reports whether slot (a local index) has a dedicated register.
func (c *compiler) isPinned(slot int) bool {
	return c.pinned != nil && slot < len(c.pinned) && c.pinned[slot] != noReg
}

// rebindPinned restores the permanent register bindings of pinned locals
// after a register-file reset (merges, calls).
func (c *compiler) rebindPinned() {
	if c.pinned == nil {
		return
	}
	for i, r := range c.pinned {
		if r == noReg {
			continue
		}
		av := &c.st.avals[i]
		av.reg = r
		c.st.regs.refs[r] = 1
	}
}

// pinnedPrologue loads parameters into their pinned registers and
// initializes pinned declared locals to zero.
func (c *compiler) pinnedPrologue(nParams int) {
	if c.pinned == nil {
		return
	}
	for i, r := range c.pinned {
		if r == noReg {
			continue
		}
		av := &c.st.avals[i]
		if i < nParams {
			c.asm.Emit(mach.Instr{Op: mach.OLoadSlot, A: int32(r), Imm: uint64(i)})
		} else {
			c.asm.Emit(mach.Instr{Op: mach.OConst, A: int32(r), Imm: 0})
		}
		av.reg = r
		av.isConst = false
		c.st.regs.refs[r] = 1
	}
}
