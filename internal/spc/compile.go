package spc

import (
	"fmt"

	"wizgo/internal/mach"
	"wizgo/internal/rt"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// ctrl is a control-stack entry mirroring the validator's, extended with
// machine labels and the abstract-state snapshot taken at splits.
type ctrl struct {
	op         wasm.Opcode
	startTypes []wasm.ValueType
	endTypes   []wasm.ValueType
	height     int // operand height at entry, params excluded

	endLabel    int
	elseLabel   int // if only
	headerLabel int // loop only (bound at entry)

	unreachable bool
	hasElse     bool
	branched    bool // some branch targets this frame's label
	ifReachable bool // the if itself was in reachable code
	saved       *state
}

func (f *ctrl) labelArity() int {
	if f.op == wasm.OpLoop {
		return len(f.startTypes)
	}
	return len(f.endTypes)
}

type compiler struct {
	m      *wasm.Module
	fidx   uint32
	decl   *wasm.Func
	info   *validate.FuncInfo
	probes *rt.ProbeSet
	cfg    Config
	asm    *mach.Asm

	st      state
	ctrls   []ctrl
	nLocals int
	pending *pendingCmp

	osrEntries map[int]int
	stackmaps  map[int][]int32
	pinned     []int8 // local index -> dedicated register, or noReg
	counters   []*rt.CounterProbe
	tosProbes  []rt.TosProbe

	r    *wasm.Reader
	opPC int
}

func (c *compiler) fail(format string, args ...any) error {
	return fmt.Errorf("spc: func %d at +%d: %s", c.fidx, c.opPC, fmt.Sprintf(format, args...))
}

// ---- slot and register plumbing ----

func (c *compiler) slotOf(operandPos int) int { return c.nLocals + operandPos }
func (c *compiler) top() int                  { return c.nLocals + c.st.h - 1 }

// alloc returns a register, spilling a victim if the file is full.
func (c *compiler) alloc() int8 {
	if r := c.st.regs.tryAlloc(); r != noReg {
		return r
	}
	for i := 0; i < c.st.regs.limit; i++ {
		v := c.st.regs.victim()
		c.spillReg(v)
		if c.st.regs.refs[v] == 0 {
			c.st.regs.refs[v] = 1
			return v
		}
	}
	panic("spc: register file wedged (all registers pinned)")
}

// spillReg evicts every slot cached in reg, storing dirty values.
func (c *compiler) spillReg(reg int8) {
	limit := c.nLocals + c.st.h
	for i := 0; i < limit; i++ {
		av := &c.st.avals[i]
		if av.reg == reg {
			if !av.inMem {
				c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: int32(reg), Imm: uint64(i)})
				av.inMem = true
			}
			av.reg = noReg
			c.st.regs.release(reg)
		}
	}
}

// ensureReg materializes v (popped from slot slotIdx) into a register.
func (c *compiler) ensureReg(v *aval, slotIdx int) int8 {
	if v.reg != noReg {
		return v.reg
	}
	r := c.alloc()
	switch {
	case v.isConst:
		c.asm.Emit(mach.Instr{Op: mach.OConst, A: int32(r), Imm: v.konst})
	case v.inMem:
		c.asm.Emit(mach.Instr{Op: mach.OLoadSlot, A: int32(r), Imm: uint64(slotIdx)})
	default:
		panic("spc: value neither constant, register, nor memory")
	}
	v.reg = r
	return r
}

// push appends an operand slot with the given abstract value, applying
// eager operand tagging.
func (c *compiler) push(av aval) *aval {
	idx := c.nLocals + c.st.h
	c.st.avals[idx] = av
	c.st.h++
	if c.cfg.Tags == rt.TagsEager || c.cfg.Tags == rt.TagsEagerOperands {
		c.emitTag(idx, av.typ)
		c.st.avals[idx].tagFresh = true
	}
	return &c.st.avals[idx]
}

// pop removes the top operand and returns a copy. The caller must
// release its register reference (or transfer it) once consumed.
func (c *compiler) pop() aval {
	c.st.h--
	return c.st.avals[c.nLocals+c.st.h]
}

func (c *compiler) release(v *aval) {
	if v.reg != noReg {
		c.st.regs.release(v.reg)
		v.reg = noReg
	}
}

// destReg picks a destination register for an op result, reusing a
// source register when this op holds its only reference.
func (c *compiler) destReg(srcs ...*aval) int8 {
	for _, s := range srcs {
		if s.reg != noReg && c.st.regs.refs[s.reg] == 1 {
			r := s.reg
			s.reg = noReg // ownership transferred to the result
			return r
		}
	}
	for _, s := range srcs {
		c.release(s)
	}
	return c.alloc()
}

// releaseAll drops remaining references of sources not consumed by
// destReg reuse.
func (c *compiler) releaseAll(srcs ...*aval) {
	for _, s := range srcs {
		c.release(s)
	}
}

func (c *compiler) emitTag(slot int, t wasm.ValueType) {
	c.asm.Emit(mach.Instr{Op: mach.OStoreTag, A: int32(wasm.TagOf(t)), Imm: uint64(slot)})
}

// ---- canonicalization ----

// flush writes every dirty slot back to the value stack, keeping
// register bindings and constant knowledge (the redundant-spill
// avoidance the paper lists: already-written slots emit nothing).
func (c *compiler) flush() {
	limit := c.nLocals + c.st.h
	for i := 0; i < limit; i++ {
		av := &c.st.avals[i]
		if av.inMem || (i < c.nLocals && c.isPinned(i)) {
			continue
		}
		switch {
		case av.reg != noReg:
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: int32(av.reg), Imm: uint64(i)})
		case av.isConst:
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlotConst, A: int32(i), Imm: av.konst})
		default:
			panic("spc: dirty slot with no location")
		}
		av.inMem = true
	}
}

// dropRegs forgets all register bindings (after calls, which clobber
// caller-saved registers).
func (c *compiler) dropRegs() {
	limit := c.nLocals + c.st.h
	for i := 0; i < limit; i++ {
		if i < c.nLocals && c.isPinned(i) {
			continue
		}
		c.st.avals[i].reg = noReg
	}
	c.st.regs.reset()
	c.rebindPinned()
}

// resetState installs the canonical merge state: operand stack of the
// given types, everything in memory, no registers, no constants.
func (c *compiler) resetState(height int, types []wasm.ValueType) {
	c.st.regs.reset()
	for i := 0; i < c.nLocals; i++ {
		av := &c.st.avals[i]
		av.reg = noReg
		av.isConst = false
		av.inMem = true
		av.tagFresh = c.localTagsAlwaysFresh()
	}
	c.rebindPinned()
	for i := 0; i < height; i++ {
		idx := c.nLocals + i
		var t wasm.ValueType
		if i >= height-len(types) {
			t = types[i-(height-len(types))]
		} else {
			// Slots beneath the merged values belong to enclosing
			// frames; their types are unknown here but irrelevant —
			// they are in memory with fresh-enough tags only if an
			// observation stored them, so mark them stale.
			t = c.st.avals[idx].typ
		}
		c.st.avals[idx] = aval{typ: t, reg: noReg, inMem: true,
			tagFresh: c.cfg.Tags == rt.TagsEager || c.cfg.Tags == rt.TagsEagerOperands}
	}
	c.st.h = height
}

func (c *compiler) localTagsAlwaysFresh() bool {
	switch c.cfg.Tags {
	case rt.TagsOnDemand, rt.TagsEager, rt.TagsEagerLocals:
		// Local types are static; the prologue stored their tags once
		// (params by the caller) and they never change.
		return true
	}
	return false
}

// syncTags stores stale tags before an observation point (calls,
// probes) — the on-demand strategy that Figure 5 shows eliminates
// nearly all tagging overhead.
func (c *compiler) syncTags() {
	switch c.cfg.Tags {
	case rt.TagsOnDemand:
		limit := c.nLocals + c.st.h
		for i := 0; i < limit; i++ {
			av := &c.st.avals[i]
			if !av.tagFresh {
				c.emitTag(i, av.typ)
				av.tagFresh = true
			}
		}
	case rt.TagsLazy:
		// Locals are reconstructed by the stack walker; only operand
		// tags are stored.
		limit := c.nLocals + c.st.h
		for i := c.nLocals; i < limit; i++ {
			av := &c.st.avals[i]
			if !av.tagFresh {
				c.emitTag(i, av.typ)
				av.tagFresh = true
			}
		}
	}
}

// ---- pending-compare (peephole) handling ----

// matPending emits the deferred comparison into a register.
func (c *compiler) matPending() {
	p := c.pending
	if p == nil {
		return
	}
	c.pending = nil
	topIdx := c.top()
	var rd int8
	if p.isImm {
		rimm := c.alloc()
		c.asm.Emit(mach.Instr{Op: mach.OConst, A: int32(rimm), Imm: p.imm})
		rd = c.alloc()
		mop, _ := regForm(p.op)
		c.asm.Emit(mach.Instr{Op: mop, A: int32(rd), B: int32(p.rb), C: int32(rimm)})
		c.st.regs.release(rimm)
		c.st.regs.release(p.rb)
	} else if p.op == wasm.OpI32Eqz || p.op == wasm.OpI64Eqz {
		rd = c.alloc()
		mop, _ := unForm(p.op)
		c.asm.Emit(mach.Instr{Op: mop, A: int32(rd), B: int32(p.rb)})
		c.st.regs.release(p.rb)
	} else {
		rd = c.alloc()
		mop, _ := regForm(p.op)
		c.asm.Emit(mach.Instr{Op: mop, A: int32(rd), B: int32(p.rb), C: int32(p.rc)})
		c.st.regs.release(p.rb)
		c.st.regs.release(p.rc)
	}
	av := &c.st.avals[topIdx]
	av.reg = rd
	av.inMem = false
	av.isConst = false
}

// emitFusedBranch consumes the pending compare (or a popped condition
// value) and emits the tightest branch to label: fused compare-branch,
// or a plain conditional branch. negate branches when the condition is
// false (used by `if`).
func (c *compiler) emitCondBranch(label int, negate bool) {
	if p := c.pending; p != nil && c.cfg.Peephole {
		c.pending = nil
		c.st.h-- // consume the pending compare's stack slot
		op := p.op
		if op == wasm.OpI32Eqz || op == wasm.OpI64Eqz {
			// eqz fuses to br_if_zero / br_if_nonzero directly.
			mop := mach.OBrIfZero
			if negate {
				mop = mach.OBrIfNonZero
			}
			if p.operandB == wasm.I64 {
				// No 64-bit zero-test branch; materialize via compare
				// against an immediate-zero i64 register path.
				rz := c.alloc()
				c.asm.Emit(mach.Instr{Op: mach.OConst, A: int32(rz), Imm: 0})
				fop := mach.OBrI64Eq
				if negate {
					fop = mach.OBrI64Ne
				}
				c.asm.EmitBranch(mach.Instr{Op: fop, B: int32(p.rb), C: int32(rz)}, label)
				c.st.regs.release(rz)
			} else {
				c.asm.EmitBranch(mach.Instr{Op: mop, B: int32(p.rb)}, label)
			}
			c.st.regs.release(p.rb)
			return
		}
		if negate {
			op = invertCmp(op)
		}
		if mop, ok := fusedBr(op, p.operandB, p.isImm); ok {
			in := mach.Instr{Op: mop, B: int32(p.rb)}
			if p.isImm {
				in.C = int32(uint32(p.imm))
			} else {
				in.C = int32(p.rc)
			}
			c.asm.EmitBranch(in, label)
			c.st.regs.release(p.rb)
			if !p.isImm {
				c.st.regs.release(p.rc)
			}
			return
		}
		// Unfusable pending (shouldn't happen): re-install and fall
		// through to materialization.
		c.pending = p
		c.st.h++
	}
	c.matPending()
	v := c.pop()
	r := c.ensureReg(&v, c.nLocals+c.st.h)
	op := mach.OBrIfNonZero
	if negate {
		op = mach.OBrIfZero
	}
	c.asm.EmitBranch(mach.Instr{Op: op, B: int32(r)}, label)
	c.release(&v)
}

// ---- branch value transfer ----

// transferTo stores the top `arity` operand values into the target
// positions expected at the destination label (destHeight.. in operand
// positions). Emitted code only; the abstract state is not updated, so
// callers on conditional paths can keep compiling the fall-through.
func (c *compiler) transferTo(destHeight, arity int) {
	if arity == 0 {
		return
	}
	srcBase := c.st.h - arity
	if srcBase == destHeight {
		// Already in place; ensure values are in memory.
		for i := 0; i < arity; i++ {
			idx := c.slotOf(srcBase + i)
			av := c.st.avals[idx] // copy: do not mutate fall-through state
			if av.inMem {
				continue
			}
			if av.reg != noReg {
				c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: int32(av.reg), Imm: uint64(idx)})
			} else {
				c.asm.Emit(mach.Instr{Op: mach.OStoreSlotConst, A: int32(idx), Imm: av.konst})
			}
		}
		return
	}
	for i := 0; i < arity; i++ {
		src := c.slotOf(srcBase + i)
		dst := c.slotOf(destHeight + i)
		av := c.st.avals[src]
		switch {
		case av.reg != noReg:
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: int32(av.reg), Imm: uint64(dst)})
		case av.isConst:
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlotConst, A: int32(dst), Imm: av.konst})
		default:
			// The reserved scratch register avoids alloc() here, which
			// could emit victim spills on a conditionally-taken path
			// and desynchronize the fall-through abstract state.
			c.asm.Emit(mach.Instr{Op: mach.OLoadSlot, A: scratchReg, Imm: uint64(src)})
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: scratchReg, Imm: uint64(dst)})
		}
	}
}

// frameAt returns the control frame for branch depth d.
func (c *compiler) frameAt(d uint32) *ctrl {
	return &c.ctrls[len(c.ctrls)-1-int(d)]
}

// branchTo compiles an unconditional transfer to the frame at depth d:
// flush, move the label arity values into place, jump.
func (c *compiler) branchTo(d uint32) {
	fr := c.frameAt(d)
	fr.branched = true
	arity := fr.labelArity()
	c.flush()
	c.transferTo(fr.height, arity)
	if fr.op == wasm.OpLoop {
		c.asm.EmitBranch(mach.Instr{Op: mach.OJump}, fr.headerLabel)
	} else {
		c.asm.EmitBranch(mach.Instr{Op: mach.OJump}, fr.endLabel)
	}
	// Pop the transferred values abstractly.
	for i := 0; i < arity; i++ {
		v := c.pop()
		c.release(&v)
	}
}
