package spc

import (
	"wizgo/internal/mach"
	"wizgo/internal/wasm"
)

// aval is the abstract value of one frame slot (local or operand),
// Figure 1's per-slot state: register assignment, constant knowledge,
// spill state, and tag freshness.
type aval struct {
	typ      wasm.ValueType
	reg      int8 // register caching this slot's value, or -1
	isConst  bool
	konst    uint64
	inMem    bool // slots[vfp+i] holds the current value
	tagFresh bool // tags[vfp+i] holds the current tag
}

const noReg = int8(-1)

// scratchReg is the reserved assembler temporary (the analog of a
// scratch machine register like r11): never allocated, never pinned, so
// it is always safe for short move sequences without regalloc traffic.
const scratchReg = int32(mach.NumRegs - 1)

// regFile tracks register occupancy. refs counts how many live slots
// reference each register; with MultiReg a register may cache several
// slots (feature "MR"), without it at most one.
type regFile struct {
	refs   [mach.NumRegs]int16
	cursor int
	limit  int
}

func (r *regFile) reset() {
	for i := range r.refs {
		r.refs[i] = 0
	}
	r.cursor = 0
}

// tryAlloc returns a free register or -1.
func (r *regFile) tryAlloc() int8 {
	for i := 0; i < r.limit; i++ {
		reg := (r.cursor + i) % r.limit
		if r.refs[reg] == 0 {
			r.cursor = (reg + 1) % r.limit
			r.refs[reg] = 1
			return int8(reg)
		}
	}
	return noReg
}

// victim picks a register to spill, round-robin.
func (r *regFile) victim() int8 {
	v := int8(r.cursor % r.limit)
	r.cursor = (int(v) + 1) % r.limit
	return v
}

func (r *regFile) retain(reg int8)  { r.refs[reg]++ }
func (r *regFile) release(reg int8) { r.refs[reg]-- }

// state is the compiler's abstract machine state: one aval per frame
// slot plus the register file. Slots 0..numLocals-1 are locals; operand
// slot i lives at numLocals+i. h is the operand stack height.
type state struct {
	avals []aval
	h     int
	regs  regFile
}

// snapshot returns a deep copy — the paper's "making copy extremely
// cheap (i.e. memcpy)" strategy for control-flow splits.
func (s *state) snapshot() *state {
	cp := &state{h: s.h, regs: s.regs}
	cp.avals = make([]aval, len(s.avals))
	copy(cp.avals, s.avals)
	return cp
}

// restore overwrites s with a previously taken snapshot.
func (s *state) restore(from *state) {
	copy(s.avals, from.avals)
	s.h = from.h
	s.regs = from.regs
}

// releaseVal drops a popped value's register reference.
func (s *state) releaseVal(v *aval) {
	if v.reg != noReg {
		s.regs.release(v.reg)
		v.reg = noReg
	}
}

// pendingCmp is a compare whose emission is deferred one instruction so
// a following br_if/if can fuse it (the paper's peephole optimization).
// Its operand registers stay referenced until emitted or fused.
type pendingCmp struct {
	op       wasm.Opcode // the wasm comparison (or i32.eqz)
	rb, rc   int8        // operand registers (rc unused when imm form)
	imm      uint64
	isImm    bool
	resType  wasm.ValueType // always i32
	operandB wasm.ValueType // i32 or i64 comparison width
}

// fusedBr maps a wasm compare opcode to the fused branch-if-true
// MachCode op, for i32 and i64 widths, register and immediate forms.
func fusedBr(op wasm.Opcode, width wasm.ValueType, isImm bool) (mach.Op, bool) {
	if width == wasm.I64 {
		if isImm {
			return 0, false
		}
		switch op {
		case wasm.OpI64Eq:
			return mach.OBrI64Eq, true
		case wasm.OpI64Ne:
			return mach.OBrI64Ne, true
		case wasm.OpI64LtS:
			return mach.OBrI64LtS, true
		case wasm.OpI64LtU:
			return mach.OBrI64LtU, true
		case wasm.OpI64GtS:
			return mach.OBrI64GtS, true
		case wasm.OpI64GtU:
			return mach.OBrI64GtU, true
		case wasm.OpI64LeS:
			return mach.OBrI64LeS, true
		case wasm.OpI64LeU:
			return mach.OBrI64LeU, true
		case wasm.OpI64GeS:
			return mach.OBrI64GeS, true
		case wasm.OpI64GeU:
			return mach.OBrI64GeU, true
		}
		return 0, false
	}
	if isImm {
		switch op {
		case wasm.OpI32Eq:
			return mach.OBrI32EqImm, true
		case wasm.OpI32Ne:
			return mach.OBrI32NeImm, true
		case wasm.OpI32LtS:
			return mach.OBrI32LtSImm, true
		case wasm.OpI32LtU:
			return mach.OBrI32LtUImm, true
		case wasm.OpI32GtS:
			return mach.OBrI32GtSImm, true
		case wasm.OpI32GtU:
			return mach.OBrI32GtUImm, true
		case wasm.OpI32LeS:
			return mach.OBrI32LeSImm, true
		case wasm.OpI32LeU:
			return mach.OBrI32LeUImm, true
		case wasm.OpI32GeS:
			return mach.OBrI32GeSImm, true
		case wasm.OpI32GeU:
			return mach.OBrI32GeUImm, true
		}
		return 0, false
	}
	switch op {
	case wasm.OpI32Eq:
		return mach.OBrI32Eq, true
	case wasm.OpI32Ne:
		return mach.OBrI32Ne, true
	case wasm.OpI32LtS:
		return mach.OBrI32LtS, true
	case wasm.OpI32LtU:
		return mach.OBrI32LtU, true
	case wasm.OpI32GtS:
		return mach.OBrI32GtS, true
	case wasm.OpI32GtU:
		return mach.OBrI32GtU, true
	case wasm.OpI32LeS:
		return mach.OBrI32LeS, true
	case wasm.OpI32LeU:
		return mach.OBrI32LeU, true
	case wasm.OpI32GeS:
		return mach.OBrI32GeS, true
	case wasm.OpI32GeU:
		return mach.OBrI32GeU, true
	}
	return 0, false
}

// invertCmp returns the comparison testing the opposite condition, used
// when an `if` needs to branch to its else-arm on false.
func invertCmp(op wasm.Opcode) wasm.Opcode {
	switch op {
	case wasm.OpI32Eq:
		return wasm.OpI32Ne
	case wasm.OpI32Ne:
		return wasm.OpI32Eq
	case wasm.OpI32LtS:
		return wasm.OpI32GeS
	case wasm.OpI32LtU:
		return wasm.OpI32GeU
	case wasm.OpI32GtS:
		return wasm.OpI32LeS
	case wasm.OpI32GtU:
		return wasm.OpI32LeU
	case wasm.OpI32LeS:
		return wasm.OpI32GtS
	case wasm.OpI32LeU:
		return wasm.OpI32GtU
	case wasm.OpI32GeS:
		return wasm.OpI32LtS
	case wasm.OpI32GeU:
		return wasm.OpI32LtU
	case wasm.OpI64Eq:
		return wasm.OpI64Ne
	case wasm.OpI64Ne:
		return wasm.OpI64Eq
	case wasm.OpI64LtS:
		return wasm.OpI64GeS
	case wasm.OpI64LtU:
		return wasm.OpI64GeU
	case wasm.OpI64GtS:
		return wasm.OpI64LeS
	case wasm.OpI64GtU:
		return wasm.OpI64LeU
	case wasm.OpI64LeS:
		return wasm.OpI64GtS
	case wasm.OpI64LeU:
		return wasm.OpI64GtU
	case wasm.OpI64GeS:
		return wasm.OpI64LtS
	case wasm.OpI64GeU:
		return wasm.OpI64LtU
	}
	return 0
}

// immForm maps a wasm binary opcode to its immediate-mode MachCode op
// (feature "ISEL"). Only commutative-or-rhs-immediate forms exist, like
// real ISAs.
func immForm(op wasm.Opcode) (mach.Op, bool) {
	switch op {
	case wasm.OpI32Add:
		return mach.OI32AddImm, true
	case wasm.OpI32Sub:
		return mach.OI32SubImm, true
	case wasm.OpI32Mul:
		return mach.OI32MulImm, true
	case wasm.OpI32And:
		return mach.OI32AndImm, true
	case wasm.OpI32Or:
		return mach.OI32OrImm, true
	case wasm.OpI32Xor:
		return mach.OI32XorImm, true
	case wasm.OpI32Shl:
		return mach.OI32ShlImm, true
	case wasm.OpI32ShrS:
		return mach.OI32ShrSImm, true
	case wasm.OpI32ShrU:
		return mach.OI32ShrUImm, true
	case wasm.OpI64Add:
		return mach.OI64AddImm, true
	case wasm.OpI64Sub:
		return mach.OI64SubImm, true
	case wasm.OpI64Mul:
		return mach.OI64MulImm, true
	case wasm.OpI64And:
		return mach.OI64AndImm, true
	case wasm.OpI64Or:
		return mach.OI64OrImm, true
	case wasm.OpI64Xor:
		return mach.OI64XorImm, true
	case wasm.OpI64Shl:
		return mach.OI64ShlImm, true
	case wasm.OpI64ShrS:
		return mach.OI64ShrSImm, true
	case wasm.OpI64ShrU:
		return mach.OI64ShrUImm, true
	}
	return 0, false
}

// regForm maps a wasm binary opcode to its register MachCode op for the
// dedicated hot set; the remainder go through OGen2.
func regForm(op wasm.Opcode) (mach.Op, bool) {
	switch op {
	case wasm.OpI32Add:
		return mach.OI32Add, true
	case wasm.OpI32Sub:
		return mach.OI32Sub, true
	case wasm.OpI32Mul:
		return mach.OI32Mul, true
	case wasm.OpI32DivS:
		return mach.OI32DivS, true
	case wasm.OpI32DivU:
		return mach.OI32DivU, true
	case wasm.OpI32RemS:
		return mach.OI32RemS, true
	case wasm.OpI32RemU:
		return mach.OI32RemU, true
	case wasm.OpI32And:
		return mach.OI32And, true
	case wasm.OpI32Or:
		return mach.OI32Or, true
	case wasm.OpI32Xor:
		return mach.OI32Xor, true
	case wasm.OpI32Shl:
		return mach.OI32Shl, true
	case wasm.OpI32ShrS:
		return mach.OI32ShrS, true
	case wasm.OpI32ShrU:
		return mach.OI32ShrU, true
	case wasm.OpI64Add:
		return mach.OI64Add, true
	case wasm.OpI64Sub:
		return mach.OI64Sub, true
	case wasm.OpI64Mul:
		return mach.OI64Mul, true
	case wasm.OpI64DivS:
		return mach.OI64DivS, true
	case wasm.OpI64DivU:
		return mach.OI64DivU, true
	case wasm.OpI64RemS:
		return mach.OI64RemS, true
	case wasm.OpI64RemU:
		return mach.OI64RemU, true
	case wasm.OpI64And:
		return mach.OI64And, true
	case wasm.OpI64Or:
		return mach.OI64Or, true
	case wasm.OpI64Xor:
		return mach.OI64Xor, true
	case wasm.OpI64Shl:
		return mach.OI64Shl, true
	case wasm.OpI64ShrS:
		return mach.OI64ShrS, true
	case wasm.OpI64ShrU:
		return mach.OI64ShrU, true
	case wasm.OpI32Eq:
		return mach.OI32Eq, true
	case wasm.OpI32Ne:
		return mach.OI32Ne, true
	case wasm.OpI32LtS:
		return mach.OI32LtS, true
	case wasm.OpI32LtU:
		return mach.OI32LtU, true
	case wasm.OpI32GtS:
		return mach.OI32GtS, true
	case wasm.OpI32GtU:
		return mach.OI32GtU, true
	case wasm.OpI32LeS:
		return mach.OI32LeS, true
	case wasm.OpI32LeU:
		return mach.OI32LeU, true
	case wasm.OpI32GeS:
		return mach.OI32GeS, true
	case wasm.OpI32GeU:
		return mach.OI32GeU, true
	case wasm.OpI64Eq:
		return mach.OI64Eq, true
	case wasm.OpI64Ne:
		return mach.OI64Ne, true
	case wasm.OpI64LtS:
		return mach.OI64LtS, true
	case wasm.OpI64LtU:
		return mach.OI64LtU, true
	case wasm.OpI64GtS:
		return mach.OI64GtS, true
	case wasm.OpI64GtU:
		return mach.OI64GtU, true
	case wasm.OpI64LeS:
		return mach.OI64LeS, true
	case wasm.OpI64LeU:
		return mach.OI64LeU, true
	case wasm.OpI64GeS:
		return mach.OI64GeS, true
	case wasm.OpI64GeU:
		return mach.OI64GeU, true
	case wasm.OpF32Eq:
		return mach.OF32Eq, true
	case wasm.OpF32Ne:
		return mach.OF32Ne, true
	case wasm.OpF32Lt:
		return mach.OF32Lt, true
	case wasm.OpF32Gt:
		return mach.OF32Gt, true
	case wasm.OpF32Le:
		return mach.OF32Le, true
	case wasm.OpF32Ge:
		return mach.OF32Ge, true
	case wasm.OpF64Eq:
		return mach.OF64Eq, true
	case wasm.OpF64Ne:
		return mach.OF64Ne, true
	case wasm.OpF64Lt:
		return mach.OF64Lt, true
	case wasm.OpF64Gt:
		return mach.OF64Gt, true
	case wasm.OpF64Le:
		return mach.OF64Le, true
	case wasm.OpF64Ge:
		return mach.OF64Ge, true
	case wasm.OpF32Add:
		return mach.OF32Add, true
	case wasm.OpF32Sub:
		return mach.OF32Sub, true
	case wasm.OpF32Mul:
		return mach.OF32Mul, true
	case wasm.OpF32Div:
		return mach.OF32Div, true
	case wasm.OpF32Min:
		return mach.OF32Min, true
	case wasm.OpF32Max:
		return mach.OF32Max, true
	case wasm.OpF64Add:
		return mach.OF64Add, true
	case wasm.OpF64Sub:
		return mach.OF64Sub, true
	case wasm.OpF64Mul:
		return mach.OF64Mul, true
	case wasm.OpF64Div:
		return mach.OF64Div, true
	case wasm.OpF64Min:
		return mach.OF64Min, true
	case wasm.OpF64Max:
		return mach.OF64Max, true
	}
	return 0, false
}

// unForm maps a wasm unary opcode to its dedicated MachCode op; the
// remainder go through OGen1.
func unForm(op wasm.Opcode) (mach.Op, bool) {
	switch op {
	case wasm.OpI32Eqz:
		return mach.OI32Eqz, true
	case wasm.OpI64Eqz:
		return mach.OI64Eqz, true
	case wasm.OpF32Neg:
		return mach.OF32Neg, true
	case wasm.OpF32Abs:
		return mach.OF32Abs, true
	case wasm.OpF32Sqrt:
		return mach.OF32Sqrt, true
	case wasm.OpF64Neg:
		return mach.OF64Neg, true
	case wasm.OpF64Abs:
		return mach.OF64Abs, true
	case wasm.OpF64Sqrt:
		return mach.OF64Sqrt, true
	case wasm.OpI32WrapI64:
		return mach.OI32WrapI64, true
	case wasm.OpI64ExtendI32S:
		return mach.OI64ExtendI32S, true
	case wasm.OpI64ExtendI32U:
		return mach.OI64ExtendI32U, true
	case wasm.OpF64ConvertI32S:
		return mach.OF64ConvertI32S, true
	case wasm.OpF64ConvertI32U:
		return mach.OF64ConvertI32U, true
	case wasm.OpF64ConvertI64S:
		return mach.OF64ConvertI64S, true
	case wasm.OpF64ConvertI64U:
		return mach.OF64ConvertI64U, true
	case wasm.OpF32ConvertI32S:
		return mach.OF32ConvertI32S, true
	case wasm.OpF32DemoteF64:
		return mach.OF32DemoteF64, true
	case wasm.OpF64PromoteF32:
		return mach.OF64PromoteF32, true
	case wasm.OpI32TruncF64S:
		return mach.OI32TruncF64S, true
	case wasm.OpI32TruncF64U:
		return mach.OI32TruncF64U, true
	case wasm.OpI64TruncF64S:
		return mach.OI64TruncF64S, true
	case wasm.OpI64TruncF64U:
		return mach.OI64TruncF64U, true
	case wasm.OpI32TruncF32S:
		return mach.OI32TruncF32S, true
	case wasm.OpI32TruncF32U:
		return mach.OI32TruncF32U, true
	case wasm.OpI64TruncF32S:
		return mach.OI64TruncF32S, true
	case wasm.OpI64TruncF32U:
		return mach.OI64TruncF32U, true
	}
	return 0, false
}

// loadForm maps a wasm load opcode to (MachCode op, result type).
func loadForm(op wasm.Opcode) (mach.Op, wasm.ValueType) {
	switch op {
	case wasm.OpI32Load:
		return mach.OLd32, wasm.I32
	case wasm.OpI64Load:
		return mach.OLd64, wasm.I64
	case wasm.OpF32Load:
		return mach.OLd32, wasm.F32
	case wasm.OpF64Load:
		return mach.OLd64, wasm.F64
	case wasm.OpI32Load8S:
		return mach.OLd8S32, wasm.I32
	case wasm.OpI32Load8U:
		return mach.OLd8U32, wasm.I32
	case wasm.OpI32Load16S:
		return mach.OLd16S32, wasm.I32
	case wasm.OpI32Load16U:
		return mach.OLd16U32, wasm.I32
	case wasm.OpI64Load8S:
		return mach.OLd8S64, wasm.I64
	case wasm.OpI64Load8U:
		return mach.OLd8U64, wasm.I64
	case wasm.OpI64Load16S:
		return mach.OLd16S64, wasm.I64
	case wasm.OpI64Load16U:
		return mach.OLd16U64, wasm.I64
	case wasm.OpI64Load32S:
		return mach.OLd32S64, wasm.I64
	case wasm.OpI64Load32U:
		return mach.OLd32U64, wasm.I64
	}
	return 0, 0
}

// storeForm maps a wasm store opcode to its MachCode op.
func storeForm(op wasm.Opcode) mach.Op {
	switch op {
	case wasm.OpI32Store, wasm.OpF32Store:
		return mach.OSt32
	case wasm.OpI64Store, wasm.OpF64Store:
		return mach.OSt64
	case wasm.OpI32Store8, wasm.OpI64Store8:
		return mach.OSt8
	case wasm.OpI32Store16, wasm.OpI64Store16:
		return mach.OSt16
	case wasm.OpI64Store32:
		return mach.OSt32
	}
	return 0
}
