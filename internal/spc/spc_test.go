package spc_test

import (
	"strings"
	"testing"

	"wizgo/internal/mach"
	"wizgo/internal/rt"
	"wizgo/internal/spc"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// compile builds and compiles a single-function module.
func compile(t *testing.T, cfg spc.Config, build func(f *wasm.FuncBuilder), ft wasm.FuncType) *mach.Code {
	t.Helper()
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("f", ft)
	build(f)
	m := b.Module()
	infos, err := validate.Module(m)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	code, err := spc.Compile(m, 0, &m.Funcs[0], &infos[0], nil, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return code
}

func countOp(code *mach.Code, op mach.Op) int {
	n := 0
	for _, in := range code.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

// TestFigure1Golden pins the compiled form of a representative function,
// the analog of the paper's Figure 1 listing: constants fold away,
// locals live in registers, the compare fuses into the branch.
func TestFigure1Golden(t *testing.T) {
	ft := wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32, wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	}
	code := compile(t, spc.Wizard(), func(f *wasm.FuncBuilder) {
		// if (p0 < p1) { return p0 + 3 } else { return p1 * p0 }
		f.LocalGet(0).LocalGet(1).Op(wasm.OpI32LtS)
		f.If(wasm.BlockVal(wasm.I32))
		f.LocalGet(0).I32Const(3).Op(wasm.OpI32Add)
		f.Else()
		f.LocalGet(1).LocalGet(0).Op(wasm.OpI32Mul)
		f.End()
		f.End()
	}, ft)

	disasm := code.Disassemble()
	want := []string{
		"br_i32.ge_s", // fused, inverted compare branches to the else arm
		"i32.add_imm", // immediate-mode selection for +3
		"i32.mul",
		"return",
	}
	for _, w := range want {
		if !strings.Contains(disasm, w) {
			t.Errorf("disassembly missing %q:\n%s", w, disasm)
		}
	}
	// No compare-to-register materialization should remain.
	if strings.Contains(disasm, "i32.lt_s ") {
		t.Errorf("unfused compare survived:\n%s", disasm)
	}
}

// TestConstantFoldingEliminatesCode: a constant expression tree compiles
// to a single constant store.
func TestConstantFolding(t *testing.T) {
	ft := wasm.FuncType{Results: []wasm.ValueType{wasm.I32}}
	body := func(f *wasm.FuncBuilder) {
		f.I32Const(6).I32Const(7).Op(wasm.OpI32Mul)
		f.I32Const(0).Op(wasm.OpI32Add) // identity, also folded
		f.End()
	}
	folded := compile(t, spc.Wizard(), body, ft)
	nok := spc.Wizard()
	nok.TrackConsts = false
	unfolded := compile(t, nok, body, ft)

	if countOp(folded, mach.OI32Mul) != 0 || countOp(folded, mach.OI32MulImm) != 0 {
		t.Errorf("multiply not folded:\n%s", folded.Disassemble())
	}
	if countOp(unfolded, mach.OI32Mul) != 1 {
		t.Errorf("nok variant should emit the multiply:\n%s", unfolded.Disassemble())
	}
	if len(folded.Instrs) >= len(unfolded.Instrs) {
		t.Errorf("folding did not shrink code: %d vs %d", len(folded.Instrs), len(unfolded.Instrs))
	}
}

// TestRegisterCachingElidesLoads: with MR, repeated local.get of the
// same local loads from memory once.
func TestRegisterCachingElidesLoads(t *testing.T) {
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}}
	body := func(f *wasm.FuncBuilder) {
		f.LocalGet(0).LocalGet(0).Op(wasm.OpI32Mul)
		f.LocalGet(0).Op(wasm.OpI32Add)
		f.End()
	}
	mr := compile(t, spc.Wizard(), body, ft)
	cfg := spc.Wizard()
	cfg.MultiReg = false
	nomr := compile(t, cfg, body, ft)

	if n := countOp(mr, mach.OLoadSlot); n != 1 {
		t.Errorf("MR should load the local once, got %d loads:\n%s", n, mr.Disassemble())
	}
	if countOp(nomr, mach.OLoadSlot)+countOp(nomr, mach.OMov) <= countOp(mr, mach.OLoadSlot) {
		t.Errorf("nomr should need more moves/loads")
	}
}

// TestTaggingModesInstructionCounts: eager emits far more tag stores
// than on-demand; notags emits none.
func TestTaggingModes(t *testing.T) {
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}}
	body := func(f *wasm.FuncBuilder) {
		l := f.AddLocal(wasm.I32)
		f.LocalGet(0).I32Const(1).Op(wasm.OpI32Add).LocalSet(l)
		f.LocalGet(l).LocalGet(l).Op(wasm.OpI32Mul)
		f.End()
	}
	counts := map[rt.TagMode]int{}
	for _, mode := range []rt.TagMode{rt.TagsNone, rt.TagsOnDemand, rt.TagsEager} {
		cfg := spc.Wizard()
		cfg.Tags = mode
		code := compile(t, cfg, body, ft)
		counts[mode] = countOp(code, mach.OStoreTag)
	}
	if counts[rt.TagsNone] != 0 {
		t.Errorf("notags emitted %d tag stores", counts[rt.TagsNone])
	}
	if counts[rt.TagsEager] <= counts[rt.TagsOnDemand] {
		t.Errorf("eager (%d) should emit more tag stores than on-demand (%d)",
			counts[rt.TagsEager], counts[rt.TagsOnDemand])
	}
}

// TestStackmapsRecorded: MAP-feature compilers record ref slots at call
// sites.
func TestStackmapsRecorded(t *testing.T) {
	b := wasm.NewBuilder()
	callee := b.NewFunc("callee", wasm.FuncType{})
	callee.End()
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.ExternRef}}
	f := b.NewFunc("f", ft)
	l := f.AddLocal(wasm.ExternRef)
	f.LocalGet(0).LocalSet(l)
	f.Call(callee.Idx)
	f.End()
	m := b.Module()
	infos, err := validate.Module(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spc.Wizard()
	cfg.Stackmaps = true
	cfg.Tags = rt.TagsNone
	code, err := spc.Compile(m, 1, &m.Funcs[1], &infos[1], nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(code.Stackmaps) != 1 {
		t.Fatalf("expected 1 stackmap, got %d", len(code.Stackmaps))
	}
	for _, slots := range code.Stackmaps {
		if len(slots) != 2 { // the ref param and the ref local
			t.Errorf("stackmap slots = %v, want param+local", slots)
		}
	}
}

// TestBranchFolding: br_if with a constant condition folds away (taken
// or not) under KF.
func TestBranchFolding(t *testing.T) {
	ft := wasm.FuncType{Results: []wasm.ValueType{wasm.I32}}
	body := func(f *wasm.FuncBuilder) {
		f.Block(wasm.BlockEmpty)
		f.I32Const(0)
		f.BrIf(0) // never taken: folds to nothing
		f.End()
		f.I32Const(7)
		f.End()
	}
	code := compile(t, spc.Wizard(), body, ft)
	for _, op := range []mach.Op{mach.OBrIfZero, mach.OBrIfNonZero, mach.OJump} {
		if countOp(code, op) != 0 {
			t.Errorf("constant branch not folded:\n%s", code.Disassemble())
		}
	}
}

// TestOSREntriesAtLoops: every loop gets a checkpoint and an OSR entry.
func TestOSREntriesAtLoops(t *testing.T) {
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}}
	code := compile(t, spc.Wizard(), func(f *wasm.FuncBuilder) {
		f.Loop(wasm.BlockEmpty)
		f.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).LocalTee(0)
		f.I32Const(0).Op(wasm.OpI32GtS)
		f.BrIf(0)
		f.End()
		f.End()
	}, ft)
	if len(code.OSREntries) != 1 {
		t.Fatalf("OSR entries = %d, want 1", len(code.OSREntries))
	}
	if countOp(code, mach.OCheckPoint) != 1 {
		t.Error("missing loop checkpoint")
	}
	for _, machPC := range code.OSREntries {
		// The entry points just past the header checkpoint: the
		// interpreter already charged fuel and polled for this arrival
		// at the back-edge it tiered up from, so entering at the
		// checkpoint would double-account it.
		if machPC == 0 || code.Instrs[machPC-1].Op != mach.OCheckPoint {
			t.Error("OSR entry does not point just past a checkpoint")
		}
	}
}

// TestPinnedLocalsRemoveLoopTraffic: the optimizing pre-pass keeps the
// induction variable in a register, removing per-iteration loads.
func TestPinnedLocalsRemoveLoopTraffic(t *testing.T) {
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}}
	body := func(f *wasm.FuncBuilder) {
		acc := f.AddLocal(wasm.I32)
		f.Loop(wasm.BlockEmpty)
		f.LocalGet(acc).LocalGet(0).Op(wasm.OpI32Add).LocalSet(acc)
		f.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).LocalTee(0)
		f.I32Const(0).Op(wasm.OpI32GtS)
		f.BrIf(0)
		f.End()
		f.LocalGet(acc)
		f.End()
	}
	base := compile(t, spc.Wizard(), body, ft)
	pinCfg := spc.Wizard()
	pinCfg.Tags = rt.TagsNone
	pinCfg.PinLocals = 8
	pinned := compile(t, pinCfg, body, ft)

	if countOp(pinned, mach.OLoadSlot) >= countOp(base, mach.OLoadSlot) {
		t.Errorf("pinning should remove slot loads: pinned %d, base %d",
			countOp(pinned, mach.OLoadSlot), countOp(base, mach.OLoadSlot))
	}
	if countOp(pinned, mach.OStoreSlot) >= countOp(base, mach.OStoreSlot) {
		t.Errorf("pinning should remove slot stores: pinned %d, base %d",
			countOp(pinned, mach.OStoreSlot), countOp(base, mach.OStoreSlot))
	}
}

// TestCompileIsDeterministic: same input, same output.
func TestCompileIsDeterministic(t *testing.T) {
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}}
	body := func(f *wasm.FuncBuilder) {
		f.LocalGet(0).I32Const(13).Op(wasm.OpI32Mul)
		f.End()
	}
	a := compile(t, spc.Wizard(), body, ft)
	b := compile(t, spc.Wizard(), body, ft)
	if a.Disassemble() != b.Disassemble() {
		t.Error("compilation is not deterministic")
	}
}
