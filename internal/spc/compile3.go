package spc

import (
	"wizgo/internal/mach"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// instr compiles one Wasm instruction. Unreachable code is decoded but
// generates nothing; control nesting is still tracked so labels resolve.
func (c *compiler) instr(op wasm.Opcode) error {
	if !c.reachable() {
		return c.skipInstr(op)
	}

	// Probes fire before the instruction executes; the site is an
	// observation point (Section IV-D).
	if c.probes != nil && c.probes.HasAt(c.opPC) {
		c.compileProbe(c.opPC)
	}

	// A deferred comparison can only be consumed by an immediately
	// following br_if or if; anything else materializes it.
	if c.pending != nil && op != wasm.OpBrIf && op != wasm.OpIf && op != wasm.OpDrop {
		c.matPending()
	}

	switch op {
	case wasm.OpUnreachable:
		c.asm.Emit(mach.Instr{Op: mach.OTrap, A: int32(rt.TrapUnreachable), Imm: uint64(c.opPC)})
		c.setUnreachable()
	case wasm.OpNop:
	case wasm.OpBlock:
		in, out, err := c.blockType()
		if err != nil {
			return err
		}
		c.ctrls = append(c.ctrls, ctrl{
			op: wasm.OpBlock, startTypes: in, endTypes: out,
			height:   c.st.h - len(in),
			endLabel: c.asm.NewLabel(), elseLabel: -1, headerLabel: -1,
			ifReachable: true,
		})
	case wasm.OpLoop:
		in, out, err := c.blockType()
		if err != nil {
			return err
		}
		// Loop headers are merge points with unknown back-edge state:
		// canonicalize (flush + forget registers and constants), bind
		// the header, and plant the OSR/deopt checkpoint.
		c.flush()
		c.resetState(c.st.h, in)
		bodyPC := c.r.Pos
		trips := c.info.Facts.TripsAt(bodyPC)
		if trips > 0 {
			// Proven-exact-trip loop: prepay its whole fuel charge on
			// fall-in, before the header label so back-edges (and OSR
			// entries) never re-execute it.
			c.asm.Emit(mach.Instr{Op: mach.OFuelPrepay, A: int32(trips), Imm: uint64(bodyPC)})
		}
		header := c.asm.NewLabel()
		c.asm.Bind(header)
		cp := mach.OCheckPoint
		if c.info.Facts.NoPollAt(bodyPC) {
			// Proven-terminating counted loop: keep the checkpoint
			// (deopt point, OSR entry, fuel tick) but skip the
			// per-iteration interrupt poll.
			cp = mach.OCheckPointNoPoll
		}
		prepaid := int32(0)
		if trips > 0 {
			prepaid = 1
		}
		c.asm.Emit(mach.Instr{Op: cp, A: int32(c.nLocals + c.st.h), B: prepaid, Imm: uint64(bodyPC)})
		if c.pinned == nil {
			// With pinned locals the frame is not canonical at loop
			// headers, so OSR entry / deopt is not offered (optimizing
			// tiers in production engines behave the same way). The OSR
			// entry is recorded AFTER the checkpoint: the interpreter
			// has already charged fuel (and polled) at the back-edge it
			// tiers up from, so entering before the checkpoint would
			// charge that header arrival twice. Back-edges still jump
			// to the header label and execute the checkpoint.
			c.osrEntries[bodyPC] = c.asm.Pos()
		}
		c.ctrls = append(c.ctrls, ctrl{
			op: wasm.OpLoop, startTypes: in, endTypes: out,
			height:      c.st.h - len(in),
			headerLabel: header, endLabel: -1, elseLabel: -1,
			ifReachable: true,
		})
	case wasm.OpIf:
		in, out, err := c.blockType()
		if err != nil {
			return err
		}
		elseLabel := c.asm.NewLabel()
		endLabel := c.asm.NewLabel()
		c.flushExcept(1)
		c.emitCondBranch(elseLabel, true)
		fr := ctrl{
			op: wasm.OpIf, startTypes: in, endTypes: out,
			height:   c.st.h - len(in),
			endLabel: endLabel, elseLabel: elseLabel, headerLabel: -1,
			ifReachable: true,
		}
		fr.saved = c.st.snapshot()
		c.ctrls = append(c.ctrls, fr)
	case wasm.OpElse:
		fr := &c.ctrls[len(c.ctrls)-1]
		fr.hasElse = true
		if !fr.unreachable {
			c.matPending()
			c.flush()
			c.transferTo(fr.height, len(fr.endTypes))
			c.asm.EmitBranch(mach.Instr{Op: mach.OJump}, fr.endLabel)
			fr.branched = true
		}
		c.asm.Bind(fr.elseLabel)
		c.st.restore(fr.saved)
		fr.unreachable = !fr.ifReachable
	case wasm.OpEnd:
		return c.compileEnd()
	case wasm.OpBr:
		depth, err := c.r.U32()
		if err != nil {
			return err
		}
		c.branchTo(depth)
		c.setUnreachable()
	case wasm.OpBrIf:
		depth, err := c.r.U32()
		if err != nil {
			return err
		}
		fr := c.frameAt(depth)
		fr.branched = true
		arity := fr.labelArity()
		// Branch folding: a constant condition becomes an
		// unconditional branch or no code at all (feature "KF").
		if c.cfg.ConstFold && c.pending == nil && c.st.h > 0 {
			if av := c.st.avals[c.top()]; av.isConst {
				v := c.pop()
				c.release(&v)
				if uint32(av.konst) != 0 {
					c.branchTo(depth)
					c.setUnreachable()
				}
				return nil
			}
		}
		c.flushExcept(1)
		if arity == 0 {
			label := fr.endLabel
			if fr.op == wasm.OpLoop {
				label = fr.headerLabel
			}
			c.emitCondBranch(label, false)
		} else {
			skip := c.asm.NewLabel()
			c.emitCondBranch(skip, true)
			c.transferTo(fr.height, arity)
			label := fr.endLabel
			if fr.op == wasm.OpLoop {
				label = fr.headerLabel
			}
			c.asm.EmitBranch(mach.Instr{Op: mach.OJump}, label)
			c.asm.Bind(skip)
		}
	case wasm.OpBrTable:
		return c.compileBrTable()
	case wasm.OpReturn:
		c.epilogueReturn(false)
		c.setUnreachable()
	case wasm.OpCall:
		fidx, err := c.r.U32()
		if err != nil {
			return err
		}
		ft, err := c.m.FuncTypeAt(fidx)
		if err != nil {
			return c.fail("%v", err)
		}
		c.observableCall(c.opPC, len(ft.Params))
		argBase := c.nLocals + c.st.h - len(ft.Params)
		c.asm.Emit(mach.Instr{Op: mach.OCall, A: int32(fidx), B: int32(argBase)})
		c.finishCall(ft)
	case wasm.OpCallIndirect:
		typeIdx, err := c.r.U32()
		if err != nil {
			return err
		}
		tblIdx, err := c.r.U32()
		if err != nil {
			return err
		}
		idx := c.pop()
		ridx := c.ensureReg(&idx, c.nLocals+c.st.h)
		ft := c.m.Types[typeIdx]
		c.observableCall(c.opPC, len(ft.Params))
		argBase := c.nLocals + c.st.h - len(ft.Params)
		c.asm.Emit(mach.Instr{Op: mach.OCallIndirect, A: int32(typeIdx), B: int32(argBase), C: int32(ridx), Imm: uint64(tblIdx)})
		c.release(&idx)
		c.finishCall(ft)

	case wasm.OpDrop:
		if c.pending != nil {
			p := c.pending
			c.pending = nil
			c.st.regs.release(p.rb)
			if !p.isImm && p.op != wasm.OpI32Eqz && p.op != wasm.OpI64Eqz {
				c.st.regs.release(p.rc)
			}
			c.st.h--
			return nil
		}
		v := c.pop()
		c.release(&v)
	case wasm.OpSelect:
		c.compileSelect()
	case wasm.OpSelectT:
		n, err := c.r.U32()
		if err != nil {
			return err
		}
		if _, err := c.r.Take(int(n)); err != nil {
			return err
		}
		c.compileSelect()

	case wasm.OpLocalGet:
		idx, err := c.r.U32()
		if err != nil {
			return err
		}
		c.localGet(int(idx))
	case wasm.OpLocalSet:
		idx, err := c.r.U32()
		if err != nil {
			return err
		}
		c.localSet(int(idx))
	case wasm.OpLocalTee:
		idx, err := c.r.U32()
		if err != nil {
			return err
		}
		c.localSet(int(idx))
		c.localGet(int(idx))
	case wasm.OpGlobalGet:
		idx, err := c.r.U32()
		if err != nil {
			return err
		}
		t, _, _ := c.m.GlobalTypeAt(idx)
		r := c.alloc()
		c.asm.Emit(mach.Instr{Op: mach.OGlobalGet, A: int32(r), Imm: uint64(idx)})
		c.push(aval{typ: t, reg: r})
	case wasm.OpGlobalSet:
		idx, err := c.r.U32()
		if err != nil {
			return err
		}
		t, _, _ := c.m.GlobalTypeAt(idx)
		v := c.pop()
		rv := c.ensureReg(&v, c.nLocals+c.st.h)
		c.asm.Emit(mach.Instr{Op: mach.OGlobalSet, B: int32(rv), C: int32(wasm.TagOf(t)), Imm: uint64(idx)})
		c.release(&v)

	case wasm.OpI32Const:
		v, err := c.r.S32()
		if err != nil {
			return err
		}
		c.pushConst(wasm.I32, uint64(uint32(v)))
	case wasm.OpI64Const:
		v, err := c.r.S64()
		if err != nil {
			return err
		}
		c.pushConst(wasm.I64, uint64(v))
	case wasm.OpF32Const:
		bits, err := c.r.F32()
		if err != nil {
			return err
		}
		c.pushConst(wasm.F32, uint64(bits))
	case wasm.OpF64Const:
		bits, err := c.r.F64()
		if err != nil {
			return err
		}
		c.pushConst(wasm.F64, bits)

	case wasm.OpMemorySize:
		if _, err := c.r.Byte(); err != nil {
			return err
		}
		r := c.alloc()
		c.asm.Emit(mach.Instr{Op: mach.OMemSize, A: int32(r)})
		c.push(aval{typ: wasm.I32, reg: r})
	case wasm.OpMemoryGrow:
		if _, err := c.r.Byte(); err != nil {
			return err
		}
		v := c.pop()
		rv := c.ensureReg(&v, c.nLocals+c.st.h)
		rd := c.destReg(&v)
		c.releaseAll(&v)
		c.asm.Emit(mach.Instr{Op: mach.OMemGrow, A: int32(rd), B: int32(rv)})
		c.push(aval{typ: wasm.I32, reg: rd})
	case wasm.OpMemoryCopy:
		if _, err := c.r.Take(2); err != nil {
			return err
		}
		n := c.pop()
		rn := c.ensureReg(&n, c.nLocals+c.st.h)
		src := c.pop()
		rs := c.ensureReg(&src, c.nLocals+c.st.h)
		dst := c.pop()
		rd := c.ensureReg(&dst, c.nLocals+c.st.h)
		c.asm.Emit(mach.Instr{Op: mach.OMemCopy, A: int32(rd), B: int32(rs), C: int32(rn)})
		c.releaseAll(&n, &src, &dst)
	case wasm.OpMemoryFill:
		if _, err := c.r.Byte(); err != nil {
			return err
		}
		n := c.pop()
		rn := c.ensureReg(&n, c.nLocals+c.st.h)
		val := c.pop()
		rv := c.ensureReg(&val, c.nLocals+c.st.h)
		dst := c.pop()
		rd := c.ensureReg(&dst, c.nLocals+c.st.h)
		c.asm.Emit(mach.Instr{Op: mach.OMemFill, A: int32(rd), B: int32(rv), C: int32(rn)})
		c.releaseAll(&n, &val, &dst)

	case wasm.OpRefNull:
		if _, err := c.r.Byte(); err != nil {
			return err
		}
		c.pushConst(wasm.ExternRef, wasm.NullRef)
	case wasm.OpRefIsNull:
		v := c.pop()
		rv := c.ensureReg(&v, c.nLocals+c.st.h)
		rd := c.destReg(&v)
		c.releaseAll(&v)
		c.asm.Emit(mach.Instr{Op: mach.OI64Eqz, A: int32(rd), B: int32(rv)})
		c.push(aval{typ: wasm.I32, reg: rd})
	case wasm.OpRefFunc:
		fidx, err := c.r.U32()
		if err != nil {
			return err
		}
		c.pushConst(wasm.FuncRef, uint64(fidx)+1)

	default:
		return c.compileNumericOrMem(op)
	}
	return nil
}

// pushConst pushes a constant abstract value, or materializes it when
// constant tracking is disabled (the "nok" ablation).
func (c *compiler) pushConst(t wasm.ValueType, bits uint64) {
	if c.cfg.TrackConsts {
		c.push(aval{typ: t, reg: noReg, isConst: true, konst: bits})
		return
	}
	r := c.alloc()
	c.asm.Emit(mach.Instr{Op: mach.OConst, A: int32(r), Imm: bits})
	c.push(aval{typ: t, reg: r})
}

// finishCall pops arguments and pushes results after a call site.
// Registers are dropped: the callee clobbered them.
func (c *compiler) finishCall(ft wasm.FuncType) {
	for range ft.Params {
		v := c.pop()
		c.release(&v)
	}
	c.dropRegs()
	for _, rtyp := range ft.Results {
		c.push(aval{typ: rtyp, reg: noReg, inMem: true, tagFresh: true})
	}
}

func (c *compiler) compileSelect() {
	cond := c.pop()
	rc := c.ensureReg(&cond, c.nLocals+c.st.h)
	b := c.pop()
	bSlot := c.nLocals + c.st.h
	a := c.pop()
	aSlot := c.nLocals + c.st.h
	if c.cfg.ConstFold && cond.isConst {
		c.release(&cond)
		if uint32(cond.konst) != 0 {
			c.release(&b)
			c.push(a)
		} else {
			c.release(&a)
			c.push(b)
		}
		return
	}
	ra := c.ensureReg(&a, aSlot)
	rb := c.ensureReg(&b, bSlot)
	var rd int8
	if c.st.regs.refs[ra] == 1 {
		rd = ra
		a.reg = noReg
	} else {
		rd = c.alloc()
		c.asm.Emit(mach.Instr{Op: mach.OMov, A: int32(rd), B: int32(ra)})
		c.release(&a)
	}
	c.asm.Emit(mach.Instr{Op: mach.OSelect, A: int32(rd), B: int32(rb), C: int32(rc)})
	c.release(&b)
	c.release(&cond)
	c.push(aval{typ: a.typ, reg: rd})
}

func (c *compiler) localGet(idx int) {
	local := &c.st.avals[idx]
	if c.isPinned(idx) {
		if c.cfg.MultiReg {
			c.st.regs.retain(local.reg)
			c.push(aval{typ: local.typ, reg: local.reg})
		} else {
			r := c.alloc()
			c.asm.Emit(mach.Instr{Op: mach.OMov, A: int32(r), B: int32(local.reg)})
			c.push(aval{typ: local.typ, reg: r})
		}
		return
	}
	if local.isConst {
		c.push(aval{typ: local.typ, reg: noReg, isConst: true, konst: local.konst})
		return
	}
	if local.reg != noReg {
		if c.cfg.MultiReg {
			c.st.regs.retain(local.reg)
			c.push(aval{typ: local.typ, reg: local.reg})
			return
		}
		// Pin the source register so allocating the copy's destination
		// cannot evict it (the victim spill would null local.reg
		// between the read and the move).
		src := local.reg
		c.st.regs.retain(src)
		r := c.alloc()
		c.asm.Emit(mach.Instr{Op: mach.OMov, A: int32(r), B: int32(src)})
		c.st.regs.release(src)
		c.push(aval{typ: local.typ, reg: r})
		return
	}
	// Local lives only in memory: load it, and with MR also cache the
	// register on the local so later reads cost nothing.
	r := c.alloc()
	c.asm.Emit(mach.Instr{Op: mach.OLoadSlot, A: int32(r), Imm: uint64(idx)})
	if c.cfg.MultiReg {
		local.reg = r
		c.st.regs.retain(r)
	}
	c.push(aval{typ: c.st.avals[idx].typ, reg: r})
}

func (c *compiler) localSet(idx int) {
	v := c.pop()
	vSlot := c.nLocals + c.st.h
	local := &c.st.avals[idx]
	if c.isPinned(idx) {
		rP := c.pinned[idx]
		// A pinned register is overwritten in place, so any operand
		// slot still aliasing it (pushed by an earlier local.get) must
		// be moved to its own register first.
		if c.st.regs.refs[rP] > 1 {
			limit := c.nLocals + c.st.h
			for slot := 0; slot < limit; slot++ {
				if slot < c.nLocals && c.isPinned(slot) {
					continue // a pinned local's own binding is its home
				}
				av := &c.st.avals[slot]
				if av.reg != rP {
					continue
				}
				fresh := c.alloc()
				c.asm.Emit(mach.Instr{Op: mach.OMov, A: int32(fresh), B: int32(rP)})
				av.reg = fresh
				c.st.regs.release(rP)
			}
		}
		if v.isConst {
			c.asm.Emit(mach.Instr{Op: mach.OConst, A: int32(rP), Imm: v.konst})
		} else {
			rv := c.ensureReg(&v, vSlot)
			if rv != rP {
				c.asm.Emit(mach.Instr{Op: mach.OMov, A: int32(rP), B: int32(rv)})
			}
			c.release(&v)
		}
		return
	}
	if local.reg != noReg {
		c.st.regs.release(local.reg)
		local.reg = noReg
	}
	local.isConst = false
	switch {
	case v.isConst && c.cfg.TrackConsts:
		local.isConst = true
		local.konst = v.konst
		local.inMem = false
	case v.reg != noReg:
		local.reg = v.reg // transfer the popped value's reference
		local.inMem = false
	default:
		r := c.ensureReg(&v, vSlot)
		local.reg = r
		local.inMem = false
	}
	if c.cfg.Tags == rt.TagsEager || c.cfg.Tags == rt.TagsEagerLocals {
		c.emitTag(idx, local.typ)
		local.tagFresh = true
	}
}

// compileEnd closes the innermost construct: the merge-point logic of
// the single-pass approach.
func (c *compiler) compileEnd() error {
	fr := c.ctrls[len(c.ctrls)-1]
	c.ctrls = c.ctrls[:len(c.ctrls)-1]
	live := !fr.unreachable
	if live {
		c.matPending()
	}

	switch {
	case fr.op == wasm.OpLoop:
		// No branches target a loop's end; fall-through state flows out
		// unchanged, preserving register and constant knowledge.
		if !live {
			c.resetState(fr.height+len(fr.endTypes), fr.endTypes)
			if len(c.ctrls) > 0 {
				c.ctrls[len(c.ctrls)-1].unreachable = true
			}
		}
		return nil

	case fr.op == wasm.OpIf && !fr.hasElse:
		if fr.elseLabel < 0 {
			// The if itself was in unreachable code (no labels, no
			// edges); the merge stays unreachable.
			c.resetState(fr.height+len(fr.endTypes), fr.endTypes)
			if len(c.ctrls) > 0 {
				c.ctrls[len(c.ctrls)-1].unreachable = true
			}
			return nil
		}
		// The false edge lands here carrying the snapshot state.
		if live {
			c.flush()
			c.asm.EmitBranch(mach.Instr{Op: mach.OJump}, fr.endLabel)
		}
		c.asm.Bind(fr.elseLabel)
		c.st.restore(fr.saved)
		if fr.ifReachable {
			c.flush()
		}
		c.asm.Bind(fr.endLabel)
		c.resetState(fr.height+len(fr.endTypes), fr.endTypes)
		return nil

	case fr.op == 0:
		// Function end.
		if live {
			if fr.branched {
				c.flush()
				c.asm.Bind(fr.endLabel)
				c.epilogueReturn(true)
			} else {
				c.epilogueReturn(false)
			}
		} else if fr.branched {
			c.asm.Bind(fr.endLabel)
			c.st.h = fr.height + len(fr.endTypes)
			c.epilogueReturn(true)
		}
		return nil

	default: // block, or if with else
		if live && fr.branched {
			c.flush()
		}
		if fr.endLabel >= 0 && (fr.branched || !live) {
			c.asm.Bind(fr.endLabel)
		} else if fr.endLabel >= 0 && live && !fr.branched {
			// Label allocated but never referenced; bind to keep the
			// assembler consistent (no fixups pending).
			c.asm.Bind(fr.endLabel)
		}
		if fr.branched || !live {
			c.resetState(fr.height+len(fr.endTypes), fr.endTypes)
		}
		// Pure fall-through keeps the abstract state (registers and
		// constants survive the block).
		return nil
	}
}

func (c *compiler) compileBrTable() error {
	n, err := c.r.U32()
	if err != nil {
		return err
	}
	depths := make([]uint32, n+1)
	for i := range depths {
		if depths[i], err = c.r.U32(); err != nil {
			return err
		}
	}
	idx := c.pop()
	ridx := c.ensureReg(&idx, c.nLocals+c.st.h)
	c.flush()

	def := c.frameAt(depths[n])
	arity := def.labelArity()

	labels := make([]int, len(depths))
	type tramp struct {
		label int
		depth uint32
	}
	var tramps []tramp
	for i, d := range depths {
		fr := c.frameAt(d)
		fr.branched = true
		direct := fr.endLabel
		if fr.op == wasm.OpLoop {
			direct = fr.headerLabel
		}
		if arity == 0 || c.st.h-1-arity == fr.height {
			// Values (if any) are already in place after the flush...
			// except transfers with matching height still need memory
			// residency, which flush guaranteed.
			labels[i] = direct
		} else {
			l := c.asm.NewLabel()
			labels[i] = l
			tramps = append(tramps, tramp{l, d})
		}
	}
	tidx := c.asm.NewTable(labels)
	c.asm.Emit(mach.Instr{Op: mach.OBrTable, A: int32(tidx), B: int32(ridx)})
	c.release(&idx)

	// The popped index is gone; transferred values are the top `arity`.
	for _, t := range tramps {
		c.asm.Bind(t.label)
		fr := c.frameAt(t.depth)
		c.transferTo(fr.height, arity)
		target := fr.endLabel
		if fr.op == wasm.OpLoop {
			target = fr.headerLabel
		}
		c.asm.EmitBranch(mach.Instr{Op: mach.OJump}, target)
	}
	c.setUnreachable()
	return nil
}

// skipInstr decodes but does not compile an instruction in unreachable
// code, tracking control nesting.
func (c *compiler) skipInstr(op wasm.Opcode) error {
	switch op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
		if _, _, err := c.blockType(); err != nil {
			return err
		}
		c.ctrls = append(c.ctrls, ctrl{
			op: op, unreachable: true, ifReachable: false,
			endLabel: -1, elseLabel: -1, headerLabel: -1,
			height: c.st.h,
		})
		if op == wasm.OpIf {
			// A dead if still needs labels in case... no branches can
			// reference them from dead code; leave unallocated.
			c.ctrls[len(c.ctrls)-1].saved = c.st.snapshot()
		}
		return nil
	case wasm.OpElse:
		fr := &c.ctrls[len(c.ctrls)-1]
		fr.hasElse = true
		if fr.ifReachable {
			// Reachable if whose then-arm ended unreachable: the else
			// arm is live again.
			c.asm.Bind(fr.elseLabel)
			c.st.restore(fr.saved)
			fr.unreachable = false
		}
		return nil
	case wasm.OpEnd:
		return c.compileEnd()
	default:
		return c.r.SkipImm(op)
	}
}
