package spc

import (
	"wizgo/internal/mach"
	"wizgo/internal/numx"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// flushExcept flushes all dirty slots except the top n operand slots
// (used when the top holds a condition about to be consumed).
func (c *compiler) flushExcept(n int) {
	limit := c.nLocals + c.st.h - n
	for i := 0; i < limit; i++ {
		av := &c.st.avals[i]
		if av.inMem || (i < c.nLocals && c.isPinned(i)) {
			continue
		}
		switch {
		case av.reg != noReg:
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: int32(av.reg), Imm: uint64(i)})
		case av.isConst:
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlotConst, A: int32(i), Imm: av.konst})
		default:
			panic("spc: dirty slot with no location")
		}
		av.inMem = true
	}
}

func (c *compiler) blockType() (in, out []wasm.ValueType, err error) {
	bt, err := c.r.S33()
	if err != nil {
		return nil, nil, err
	}
	if bt >= 0 {
		t := c.m.Types[bt]
		return t.Params, t.Results, nil
	}
	if bt == -64 {
		return nil, nil, nil
	}
	return nil, []wasm.ValueType{wasm.ValueType(byte(bt & 0x7F))}, nil
}

func (c *compiler) compile() (*mach.Code, error) {
	ft := c.m.Types[c.decl.TypeIdx]
	c.nLocals = len(c.info.LocalTypes)
	c.st.avals = make([]aval, c.nLocals+c.info.MaxStack)
	c.st.regs.limit = c.cfg.NumRegs
	c.osrEntries = make(map[int]int)
	if c.cfg.Stackmaps {
		c.stackmaps = make(map[int][]int32)
	}
	c.r = wasm.NewReader(c.decl.Body)

	if err := c.analyzeLocals(); err != nil {
		return nil, err
	}
	c.prologue(ft)
	c.pinnedPrologue(len(ft.Params))

	c.ctrls = append(c.ctrls, ctrl{
		op:        0,
		endTypes:  ft.Results,
		endLabel:  c.asm.NewLabel(),
		elseLabel: -1, headerLabel: -1,
		ifReachable: true,
	})

	for c.r.Len() > 0 {
		c.opPC = c.r.Pos
		op, err := c.r.ReadOpcode()
		if err != nil {
			return nil, err
		}
		if len(c.ctrls) == 0 {
			return nil, c.fail("instructions after function end")
		}
		c.asm.SetWasmPC(c.opPC)
		if err := c.instr(op); err != nil {
			return nil, err
		}
	}

	code, err := c.asm.Finish()
	if err != nil {
		return nil, err
	}
	code.FuncIdx = c.fidx
	code.Name = c.m.FuncName(c.fidx)
	code.OSREntries = c.osrEntries
	code.Stackmaps = c.stackmaps
	code.Counters = c.counters
	code.TosProbes = c.tosProbes
	code.NumSlots = c.info.NumSlots()
	code.NumResults = len(ft.Results)
	code.NumParams = len(ft.Params)
	code.LocalTypes = c.info.LocalTypes
	return code, nil
}

// prologue initializes declared locals. With constant tracking, numeric
// locals begin life as abstract constant zero and cost no code at all
// (visible in Figure 1); reference locals are always stored so a GC scan
// before the first flush cannot read garbage through a ref tag.
func (c *compiler) prologue(ft wasm.FuncType) {
	for i, t := range c.info.LocalTypes {
		av := &c.st.avals[i]
		av.typ = t
		av.reg = noReg
		if i < len(ft.Params) {
			av.inMem = true
			av.tagFresh = true // parameter tags are stored by the caller
			continue
		}
		if c.cfg.TrackConsts && !t.IsRef() {
			av.isConst = true
			av.konst = 0
			av.inMem = false
		} else {
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlotConst, A: int32(i), Imm: 0})
			av.inMem = true
		}
		switch c.cfg.Tags {
		case rt.TagsOnDemand, rt.TagsEager, rt.TagsEagerLocals:
			c.emitTag(i, t)
			av.tagFresh = true
		}
	}
}

// compileProbe emits the instrumentation site for a probed pc: the frame
// is made observable (flushed, tags synced), then either intrinsified
// probe instructions (optjit) or a runtime probe call (jit) follow.
func (c *compiler) compileProbe(pc int) {
	c.matPending()
	c.flush()
	c.syncTags()
	probes := c.probes.At(pc)
	if c.cfg.OptProbes {
		allIntrinsic := true
		for _, p := range probes {
			switch p.(type) {
			case *rt.CounterProbe:
			case rt.TosProbe:
			default:
				allIntrinsic = false
			}
		}
		if allIntrinsic {
			for _, p := range probes {
				switch pp := p.(type) {
				case *rt.CounterProbe:
					c.counters = append(c.counters, pp)
					c.asm.Emit(mach.Instr{Op: mach.OProbeCounter, A: int32(len(c.counters) - 1)})
				case rt.TosProbe:
					c.tosProbes = append(c.tosProbes, pp)
					c.asm.Emit(mach.Instr{
						Op: mach.OProbeTos, A: int32(len(c.tosProbes) - 1),
						Imm: uint64(c.top()),
					})
				}
			}
			return
		}
	}
	c.asm.Emit(mach.Instr{Op: mach.OProbeFire, A: int32(c.nLocals + c.st.h), Imm: uint64(pc)})
}

// epilogueReturn moves the top result values to the frame base, stores
// their tags (results are observable by the caller), and returns.
func (c *compiler) epilogueReturn(fromMemory bool) {
	nres := len(c.info.Results)
	for i := 0; i < nres; i++ {
		src := c.slotOf(c.st.h - nres + i)
		dst := i
		if fromMemory {
			if src != dst {
				c.asm.Emit(mach.Instr{Op: mach.OLoadSlot, A: scratchReg, Imm: uint64(src)})
				c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: scratchReg, Imm: uint64(dst)})
			}
			continue
		}
		av := c.st.avals[src]
		switch {
		case av.reg != noReg:
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: int32(av.reg), Imm: uint64(dst)})
		case av.isConst:
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlotConst, A: int32(dst), Imm: av.konst})
		case src != dst:
			c.asm.Emit(mach.Instr{Op: mach.OLoadSlot, A: scratchReg, Imm: uint64(src)})
			c.asm.Emit(mach.Instr{Op: mach.OStoreSlot, B: scratchReg, Imm: uint64(dst)})
		}
	}
	switch c.cfg.Tags {
	case rt.TagsOnDemand, rt.TagsLazy, rt.TagsEager, rt.TagsEagerOperands:
		for i := 0; i < nres; i++ {
			c.emitTag(i, c.info.Results[i])
		}
	}
	c.asm.Emit(mach.Instr{Op: mach.OReturn})
}

// recordStackmap captures the frame-relative slots holding references at
// a call site (MAP-feature compilers only). argSlots excludes the
// outgoing arguments, which the callee covers.
func (c *compiler) recordStackmap(pc, excludeTop int) {
	if c.stackmaps == nil {
		return
	}
	var refs []int32
	for i := 0; i < c.nLocals; i++ {
		if c.info.LocalTypes[i].IsRef() {
			refs = append(refs, int32(i))
		}
	}
	for i := 0; i < c.st.h-excludeTop; i++ {
		if c.st.avals[c.nLocals+i].typ.IsRef() {
			refs = append(refs, int32(c.nLocals+i))
		}
	}
	c.stackmaps[pc] = refs
}

// observableCall canonicalizes the frame for an outcall: values and
// stale tags go to the value stack, and for MAP compilers a stackmap is
// recorded. Registers are dropped afterwards by the caller (the callee
// clobbers them).
func (c *compiler) observableCall(pc, nargs int) {
	c.flush()
	c.syncTags()
	c.recordStackmap(pc, nargs)
}

func (c *compiler) setUnreachable() {
	fr := &c.ctrls[len(c.ctrls)-1]
	// Drop abstract operands above the frame height.
	for c.st.h > fr.height {
		v := c.pop()
		c.release(&v)
	}
	fr.unreachable = true
}

func (c *compiler) reachable() bool {
	return !c.ctrls[len(c.ctrls)-1].unreachable
}

// evalNumericConst folds a pure op over constants via the shared scalar
// semantics, guaranteeing fold/execute bit-equality.
func evalNumericConst(op wasm.Opcode, args ...uint64) (uint64, bool) {
	if !op.IsPure() {
		return 0, false
	}
	switch len(args) {
	case 1:
		v, trap, ok := numx.EvalUn(op, args[0])
		return v, ok && trap == rt.TrapNone
	case 2:
		v, trap, ok := numx.EvalBin(op, args[0], args[1])
		return v, ok && trap == rt.TrapNone
	}
	return 0, false
}
