// Package spc implements the single-pass ("baseline") compiler — the
// paper's core contribution. It translates Wasm bytecode to MachCode in
// one forward pass using the abstract-interpretation approach all
// production baseline compilers share (Section III): an abstract value
// stack mirrors the operand stack and locals, where each slot tracks
//
//   - which register (if any) caches its value,
//   - whether its memory home in the value stack is up to date,
//   - its constant value, if statically known, and
//   - whether its value tag in memory is up to date.
//
// From that state the compiler performs forward register allocation,
// constant and branch folding, immediate-mode instruction selection,
// redundant-spill avoidance, and compare/branch fusion — each gated by a
// Config flag so the paper's ablations (Figure 4) and tagging strategies
// (Figure 5) are directly reproducible.
//
// Like Wizard-SPC, it does not scramble the frame: every local and
// operand slot has a fixed value-stack location shared with the
// interpreter, which is what makes tier-up/tier-down a frame rewrite and
// keeps instrumentation full-fidelity.
package spc

import (
	"wizgo/internal/mach"
	"wizgo/internal/rt"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// Config selects the compiler's feature set. The zero value is the
// weakest compiler (no constant tracking, single-register allocation,
// no tags, no stackmaps).
type Config struct {
	// TrackConsts models constants in abstract values (feature "K").
	TrackConsts bool
	// ConstFold evaluates pure ops on constants at compile time and
	// folds constant branches (feature "KF"; requires TrackConsts).
	ConstFold bool
	// ISel selects immediate-mode instructions when an operand is a
	// tracked constant (feature "ISEL"; requires TrackConsts).
	ISel bool
	// MultiReg lets one register cache several slots (feature "MR").
	MultiReg bool
	// Peephole fuses compares into branches (one-instruction lookahead).
	Peephole bool
	// Tags selects the value-tagging strategy (feature "TAG").
	Tags rt.TagMode
	// Stackmaps records per-callsite reference maps (feature "MAP").
	Stackmaps bool
	// OptProbes intrinsifies counter and top-of-stack probes
	// (Figure 6's "optjit"); otherwise probes call the runtime.
	OptProbes bool
	// NumRegs bounds the allocatable scratch registers (0 = default).
	NumRegs int
	// PinLocals pins up to this many hot locals into dedicated
	// registers for the whole function, surviving merges and calls
	// (callee-saved style) — the global register allocation a baseline
	// compiler cannot afford but the optimizing tier performs. Requires
	// a pre-pass over the body to rank locals by use count.
	PinLocals int
}

// Wizard returns the Wizard-SPC default configuration: everything on,
// on-demand tags, no stackmaps.
func Wizard() Config {
	return Config{
		TrackConsts: true, ConstFold: true, ISel: true, MultiReg: true,
		Peephole: true, Tags: rt.TagsOnDemand, OptProbes: true,
	}
}

// Compile translates one function to MachCode. probes may be nil; when
// present, probe sites compile to direct calls (and intrinsics under
// cfg.OptProbes), the design of Section IV-D.
func Compile(m *wasm.Module, fidx uint32, decl *wasm.Func, info *validate.FuncInfo,
	probes *rt.ProbeSet, cfg Config) (*mach.Code, error) {

	if !cfg.TrackConsts {
		cfg.ConstFold = false
		cfg.ISel = false
	}
	if cfg.NumRegs <= 0 || cfg.NumRegs > mach.AllocatableRegs {
		cfg.NumRegs = mach.AllocatableRegs
	}
	c := &compiler{
		m:      m,
		fidx:   fidx,
		decl:   decl,
		info:   info,
		probes: probes,
		cfg:    cfg,
		asm:    mach.NewAsm(),
	}
	return c.compile()
}
