// Package faultinject is the deterministic fault-injection framework:
// named injection points compiled into failure-handling code paths
// (disk-cache reads, memory growth, host calls, pool resets) that tests
// arm to force the rare failure branch and assert graceful degradation
// — recompile on cache corruption, a defined result on grow failure,
// poison-and-drop on host panic — instead of hoping those branches are
// correct because they never run.
//
// The framework is deliberately dumb and deterministic: a fault fires
// on the next N Fire calls at its point, in program order, with no
// randomness and no timers. The seeded schedule driver (the package's
// test suite plus internal/faultinject tests in dependent packages)
// gets its variety from which points it arms and which workloads it
// runs, not from nondeterministic triggering — a failing schedule
// replays exactly.
//
// Cost when disabled: every Fire is one atomic load and a predictable
// branch. No fault-injection state is consulted until a test arms a
// fault, so production binaries pay essentially nothing for carrying
// the hooks.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by a fired fault that does
// not specify its own.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault describes what happens when an armed point fires. Zero-value
// actions default to returning ErrInjected.
type Fault struct {
	// Err is returned by Fire. Nil (with no Panic) means ErrInjected.
	Err error
	// Panic, when non-nil, makes Fire panic with this value — the host
	// panic injection mode.
	Panic any
	// Delay, when non-zero, makes Fire sleep before acting — the slow
	// host / slow disk injection mode. A Delay with no Err and no Panic
	// returns nil after sleeping (delay-only fault).
	Delay time.Duration
	// DelayOnly marks a fault whose Err should be ignored: fire means
	// "be slow, then succeed". Set implicitly when only Delay is given.
	DelayOnly bool
	// Count is how many Fire calls the fault survives; 0 means it stays
	// armed until disarmed.
	Count int
	// Skip delays the first firing: the fault lets Skip Fire calls pass
	// before it starts firing, so a schedule can target e.g. "the third
	// cache load" deterministically.
	Skip int
}

// enabled is the global fast-path gate: false means no point anywhere
// is armed and Fire returns immediately.
var enabled atomic.Bool

var (
	mu         sync.Mutex
	registered = map[string]bool{}
	armed      = map[string]*armedFault{}
	fired      = map[string]int{}
)

type armedFault struct {
	f    Fault
	skip int
	left int // remaining firings when f.Count > 0
}

// Register declares an injection point so the catalog (Points) lists it
// and test suites can assert every point was exercised. Packages
// register their points in init; registering twice is harmless.
func Register(point string) string {
	mu.Lock()
	registered[point] = true
	mu.Unlock()
	return point
}

// Points returns the sorted catalog of registered injection points.
func Points() []string {
	mu.Lock()
	defer mu.Unlock()
	pts := make([]string, 0, len(registered))
	for p := range registered {
		pts = append(pts, p)
	}
	sort.Strings(pts)
	return pts
}

// Arm installs a fault at a point and returns its disarm function.
// Arming registers the point if needed (so tests can invent scratch
// points), flips the global gate on, and the disarm function flips it
// back off once nothing is armed.
func Arm(point string, f Fault) (disarm func()) {
	if f.Err == nil && f.Panic == nil && f.Delay > 0 {
		f.DelayOnly = true
	}
	mu.Lock()
	registered[point] = true
	armed[point] = &armedFault{f: f, skip: f.Skip, left: f.Count}
	enabled.Store(true)
	mu.Unlock()
	return func() {
		mu.Lock()
		delete(armed, point)
		if len(armed) == 0 {
			enabled.Store(false)
		}
		mu.Unlock()
	}
}

// Fired returns how many times the point has fired since the last
// ResetCounts.
func Fired(point string) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[point]
}

// ResetCounts zeroes the per-point fired counters (armed faults stay
// armed).
func ResetCounts() {
	mu.Lock()
	clear(fired)
	mu.Unlock()
}

// Fire is the hook call sites compile in: it reports the fault to
// inject at this point right now. A nil return means "no fault —
// proceed normally"; a non-nil return is the injected error the call
// site should act on exactly as it would on the real failure. A fault
// armed with Panic panics from inside Fire, modeling a host function
// (or any callee) blowing up at that point.
func Fire(point string) error {
	if !enabled.Load() {
		return nil
	}
	return fire(point)
}

//go:noinline
func fire(point string) error {
	mu.Lock()
	af := armed[point]
	if af == nil {
		mu.Unlock()
		return nil
	}
	if af.skip > 0 {
		af.skip--
		mu.Unlock()
		return nil
	}
	if af.f.Count > 0 {
		af.left--
		if af.left <= 0 {
			delete(armed, point)
			if len(armed) == 0 {
				enabled.Store(false)
			}
		}
	}
	fired[point]++
	f := af.f
	mu.Unlock()

	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	if f.DelayOnly {
		return nil
	}
	if f.Err != nil {
		return f.Err
	}
	return fmt.Errorf("%w at %s", ErrInjected, point)
}
