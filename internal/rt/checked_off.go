//go:build !checked

package rt

// Checked is false in normal builds: elided checks cost nothing. See
// checked_on.go.
const Checked = false
