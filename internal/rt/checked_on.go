//go:build checked

package rt

// Checked enables soundness assertions on paths where the static
// analysis eliminated a dynamic check: under `-tags checked` every
// elided bounds check is re-executed and a violation panics, so the
// differential CI job proves the analysis never licenses an access the
// dynamic check would have trapped.
const Checked = true
