package rt

import "wizgo/internal/telemetry"

// Label returns a short, stable, Prometheus-safe identifier for the
// trap kind (the value of the `kind` label on wizgo_traps_total).
func (k TrapKind) Label() string {
	switch k {
	case TrapUnreachable:
		return "unreachable"
	case TrapDivByZero:
		return "div_by_zero"
	case TrapIntOverflow:
		return "int_overflow"
	case TrapInvalidConversion:
		return "invalid_conversion"
	case TrapOOBMemory:
		return "oob_memory"
	case TrapOOBTable:
		return "oob_table"
	case TrapIndirectSigMismatch:
		return "indirect_sig_mismatch"
	case TrapNullFunc:
		return "null_func"
	case TrapStackOverflow:
		return "stack_overflow"
	case TrapMemoryLimit:
		return "memory_limit"
	case TrapHostError:
		return "host_error"
	case TrapInterrupted:
		return "interrupted"
	case TrapHostPanic:
		return "host_panic"
	case TrapFuelExhausted:
		return "fuel_exhausted"
	}
	return "unknown"
}

// trapCounters is indexed by TrapKind so that counting a trap inside
// NewTrap is one array load plus one atomic add — no map lookup, no
// lock — cheap enough for the executors' trap paths. Registered once
// at init into the process-wide registry; every tier's trap
// construction funnels through NewTrap, making this the single
// chokepoint for wizgo_traps_total.
var trapCounters = func() [trapKindCount]*telemetry.Counter {
	var cs [trapKindCount]*telemetry.Counter
	reg := telemetry.Default()
	for k := TrapNone; k < trapKindCount; k++ {
		cs[k] = reg.CounterL("wizgo_traps_total",
			"Wasm traps raised, by trap kind.", "kind", k.Label())
	}
	return cs
}()

func countTrap(kind TrapKind) {
	if kind < trapKindCount {
		trapCounters[kind].Inc()
	}
}
