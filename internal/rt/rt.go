// Package rt defines the shared runtime substrate of the engine: the
// value stack with its value tags, execution frames, module instances,
// memories, tables, globals, traps, and the probe (instrumentation)
// interfaces. Every execution tier — the in-place interpreter, the
// single-pass compiler's machine code, the optimizing tier and the
// rewriting interpreter — operates on these same structures. That shared
// layout is precisely the design point of Wizard-SPC the paper
// describes: interpreter frames and JIT frames use one value stack
// representation, so tier-up (OSR) and tier-down (deopt) rewrite only
// the execution frame, never the values.
package rt

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"wizgo/internal/faultinject"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// TrapKind enumerates Wasm traps.
type TrapKind uint8

const (
	TrapNone TrapKind = iota
	TrapUnreachable
	TrapDivByZero
	TrapIntOverflow
	TrapInvalidConversion
	TrapOOBMemory
	TrapOOBTable
	TrapIndirectSigMismatch
	TrapNullFunc
	TrapStackOverflow
	TrapMemoryLimit
	TrapHostError
	// TrapInterrupted reports that execution was aborted by an armed
	// interrupt flag (context cancellation or deadline; see
	// Context.Interrupt). Executors poll the flag at function entry and
	// on loop back-edges, so a runaway guest unwinds within one loop
	// iteration instead of hanging its goroutine.
	TrapInterrupted
	// TrapHostPanic reports that an imported host function panicked.
	// The engine's host-call bridge recovers the panic, converts it to
	// this trap, and poisons the instance (Instance.Poisoned) so pooled
	// reuse refuses possibly-corrupt state instead of recycling it.
	TrapHostPanic
	// TrapFuelExhausted reports that the per-call fuel budget
	// (Context.Fuel) ran out. Fuel is charged deterministically — one
	// unit per function entry and one per loop-header execution, in
	// every tier — so the same budget traps at the same checkpoint
	// regardless of which executor ran the code.
	TrapFuelExhausted
	// trapKindCount is the number of trap kinds; keep it last.
	trapKindCount
)

func (k TrapKind) String() string {
	switch k {
	case TrapUnreachable:
		return "unreachable executed"
	case TrapDivByZero:
		return "integer divide by zero"
	case TrapIntOverflow:
		return "integer overflow"
	case TrapInvalidConversion:
		return "invalid conversion to integer"
	case TrapOOBMemory:
		return "out of bounds memory access"
	case TrapOOBTable:
		return "out of bounds table access"
	case TrapIndirectSigMismatch:
		return "indirect call type mismatch"
	case TrapNullFunc:
		return "null function reference"
	case TrapStackOverflow:
		return "call stack exhausted"
	case TrapMemoryLimit:
		return "memory limit exceeded"
	case TrapHostError:
		return "host function error"
	case TrapInterrupted:
		return "execution interrupted"
	case TrapHostPanic:
		return "host function panicked"
	case TrapFuelExhausted:
		return "fuel exhausted"
	}
	return "unknown trap"
}

// Trap is the error produced when Wasm execution traps.
type Trap struct {
	Kind    TrapKind
	FuncIdx uint32
	PC      int
	Wrapped error
}

func (t *Trap) Error() string {
	if t.Wrapped != nil {
		return fmt.Sprintf("trap: %s: %v (func %d, pc +%d)", t.Kind, t.Wrapped, t.FuncIdx, t.PC)
	}
	return fmt.Sprintf("trap: %s (func %d, pc +%d)", t.Kind, t.FuncIdx, t.PC)
}

// Unwrap exposes the wrapped cause so errors.Is/As see through traps
// (e.g. a TrapInterrupted carrying context.DeadlineExceeded).
func (t *Trap) Unwrap() error { return t.Wrapped }

// NewTrap constructs a trap error and counts it in the process-wide
// telemetry registry (wizgo_traps_total by kind). All tiers' trap
// paths construct through here so the counters see every trap.
func NewTrap(kind TrapKind, funcIdx uint32, pc int) *Trap {
	countTrap(kind)
	return &Trap{Kind: kind, FuncIdx: funcIdx, PC: pc}
}

// NewTrapWrapped constructs a counted trap carrying a cause, visible to
// errors.Is/As through Unwrap (e.g. a host error or a cancellation).
func NewTrapWrapped(kind TrapKind, funcIdx uint32, pc int, wrapped error) *Trap {
	countTrap(kind)
	return &Trap{Kind: kind, FuncIdx: funcIdx, PC: pc, Wrapped: wrapped}
}

// TagMode selects the value-tagging strategy of compiled code — the
// central design axis of the paper's Section IV-C and Figure 5.
type TagMode uint8

const (
	// TagsNone: no tags written at all (the best-case baseline of Fig 5;
	// GC root scanning is unavailable).
	TagsNone TagMode = iota
	// TagsEager: store the tag at every instruction that writes a slot,
	// exactly as the interpreter does (the worst case of Fig 5).
	TagsEager
	// TagsEagerOperands: eager tags for operand stack slots only.
	TagsEagerOperands
	// TagsEagerLocals: eager tags for local slots only.
	TagsEagerLocals
	// TagsOnDemand: the Wizard-SPC default. The compiler's abstract
	// state tracks tag freshness per slot; tags are stored only across
	// observation points (calls, traps, probes).
	TagsOnDemand
	// TagsLazy: like on-demand, but tags for locals are never stored;
	// the stack walker reconstructs them from the function's local
	// declarations.
	TagsLazy
)

func (m TagMode) String() string {
	switch m {
	case TagsNone:
		return "notags"
	case TagsEager:
		return "eagertags"
	case TagsEagerOperands:
		return "eagertags-o"
	case TagsEagerLocals:
		return "eagertags-l"
	case TagsOnDemand:
		return "on-demand"
	case TagsLazy:
		return "lazytags"
	}
	return "tagmode?"
}

// ValueStack is the explicit value stack shared by all execution tiers:
// a slot array and a parallel tag array. Wizard keeps tags out-of-line
// (a separate array rather than interleaved) so that slot accesses stay
// 8-byte aligned; BenchmarkTagLayout in the harness quantifies why.
type ValueStack struct {
	Slots []uint64
	Tags  []wasm.Tag
}

// NewValueStack allocates a stack with the given slot capacity.
func NewValueStack(capacity int, withTags bool) *ValueStack {
	vs := &ValueStack{Slots: make([]uint64, capacity)}
	if withTags {
		vs.Tags = make([]wasm.Tag, capacity)
	}
	return vs
}

// Write-tracking granularity: instance-pool reset copies back snapshot
// bytes per granule, so the granule must be small enough that a run
// touching a few buffers does not dirty the whole memory, and large
// enough that the bitmap stays tiny (32 B of bitmap per 1 MiB of
// memory at 4 KiB granules).
const (
	DirtyGranuleShift = 12
	DirtyGranule      = 1 << DirtyGranuleShift
)

// Memory is a linear memory instance.
//
// A memory can optionally track which granules (DirtyGranule-sized
// blocks) have been written since EnableWriteTracking, the mechanism
// behind copy-on-write instance reset: executors call Mark on every
// store, and ResetTo replays a snapshot over only the dirty granules.
// Tracking state is not goroutine-safe — like Data itself, it assumes
// one execution context mutates the memory at a time.
type Memory struct {
	Data []byte
	// MaxPages caps growth; engines clamp it so benchmarks stay small.
	MaxPages uint32

	// dirty is the granule bitmap (nil = tracking off); dirtyCount is
	// the number of set bits. grown records that Grow replaced Data (or
	// a host mutated memory out of band via MarkAll), which invalidates
	// per-granule accounting until the next full reset.
	dirty      []uint64
	dirtyCount int
	grown      bool
}

// NewMemory allocates a memory from limits.
func NewMemory(lim wasm.Limits) *Memory {
	maxPages := uint32(wasm.MaxPages)
	if lim.HasMax && lim.Max < maxPages {
		maxPages = lim.Max
	}
	return &Memory{
		Data:     make([]byte, int(lim.Min)*wasm.PageSize),
		MaxPages: maxPages,
	}
}

// Pages returns the current size in pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.Data) / wasm.PageSize) }

// PointMemGrow is the fault-injection point for memory growth: an
// armed fault makes Grow report failure (-1), the same well-defined
// result the guest sees when the memory limit is reached.
var PointMemGrow = faultinject.Register("rt.memory.grow")

// Grow grows by delta pages, returning the previous page count or -1.
func (m *Memory) Grow(delta uint32) int32 {
	old := m.Pages()
	if delta == 0 {
		return int32(old)
	}
	next := uint64(old) + uint64(delta)
	if next > uint64(m.MaxPages) {
		return -1
	}
	if faultinject.Fire(PointMemGrow) != nil {
		return -1
	}
	grown := make([]byte, next*wasm.PageSize)
	copy(grown, m.Data)
	m.Data = grown
	if m.dirty != nil {
		// A grown memory no longer matches the snapshot shape, so the
		// next reset must be a full restore; the bitmap still has to
		// cover the new size so Mark stays in bounds until then.
		m.grown = true
		if need := bitmapWords(len(m.Data)); need > len(m.dirty) {
			bigger := make([]uint64, need)
			copy(bigger, m.dirty)
			m.dirty = bigger
		}
	}
	return int32(old)
}

// InBounds reports whether an access of size bytes at addr+offset fits.
func (m *Memory) InBounds(addr, offset uint32, size int) bool {
	eff := uint64(addr) + uint64(offset)
	return eff+uint64(size) <= uint64(len(m.Data))
}

func bitmapWords(dataLen int) int {
	granules := (dataLen + DirtyGranule - 1) >> DirtyGranuleShift
	return (granules + 63) / 64
}

// EnableWriteTracking starts recording which granules of the memory are
// written. The current contents become the implicit baseline: a
// subsequent ResetTo with a snapshot of this state touches only the
// granules dirtied in between.
func (m *Memory) EnableWriteTracking() {
	m.dirty = make([]uint64, bitmapWords(len(m.Data)))
	m.dirtyCount = 0
	m.grown = false
}

// WriteTracking reports whether the memory records writes.
func (m *Memory) WriteTracking() bool { return m.dirty != nil }

// Mark records a write of size bytes at addr+offset (the same
// coordinates InBounds checks). Executors call it on every store,
// memory.copy and memory.fill; when tracking is off it is a single
// predictable branch.
func (m *Memory) Mark(addr, offset uint32, size int) {
	if m.dirty != nil {
		m.mark(int(addr)+int(offset), size)
	}
}

// mark is kept out of line so that Mark's fast path (one nil check)
// stays under the inlining budget — executors then pay a single
// predictable branch per store while tracking is off.
//
//go:noinline
func (m *Memory) mark(at, size int) {
	if size <= 0 {
		return
	}
	first := at >> DirtyGranuleShift
	last := (at + size - 1) >> DirtyGranuleShift
	for g := first; g <= last; g++ {
		w, bit := g>>6, uint64(1)<<(g&63)
		if w >= len(m.dirty) {
			// Out-of-band mutation past the tracked range (should not
			// happen — Grow resizes the bitmap); degrade to full reset.
			m.grown = true
			return
		}
		if m.dirty[w]&bit == 0 {
			m.dirty[w] |= bit
			m.dirtyCount++
		}
	}
}

// MarkAll declares the whole memory dirty — the escape hatch for host
// functions that write linear memory without going through an executor.
// The next ResetTo falls back to a full restore.
func (m *Memory) MarkAll() {
	if m.dirty != nil {
		m.grown = true
	}
}

// DirtyGranules returns the number of granules written since tracking
// was enabled (or the last reset).
func (m *Memory) DirtyGranules() int { return m.dirtyCount }

// Grown reports whether per-granule accounting was invalidated (Grow or
// MarkAll) since the last reset.
func (m *Memory) Grown() bool { return m.grown }

// fullWipeDenominator: when at least 1/fullWipeDenominator of the
// granules are dirty, per-granule replay loses to one sequential copy
// of the whole snapshot, so ResetTo switches strategy.
const fullWipeDenominator = 2

// ResetTo restores Data to exactly the snapshot taken when the memory
// was in its baseline state, using the dirty bitmap to copy back only
// the granules written since — so reset cost is proportional to
// mutation, not memory size. Past the dirtiness threshold, after a
// Grow, or without tracking, it falls back to a full wipe. It returns
// the bytes copied and whether the full path ran; tracking (if enabled)
// restarts clean against the restored baseline.
func (m *Memory) ResetTo(snapshot []byte) (copied int, full bool) {
	granules := (len(snapshot) + DirtyGranule - 1) >> DirtyGranuleShift
	sparse := m.dirty != nil && !m.grown && len(m.Data) == len(snapshot) &&
		m.dirtyCount*fullWipeDenominator < granules
	if !sparse {
		if cap(m.Data) >= len(snapshot) {
			m.Data = m.Data[:len(snapshot)]
		} else {
			m.Data = make([]byte, len(snapshot))
		}
		copy(m.Data, snapshot)
		if m.dirty != nil {
			clear(m.dirty)
			m.dirtyCount = 0
			m.grown = false
		}
		return len(snapshot), true
	}
	for w := 0; w < len(m.dirty) && m.dirtyCount > 0; w++ {
		word := m.dirty[w]
		if word == 0 {
			continue
		}
		m.dirty[w] = 0
		for word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			m.dirtyCount--
			start := g << DirtyGranuleShift
			end := start + DirtyGranule
			if end > len(snapshot) {
				end = len(snapshot)
			}
			if start < end {
				copied += copy(m.Data[start:end], snapshot[start:end])
			}
		}
	}
	return copied, false
}

// Table is a funcref table. Entries are 1-based function handles
// (funcIdx+1) so that zero means null, matching the value encoding.
//
// Handles resolve in the index space of the instance that OWNS the
// table: Funcs is installed at link time by the owning instance, so an
// instance that imports the table still calls the exporter's functions
// through call_indirect — the cross-instance linking contract.
type Table struct {
	Elems []uint64
	// Funcs resolves handles (Elems[i]-1 indexes Funcs). Set by the
	// engine when the owning instance links.
	Funcs []*FuncInst
	// MaxElems caps growth, mirroring Memory.MaxPages: the declared
	// maximum (or the index-space ceiling when none was declared). Link
	// checks compare it against an import's required maximum exactly as
	// the memory import check does.
	MaxElems uint32
}

// NewTable allocates a table from limits, capping MaxElems like
// NewMemory caps MaxPages.
func NewTable(lim wasm.Limits) *Table {
	maxElems := uint32(1<<32 - 1)
	if lim.HasMax && lim.Max < maxElems {
		maxElems = lim.Max
	}
	return &Table{Elems: make([]uint64, lim.Min), MaxElems: maxElems}
}

// GlobalSlot is a runtime global cell: bits plus tag for stack-walking
// parity. Instances hold globals by pointer so a global exported by one
// instance and imported by another is a single shared cell.
type GlobalSlot struct {
	Bits uint64
	Tag  wasm.Tag
}

// ExternGlobal pairs a global cell with its declared type and
// mutability, the metadata linkers need to type-check global imports
// (the cell's Tag alone cannot express mutability).
type ExternGlobal struct {
	Type    wasm.ValueType
	Mutable bool
	Cell    *GlobalSlot
}

// Extern is one external value of the embedding API: what a linker
// definition provides and what a module import consumes. Exactly the
// fields selected by Kind are meaningful.
type Extern struct {
	Kind wasm.ExternKind

	// FuncType types an ExternFunc definition. Exactly one of HostFunc
	// (a host-defined function, run in the importer's context) and Func
	// (another instance's function, bridged into its owner's context)
	// is set.
	FuncType wasm.FuncType
	HostFunc HostFunc
	Func     *FuncInst

	// Memory is the shared linear memory for ExternMemory.
	Memory *Memory

	// Table is the shared table for ExternTable.
	Table *Table

	// Global is the shared cell for ExternGlobal.
	Global ExternGlobal
}

// HostFunc is a host (imported) function. Arguments arrive in args;
// results must be written to results. Returning a non-nil error aborts
// execution with a host trap.
type HostFunc func(ctx *Context, args, results []uint64) error

// FuncInst is a resolved function: either a host function or a module
// function with its validation metadata and, once a compiler tier has
// run, its compiled code. Compiled is declared as any to keep rt free of
// a dependency on the machine package; executors type-assert it.
type FuncInst struct {
	Idx  uint32
	Type wasm.FuncType
	Name string

	// Host is non-nil for imported host functions.
	Host HostFunc

	// Decl and Info are set for module-defined functions.
	Decl *wasm.Func
	Info *validate.FuncInfo

	// Compiled machine code, if a compiler tier has translated this
	// function (holds a *mach.Code).
	Compiled any

	// CallCount drives tier-up heuristics.
	CallCount int

	// Probes is non-nil when instrumentation is attached.
	Probes *ProbeSet

	// Owner is the instance this function belongs to. A cross-instance
	// import places the exporter's *FuncInst directly in the importer's
	// function index space; the engine's dispatcher compares Owner
	// against the calling instance and bridges the call into the owner's
	// execution context when they differ.
	Owner *Instance
}

// IsHost reports whether f is a host function.
func (f *FuncInst) IsHost() bool { return f.Host != nil }

// Instance is an instantiated module.
//
// The ownership fields record which of the instance's externals were
// allocated by this instance and which were imported (and therefore
// belong to another instance or to the host). Imported externals occupy
// the low indices of their index spaces. State-reset machinery
// (engine.Instance.Reset, the instance pool) restores only owned state:
// an instance must never roll back memory, tables or globals it merely
// borrowed.
type Instance struct {
	Module  *wasm.Module
	Funcs   []*FuncInst
	Globals []*GlobalSlot
	Memory  *Memory
	Tables  []*Table

	// OwnsMemory is false when Memory was imported.
	OwnsMemory bool
	// ImportedGlobals and ImportedTables count imported entries at the
	// head of Globals and Tables.
	ImportedGlobals int
	ImportedTables  int

	// Ctx is the execution context the embedder bound to this instance,
	// the target context for calls bridged in from other instances.
	Ctx *Context

	// MemTouched records that some call since the last pool reset MAY
	// have written this instance's memory. The engine's call entry
	// points set it unless the callee's analysis facts prove the whole
	// call tree read-only, letting a pooled reset skip the memory
	// restore entirely. Host writes outside a call (embedder pokes) must
	// go through Memory.MarkAll, which independently forces a restore.
	MemTouched bool
	// ProbedFuncs counts functions with probes attached. Probes run
	// arbitrary embedder code outside the analysis' view, so a probed
	// instance never skips its pooled memory restore.
	ProbedFuncs int

	// Poisoned marks an instance whose state can no longer be trusted:
	// a host function panicked mid-call, so linear memory, globals or
	// tables may be half-mutated. Reset paths refuse poisoned instances
	// and pools drop them instead of recycling them to the next request.
	Poisoned bool
}

// FuncByName resolves an exported function.
func (inst *Instance) FuncByName(name string) (*FuncInst, bool) {
	idx, ok := inst.Module.ExportedFunc(name)
	if !ok {
		return nil, false
	}
	return inst.Funcs[idx], true
}

// FrameKind distinguishes which tier owns an execution frame.
type FrameKind uint8

const (
	FrameInterp FrameKind = iota
	FrameJIT
)

// FrameInfo is the execution-frame record used for stack walking (GC
// root scans, stack traces, probe accessors). Interpreter frames and JIT
// frames have the same shape — the property that enables Wizard's cheap
// tier-up and tier-down.
type FrameInfo struct {
	Kind FrameKind
	Func *FuncInst
	// VFP is the value frame pointer: the stack index of local 0.
	VFP int
	// SP is the current operand-stack top (absolute slot index, one
	// past the last live slot). Executors keep it current at
	// observation points (calls, probes, traps).
	SP int
	// PC is the current bytecode offset, kept current at observation
	// points; JIT frames reconstruct it from the machine pc.
	PC int
}

// Status is the result of running an executor over one frame.
type Status uint8

const (
	// Done: the function returned normally; results are at VFP.
	Done Status = iota
	// OSRUp: the interpreter requests tier-up at a loop back-edge; the
	// frame is in canonical form (all values in the value stack) and
	// execution should continue in compiled code at FrameInfo.PC.
	OSRUp
	// Deopt: compiled code requests tier-down (e.g. instrumentation was
	// attached); the frame is canonical and execution should continue
	// in the interpreter at FrameInfo.PC.
	Deopt
)

// Context is one execution context (a "VM thread"): the value stack, the
// frame chain for stack walking, and the engine callback used to invoke
// functions across tiers.
type Context struct {
	Stack  *ValueStack
	Inst   *Instance
	Frames []FrameInfo

	// Depth guards against runaway recursion.
	Depth    int
	MaxDepth int

	// Invoke is installed by the engine: it runs callee (whose
	// arguments are already at argBase on the value stack) and leaves
	// the results at argBase. Executors use it for call, call_indirect
	// and host calls so that tier selection stays in one place.
	Invoke func(callee *FuncInst, argBase int) error

	// Heap is the host garbage-collected heap (a *heap.Heap); rt keeps
	// it abstract to avoid an import cycle.
	Heap any

	// Fuel, when non-zero, bounds execution deterministically: one unit
	// is charged per function entry and one per loop-header execution
	// (loop entry plus each taken back-edge), at identical program
	// points in every tier. When the budget runs out the executor
	// unwinds with TrapFuelExhausted. Zero disables metering.
	//
	// Loops whose trip count the static analysis proved exactly are
	// charged up front (FuelPrepay) so their elided per-iteration
	// checks stay fuel-sound; when the remaining budget cannot cover
	// the whole loop, charging degrades to per-iteration (FuelPerIter)
	// so the trap lands at the same point as with the analysis off.
	Fuel int64
	// FuelPerIter is the degraded-prepay mode flag: set by FuelPrepay
	// when the budget could not cover a proven loop up front, making
	// FuelIter charge each header arrival instead. Always re-set by the
	// dominating FuelPrepay before any FuelIter site runs.
	FuelPerIter bool

	// GoCtx is the Go context of the current top-level call, installed
	// by engine.Instance.CallContext and bridged across cross-instance
	// calls. Host functions read it (GoContext) so cancellation and
	// deadlines cover time spent in the host, not just guest code.
	GoCtx context.Context

	// OSRThreshold is the loop back-edge count after which the
	// interpreter requests tier-up when compiled code exists (0 = off).
	OSRThreshold int

	// Interrupt, when non-nil, is the context's interruption flag.
	// Another goroutine arms it (engine.Instance.CallContext does so on
	// context cancellation or deadline); every executor polls it at
	// function entry and on the same branch as the OSR back-edge check,
	// and unwinds with TrapInterrupted when set. The flag is a pointer
	// so a cross-instance call bridge can temporarily point the callee
	// instance's context at the caller's flag, making cancellation
	// follow the call across instance boundaries.
	Interrupt *InterruptFlag

	// Resume carries the canonical frame state across an OSRUp or
	// Deopt return, so the engine can re-enter the other tier.
	Resume FrameInfo

	// Stats counts per-tier work when enabled.
	CountStats bool
	Stats      Stats
}

// Stats aggregates execution counters used by tests and the harness.
type Stats struct {
	InterpOps  uint64
	MachOps    uint64
	ProbeFires uint64
	OSRUps     uint64
	Deopts     uint64
}

// InterruptFlag is an atomic interruption request. It is safe to Set
// from any goroutine while an executor polls it.
//
// Calls can nest (guest → host → guest, possibly across instances that
// temporarily share one flag), and each nested call registers its own
// cancellation source. A finishing inner call must not erase a
// cancellation that belongs to a still-running outer call whose
// one-shot watcher already fired, so the flag tracks its in-flight
// sources and re-derives its state when one is removed — bookkeeping
// that lives on the flag itself precisely because the flag may be
// shared across instances.
type InterruptFlag struct {
	v atomic.Bool

	mu      sync.Mutex
	sources []*interruptSource
}

type interruptSource struct{ cancelled func() bool }

// Set arms the flag. It takes the source mutex so that a Set racing a
// source removal is ordered against the removal's re-derivation: either
// the Set lands after the derivation (flag stays armed), or the
// derivation runs after the Set — in which case the source's cancelled
// predicate already reports true (context.Context stores its error
// before closing Done) and the derivation re-arms. Without the lock a
// Set could slip between the scan and the Clear and be lost.
func (i *InterruptFlag) Set() {
	i.mu.Lock()
	i.v.Store(true)
	i.mu.Unlock()
}

// Clear disarms the flag.
func (i *InterruptFlag) Clear() {
	i.mu.Lock()
	i.v.Store(false)
	i.mu.Unlock()
}

// Get reports whether the flag is armed. Lock-free: this is the poll
// executors run on every loop back-edge.
func (i *InterruptFlag) Get() bool { return i.v.Load() }

// AddSource registers an in-flight cancellation source (a predicate
// reporting whether that source is cancelled) and returns its removal
// function. Removing a source re-derives the flag: it stays armed
// exactly when some remaining source is cancelled — so an inner call
// finishing cannot clear an enclosing call's cancellation, and a
// cancellation that raced completion cannot leak once every source is
// gone. The caller must stop its own Set-ter before calling remove.
func (i *InterruptFlag) AddSource(cancelled func() bool) (remove func()) {
	src := &interruptSource{cancelled: cancelled}
	i.mu.Lock()
	i.sources = append(i.sources, src)
	i.mu.Unlock()
	return func() {
		i.mu.Lock()
		defer i.mu.Unlock()
		for idx := len(i.sources) - 1; idx >= 0; idx-- {
			if i.sources[idx] == src {
				i.sources = append(i.sources[:idx], i.sources[idx+1:]...)
				break
			}
		}
		// Stores go through i.v directly: the mutex is already held,
		// which is what orders this derivation against concurrent Sets.
		for _, s := range i.sources {
			if s.cancelled() {
				i.v.Store(true)
				return
			}
		}
		i.v.Store(false)
	}
}

// Interrupted reports whether an interruption was requested. The nil
// check plus one atomic load keep it under the inlining budget, so
// executors pay a single predictable branch on the back-edge fast path.
func (ctx *Context) Interrupted() bool {
	return ctx.Interrupt != nil && ctx.Interrupt.Get()
}

// GoContext returns the Go context of the current top-level call, or
// context.Background() when the call was not context-bound. Host
// functions use it to honor cancellation and deadlines while the guest
// is parked in the host.
func (ctx *Context) GoContext() context.Context {
	if ctx.GoCtx != nil {
		return ctx.GoCtx
	}
	return context.Background()
}

// FuelCheckpoint charges one fuel unit at a plain checkpoint (function
// entry, loop entry, or an unproven loop's back-edge). It returns false
// when the budget just ran out — the caller must unwind with
// TrapFuelExhausted. With metering off (Fuel == 0) it is a single
// predictable branch.
func (ctx *Context) FuelCheckpoint() bool {
	if ctx.Fuel > 0 {
		ctx.Fuel--
		return ctx.Fuel > 0
	}
	return true
}

// FuelPrepay charges a loop whose exact trip count the analysis proved.
// When the remaining budget covers the whole loop, all trips are
// deducted up front and the loop body runs charge-free (FuelIter
// no-ops); otherwise charging degrades to per-iteration mode
// (FuelPerIter) so the exhaustion point is identical to the
// analysis-off execution. Prepaid loops contain no calls and no inner
// loops, so the single mode flag cannot be clobbered mid-loop.
// FuelPrepay itself never exhausts the budget: the first header
// arrival is charged by the FuelIter that every header site runs.
func (ctx *Context) FuelPrepay(trips int64) {
	if ctx.Fuel <= 0 {
		return
	}
	if ctx.Fuel > trips {
		ctx.Fuel -= trips
		ctx.FuelPerIter = false
		return
	}
	ctx.FuelPerIter = true
}

// FuelIter charges one header arrival of a prepaid loop when FuelPrepay
// degraded it to per-iteration mode; in fully prepaid mode (or with
// metering off) it is a no-op. Returns false when the budget just ran
// out.
func (ctx *Context) FuelIter() bool {
	if ctx.Fuel > 0 && ctx.FuelPerIter {
		ctx.Fuel--
		return ctx.Fuel > 0
	}
	return true
}

// PushFrame records fi for stack walkers and returns its index.
func (ctx *Context) PushFrame(fi FrameInfo) int {
	ctx.Frames = append(ctx.Frames, fi)
	return len(ctx.Frames) - 1
}

// PopFrame removes the top frame record.
func (ctx *Context) PopFrame() {
	ctx.Frames = ctx.Frames[:len(ctx.Frames)-1]
}

// CheckStack verifies that a frame needing slots fits below the stack
// limit, returning a stack-overflow trap otherwise.
func (ctx *Context) CheckStack(base, slots int, funcIdx uint32) error {
	if base+slots+64 > len(ctx.Stack.Slots) || ctx.Depth >= ctx.MaxDepth {
		return NewTrap(TrapStackOverflow, funcIdx, 0)
	}
	return nil
}
