package rt

import (
	"testing"

	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

func TestMemoryGrowAndBounds(t *testing.T) {
	m := NewMemory(wasm.Limits{Min: 1, Max: 3, HasMax: true})
	if m.Pages() != 1 {
		t.Fatalf("pages = %d", m.Pages())
	}
	if old := m.Grow(1); old != 1 {
		t.Fatalf("grow returned %d", old)
	}
	if old := m.Grow(5); old != -1 {
		t.Fatalf("over-max grow returned %d", old)
	}
	if !m.InBounds(0, 0, 4) || !m.InBounds(wasm.PageSize*2-4, 0, 4) {
		t.Error("in-bounds access rejected")
	}
	if m.InBounds(wasm.PageSize*2-3, 0, 4) {
		t.Error("out-of-bounds access accepted")
	}
	// addr+offset overflow must not wrap.
	if m.InBounds(0xFFFFFFFF, 0xFFFFFFFF, 8) {
		t.Error("address overflow accepted")
	}
	if m.Grow(0) != 2 {
		t.Error("zero grow should return current size")
	}
}

func TestProbeSet(t *testing.T) {
	s := NewProbeSet(256)
	p1 := &CounterProbe{}
	p2 := &CounterProbe{}
	s.Insert(10, p1)
	s.Insert(200, p2)
	if !s.HasAt(10) || !s.HasAt(200) || s.HasAt(11) {
		t.Error("bitmap lookup wrong")
	}
	if len(s.PCs()) != 2 || s.PCs()[0] != 10 {
		t.Errorf("PCs = %v", s.PCs())
	}
	s.Remove(10)
	if s.HasAt(10) || s.Empty() {
		t.Error("remove broken")
	}
	s.Remove(200)
	if !s.Empty() {
		t.Error("set should be empty")
	}
}

func TestProbeFireAll(t *testing.T) {
	s := NewProbeSet(64)
	c := &CounterProbe{}
	s.Insert(5, c)
	ctx := &Context{Stack: NewValueStack(16, true), CountStats: true}
	fi := FrameInfo{Func: &FuncInst{}, VFP: 0, SP: 4}
	s.FireAll(ctx, fi, 5)
	s.FireAll(ctx, fi, 5)
	if c.Count != 2 {
		t.Errorf("count = %d", c.Count)
	}
	if ctx.Stats.ProbeFires != 2 {
		t.Errorf("stats fires = %d", ctx.Stats.ProbeFires)
	}
}

func TestAccessor(t *testing.T) {
	ctx := &Context{Stack: NewValueStack(16, true)}
	ctx.Stack.Slots[0] = 11 // local 0
	ctx.Stack.Slots[1] = 22 // operand 0
	ctx.Stack.Slots[2] = 33 // operand 1 (top)
	f := &FuncInst{Info: &validate.FuncInfo{LocalTypes: []wasm.ValueType{wasm.I32}}}
	a := &Accessor{Ctx: ctx, Frame: FrameInfo{Func: f, VFP: 0, SP: 3, PC: 9}}
	if a.Local(0) != 11 || a.Operand(0) != 22 || a.Top() != 33 {
		t.Error("accessor reads wrong slots")
	}
	if a.StackHeight() != 2 || a.PC() != 9 {
		t.Error("accessor metadata wrong")
	}
}

func TestCheckStack(t *testing.T) {
	ctx := &Context{Stack: NewValueStack(128, false), MaxDepth: 4}
	if err := ctx.CheckStack(0, 32, 0); err != nil {
		t.Errorf("fits but rejected: %v", err)
	}
	if err := ctx.CheckStack(100, 32, 0); err == nil {
		t.Error("overflow accepted")
	}
	ctx.Depth = 4
	if err := ctx.CheckStack(0, 1, 0); err == nil {
		t.Error("depth overflow accepted")
	}
}

func TestFramePushPop(t *testing.T) {
	ctx := &Context{}
	idx := ctx.PushFrame(FrameInfo{VFP: 1})
	ctx.PushFrame(FrameInfo{VFP: 2})
	if len(ctx.Frames) != 2 || ctx.Frames[idx].VFP != 1 {
		t.Error("push broken")
	}
	ctx.PopFrame()
	if len(ctx.Frames) != 1 {
		t.Error("pop broken")
	}
}

func TestTagModeStrings(t *testing.T) {
	want := map[TagMode]string{
		TagsNone: "notags", TagsEager: "eagertags", TagsEagerOperands: "eagertags-o",
		TagsEagerLocals: "eagertags-l", TagsOnDemand: "on-demand", TagsLazy: "lazytags",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d -> %q, want %q", m, m.String(), s)
		}
	}
}

func TestTrapError(t *testing.T) {
	trap := NewTrap(TrapDivByZero, 3, 17)
	msg := trap.Error()
	if msg == "" || trap.Kind != TrapDivByZero {
		t.Errorf("trap: %q", msg)
	}
	for k := TrapNone; k <= TrapInterrupted; k++ {
		if k.String() == "" {
			t.Errorf("trap kind %d has no name", k)
		}
	}
}

func TestInterruptFlag(t *testing.T) {
	ctx := &Context{}
	if ctx.Interrupted() {
		t.Fatal("nil interrupt flag must read as not interrupted")
	}
	ctx.Interrupt = new(InterruptFlag)
	if ctx.Interrupted() {
		t.Fatal("fresh flag must be clear")
	}
	ctx.Interrupt.Set()
	if !ctx.Interrupted() {
		t.Fatal("set flag not observed")
	}
	ctx.Interrupt.Clear()
	if ctx.Interrupted() {
		t.Fatal("cleared flag still observed")
	}
}

func TestWriteTrackingMarkAndReset(t *testing.T) {
	m := NewMemory(wasm.Limits{Min: 4, Max: 4, HasMax: true}) // 256 KiB = 64 granules
	snapshot := make([]byte, len(m.Data))
	for i := range m.Data {
		m.Data[i] = byte(i * 7)
		snapshot[i] = byte(i * 7)
	}
	m.EnableWriteTracking()
	if !m.WriteTracking() || m.DirtyGranules() != 0 {
		t.Fatalf("tracking = %v, dirty = %d", m.WriteTracking(), m.DirtyGranules())
	}

	// One write in granule 0, one straddling the granule 2/3 boundary.
	m.Mark(100, 0, 8)
	m.Data[100] = 0xFF
	m.Mark(3*DirtyGranule-4, 0, 8)
	m.Data[3*DirtyGranule-4] = 0xEE
	m.Data[3*DirtyGranule+3] = 0xDD
	if m.DirtyGranules() != 3 {
		t.Fatalf("dirty granules = %d, want 3", m.DirtyGranules())
	}
	// Re-marking the same granule must not double count.
	m.Mark(101, 3, 1)
	if m.DirtyGranules() != 3 {
		t.Fatalf("re-mark counted twice: %d", m.DirtyGranules())
	}

	copied, full := m.ResetTo(snapshot)
	if full {
		t.Fatal("sparse reset took the full-wipe path")
	}
	if copied != 3*DirtyGranule {
		t.Fatalf("copied %d bytes, want %d", copied, 3*DirtyGranule)
	}
	if m.DirtyGranules() != 0 {
		t.Fatalf("dirty granules after reset = %d", m.DirtyGranules())
	}
	for i := range m.Data {
		if m.Data[i] != snapshot[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, m.Data[i], snapshot[i])
		}
	}
}

func TestWriteTrackingFullWipeThreshold(t *testing.T) {
	m := NewMemory(wasm.Limits{Min: 1, Max: 1, HasMax: true}) // 16 granules
	snapshot := make([]byte, len(m.Data))
	m.EnableWriteTracking()
	// Dirty half the granules: per-granule replay loses, full wipe runs.
	for g := 0; g < 8; g++ {
		m.Mark(uint32(g*DirtyGranule), 0, 1)
		m.Data[g*DirtyGranule] = 1
	}
	if _, full := m.ResetTo(snapshot); !full {
		t.Error("at-threshold reset did not take the full-wipe path")
	}
	for i := range m.Data {
		if m.Data[i] != 0 {
			t.Fatalf("byte %d not restored", i)
		}
	}
}

func TestWriteTrackingGrowForcesFullReset(t *testing.T) {
	m := NewMemory(wasm.Limits{Min: 1, Max: 4, HasMax: true})
	snapshot := make([]byte, len(m.Data))
	m.EnableWriteTracking()
	if m.Grow(2) != 1 {
		t.Fatal("grow failed")
	}
	if !m.Grown() {
		t.Error("grow did not invalidate granule accounting")
	}
	// Writes into the grown region must not panic and must be undone.
	m.Mark(2*wasm.PageSize, 0, 8)
	m.Data[2*wasm.PageSize] = 9
	copied, full := m.ResetTo(snapshot)
	if !full || copied != len(snapshot) {
		t.Fatalf("reset after grow: copied=%d full=%v", copied, full)
	}
	if len(m.Data) != len(snapshot) || m.Pages() != 1 {
		t.Fatalf("memory not restored to snapshot shape: %d bytes, %d pages",
			len(m.Data), m.Pages())
	}
	if m.Grown() {
		t.Error("grown flag survived reset")
	}
}

func TestWriteTrackingMarkAll(t *testing.T) {
	m := NewMemory(wasm.Limits{Min: 1, Max: 1, HasMax: true})
	snapshot := make([]byte, len(m.Data))
	m.EnableWriteTracking()
	m.Data[77] = 1 // host write without Mark
	m.MarkAll()
	if _, full := m.ResetTo(snapshot); !full {
		t.Error("MarkAll did not force a full reset")
	}
	if m.Data[77] != 0 {
		t.Error("host write survived reset")
	}
}

func TestResetToWithoutTracking(t *testing.T) {
	m := NewMemory(wasm.Limits{Min: 1, Max: 1, HasMax: true})
	snapshot := make([]byte, len(m.Data))
	m.Data[5] = 42
	if copied, full := m.ResetTo(snapshot); !full || copied != len(snapshot) {
		t.Error("untracked memory must full-wipe")
	}
	if m.Data[5] != 0 {
		t.Error("reset without tracking did not restore")
	}
}
