package rt

import (
	"testing"

	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

func TestMemoryGrowAndBounds(t *testing.T) {
	m := NewMemory(wasm.Limits{Min: 1, Max: 3, HasMax: true})
	if m.Pages() != 1 {
		t.Fatalf("pages = %d", m.Pages())
	}
	if old := m.Grow(1); old != 1 {
		t.Fatalf("grow returned %d", old)
	}
	if old := m.Grow(5); old != -1 {
		t.Fatalf("over-max grow returned %d", old)
	}
	if !m.InBounds(0, 0, 4) || !m.InBounds(wasm.PageSize*2-4, 0, 4) {
		t.Error("in-bounds access rejected")
	}
	if m.InBounds(wasm.PageSize*2-3, 0, 4) {
		t.Error("out-of-bounds access accepted")
	}
	// addr+offset overflow must not wrap.
	if m.InBounds(0xFFFFFFFF, 0xFFFFFFFF, 8) {
		t.Error("address overflow accepted")
	}
	if m.Grow(0) != 2 {
		t.Error("zero grow should return current size")
	}
}

func TestProbeSet(t *testing.T) {
	s := NewProbeSet(256)
	p1 := &CounterProbe{}
	p2 := &CounterProbe{}
	s.Insert(10, p1)
	s.Insert(200, p2)
	if !s.HasAt(10) || !s.HasAt(200) || s.HasAt(11) {
		t.Error("bitmap lookup wrong")
	}
	if len(s.PCs()) != 2 || s.PCs()[0] != 10 {
		t.Errorf("PCs = %v", s.PCs())
	}
	s.Remove(10)
	if s.HasAt(10) || s.Empty() {
		t.Error("remove broken")
	}
	s.Remove(200)
	if !s.Empty() {
		t.Error("set should be empty")
	}
}

func TestProbeFireAll(t *testing.T) {
	s := NewProbeSet(64)
	c := &CounterProbe{}
	s.Insert(5, c)
	ctx := &Context{Stack: NewValueStack(16, true), CountStats: true}
	fi := FrameInfo{Func: &FuncInst{}, VFP: 0, SP: 4}
	s.FireAll(ctx, fi, 5)
	s.FireAll(ctx, fi, 5)
	if c.Count != 2 {
		t.Errorf("count = %d", c.Count)
	}
	if ctx.Stats.ProbeFires != 2 {
		t.Errorf("stats fires = %d", ctx.Stats.ProbeFires)
	}
}

func TestAccessor(t *testing.T) {
	ctx := &Context{Stack: NewValueStack(16, true)}
	ctx.Stack.Slots[0] = 11 // local 0
	ctx.Stack.Slots[1] = 22 // operand 0
	ctx.Stack.Slots[2] = 33 // operand 1 (top)
	f := &FuncInst{Info: &validate.FuncInfo{LocalTypes: []wasm.ValueType{wasm.I32}}}
	a := &Accessor{Ctx: ctx, Frame: FrameInfo{Func: f, VFP: 0, SP: 3, PC: 9}}
	if a.Local(0) != 11 || a.Operand(0) != 22 || a.Top() != 33 {
		t.Error("accessor reads wrong slots")
	}
	if a.StackHeight() != 2 || a.PC() != 9 {
		t.Error("accessor metadata wrong")
	}
}

func TestCheckStack(t *testing.T) {
	ctx := &Context{Stack: NewValueStack(128, false), MaxDepth: 4}
	if err := ctx.CheckStack(0, 32, 0); err != nil {
		t.Errorf("fits but rejected: %v", err)
	}
	if err := ctx.CheckStack(100, 32, 0); err == nil {
		t.Error("overflow accepted")
	}
	ctx.Depth = 4
	if err := ctx.CheckStack(0, 1, 0); err == nil {
		t.Error("depth overflow accepted")
	}
}

func TestFramePushPop(t *testing.T) {
	ctx := &Context{}
	idx := ctx.PushFrame(FrameInfo{VFP: 1})
	ctx.PushFrame(FrameInfo{VFP: 2})
	if len(ctx.Frames) != 2 || ctx.Frames[idx].VFP != 1 {
		t.Error("push broken")
	}
	ctx.PopFrame()
	if len(ctx.Frames) != 1 {
		t.Error("pop broken")
	}
}

func TestTagModeStrings(t *testing.T) {
	want := map[TagMode]string{
		TagsNone: "notags", TagsEager: "eagertags", TagsEagerOperands: "eagertags-o",
		TagsEagerLocals: "eagertags-l", TagsOnDemand: "on-demand", TagsLazy: "lazytags",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d -> %q, want %q", m, m.String(), s)
		}
	}
}

func TestTrapError(t *testing.T) {
	trap := NewTrap(TrapDivByZero, 3, 17)
	msg := trap.Error()
	if msg == "" || trap.Kind != TrapDivByZero {
		t.Errorf("trap: %q", msg)
	}
	for k := TrapNone; k <= TrapHostError; k++ {
		if k.String() == "" {
			t.Errorf("trap kind %d has no name", k)
		}
	}
}
