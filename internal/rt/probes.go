package rt

import (
	"sort"

	"wizgo/internal/wasm"
)

// Probe is a user instrumentation callback attached to a bytecode
// location ("local probe" in the paper's terminology). Fire runs before
// the probed instruction executes and receives an accessor exposing the
// frame's state.
type Probe interface {
	Fire(a *Accessor)
}

// TosProbe is the optimized probe shape for probes that only need the
// top-of-stack value (the paper's branch monitor reads the branch
// condition this way). When compiled code fires a TosProbe at an
// intrinsified site it passes the top-of-stack directly, eliding the
// accessor object entirely — the "optjit" configuration of Figure 6.
type TosProbe interface {
	Probe
	FireTos(bits uint64)
}

// CounterProbe counts executions of a location. Compiled code
// intrinsifies it to a direct increment.
type CounterProbe struct {
	Count uint64
}

// Fire implements Probe.
func (c *CounterProbe) Fire(a *Accessor) { c.Count++ }

// Accessor exposes the state of a probed frame to instrumentation. It is
// allocated lazily per probe fire in the unoptimized configurations,
// matching the engine-code overhead Figure 6 attributes to "jit" and
// "int" modes.
type Accessor struct {
	Ctx   *Context
	Frame FrameInfo
}

// PC returns the bytecode offset of the probed instruction.
func (a *Accessor) PC() int { return a.Frame.PC }

// FuncIdx returns the probed function's index.
func (a *Accessor) FuncIdx() uint32 { return a.Frame.Func.Idx }

// Local returns the bits of local i.
func (a *Accessor) Local(i int) uint64 {
	return a.Ctx.Stack.Slots[a.Frame.VFP+i]
}

// StackHeight returns the operand stack height in slots.
func (a *Accessor) StackHeight() int {
	locals := len(a.Frame.Func.Info.LocalTypes)
	return a.Frame.SP - a.Frame.VFP - locals
}

// Operand returns the bits of the i-th operand slot from the bottom.
func (a *Accessor) Operand(i int) uint64 {
	locals := len(a.Frame.Func.Info.LocalTypes)
	return a.Ctx.Stack.Slots[a.Frame.VFP+locals+i]
}

// Top returns the bits of the top-of-stack slot.
func (a *Accessor) Top() uint64 {
	return a.Ctx.Stack.Slots[a.Frame.SP-1]
}

// ProbeSet holds the probes attached to one function, with a dense
// bitmap so the interpreter's per-instruction check is a single load
// and mask.
type ProbeSet struct {
	bitmap []uint64
	byPC   map[int][]Probe
	pcs    []int
}

// NewProbeSet creates an empty probe set for a body of the given length.
func NewProbeSet(bodyLen int) *ProbeSet {
	return &ProbeSet{
		bitmap: make([]uint64, (bodyLen+63)/64),
		byPC:   make(map[int][]Probe),
	}
}

// Insert attaches p at bytecode offset pc.
func (s *ProbeSet) Insert(pc int, p Probe) {
	if _, ok := s.byPC[pc]; !ok {
		s.pcs = append(s.pcs, pc)
		sort.Ints(s.pcs)
	}
	s.byPC[pc] = append(s.byPC[pc], p)
	s.bitmap[pc/64] |= 1 << (pc % 64)
}

// Remove detaches all probes at pc.
func (s *ProbeSet) Remove(pc int) {
	delete(s.byPC, pc)
	s.bitmap[pc/64] &^= 1 << (pc % 64)
	for i, v := range s.pcs {
		if v == pc {
			s.pcs = append(s.pcs[:i], s.pcs[i+1:]...)
			break
		}
	}
}

// HasAt reports whether any probe is attached at pc.
func (s *ProbeSet) HasAt(pc int) bool {
	if s == nil || pc/64 >= len(s.bitmap) {
		return false
	}
	return s.bitmap[pc/64]&(1<<(pc%64)) != 0
}

// At returns the probes attached at pc.
func (s *ProbeSet) At(pc int) []Probe {
	if s == nil {
		return nil
	}
	return s.byPC[pc]
}

// PCs returns the sorted probed offsets.
func (s *ProbeSet) PCs() []int {
	if s == nil {
		return nil
	}
	return s.pcs
}

// Empty reports whether no probes remain.
func (s *ProbeSet) Empty() bool { return s == nil || len(s.byPC) == 0 }

// FireAll fires every probe at pc — the runtime path shared by the
// interpreter and plain JIT probe calls. Counter and top-of-stack
// probes dispatch directly, without materializing an accessor, so they
// stay allocation-free here just as they do when compiled code
// intrinsifies them; the accessor is allocated lazily, only when a
// generic probe actually needs one (the engine-code overhead Figure 6
// attributes to the unoptimized configurations).
func (s *ProbeSet) FireAll(ctx *Context, fi FrameInfo, pc int) {
	var a *Accessor
	for _, p := range s.byPC[pc] {
		switch q := p.(type) {
		case *CounterProbe:
			q.Count++
		case TosProbe:
			var tos uint64
			if fi.SP > 0 {
				tos = ctx.Stack.Slots[fi.SP-1]
			}
			q.FireTos(tos)
		default:
			if a == nil {
				a = &Accessor{Ctx: ctx, Frame: fi}
				a.Frame.PC = pc
			}
			p.Fire(a)
		}
	}
	if ctx.CountStats {
		ctx.Stats.ProbeFires++
	}
}

// TagsForLocals reconstructs the value tags of a function's locals from
// its declarations — the paper's "lazy tagging of locals": local types
// are static, so the stack walker can recompute them instead of the
// compiled code storing them.
func TagsForLocals(f *FuncInst) []wasm.Tag {
	types := f.Info.LocalTypes
	tags := make([]wasm.Tag, len(types))
	for i, t := range types {
		tags[i] = wasm.TagOf(t)
	}
	return tags
}
