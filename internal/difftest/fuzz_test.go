package difftest

import (
	"sync"
	"testing"
	"time"

	"wizgo/internal/wasm"
)

// fuzzOracle is shared across fuzz iterations (engines are expensive to
// build) with a short deadline: fuzz-provided modules have no
// termination guarantee, so runaway executions must be cut off fast.
// The mutex serializes access — the Oracle reuses per-engine state, and
// fuzz workers may run the target concurrently within a process.
var (
	fuzzOracle     *Oracle
	fuzzOracleOnce sync.Once
	fuzzOracleMu   sync.Mutex
)

// FuzzDifferential feeds arbitrary bytes through the decoder into the
// full cross-execution oracle: every configuration must agree on
// rejection, and any module that executes must produce identical
// canonical outcomes. This is the open-ended counterpart of the
// structure-aware generator — no validity or termination guarantees,
// the oracle's rejection comparison and deadline carry all the weight.
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(Generate(seed, GenConfig{}).Bytes)
	}
	f.Fuzz(func(t *testing.T, bytes []byte) {
		// Bound resource usage before execution: huge memories or
		// function counts make iterations uselessly slow without adding
		// differential coverage.
		if m, err := wasm.Decode(bytes); err == nil {
			if m.MemoryMinPages() > 4 || len(m.Funcs) > 64 {
				t.Skip("oversized module")
			}
		}
		fuzzOracleOnce.Do(func() {
			fuzzOracle = NewOracle()
			fuzzOracle.Deadline = 150 * time.Millisecond
		})
		fuzzOracleMu.Lock()
		defer fuzzOracleMu.Unlock()
		g := Generated{Bytes: bytes, Calls: DeriveCalls(bytes)}
		if outs, d := fuzzOracle.Run(g); d != nil {
			t.Fatalf("%v\n%s", d, OutcomeTable(outs))
		}
	})
}
