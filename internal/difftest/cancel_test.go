package difftest

import (
	"context"
	"errors"
	"testing"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rt"
)

// TestCancellationUnderGeneratedLoops: generator-built unbounded loops
// must hit TrapInterrupted identically under every matrix configuration.
// "spin" is a genuinely infinite loop; "spin_counted" has a 2^30 trip
// bound, above the analysis' poll-elision cap, so this doubles as a
// regression test that NoPoll facts never elide the poll that makes a
// long-running loop cancellable.
func TestCancellationUnderGeneratedLoops(t *testing.T) {
	g := Generate(1, GenConfig{Unbounded: true})
	for _, cfg := range engines.DifferentialMatrix() {
		e := engine.New(cfg, nil)
		cm, err := e.Compile(g.Bytes)
		if err != nil {
			t.Fatalf("%s: compile: %v", cfg.Name, err)
		}
		inst, err := cm.Instantiate()
		if err != nil {
			t.Fatalf("%s: instantiate: %v", cfg.Name, err)
		}
		for _, name := range []string{"spin", "spin_counted"} {
			ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
			_, err := inst.CallContext(ctx, name)
			cancel()
			var trap *rt.Trap
			if !errors.As(err, &trap) || trap.Kind != rt.TrapInterrupted {
				t.Fatalf("%s: %s: want TrapInterrupted, got %v", cfg.Name, name, err)
			}
		}
		inst.Release()
	}
}

// TestCorpusReplay runs every checked-in reproducer through the full
// oracle: once a divergence is fixed, its minimized module must stay in
// agreement forever. LoadCorpus fails on a missing directory, so this
// test cannot silently pass by looking at the wrong path, and the
// non-empty check keeps it from going vacuous if the corpus is ever
// emptied out.
func TestCorpusReplay(t *testing.T) {
	rs, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	if len(rs) == 0 {
		t.Fatal("corpus is empty; at least one reproducer must be checked in")
	}
	o := NewOracle()
	for _, r := range rs {
		g, err := r.Generated()
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		outs, d := o.Run(g)
		if d != nil {
			t.Errorf("%s regressed: %v\n%s", r.Name, d, OutcomeTable(outs))
		}
	}
}
