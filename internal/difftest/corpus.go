package difftest

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wizgo/internal/wasm"
)

// Corpus persistence. A reproducer is a pair of files in a corpus
// directory: `<name>.wasm` holding the (minimized) module bytes, and
// `<name>.json` holding the seed, the calls to replay, a human-readable
// note naming the divergence, and the per-engine outcome table captured
// when the divergence was found. The pair is self-contained: replaying
// it needs nothing but the oracle, so checked-in reproducers double as
// regression tests (TestCorpusReplay).

// Reproducer is the on-disk record of one divergence.
type Reproducer struct {
	Seed     int64       `json:"seed"`
	Note     string      `json:"note,omitempty"`
	Calls    []reproCall `json:"calls"`
	Outcomes string      `json:"outcomes,omitempty"`

	// Name and Bytes are carried alongside, not serialized in the JSON
	// (the bytes live in the sibling .wasm file).
	Name  string `json:"-"`
	Bytes []byte `json:"-"`
}

type reproCall struct {
	Export string     `json:"export"`
	Args   []reproArg `json:"args,omitempty"`
}

type reproArg struct {
	Type string `json:"type"`
	Bits uint64 `json:"bits"`
}

func parseValueType(s string) (wasm.ValueType, error) {
	for _, t := range []wasm.ValueType{wasm.I32, wasm.I64, wasm.F32, wasm.F64, wasm.FuncRef, wasm.ExternRef} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("difftest: unknown value type %q", s)
}

// Generated reconstructs the oracle input from a loaded reproducer.
func (r Reproducer) Generated() (Generated, error) {
	g := Generated{Seed: r.Seed, Bytes: r.Bytes}
	for _, c := range r.Calls {
		call := Call{Export: c.Export}
		for _, a := range c.Args {
			t, err := parseValueType(a.Type)
			if err != nil {
				return Generated{}, fmt.Errorf("%s: %w", r.Name, err)
			}
			call.Args = append(call.Args, wasm.Value{Type: t, Bits: a.Bits})
		}
		g.Calls = append(g.Calls, call)
	}
	return g, nil
}

// WriteReproducer stores g into dir, naming the pair by seed and a
// short content hash so distinct divergences never collide. Returns the
// path of the .wasm file.
func WriteReproducer(dir string, g Generated, note, outcomes string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(g.Bytes)
	name := fmt.Sprintf("repro-%d-%08x", g.Seed, h.Sum64()&0xFFFFFFFF)
	r := Reproducer{Seed: g.Seed, Note: note, Outcomes: outcomes}
	for _, c := range g.Calls {
		rc := reproCall{Export: c.Export}
		for _, a := range c.Args {
			rc.Args = append(rc.Args, reproArg{Type: a.Type.String(), Bits: a.Bits})
		}
		r.Calls = append(r.Calls, rc)
	}
	meta, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	wasmPath := filepath.Join(dir, name+".wasm")
	if err := os.WriteFile(wasmPath, g.Bytes, 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), append(meta, '\n'), 0o644); err != nil {
		return "", err
	}
	return wasmPath, nil
}

// LoadCorpus reads every reproducer pair in dir, sorted by name. A
// missing directory is an error (so a typo'd corpus path cannot
// silently pass as an empty corpus); an existing-but-empty directory
// returns an empty slice.
func LoadCorpus(dir string) ([]Reproducer, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Reproducer
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wasm") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".wasm")
		bytes, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		r := Reproducer{Name: name, Bytes: bytes}
		meta, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			return nil, fmt.Errorf("difftest: reproducer %s has no metadata: %w", name, err)
		}
		if err := json.Unmarshal(meta, &r); err != nil {
			return nil, fmt.Errorf("difftest: reproducer %s: %w", name, err)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
