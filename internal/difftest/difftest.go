// Package difftest is the differential testing engine for the four
// execution tiers: a structure-aware module generator (gen.go), a
// cross-execution oracle that runs each module through every
// engines.Catalog() configuration crossed with the static analysis on
// and off, and an automatic minimizer (minimize.go) that shrinks any
// diverging module into a checked-in reproducer (corpus.go).
//
// The repo's unique asset is four executors — in-place interpreter,
// rewriting interpreter, single-pass compiler, and the tiered pipeline
// that transitions between them — for one Wasm semantics, plus an
// analysis on/off axis that licenses check elision in every tier. Any
// observable difference between two cells of that matrix is a bug by
// construction, which makes random differential testing the
// highest-leverage correctness tool the repo has: no hand-written
// expectations, just agreement.
//
// An execution's observable behavior is canonicalized into an Outcome:
// per-call results (with NaN payloads canonicalized, since Wasm permits
// any NaN bit pattern) or trap kind, plus the final linear memory hash
// and final global values. Runs that hit the safety-net deadline
// (TrapInterrupted) are timing-dependent and excluded from comparison.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// Call is one export invocation of the oracle's workload: every
// generated module carries the calls that exercise it, and reproducers
// persist them alongside the module bytes.
type Call struct {
	Export string       `json:"export"`
	Args   []wasm.Value `json:"-"`
}

// Generated is a module plus the calls that exercise it — the unit the
// oracle executes and the minimizer shrinks.
type Generated struct {
	Seed  int64
	Bytes []byte
	Calls []Call
}

// CallOutcome is the canonical observable result of one export call.
type CallOutcome struct {
	Export  string
	Trapped bool
	Trap    rt.TrapKind
	// Results holds canonicalized result bits (NaNs normalized to the
	// canonical quiet NaN of their type). Empty when the call trapped.
	Results []uint64
	// Err records a non-trap harness error (unknown export, argument
	// mismatch); such errors come from shared pre-execution code and
	// must also agree across configurations.
	Err string
}

// Outcome is everything a run of one module under one engine
// configuration can observe: whether setup rejected the module (and in
// which phase), each call's result or trap, and the final instance
// state.
type Outcome struct {
	// Rejected is true when the module never reached execution;
	// RejectPhase says which phase refused it ("compile" covers
	// decode/validate/tier-compile, "instantiate" covers link + start).
	Rejected    bool
	RejectPhase string
	RejectErr   string

	Calls []CallOutcome

	// MemPages/MemHash digest the final linear memory; Globals holds
	// the final value bits of every global (canonicalized).
	MemPages uint32
	MemHash  uint64
	Globals  []uint64

	// Interrupted is true when any call hit TrapInterrupted: the run
	// crossed the oracle deadline, so the outcome is timing-dependent
	// and incomparable.
	Interrupted bool
}

// EngineOutcome pairs an outcome with the configuration that produced it.
type EngineOutcome struct {
	Config  string
	Outcome Outcome
}

// Divergence describes the first observable difference between two
// configurations' outcomes for one module.
type Divergence struct {
	Seed     int64
	ConfigA  string
	ConfigB  string
	Detail   string
	Outcomes []EngineOutcome
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("difftest: divergence (seed %d): %s vs %s: %s",
		d.Seed, d.ConfigA, d.ConfigB, d.Detail)
}

// canonNaN32/canonNaN64 are the canonical quiet NaN bit patterns the
// oracle normalizes every NaN to before comparing: Wasm leaves NaN
// payloads nondeterministic, so bitwise-distinct NaNs are not a
// divergence.
const (
	canonNaN32 = uint64(0x7fc00000)
	canonNaN64 = uint64(0x7ff8000000000000)
)

// canonBits canonicalizes one value's bits for comparison.
func canonBits(t wasm.ValueType, bits uint64) uint64 {
	switch t {
	case wasm.F32:
		if f := math.Float32frombits(uint32(bits)); f != f {
			return canonNaN32
		}
	case wasm.F64:
		if f := math.Float64frombits(bits); f != f {
			return canonNaN64
		}
	}
	return bits
}

// Oracle owns one engine per matrix configuration and cross-executes
// modules through all of them. Engines are reused across modules so
// value stacks recycle through the per-engine pools; an Oracle is not
// goroutine-safe.
type Oracle struct {
	cfgs    []engine.Config
	engines []*engine.Engine
	// Deadline bounds each export call; generated modules terminate by
	// construction, so this is a safety net, and runs that hit it are
	// excluded from comparison as timing-dependent.
	Deadline time.Duration
	// Fuel, when positive, runs every export call under that per-call
	// fuel budget. Fuel charging is deterministic (one unit per function
	// entry and loop-header arrival, identically in every tier), so a
	// budget small enough to trip mid-run must produce TrapFuelExhausted
	// in ALL configurations or none — a disagreement is a real
	// divergence, exactly like a bounds-check disagreement.
	Fuel int64
}

// NewOracle builds the oracle over engines.DifferentialMatrix(). The
// value stacks are sized down from the engine default: generated
// functions are small and the matrix holds one stack per configuration.
func NewOracle() *Oracle {
	o := &Oracle{Deadline: 2 * time.Second}
	for _, cfg := range engines.DifferentialMatrix() {
		cfg.StackSlots = 1 << 16
		o.cfgs = append(o.cfgs, cfg)
		o.engines = append(o.engines, engine.New(cfg, nil))
	}
	return o
}

// Configs returns the matrix configuration names, in execution order.
func (o *Oracle) Configs() []string {
	names := make([]string, len(o.cfgs))
	for i, c := range o.cfgs {
		names[i] = c.Name
	}
	return names
}

// Run executes g under every matrix configuration and compares the
// canonical outcomes. A nil Divergence means all configurations agreed
// (or some run crossed the deadline, making the module incomparable).
func (o *Oracle) Run(g Generated) ([]EngineOutcome, *Divergence) {
	outs := make([]EngineOutcome, len(o.engines))
	for i, e := range o.engines {
		outs[i] = EngineOutcome{
			Config:  o.cfgs[i].Name,
			Outcome: o.execute(e, g),
		}
		if outs[i].Outcome.Interrupted {
			return outs, nil
		}
	}
	if d := Compare(outs); d != nil {
		d.Seed = g.Seed
		d.Outcomes = outs
		return outs, d
	}
	return outs, nil
}

// Diverges reports whether g still diverges — the minimizer's predicate.
func (o *Oracle) Diverges(g Generated) bool {
	_, d := o.Run(g)
	return d != nil
}

// execute runs one module under one engine and captures its canonical
// outcome.
func (o *Oracle) execute(e *engine.Engine, g Generated) Outcome {
	var out Outcome
	cm, err := e.Compile(g.Bytes)
	if err != nil {
		out.Rejected, out.RejectPhase, out.RejectErr = true, "compile", err.Error()
		return out
	}
	inst, err := cm.Instantiate()
	if err != nil {
		out.Rejected, out.RejectPhase, out.RejectErr = true, "instantiate", err.Error()
		return out
	}
	defer inst.Release()

	for _, call := range g.Calls {
		co := CallOutcome{Export: call.Export}
		goctx, cancel := context.WithTimeout(context.Background(), o.Deadline)
		results, err := inst.CallWith(goctx, engine.CallOpts{Fuel: o.Fuel}, call.Export, call.Args...)
		cancel()
		if err != nil {
			var trap *rt.Trap
			if errors.As(err, &trap) {
				co.Trapped, co.Trap = true, trap.Kind
				if trap.Kind == rt.TrapInterrupted {
					out.Interrupted = true
				}
			} else {
				co.Err = err.Error()
			}
		} else {
			for _, v := range results {
				co.Results = append(co.Results, canonBits(v.Type, v.Bits))
			}
		}
		out.Calls = append(out.Calls, co)
	}

	ri := inst.RT
	out.MemPages = ri.Memory.Pages()
	h := fnv.New64a()
	h.Write(ri.Memory.Data)
	out.MemHash = h.Sum64()
	m := ri.Module
	for gi, slot := range ri.Globals {
		t, _, err := m.GlobalTypeAt(uint32(gi))
		if err != nil {
			t = wasm.I64 // unreachable for linked instances; keep raw bits
		}
		out.Globals = append(out.Globals, canonBits(t, slot.Bits))
	}
	return out
}

// Compare finds the first divergence between outs[0] and each other
// outcome. Outcomes flagged Interrupted never participate.
func Compare(outs []EngineOutcome) *Divergence {
	var base *EngineOutcome
	for i := range outs {
		if outs[i].Outcome.Interrupted {
			continue
		}
		if base == nil {
			base = &outs[i]
			continue
		}
		if detail := diffOutcome(base.Outcome, outs[i].Outcome); detail != "" {
			return &Divergence{ConfigA: base.Config, ConfigB: outs[i].Config, Detail: detail}
		}
	}
	return nil
}

// diffOutcome returns a description of the first difference between two
// canonical outcomes, or "" when they agree.
func diffOutcome(a, b Outcome) string {
	if a.Rejected != b.Rejected {
		return fmt.Sprintf("rejection: %v (%s %s) vs %v (%s %s)",
			a.Rejected, a.RejectPhase, a.RejectErr, b.Rejected, b.RejectPhase, b.RejectErr)
	}
	if a.Rejected {
		if a.RejectPhase != b.RejectPhase {
			return fmt.Sprintf("rejection phase: %s (%s) vs %s (%s)",
				a.RejectPhase, a.RejectErr, b.RejectPhase, b.RejectErr)
		}
		return ""
	}
	if len(a.Calls) != len(b.Calls) {
		return fmt.Sprintf("call count: %d vs %d", len(a.Calls), len(b.Calls))
	}
	for i := range a.Calls {
		ca, cb := a.Calls[i], b.Calls[i]
		if ca.Trapped != cb.Trapped || ca.Trap != cb.Trap {
			return fmt.Sprintf("call %s: trap %s vs %s", ca.Export, trapLabel(ca), trapLabel(cb))
		}
		if ca.Err != cb.Err {
			return fmt.Sprintf("call %s: error %q vs %q", ca.Export, ca.Err, cb.Err)
		}
		if len(ca.Results) != len(cb.Results) {
			return fmt.Sprintf("call %s: result count %d vs %d", ca.Export, len(ca.Results), len(cb.Results))
		}
		for j := range ca.Results {
			if ca.Results[j] != cb.Results[j] {
				return fmt.Sprintf("call %s: result %d: %#x vs %#x", ca.Export, j, ca.Results[j], cb.Results[j])
			}
		}
	}
	if a.MemPages != b.MemPages {
		return fmt.Sprintf("final memory pages: %d vs %d", a.MemPages, b.MemPages)
	}
	if a.MemHash != b.MemHash {
		return fmt.Sprintf("final memory hash: %#x vs %#x", a.MemHash, b.MemHash)
	}
	if len(a.Globals) != len(b.Globals) {
		return fmt.Sprintf("global count: %d vs %d", len(a.Globals), len(b.Globals))
	}
	for i := range a.Globals {
		if a.Globals[i] != b.Globals[i] {
			return fmt.Sprintf("final global %d: %#x vs %#x", i, a.Globals[i], b.Globals[i])
		}
	}
	return ""
}

func trapLabel(c CallOutcome) string {
	if !c.Trapped {
		return "none"
	}
	return c.Trap.String()
}

// OutcomeTable renders the per-configuration outcomes as an aligned
// text table, the human-readable half of a reproducer.
func OutcomeTable(outs []EngineOutcome) string {
	var sb strings.Builder
	for _, eo := range outs {
		o := eo.Outcome
		fmt.Fprintf(&sb, "%-24s", eo.Config)
		switch {
		case o.Rejected:
			fmt.Fprintf(&sb, " rejected(%s): %s", o.RejectPhase, o.RejectErr)
		case o.Interrupted:
			fmt.Fprintf(&sb, " interrupted (deadline)")
		default:
			for _, c := range o.Calls {
				if c.Trapped {
					fmt.Fprintf(&sb, " %s=trap:%s", c.Export, c.Trap)
				} else if c.Err != "" {
					fmt.Fprintf(&sb, " %s=err:%s", c.Export, c.Err)
				} else {
					fmt.Fprintf(&sb, " %s=%v", c.Export, c.Results)
				}
			}
			fmt.Fprintf(&sb, " mem=%#x globals=%v", o.MemHash, o.Globals)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
