package difftest

import (
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// The divergence minimizer. Given a module+calls that some predicate
// flags (normally Oracle.Diverges), Minimize shrinks it by structured
// passes — drop calls, stub bodies, drop exports and whole functions,
// delta-debug instruction sequences, zero constants, drop data/element
// segments — re-validating and re-checking the predicate after every
// candidate mutation. Candidates that fail validation are discarded for
// free; only validated candidates spend the check budget. The passes
// run to a fixpoint, so the reproducers written into the corpus are
// usually a handful of instructions naming the exact disagreement.

// CheckFunc reports whether a candidate still exhibits the property
// being preserved (normally: the oracle still observes a divergence).
type CheckFunc func(Generated) bool

// maxChecks bounds the total number of predicate evaluations one
// Minimize call may spend; each evaluation runs the full engine matrix,
// so this is the minimizer's real cost control.
const maxChecks = 2000

// Minimize shrinks g while check keeps holding. If check(g) is false to
// begin with, g is returned unchanged.
func Minimize(g Generated, check CheckFunc) Generated {
	mz := &minimizer{best: g, check: check, budget: maxChecks}
	if !mz.try(g) {
		return g
	}
	for mz.budget > 0 {
		changed := mz.dropCalls()
		changed = mz.stubBodies() || changed
		changed = mz.dropExports() || changed
		changed = mz.dropFuncs() || changed
		changed = mz.ddminInstrs() || changed
		changed = mz.unwrapBlocks() || changed
		changed = mz.shrinkConsts() || changed
		changed = mz.dropSegments() || changed
		changed = mz.zeroGlobals() || changed
		if !changed {
			break
		}
	}
	return mz.best
}

type minimizer struct {
	best   Generated
	check  CheckFunc
	budget int
}

// try accepts cand as the new best iff the predicate still holds.
func (mz *minimizer) try(cand Generated) bool {
	if mz.budget <= 0 {
		return false
	}
	mz.budget--
	if !mz.check(cand) {
		return false
	}
	mz.best = cand
	return true
}

// tryModule encodes a mutated module, filters out invalid candidates
// (for free — validation doesn't spend the check budget), and tries the
// rest.
func (mz *minimizer) tryModule(m *wasm.Module, calls []Call) bool {
	bytes := wasm.Encode(m)
	dec, err := wasm.Decode(bytes)
	if err != nil {
		return false
	}
	if _, err := validate.Module(dec); err != nil {
		return false
	}
	return mz.try(Generated{Seed: mz.best.Seed, Bytes: bytes, Calls: calls})
}

// decode re-decodes the current best; mutation passes always start from
// a fresh copy so a rejected candidate leaves no residue.
func (mz *minimizer) decode() *wasm.Module {
	m, err := wasm.Decode(mz.best.Bytes)
	if err != nil {
		return nil
	}
	return m
}

// dropCalls removes calls one at a time.
func (mz *minimizer) dropCalls() bool {
	changed := false
	for i := 0; i < len(mz.best.Calls) && len(mz.best.Calls) > 1; {
		cand := mz.best
		cand.Calls = append(append([]Call{}, mz.best.Calls[:i]...), mz.best.Calls[i+1:]...)
		if mz.try(cand) {
			changed = true
		} else {
			i++
		}
	}
	return changed
}

// stubBody is the smallest valid body for a signature: one zero
// constant per result, then end.
func stubBody(results []wasm.ValueType) []byte {
	var b []byte
	for _, t := range results {
		b = append(b, zeroConst(constOpFor(t))...)
	}
	return append(b, byte(wasm.OpEnd))
}

func constOpFor(t wasm.ValueType) wasm.Opcode {
	switch t {
	case wasm.I32:
		return wasm.OpI32Const
	case wasm.I64:
		return wasm.OpI64Const
	case wasm.F32:
		return wasm.OpF32Const
	default:
		return wasm.OpF64Const
	}
}

// stubBodies replaces whole function bodies with their stub. This is
// the big hammer: every function not implicated in the divergence
// collapses to at most a few constants.
func (mz *minimizer) stubBodies() bool {
	changed := false
	for i := 0; ; i++ {
		m := mz.decode()
		if m == nil || i >= len(m.Funcs) {
			break
		}
		f := &m.Funcs[i]
		stub := stubBody(m.Types[f.TypeIdx].Results)
		if len(f.Locals) == 0 && string(f.Body) == string(stub) {
			continue
		}
		f.Locals = nil
		f.Body = stub
		if mz.tryModule(m, mz.best.Calls) {
			changed = true
		}
	}
	return changed
}

// dropExports removes exports no remaining call references.
func (mz *minimizer) dropExports() bool {
	used := map[string]bool{}
	for _, c := range mz.best.Calls {
		used[c.Export] = true
	}
	changed := false
	for i := 0; ; {
		m := mz.decode()
		if m == nil || i >= len(m.Exports) {
			break
		}
		if used[m.Exports[i].Name] {
			i++
			continue
		}
		m.Exports = append(m.Exports[:i], m.Exports[i+1:]...)
		if mz.tryModule(m, mz.best.Calls) {
			changed = true
		} else {
			i++
		}
	}
	return changed
}

// rewriteFuncRefs renumbers direct function references (call, ref.func)
// in body after function index `removed` was deleted. Returns ok=false
// if the body references the removed function.
func rewriteFuncRefs(body []byte, removed uint32) (out []byte, ok bool) {
	r := wasm.NewReader(body)
	for r.Len() > 0 {
		start := r.Pos
		op, err := r.ReadOpcode()
		if err != nil {
			return nil, false
		}
		if op == wasm.OpCall || op == wasm.OpRefFunc {
			idx, err := r.U32()
			if err != nil {
				return nil, false
			}
			if idx == removed {
				return nil, false
			}
			out = wasm.AppendOpcode(out, op)
			if idx > removed {
				idx--
			}
			out = wasm.AppendU32(out, idx)
			continue
		}
		if err := r.SkipImm(op); err != nil {
			return nil, false
		}
		out = append(out, body[start:r.Pos]...)
	}
	return out, true
}

// dropFuncs deletes whole functions, renumbering every remaining
// reference (calls, ref.func, exports, element segments, start). A
// function still referenced by an element segment or a remaining call
// is left alone.
func (mz *minimizer) dropFuncs() bool {
	changed := false
	for i := 0; ; {
		m := mz.decode()
		if m == nil || i >= len(m.Funcs) || len(m.Funcs) <= 1 {
			break
		}
		if !mz.tryDropFunc(m, uint32(i)) {
			i++
		} else {
			changed = true
		}
	}
	return changed
}

func (mz *minimizer) tryDropFunc(m *wasm.Module, idx uint32) bool {
	// The generator never emports function imports, but fuzz inputs
	// might; index arithmetic with imported funcs is not worth the
	// complexity here.
	if m.NumImportedFuncs() > 0 {
		return false
	}
	for _, e := range m.Elems {
		for _, f := range e.Funcs {
			if f == idx {
				return false
			}
		}
	}
	if m.HasStart && m.Start == idx {
		return false
	}
	exported := map[uint32]string{}
	for _, e := range m.Exports {
		if e.Kind == wasm.ExternFunc {
			exported[e.Idx] = e.Name
		}
	}
	for _, c := range mz.best.Calls {
		if exported[idx] == c.Export {
			return false
		}
	}
	// Renumber bodies; bail if anything still calls the victim.
	for i := range m.Funcs {
		if uint32(i) == idx {
			continue
		}
		body, ok := rewriteFuncRefs(m.Funcs[i].Body, idx)
		if !ok {
			return false
		}
		m.Funcs[i].Body = body
	}
	m.Funcs = append(m.Funcs[:idx], m.Funcs[idx+1:]...)
	var exps []wasm.Export
	for _, e := range m.Exports {
		if e.Kind == wasm.ExternFunc {
			if e.Idx == idx {
				continue
			}
			if e.Idx > idx {
				e.Idx--
			}
		}
		exps = append(exps, e)
	}
	m.Exports = exps
	for ei := range m.Elems {
		for fi, f := range m.Elems[ei].Funcs {
			if f > idx {
				m.Elems[ei].Funcs[fi] = f - 1
			}
		}
	}
	if m.HasStart && m.Start > idx {
		m.Start--
	}
	return mz.tryModule(m, mz.best.Calls)
}

// ddminInstrs delta-debugs each function body at instruction
// granularity: remove chunks of decreasing size, keeping any removal
// that validates and still diverges.
func (mz *minimizer) ddminInstrs() bool {
	changed := false
	for fi := 0; ; fi++ {
		m := mz.decode()
		if m == nil || fi >= len(m.Funcs) {
			break
		}
		if mz.ddminBody(fi) {
			changed = true
		}
	}
	return changed
}

func (mz *minimizer) ddminBody(fi int) bool {
	changed := false
	// Every chunk size, not just powers of two: the smallest
	// stack-neutral removable unit is often odd-sized (const, const,
	// store is three instructions). Invalid candidates cost nothing, so
	// the wide size sweep is cheap.
	for size := 16; size >= 1; size-- {
		for i := 0; ; {
			m := mz.decode()
			if m == nil || fi >= len(m.Funcs) {
				return changed
			}
			body := m.Funcs[fi].Body
			starts, err := wasm.InstrStarts(body)
			if err != nil || i+size >= len(starts) { // keep the final end
				break
			}
			end := len(body)
			if i+size < len(starts) {
				end = starts[i+size]
			}
			cand := append([]byte{}, body[:starts[i]]...)
			cand = append(cand, body[end:]...)
			m.Funcs[fi].Body = cand
			if mz.tryModule(m, mz.best.Calls) {
				changed = true
			} else {
				i++
			}
		}
	}
	return changed
}

// unwrapBlocks removes structured wrappers that contiguous deletion can
// never touch: a block/loop and its matching (non-adjacent) end are
// deleted as a pair, and an if becomes drop (discarding the condition,
// making the then-arm unconditional) with its end deleted.
func (mz *minimizer) unwrapBlocks() bool {
	changed := false
	for fi := 0; ; fi++ {
		m := mz.decode()
		if m == nil || fi >= len(m.Funcs) {
			break
		}
		if mz.unwrapBodyBlocks(fi) {
			changed = true
		}
	}
	return changed
}

func (mz *minimizer) unwrapBodyBlocks(fi int) bool {
	changed := false
	for nth := 0; ; {
		m := mz.decode()
		if m == nil || fi >= len(m.Funcs) {
			return changed
		}
		cand, more := unwrapNth(m.Funcs[fi].Body, nth)
		if !more {
			return changed
		}
		if cand == nil {
			nth++
			continue
		}
		m.Funcs[fi].Body = cand
		if mz.tryModule(m, mz.best.Calls) {
			changed = true
		} else {
			nth++
		}
	}
}

// unwrapNth unwraps the nth structured instruction of body. Returns
// (nil, true) when that instruction exists but is not unwrappable (an
// if with an else arm), and (nil, false) when fewer than nth+1
// structured instructions exist.
func unwrapNth(body []byte, nth int) (cand []byte, more bool) {
	r := wasm.NewReader(body)
	seen := 0
	for r.Len() > 0 {
		start := r.Pos
		op, err := r.ReadOpcode()
		if err != nil {
			return nil, false
		}
		if err := r.SkipImm(op); err != nil {
			return nil, false
		}
		if op != wasm.OpBlock && op != wasm.OpLoop && op != wasm.OpIf {
			continue
		}
		if seen < nth {
			seen++
			continue
		}
		hdrEnd := r.Pos
		end, hasElse, ok := matchingEnd(body, r)
		if !ok {
			return nil, false
		}
		if op == wasm.OpIf && hasElse {
			return nil, true
		}
		cand = append([]byte{}, body[:start]...)
		if op == wasm.OpIf {
			cand = append(cand, byte(wasm.OpDrop))
		}
		cand = append(cand, body[hdrEnd:end]...)
		cand = append(cand, body[end+1:]...)
		return cand, true
	}
	return nil, false
}

// matchingEnd scans from r (positioned just past a structured
// instruction) to the offset of its matching end, reporting whether a
// same-depth else was seen.
func matchingEnd(body []byte, r *wasm.Reader) (end int, hasElse bool, ok bool) {
	depth := 1
	for r.Len() > 0 {
		start := r.Pos
		op, err := r.ReadOpcode()
		if err != nil {
			return 0, false, false
		}
		if err := r.SkipImm(op); err != nil {
			return 0, false, false
		}
		switch op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			depth++
		case wasm.OpElse:
			if depth == 1 {
				hasElse = true
			}
		case wasm.OpEnd:
			depth--
			if depth == 0 {
				return start, hasElse, true
			}
		}
	}
	return 0, false, false
}

// shrinkConsts zeroes non-zero constants one at a time.
func (mz *minimizer) shrinkConsts() bool {
	changed := false
	for fi := 0; ; fi++ {
		m := mz.decode()
		if m == nil || fi >= len(m.Funcs) {
			break
		}
		if mz.shrinkBodyConsts(fi) {
			changed = true
		}
	}
	return changed
}

func isConstOp(op wasm.Opcode) bool {
	return op == wasm.OpI32Const || op == wasm.OpI64Const ||
		op == wasm.OpF32Const || op == wasm.OpF64Const
}

func zeroConst(op wasm.Opcode) []byte {
	switch op {
	case wasm.OpI32Const, wasm.OpI64Const:
		return []byte{byte(op), 0}
	case wasm.OpF32Const:
		return []byte{byte(op), 0, 0, 0, 0}
	default:
		return []byte{byte(op), 0, 0, 0, 0, 0, 0, 0, 0}
	}
}

func (mz *minimizer) shrinkBodyConsts(fi int) bool {
	changed := false
	// nth tracks which const instruction to attempt next, by ordinal,
	// so an accepted zeroing (which changes byte offsets) resumes at
	// the following constant.
	for nth := 0; ; {
		m := mz.decode()
		if m == nil || fi >= len(m.Funcs) {
			return changed
		}
		body := m.Funcs[fi].Body
		r := wasm.NewReader(body)
		seen, done := 0, true
		for r.Len() > 0 {
			start := r.Pos
			op, err := r.ReadOpcode()
			if err != nil {
				return changed
			}
			if err := r.SkipImm(op); err != nil {
				return changed
			}
			if !isConstOp(op) {
				continue
			}
			if seen < nth {
				seen++
				continue
			}
			seen++
			z := zeroConst(op)
			if string(body[start:r.Pos]) == string(z) {
				nth++
				done = false
				break
			}
			cand := append([]byte{}, body[:start]...)
			cand = append(cand, z...)
			cand = append(cand, body[r.Pos:]...)
			m.Funcs[fi].Body = cand
			if mz.tryModule(m, mz.best.Calls) {
				changed = true
			}
			nth++
			done = false
			break
		}
		if done {
			return changed
		}
	}
}

// dropSegments removes data and element segments one at a time.
func (mz *minimizer) dropSegments() bool {
	changed := false
	for i := 0; ; {
		m := mz.decode()
		if m == nil || i >= len(m.Datas) {
			break
		}
		m.Datas = append(m.Datas[:i], m.Datas[i+1:]...)
		if mz.tryModule(m, mz.best.Calls) {
			changed = true
		} else {
			i++
		}
	}
	for i := 0; ; {
		m := mz.decode()
		if m == nil || i >= len(m.Elems) {
			break
		}
		m.Elems = append(m.Elems[:i], m.Elems[i+1:]...)
		if mz.tryModule(m, mz.best.Calls) {
			changed = true
		} else {
			i++
		}
	}
	return changed
}

// zeroGlobals replaces non-zero global initializers with zero values.
func (mz *minimizer) zeroGlobals() bool {
	changed := false
	for i := 0; ; i++ {
		m := mz.decode()
		if m == nil || i >= len(m.Globals) {
			break
		}
		g := &m.Globals[i]
		if g.Init.Bits == 0 {
			continue
		}
		g.Init = wasm.Value{Type: g.Init.Type}
		if mz.tryModule(m, mz.best.Calls) {
			changed = true
		}
	}
	return changed
}
