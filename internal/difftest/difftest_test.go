package difftest

import (
	"math/rand"
	"testing"

	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// TestGeneratorValidByConstruction: every generated module decodes and
// validates — the generator's core contract.
func TestGeneratorValidByConstruction(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		g := Generate(seed, GenConfig{})
		m, err := wasm.Decode(g.Bytes)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if _, err := validate.Module(m); err != nil {
			t.Fatalf("seed %d: validate: %v", seed, err)
		}
		if len(g.Calls) == 0 {
			t.Fatalf("seed %d: no calls generated", seed)
		}
	}
}

// TestGeneratorDeterministic: the same seed yields identical bytes and
// calls — reproducers and CI smoke runs depend on it.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed < 20; seed++ {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if string(a.Bytes) != string(b.Bytes) {
			t.Fatalf("seed %d: bytes differ between runs", seed)
		}
		if len(a.Calls) != len(b.Calls) {
			t.Fatalf("seed %d: call count differs", seed)
		}
	}
}

// TestCrossExecutionAgrees is the tentpole assertion: N seeds of
// generated modules produce identical canonical outcomes across every
// Catalog configuration crossed with analysis on/off.
func TestCrossExecutionAgrees(t *testing.T) {
	o := NewOracle()
	n := int64(60)
	if testing.Short() {
		n = 15
	}
	for seed := int64(0); seed < n; seed++ {
		g := Generate(seed, GenConfig{})
		outs, d := o.Run(g)
		if d != nil {
			t.Fatalf("%v\n%s", d, OutcomeTable(outs))
		}
	}
}

// TestInvalidModulesAgree: mutated (usually invalid) modules are
// accepted or rejected identically by every configuration, and nothing
// panics. Mutants that stay valid flow through the full oracle.
func TestInvalidModulesAgree(t *testing.T) {
	o := NewOracle()
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < n; seed++ {
		base := Generate(seed, GenConfig{})
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < 4; i++ {
			mut := MutateInvalid(r, base.Bytes)
			g := Generated{Seed: seed, Bytes: mut, Calls: DeriveCalls(mut)}
			outs, d := o.Run(g)
			if d != nil {
				t.Fatalf("%v\n%s", d, OutcomeTable(outs))
			}
		}
	}
}
