package difftest

import (
	"fmt"
	"math"
	"math/rand"

	"wizgo/internal/wasm"
)

// The structure-aware module generator. Modules are valid by
// construction: bodies are produced by a statement/expression grammar
// that is stack-neutral at statement granularity, all blocks carry the
// empty block type (so every label has arity 0 and any branch is
// type-correct), branches never target loop labels except the counted
// back-edge the generator itself emits (so every generated loop
// terminates), and calls form a DAG (direct calls and table entries
// only reference strictly lower function indices), so no generated
// program recurses. What remains free is exactly the surface the four
// tiers disagree on when they have bugs: nested control flow with
// br_table fan-out, i32/i64/f64 arithmetic including div/rem/trunc trap
// edges, loads and stores hugging the page boundary, globals, and
// call_indirect with type checks against a partially-null table.

// GenConfig tunes the generator.
type GenConfig struct {
	// MaxFuncs bounds the number of defined functions (default 6).
	MaxFuncs int
	// MaxStmts is the per-function statement budget (default 16).
	MaxStmts int
	// MemPages is the memory minimum in pages (default 1); the maximum
	// is one page above so one memory.grow can succeed.
	MemPages uint32
	// Unbounded additionally emits the cancellation probes: "spin", an
	// infinite loop, and "spin_counted", a counted loop whose 2^30 trip
	// bound exceeds the analysis' poll-elision cap — neither receives a
	// Call; the cancellation tests invoke them under a deadline.
	Unbounded bool
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxFuncs <= 0 {
		c.MaxFuncs = 6
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 16
	}
	if c.MemPages == 0 {
		c.MemPages = 1
	}
	return c
}

// numTypes is the value-type universe the generator draws from.
var numTypes = []wasm.ValueType{wasm.I32, wasm.I64, wasm.F64}

// Generate synthesizes one module plus the calls that exercise it,
// deterministically from seed.
func Generate(seed int64, cfg GenConfig) Generated {
	g := &gen{
		r:   rand.New(rand.NewSource(seed)),
		cfg: cfg.withDefaults(),
		b:   wasm.NewBuilder(),
	}
	return g.module(seed)
}

type gen struct {
	r   *rand.Rand
	cfg GenConfig
	b   *wasm.Builder

	sigs     []wasm.FuncType
	typeIdxs []uint32
	globals  []wasm.ValueType // all mutable
	// tableCut: functions with index < tableCut may appear in the
	// table; functions with index >= tableCut may emit call_indirect —
	// keeping the call graph a DAG even through the table.
	tableCut  int
	tableSize uint32
	hasTable  bool
}

func (g *gen) module(seed int64) Generated {
	r := g.r

	// Memory with one page of growth headroom, plus 0-2 data segments.
	g.b.AddMemory(g.cfg.MemPages, g.cfg.MemPages+1)
	for i, n := 0, r.Intn(3); i < n; i++ {
		data := make([]byte, 1+r.Intn(24))
		r.Read(data)
		limit := g.cfg.MemPages*wasm.PageSize - uint32(len(data))
		g.b.AddData(uint32(r.Intn(int(limit))), data)
	}

	// Mutable globals of random numeric types.
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		t := numTypes[r.Intn(len(numTypes))]
		g.b.AddGlobal(t, true, g.constValue(t))
		g.globals = append(g.globals, t)
	}

	nFuncs := 1 + r.Intn(g.cfg.MaxFuncs)
	for i := 0; i < nFuncs; i++ {
		sig := g.randSig()
		g.sigs = append(g.sigs, sig)
		g.typeIdxs = append(g.typeIdxs, g.b.AddType(sig))
	}
	g.tableCut = nFuncs / 2
	g.hasTable = g.tableCut > 0 && r.Intn(4) > 0
	if g.hasTable {
		g.tableSize = uint32(4 + r.Intn(5))
	}

	for i := 0; i < nFuncs; i++ {
		g.buildFunc(i)
	}

	if g.hasTable {
		// A table larger than its element segment leaves null slots, so
		// a generated index can hit OOB, null, matching and mismatching
		// entries — the full call_indirect trap surface.
		g.b.AddTable(g.tableSize)
		n := 1 + r.Intn(g.tableCut)
		offset := uint32(r.Intn(int(g.tableSize) - n + 1))
		funcs := make([]uint32, n)
		for i := range funcs {
			funcs[i] = uint32(r.Intn(g.tableCut))
		}
		g.b.AddElem(offset, funcs)
	}

	if g.cfg.Unbounded {
		g.buildSpin()
	}

	gen := Generated{Seed: seed, Bytes: g.b.Encode()}
	for i := 0; i < nFuncs; i++ {
		for c, n := 0, 1+g.r.Intn(2); c < n; c++ {
			call := Call{Export: fmt.Sprintf("f%d", i)}
			for _, p := range g.sigs[i].Params {
				call.Args = append(call.Args, g.argValue(p))
			}
			gen.Calls = append(gen.Calls, call)
		}
	}
	return gen
}

func (g *gen) randSig() wasm.FuncType {
	var sig wasm.FuncType
	for i, n := 0, g.r.Intn(4); i < n; i++ {
		sig.Params = append(sig.Params, numTypes[g.r.Intn(len(numTypes))])
	}
	for i, n := 0, g.r.Intn(3); i < n; i++ {
		sig.Results = append(sig.Results, numTypes[g.r.Intn(len(numTypes))])
	}
	return sig
}

// buildSpin emits the two cancellation probes (see GenConfig.Unbounded).
func (g *gen) buildSpin() {
	f := g.b.NewFunc("", wasm.FuncType{})
	f.Loop(wasm.BlockEmpty)
	f.I32Const(0).I32Const(1).Store(wasm.OpI32Store, 0)
	f.Br(0)
	f.End()
	g.b.Export("spin", f.Idx)

	f = g.b.NewFunc("", wasm.FuncType{})
	c := f.AddLocal(wasm.I32)
	f.Loop(wasm.BlockEmpty)
	f.I32Const(16).LocalGet(c).Store(wasm.OpI32Store, 8)
	f.LocalGet(c).I32Const(1).Op(wasm.OpI32Add).LocalSet(c)
	f.LocalGet(c).I32Const(1 << 30).Op(wasm.OpI32LtS).BrIf(0)
	f.End()
	g.b.Export("spin_counted", f.Idx)
}

// fgen generates one function body.
type fgen struct {
	g       *gen
	f       *wasm.FuncBuilder
	selfIdx int
	sig     wasm.FuncType
	locals  []wasm.ValueType
	// reserved marks loop-counter locals: statements never write them,
	// which is what guarantees every counted loop terminates.
	reserved map[uint32]bool
	frames   []gframe
	budget   int
}

type gframe struct {
	loop bool
	// noBr excludes the label from brTargets: a multi-value block's
	// label carries result arity, so a statement-level branch (which
	// assumes arity 0) would be type-incorrect.
	noBr bool
}

func (g *gen) buildFunc(idx int) {
	sig := g.sigs[idx]
	f := g.b.NewFunc("", sig)
	fg := &fgen{
		g: g, f: f, selfIdx: idx, sig: sig,
		locals:   append([]wasm.ValueType(nil), sig.Params...),
		reserved: map[uint32]bool{},
		budget:   g.cfg.MaxStmts,
	}
	for i, n := 0, g.r.Intn(5); i < n; i++ {
		t := numTypes[g.r.Intn(len(numTypes))]
		f.AddLocal(t)
		fg.locals = append(fg.locals, t)
	}
	fg.stmts(0)
	for _, t := range sig.Results {
		fg.expr(t, 2)
	}
	f.End()
	g.b.Export(fmt.Sprintf("f%d", idx), f.Idx)
}

// stmts emits statements until the budget runs out. blockDepth bounds
// construct nesting independently of the budget.
func (fg *fgen) stmts(blockDepth int) {
	for fg.budget > 0 {
		fg.budget--
		fg.stmt(blockDepth)
		if fg.g.r.Intn(6) == 0 {
			return
		}
	}
}

func (fg *fgen) stmt(blockDepth int) {
	r := fg.g.r
	for {
		switch r.Intn(15) {
		case 0, 1:
			fg.localSetStmt()
		case 2:
			fg.globalSetStmt()
		case 3, 4:
			fg.storeStmt()
		case 5:
			fg.expr(numTypes[r.Intn(len(numTypes))], 2)
			fg.f.Op(wasm.OpDrop)
		case 6:
			if blockDepth >= 3 {
				continue
			}
			fg.ifStmt(blockDepth)
		case 7:
			if blockDepth >= 3 {
				continue
			}
			fg.blockStmt(blockDepth)
		case 8:
			if blockDepth >= 2 {
				continue
			}
			fg.countedLoop(blockDepth)
		case 9:
			if !fg.brIfStmt() {
				continue
			}
		case 10:
			if blockDepth >= 3 {
				continue
			}
			fg.brTableStmt()
		case 11:
			if !fg.callStmt() {
				continue
			}
		case 12:
			if !fg.callIndirectStmt() {
				continue
			}
		case 13:
			fg.memoryStmt()
		case 14:
			if blockDepth >= 3 {
				continue
			}
			fg.multiValueBlockStmt(blockDepth)
		}
		return
	}
}

func (fg *fgen) localSetStmt() {
	var cands []uint32
	for i, t := range fg.locals {
		_ = t
		if !fg.reserved[uint32(i)] {
			cands = append(cands, uint32(i))
		}
	}
	if len(cands) == 0 {
		fg.expr(wasm.I32, 1)
		fg.f.Op(wasm.OpDrop)
		return
	}
	idx := cands[fg.g.r.Intn(len(cands))]
	fg.expr(fg.locals[idx], 3)
	if fg.g.r.Intn(4) == 0 {
		fg.f.LocalTee(idx)
		fg.f.Op(wasm.OpDrop)
	} else {
		fg.f.LocalSet(idx)
	}
}

func (fg *fgen) globalSetStmt() {
	if len(fg.g.globals) == 0 {
		fg.localSetStmt()
		return
	}
	idx := uint32(fg.g.r.Intn(len(fg.g.globals)))
	fg.expr(fg.g.globals[idx], 2)
	fg.f.GlobalSet(idx)
}

// storeOps maps a value type to its store variants.
var storeOps = map[wasm.ValueType][]wasm.Opcode{
	wasm.I32: {wasm.OpI32Store, wasm.OpI32Store8, wasm.OpI32Store16},
	wasm.I64: {wasm.OpI64Store, wasm.OpI64Store8, wasm.OpI64Store16, wasm.OpI64Store32},
	wasm.F64: {wasm.OpF64Store},
}

var loadOps = map[wasm.ValueType][]wasm.Opcode{
	wasm.I32: {wasm.OpI32Load, wasm.OpI32Load8S, wasm.OpI32Load8U, wasm.OpI32Load16S, wasm.OpI32Load16U},
	wasm.I64: {wasm.OpI64Load, wasm.OpI64Load8S, wasm.OpI64Load8U, wasm.OpI64Load16S, wasm.OpI64Load16U, wasm.OpI64Load32S, wasm.OpI64Load32U},
	wasm.F64: {wasm.OpF64Load},
}

func (fg *fgen) storeStmt() {
	t := numTypes[fg.g.r.Intn(len(numTypes))]
	ops := storeOps[t]
	fg.addrExpr()
	fg.expr(t, 2)
	fg.f.Store(ops[fg.g.r.Intn(len(ops))], fg.memOffset())
}

// memOffset picks a static offset: usually tiny, occasionally large
// enough to push a boundary-hugging address out of bounds.
func (fg *fgen) memOffset() uint32 {
	if fg.g.r.Intn(8) == 0 {
		return uint32(fg.g.r.Intn(64))
	}
	return uint32(fg.g.r.Intn(8))
}

// addrExpr pushes an i32 address. The mix matters: mostly in-bounds
// (constants and masked dynamic addresses), with a deliberate tail of
// page-boundary constants and raw dynamic values that trap — the OOB
// check is one of the checks the analysis elides, so both sides of it
// must be exercised.
func (fg *fgen) addrExpr() {
	r := fg.g.r
	pageBytes := int(fg.g.cfg.MemPages) * wasm.PageSize
	switch r.Intn(10) {
	case 0, 1, 2, 3:
		fg.f.I32Const(int32(r.Intn(pageBytes - 64)))
	case 4, 5, 6:
		fg.expr(wasm.I32, 2)
		fg.f.I32Const(0xFF0)
		fg.f.Op(wasm.OpI32And)
	case 7, 8:
		fg.f.I32Const(int32(pageBytes - 8 + r.Intn(17)))
	default:
		fg.expr(wasm.I32, 2)
	}
}

func (fg *fgen) ifStmt(blockDepth int) {
	fg.expr(wasm.I32, 2)
	fg.f.If(wasm.BlockEmpty)
	fg.frames = append(fg.frames, gframe{})
	fg.stmts(blockDepth + 1)
	if fg.g.r.Intn(2) == 0 {
		fg.f.Else()
		fg.stmts(blockDepth + 1)
	}
	fg.frames = fg.frames[:len(fg.frames)-1]
	fg.f.End()
}

func (fg *fgen) blockStmt(blockDepth int) {
	fg.f.Block(wasm.BlockEmpty)
	fg.frames = append(fg.frames, gframe{})
	fg.stmts(blockDepth + 1)
	fg.frames = fg.frames[:len(fg.frames)-1]
	fg.f.End()
}

// countedLoop emits the terminating loop idiom: a reserved counter
// local stepped by 1 toward a small constant bound, br_if back-edge.
// Nothing else may branch to a loop label, so termination is
// structural. Small bounds keep some loops inside the analysis'
// counted-loop matcher (exercising poll elision) and runtimes short.
func (fg *fgen) countedLoop(blockDepth int) {
	c := fg.f.AddLocal(wasm.I32)
	fg.locals = append(fg.locals, wasm.I32)
	fg.reserved[c] = true
	bound := int32(2 + fg.g.r.Intn(7))
	fg.f.I32Const(0)
	fg.f.LocalSet(c)
	fg.f.Loop(wasm.BlockEmpty)
	fg.frames = append(fg.frames, gframe{loop: true})
	fg.stmts(blockDepth + 1)
	fg.f.LocalGet(c)
	fg.f.I32Const(1)
	fg.f.Op(wasm.OpI32Add)
	fg.f.LocalSet(c)
	fg.f.LocalGet(c)
	fg.f.I32Const(bound)
	fg.f.Op(wasm.OpI32LtS)
	fg.f.BrIf(0)
	fg.frames = fg.frames[:len(fg.frames)-1]
	fg.f.End()
}

// multiValueBlockStmt emits a block typed by a multi-result function
// type. Inner statements never branch to its label (noBr), but half the
// time the block branches to itself with its results already on the
// stack — the multi-value br_if transfer every tier's branch arity
// handling must get right. The results are dropped after the end to
// keep the statement stack-neutral.
func (fg *fgen) multiValueBlockStmt(blockDepth int) {
	g := fg.g
	var ft wasm.FuncType
	for i, n := 0, 1+g.r.Intn(2); i < n; i++ {
		ft.Results = append(ft.Results, numTypes[g.r.Intn(len(numTypes))])
	}
	fg.f.Block(wasm.BlockFunc(g.b.AddType(ft)))
	fg.frames = append(fg.frames, gframe{noBr: true})
	fg.stmts(blockDepth + 1)
	for _, t := range ft.Results {
		fg.expr(t, 2)
	}
	if g.r.Intn(2) == 0 {
		fg.expr(wasm.I32, 1)
		fg.f.BrIf(0)
	}
	fg.frames = fg.frames[:len(fg.frames)-1]
	fg.f.End()
	for range ft.Results {
		fg.f.Op(wasm.OpDrop)
	}
}

// brTargets returns the relative depths of branchable (non-loop) labels.
func (fg *fgen) brTargets() []uint32 {
	var ds []uint32
	for i, fr := range fg.frames {
		if !fr.loop && !fr.noBr {
			ds = append(ds, uint32(len(fg.frames)-1-i))
		}
	}
	return ds
}

func (fg *fgen) brIfStmt() bool {
	ds := fg.brTargets()
	if len(ds) == 0 {
		return false
	}
	fg.expr(wasm.I32, 2)
	fg.f.BrIf(ds[fg.g.r.Intn(len(ds))])
	return true
}

// brTableStmt wraps a br_table in a fresh block so the statement stays
// stack-neutral on every path (br_table is a terminator).
func (fg *fgen) brTableStmt() {
	fg.f.Block(wasm.BlockEmpty)
	fg.frames = append(fg.frames, gframe{})
	ds := fg.brTargets()
	fg.expr(wasm.I32, 2)
	targets := make([]uint32, 1+fg.g.r.Intn(4))
	for i := range targets {
		targets[i] = ds[fg.g.r.Intn(len(ds))]
	}
	fg.f.BrTable(targets, ds[fg.g.r.Intn(len(ds))])
	fg.frames = fg.frames[:len(fg.frames)-1]
	fg.f.End()
}

func (fg *fgen) callStmt() bool {
	if fg.selfIdx == 0 {
		return false
	}
	callee := fg.g.r.Intn(fg.selfIdx)
	sig := fg.g.sigs[callee]
	for _, p := range sig.Params {
		fg.expr(p, 2)
	}
	fg.f.Call(uint32(callee))
	for range sig.Results {
		fg.f.Op(wasm.OpDrop)
	}
	return true
}

func (fg *fgen) callIndirectStmt() bool {
	g := fg.g
	if !g.hasTable || fg.selfIdx < g.tableCut {
		return false
	}
	// Mostly a type that some table entry satisfies, sometimes any type
	// (a likely signature mismatch).
	var typeIdx uint32
	sigOf := g.r.Intn(g.tableCut)
	if g.r.Intn(3) == 0 {
		sigOf = g.r.Intn(len(g.sigs))
	}
	typeIdx = g.typeIdxs[sigOf]
	sig := g.sigs[sigOf]
	for _, p := range sig.Params {
		fg.expr(p, 2)
	}
	// Index: usually within the table (hitting filled and null slots),
	// sometimes just past it (OOB), rarely fully dynamic.
	switch g.r.Intn(8) {
	case 6:
		fg.f.I32Const(int32(g.tableSize) + int32(g.r.Intn(3)))
	case 7:
		fg.expr(wasm.I32, 1)
	default:
		fg.f.I32Const(int32(g.r.Intn(int(g.tableSize))))
	}
	fg.f.CallIndirect(typeIdx)
	for range sig.Results {
		fg.f.Op(wasm.OpDrop)
	}
	return true
}

func (fg *fgen) memoryStmt() {
	r := fg.g.r
	switch r.Intn(6) {
	case 0:
		fg.f.I32Const(int32(r.Intn(2)))
		fg.f.MemoryGrow()
		fg.f.Op(wasm.OpDrop)
	case 1, 2:
		fg.f.I32Const(int32(r.Intn(int(fg.g.cfg.MemPages)*wasm.PageSize + 64)))
		fg.f.I32Const(int32(r.Intn(256)))
		fg.f.I32Const(int32(r.Intn(128)))
		fg.f.MemoryFill()
	case 3, 4:
		fg.f.I32Const(int32(r.Intn(int(fg.g.cfg.MemPages)*wasm.PageSize + 64)))
		fg.f.I32Const(int32(r.Intn(int(fg.g.cfg.MemPages) * wasm.PageSize)))
		fg.f.I32Const(int32(r.Intn(128)))
		fg.f.MemoryCopy()
	default:
		fg.f.MemorySize()
		fg.f.Op(wasm.OpDrop)
	}
}

// Expressions. expr emits instructions that push exactly one value of
// type t; depth bounds the tree.

var (
	i32Unops  = []wasm.Opcode{wasm.OpI32Clz, wasm.OpI32Ctz, wasm.OpI32Popcnt, wasm.OpI32Extend8S, wasm.OpI32Extend16S, wasm.OpI32Eqz}
	i32Binops = []wasm.Opcode{
		wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul, wasm.OpI32DivS, wasm.OpI32DivU,
		wasm.OpI32RemS, wasm.OpI32RemU, wasm.OpI32And, wasm.OpI32Or, wasm.OpI32Xor,
		wasm.OpI32Shl, wasm.OpI32ShrS, wasm.OpI32ShrU, wasm.OpI32Rotl, wasm.OpI32Rotr,
	}
	i32Cmps   = []wasm.Opcode{wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI32LtS, wasm.OpI32LtU, wasm.OpI32GtS, wasm.OpI32GtU, wasm.OpI32LeS, wasm.OpI32LeU, wasm.OpI32GeS, wasm.OpI32GeU}
	i64Unops  = []wasm.Opcode{wasm.OpI64Clz, wasm.OpI64Ctz, wasm.OpI64Popcnt, wasm.OpI64Extend8S, wasm.OpI64Extend16S, wasm.OpI64Extend32S}
	i64Binops = []wasm.Opcode{
		wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul, wasm.OpI64DivS, wasm.OpI64DivU,
		wasm.OpI64RemS, wasm.OpI64RemU, wasm.OpI64And, wasm.OpI64Or, wasm.OpI64Xor,
		wasm.OpI64Shl, wasm.OpI64ShrS, wasm.OpI64ShrU, wasm.OpI64Rotl, wasm.OpI64Rotr,
	}
	i64Cmps   = []wasm.Opcode{wasm.OpI64Eq, wasm.OpI64Ne, wasm.OpI64LtS, wasm.OpI64LtU, wasm.OpI64GtS, wasm.OpI64GtU, wasm.OpI64LeS, wasm.OpI64LeU, wasm.OpI64GeS, wasm.OpI64GeU}
	f64Unops  = []wasm.Opcode{wasm.OpF64Abs, wasm.OpF64Neg, wasm.OpF64Ceil, wasm.OpF64Floor, wasm.OpF64Trunc, wasm.OpF64Nearest, wasm.OpF64Sqrt}
	f64Binops = []wasm.Opcode{
		wasm.OpF64Add, wasm.OpF64Sub, wasm.OpF64Mul, wasm.OpF64Div,
		wasm.OpF64Min, wasm.OpF64Max, wasm.OpF64Copysign,
	}
	f64Cmps = []wasm.Opcode{wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge}

	// toI32/toI64/toF64: (source type, opcode) conversions into the key
	// type, including the trapping truncations and their saturating
	// variants — the trap-edge surface of the conversion matrix.
	toI32 = []conv{
		{wasm.I64, wasm.OpI32WrapI64},
		{wasm.F64, wasm.OpI32TruncF64S}, {wasm.F64, wasm.OpI32TruncF64U},
		{wasm.F64, wasm.OpI32TruncSatF64S}, {wasm.F64, wasm.OpI32TruncSatF64U},
	}
	toI64 = []conv{
		{wasm.I32, wasm.OpI64ExtendI32S}, {wasm.I32, wasm.OpI64ExtendI32U},
		{wasm.F64, wasm.OpI64TruncF64S}, {wasm.F64, wasm.OpI64TruncF64U},
		{wasm.F64, wasm.OpI64TruncSatF64S}, {wasm.F64, wasm.OpI64TruncSatF64U},
		{wasm.F64, wasm.OpI64ReinterpretF64},
	}
	toF64 = []conv{
		{wasm.I32, wasm.OpF64ConvertI32S}, {wasm.I32, wasm.OpF64ConvertI32U},
		{wasm.I64, wasm.OpF64ConvertI64S}, {wasm.I64, wasm.OpF64ConvertI64U},
		{wasm.I64, wasm.OpF64ReinterpretI64},
	}
)

type conv struct {
	from wasm.ValueType
	op   wasm.Opcode
}

func (fg *fgen) expr(t wasm.ValueType, depth int) {
	r := fg.g.r
	if depth <= 0 {
		fg.leaf(t)
		return
	}
	switch r.Intn(12) {
	case 0, 1:
		fg.leaf(t)
	case 2, 3:
		fg.unop(t, depth)
	case 4, 5, 6:
		fg.binop(t, depth)
	case 7:
		fg.cmpOrConv(t, depth)
	case 8, 9:
		ops := loadOps[t]
		fg.addrExpr()
		fg.f.Load(ops[r.Intn(len(ops))], fg.memOffset())
	case 10:
		fg.expr(t, depth-1)
		fg.expr(t, depth-1)
		fg.expr(wasm.I32, depth-1)
		if r.Intn(2) == 0 {
			fg.f.SelectT(t)
		} else {
			fg.f.Op(wasm.OpSelect)
		}
	default:
		if !fg.exprCall(t, depth) {
			fg.binop(t, depth)
		}
	}
}

func (fg *fgen) unop(t wasm.ValueType, depth int) {
	switch t {
	case wasm.I32:
		op := i32Unops[fg.g.r.Intn(len(i32Unops))]
		fg.expr(wasm.I32, depth-1)
		fg.f.Op(op)
	case wasm.I64:
		op := i64Unops[fg.g.r.Intn(len(i64Unops))]
		fg.expr(wasm.I64, depth-1)
		fg.f.Op(op)
	default:
		op := f64Unops[fg.g.r.Intn(len(f64Unops))]
		fg.expr(wasm.F64, depth-1)
		fg.f.Op(op)
	}
}

func (fg *fgen) binop(t wasm.ValueType, depth int) {
	var ops []wasm.Opcode
	switch t {
	case wasm.I32:
		ops = i32Binops
	case wasm.I64:
		ops = i64Binops
	default:
		ops = f64Binops
	}
	fg.expr(t, depth-1)
	fg.expr(t, depth-1)
	fg.f.Op(ops[fg.g.r.Intn(len(ops))])
}

// cmpOrConv produces t via a comparison (for i32) or a conversion.
func (fg *fgen) cmpOrConv(t wasm.ValueType, depth int) {
	r := fg.g.r
	if t == wasm.I32 && r.Intn(2) == 0 {
		switch r.Intn(3) {
		case 0:
			fg.expr(wasm.I32, depth-1)
			fg.expr(wasm.I32, depth-1)
			fg.f.Op(i32Cmps[r.Intn(len(i32Cmps))])
		case 1:
			fg.expr(wasm.I64, depth-1)
			fg.expr(wasm.I64, depth-1)
			fg.f.Op(i64Cmps[r.Intn(len(i64Cmps))])
		default:
			fg.expr(wasm.F64, depth-1)
			fg.expr(wasm.F64, depth-1)
			fg.f.Op(f64Cmps[r.Intn(len(f64Cmps))])
		}
		return
	}
	var cs []conv
	switch t {
	case wasm.I32:
		cs = toI32
	case wasm.I64:
		cs = toI64
	default:
		cs = toF64
	}
	c := cs[r.Intn(len(cs))]
	fg.expr(c.from, depth-1)
	fg.f.Op(c.op)
}

func (fg *fgen) exprCall(t wasm.ValueType, depth int) bool {
	var cands []int
	for j := 0; j < fg.selfIdx; j++ {
		sig := fg.g.sigs[j]
		if len(sig.Results) == 1 && sig.Results[0] == t {
			cands = append(cands, j)
		}
	}
	if len(cands) == 0 {
		return false
	}
	callee := cands[fg.g.r.Intn(len(cands))]
	for _, p := range fg.g.sigs[callee].Params {
		fg.expr(p, depth-1)
	}
	fg.f.Call(uint32(callee))
	return true
}

func (fg *fgen) leaf(t wasm.ValueType) {
	r := fg.g.r
	if r.Intn(3) > 0 {
		var cands []uint32
		for i, lt := range fg.locals {
			if lt == t {
				cands = append(cands, uint32(i))
			}
		}
		for i, gt := range fg.g.globals {
			if gt == t {
				cands = append(cands, uint32(len(fg.locals)+i))
			}
		}
		if len(cands) > 0 {
			idx := cands[r.Intn(len(cands))]
			if int(idx) < len(fg.locals) {
				fg.f.LocalGet(idx)
			} else {
				fg.f.GlobalGet(idx - uint32(len(fg.locals)))
			}
			return
		}
	}
	fg.emitConst(t)
}

// Interesting constant pools: identities, signs, type extremes, shift
// widths, page-boundary addresses — the values integer trap edges and
// float special cases live on.
var (
	i32Pool = []int32{0, 1, -1, 2, 7, 16, 31, 32, 255, 0xFFFF, 65536, math.MaxInt32, math.MinInt32}
	i64Pool = []int64{0, 1, -1, 2, 13, 63, 64, 0xFFFFFFFF, 1 << 32, math.MaxInt64, math.MinInt64}
	f64Pool = []float64{0, 1, -1, 0.5, -0.5, 1e9, -1e9, 1e-300, 2147483648, -2147483649,
		math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64}
)

func (fg *fgen) emitConst(t wasm.ValueType) {
	v := fg.g.constValue(t)
	switch t {
	case wasm.I32:
		fg.f.I32Const(v.I32())
	case wasm.I64:
		fg.f.I64Const(v.I64())
	default:
		fg.f.F64Const(v.F64())
	}
}

func (g *gen) constValue(t wasm.ValueType) wasm.Value {
	r := g.r
	switch t {
	case wasm.I32:
		if r.Intn(3) == 0 {
			return wasm.ValI32(int32(r.Uint32()))
		}
		return wasm.ValI32(i32Pool[r.Intn(len(i32Pool))])
	case wasm.I64:
		if r.Intn(3) == 0 {
			return wasm.ValI64(int64(r.Uint64()))
		}
		return wasm.ValI64(i64Pool[r.Intn(len(i64Pool))])
	default:
		if r.Intn(3) == 0 {
			return wasm.ValF64(r.NormFloat64() * 1e3)
		}
		return wasm.ValF64(f64Pool[r.Intn(len(f64Pool))])
	}
}

// argValue picks a call argument from the same interesting pools.
func (g *gen) argValue(t wasm.ValueType) wasm.Value { return g.constValue(t) }

// MutateInvalid corrupts a valid module's bytes (deterministically from
// r) for the validator-differential mode: the property under test is
// that every configuration agrees on accepting or rejecting the result
// — and that no frontend panics on it. Some mutations land in data
// segments or constants and keep the module valid; those then flow
// through the full execution oracle.
func MutateInvalid(r *rand.Rand, valid []byte) []byte {
	b := append([]byte(nil), valid...)
	for i, n := 0, 1+r.Intn(3); i < n && len(b) > 8; i++ {
		switch r.Intn(5) {
		case 0: // flip one bit
			p := 8 + r.Intn(len(b)-8)
			b[p] ^= 1 << r.Intn(8)
		case 1: // overwrite one byte
			b[8+r.Intn(len(b)-8)] = byte(r.Intn(256))
		case 2: // truncate the tail
			b = b[:8+r.Intn(len(b)-8)]
		case 3: // delete one byte
			p := 8 + r.Intn(len(b)-8)
			b = append(b[:p], b[p+1:]...)
		case 4: // insert one random byte
			p := 8 + r.Intn(len(b)-8)
			b = append(b[:p], append([]byte{byte(r.Intn(256))}, b[p:]...)...)
		}
	}
	return b
}

// DeriveCalls builds zero-argument-value calls for every exported
// function of a decodable module — the workload used for mutated and
// fuzz-provided modules whose intended calls are unknown. Returns nil
// when the bytes do not decode.
func DeriveCalls(bytes []byte) []Call {
	m, err := wasm.Decode(bytes)
	if err != nil {
		return nil
	}
	var calls []Call
	for _, e := range m.Exports {
		if e.Kind != wasm.ExternFunc {
			continue
		}
		ft, err := m.FuncTypeAt(e.Idx)
		if err != nil {
			continue
		}
		call := Call{Export: e.Name}
		for _, p := range ft.Params {
			call.Args = append(call.Args, wasm.Value{Type: p})
		}
		calls = append(calls, call)
	}
	return calls
}
