package difftest

import (
	"testing"

	"wizgo/internal/interp"
	"wizgo/internal/wasm"
)

// totalInstrs counts instructions across every function body.
func totalInstrs(t *testing.T, bytes []byte) int {
	t.Helper()
	m, err := wasm.Decode(bytes)
	if err != nil {
		t.Fatalf("decode minimized module: %v", err)
	}
	total := 0
	for i := range m.Funcs {
		n, err := wasm.CountInstrs(m.Funcs[i].Body)
		if err != nil {
			t.Fatalf("func %d: %v", i, err)
		}
		total += n
	}
	return total
}

// TestMinimizerFindsPlantedBug is the end-to-end soundness check of the
// whole engine: plant a real bug (the interpreter silently yields 0 for
// an out-of-bounds i32.load instead of trapping), verify the generated
// workload finds it, and verify the minimizer shrinks the reproducer to
// a handful of instructions. Not parallel: the hook is process-global.
func TestMinimizerFindsPlantedBug(t *testing.T) {
	interp.TestHookOOBReadsZero = true
	defer func() { interp.TestHookOOBReadsZero = false }()

	o := NewOracle()
	var bug Generated
	found := false
	for seed := int64(0); seed < 500 && !found; seed++ {
		g := Generate(seed, GenConfig{})
		if o.Diverges(g) {
			bug, found = g, true
		}
	}
	if !found {
		t.Fatal("planted OOB-load bug not found in 500 seeds")
	}

	min := Minimize(bug, o.Diverges)
	if !o.Diverges(min) {
		t.Fatal("minimized module no longer diverges")
	}
	if n := totalInstrs(t, min.Bytes); n > 10 {
		outs, _ := o.Run(min)
		t.Fatalf("minimized reproducer has %d instructions (want <= 10)\n%s",
			n, OutcomeTable(outs))
	}
	if len(min.Calls) != 1 {
		t.Errorf("minimized reproducer has %d calls (want 1)", len(min.Calls))
	}
}

// TestMinimizePreservesValidity: minimization output always decodes and
// revalidates (the minimizer must never "shrink" into garbage).
func TestMinimizeIsNoopWithoutDivergence(t *testing.T) {
	o := NewOracle()
	g := Generate(7, GenConfig{})
	min := Minimize(g, o.Diverges)
	if string(min.Bytes) != string(g.Bytes) {
		t.Fatal("Minimize mutated a non-diverging module")
	}
}
