package instancepool

import (
	"time"

	"wizgo/internal/telemetry"
)

// Process-wide mirrors of the pool counters, plus the latency
// histograms the per-pool Stats totals cannot express. Every pool in
// the process folds into these series; per-pool detail stays available
// through Pool.Stats. The custody gauge moves by deltas (+1 on a
// retained Put, -1 when an instance leaves custody), which keeps gauge
// snapshots mergeable.
var (
	mGets = telemetry.Default().Counter("wizgo_pool_gets_total",
		"Successful instance pool Gets (hits + misses).")
	mPoolHits = telemetry.Default().Counter("wizgo_pool_hits_total",
		"Pool Gets served by a recycled instance.")
	mPoolMisses = telemetry.Default().Counter("wizgo_pool_misses_total",
		"Pool Gets that fell back to a fresh instantiation.")
	mPuts = telemetry.Default().Counter("wizgo_pool_puts_total",
		"Instances returned to the pool.")
	mDrops = telemetry.Default().Counter("wizgo_pool_drops_total",
		"Returned instances not retained (capacity, duplicate, closed).")
	mResetFailures = telemetry.Default().Counter("wizgo_pool_reset_failures_total",
		"Recycled instances discarded because their reset failed.")
	mPoisonDrops = telemetry.Default().Counter("wizgo_pool_poison_drops_total",
		"Poisoned instances (host panic) the pool dropped instead of recycling.")
	mResetsOnPut = telemetry.Default().Counter("wizgo_pool_resets_on_put_total",
		"Resets absorbed by the background drainer (off the request path).")
	mResetsOnGet = telemetry.Default().Counter("wizgo_pool_resets_on_get_total",
		"Resets Get ran inline (reset latency on the request path).")

	hGet = telemetry.Default().Histogram("wizgo_pool_get_seconds",
		"Pool Get latency (inline resets, reset waits and instantiations included).")
	hReset = telemetry.Default().Histogram("wizgo_pool_reset_seconds",
		"Instance reset latency, both drainer and inline paths.")

	gCustody = telemetry.Default().Gauge("wizgo_pool_instances",
		"Instances currently in pool custody (clean, dirty, or mid-reset).")
)

// noteGet publishes one completed Get: the process-wide counters, the
// latency histogram, and (when tracing) a pool_get span.
func noteGet(start time.Time, dur time.Duration, hit bool) {
	mGets.Inc()
	detail := "miss"
	if hit {
		mPoolHits.Inc()
		detail = "hit"
	} else {
		mPoolMisses.Inc()
	}
	hGet.Observe(dur)
	if tr := telemetry.DefaultTracer(); tr.Enabled() {
		tr.Record(telemetry.StagePoolGet, detail, start, dur, "")
	}
}

// noteReset records a pool_reset span; the path detail distinguishes
// drainer resets ("on_put") from inline ones ("on_get").
func noteReset(start time.Time, dur time.Duration, path string) {
	if tr := telemetry.DefaultTracer(); tr.Enabled() {
		tr.Record(telemetry.StagePoolReset, path, start, dur, "")
	}
}
