package instancepool_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wizgo/internal/instancepool"
)

// waitFor polls for an asynchronous condition (the background resetter
// runs on its own goroutine, so its effects are eventually visible).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// fake is a minimal poolable instance: a serial number plus a dirty
// flag the Reset callback clears.
type fake struct {
	id    int
	dirty bool
}

type callbacks struct {
	news      atomic.Int64
	resets    atomic.Int64
	discards  atomic.Int64
	resetErr  error
	resetFail atomic.Int64 // fail the first N resets
}

func (c *callbacks) config(capacity int) instancepool.Config[*fake] {
	return instancepool.Config[*fake]{
		Capacity: capacity,
		New: func() (*fake, error) {
			return &fake{id: int(c.news.Add(1))}, nil
		},
		Reset: func(f *fake) error {
			c.resets.Add(1)
			if c.resetFail.Load() > 0 {
				c.resetFail.Add(-1)
				return c.resetErr
			}
			f.dirty = false
			return nil
		},
		Discard: func(f *fake) { c.discards.Add(1) },
	}
}

func TestGetPutRecycles(t *testing.T) {
	var cb callbacks
	p, err := instancepool.New(cb.config(4))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	a.dirty = true
	p.Put(a)
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Error("pool did not recycle the released instance")
	}
	if b.dirty {
		t.Error("recycled instance was not reset")
	}
	st := p.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 gets / 1 hit / 1 miss", st)
	}
	if cb.news.Load() != 1 || cb.resets.Load() != 1 {
		t.Errorf("news=%d resets=%d, want 1/1", cb.news.Load(), cb.resets.Load())
	}
}

func TestCapacityOverflowDiscards(t *testing.T) {
	var cb callbacks
	p, _ := instancepool.New(cb.config(2))
	var got []*fake
	for i := 0; i < 5; i++ {
		f, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, f)
	}
	for _, f := range got {
		p.Put(f)
	}
	if p.Len() != 2 {
		t.Errorf("idle = %d, want capacity 2", p.Len())
	}
	if cb.discards.Load() != 3 {
		t.Errorf("discards = %d, want 3", cb.discards.Load())
	}
	if st := p.Stats(); st.Puts != 5 || st.Drops != 3 {
		t.Errorf("stats = %+v, want 5 puts / 3 drops", st)
	}
}

func TestResetFailureOnPutDiscards(t *testing.T) {
	var cb callbacks
	cb.resetErr = errors.New("corrupt")
	p, _ := instancepool.New(cb.config(4))
	a, _ := p.Get()
	b, _ := p.Get()

	// a's background reset fails: the pool throws it away off the
	// request path, so the failure never reaches a Get caller.
	cb.resetFail.Store(1)
	p.Put(a)
	waitFor(t, "failed reset", func() bool { return p.Stats().ResetFailures == 1 })
	if cb.discards.Load() != 1 || p.Len() != 0 {
		t.Errorf("discards = %d, len = %d, want 1/0", cb.discards.Load(), p.Len())
	}

	// b's reset succeeds: Get must hand back b, clean, and never a.
	p.Put(b)
	waitFor(t, "background reset", func() bool { return p.Stats().ResetsOnPut == 1 })
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Error("Get did not reuse the surviving instance")
	}

	// With every reset failing the pool drains into a miss.
	cb.resetFail.Store(5)
	p.Put(c)
	waitFor(t, "second failed reset", func() bool { return p.Stats().ResetFailures == 2 })
	d, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if d == a || d == b {
		t.Error("instance revived after its reset failed")
	}
	if st := p.Stats(); st.Misses != 3 {
		t.Errorf("misses = %d, want 3 (two initial + one drained)", st.Misses)
	}
}

// gatedPool builds a pool whose FIRST reset parks inside the callback
// until gate closes (signalling `entered` on the way in), which pins
// the background drainer mid-reset so tests can observe the dirty and
// in-flight custody states deterministically.
func gatedPool(capacity int) (p *instancepool.Pool[*fake], gate chan struct{}, entered chan struct{}) {
	gate = make(chan struct{})
	entered = make(chan struct{})
	var first atomic.Bool
	var news atomic.Int64
	p, _ = instancepool.New(instancepool.Config[*fake]{
		Capacity: capacity,
		New: func() (*fake, error) {
			return &fake{id: int(news.Add(1))}, nil
		},
		Reset: func(f *fake) error {
			if first.CompareAndSwap(false, true) {
				close(entered)
				<-gate
			}
			f.dirty = false
			return nil
		},
	})
	return p, gate, entered
}

// TestResetOnGetInline: when Get outruns the background drainer it
// claims a still-dirty instance and resets it inline, counted on the
// on-get side of the stats split.
func TestResetOnGetInline(t *testing.T) {
	p, gate, entered := gatedPool(4)
	a, _ := p.Get()
	b, _ := p.Get()
	a.dirty, b.dirty = true, true

	p.Put(a)
	<-entered // drainer is parked inside a's reset
	p.Put(b)  // drainer busy: b stays on the dirty list

	c, err := p.Get() // must claim b and reset it inline
	if err != nil {
		t.Fatal(err)
	}
	if c != b || c.dirty {
		t.Errorf("got %v (dirty=%v), want b reset inline", c, c.dirty)
	}
	if st := p.Stats(); st.ResetsOnGet != 1 || st.ResetsOnPut != 0 {
		t.Errorf("resets on-get/on-put = %d/%d, want 1/0", st.ResetsOnGet, st.ResetsOnPut)
	}

	close(gate) // release a's background reset
	waitFor(t, "background reset", func() bool { return p.Stats().ResetsOnPut == 1 })
	d, err := p.Get() // a is clean now: a zero-reset hit
	if err != nil {
		t.Fatal(err)
	}
	if d != a || d.dirty {
		t.Errorf("got %v, want the background-reset instance", d)
	}
	st := p.Stats()
	if st.ResetsOnGet != 1 || st.ResetsOnPut != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 on-get + 1 on-put reset over 2 hits", st)
	}
	if st.ResetTime != st.ResetOnPutTime+st.ResetOnGetTime {
		t.Errorf("reset time %v != on-put %v + on-get %v",
			st.ResetTime, st.ResetOnPutTime, st.ResetOnGetTime)
	}
}

// TestGetWaitsForInflightReset: when the only pooled instance is
// mid-reset, Get waits for that reset instead of paying for a fresh
// instantiation.
func TestGetWaitsForInflightReset(t *testing.T) {
	p, gate, entered := gatedPool(4)
	a, _ := p.Get()
	p.Put(a)
	<-entered // a's background reset is in flight
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(gate)
	}()
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Error("Get instantiated fresh instead of waiting for the in-flight reset")
	}
	if st := p.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (the initial instantiation only)", st.Misses)
	}
}

func TestNewErrorPropagates(t *testing.T) {
	boom := errors.New("no memory")
	p, _ := instancepool.New(instancepool.Config[*fake]{
		New:   func() (*fake, error) { return nil, boom },
		Reset: func(*fake) error { return nil },
	})
	if _, err := p.Get(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if st := p.Stats(); st.Gets != 0 {
		t.Errorf("failed Get counted: %+v", st)
	}
}

func TestMissingCallbacksRejected(t *testing.T) {
	if _, err := instancepool.New(instancepool.Config[*fake]{}); err == nil {
		t.Error("nil callbacks accepted")
	}
}

func TestCloseDrainsAndDiscards(t *testing.T) {
	var cb callbacks
	p, _ := instancepool.New(cb.config(4))
	a, _ := p.Get()
	b, _ := p.Get()
	p.Put(a)
	p.Close()
	if cb.discards.Load() != 1 {
		t.Errorf("discards after close = %d, want 1", cb.discards.Load())
	}
	p.Put(b) // post-close Put discards immediately
	if cb.discards.Load() != 2 || p.Len() != 0 {
		t.Errorf("post-close put retained instance (discards=%d len=%d)",
			cb.discards.Load(), p.Len())
	}
	if _, err := p.Get(); err != nil { // Get still works, as a miss
		t.Fatal(err)
	}
}

// TestConcurrentGetPut hammers the pool from many goroutines (run with
// -race in CI): every Get must observe a reset (non-dirty) instance,
// and no instance may be handed to two goroutines at once.
func TestConcurrentGetPut(t *testing.T) {
	var cb callbacks
	p, _ := instancepool.New(cb.config(4))
	var inUse sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				if f.dirty {
					t.Error("got a dirty instance")
				}
				if _, loaded := inUse.LoadOrStore(f, true); loaded {
					t.Errorf("instance %d handed out twice", f.id)
				}
				f.dirty = true
				inUse.Delete(f)
				p.Put(f)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Gets != 8*500 {
		t.Errorf("gets = %d, want %d", st.Gets, 8*500)
	}
	if st.Hits+st.Misses != st.Gets {
		t.Errorf("hits %d + misses %d != gets %d", st.Hits, st.Misses, st.Gets)
	}
	if st.Puts != st.Gets {
		t.Errorf("puts = %d, want %d", st.Puts, st.Gets)
	}
}

func TestDoublePutIgnored(t *testing.T) {
	var cb callbacks
	p, _ := instancepool.New(cb.config(4))
	a, _ := p.Get()
	p.Put(a)
	p.Put(a) // must not store a second reference
	if p.Len() != 1 {
		t.Fatalf("idle = %d after double put, want 1", p.Len())
	}
	if st := p.Stats(); st.Drops != 1 {
		t.Errorf("drops = %d, want 1 (the duplicate)", st.Drops)
	}
	if cb.discards.Load() != 0 {
		t.Errorf("duplicate put discarded a live instance (%d discards)", cb.discards.Load())
	}
	b, _ := p.Get()
	c, _ := p.Get()
	if b == c {
		t.Fatal("double put let one instance be handed out twice")
	}
}
