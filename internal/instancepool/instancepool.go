// Package instancepool recycles whole module instances between
// requests. Where internal/codecache amortizes the per-module cost
// (decode, validate, compile) and Instance.Release amortizes the value
// stack, this pool amortizes everything that is left: a released
// instance keeps its memory, globals, tables and stack, and the next
// Get hands it back restored to its post-instantiation state instead
// of constructing a new one. With copy-on-write memory reset
// (rt.Memory write tracking), the reset cost is proportional to what
// the previous request actually wrote — the same amortize-everything
// discipline the baseline-compiler paper applies to setup time, applied
// to instance state.
//
// The reset runs off the request path: Put parks the instance dirty and
// a background drainer (started lazily, exits when caught up) restores
// it, so a steady-state Get pops an already-clean instance without
// paying for the previous request's writes. Get only falls back to
// resetting inline when it outruns the drainer, and both paths are
// accounted separately in Stats (ResetsOnPut vs ResetsOnGet).
//
// The pool is generic over the instance type so it carries no engine
// dependency; internal/engine wraps it with a typed facade
// (CompiledModule.NewPool) that supplies the instantiate / reset /
// release callbacks. All methods are safe for concurrent use.
package instancepool

import (
	"errors"
	"sync"
	"time"

	"wizgo/internal/faultinject"
)

// ErrPoisoned marks a reset refusal whose cause is instance poisoning
// (a contained host panic left the instance in an unknown state). Reset
// callbacks wrap it so the pool can split these drops out of ordinary
// reset failures: a poisoned drop is the containment machinery working,
// not a pool malfunction.
var ErrPoisoned = errors.New("instance poisoned")

// PointReset fires at the top of every pool reset (inline and
// background), so an armed fault exercises the discard-and-replace
// path without needing a corrupt instance.
var PointReset = faultinject.Register("instancepool.reset")

// Config wires a Pool to its instance type.
type Config[T comparable] struct {
	// Capacity bounds the number of instances in pool custody (clean,
	// dirty, or mid-reset); Put past capacity discards. 0 means 8.
	Capacity int
	// New instantiates a fresh instance — the miss path.
	New func() (T, error)
	// Reset restores a recycled instance to its post-instantiation
	// state. It normally runs on the background drainer right after
	// Put; Get runs it inline only when it claims an instance the
	// drainer has not reached yet. An error discards the instance.
	Reset func(T) error
	// Discard, if non-nil, releases an instance the pool will never
	// hand out again (capacity overflow, failed reset, Close).
	Discard func(T)
}

// Stats are cumulative pool counters. Latencies are totals; divide by
// the corresponding count for means. Hits+Misses = Gets.
type Stats struct {
	// Gets counts successful Get calls; Hits of them were recycled
	// instances, Misses were fresh instantiations.
	Gets, Hits, Misses uint64
	// Puts counts instances returned; Drops of those were not retained:
	// discarded on capacity overflow or a closed pool, or ignored as
	// duplicate Puts of an already-pooled instance. ResetFailures
	// counts recycled instances a failing Reset forced the pool to
	// throw away; PoisonDrops is the subset whose reset refused with
	// ErrPoisoned (host-panic containment dropping the instance).
	Puts, Drops, ResetFailures, PoisonDrops uint64
	// ResetsOnPut counts resets the background drainer absorbed after
	// Put; ResetsOnGet counts resets Get had to run inline because it
	// claimed an instance before the drainer reached it. A healthy
	// steady state is dominated by ResetsOnPut — every ResetOnGet is
	// reset latency back on the request path.
	ResetsOnPut, ResetsOnGet uint64
	// GetTime is total wall time inside Get (inline reset, waiting for
	// an in-flight background reset, or instantiation included);
	// MissTime is the instantiate share of it. ResetTime is the total
	// across both reset paths, split as ResetOnPutTime (off the request
	// path) and ResetOnGetTime (on it). ResetMax is the worst single
	// reset on either path.
	GetTime, MissTime time.Duration
	ResetTime         time.Duration
	ResetOnPutTime    time.Duration
	ResetOnGetTime    time.Duration
	ResetMax          time.Duration
}

// MeanGet returns the mean Get latency.
func (s Stats) MeanGet() time.Duration { return meanDur(s.GetTime, s.Gets) }

// MeanReset returns the mean reset latency over both paths.
func (s Stats) MeanReset() time.Duration {
	return meanDur(s.ResetTime, s.ResetsOnPut+s.ResetsOnGet)
}

// MeanResetOnPut returns the mean background (off-request-path) reset.
func (s Stats) MeanResetOnPut() time.Duration {
	return meanDur(s.ResetOnPutTime, s.ResetsOnPut)
}

// MeanResetOnGet returns the mean inline (on-request-path) reset.
func (s Stats) MeanResetOnGet() time.Duration {
	return meanDur(s.ResetOnGetTime, s.ResetsOnGet)
}

// MeanMiss returns the mean instantiate latency on the miss path.
func (s Stats) MeanMiss() time.Duration { return meanDur(s.MissTime, s.Misses) }

func meanDur(total time.Duration, n uint64) time.Duration {
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// Pool recycles instances of one compiled module. Custody moves
// dirty → (drainer) → clean; Get prefers clean, claims dirty inline
// when the drainer is behind, and briefly waits for an in-flight reset
// before falling back to a fresh instantiation.
type Pool[T comparable] struct {
	cfg Config[T]

	mu    sync.Mutex
	cond  *sync.Cond // signaled when a background reset completes or the pool closes
	clean []T        // reset, ready to hand out
	dirty []T        // parked by Put, awaiting reset
	// resetting counts instances claimed by the drainer and currently
	// inside the Reset callback; they are in custody but on neither
	// list.
	resetting int
	// draining is true while a drainer goroutine is live; Put starts
	// one lazily and it exits once the dirty list is empty.
	draining bool
	// inPool holds every instance in custody (clean, dirty, or
	// mid-reset) so Put detects a duplicate in O(1) instead of
	// scanning under the mutex on the hot path.
	inPool map[T]struct{}
	closed bool
	stats  Stats
}

// New creates a pool. New and Reset callbacks are mandatory.
func New[T comparable](cfg Config[T]) (*Pool[T], error) {
	if cfg.New == nil || cfg.Reset == nil {
		return nil, errors.New("instancepool: Config.New and Config.Reset are required")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	p := &Pool[T]{cfg: cfg, inPool: make(map[T]struct{})}
	p.cond = sync.NewCond(&p.mu)
	return p, nil
}

// size is the custody count; callers hold p.mu.
func (p *Pool[T]) size() int { return len(p.clean) + len(p.dirty) + p.resetting }

// reset runs the Reset callback behind the fault-injection point.
func (p *Pool[T]) reset(inst T) error {
	if err := faultinject.Fire(PointReset); err != nil {
		return err
	}
	return p.cfg.Reset(inst)
}

// noteResetFailure classifies a failed reset; callers hold p.mu.
func (p *Pool[T]) noteResetFailure(err error) {
	p.stats.ResetFailures++
	mResetFailures.Inc()
	if errors.Is(err, ErrPoisoned) {
		p.stats.PoisonDrops++
		mPoisonDrops.Inc()
	}
}

// Get returns a ready instance, by cheapest path first: a clean one
// (already reset in the background — the common steady state, no reset
// cost on this call), a dirty one the drainer has not reached (reset
// inline), or — when the only candidate is mid-reset — the result of
// that reset, waited for briefly (a near-complete reset is cheaper than
// a fresh build). Only an empty pool instantiates. Get never blocks
// waiting for a Put.
func (p *Pool[T]) Get() (T, error) {
	t0 := time.Now()
	p.mu.Lock()
	for !p.closed {
		if n := len(p.clean); n > 0 {
			inst := p.clean[n-1]
			var zero T
			p.clean[n-1] = zero // do not retain the reference
			p.clean = p.clean[:n-1]
			delete(p.inPool, inst)
			gCustody.Add(-1)
			p.stats.Gets++
			p.stats.Hits++
			getDur := time.Since(t0)
			p.stats.GetTime += getDur
			p.mu.Unlock()
			noteGet(t0, getDur, true)
			return inst, nil
		}
		if n := len(p.dirty); n > 0 {
			inst := p.dirty[n-1]
			var zero T
			p.dirty[n-1] = zero
			p.dirty = p.dirty[:n-1]
			delete(p.inPool, inst)
			gCustody.Add(-1)
			p.mu.Unlock()

			r0 := time.Now()
			err := p.reset(inst)
			resetDur := time.Since(r0)
			if err != nil {
				// A corrupt instance is cheaper to replace than to
				// repair: drop it and try the next candidate (or fall
				// through to New).
				if p.cfg.Discard != nil {
					p.cfg.Discard(inst)
				}
				p.mu.Lock()
				p.noteResetFailure(err)
				continue
			}
			p.mu.Lock()
			p.stats.Gets++
			p.stats.Hits++
			p.stats.ResetsOnGet++
			p.stats.ResetOnGetTime += resetDur
			p.noteReset(resetDur)
			getDur := time.Since(t0)
			p.stats.GetTime += getDur
			p.mu.Unlock()
			mResetsOnGet.Inc()
			hReset.Observe(resetDur)
			noteReset(r0, resetDur, "on_get")
			noteGet(t0, getDur, true)
			return inst, nil
		}
		if p.resetting > 0 && !p.closed {
			p.cond.Wait()
			continue
		}
		break
	}
	p.mu.Unlock()

	m0 := time.Now()
	inst, err := p.cfg.New()
	if err != nil {
		var zero T
		return zero, err
	}
	missDur := time.Since(m0)
	p.mu.Lock()
	p.stats.Gets++
	p.stats.Misses++
	p.stats.MissTime += missDur
	getDur := time.Since(t0)
	p.stats.GetTime += getDur
	p.mu.Unlock()
	noteGet(t0, getDur, false)
	return inst, nil
}

func (p *Pool[T]) noteReset(d time.Duration) {
	p.stats.ResetTime += d
	if d > p.stats.ResetMax {
		p.stats.ResetMax = d
	}
}

// Put returns an instance for recycling and schedules its reset on the
// background drainer, so the reset cost lands between requests instead
// of on the next Get. The instance must be quiescent (no call in
// progress) and must have come from this pool's Get — the reset
// contract assumes the pool's own instantiation baseline. Past
// capacity, or after Close, the instance is discarded instead.
func (p *Pool[T]) Put(inst T) {
	p.mu.Lock()
	p.stats.Puts++
	// A double Put would store two references to one instance and let
	// two Gets hand it out concurrently (the same hazard class the
	// engine latches Release against); an already-pooled instance is
	// simply ignored, counted as a drop — not discarded, since the
	// pool's own reference to it stays live.
	if _, dup := p.inPool[inst]; dup {
		p.stats.Drops++
		mPuts.Inc()
		mDrops.Inc()
		p.mu.Unlock()
		return
	}
	if p.closed || p.size() >= p.cfg.Capacity {
		p.stats.Drops++
		mPuts.Inc()
		mDrops.Inc()
		p.mu.Unlock()
		if p.cfg.Discard != nil {
			p.cfg.Discard(inst)
		}
		return
	}
	p.inPool[inst] = struct{}{}
	p.dirty = append(p.dirty, inst)
	mPuts.Inc()
	gCustody.Add(1)
	start := !p.draining
	if start {
		p.draining = true
	}
	p.mu.Unlock()
	if start {
		go p.drain()
	}
}

// drain is the background resetter: it claims dirty instances one at a
// time, resets them outside the lock, and promotes them to the clean
// list, exiting once it has caught up (the next Put starts a new one).
// There is at most one drainer per pool, which is what lets Get claim a
// dirty instance deterministically instead of racing a per-Put
// goroutine for it.
func (p *Pool[T]) drain() {
	for {
		p.mu.Lock()
		n := len(p.dirty)
		if n == 0 || p.closed {
			p.draining = false
			p.mu.Unlock()
			return
		}
		inst := p.dirty[n-1]
		var zero T
		p.dirty[n-1] = zero
		p.dirty = p.dirty[:n-1]
		p.resetting++
		p.mu.Unlock()

		r0 := time.Now()
		err := p.reset(inst)
		resetDur := time.Since(r0)

		p.mu.Lock()
		p.resetting--
		switch {
		case p.closed:
			// Close is waiting for resetting to reach zero and will
			// drain and discard whatever is on the lists, so park the
			// instance there (even after a failed reset — the Discard
			// callback owns judging its state) instead of racing
			// Close with a discard of our own.
			if err != nil {
				p.noteResetFailure(err)
			}
			p.clean = append(p.clean, inst)
			p.cond.Broadcast()
			p.mu.Unlock()
		case err != nil:
			p.noteResetFailure(err)
			gCustody.Add(-1)
			delete(p.inPool, inst)
			p.cond.Broadcast()
			p.mu.Unlock()
			if p.cfg.Discard != nil {
				p.cfg.Discard(inst)
			}
		default:
			p.stats.ResetsOnPut++
			p.stats.ResetOnPutTime += resetDur
			p.noteReset(resetDur)
			p.clean = append(p.clean, inst)
			p.cond.Broadcast()
			p.mu.Unlock()
			mResetsOnPut.Inc()
			hReset.Observe(resetDur)
			noteReset(r0, resetDur, "on_put")
		}
	}
}

// Len returns the number of instances in pool custody (clean, dirty,
// and mid-reset).
func (p *Pool[T]) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size()
}

// Stats returns a snapshot of the counters.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close discards every pooled instance and makes future Puts discard
// immediately. It waits for an in-flight background reset to finish, so
// when Close returns every instance the pool ever retained has been
// handed to Discard. Get still works (every call becomes a miss), so a
// pool can be drained without coordinating in-flight requests.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast() // release Get waiters into the miss path
	for p.resetting > 0 {
		p.cond.Wait()
	}
	drained := append(p.clean, p.dirty...)
	p.clean, p.dirty = nil, nil
	clear(p.inPool)
	gCustody.Add(-int64(len(drained)))
	p.mu.Unlock()
	if p.cfg.Discard != nil {
		for _, inst := range drained {
			p.cfg.Discard(inst)
		}
	}
}
