// Package instancepool recycles whole module instances between
// requests. Where internal/codecache amortizes the per-module cost
// (decode, validate, compile) and Instance.Release amortizes the value
// stack, this pool amortizes everything that is left: a released
// instance keeps its memory, globals, tables and stack, and the next
// Get hands it back after a reset to its post-instantiation state
// instead of constructing a new one. With copy-on-write memory reset
// (rt.Memory write tracking), the reset cost is proportional to what
// the previous request actually wrote — the same amortize-everything
// discipline the baseline-compiler paper applies to setup time, applied
// to instance state.
//
// The pool is generic over the instance type so it carries no engine
// dependency; internal/engine wraps it with a typed facade
// (CompiledModule.NewPool) that supplies the instantiate / reset /
// release callbacks. All methods are safe for concurrent use.
package instancepool

import (
	"errors"
	"sync"
	"time"
)

// Config wires a Pool to its instance type.
type Config[T comparable] struct {
	// Capacity bounds the number of idle instances retained; Put past
	// capacity discards. 0 means 8.
	Capacity int
	// New instantiates a fresh instance — the miss path.
	New func() (T, error)
	// Reset restores a recycled instance to its post-instantiation
	// state; it runs on Get, so idle instances hold their dirty state
	// until demanded. An error discards the instance and Get falls back
	// to another idle instance or to New.
	Reset func(T) error
	// Discard, if non-nil, releases an instance the pool will never
	// hand out again (capacity overflow, failed reset, Close).
	Discard func(T)
}

// Stats are cumulative pool counters. Latencies are totals; divide by
// the corresponding count for means. Hits+Misses = Gets.
type Stats struct {
	// Gets counts successful Get calls; Hits of them were recycled
	// instances, Misses were fresh instantiations.
	Gets, Hits, Misses uint64
	// Puts counts instances returned; Drops of those were not retained:
	// discarded on capacity overflow or a closed pool, or ignored as
	// duplicate Puts of an already-idle instance. ResetFailures counts
	// recycled instances a failing Reset forced the pool to throw away.
	Puts, Drops, ResetFailures uint64
	// GetTime is total wall time inside Get (reset or instantiate
	// included); ResetTime and MissTime split it by path. ResetMax is
	// the worst single reset.
	GetTime, ResetTime, MissTime time.Duration
	ResetMax                     time.Duration
}

// MeanGet returns the mean Get latency.
func (s Stats) MeanGet() time.Duration { return meanDur(s.GetTime, s.Gets) }

// MeanReset returns the mean reset latency on the hit path.
func (s Stats) MeanReset() time.Duration { return meanDur(s.ResetTime, s.Hits) }

// MeanMiss returns the mean instantiate latency on the miss path.
func (s Stats) MeanMiss() time.Duration { return meanDur(s.MissTime, s.Misses) }

func meanDur(total time.Duration, n uint64) time.Duration {
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// Pool recycles instances of one compiled module.
type Pool[T comparable] struct {
	cfg Config[T]

	mu   sync.Mutex
	idle []T
	// inPool mirrors idle as a set so Put detects a duplicate in O(1)
	// instead of scanning under the mutex on the hot path.
	inPool map[T]struct{}
	closed bool
	stats  Stats
}

// New creates a pool. New and Reset callbacks are mandatory.
func New[T comparable](cfg Config[T]) (*Pool[T], error) {
	if cfg.New == nil || cfg.Reset == nil {
		return nil, errors.New("instancepool: Config.New and Config.Reset are required")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	return &Pool[T]{cfg: cfg, inPool: make(map[T]struct{})}, nil
}

// Get returns a ready instance: a recycled one reset to its
// post-instantiation state when the pool has any, otherwise a fresh
// instantiation. Get never blocks waiting for a Put — an empty pool is
// a miss, not a queue.
func (p *Pool[T]) Get() (T, error) {
	t0 := time.Now()
	for {
		p.mu.Lock()
		n := len(p.idle)
		if n == 0 {
			p.mu.Unlock()
			break
		}
		inst := p.idle[n-1]
		var zero T
		p.idle[n-1] = zero // do not retain the reference
		p.idle = p.idle[:n-1]
		delete(p.inPool, inst)
		p.mu.Unlock()

		r0 := time.Now()
		err := p.cfg.Reset(inst)
		resetDur := time.Since(r0)
		if err != nil {
			// A corrupt instance is cheaper to replace than to repair:
			// drop it and try the next idle one (or fall through to New).
			if p.cfg.Discard != nil {
				p.cfg.Discard(inst)
			}
			p.mu.Lock()
			p.stats.ResetFailures++
			p.mu.Unlock()
			continue
		}
		p.mu.Lock()
		p.stats.Gets++
		p.stats.Hits++
		p.stats.ResetTime += resetDur
		if resetDur > p.stats.ResetMax {
			p.stats.ResetMax = resetDur
		}
		p.stats.GetTime += time.Since(t0)
		p.mu.Unlock()
		return inst, nil
	}

	m0 := time.Now()
	inst, err := p.cfg.New()
	if err != nil {
		var zero T
		return zero, err
	}
	missDur := time.Since(m0)
	p.mu.Lock()
	p.stats.Gets++
	p.stats.Misses++
	p.stats.MissTime += missDur
	p.stats.GetTime += time.Since(t0)
	p.mu.Unlock()
	return inst, nil
}

// Put returns an instance for recycling. The instance must be quiescent
// (no call in progress) and must have come from this pool's Get — the
// reset contract assumes the pool's own instantiation baseline. Past
// capacity, or after Close, the instance is discarded instead.
func (p *Pool[T]) Put(inst T) {
	p.mu.Lock()
	p.stats.Puts++
	// A double Put would store two references to one instance and let
	// two Gets hand it out concurrently (the same hazard class the
	// engine latches Release against); an already-idle instance is
	// simply ignored, counted as a drop — not discarded, since the
	// pool's own reference to it stays live.
	if _, dup := p.inPool[inst]; dup {
		p.stats.Drops++
		p.mu.Unlock()
		return
	}
	if p.closed || len(p.idle) >= p.cfg.Capacity {
		p.stats.Drops++
		p.mu.Unlock()
		if p.cfg.Discard != nil {
			p.cfg.Discard(inst)
		}
		return
	}
	p.idle = append(p.idle, inst)
	p.inPool[inst] = struct{}{}
	p.mu.Unlock()
}

// Len returns the number of idle instances.
func (p *Pool[T]) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Stats returns a snapshot of the counters.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close discards every idle instance and makes future Puts discard
// immediately. Get still works (every call becomes a miss), so a pool
// can be drained without coordinating in-flight requests.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	drained := p.idle
	p.idle = nil
	clear(p.inPool)
	p.closed = true
	p.mu.Unlock()
	if p.cfg.Discard != nil {
		for _, inst := range drained {
			p.cfg.Discard(inst)
		}
	}
}
