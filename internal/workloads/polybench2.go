package workloads

import "wizgo/internal/wasm"

// pbNussinov: RNA secondary-structure dynamic programming (max-scoring),
// i32 table with triangular dependencies — the most branch-heavy
// PolyBench kernel.
func pbNussinov(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	best := f.AddLocal(wasm.I32)
	tmp := f.AddLocal(wasm.I32)
	// seq[i] = i*31 % 4 at vX (bytes); table at mA (i32, n x n).
	k.ForI32(i, 0, n, func() {
		f.LocalGet(i).I32Const(vX).Op(wasm.OpI32Add)
		f.LocalGet(i).I32Const(31).Op(wasm.OpI32Mul).I32Const(4).Op(wasm.OpI32RemS)
		f.Store(wasm.OpI32Store8, 0)
	})
	addr := func(r, c uint32) {
		f.LocalGet(r).I32Const(n).Op(wasm.OpI32Mul)
		f.LocalGet(c).Op(wasm.OpI32Add)
		f.I32Const(4).Op(wasm.OpI32Mul)
		f.I32Const(mA).Op(wasm.OpI32Add)
	}
	// for i = n-1 downto 0: for j = i+1 to n-1:
	f.I32Const(n - 1).LocalSet(i)
	f.Loop(wasm.BlockEmpty)
	{
		f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalSet(j)
		f.Block(wasm.BlockEmpty)
		f.LocalGet(j).I32Const(n).Op(wasm.OpI32GeS).BrIf(0)
		f.Loop(wasm.BlockEmpty)
		{
			// best = table[i+1][j-1] + pair(seq[i], seq[j])
			f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
			f.LocalGet(j).I32Const(1).Op(wasm.OpI32Sub).Op(wasm.OpI32Add)
			f.I32Const(4).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
			f.Load(wasm.OpI32Load, 0)
			// pair bonus: (seq[i]+seq[j]) == 3 ? 1 : 0
			f.LocalGet(i).I32Const(vX).Op(wasm.OpI32Add).Load(wasm.OpI32Load8U, 0)
			f.LocalGet(j).I32Const(vX).Op(wasm.OpI32Add).Load(wasm.OpI32Load8U, 0)
			f.Op(wasm.OpI32Add).I32Const(3).Op(wasm.OpI32Eq)
			f.Op(wasm.OpI32Add)
			f.LocalSet(best)
			// splits: best = max(best, table[i][l] + table[l+1][j])
			f.LocalGet(i).LocalSet(l)
			f.Block(wasm.BlockEmpty)
			f.LocalGet(l).LocalGet(j).Op(wasm.OpI32GeS).BrIf(0)
			f.Loop(wasm.BlockEmpty)
			{
				addr(i, l)
				f.Load(wasm.OpI32Load, 0)
				f.LocalGet(l).I32Const(1).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(j).Op(wasm.OpI32Add)
				f.I32Const(4).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
				f.Load(wasm.OpI32Load, 0)
				f.Op(wasm.OpI32Add)
				f.LocalSet(tmp)
				f.LocalGet(tmp).LocalGet(best).Op(wasm.OpI32GtS)
				f.If(wasm.BlockEmpty)
				f.LocalGet(tmp).LocalSet(best)
				f.End()
				f.LocalGet(l).I32Const(1).Op(wasm.OpI32Add).LocalTee(l)
				f.LocalGet(j).Op(wasm.OpI32LtS).BrIf(0)
			}
			f.End()
			f.End()
			addr(i, j)
			f.LocalGet(best)
			f.Store(wasm.OpI32Store, 0)

			f.LocalGet(j).I32Const(1).Op(wasm.OpI32Add).LocalTee(j)
			f.I32Const(n).Op(wasm.OpI32LtS).BrIf(0)
		}
		f.End()
		f.End()
		f.LocalGet(i).I32Const(1).Op(wasm.OpI32Sub).LocalTee(i)
		f.I32Const(0).Op(wasm.OpI32GeS).BrIf(0)
	}
	f.End()
	k.ChecksumMem(mA, n*n*4, i)
}

// pbDoitgen: multi-resolution analysis kernel: A[r][q][p] = sum_s
// A[r][q][s] * C4[s][p].
func pbDoitgen(k *K, n int32) {
	f := k.F
	r, q, p, s := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	C4 := Mat{mB, n}
	k.InitMat(C4, n, r, q)
	// A is n*n*n f64 at mA; sum buffer at vX (n f64).
	aAddr := func() { // expects r,q,s pattern pushed by caller closure
	}
	_ = aAddr
	// init A
	k.ForI32(r, 0, n, func() {
		k.ForI32(q, 0, n, func() {
			k.ForI32(p, 0, n, func() {
				f.LocalGet(r).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(q).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(p).Op(wasm.OpI32Add)
				f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
				f.LocalGet(r).LocalGet(q).Op(wasm.OpI32Add).LocalGet(p).Op(wasm.OpI32Add)
				f.I32Const(37).Op(wasm.OpI32RemS)
				f.Op(wasm.OpF64ConvertI32S)
				f.F64Const(1.0 / 37.0).Op(wasm.OpF64Mul)
				f.Store(wasm.OpF64Store, 0)
			})
		})
	})
	k.ForI32(r, 0, n, func() {
		k.ForI32(q, 0, n, func() {
			k.ForI32(p, 0, n, func() {
				f.F64Const(0).LocalSet(acc)
				k.ForI32(s, 0, n, func() {
					f.LocalGet(r).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(q).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(s).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					k.LoadEl(C4, s, p)
					f.Op(wasm.OpF64Mul)
					f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
				})
				k.StoreVec(vX, p, func() { f.LocalGet(acc) })
			})
			k.ForI32(p, 0, n, func() {
				f.LocalGet(r).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(q).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(p).Op(wasm.OpI32Add)
				f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
				k.LoadVec(vX, p)
				f.Store(wasm.OpF64Store, 0)
			})
		})
	})
	k.ChecksumMem(mA, n*n*n*8, r)
}

// pbJacobi1D: 1-D three-point stencil, tsteps sweeps.
func pbJacobi1D(k *K, n, tsteps int32) {
	f := k.F
	i, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	k.InitVec(vX, n, i) // A
	k.InitVec(vY, n, i) // B
	k.ForI32(t, 0, tsteps, func() {
		k.ForI32(i, 1, n-1, func() {
			k.StoreVec(vY, i, func() {
				f.LocalGet(i).I32Const(1).Op(wasm.OpI32Sub).I32Const(8).Op(wasm.OpI32Mul)
				f.I32Const(vX).Op(wasm.OpI32Add).Load(wasm.OpF64Load, 0)
				k.LoadVec(vX, i)
				f.Op(wasm.OpF64Add)
				f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).I32Const(8).Op(wasm.OpI32Mul)
				f.I32Const(vX).Op(wasm.OpI32Add).Load(wasm.OpF64Load, 0)
				f.Op(wasm.OpF64Add)
				f.F64Const(1.0 / 3.0).Op(wasm.OpF64Mul)
			})
		})
		k.ForI32(i, 1, n-1, func() {
			k.StoreVec(vX, i, func() { k.LoadVec(vY, i) })
		})
	})
	k.ChecksumVec(vX, n, i)
}

// pbJacobi2D: 2-D five-point stencil.
func pbJacobi2D(k *K, n, tsteps int32) {
	f := k.F
	i, j, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	A, B := Mat{mA, n}, Mat{mB, n}
	k.InitMat(A, n, i, j)
	k.ForI32(t, 0, tsteps, func() {
		k.ForI32(i, 1, n-1, func() {
			k.ForI32(j, 1, n-1, func() {
				k.StoreEl(B, i, j, func() {
					k.LoadEl(A, i, j)
					// A[i][j-1]
					f.LocalGet(i).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).Op(wasm.OpI32Add).I32Const(1).Op(wasm.OpI32Sub)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					// A[i][j+1]
					f.LocalGet(i).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).Op(wasm.OpI32Add).I32Const(1).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					// A[i-1][j]
					f.LocalGet(i).I32Const(1).Op(wasm.OpI32Sub).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					// A[i+1][j]
					f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					f.F64Const(0.2).Op(wasm.OpF64Mul)
				})
			})
		})
		k.ForI32(i, 1, n-1, func() {
			k.ForI32(j, 1, n-1, func() {
				k.StoreEl(A, i, j, func() { k.LoadEl(B, i, j) })
			})
		})
	})
	k.ChecksumMat(A, n, i, j)
}

// pbSeidel2D: Gauss-Seidel in-place 2-D sweep.
func pbSeidel2D(k *K, n, tsteps int32) {
	f := k.F
	i, j, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	A := Mat{mA, n}
	k.InitMat(A, n, i, j)
	k.ForI32(t, 0, tsteps, func() {
		k.ForI32(i, 1, n-1, func() {
			k.ForI32(j, 1, n-1, func() {
				k.StoreEl(A, i, j, func() {
					// 5-point average with already-updated neighbors.
					f.LocalGet(i).I32Const(1).Op(wasm.OpI32Sub).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.LocalGet(i).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).I32Const(1).Op(wasm.OpI32Sub).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					k.LoadEl(A, i, j)
					f.Op(wasm.OpF64Add)
					f.LocalGet(i).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).I32Const(1).Op(wasm.OpI32Add).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					f.F64Const(0.2).Op(wasm.OpF64Mul)
				})
			})
		})
	})
	k.ChecksumMat(A, n, i, j)
}

// pbFdtd2D: 2-D finite-difference time-domain (Ex/Ey/Hz fields).
func pbFdtd2D(k *K, n, tsteps int32) {
	f := k.F
	i, j, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	Ex, Ey, Hz := Mat{mA, n}, Mat{mB, n}, Mat{mC, n}
	k.InitMat(Ex, n, i, j)
	k.InitMat(Ey, n, i, j)
	k.InitMat(Hz, n, i, j)
	k.ForI32(t, 0, tsteps, func() {
		k.ForI32(i, 1, n, func() {
			k.ForI32(j, 0, n, func() {
				k.StoreEl(Ey, i, j, func() {
					k.LoadEl(Ey, i, j)
					k.LoadEl(Hz, i, j)
					f.LocalGet(i).I32Const(1).Op(wasm.OpI32Sub).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mC).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Sub)
					f.F64Const(0.5).Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Sub)
				})
			})
		})
		k.ForI32(i, 0, n, func() {
			k.ForI32(j, 1, n, func() {
				k.StoreEl(Ex, i, j, func() {
					k.LoadEl(Ex, i, j)
					k.LoadEl(Hz, i, j)
					f.LocalGet(i).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).I32Const(1).Op(wasm.OpI32Sub).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mC).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Sub)
					f.F64Const(0.5).Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Sub)
				})
			})
		})
		k.ForI32(i, 0, n-1, func() {
			k.ForI32(j, 0, n-1, func() {
				k.StoreEl(Hz, i, j, func() {
					k.LoadEl(Hz, i, j)
					// 0.7 * (Ex[i][j+1] - Ex[i][j] + Ey[i+1][j] - Ey[i][j])
					f.LocalGet(i).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).I32Const(1).Op(wasm.OpI32Add).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					k.LoadEl(Ex, i, j)
					f.Op(wasm.OpF64Sub)
					f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
					f.LocalGet(j).Op(wasm.OpI32Add)
					f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mB).Op(wasm.OpI32Add)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					k.LoadEl(Ey, i, j)
					f.Op(wasm.OpF64Sub)
					f.F64Const(0.7).Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Sub)
				})
			})
		})
	})
	k.ChecksumMat(Hz, n, i, j)
}

// pbHeat3D: 3-D seven-point heat stencil over an n^3 grid.
func pbHeat3D(k *K, n, tsteps int32) {
	f := k.F
	i, j, l, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	// A at mA, B at mB, both n^3 f64.
	addr := func(base int32, di, dj, dl int32) {
		f.LocalGet(i)
		if di != 0 {
			f.I32Const(di).Op(wasm.OpI32Add)
		}
		f.I32Const(n).Op(wasm.OpI32Mul)
		f.LocalGet(j)
		if dj != 0 {
			f.I32Const(dj).Op(wasm.OpI32Add)
		}
		f.Op(wasm.OpI32Add)
		f.I32Const(n).Op(wasm.OpI32Mul)
		f.LocalGet(l)
		if dl != 0 {
			f.I32Const(dl).Op(wasm.OpI32Add)
		}
		f.Op(wasm.OpI32Add)
		f.I32Const(8).Op(wasm.OpI32Mul)
		f.I32Const(base).Op(wasm.OpI32Add)
	}
	// init
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			k.ForI32(l, 0, n, func() {
				addr(mA, 0, 0, 0)
				f.LocalGet(i).LocalGet(j).Op(wasm.OpI32Add).LocalGet(l).Op(wasm.OpI32Add)
				f.I32Const(29).Op(wasm.OpI32RemS)
				f.Op(wasm.OpF64ConvertI32S)
				f.F64Const(1.0 / 29.0).Op(wasm.OpF64Mul)
				f.Store(wasm.OpF64Store, 0)
			})
		})
	})
	step := func(dst, src int32) {
		k.ForI32(i, 1, n-1, func() {
			k.ForI32(j, 1, n-1, func() {
				k.ForI32(l, 1, n-1, func() {
					addr(dst, 0, 0, 0)
					addr(src, 0, 0, 0)
					f.Load(wasm.OpF64Load, 0)
					addr(src, -1, 0, 0)
					f.Load(wasm.OpF64Load, 0)
					addr(src, 1, 0, 0)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					addr(src, 0, -1, 0)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					addr(src, 0, 1, 0)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					addr(src, 0, 0, -1)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					addr(src, 0, 0, 1)
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Add)
					f.F64Const(0.125).Op(wasm.OpF64Mul)
					f.F64Const(0.875).Op(wasm.OpF64Mul) // damping
					f.Op(wasm.OpF64Add)
					f.Store(wasm.OpF64Store, 0)
				})
			})
		})
	}
	k.ForI32(t, 0, tsteps, func() {
		step(mB, mA)
		step(mA, mB)
	})
	k.ChecksumMem(mA, n*n*n*8, i)
}
