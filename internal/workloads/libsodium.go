package workloads

import (
	"fmt"

	"wizgo/internal/wasm"
)

// Libsodium returns 39 line items mirroring the libsodium WebAssembly
// benchmark suite: integer/bit-manipulation-heavy cryptographic
// primitives. Each item is a real round-function implementation (ChaCha
// and Salsa quarter-rounds, SipHash and BLAKE2b i64 mixing, a SHA-256
// compression loop, constant-time comparison) run over memory buffers;
// the 39 items instantiate these kernels at the block counts and round
// counts that correspond to the original suite's primitives.
func Libsodium() []Item {
	type spec struct {
		name   string
		kernel func(k *K)
	}
	specs := []spec{
		{"stream_chacha20", func(k *K) { lsChaCha(k, 10, 48) }},
		{"stream_chacha20_ietf", func(k *K) { lsChaCha(k, 10, 44) }},
		{"stream_xchacha20", func(k *K) { lsChaCha(k, 10, 52) }},
		{"stream_salsa20", func(k *K) { lsSalsa(k, 10, 48) }},
		{"stream_salsa2012", func(k *K) { lsSalsa(k, 6, 48) }},
		{"stream_salsa208", func(k *K) { lsSalsa(k, 4, 48) }},
		{"stream_xsalsa20", func(k *K) { lsSalsa(k, 10, 52) }},
		{"aead_chacha20poly1305", func(k *K) { lsChaCha(k, 10, 32); lsPoly(k, 2048) }},
		{"aead_chacha20poly1305_ietf", func(k *K) { lsChaCha(k, 10, 30); lsPoly(k, 2048) }},
		{"aead_xchacha20poly1305_ietf", func(k *K) { lsChaCha(k, 10, 34); lsPoly(k, 2048) }},
		{"aead_aes256gcm", func(k *K) { lsGFMul(k, 1400) }},
		{"onetimeauth", func(k *K) { lsPoly(k, 6000) }},
		{"onetimeauth_verify", func(k *K) { lsPoly(k, 5600); lsVerify(k, 512) }},
		{"auth", func(k *K) { lsSha256(k, 28) }},
		{"auth_hmacsha256", func(k *K) { lsSha256(k, 30) }},
		{"auth_hmacsha512", func(k *K) { lsBlake(k, 40, 24) }},
		{"hash", func(k *K) { lsBlake(k, 48, 24) }},
		{"hash_sha256", func(k *K) { lsSha256(k, 32) }},
		{"hash_sha512", func(k *K) { lsBlake(k, 52, 24) }},
		{"generichash", func(k *K) { lsBlake(k, 44, 12) }},
		{"generichash_stream", func(k *K) { lsBlake(k, 36, 12) }},
		{"shorthash", func(k *K) { lsSiphash(k, 2, 4, 4200) }},
		{"shorthash_siphashx24", func(k *K) { lsSiphash(k, 2, 4, 4600) }},
		{"kdf", func(k *K) { lsBlake(k, 30, 12) }},
		{"keygen", func(k *K) { lsXorshift(k, 9000) }},
		{"randombytes", func(k *K) { lsXorshift(k, 11000) }},
		{"secretbox_easy", func(k *K) { lsSalsa(k, 10, 36); lsPoly(k, 2048) }},
		{"secretbox_open_easy", func(k *K) { lsSalsa(k, 10, 34); lsPoly(k, 2048); lsVerify(k, 512) }},
		{"secretstream_xchacha20poly1305", func(k *K) { lsChaCha(k, 10, 38); lsPoly(k, 1536) }},
		{"box_easy", func(k *K) { lsFieldMul(k, 160); lsSalsa(k, 10, 20); lsPoly(k, 1024) }},
		{"box_open_easy", func(k *K) { lsFieldMul(k, 160); lsSalsa(k, 10, 18); lsPoly(k, 1024) }},
		{"box_seal", func(k *K) { lsFieldMul(k, 220); lsSalsa(k, 10, 20); lsPoly(k, 1024) }},
		{"sign", func(k *K) { lsFieldMul(k, 260); lsBlake(k, 16, 12) }},
		{"sign_verify", func(k *K) { lsFieldMul(k, 300); lsBlake(k, 16, 12) }},
		{"sign_keypair", func(k *K) { lsFieldMul(k, 240) }},
		{"scalarmult", func(k *K) { lsFieldMul(k, 420) }},
		{"scalarmult_base", func(k *K) { lsFieldMul(k, 380) }},
		{"verify_16", func(k *K) { lsVerify(k, 22000) }},
		{"sodium_utils", func(k *K) { lsVerify(k, 12000); lsXorshift(k, 4000) }},
	}
	items := make([]Item, len(specs))
	for idx, sp := range specs {
		items[idx] = gen(SuiteLibsodium, sp.name, sp.kernel)
	}
	if len(items) != 39 {
		panic(fmt.Sprintf("libsodium suite must have 39 items, has %d", len(items)))
	}
	return items
}

// lsChaCha runs `blocks` ChaCha block functions with `dr` double-rounds
// each: 16 i32 words of state in locals, quarter-rounds of add/xor/rotl.
func lsChaCha(k *K, dr, blocks int32) {
	f := k.F
	var st [16]uint32
	for w := 0; w < 16; w++ {
		st[w] = f.AddLocal(wasm.I32)
	}
	blk := f.AddLocal(wasm.I32)
	r := f.AddLocal(wasm.I32)

	qr := func(a, b, c, d uint32, rot1, rot2, rot3, rot4 int32) {
		// a += b; d ^= a; d <<<= rot1
		f.LocalGet(a).LocalGet(b).Op(wasm.OpI32Add).LocalSet(a)
		f.LocalGet(d).LocalGet(a).Op(wasm.OpI32Xor)
		f.I32Const(rot1).Op(wasm.OpI32Rotl).LocalSet(d)
		// c += d; b ^= c; b <<<= rot2
		f.LocalGet(c).LocalGet(d).Op(wasm.OpI32Add).LocalSet(c)
		f.LocalGet(b).LocalGet(c).Op(wasm.OpI32Xor)
		f.I32Const(rot2).Op(wasm.OpI32Rotl).LocalSet(b)
		// a += b; d ^= a; d <<<= rot3
		f.LocalGet(a).LocalGet(b).Op(wasm.OpI32Add).LocalSet(a)
		f.LocalGet(d).LocalGet(a).Op(wasm.OpI32Xor)
		f.I32Const(rot3).Op(wasm.OpI32Rotl).LocalSet(d)
		// c += d; b ^= c; b <<<= rot4
		f.LocalGet(c).LocalGet(d).Op(wasm.OpI32Add).LocalSet(c)
		f.LocalGet(b).LocalGet(c).Op(wasm.OpI32Xor)
		f.I32Const(rot4).Op(wasm.OpI32Rotl).LocalSet(b)
	}

	k.ForI32(blk, 0, blocks, func() {
		// Key/nonce/counter setup from the block number.
		for w := 0; w < 16; w++ {
			f.LocalGet(blk).I32Const(int32(w)*0x9E37 + 1).Op(wasm.OpI32Mul)
			f.I32Const(int32(w) + 0x61707865).Op(wasm.OpI32Xor)
			f.LocalSet(st[w])
		}
		k.ForI32(r, 0, dr, func() {
			// Column round.
			qr(st[0], st[4], st[8], st[12], 16, 12, 8, 7)
			qr(st[1], st[5], st[9], st[13], 16, 12, 8, 7)
			qr(st[2], st[6], st[10], st[14], 16, 12, 8, 7)
			qr(st[3], st[7], st[11], st[15], 16, 12, 8, 7)
			// Diagonal round.
			qr(st[0], st[5], st[10], st[15], 16, 12, 8, 7)
			qr(st[1], st[6], st[11], st[12], 16, 12, 8, 7)
			qr(st[2], st[7], st[8], st[13], 16, 12, 8, 7)
			qr(st[3], st[4], st[9], st[14], 16, 12, 8, 7)
		})
		// Fold the block into the checksum.
		for w := 0; w < 16; w += 4 {
			f.LocalGet(st[w]).LocalGet(st[w+1]).Op(wasm.OpI32Add)
			f.LocalGet(st[w+2]).Op(wasm.OpI32Xor)
			f.LocalGet(st[w+3]).Op(wasm.OpI32Add)
			f.Op(wasm.OpI64ExtendI32U)
			k.Mix()
		}
	})
}

// lsSalsa is the Salsa20 core: same cost profile as ChaCha with the
// Salsa rotation pattern.
func lsSalsa(k *K, dr, blocks int32) {
	f := k.F
	var st [16]uint32
	for w := 0; w < 16; w++ {
		st[w] = f.AddLocal(wasm.I32)
	}
	blk := f.AddLocal(wasm.I32)
	r := f.AddLocal(wasm.I32)

	op := func(dst, a, b uint32, rot int32) {
		// dst ^= (a + b) <<< rot
		f.LocalGet(a).LocalGet(b).Op(wasm.OpI32Add)
		f.I32Const(rot).Op(wasm.OpI32Rotl)
		f.LocalGet(dst).Op(wasm.OpI32Xor).LocalSet(dst)
	}
	k.ForI32(blk, 0, blocks, func() {
		for w := 0; w < 16; w++ {
			f.LocalGet(blk).I32Const(int32(w)*0x3C6E + 1).Op(wasm.OpI32Mul)
			f.I32Const(int32(w) * 0x0B440E2F).Op(wasm.OpI32Xor)
			f.LocalSet(st[w])
		}
		k.ForI32(r, 0, dr, func() {
			// Column ops.
			op(st[4], st[0], st[12], 7)
			op(st[8], st[4], st[0], 9)
			op(st[12], st[8], st[4], 13)
			op(st[0], st[12], st[8], 18)
			op(st[9], st[5], st[1], 7)
			op(st[13], st[9], st[5], 9)
			op(st[1], st[13], st[9], 13)
			op(st[5], st[1], st[13], 18)
			// Row ops.
			op(st[1], st[0], st[3], 7)
			op(st[2], st[1], st[0], 9)
			op(st[3], st[2], st[1], 13)
			op(st[0], st[3], st[2], 18)
			op(st[6], st[5], st[4], 7)
			op(st[7], st[6], st[5], 9)
			op(st[4], st[7], st[6], 13)
			op(st[5], st[4], st[7], 18)
		})
		for w := 0; w < 16; w += 8 {
			f.LocalGet(st[w]).LocalGet(st[w+3]).Op(wasm.OpI32Xor)
			f.LocalGet(st[w+5]).Op(wasm.OpI32Add)
			f.Op(wasm.OpI64ExtendI32U)
			k.Mix()
		}
	})
}

// lsSiphash: SipHash-c-d over `words` 8-byte inputs, i64 state rounds.
func lsSiphash(k *K, c, d, words int32) {
	f := k.F
	v0 := f.AddLocal(wasm.I64)
	v1 := f.AddLocal(wasm.I64)
	v2 := f.AddLocal(wasm.I64)
	v3 := f.AddLocal(wasm.I64)
	m := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I32)
	r := f.AddLocal(wasm.I32)

	sipround := func() {
		// v0 += v1; v1 = rotl(v1,13) ^ v0; v0 = rotl(v0,32)
		f.LocalGet(v0).LocalGet(v1).Op(wasm.OpI64Add).LocalSet(v0)
		f.LocalGet(v1).I64Const(13).Op(wasm.OpI64Rotl)
		f.LocalGet(v0).Op(wasm.OpI64Xor).LocalSet(v1)
		f.LocalGet(v0).I64Const(32).Op(wasm.OpI64Rotl).LocalSet(v0)
		// v2 += v3; v3 = rotl(v3,16) ^ v2
		f.LocalGet(v2).LocalGet(v3).Op(wasm.OpI64Add).LocalSet(v2)
		f.LocalGet(v3).I64Const(16).Op(wasm.OpI64Rotl)
		f.LocalGet(v2).Op(wasm.OpI64Xor).LocalSet(v3)
		// v0 += v3; v3 = rotl(v3,21) ^ v0
		f.LocalGet(v0).LocalGet(v3).Op(wasm.OpI64Add).LocalSet(v0)
		f.LocalGet(v3).I64Const(21).Op(wasm.OpI64Rotl)
		f.LocalGet(v0).Op(wasm.OpI64Xor).LocalSet(v3)
		// v2 += v1; v1 = rotl(v1,17) ^ v2; v2 = rotl(v2,32)
		f.LocalGet(v2).LocalGet(v1).Op(wasm.OpI64Add).LocalSet(v2)
		f.LocalGet(v1).I64Const(17).Op(wasm.OpI64Rotl)
		f.LocalGet(v2).Op(wasm.OpI64Xor).LocalSet(v1)
		f.LocalGet(v2).I64Const(32).Op(wasm.OpI64Rotl).LocalSet(v2)
	}

	f.I64Const(0x736F6D6570736575).LocalSet(v0)
	f.I64Const(0x646F72616E646F6D).LocalSet(v1)
	f.I64Const(0x6C7967656E657261).LocalSet(v2)
	f.I64Const(0x7465646279746573).LocalSet(v3)
	k.ForI32(i, 0, words, func() {
		f.LocalGet(i).Op(wasm.OpI64ExtendI32U)
		f.I64Const(-7046029254386353131).Op(wasm.OpI64Mul)
		f.LocalSet(m)
		f.LocalGet(v3).LocalGet(m).Op(wasm.OpI64Xor).LocalSet(v3)
		k.ForI32(r, 0, c, func() { sipround() })
		f.LocalGet(v0).LocalGet(m).Op(wasm.OpI64Xor).LocalSet(v0)
	})
	f.LocalGet(v2).I64Const(0xFF).Op(wasm.OpI64Xor).LocalSet(v2)
	k.ForI32(r, 0, d, func() { sipround() })
	f.LocalGet(v0).LocalGet(v1).Op(wasm.OpI64Xor)
	f.LocalGet(v2).Op(wasm.OpI64Xor)
	f.LocalGet(v3).Op(wasm.OpI64Xor)
	k.Mix()
}

// lsSha256: `blocks` compressions of a SHA-256-style round function
// (message schedule in memory, 64 rounds of sigma/ch/maj mixing).
func lsSha256(k *K, blocks int32) {
	f := k.F
	a := f.AddLocal(wasm.I32)
	b := f.AddLocal(wasm.I32)
	cc := f.AddLocal(wasm.I32)
	d := f.AddLocal(wasm.I32)
	e := f.AddLocal(wasm.I32)
	g := f.AddLocal(wasm.I32)
	h := f.AddLocal(wasm.I32)
	p := f.AddLocal(wasm.I32)
	t1 := f.AddLocal(wasm.I32)
	blk := f.AddLocal(wasm.I32)
	i := f.AddLocal(wasm.I32)

	// Message schedule W[0..63] i32 at vX.
	wAddr := func(idx uint32, off int32) {
		f.LocalGet(idx)
		if off != 0 {
			f.I32Const(off).Op(wasm.OpI32Add)
		}
		f.I32Const(4).Op(wasm.OpI32Mul).I32Const(vX).Op(wasm.OpI32Add)
	}
	k.ForI32(blk, 0, blocks, func() {
		k.ForI32(i, 0, 16, func() {
			wAddr(i, 0)
			f.LocalGet(i).LocalGet(blk).Op(wasm.OpI32Add)
			f.I32Const(0x428A2F98).Op(wasm.OpI32Mul)
			f.Store(wasm.OpI32Store, 0)
		})
		k.ForI32(i, 16, 64, func() {
			// s0 = ror(w[i-15],7) ^ ror(w[i-15],18) ^ (w[i-15] >> 3)
			wAddr(i, -15)
			f.Load(wasm.OpI32Load, 0).LocalSet(t1)
			f.LocalGet(t1).I32Const(7).Op(wasm.OpI32Rotr)
			f.LocalGet(t1).I32Const(18).Op(wasm.OpI32Rotr)
			f.Op(wasm.OpI32Xor)
			f.LocalGet(t1).I32Const(3).Op(wasm.OpI32ShrU)
			f.Op(wasm.OpI32Xor)
			// + w[i-16] + w[i-7]
			wAddr(i, -16)
			f.Load(wasm.OpI32Load, 0)
			f.Op(wasm.OpI32Add)
			wAddr(i, -7)
			f.Load(wasm.OpI32Load, 0)
			f.Op(wasm.OpI32Add)
			// + s1 = ror(w[i-2],17) ^ ror(w[i-2],19) ^ (w[i-2] >> 10)
			wAddr(i, -2)
			f.Load(wasm.OpI32Load, 0).LocalSet(t1)
			f.LocalGet(t1).I32Const(17).Op(wasm.OpI32Rotr)
			f.LocalGet(t1).I32Const(19).Op(wasm.OpI32Rotr)
			f.Op(wasm.OpI32Xor)
			f.LocalGet(t1).I32Const(10).Op(wasm.OpI32ShrU)
			f.Op(wasm.OpI32Xor)
			f.Op(wasm.OpI32Add)
			f.LocalSet(t1)
			wAddr(i, 0)
			f.LocalGet(t1)
			f.Store(wasm.OpI32Store, 0)
		})
		f.I32Const(0x6A09E667).LocalSet(a)
		f.I32Const(-0x4498517B).LocalSet(b)
		f.I32Const(0x3C6EF372).LocalSet(cc)
		f.I32Const(-0x5AB00AC6).LocalSet(d)
		f.I32Const(0x510E527F).LocalSet(e)
		f.I32Const(-0x64FA9774).LocalSet(g)
		f.I32Const(0x1F83D9AB).LocalSet(h)
		f.I32Const(0x5BE0CD19).LocalSet(p)
		k.ForI32(i, 0, 64, func() {
			// t1 = p + S1(e) + ch(e,g,h) + w[i]
			f.LocalGet(e).I32Const(6).Op(wasm.OpI32Rotr)
			f.LocalGet(e).I32Const(11).Op(wasm.OpI32Rotr)
			f.Op(wasm.OpI32Xor)
			f.LocalGet(e).I32Const(25).Op(wasm.OpI32Rotr)
			f.Op(wasm.OpI32Xor)
			f.LocalGet(p).Op(wasm.OpI32Add)
			f.LocalGet(e).LocalGet(g).Op(wasm.OpI32And)
			f.LocalGet(e).I32Const(-1).Op(wasm.OpI32Xor).LocalGet(h).Op(wasm.OpI32And)
			f.Op(wasm.OpI32Xor)
			f.Op(wasm.OpI32Add)
			wAddr(i, 0)
			f.Load(wasm.OpI32Load, 0)
			f.Op(wasm.OpI32Add)
			f.LocalSet(t1)
			// shift registers
			f.LocalGet(h).LocalSet(p)
			f.LocalGet(g).LocalSet(h)
			f.LocalGet(e).LocalSet(g)
			f.LocalGet(d).LocalGet(t1).Op(wasm.OpI32Add).LocalSet(e)
			f.LocalGet(cc).LocalSet(d)
			f.LocalGet(b).LocalSet(cc)
			f.LocalGet(a).LocalSet(b)
			// a = t1 + S0(a) + maj(a,b,c)
			f.LocalGet(a).I32Const(2).Op(wasm.OpI32Rotr)
			f.LocalGet(a).I32Const(13).Op(wasm.OpI32Rotr)
			f.Op(wasm.OpI32Xor)
			f.LocalGet(a).I32Const(22).Op(wasm.OpI32Rotr)
			f.Op(wasm.OpI32Xor)
			f.LocalGet(t1).Op(wasm.OpI32Add)
			f.LocalGet(a).LocalGet(b).Op(wasm.OpI32And)
			f.LocalGet(a).LocalGet(cc).Op(wasm.OpI32And)
			f.Op(wasm.OpI32Xor)
			f.LocalGet(b).LocalGet(cc).Op(wasm.OpI32And)
			f.Op(wasm.OpI32Xor)
			f.Op(wasm.OpI32Add)
			f.LocalSet(a)
		})
		f.LocalGet(a).LocalGet(e).Op(wasm.OpI32Xor)
		f.LocalGet(p).Op(wasm.OpI32Add)
		f.Op(wasm.OpI64ExtendI32U)
		k.Mix()
	})
}

// lsBlake: BLAKE2b-style i64 G-function mixing, `blocks` x `rounds`.
func lsBlake(k *K, blocks, rounds int32) {
	f := k.F
	var v [8]uint32
	for w := 0; w < 8; w++ {
		v[w] = f.AddLocal(wasm.I64)
	}
	blk := f.AddLocal(wasm.I32)
	r := f.AddLocal(wasm.I32)

	g := func(a, b, c, d uint32) {
		f.LocalGet(a).LocalGet(b).Op(wasm.OpI64Add).LocalSet(a)
		f.LocalGet(d).LocalGet(a).Op(wasm.OpI64Xor)
		f.I64Const(32).Op(wasm.OpI64Rotr).LocalSet(d)
		f.LocalGet(c).LocalGet(d).Op(wasm.OpI64Add).LocalSet(c)
		f.LocalGet(b).LocalGet(c).Op(wasm.OpI64Xor)
		f.I64Const(24).Op(wasm.OpI64Rotr).LocalSet(b)
		f.LocalGet(a).LocalGet(b).Op(wasm.OpI64Add).LocalSet(a)
		f.LocalGet(d).LocalGet(a).Op(wasm.OpI64Xor)
		f.I64Const(16).Op(wasm.OpI64Rotr).LocalSet(d)
		f.LocalGet(c).LocalGet(d).Op(wasm.OpI64Add).LocalSet(c)
		f.LocalGet(b).LocalGet(c).Op(wasm.OpI64Xor)
		f.I64Const(63).Op(wasm.OpI64Rotr).LocalSet(b)
	}
	k.ForI32(blk, 0, blocks, func() {
		for w := 0; w < 8; w++ {
			f.LocalGet(blk).Op(wasm.OpI64ExtendI32U)
			f.I64Const(int64(w+1) * 0x6A09E667F3BCC908).Op(wasm.OpI64Mul)
			f.I64Const(int64(w) * 0x510E527FADE682D1).Op(wasm.OpI64Xor)
			f.LocalSet(v[w])
		}
		k.ForI32(r, 0, rounds, func() {
			g(v[0], v[4], v[1], v[5])
			g(v[2], v[6], v[3], v[7])
			g(v[0], v[5], v[2], v[7])
			g(v[1], v[4], v[3], v[6])
		})
		f.LocalGet(v[0]).LocalGet(v[3]).Op(wasm.OpI64Xor)
		f.LocalGet(v[5]).Op(wasm.OpI64Add)
		k.Mix()
	})
}

// lsPoly: Poly1305-flavoured accumulate-multiply-reduce over n words.
func lsPoly(k *K, n int32) {
	f := k.F
	acc := f.AddLocal(wasm.I64)
	rk := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I32)
	f.I64Const(0x0FFFFFFC0FFFFFFF).LocalSet(rk)
	f.I64Const(0).LocalSet(acc)
	k.ForI32(i, 0, n, func() {
		f.LocalGet(i).Op(wasm.OpI64ExtendI32U)
		f.I64Const(0x100000000).Op(wasm.OpI64Or)
		f.LocalGet(acc).Op(wasm.OpI64Add)
		f.LocalGet(rk).Op(wasm.OpI64Mul)
		// reduce mod 2^61-1 style
		f.LocalSet(acc)
		f.LocalGet(acc).I64Const(61).Op(wasm.OpI64ShrU)
		f.LocalGet(acc).I64Const(0x1FFFFFFFFFFFFFFF).Op(wasm.OpI64And)
		f.Op(wasm.OpI64Add)
		f.LocalSet(acc)
	})
	f.LocalGet(acc)
	k.Mix()
}

// lsGFMul: GF(2^128)-flavoured carry-less multiply-accumulate loop
// (GHASH stand-in for AES-GCM).
func lsGFMul(k *K, n int32) {
	f := k.F
	x := f.AddLocal(wasm.I64)
	y := f.AddLocal(wasm.I64)
	z := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I32)
	bit := f.AddLocal(wasm.I32)
	f.I64Const(0x736F6D6570736575).LocalSet(x)
	k.ForI32(i, 0, n, func() {
		f.LocalGet(i).Op(wasm.OpI64ExtendI32U)
		f.I64Const(0x87).Op(wasm.OpI64Or).LocalSet(y)
		f.I64Const(0).LocalSet(z)
		k.ForI32(bit, 0, 8, func() {
			// if x & 1: z ^= y
			f.LocalGet(x).I64Const(1).Op(wasm.OpI64And)
			f.I64Const(0).Op(wasm.OpI64Ne)
			f.If(wasm.BlockEmpty)
			f.LocalGet(z).LocalGet(y).Op(wasm.OpI64Xor).LocalSet(z)
			f.End()
			f.LocalGet(x).I64Const(1).Op(wasm.OpI64ShrU).LocalSet(x)
			f.LocalGet(y).I64Const(1).Op(wasm.OpI64Shl)
			f.I64Const(0x87).Op(wasm.OpI64Xor).LocalSet(y)
		})
		f.LocalGet(z).LocalGet(x).Op(wasm.OpI64Xor)
		f.I64Const(-7046029254386353131).Op(wasm.OpI64Add)
		f.LocalSet(x)
	})
	f.LocalGet(x)
	k.Mix()
}

// lsFieldMul: Curve25519-flavoured field multiply chains (i64 limbs).
func lsFieldMul(k *K, n int32) {
	f := k.F
	var limb [4]uint32
	for w := 0; w < 4; w++ {
		limb[w] = f.AddLocal(wasm.I64)
	}
	i := f.AddLocal(wasm.I32)
	for w := 0; w < 4; w++ {
		f.I64Const(int64(w+1) * 0x1FFFFFFFFFFFF).LocalSet(limb[w])
	}
	k.ForI32(i, 0, n, func() {
		// A ladder-ish step: limb mixing with 51-bit carries.
		for w := 0; w < 4; w++ {
			nxt := limb[(w+1)%4]
			f.LocalGet(limb[w]).LocalGet(nxt).Op(wasm.OpI64Mul)
			f.LocalGet(limb[w]).I64Const(19).Op(wasm.OpI64Mul)
			f.Op(wasm.OpI64Add)
			f.LocalSet(limb[w])
			f.LocalGet(limb[w]).I64Const(51).Op(wasm.OpI64ShrU)
			f.LocalGet(nxt).Op(wasm.OpI64Add).LocalSet(nxt)
			f.LocalGet(limb[w]).I64Const(0x7FFFFFFFFFFFF).Op(wasm.OpI64And).LocalSet(limb[w])
		}
	})
	f.LocalGet(limb[0]).LocalGet(limb[2]).Op(wasm.OpI64Add)
	f.LocalGet(limb[1]).Op(wasm.OpI64Xor)
	f.LocalGet(limb[3]).Op(wasm.OpI64Add)
	k.Mix()
}

// lsVerify: constant-time comparison over n bytes (or-reduce of xors).
func lsVerify(k *K, n int32) {
	f := k.F
	d := f.AddLocal(wasm.I32)
	i := f.AddLocal(wasm.I32)
	// Fill two buffers.
	k.ForI32(i, 0, n, func() {
		f.LocalGet(i).I32Const(vX).Op(wasm.OpI32Add)
		f.LocalGet(i).I32Const(251).Op(wasm.OpI32RemU)
		f.Store(wasm.OpI32Store8, 0)
		f.LocalGet(i).I32Const(vY).Op(wasm.OpI32Add)
		f.LocalGet(i).I32Const(251).Op(wasm.OpI32RemU)
		f.Store(wasm.OpI32Store8, 0)
	})
	f.I32Const(0).LocalSet(d)
	k.ForI32(i, 0, n, func() {
		f.LocalGet(i).I32Const(vX).Op(wasm.OpI32Add).Load(wasm.OpI32Load8U, 0)
		f.LocalGet(i).I32Const(vY).Op(wasm.OpI32Add).Load(wasm.OpI32Load8U, 0)
		f.Op(wasm.OpI32Xor)
		f.LocalGet(d).Op(wasm.OpI32Or).LocalSet(d)
	})
	f.LocalGet(d).Op(wasm.OpI64ExtendI32U)
	k.Mix()
}

// lsXorshift: xorshift64* PRNG stream (keygen/randombytes stand-in).
func lsXorshift(k *K, n int32) {
	f := k.F
	s := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I32)
	f.I64Const(-7046029254386353131).LocalSet(s)
	k.ForI32(i, 0, n, func() {
		f.LocalGet(s).I64Const(12).Op(wasm.OpI64ShrU)
		f.LocalGet(s).Op(wasm.OpI64Xor).LocalSet(s)
		f.LocalGet(s).I64Const(25).Op(wasm.OpI64Shl)
		f.LocalGet(s).Op(wasm.OpI64Xor).LocalSet(s)
		f.LocalGet(s).I64Const(27).Op(wasm.OpI64ShrU)
		f.LocalGet(s).Op(wasm.OpI64Xor).LocalSet(s)
		f.LocalGet(s).I64Const(0x2545F4914F6CDD1D).Op(wasm.OpI64Mul).LocalSet(s)
	})
	f.LocalGet(s)
	k.Mix()
}
